// Tests for the SIMD microkernel registry, the autotuned tile cache, and
// the determinism contract binding them: every compiled-in variant, at
// every tile the tuner may choose, must produce byte-identical outputs
// (kernels/microkernel.hpp). Also pins the Workspace's 64-byte alignment
// guarantee the packed panels rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "profiler/counters.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/registry.hpp"
#include "tensor/kernels/tuner.hpp"
#include "tensor/qgemm.hpp"
#include "tensor/quantize.hpp"
#include "tensor/reduce.hpp"
#include "tensor/workspace.hpp"

namespace dcn {
namespace {

using kernels::KernelRegistry;
using kernels::TileTuner;

struct ThreadGuard {
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

// Every test runs against a private tuner cache directory so the suite
// neither reads nor pollutes the user's ~/.cache.
class KernelsTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dcn-kernels-test-" + std::to_string(::testing::UnitTest::
                                                     GetInstance()
                                                         ->random_seed()) +
            "-" + test_name());
    std::filesystem::remove_all(dir_);
    TileTuner::global().set_cache_dir(dir_.string());
    // Neutralize an ambient variant override (the CI portable leg runs the
    // whole suite with DCN_KERNEL_VARIANT=generic): these tests assert
    // auto-selection and set the variable themselves where needed.
    const char* ambient = std::getenv("DCN_KERNEL_VARIANT");
    if (ambient != nullptr) ambient_variant_ = ambient;
    ::unsetenv("DCN_KERNEL_VARIANT");
    KernelRegistry::global().reselect();
  }
  void TearDown() override {
    if (!ambient_variant_.empty()) {
      ::setenv("DCN_KERNEL_VARIANT", ambient_variant_.c_str(), 1);
    }
    KernelRegistry::global().reselect();
    TileTuner::global().set_cache_dir("");
    std::filesystem::remove_all(dir_);
  }
  std::string test_name() const {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    return std::string(info->test_suite_name()) + "." + info->name();
  }
  std::filesystem::path dir_;
  std::string ambient_variant_;
};

std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(rows * cols));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

// ---------------------------------------------------------------- registry

TEST_F(KernelsTest, RegistryListsGenericFirstAndActiveIsSupported) {
  KernelRegistry& reg = KernelRegistry::global();
  const auto names = reg.variant_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "generic");
  EXPECT_TRUE(reg.variant_supported("generic"));
  EXPECT_TRUE(reg.variant_supported(reg.active().name));
  // Auto selection picks the highest supported priority.
  const auto* active = reg.find(reg.active().name);
  ASSERT_NE(active, nullptr);
  for (const auto& name : names) {
    const auto* v = reg.find(name);
    ASSERT_NE(v, nullptr);
    if (reg.variant_supported(name)) {
      EXPECT_LE(v->priority, active->priority) << name;
    }
  }
}

TEST_F(KernelsTest, EveryVariantRegistersCompleteKernelSet) {
  KernelRegistry& reg = KernelRegistry::global();
  for (const auto& name : reg.variant_names()) {
    const auto* v = reg.find(name);
    ASSERT_NE(v, nullptr) << name;
    EXPECT_FALSE(v->sgemm.empty()) << name;
    EXPECT_NE(v->qgemm_row, nullptr) << name;
    EXPECT_NE(v->accumulate, nullptr) << name;
    EXPECT_NE(v->quantize_u8, nullptr) << name;
    EXPECT_NE(v->quantize_s8, nullptr) << name;
    EXPECT_NE(v->dequantize_u8, nullptr) << name;
    EXPECT_NE(v->reduce_max, nullptr) << name;
    EXPECT_NE(v->reduce_min, nullptr) << name;
    for (const auto& k : v->sgemm) {
      EXPECT_GE(k.mr, 1);
      EXPECT_LE(k.mr, kernels::kMaxMr);
      EXPECT_GE(k.nr, 1);
      EXPECT_LE(k.nr, kernels::kMaxNr);
      EXPECT_NE(k.fn, nullptr);
    }
  }
}

TEST_F(KernelsTest, ForceVariantRefusesUnknownAndKeepsSelection) {
  KernelRegistry& reg = KernelRegistry::global();
  const std::string before = reg.active().name;
  EXPECT_FALSE(reg.force_variant("no-such-isa"));
  EXPECT_EQ(reg.active().name, before);
  KernelRegistry::ScopedForce bogus("also-missing");
  EXPECT_FALSE(bogus.ok());
  EXPECT_EQ(reg.active().name, before);
}

TEST_F(KernelsTest, EnvOverrideHonoredByReselect) {
  KernelRegistry& reg = KernelRegistry::global();
  const std::string before = reg.active().name;
  ASSERT_EQ(::setenv("DCN_KERNEL_VARIANT", "generic", 1), 0);
  reg.reselect();
  EXPECT_EQ(reg.active().name, "generic");
  // An unknown name falls back to auto selection instead of failing.
  ASSERT_EQ(::setenv("DCN_KERNEL_VARIANT", "bogus", 1), 0);
  reg.reselect();
  EXPECT_EQ(reg.active().name, before);
  ASSERT_EQ(::unsetenv("DCN_KERNEL_VARIANT"), 0);
  reg.reselect();
  EXPECT_EQ(reg.active().name, before);
}

// ------------------------------------------- cross-variant bit-equality --

// Runs one sgemm under the currently forced variant and returns C.
std::vector<float> run_case(std::int64_t m, std::int64_t n, std::int64_t k,
                            bool ta, bool tb, float alpha, float beta,
                            bool with_epilogue, const std::vector<float>& a,
                            const std::vector<float>& b,
                            const std::vector<float>& bias,
                            const std::vector<float>& c0) {
  std::vector<float> c = c0;
  GemmEpilogue ep;
  if (with_epilogue) {
    ep.row_bias = bias.data();
    ep.relu = true;
  }
  const std::int64_t lda = ta ? m : k;
  const std::int64_t ldb = tb ? k : n;
  sgemm_ex(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
           c.data(), n, ep);
  return c;
}

TEST_F(KernelsTest, AllVariantsBitIdenticalAcrossTransAlphaBetaEpilogue) {
  KernelRegistry& reg = KernelRegistry::global();
  const struct {
    int m, n, k;
  } shapes[] = {{5, 9, 7}, {65, 257, 129}, {131, 63, 300}};
  for (const auto& s : shapes) {
    Rng rng(static_cast<std::uint64_t>(s.m * 131071 + s.n * 8191 + s.k));
    const auto a_nt = random_matrix(s.m, s.k, rng);
    const auto a_t = random_matrix(s.k, s.m, rng);
    const auto b_nt = random_matrix(s.k, s.n, rng);
    const auto b_t = random_matrix(s.n, s.k, rng);
    const auto bias = random_matrix(1, s.m, rng);
    const auto c0 = random_matrix(s.m, s.n, rng);
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        for (float alpha : {1.0f, 0.5f}) {
          for (float beta : {0.0f, 2.0f}) {
            for (bool epi : {false, true}) {
              const auto& a = ta ? a_t : a_nt;
              const auto& b = tb ? b_t : b_nt;
              std::vector<float> ref;
              {
                KernelRegistry::ScopedForce force("generic");
                ASSERT_TRUE(force.ok());
                ref = run_case(s.m, s.n, s.k, ta, tb, alpha, beta, epi, a, b,
                               bias, c0);
              }
              for (const auto& name : reg.variant_names()) {
                if (!reg.variant_supported(name)) continue;
                KernelRegistry::ScopedForce force(name);
                ASSERT_TRUE(force.ok()) << name;
                const auto got = run_case(s.m, s.n, s.k, ta, tb, alpha, beta,
                                          epi, a, b, bias, c0);
                ASSERT_EQ(0,
                          std::memcmp(ref.data(), got.data(),
                                      ref.size() * sizeof(float)))
                    << name << " diverges from generic at " << s.m << 'x'
                    << s.n << 'x' << s.k << " ta=" << ta << " tb=" << tb
                    << " alpha=" << alpha << " beta=" << beta
                    << " epi=" << epi;
              }
            }
          }
        }
      }
    }
  }
}

TEST_F(KernelsTest, EveryVariantMatchesReferenceWithinTolerance) {
  KernelRegistry& reg = KernelRegistry::global();
  Rng rng(77);
  const int m = 65, n = 257, k = 129;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c_ref(static_cast<std::size_t>(m) * n, 0.0f);
  sgemm_reference(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
                  c_ref.data(), n);
  for (const auto& name : reg.variant_names()) {
    if (!reg.variant_supported(name)) continue;
    KernelRegistry::ScopedForce force(name);
    ASSERT_TRUE(force.ok());
    std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
    sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
          c.data(), n);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_ref[i], 2e-3f * k) << name << " at " << i;
    }
  }
}

TEST_F(KernelsTest, EveryVariantBitIdenticalAcrossThreadCounts) {
  KernelRegistry& reg = KernelRegistry::global();
  Rng rng(21);
  const int m = 131, n = 263, k = 517;  // odd everything, multiple K blocks
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  for (const auto& name : reg.variant_names()) {
    if (!reg.variant_supported(name)) continue;
    KernelRegistry::ScopedForce force(name);
    ASSERT_TRUE(force.ok());
    std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.0f);
    std::vector<float> c5 = c1;
    {
      ThreadGuard guard(1);
      sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
            c1.data(), n);
    }
    {
      ThreadGuard guard(5);
      sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
            c5.data(), n);
    }
    EXPECT_EQ(0, std::memcmp(c1.data(), c5.data(), c1.size() * sizeof(float)))
        << name;
  }
}

TEST_F(KernelsTest, AllTunableTilesBitIdentical) {
  // The tuner only ever changes speed: force each registered tile of the
  // active variant and check the outputs are memcmp-equal.
  const kernels::KernelVariant& v = KernelRegistry::global().active();
  Rng rng(55);
  const int m = 70, n = 130, k = 300;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> ref;
  for (const auto& tile : v.sgemm) {
    TileTuner::ScopedForcedTile force(tile.mr, tile.nr);
    std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
    sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
          c.data(), n);
    if (ref.empty()) {
      ref = c;
    } else {
      EXPECT_EQ(0, std::memcmp(ref.data(), c.data(), c.size() * sizeof(float)))
          << "tile " << tile.mr << 'x' << tile.nr;
    }
  }
}

// ----------------------------------------------------------------- tuner --

TEST_F(KernelsTest, TunerColdThenWarmFromDiskIsByteIdentical) {
  TileTuner& tuner = TileTuner::global();
  tuner.reset_stats();
  profiler::reset_counters();
  Rng rng(91);
  const int m = 150, n = 270, k = 310;  // a class no other test tunes
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> cold(static_cast<std::size_t>(m) * n, 0.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
        cold.data(), n);
  const auto after_cold = tuner.stats();
  EXPECT_GE(after_cold.tuned, 1);
  EXPECT_GE(profiler::counter_value("tuner.tuned"), 1);
  EXPECT_GE(profiler::counter_value("tuner_cache.miss"), 1);

  // Drop the memo; the winner must replay from disk, not re-tune.
  tuner.clear_memory();
  std::vector<float> warm(static_cast<std::size_t>(m) * n, 0.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
        warm.data(), n);
  const auto after_warm = tuner.stats();
  EXPECT_GE(after_warm.disk_hits, after_cold.disk_hits + 1);
  EXPECT_EQ(after_warm.tuned, after_cold.tuned);
  EXPECT_GE(profiler::counter_value("tuner_cache.disk_hit"), 1);
  EXPECT_EQ(0,
            std::memcmp(cold.data(), warm.data(), cold.size() * sizeof(float)));

  // Third run hits the rebuilt memo.
  std::vector<float> memo(static_cast<std::size_t>(m) * n, 0.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
        memo.data(), n);
  EXPECT_GE(tuner.stats().memo_hits, after_warm.memo_hits + 1);
  EXPECT_GE(profiler::counter_value("tuner_cache.hit"), 1);
}

TEST_F(KernelsTest, CorruptedCacheEntryFallsBackToRetune) {
  TileTuner& tuner = TileTuner::global();
  const kernels::KernelVariant& v = KernelRegistry::global().active();
  Rng rng(92);
  const int m = 150, n = 270, k = 310;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> first(static_cast<std::size_t>(m) * n, 0.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
        first.data(), n);
  const std::string key = TileTuner::cache_key(v, 'f', m, n, k);
  const std::string path = tuner.entry_path(key);
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  {
    std::ofstream out(path, std::ios::trunc);
    out << "dcn-tile-cache-v1\nkey=" << key << "\nmr=9999\nnr=-3\n";
  }
  tuner.clear_memory();
  tuner.reset_stats();
  std::vector<float> second(static_cast<std::size_t>(m) * n, 0.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
        second.data(), n);
  const auto stats = tuner.stats();
  EXPECT_GE(stats.corrupt_entries, 1);
  EXPECT_GE(stats.tuned, 1);  // silently re-tuned
  EXPECT_GE(profiler::counter_value("tuner_cache.corrupt"), 1);
  EXPECT_EQ(0, std::memcmp(first.data(), second.data(),
                           first.size() * sizeof(float)));
}

TEST_F(KernelsTest, DisabledTunerUsesVariantDefaultWithoutTouchingCache) {
  TileTuner& tuner = TileTuner::global();
  tuner.set_enabled(false);
  tuner.reset_stats();
  Rng rng(93);
  const int m = 90, n = 110, k = 140;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
        n);
  const auto stats = tuner.stats();
  EXPECT_EQ(stats.tuned, 0);
  EXPECT_EQ(stats.memo_misses, 0);
  EXPECT_EQ(stats.disk_misses, 0);
  tuner.set_enabled(true);
}

TEST_F(KernelsTest, CacheKeyBucketsShapesIntoClasses) {
  const kernels::KernelVariant& v = KernelRegistry::global().active();
  // Same power-of-two class -> same key; different class -> different key.
  EXPECT_EQ(TileTuner::cache_key(v, 'f', 65, 257, 129),
            TileTuner::cache_key(v, 'f', 100, 500, 200));
  EXPECT_NE(TileTuner::cache_key(v, 'f', 65, 257, 129),
            TileTuner::cache_key(v, 'f', 300, 257, 129));
  // Small dims are kept exact.
  EXPECT_NE(TileTuner::cache_key(v, 'f', 5, 9, 7),
            TileTuner::cache_key(v, 'f', 6, 9, 7));
  // Precision is part of the key.
  EXPECT_NE(TileTuner::cache_key(v, 'f', 64, 64, 64),
            TileTuner::cache_key(v, 'q', 64, 64, 64));
}

// ----------------------------------------------------------------- qgemm --

TEST_F(KernelsTest, QgemmEveryVariantBitExactAgainstReference) {
  KernelRegistry& reg = KernelRegistry::global();
  Rng rng(44);
  const int m = 37, n = 113, k = 71;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m) * k);
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) {
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  for (auto& v : b) {
    v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  std::vector<float> scales(static_cast<std::size_t>(m));
  for (auto& s : scales) s = 0.01f + 0.001f * static_cast<float>(rng.normal());
  QuantParams bp;
  bp.scale = 0.02f;
  bp.zero_point = 131;
  std::vector<float> bias(static_cast<std::size_t>(m), 0.25f);
  QuantEpilogue ep;
  ep.row_bias = bias.data();
  ep.relu = true;
  std::vector<float> ref(static_cast<std::size_t>(m) * n, 0.0f);
  qgemm_reference(m, n, k, a.data(), k, scales.data(), m, b.data(), n, bp,
                  ref.data(), n, ep);
  for (const auto& name : reg.variant_names()) {
    if (!reg.variant_supported(name)) continue;
    KernelRegistry::ScopedForce force(name);
    ASSERT_TRUE(force.ok());
    for (int threads : {1, 4}) {
      ThreadGuard guard(threads);
      std::vector<float> c(static_cast<std::size_t>(m) * n, -1.0f);
      qgemm(m, n, k, a.data(), k, scales.data(), m, b.data(), n, bp, c.data(),
            n, ep);
      EXPECT_EQ(0, std::memcmp(ref.data(), c.data(), ref.size() *
                                                         sizeof(float)))
          << name << " threads=" << threads;
    }
  }
}

// -------------------------------------------------------------- quantize --

TEST_F(KernelsTest, QuantizeEveryVariantBitExactIncludingTieEdges) {
  KernelRegistry& reg = KernelRegistry::global();
  // Adversarial values for ties-away rounding: the naive trunc(v + 0.5)
  // breaks on 0.49999997f (rounds to 1); exact halves must round away from
  // zero in both signs; values beyond the clamp must saturate.
  std::vector<float> src = {0.49999997f,  -0.49999997f, 0.5f,    -0.5f,
                            1.5f,         -1.5f,        2.5f,    -2.5f,
                            0.0f,         -0.0f,        127.49f, -127.49f,
                            127.5f,       -127.5f,      1.0e9f,  -1.0e9f,
                            254.49998f,   254.5f,       255.49f, 300.0f,
                            1.0e-40f,     -1.0e-40f,    3.49f,   -3.49f};
  Rng rng(101);
  for (int i = 0; i < 1000; ++i) {
    src.push_back(static_cast<float>(rng.normal()) * 80.0f);
  }
  const std::int64_t n = static_cast<std::int64_t>(src.size());
  QuantParams params;
  params.scale = 1.0f;
  params.zero_point = 7;

  std::vector<std::uint8_t> u8_ref(src.size());
  std::vector<std::int8_t> s8_ref(src.size());
  std::vector<float> deq_ref(src.size());
  {
    KernelRegistry::ScopedForce force("generic");
    ASSERT_TRUE(force.ok());
    quantize_u8(src.data(), n, params, u8_ref.data());
    quantize_s8(src.data(), n, 1.0f, s8_ref.data());
    dequantize_u8(u8_ref.data(), n, params, deq_ref.data());
  }
  for (const auto& name : reg.variant_names()) {
    if (!reg.variant_supported(name)) continue;
    KernelRegistry::ScopedForce force(name);
    ASSERT_TRUE(force.ok());
    std::vector<std::uint8_t> u8(src.size());
    std::vector<std::int8_t> s8(src.size());
    std::vector<float> deq(src.size());
    quantize_u8(src.data(), n, params, u8.data());
    quantize_s8(src.data(), n, 1.0f, s8.data());
    dequantize_u8(u8.data(), n, params, deq.data());
    EXPECT_EQ(0, std::memcmp(u8_ref.data(), u8.data(), u8.size())) << name;
    EXPECT_EQ(0, std::memcmp(s8_ref.data(), s8.data(), s8.size())) << name;
    EXPECT_EQ(0, std::memcmp(deq_ref.data(), deq.data(),
                             deq.size() * sizeof(float)))
        << name;
  }
}

TEST_F(KernelsTest, ReduceEveryVariantMatchesScalar) {
  KernelRegistry& reg = KernelRegistry::global();
  Rng rng(202);
  Tensor t(Shape{517});
  t.fill_normal(rng, 0.0f, 3.0f);
  t[13] = 1.0e9f;
  t[499] = -1.0e9f;
  float mx_ref = 0.0f, mn_ref = 0.0f;
  std::int64_t idx_ref = 0;
  {
    KernelRegistry::ScopedForce force("generic");
    ASSERT_TRUE(force.ok());
    mx_ref = max_value(t);
    mn_ref = min_value(t);
    idx_ref = argmax(t).second;
  }
  EXPECT_EQ(mx_ref, 1.0e9f);
  EXPECT_EQ(mn_ref, -1.0e9f);
  EXPECT_EQ(idx_ref, 13);
  for (const auto& name : reg.variant_names()) {
    if (!reg.variant_supported(name)) continue;
    KernelRegistry::ScopedForce force(name);
    ASSERT_TRUE(force.ok());
    EXPECT_EQ(max_value(t), mx_ref) << name;
    EXPECT_EQ(min_value(t), mn_ref) << name;
    EXPECT_EQ(argmax(t).second, idx_ref) << name;
  }
}

// ------------------------------------------------------------- workspace --

TEST(WorkspaceAlignment, EveryAllocationIs64ByteAligned) {
  static_assert(Workspace::kAlignment == 64);
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  for (std::size_t n : {1u, 3u, 17u, 100u, 1000u, 100000u}) {
    auto* f = ws.floats(n);
    auto* b = ws.bytes(n);
    auto* i = ws.ints(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f) % Workspace::kAlignment, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % Workspace::kAlignment, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i) % Workspace::kAlignment, 0u);
  }
}

TEST(WorkspaceAlignment, GemmPackPatternKeepsPanelsAligned) {
  // The exact allocation pattern gemm_band uses: packed A then packed B out
  // of one scope, with the odd sizes real shapes produce. The SIMD micro
  // kernels rely on both panels being vector-aligned.
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  const std::int64_t mc = 128, nc = 256, kc = 256, mr = 12, nr = 48;
  float* packed_a =
      ws.floats(static_cast<std::size_t>((mc + mr - 1) / mr * mr * kc));
  float* packed_b =
      ws.floats(static_cast<std::size_t>((nc + nr - 1) / nr * nr * kc));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(packed_a) %
                Workspace::kAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(packed_b) %
                Workspace::kAlignment,
            0u);
}

}  // namespace
}  // namespace dcn
