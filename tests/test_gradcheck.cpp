// Numerical gradient checks for every layer's backward pass.
//
// Max-pooling layers are piecewise-linear; random continuous inputs keep
// the finite-difference probes away from argmax ties with probability 1,
// and the modest tolerance absorbs float32 noise.
#include "nn/gradcheck.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/spp.hpp"

namespace dcn {
namespace {

Tensor random_input(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(std::move(shape));
  x.fill_normal(rng, 0.0f, 1.0f);
  return x;
}

// (in_channels, out_channels, kernel, stride, spatial)
using ConvCase = std::tuple<int, int, int, int, int>;

class Conv2dGradCheck : public testing::TestWithParam<ConvCase> {};

TEST_P(Conv2dGradCheck, InputGradient) {
  const auto [ic, oc, k, s, hw] = GetParam();
  Rng rng(1);
  Conv2d conv(ic, oc, k, s, rng);
  const Tensor x = random_input(Shape{2, ic, hw, hw}, 11);
  const auto result = check_input_gradient(conv, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_P(Conv2dGradCheck, ParameterGradients) {
  const auto [ic, oc, k, s, hw] = GetParam();
  Rng rng(2);
  Conv2d conv(ic, oc, k, s, rng);
  const Tensor x = random_input(Shape{2, ic, hw, hw}, 13);
  const auto result = check_parameter_gradients(conv, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Geometries, Conv2dGradCheck,
                         testing::Values(ConvCase{1, 2, 3, 1, 6},
                                         ConvCase{3, 4, 3, 1, 5},
                                         ConvCase{2, 3, 5, 1, 7},
                                         ConvCase{2, 2, 3, 2, 8},
                                         ConvCase{4, 2, 1, 1, 4}));

TEST(LinearGradCheck, InputAndParameters) {
  Rng rng(3);
  Linear linear(6, 4, rng);
  const Tensor x = random_input(Shape{3, 6}, 17);
  auto result = check_input_gradient(linear, x);
  EXPECT_TRUE(result.ok) << result.detail;
  result = check_parameter_gradients(linear, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(ReluGradCheck, Input) {
  ReLU relu;
  const Tensor x = random_input(Shape{4, 9}, 19);
  const auto result = check_input_gradient(relu, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(MaxPoolGradCheck, Input) {
  MaxPool2d pool(2, 2);
  const Tensor x = random_input(Shape{2, 3, 6, 6}, 23);
  const auto result = check_input_gradient(pool, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(MaxPoolGradCheck, Stride3Kernel3) {
  MaxPool2d pool(3, 3);
  const Tensor x = random_input(Shape{1, 2, 9, 9}, 29);
  const auto result = check_input_gradient(pool, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(AdaptivePoolGradCheck, Input) {
  AdaptiveMaxPool2d pool(3, 3);
  const Tensor x = random_input(Shape{2, 2, 7, 7}, 31);
  const auto result = check_input_gradient(pool, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

class SppGradCheck : public testing::TestWithParam<int> {};

TEST_P(SppGradCheck, InputForFirstLevel) {
  SpatialPyramidPool spp(spp_levels_from_first(GetParam()));
  const Tensor x = random_input(Shape{2, 3, 9, 9}, 37);
  const auto result = check_input_gradient(spp, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(FirstLevels, SppGradCheck,
                         testing::Values(1, 2, 3, 4, 5));

TEST(FlattenGradCheck, Input) {
  Flatten flatten;
  const Tensor x = random_input(Shape{2, 3, 4, 4}, 41);
  const auto result = check_input_gradient(flatten, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(SequentialGradCheck, ConvReluPoolLinearStack) {
  Rng rng(7);
  Sequential net;
  net.emplace<Conv2d>(2, 3, 3, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2, 2);
  net.emplace<Flatten>();
  net.emplace<Linear>(3 * 3 * 3, 4, rng);
  const Tensor x = random_input(Shape{2, 2, 6, 6}, 43);
  // Composite stacks accumulate float32 rounding through four layers and
  // the finite-difference probes occasionally straddle ReLU/max-pool
  // kinks, so the tolerance is looser than for single layers.
  auto result = check_input_gradient(net, x, 1e-3, 0.3);
  EXPECT_TRUE(result.ok) << result.detail;
  result = check_parameter_gradients(net, x, 1e-3, 0.3);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(SequentialGradCheck, SppStack) {
  Rng rng(7);
  Sequential net;
  net.emplace<Conv2d>(1, 4, 3, 1, rng);
  net.emplace<ReLU>();
  net.emplace<SpatialPyramidPool>(std::vector<std::int64_t>{2, 1});
  net.emplace<Linear>(4 * 5, 3, rng);
  const Tensor x = random_input(Shape{2, 1, 7, 7}, 47);
  auto result = check_input_gradient(net, x, 1e-3, 0.3);
  EXPECT_TRUE(result.ok) << result.detail;
  result = check_parameter_gradients(net, x, 1e-3, 0.3);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GradCheck, DetectsBrokenBackward) {
  // A deliberately wrong layer must fail the check — guards the checker
  // itself against vacuous passes.
  class BrokenLayer : public Module {
   public:
    Tensor forward(const Tensor& input) override {
      cached_ = input;
      Tensor out(input.shape());
      for (std::int64_t i = 0; i < input.numel(); ++i) {
        out[i] = 2.0f * input[i];
      }
      return out;
    }
    Tensor backward(const Tensor& grad_output) override {
      return grad_output;  // wrong: should be 2 * grad
    }
    std::string name() const override { return "Broken"; }

   private:
    Tensor cached_;
  };
  BrokenLayer layer;
  const Tensor x = random_input(Shape{3, 3}, 53);
  const auto result = check_input_gradient(layer, x);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace dcn
