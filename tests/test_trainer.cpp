// Training-loop tests on a miniature dataset and model (fast, CPU-only).
#include "detect/trainer.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"

namespace dcn::detect {
namespace {

geo::DatasetConfig tiny_dataset_config() {
  geo::DatasetConfig config;
  config.seed = 11;
  config.num_worlds = 1;
  config.terrain.rows = 256;
  config.terrain.cols = 256;
  config.roads.spacing = 64;
  config.stream_threshold = 200.0;
  config.patch_size = 24;
  config.positive_jitter = 2;
  config.augment_flips = true;
  return config;
}

SppNetConfig tiny_model_config() {
  return parse_notation("C_{6,3,1}-P_{2,2}-C_{8,3,1}-P_{2,2}-SPP_{2,1}-F_{24}",
                        4);
}

class TrainerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kWarn);
    dataset_ = new geo::DrainageDataset(
        geo::DrainageDataset::synthesize(tiny_dataset_config()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static geo::DrainageDataset* dataset_;
};

geo::DrainageDataset* TrainerTest::dataset_ = nullptr;

TEST_F(TrainerTest, LossDecreasesOverTraining) {
  ASSERT_GT(dataset_->size(), 20u);
  Rng rng(1);
  SppNet model(tiny_model_config(), rng);
  const geo::Split split = dataset_->split(0.8, 3);
  TrainConfig config;
  config.epochs = 8;
  config.verbose = false;
  const TrainHistory history = train_detector(model, *dataset_, split, config);
  ASSERT_EQ(history.epochs.size(), 8u);
  EXPECT_LT(history.epochs.back().mean_loss,
            history.epochs.front().mean_loss * 0.8);
}

TEST_F(TrainerTest, EvaluationProducesOneDetectionPerSample) {
  Rng rng(2);
  SppNet model(tiny_model_config(), rng);
  const geo::Split split = dataset_->split(0.8, 3);
  const EvalResult eval =
      evaluate_detector(model, *dataset_, split.test);
  EXPECT_EQ(eval.detections.size(), split.test.size());
  EXPECT_GE(eval.average_precision, 0.0);
  EXPECT_LE(eval.average_precision, 1.0);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
}

TEST_F(TrainerTest, EvaluationRestoresTrainingMode) {
  Rng rng(3);
  SppNet model(tiny_model_config(), rng);
  model.set_training(true);
  const geo::Split split = dataset_->split(0.8, 3);
  (void)evaluate_detector(model, *dataset_, split.test);
  EXPECT_TRUE(model.is_training());
}

TEST_F(TrainerTest, TrainingIsDeterministic) {
  const geo::Split split = dataset_->split(0.8, 3);
  TrainConfig config;
  config.epochs = 2;
  config.verbose = false;
  Rng rng_a(5);
  SppNet model_a(tiny_model_config(), rng_a);
  const TrainHistory ha = train_detector(model_a, *dataset_, split, config);
  Rng rng_b(5);
  SppNet model_b(tiny_model_config(), rng_b);
  const TrainHistory hb = train_detector(model_b, *dataset_, split, config);
  ASSERT_EQ(ha.epochs.size(), hb.epochs.size());
  for (std::size_t i = 0; i < ha.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(ha.epochs[i].mean_loss, hb.epochs[i].mean_loss);
  }
  EXPECT_DOUBLE_EQ(ha.final_eval.average_precision,
                   hb.final_eval.average_precision);
}

TEST_F(TrainerTest, EmptySplitThrows) {
  Rng rng(7);
  SppNet model(tiny_model_config(), rng);
  geo::Split empty;
  TrainConfig config;
  config.verbose = false;
  EXPECT_THROW(train_detector(model, *dataset_, empty, config), dcn::Error);
  EXPECT_THROW(evaluate_detector(model, *dataset_, {}), dcn::Error);
}

TEST_F(TrainerTest, TrainingImprovesRankingOverUntrained) {
  const geo::Split split = dataset_->split(0.8, 3);
  Rng rng_a(9);
  SppNet untrained(tiny_model_config(), rng_a);
  const EvalResult before =
      evaluate_detector(untrained, *dataset_, split.test);
  Rng rng_b(9);
  SppNet trained(tiny_model_config(), rng_b);
  TrainConfig config;
  config.epochs = 12;
  config.verbose = false;
  const TrainHistory history =
      train_detector(trained, *dataset_, split, config);
  // Trained AP strictly dominates an untrained model's AP on this task.
  EXPECT_GT(history.final_eval.average_precision,
            before.average_precision);
}

}  // namespace
}  // namespace dcn::detect
