// Tests for the deterministic RNG (core/rng).
#include "core/rng.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dcn {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBothEnds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of {2,3,4,5} hit
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(3, 3), 3);
  }
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(4, 2), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), Error);
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(23);
  const auto perm = rng.permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<bool> seen(100, false);
  for (std::size_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, PermutationEmptyAndSingleton) {
  Rng rng(23);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(29);
  const auto perm = rng.permutation(50);
  int fixed = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitDeterministic) {
  Rng a(37);
  Rng b(37);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ca.next_u64(), cb.next_u64());
  }
}

}  // namespace
}  // namespace dcn
