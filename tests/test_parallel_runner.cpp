// Tests for the parallel NAS runner's determinism contract and the core
// threading primitives underneath it (ThreadPool, atomic thread-count
// knob). The contract: for report-independent strategies, the trial
// database CSV is byte-identical at any --jobs, including under fault
// injection and across checkpoint/resume.
//
// These tests run under ThreadSanitizer in CI (the `tsan` preset), so they
// deliberately exercise std::thread concurrency and stay away from OpenMP
// parallel regions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "nas/runner.hpp"
#include "nas/strategy.hpp"
#include "simgpu/faults.hpp"

namespace dcn {
namespace {

nas::SearchSpace small_space() {
  nas::SearchSpace space;
  space.conv1_kernels = {3, 5};
  space.spp_first_levels = {2, 4};
  space.fc_widths = {64, 128};
  space.num_fc_layers = 1;
  return space;
}

nas::RunnerConfig quiet_config(int max_trials, int jobs) {
  nas::RunnerConfig config;
  config.max_trials = max_trials;
  config.input_size = 32;
  config.verbose = false;
  config.jobs = jobs;
  return config;
}

// Pure function of the model: safe to call from any worker thread.
double proxy_accuracy(const detect::SppNetConfig& model) {
  return 0.9 + 1e-9 * static_cast<double>(model.parameter_count());
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  auto future = pool.submit([] {});
  future.get();
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw Error("task failed"); });
  auto good = pool.submit([] {});
  EXPECT_THROW(bad.get(), Error);
  good.get();  // one task's failure does not poison the pool
  auto after = pool.submit([] {});
  after.get();
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // Futures intentionally dropped: destruction must still run the queue.
  }
  EXPECT_EQ(ran.load(), 16);
}

// --- Atomic thread-count knob ----------------------------------------------

TEST(ParallelCore, ConcurrentSetAndGetNumThreadsIsClean) {
  // Hammer the knob from several threads at once; under TSan this fails if
  // g_num_threads were still a plain int.
  std::vector<std::thread> threads;
  std::atomic<int> observed_min{1 << 30};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &observed_min] {
      for (int i = 0; i < 1000; ++i) {
        set_num_threads(1 + (t + i) % 4);
        const int n = hardware_threads();
        int current = observed_min.load();
        while (n < current &&
               !observed_min.compare_exchange_weak(current, n)) {
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GE(observed_min.load(), 1);
  set_num_threads(0);  // restore the hardware default for other tests
}

// --- Parallel runner determinism -------------------------------------------

TEST(ParallelRunner, GridSearchCsvIsByteIdenticalToSerial) {
  nas::GridSearchStrategy serial_strategy(small_space());
  const nas::TrialDatabase serial = nas::run_multi_trial(
      serial_strategy, proxy_accuracy, quiet_config(8, 1));

  nas::GridSearchStrategy parallel_strategy(small_space());
  const nas::TrialDatabase parallel = nas::run_multi_trial(
      parallel_strategy, proxy_accuracy, quiet_config(8, 4));

  ASSERT_EQ(parallel.size(), 8u);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

TEST(ParallelRunner, RandomSearchCsvIsByteIdenticalToSerial) {
  nas::RandomSearchStrategy serial_strategy(small_space(), 17);
  const nas::TrialDatabase serial = nas::run_multi_trial(
      serial_strategy, proxy_accuracy, quiet_config(6, 1));

  nas::RandomSearchStrategy parallel_strategy(small_space(), 17);
  const nas::TrialDatabase parallel = nas::run_multi_trial(
      parallel_strategy, proxy_accuracy, quiet_config(6, 3));

  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

TEST(ParallelRunner, ByteIdenticalUnderFaultInjection) {
  // Fault salts derive from (trial index, attempt), not worker identity, so
  // the injected fault schedules — and hence retries, statuses, and
  // latencies — match between serial and parallel runs.
  const auto make_config = [](int jobs) {
    nas::RunnerConfig config = quiet_config(8, jobs);
    config.faults = simgpu::FaultPlan::parse("launch:p=0.3", 99);
    config.resilient.retry.max_attempts = 2;
    config.resilient.retry.jitter = 0.0;
    config.trial_retries = 2;
    return config;
  };
  nas::GridSearchStrategy serial_strategy(small_space());
  const nas::TrialDatabase serial = nas::run_multi_trial(
      serial_strategy, proxy_accuracy, make_config(1));

  nas::GridSearchStrategy parallel_strategy(small_space());
  const nas::TrialDatabase parallel = nas::run_multi_trial(
      parallel_strategy, proxy_accuracy, make_config(4));

  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

TEST(ParallelRunner, CheckpointResumeMatchesUninterruptedParallelRun) {
  const std::string ckpt =
      ::testing::TempDir() + "dcn_parallel_runner_ckpt.csv";
  std::remove(ckpt.c_str());

  nas::GridSearchStrategy full_strategy(small_space());
  const nas::TrialDatabase full = nas::run_multi_trial(
      full_strategy, proxy_accuracy, quiet_config(8, 4));

  // "Interrupted" parallel campaign: stops after 5 trials.
  nas::RunnerConfig partial_config = quiet_config(5, 4);
  partial_config.checkpoint_path = ckpt;
  nas::GridSearchStrategy partial_strategy(small_space());
  nas::run_multi_trial(partial_strategy, proxy_accuracy, partial_config);

  // Resume with fresh strategy state; commits happened in trial order, so
  // the checkpoint holds exactly the first 5 grid points.
  const nas::TrialDatabase checkpoint = nas::load_checkpoint(ckpt);
  ASSERT_EQ(checkpoint.size(), 5u);
  nas::GridSearchStrategy resume_strategy(small_space());
  const nas::TrialDatabase resumed = nas::run_multi_trial(
      resume_strategy, proxy_accuracy, quiet_config(8, 4), checkpoint);

  EXPECT_EQ(full.to_csv(), resumed.to_csv());
  std::remove(ckpt.c_str());
}

TEST(ParallelRunner, RejectsNonPositiveJobs) {
  nas::GridSearchStrategy strategy(small_space());
  EXPECT_THROW(nas::run_multi_trial(strategy, proxy_accuracy,
                                    quiet_config(2, 0)),
               Error);
}

TEST(ParallelRunner, StopsAtSpaceExhaustionWithWideWindow) {
  // jobs greater than the remaining space must not deadlock or over-run.
  nas::GridSearchStrategy strategy(small_space());
  const nas::TrialDatabase db = nas::run_multi_trial(
      strategy, proxy_accuracy, quiet_config(100, 6));
  EXPECT_EQ(db.size(), 8u);
}

}  // namespace
}  // namespace dcn
