// Tests for the content-addressed schedule cache: cached runs must produce
// schedules and costs identical to uncached runs across the SPP-Net family,
// structurally identical blocks must hit across different architectures,
// and any cost-relevant input (spec, options, batch) must change the key.
// Hit/miss counters must surface in the profiler report and Chrome trace.
//
// The cache and counters are process-global, so every test starts from
// clear() / reset_counters(). These tests run under ThreadSanitizer in CI.
#include "ios/schedule_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/scheduler.hpp"
#include "ios/serialize.hpp"
#include "nas/search_space.hpp"
#include "profiler/counters.hpp"
#include "profiler/recorder.hpp"
#include "profiler/report.hpp"
#include "profiler/trace.hpp"
#include "simgpu/kernels.hpp"
#include "simgpu/spec.hpp"

namespace dcn::ios {
namespace {

constexpr std::int64_t kInputSize = 40;

graph::Graph graph_of(const detect::SppNetConfig& model) {
  return graph::build_inference_graph(model, kInputSize);
}

std::vector<detect::SppNetConfig> sppnet_family() {
  std::vector<detect::SppNetConfig> family{
      detect::original_sppnet(), detect::sppnet_candidate1(),
      detect::sppnet_candidate2(), detect::sppnet_candidate3()};
  // A few NAS coordinates beyond the named Table-2 models.
  for (const std::int64_t conv1 : {1, 9}) {
    nas::SearchPoint point;
    point.conv1_kernel = conv1;
    point.spp_first_level = 3;
    point.fc_sizes = {512};
    family.push_back(nas::materialize(point));
  }
  return family;
}

TEST(ScheduleCache, CachedSchedulesAndCostsMatchUncached) {
  ScheduleCache& cache = ScheduleCache::global();
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();
  for (const detect::SppNetConfig& model : sppnet_family()) {
    const graph::Graph g = graph_of(model);

    cache.set_enabled(false);
    const Schedule uncached = optimize_schedule(g, spec);
    const double uncached_cost = schedule_cost(g, spec, uncached, 1);

    cache.set_enabled(true);
    cache.clear();
    const Schedule cold = optimize_schedule(g, spec);
    const double cold_cost = schedule_cost(g, spec, cold, 1);
    const Schedule warm = optimize_schedule(g, spec);
    const double warm_cost = schedule_cost(g, spec, warm, 1);

    EXPECT_EQ(serialize_schedule(uncached), serialize_schedule(cold))
        << model.to_notation();
    EXPECT_EQ(serialize_schedule(cold), serialize_schedule(warm))
        << model.to_notation();
    EXPECT_EQ(uncached_cost, cold_cost) << model.to_notation();
    EXPECT_EQ(cold_cost, warm_cost) << model.to_notation();
    // The warm pass hit for every branched block and the memoized cost.
    const ScheduleCacheStats stats = cache.stats();
    EXPECT_GT(stats.block_hits, 0) << model.to_notation();
    EXPECT_GT(stats.cost_hits, 0) << model.to_notation();
  }
  cache.set_enabled(true);
}

TEST(ScheduleCache, StructurallyIdenticalBlocksHitAcrossArchitectures) {
  ScheduleCache& cache = ScheduleCache::global();
  cache.set_enabled(true);
  cache.clear();
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();

  // Same SPP level, different conv1 kernel and FC width: the trunk's odd
  // kernels are same-padded, so the SPP block's kernel descriptors are
  // identical and its DP solution rebases onto the new graph.
  nas::SearchPoint a;
  a.conv1_kernel = 3;
  a.spp_first_level = 4;
  a.fc_sizes = {1024};
  optimize_schedule(graph_of(nas::materialize(a)), spec);
  const ScheduleCacheStats after_first = cache.stats();
  EXPECT_EQ(after_first.block_hits, 0);
  EXPECT_GT(after_first.block_misses, 0);

  nas::SearchPoint b = a;
  b.conv1_kernel = 7;
  b.fc_sizes = {256};
  optimize_schedule(graph_of(nas::materialize(b)), spec);
  const ScheduleCacheStats after_second = cache.stats();
  EXPECT_GT(after_second.block_hits, 0);
  EXPECT_EQ(after_second.block_misses, after_first.block_misses);

  // A different SPP first level is a different block: miss, not hit.
  nas::SearchPoint c = a;
  c.spp_first_level = 2;
  optimize_schedule(graph_of(nas::materialize(c)), spec);
  const ScheduleCacheStats after_third = cache.stats();
  EXPECT_EQ(after_third.block_hits, after_second.block_hits);
  EXPECT_GT(after_third.block_misses, after_second.block_misses);
}

TEST(ScheduleCache, FusedAndUnfusedTwinsNeverShareKeys) {
  // Regression (mirror of the cross-precision fix): a FusedConvReLU's work
  // profile is byte-identical to the plain conv's — the ReLU rides the
  // epilogue store for free, by design of the fused-op accounting. Before
  // the epilogue tag landed in append_kernel, a fused block and its
  // unfused twin collided and traded DP solutions.
  const auto twin = [](graph::OpKind kind) {
    graph::Graph g;
    const graph::OpId in =
        g.add_op(graph::OpKind::kInput, "in", {}, {},
                 graph::TensorDesc{{8, 8, 8}});
    graph::OpAttrs conv;
    conv.kernel = 3;
    conv.stride = 1;
    conv.padding = 1;
    conv.out_channels = 8;
    const graph::OpId c =
        g.add_op(kind, "conv0", conv, {in}, graph::TensorDesc{{8, 8, 8}});
    g.add_op(graph::OpKind::kOutput, "out", {}, {c},
             graph::TensorDesc{{8, 8, 8}});
    return g;
  };
  const graph::Graph unfused = twin(graph::OpKind::kConv2d);
  const graph::Graph fused = twin(graph::OpKind::kFusedConvReLU);
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();

  // Identical work profiles: the tag is the only thing separating them.
  const simgpu::KernelDesc plain = simgpu::make_kernel_desc(unfused, 1);
  const simgpu::KernelDesc epi = simgpu::make_kernel_desc(fused, 1);
  EXPECT_EQ(plain.flops_per_sample, epi.flops_per_sample);
  EXPECT_EQ(plain.activation_bytes_per_sample,
            epi.activation_bytes_per_sample);
  EXPECT_EQ(plain.weight_bytes, epi.weight_bytes);
  EXPECT_EQ(plain.threads_per_sample, epi.threads_per_sample);
  EXPECT_EQ(plain.category, epi.category);
  EXPECT_NE(plain.epilogue, epi.epilogue);

  const std::vector<graph::OpId> ops{1};
  const IosOptions options;
  EXPECT_NE(block_cache_key(unfused, ops, spec, options),
            block_cache_key(fused, ops, spec, options));

  const Schedule unfused_schedule = sequential_schedule(unfused);
  const Schedule fused_schedule = sequential_schedule(fused);
  EXPECT_NE(cost_cache_key(unfused, spec, unfused_schedule, 1),
            cost_cache_key(fused, spec, fused_schedule, 1));
}

TEST(ScheduleCache, KeyIsSensitiveToSpecOptionsAndBatch) {
  ScheduleCache& cache = ScheduleCache::global();
  cache.set_enabled(true);
  cache.clear();
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();
  const graph::Graph g = graph_of(detect::original_sppnet());

  optimize_schedule(g, spec);
  const std::int64_t baseline_misses = cache.stats().block_misses;

  // A different device parameterization must not reuse the solution.
  simgpu::DeviceSpec slower = spec;
  slower.peak_flops /= 2.0;
  optimize_schedule(g, slower);
  EXPECT_EQ(cache.stats().block_hits, 0);
  EXPECT_GT(cache.stats().block_misses, baseline_misses);

  // Same for the pruning width and the batch the DP prices for.
  IosOptions narrow;
  narrow.max_stage_ops = 2;
  optimize_schedule(g, spec, narrow);
  IosOptions batched;
  batched.batch = 8;
  optimize_schedule(g, spec, batched);
  EXPECT_EQ(cache.stats().block_hits, 0);

  // The identical call, by contrast, hits.
  optimize_schedule(g, spec);
  EXPECT_GT(cache.stats().block_hits, 0);

  // Cost memoization distinguishes batch sizes.
  const Schedule schedule = optimize_schedule(g, spec);
  const double at_1 = schedule_cost(g, spec, schedule, 1);
  const double at_8 = schedule_cost(g, spec, schedule, 8);
  EXPECT_NE(at_1, at_8);
  EXPECT_EQ(schedule_cost(g, spec, schedule, 1), at_1);
  EXPECT_EQ(schedule_cost(g, spec, schedule, 8), at_8);
}

TEST(ScheduleCache, DisabledCacheNeitherStoresNorCounts) {
  ScheduleCache& cache = ScheduleCache::global();
  cache.set_enabled(false);
  cache.clear();
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();
  const graph::Graph g = graph_of(detect::original_sppnet());
  optimize_schedule(g, spec);
  optimize_schedule(g, spec);
  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.block_hits, 0);
  EXPECT_EQ(stats.block_misses, 0);
  EXPECT_EQ(cache.size(), 0u);
  cache.set_enabled(true);
}

TEST(ScheduleCache, ConcurrentLookupsAreThreadSafe) {
  // NAS workers race optimize_schedule over the same and different graphs;
  // under TSan this exercises the cache's internal locking.
  ScheduleCache& cache = ScheduleCache::global();
  cache.set_enabled(true);
  cache.clear();
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();
  const auto family = sppnet_family();
  std::vector<std::string> serialized(family.size());
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < family.size(); ++t) {
    threads.emplace_back([t, &family, &spec, &serialized] {
      const graph::Graph g = graph_of(family[t]);
      for (int round = 0; round < 3; ++round) {
        const Schedule s = optimize_schedule(g, spec);
        schedule_cost(g, spec, s, 1);
        serialized[t] = serialize_schedule(s);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Racing workers must have converged on the deterministic solutions.
  cache.set_enabled(false);
  for (std::size_t t = 0; t < family.size(); ++t) {
    const graph::Graph g = graph_of(family[t]);
    EXPECT_EQ(serialized[t],
              serialize_schedule(optimize_schedule(g, spec)));
  }
  cache.set_enabled(true);
}

TEST(ScheduleCacheCounters, SurfaceInReportAndChromeTrace) {
  ScheduleCache& cache = ScheduleCache::global();
  cache.set_enabled(true);
  cache.clear();
  profiler::reset_counters();
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();
  const graph::Graph g = graph_of(detect::original_sppnet());
  optimize_schedule(g, spec);  // misses
  optimize_schedule(g, spec);  // hits

  EXPECT_GT(profiler::counter_value("schedule_cache.hit"), 0);
  EXPECT_GT(profiler::counter_value("schedule_cache.miss"), 0);

  profiler::Recorder recorder;
  const std::string report = profiler::render_report(recorder);
  EXPECT_NE(report.find("Counters:"), std::string::npos);
  EXPECT_NE(report.find("schedule_cache.hit"), std::string::npos);

  const std::string trace = profiler::to_chrome_trace(recorder);
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(trace.find("schedule_cache.miss"), std::string::npos);
  profiler::reset_counters();
}

}  // namespace
}  // namespace dcn::ios
