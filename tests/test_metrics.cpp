// Tests for detection metrics (IoU, PR curve, Equation-1 AP).
#include "detect/metrics.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dcn::detect {
namespace {

TEST(BoxIou, IdenticalBoxes) {
  const std::array<float, 4> a{0.5f, 0.5f, 0.2f, 0.2f};
  EXPECT_NEAR(box_iou(a, a), 1.0f, 1e-6f);
}

TEST(BoxIou, DisjointBoxes) {
  const std::array<float, 4> a{0.2f, 0.2f, 0.1f, 0.1f};
  const std::array<float, 4> b{0.8f, 0.8f, 0.1f, 0.1f};
  EXPECT_EQ(box_iou(a, b), 0.0f);
}

TEST(BoxIou, HalfOverlap) {
  // Two unit-width boxes offset by half a width: IoU = (0.5)/(1.5) = 1/3.
  const std::array<float, 4> a{0.0f, 0.0f, 1.0f, 1.0f};
  const std::array<float, 4> b{0.5f, 0.0f, 1.0f, 1.0f};
  EXPECT_NEAR(box_iou(a, b), 1.0f / 3.0f, 1e-6f);
}

TEST(BoxIou, ContainedBox) {
  const std::array<float, 4> outer{0.5f, 0.5f, 0.4f, 0.4f};
  const std::array<float, 4> inner{0.5f, 0.5f, 0.2f, 0.2f};
  EXPECT_NEAR(box_iou(outer, inner), 0.25f, 1e-6f);
  EXPECT_NEAR(box_iou(inner, outer), 0.25f, 1e-6f);  // symmetric
}

TEST(BoxIou, ZeroAreaBoxes) {
  const std::array<float, 4> degenerate{0.5f, 0.5f, 0.0f, 0.0f};
  const std::array<float, 4> normal{0.5f, 0.5f, 0.2f, 0.2f};
  EXPECT_EQ(box_iou(degenerate, normal), 0.0f);
  EXPECT_EQ(box_iou(degenerate, degenerate), 0.0f);
}

std::vector<ScoredDetection> perfect_ranking() {
  // Positives scored above all negatives, with good localization.
  std::vector<ScoredDetection> dets;
  for (int i = 0; i < 5; ++i) {
    dets.push_back({0.9f - 0.01f * i, true, 0.8f});
  }
  for (int i = 0; i < 5; ++i) {
    dets.push_back({0.3f - 0.01f * i, false, 0.0f});
  }
  return dets;
}

TEST(AveragePrecision, PerfectRankingIsOne) {
  EXPECT_NEAR(average_precision(perfect_ranking()), 1.0, 1e-6);
}

TEST(AveragePrecision, WorstRankingNearZero) {
  std::vector<ScoredDetection> dets;
  for (int i = 0; i < 5; ++i) {
    dets.push_back({0.9f - 0.01f * i, false, 0.0f});  // negatives on top
  }
  for (int i = 0; i < 5; ++i) {
    dets.push_back({0.3f - 0.01f * i, true, 0.8f});
  }
  const double ap = average_precision(dets);
  EXPECT_LT(ap, 0.55);
  EXPECT_GT(ap, 0.0);  // positives still eventually recalled
}

TEST(AveragePrecision, BadLocalizationKillsTruePositives) {
  std::vector<ScoredDetection> dets = perfect_ranking();
  for (auto& d : dets) {
    if (d.has_object) d.iou = 0.3f;  // below the 0.5 threshold
  }
  EXPECT_NEAR(average_precision(dets), 0.0, 1e-9);
  // A lenient threshold restores them.
  EXPECT_NEAR(average_precision(dets, 0.25f), 1.0, 1e-6);
}

TEST(AveragePrecision, InterleavedRankingKnownValue) {
  // Ranking: TP, FP, TP with 2 positives total.
  std::vector<ScoredDetection> dets{
      {0.9f, true, 0.9f}, {0.8f, false, 0.0f}, {0.7f, true, 0.9f}};
  // Recall steps: 0.5 at precision 1.0, then 1.0 at precision 2/3.
  EXPECT_NEAR(average_precision(dets), 0.5 * 1.0 + 0.5 * (2.0 / 3.0), 1e-6);
}

TEST(PrecisionRecallCurve, RecallIsMonotone) {
  const auto curve = precision_recall_curve(perfect_ranking());
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
  EXPECT_NEAR(curve.back().recall, 1.0f, 1e-6f);
  EXPECT_NEAR(curve.front().precision, 1.0f, 1e-6f);
}

TEST(PrecisionRecallCurve, ThresholdsDescend) {
  const auto curve = precision_recall_curve(perfect_ranking());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(AccuracyAtThreshold, CountsBothClasses) {
  std::vector<ScoredDetection> dets{
      {0.9f, true, 0.8f},   // TP
      {0.2f, true, 0.8f},   // FN
      {0.7f, false, 0.0f},  // FP
      {0.1f, false, 0.0f},  // TN
  };
  EXPECT_NEAR(accuracy_at_threshold(dets, 0.5f), 0.5, 1e-9);
  EXPECT_THROW(accuracy_at_threshold({}, 0.5f), dcn::Error);
}

TEST(MeanIou, AveragesConfidentPositiveDetections) {
  std::vector<ScoredDetection> dets{
      {0.9f, true, 0.8f},
      {0.8f, true, 0.4f},
      {0.2f, true, 0.9f},   // below threshold: excluded
      {0.9f, false, 0.0f},  // negative image: excluded
  };
  EXPECT_NEAR(mean_iou_of_detections(dets, 0.5f), 0.6, 1e-6);
  EXPECT_EQ(mean_iou_of_detections({}, 0.5f), 0.0);
}

TEST(AveragePrecision, MonotoneEnvelopeLiftsSawtoothDips) {
  // Ranking: TP, FP, TP, TP with 3 positives. Raw operating points:
  // (r=1/3, p=1), (1/3, 1/2), (2/3, 2/3), (1, 3/4). The VOC envelope lifts
  // the two interior precisions to 3/4, giving
  // AP = 1/3 * 1 + 1/3 * 3/4 + 1/3 * 3/4 = 5/6 (raw sum: 0.8056).
  std::vector<ScoredDetection> dets{{0.9f, true, 0.9f},
                                    {0.8f, false, 0.0f},
                                    {0.7f, true, 0.9f},
                                    {0.6f, true, 0.9f}};
  EXPECT_NEAR(average_precision(dets), 5.0 / 6.0, 1e-6);
}

TEST(AveragePrecision, InvariantToOrderOfTiedConfidences) {
  // A TP and an FP share confidence 0.8: no threshold separates them, so
  // AP must not depend on which the sort happens to place first. Both
  // orders collapse to the operating points (r=0.5, p=1), (1, 2/3):
  // AP = 0.5 * 1 + 0.5 * 2/3 = 5/6.
  std::vector<ScoredDetection> tp_first{
      {0.9f, true, 0.9f}, {0.8f, true, 0.9f}, {0.8f, false, 0.0f}};
  std::vector<ScoredDetection> fp_first{
      {0.9f, true, 0.9f}, {0.8f, false, 0.0f}, {0.8f, true, 0.9f}};
  EXPECT_NEAR(average_precision(tp_first), 5.0 / 6.0, 1e-6);
  EXPECT_EQ(average_precision(tp_first), average_precision(fp_first));
}

TEST(AveragePrecision, EmptyAndAllNegativeInputs) {
  EXPECT_EQ(average_precision({}), 0.0);
  std::vector<ScoredDetection> negatives{{0.9f, false, 0.0f}};
  EXPECT_EQ(average_precision(negatives), 0.0);
}

}  // namespace
}  // namespace dcn::detect
