// Tests for the SPP-Net configuration codec (Table-1 notation).
#include "detect/sppnet_config.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "detect/sppnet.hpp"

namespace dcn::detect {
namespace {

TEST(Notation, ParsesOriginalSppNet) {
  const SppNetConfig config = parse_notation(
      "C_{64,3,1}-P_{2,2}-C_{128,3,1}-P_{2,2}-C_{256,3,1}-P_{2,2}"
      "-SPP_{4,2,1}-F_{1024}");
  ASSERT_EQ(config.trunk.size(), 6u);
  EXPECT_EQ(config.trunk[0].kind, TrunkStage::Kind::kConv);
  EXPECT_EQ(config.trunk[0].conv.filters, 64);
  EXPECT_EQ(config.trunk[0].conv.kernel, 3);
  EXPECT_EQ(config.trunk[1].kind, TrunkStage::Kind::kPool);
  EXPECT_EQ(config.trunk[1].pool.stride, 2);
  EXPECT_EQ(config.spp_levels, (std::vector<std::int64_t>{4, 2, 1}));
  EXPECT_EQ(config.fc_sizes, (std::vector<std::int64_t>{1024}));
  EXPECT_EQ(config.in_channels, 4);
}

TEST(Notation, RoundTripsAllTable1Models) {
  for (const SppNetConfig& model : table1_models()) {
    const std::string notation = model.to_notation();
    const SppNetConfig reparsed = parse_notation(notation);
    EXPECT_EQ(reparsed.to_notation(), notation) << model.name;
    EXPECT_EQ(reparsed.spp_levels, model.spp_levels);
    EXPECT_EQ(reparsed.fc_sizes, model.fc_sizes);
    EXPECT_EQ(reparsed.trunk.size(), model.trunk.size());
  }
}

TEST(Notation, Table1PresetsMatchPaper) {
  const SppNetConfig original = original_sppnet();
  EXPECT_EQ(original.trunk[0].conv.kernel, 3);
  EXPECT_EQ(original.spp_levels, (std::vector<std::int64_t>{4, 2, 1}));
  EXPECT_EQ(original.fc_sizes, (std::vector<std::int64_t>{1024}));

  const SppNetConfig c1 = sppnet_candidate1();
  EXPECT_EQ(c1.trunk[0].conv.kernel, 5);  // C_{64,5,1}
  EXPECT_EQ(c1.spp_levels, (std::vector<std::int64_t>{4, 2, 1}));
  EXPECT_EQ(c1.fc_sizes, (std::vector<std::int64_t>{1024}));

  const SppNetConfig c2 = sppnet_candidate2();
  EXPECT_EQ(c2.trunk[0].conv.kernel, 3);
  EXPECT_EQ(c2.spp_levels, (std::vector<std::int64_t>{5, 2, 1}));
  EXPECT_EQ(c2.fc_sizes, (std::vector<std::int64_t>{4096}));

  const SppNetConfig c3 = sppnet_candidate3();
  EXPECT_EQ(c3.spp_levels, (std::vector<std::int64_t>{5, 2, 1}));
  EXPECT_EQ(c3.fc_sizes, (std::vector<std::int64_t>{2048}));
}

TEST(Notation, MalformedInputsThrow) {
  EXPECT_THROW(parse_notation(""), dcn::Error);
  EXPECT_THROW(parse_notation("C_{64,3,1}"), dcn::Error);  // no SPP
  EXPECT_THROW(parse_notation("X_{1}-SPP_{2,1}"), dcn::Error);
  EXPECT_THROW(parse_notation("C_{64,3}-SPP_{2,1}"), dcn::Error);
  EXPECT_THROW(parse_notation("C_{64,3,1}-SPP_{2,1}-SPP_{2,1}"), dcn::Error);
  EXPECT_THROW(parse_notation("F_{128}-SPP_{2,1}"), dcn::Error);
  EXPECT_THROW(parse_notation("C_{64,a,1}-SPP_{2,1}"), dcn::Error);
  EXPECT_THROW(parse_notation("SPP_{2,1}-C_{64,3,1}"), dcn::Error);
}

TEST(Config, SppFeaturesAndChannels) {
  const SppNetConfig config = original_sppnet();
  EXPECT_EQ(config.trunk_out_channels(), 256);
  // 256 * (16 + 4 + 1)
  EXPECT_EQ(config.spp_features(), 256 * 21);
  const SppNetConfig c2 = sppnet_candidate2();
  EXPECT_EQ(c2.spp_features(), 256 * 30);  // 25 + 4 + 1
}

TEST(Config, TrunkOutSize) {
  const SppNetConfig config = original_sppnet();
  // 100 -> conv(same) 100 -> pool 50 -> 50 -> 25 -> 25 -> 12
  EXPECT_EQ(config.trunk_out_size(100), 12);
  EXPECT_EQ(config.trunk_out_size(64), 8);
  EXPECT_EQ(config.trunk_out_size(32), 4);
}

TEST(Config, ParameterCountMatchesBuiltModel) {
  Rng rng(1);
  for (const SppNetConfig& config : table1_models()) {
    SppNet model(config, rng);
    EXPECT_EQ(config.parameter_count(), model.num_parameters())
        << config.name;
  }
}

TEST(Config, ParameterCountOrdering) {
  // Wider FC -> more parameters; SPP_{5} -> larger FC input than SPP_{4}.
  EXPECT_GT(sppnet_candidate2().parameter_count(),
            sppnet_candidate3().parameter_count());
  EXPECT_GT(sppnet_candidate3().parameter_count(),
            original_sppnet().parameter_count());
}

TEST(Config, CustomChannelCount) {
  const SppNetConfig config =
      parse_notation("C_{8,3,1}-SPP_{2,1}-F_{16}", 1);
  EXPECT_EQ(config.in_channels, 1);
  EXPECT_EQ(config.spp_features(), 8 * 5);
}

}  // namespace
}  // namespace dcn::detect
