// Tests for roads, crossings, rendering, patches, and dataset assembly.
#include "geo/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::geo {
namespace {

DatasetConfig small_config() {
  DatasetConfig config;
  config.seed = 7;
  config.num_worlds = 1;
  config.terrain.rows = 256;
  config.terrain.cols = 256;
  config.roads.spacing = 64;
  config.stream_threshold = 200.0;
  config.patch_size = 32;
  config.positive_jitter = 3;
  return config;
}

TEST(Roads, SynthesisAndRasterization) {
  Rng rng(5);
  RoadConfig config;
  config.spacing = 64;
  const auto roads = synthesize_roads(256, 256, config, rng);
  EXPECT_GE(roads.size(), 4u);
  const Raster mask = rasterize_roads(256, 256, roads);
  double covered = 0.0;
  for (std::int64_t i = 0; i < mask.size(); ++i) {
    EXPECT_GE(mask.data()[i], 0.0f);
    EXPECT_LE(mask.data()[i], 1.0f);
    covered += mask.data()[i] > 0.5f ? 1 : 0;
  }
  // Roads cover a small but nonzero fraction of the scene.
  EXPECT_GT(covered / mask.size(), 0.01);
  EXPECT_LT(covered / mask.size(), 0.5);
}

TEST(Roads, CenterlinesStayInBounds) {
  Rng rng(9);
  RoadConfig config;
  config.spacing = 50;
  for (const Road& road : synthesize_roads(128, 200, config, rng)) {
    for (const auto& [r, c] : road.centerline) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 128);
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 200);
    }
  }
}

TEST(Crossings, FoundWhereStreamMeetsRoad) {
  // One horizontal stream, one vertical road -> exactly one crossing.
  Raster streams(64, 64);
  for (std::int64_t c = 0; c < 64; ++c) streams.at(32, c) = 1.0f;
  Road road;
  road.width = 4.0;
  for (std::int64_t r = 0; r < 64; ++r) road.centerline.emplace_back(r, 20);
  const auto crossings = find_crossings(streams, {road});
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_EQ(crossings[0].col, 20);
  EXPECT_NEAR(static_cast<double>(crossings[0].row), 32.0, 1.5);
}

TEST(Crossings, MinSeparationSuppressesDuplicates) {
  Raster streams(64, 64);
  for (std::int64_t c = 0; c < 64; ++c) {
    streams.at(30, c) = 1.0f;
    streams.at(34, c) = 1.0f;  // two parallel streams 4 cells apart
  }
  Road road;
  road.width = 4.0;
  for (std::int64_t r = 0; r < 64; ++r) road.centerline.emplace_back(r, 20);
  EXPECT_EQ(find_crossings(streams, {road}, 24).size(), 1u);
  // A small separation admits one crossing per stream (the ±1 stream
  // lookaround can register a few extra cells, never fewer than the two
  // physical crossings).
  const auto fine = find_crossings(streams, {road}, 2);
  EXPECT_GE(fine.size(), 2u);
  EXPECT_LE(fine.size(), 6u);
  EXPECT_GT(fine.size(), find_crossings(streams, {road}, 24).size());
}

TEST(World, SynthesisProducesConsistentLayers) {
  Rng rng(7);
  const DatasetConfig config = small_config();
  const World world = synthesize_world(config, rng);
  EXPECT_EQ(world.dem.rows(), 256);
  EXPECT_EQ(world.photo.rows(), 256);
  EXPECT_FALSE(world.roads.empty());
  EXPECT_FALSE(world.crossings.empty());
  // Bands in [0, 1].
  for (const Raster& band : world.photo.bands) {
    EXPECT_GE(band.min_value(), 0.0f);
    EXPECT_LE(band.max_value(), 1.0f);
  }
  // Every crossing sits on (or adjacent to) a road.
  for (const Crossing& x : world.crossings) {
    float road_near = 0.0f;
    for (int dr = -2; dr <= 2; ++dr) {
      for (int dc = -2; dc <= 2; ++dc) {
        if (world.road_mask.in_bounds(x.row + dr, x.col + dc)) {
          road_near = std::max(road_near,
                               world.road_mask.at(x.row + dr, x.col + dc));
        }
      }
    }
    EXPECT_GT(road_near, 0.5f);
  }
}

TEST(Patch, ClipShapeAndEdgeClamping) {
  Rng rng(7);
  const DatasetConfig config = small_config();
  const World world = synthesize_world(config, rng);
  const Tensor patch = clip_patch(world.photo, 0, 0, 32);  // corner: clamps
  EXPECT_EQ(patch.shape(), Shape({4, 32, 32}));
  for (std::int64_t i = 0; i < patch.numel(); ++i) {
    EXPECT_GE(patch[i], 0.0f);
    EXPECT_LE(patch[i], 1.0f);
  }
}

TEST(Patch, PositiveBoxCoversCrossing) {
  Rng rng(7);
  const DatasetConfig config = small_config();
  const World world = synthesize_world(config, rng);
  Rng jitter_rng(13);
  for (const Crossing& x : world.crossings) {
    const PatchSample sample =
        make_positive(world.photo, x, 32, 3, jitter_rng);
    EXPECT_EQ(sample.label, 1.0f);
    // Box center within the patch and box has positive extent.
    EXPECT_GE(sample.box[0], 0.0f);
    EXPECT_LE(sample.box[0], 1.0f);
    EXPECT_GT(sample.box[2], 0.0f);
    EXPECT_GT(sample.box[3], 0.0f);
    // Jitter <= 3 cells on a 32 patch keeps the center near the middle.
    EXPECT_NEAR(sample.box[0], 0.5f, 3.0f / 32.0f + 1e-5f);
    EXPECT_NEAR(sample.box[1], 0.5f, 3.0f / 32.0f + 1e-5f);
  }
}

TEST(Patch, NegativesAvoidCrossings) {
  Rng rng(7);
  const DatasetConfig config = small_config();
  const World world = synthesize_world(config, rng);
  Rng neg_rng(17);
  PatchSample neg;
  ASSERT_TRUE(make_negative(world.photo, world.crossings, 32, 32, neg_rng,
                            neg));
  EXPECT_EQ(neg.label, 0.0f);
  EXPECT_EQ(neg.box[2], 0.0f);
}

TEST(Patch, FlipsAreInvolutionsAndRemapBoxes) {
  Rng rng(7);
  const DatasetConfig config = small_config();
  const World world = synthesize_world(config, rng);
  Rng jitter_rng(19);
  const PatchSample sample =
      make_positive(world.photo, world.crossings[0], 32, 3, jitter_rng);
  const PatchSample flipped = flip_horizontal(sample);
  EXPECT_NEAR(flipped.box[0], 1.0f - sample.box[0], 1e-6f);
  EXPECT_EQ(flipped.box[1], sample.box[1]);
  const PatchSample back = flip_horizontal(flipped);
  for (std::int64_t i = 0; i < sample.image.numel(); ++i) {
    ASSERT_EQ(back.image[i], sample.image[i]) << "pixel " << i;
  }
  const PatchSample vflip = flip_vertical(sample);
  EXPECT_NEAR(vflip.box[1], 1.0f - sample.box[1], 1e-6f);
  EXPECT_EQ(vflip.box[0], sample.box[0]);
}

TEST(Dataset, SynthesisDeterministicAndBalanced) {
  const DatasetConfig config = small_config();
  const DrainageDataset a = DrainageDataset::synthesize(config);
  const DrainageDataset b = DrainageDataset::synthesize(config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sample(i).label, b.sample(i).label);
    EXPECT_EQ(a.sample(i).image[0], b.sample(i).image[0]);
  }
  // Roughly balanced classes (negative_ratio = 1).
  const double pos_frac =
      static_cast<double>(a.num_positives()) / static_cast<double>(a.size());
  EXPECT_GT(pos_frac, 0.35);
  EXPECT_LT(pos_frac, 0.65);
}

TEST(Dataset, MaxSamplesTrims) {
  DatasetConfig config = small_config();
  config.max_samples = 10;
  const DrainageDataset dataset = DrainageDataset::synthesize(config);
  EXPECT_EQ(dataset.size(), 10u);
}

TEST(Dataset, SplitIsDisjointAndComplete) {
  const DrainageDataset dataset = DrainageDataset::synthesize(small_config());
  const Split split = dataset.split(0.8, 3);
  EXPECT_EQ(split.train.size() + split.test.size(), dataset.size());
  std::set<std::size_t> seen(split.train.begin(), split.train.end());
  for (std::size_t idx : split.test) {
    EXPECT_FALSE(seen.count(idx));
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), dataset.size());
  // 80/20 ratio within one sample.
  EXPECT_NEAR(static_cast<double>(split.train.size()) / dataset.size(), 0.8,
              0.05);
}

TEST(Dataset, BatchAssembly) {
  const DrainageDataset dataset = DrainageDataset::synthesize(small_config());
  const Batch batch = dataset.make_batch({0, 1, 2});
  EXPECT_EQ(batch.size(), 3);
  EXPECT_EQ(batch.images.shape(), Shape({3, 4, 32, 32}));
  EXPECT_EQ(batch.labels.shape(), Shape({3}));
  EXPECT_EQ(batch.boxes.shape(), Shape({3, 4}));
  EXPECT_EQ(batch.labels[1], dataset.sample(1).label);
  EXPECT_EQ(batch.images[4 * 32 * 32], dataset.sample(1).image[0]);
}

TEST(Dataset, BatchIndicesPartition) {
  const std::vector<std::size_t> indices{0, 1, 2, 3, 4, 5, 6};
  const auto batches = DrainageDataset::batch_indices(indices, 3);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(batches[2].size(), 1u);
  EXPECT_EQ(batches[2][0], 6u);
}

TEST(Dataset, CulvertContrastControlsSignature) {
  // With zero contrast the culvert signature disappears from positives —
  // the dataset difficulty knob the accuracy benches document.
  DatasetConfig hard = small_config();
  hard.render.culvert_contrast = 0.0;
  hard.render.sensor_noise = 0.0;
  DatasetConfig easy = small_config();
  easy.render.culvert_contrast = 1.0;
  easy.render.sensor_noise = 0.0;
  Rng rng_hard(3);
  Rng rng_easy(3);
  const World wh = synthesize_world(hard, rng_hard);
  const World we = synthesize_world(easy, rng_easy);
  ASSERT_FALSE(we.crossings.empty());
  // The easy world's crossing neighborhoods are visibly brighter (concrete
  // headwalls) than the hard world's.
  double bright_easy = 0.0;
  double bright_hard = 0.0;
  for (std::size_t i = 0;
       i < std::min(we.crossings.size(), wh.crossings.size()); ++i) {
    bright_easy += we.photo.bands[0].at_clamped(we.crossings[i].row,
                                                we.crossings[i].col + 3);
    bright_hard += wh.photo.bands[0].at_clamped(wh.crossings[i].row,
                                                wh.crossings[i].col + 3);
  }
  EXPECT_GT(bright_easy, bright_hard);
}

}  // namespace
}  // namespace dcn::geo
