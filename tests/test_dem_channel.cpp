// Tests for the hillshade renderer and the optional DEM (fifth) channel.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "detect/sppnet.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "geo/render.hpp"

namespace dcn::geo {
namespace {

TEST(Hillshade, FlatTerrainIsUniform) {
  const Raster flat(16, 16, 100.0f);
  const Raster shade = hillshade(flat);
  // cos(zenith) for 45-degree sun: every cell identical.
  const float expected = shade.at(8, 8);
  for (std::int64_t i = 0; i < shade.size(); ++i) {
    EXPECT_NEAR(shade.data()[i], expected, 1e-6f);
    EXPECT_GE(shade.data()[i], 0.0f);
    EXPECT_LE(shade.data()[i], 1.0f);
  }
  EXPECT_NEAR(expected, std::cos((90.0 - 45.0) * M_PI / 180.0), 1e-4f);
}

TEST(Hillshade, SlopesFacingTheSunAreBrighter) {
  // Sun from the northwest (default azimuth 315): a NW-facing slope is
  // brighter than a SE-facing slope.
  Raster nw_facing(16, 16);
  Raster se_facing(16, 16);
  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      nw_facing.at(r, c) = static_cast<float>(r + c);       // descends to NW
      se_facing.at(r, c) = static_cast<float>(-(r + c));    // descends to SE
    }
  }
  EXPECT_GT(hillshade(nw_facing).at(8, 8), hillshade(se_facing).at(8, 8));
}

TEST(Hillshade, EmbankmentsCastVisibleRelief) {
  // A road embankment on flat terrain produces local contrast.
  Raster dem(32, 32, 50.0f);
  for (std::int64_t r = 0; r < 32; ++r) dem.at(r, 16) += 2.0f;
  const Raster shade = hillshade(dem);
  float min_near = 1.0f;
  float max_near = 0.0f;
  for (std::int64_t r = 8; r < 24; ++r) {
    for (std::int64_t c = 14; c <= 18; ++c) {
      min_near = std::min(min_near, shade.at(r, c));
      max_near = std::max(max_near, shade.at(r, c));
    }
  }
  EXPECT_GT(max_near - min_near, 0.1f);
}

DatasetConfig dem_config() {
  DatasetConfig config;
  config.seed = 11;
  config.num_worlds = 1;
  config.terrain.rows = 256;
  config.terrain.cols = 256;
  config.roads.spacing = 64;
  config.stream_threshold = 200.0;
  config.patch_size = 24;
  config.include_dem_channel = true;
  return config;
}

TEST(DemChannel, DatasetProducesFiveChannelPatches) {
  const auto dataset = DrainageDataset::synthesize(dem_config());
  ASSERT_GT(dataset.size(), 10u);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(dataset.sample(i).image.dim(0), 5);
    EXPECT_EQ(dataset.sample(i).image.dim(1), 24);
  }
  const Batch batch = dataset.make_batch({0, 1});
  EXPECT_EQ(batch.images.shape(), Shape({2, 5, 24, 24}));
}

TEST(DemChannel, FifthChannelIsTheHillshade) {
  DatasetConfig config = dem_config();
  Rng rng(config.seed);
  const World world = synthesize_world(config, rng);
  const Tensor patch =
      clip_patch(world.photo, 100, 100, 16, &world.hillshade);
  ASSERT_EQ(patch.dim(0), 5);
  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      EXPECT_EQ(patch.at({4, r, c}),
                world.hillshade.at(100 - 8 + r, 100 - 8 + c));
    }
  }
}

TEST(DemChannel, FlipsPreserveChannelCount) {
  const auto dataset = DrainageDataset::synthesize(dem_config());
  const PatchSample& sample = dataset.sample(0);
  const PatchSample flipped = flip_horizontal(sample);
  EXPECT_EQ(flipped.image.shape(), sample.image.shape());
  const PatchSample back = flip_horizontal(flipped);
  for (std::int64_t i = 0; i < sample.image.numel(); ++i) {
    ASSERT_EQ(back.image[i], sample.image[i]);
  }
}

TEST(DemChannel, FiveChannelModelTrains) {
  const auto dataset = DrainageDataset::synthesize(dem_config());
  detect::SppNetConfig config = detect::parse_notation(
      "C_{6,3,1}-P_{2,2}-SPP_{2,1}-F_{16}", /*in_channels=*/5);
  Rng rng(3);
  detect::SppNet model(config, rng);
  const Split split = dataset.split(0.8, 3);
  detect::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.verbose = false;
  const auto history =
      detect::train_detector(model, dataset, split, train_config);
  EXPECT_LT(history.epochs.back().mean_loss,
            history.epochs.front().mean_loss * 1.5);
  EXPECT_GE(history.final_eval.average_precision, 0.0);
}

}  // namespace
}  // namespace dcn::geo
