// Tests for the parallel-loop helpers, wall timer, and PPM/PGM writers.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <numeric>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/time.hpp"
#include "geo/ppm.hpp"
#include "geo/render.hpp"

namespace dcn {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  int calls = 0;
  parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  parallel_for(7, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallTripCountsRunSerially) {
  // Below the grain the loop must still produce correct results.
  std::vector<int> out(10, 0);
  parallel_for(0, 10, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = static_cast<int>(i * i);
  },
               /*grain=*/1000);
  EXPECT_EQ(out[9], 81);
}

TEST(ParallelForChunked, PartitionIsExact) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for_chunked(0, 5000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ReductionMatchesSerial) {
  const std::int64_t n = 4096;
  std::vector<double> values(static_cast<std::size_t>(n));
  Rng rng(3);
  for (auto& v : values) v = rng.uniform();
  std::vector<double> partial(static_cast<std::size_t>(n));
  parallel_for(0, n, [&](std::int64_t i) {
    partial[static_cast<std::size_t>(i)] =
        values[static_cast<std::size_t>(i)] * 2.0;
  });
  const double serial =
      2.0 * std::accumulate(values.begin(), values.end(), 0.0);
  const double parallel =
      std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_NEAR(parallel, serial, 1e-9);
}

TEST(Threads, SetNumThreadsRoundTrips) {
  const int before = hardware_threads();
  set_num_threads(2);
  EXPECT_EQ(hardware_threads(), hardware_threads() >= 1 ? hardware_threads()
                                                        : 1);
  set_num_threads(0);  // reset to default
  EXPECT_GE(hardware_threads(), 1);
  (void)before;
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  // Busy-wait a tiny amount of real time.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += i * 1e-9;
  EXPECT_GT(timer.seconds(), 0.0);
  EXPECT_GT(timer.milliseconds(), 0.0);
  const double before = timer.seconds();
  timer.reset();
  EXPECT_LT(timer.seconds(), before + 1.0);
}

geo::Orthophoto tiny_photo() {
  geo::Orthophoto photo;
  for (auto& band : photo.bands) band = geo::Raster(8, 10, 0.5f);
  photo.bands[0].at(0, 0) = 1.0f;
  return photo;
}

TEST(Ppm, RgbFileHasCorrectHeaderAndSize) {
  const std::string path = testing::TempDir() + "/dcn_test.ppm";
  geo::write_ppm_rgb(path, tiny_photo());
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 10);
  EXPECT_EQ(h, 8);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(10 * 8 * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
  // First pixel's red channel is 255 (we set band 0 to 1.0).
  EXPECT_EQ(static_cast<unsigned char>(pixels[0]), 255);
}

TEST(Pgm, GrayscaleNormalizes) {
  const std::string path = testing::TempDir() + "/dcn_test.pgm";
  geo::Raster raster(4, 4, 3.0f);
  raster.at(0, 0) = 1.0f;  // min
  raster.at(3, 3) = 5.0f;  // max
  geo::write_pgm(path, raster);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  in.get();
  std::vector<unsigned char> pixels(16);
  in.read(reinterpret_cast<char*>(pixels.data()), 16);
  EXPECT_EQ(pixels[0], 0);     // min -> 0
  EXPECT_EQ(pixels[15], 255);  // max -> 255
}

TEST(PatchPpm, DrawsBoxOutline) {
  const std::string path = testing::TempDir() + "/dcn_patch.ppm";
  Tensor patch(Shape{4, 16, 16}, 0.0f);
  const float box[4] = {0.5f, 0.5f, 0.5f, 0.5f};
  geo::write_patch_ppm(path, patch, box);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  in.get();
  std::vector<unsigned char> pixels(16 * 16 * 3);
  in.read(reinterpret_cast<char*>(pixels.data()),
          static_cast<std::streamsize>(pixels.size()));
  // Box corner (4,4) painted white on the black patch.
  EXPECT_EQ(pixels[(4 * 16 + 4) * 3], 255);
  // Center remains black.
  EXPECT_EQ(pixels[(8 * 16 + 8) * 3], 0);
}

TEST(PatchPpm, RejectsWrongRank) {
  EXPECT_THROW(
      geo::write_patch_ppm(testing::TempDir() + "/x.ppm", Tensor(Shape{16, 16})),
      Error);
}

}  // namespace
}  // namespace dcn
