// Tests for the SppNet model and the fixed-input baseline.
#include "detect/sppnet.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "detect/fixed_cnn.hpp"
#include "detect/imageops.hpp"

namespace dcn::detect {
namespace {

SppNetConfig tiny_config() {
  SppNetConfig config = parse_notation(
      "C_{4,3,1}-P_{2,2}-C_{8,3,1}-P_{2,2}-SPP_{2,1}-F_{16}", 4);
  config.name = "tiny";
  return config;
}

TEST(SppNet, OutputShapeIsNx5) {
  Rng rng(1);
  SppNet model(tiny_config(), rng);
  Tensor x(Shape{3, 4, 24, 24}, 0.5f);
  const Tensor y = model.forward(x);
  EXPECT_EQ(y.shape(), Shape({3, 5}));
}

TEST(SppNet, AcceptsVariableInputSizes) {
  // The paper's central SPP property: one set of weights, any input size.
  Rng rng(1);
  SppNet model(tiny_config(), rng);
  for (std::int64_t size : {16, 24, 33, 50, 100}) {
    Tensor x(Shape{1, 4, size, size}, 0.25f);
    const Tensor y = model.forward(x);
    EXPECT_EQ(y.shape(), Shape({1, 5})) << "input " << size;
  }
}

TEST(SppNet, RectangularInput) {
  Rng rng(1);
  SppNet model(tiny_config(), rng);
  Tensor x(Shape{1, 4, 20, 37}, 0.25f);
  EXPECT_EQ(model.forward(x).shape(), Shape({1, 5}));
}

TEST(SppNet, DeterministicGivenSeed) {
  Rng rng_a(9);
  Rng rng_b(9);
  SppNet a(tiny_config(), rng_a);
  SppNet b(tiny_config(), rng_b);
  Tensor x(Shape{1, 4, 16, 16}, 0.5f);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(SppNet, HeadInitEncodesBoxPrior) {
  Rng rng(1);
  SppNet model(tiny_config(), rng);
  Tensor x(Shape{1, 4, 16, 16}, 0.0f);  // zero input isolates biases
  const Tensor y = model.forward(x);
  EXPECT_NEAR(y[0], -1.0f, 1e-5f);  // objectness prior
  EXPECT_NEAR(y[1], 0.5f, 1e-5f);   // cx prior
  EXPECT_NEAR(y[3], 0.2f, 1e-5f);   // w prior
}

TEST(SppNet, DecodeAppliesSigmoid) {
  Tensor head(Shape{2, 5});
  head[0] = 0.0f;   // conf 0.5
  head[5] = 10.0f;  // conf ~1
  head[6] = 0.3f;
  const auto preds = SppNet::decode(head);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_NEAR(preds[0].confidence, 0.5f, 1e-6f);
  EXPECT_GT(preds[1].confidence, 0.99f);
  EXPECT_EQ(preds[1].box[0], 0.3f);
}

TEST(SppNet, DecodeRejectsWrongShape) {
  EXPECT_THROW(SppNet::decode(Tensor(Shape{2, 4})), dcn::Error);
}

TEST(SppNet, PredictRestoresTrainingFlag) {
  Rng rng(1);
  SppNet model(tiny_config(), rng);
  model.set_training(true);
  Tensor x(Shape{1, 4, 16, 16}, 0.5f);
  (void)model.predict(x);
  EXPECT_TRUE(model.is_training());
}

TEST(SppNet, ParametersCoverTrunkAndHead) {
  Rng rng(1);
  SppNet model(tiny_config(), rng);
  bool has_trunk = false;
  bool has_head = false;
  for (const ParamRef& p : model.parameters()) {
    if (p.name.rfind("trunk.", 0) == 0) has_trunk = true;
    if (p.name.rfind("head.", 0) == 0) has_head = true;
    EXPECT_NE(p.value, nullptr);
    EXPECT_NE(p.grad, nullptr);
  }
  EXPECT_TRUE(has_trunk);
  EXPECT_TRUE(has_head);
}

TEST(SppNet, BackwardProducesInputShapedGradient) {
  Rng rng(1);
  SppNet model(tiny_config(), rng);
  Tensor x(Shape{2, 4, 16, 16}, 0.5f);
  const Tensor y = model.forward(x);
  const Tensor gx = model.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(FixedInputCnn, MatchingSizePassesThrough) {
  Rng rng(2);
  FixedInputCnn model(tiny_config(), 16, rng);
  Tensor x(Shape{2, 4, 16, 16}, 0.5f);
  EXPECT_EQ(model.forward(x).shape(), Shape({2, 5}));
}

TEST(FixedInputCnn, WarpsForeignSizes) {
  Rng rng(2);
  FixedInputCnn model(tiny_config(), 16, rng);
  Tensor x(Shape{1, 4, 40, 40}, 0.5f);
  EXPECT_EQ(model.forward(x).shape(), Shape({1, 5}));
}

TEST(FixedInputCnn, WarpChangesPredictionsButSppDoesNot) {
  // The motivation of §2.2 in miniature: for a scale-doubled input, the
  // fixed-size CNN must warp (losing fidelity) while SPP-Net consumes it
  // natively. Verify both produce valid outputs and that SPP output for
  // constant images is scale-invariant.
  Rng rng(3);
  SppNet spp(tiny_config(), rng);
  Tensor small(Shape{1, 4, 16, 16}, 0.7f);
  Tensor large(Shape{1, 4, 32, 32}, 0.7f);
  const Tensor ys = spp.forward(small);
  const Tensor yl = spp.forward(large);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(ys[i], yl[i], 1e-3f);  // constant image: max pools agree
  }
}

TEST(ImageOps, BilinearResizeKnownValues) {
  Tensor img(Shape{1, 2, 2});
  img[0] = 0.0f;
  img[1] = 1.0f;
  img[2] = 2.0f;
  img[3] = 3.0f;
  const Tensor up = bilinear_resize(img, 3, 3);
  EXPECT_EQ(up.shape(), Shape({1, 3, 3}));
  EXPECT_NEAR(up.at({0, 0, 0}), 0.0f, 1e-6f);
  EXPECT_NEAR(up.at({0, 2, 2}), 3.0f, 1e-6f);
  EXPECT_NEAR(up.at({0, 1, 1}), 1.5f, 1e-6f);
}

TEST(ImageOps, ResizeIdentityWhenSameSize) {
  Rng rng(4);
  Tensor img(Shape{2, 5, 5});
  img.fill_uniform(rng, 0.0f, 1.0f);
  const Tensor same = bilinear_resize(img, 5, 5);
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_NEAR(same[i], img[i], 1e-6f);
  }
}

TEST(ImageOps, CenterCrop) {
  Tensor img(Shape{1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) img[i] = static_cast<float>(i);
  const Tensor crop = center_crop(img, 2);
  EXPECT_EQ(crop.shape(), Shape({1, 2, 2}));
  EXPECT_EQ(crop[0], 5.0f);  // (1,1)
  EXPECT_EQ(crop[3], 10.0f);
}

TEST(ImageOps, CropBoxExtractsRegion) {
  Tensor img(Shape{1, 10, 10});
  for (std::int64_t i = 0; i < 100; ++i) img[i] = static_cast<float>(i);
  const float box[4] = {0.5f, 0.5f, 0.4f, 0.4f};  // center 4x4-ish region
  const Tensor crop = crop_box(img, box);
  EXPECT_GE(crop.dim(1), 2);
  EXPECT_GE(crop.dim(2), 2);
  EXPECT_LE(crop.dim(1), 6);
}

TEST(ImageOps, CropBoxClampsDegenerateBoxes) {
  Tensor img(Shape{1, 8, 8}, 1.0f);
  const float box[4] = {0.0f, 0.0f, 0.01f, 0.01f};  // tiny corner box
  const Tensor crop = crop_box(img, box);
  EXPECT_GE(crop.dim(1), 2);  // floor of 2x2 enforced
  EXPECT_GE(crop.dim(2), 2);
}

}  // namespace
}  // namespace dcn::detect
