// Tests for im2col/col2im: direct-convolution equivalence and adjointness.
#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include <array>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "tensor/gemm.hpp"

namespace dcn {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Naive direct convolution for one image: out[oc, oy, ox].
std::vector<float> direct_conv(const std::vector<float>& im,
                               const ConvGeometry& g,
                               const std::vector<float>& weight,
                               std::int64_t out_channels) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::vector<float> out(
      static_cast<std::size_t>(out_channels * oh * ow), 0.0f);
  for (std::int64_t oc = 0; oc < out_channels; ++oc) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (std::int64_t c = 0; c < g.channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const std::int64_t iy = oy * g.stride_h - g.pad_h + ky;
              const std::int64_t ix = ox * g.stride_w - g.pad_w + kx;
              if (iy < 0 || iy >= g.height || ix < 0 || ix >= g.width) {
                continue;
              }
              const float iv = im[static_cast<std::size_t>(
                  (c * g.height + iy) * g.width + ix)];
              const float wv = weight[static_cast<std::size_t>(
                  ((oc * g.channels + c) * g.kernel_h + ky) * g.kernel_w +
                  kx)];
              acc += static_cast<double>(iv) * wv;
            }
          }
        }
        out[static_cast<std::size_t>((oc * oh + oy) * ow + ox)] =
            static_cast<float>(acc);
      }
    }
  }
  return out;
}

// (channels, height, width, kernel, stride, pad)
using ConvCase = std::tuple<int, int, int, int, int, int>;

class Im2ColMatchesDirect : public testing::TestWithParam<ConvCase> {};

TEST_P(Im2ColMatchesDirect, GemmLoweringEqualsDirectConv) {
  const auto [channels, height, width, kernel, stride, pad] = GetParam();
  ConvGeometry g;
  g.channels = channels;
  g.height = height;
  g.width = width;
  g.kernel_h = g.kernel_w = kernel;
  g.stride_h = g.stride_w = stride;
  g.pad_h = g.pad_w = pad;
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  ASSERT_GT(oh, 0);
  ASSERT_GT(ow, 0);

  Rng rng(static_cast<std::uint64_t>(channels * 31 + height * 7 + kernel));
  const std::int64_t out_channels = 3;
  const auto im =
      random_vec(static_cast<std::size_t>(channels * height * width), rng);
  const auto weight = random_vec(
      static_cast<std::size_t>(out_channels * channels * kernel * kernel),
      rng);

  // im2col + GEMM path.
  const std::int64_t k = channels * kernel * kernel;
  std::vector<float> col(static_cast<std::size_t>(k * oh * ow));
  im2col(im.data(), g, col.data());
  std::vector<float> out_gemm(
      static_cast<std::size_t>(out_channels * oh * ow));
  matmul(false, false, out_channels, oh * ow, k, weight.data(), col.data(),
         out_gemm.data());

  const auto out_direct = direct_conv(im, g, weight, out_channels);
  ASSERT_EQ(out_gemm.size(), out_direct.size());
  for (std::size_t i = 0; i < out_gemm.size(); ++i) {
    EXPECT_NEAR(out_gemm[i], out_direct[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColMatchesDirect,
    testing::Values(ConvCase{1, 5, 5, 3, 1, 1}, ConvCase{4, 10, 10, 3, 1, 1},
                    ConvCase{2, 8, 8, 5, 1, 2}, ConvCase{3, 9, 7, 3, 2, 1},
                    ConvCase{4, 12, 12, 1, 1, 0}, ConvCase{1, 6, 6, 3, 3, 0},
                    ConvCase{2, 11, 13, 7, 2, 3},
                    ConvCase{4, 16, 16, 9, 1, 4},
                    // Interior/edge split stress: padding at least the
                    // kernel span (all-edge rows/cols), a width narrower
                    // than the kernel, stride > kernel, and odd stride/pad
                    // mixes that make the valid-ox interval empty or
                    // one-sided on some taps.
                    ConvCase{1, 4, 4, 3, 1, 3}, ConvCase{2, 9, 2, 3, 1, 2},
                    ConvCase{1, 7, 7, 2, 5, 1}, ConvCase{3, 8, 5, 4, 3, 2},
                    ConvCase{1, 1, 1, 1, 1, 2}, ConvCase{2, 6, 9, 5, 4, 4}));

TEST(Im2Col, PaddingRegionsAreZero) {
  ConvGeometry g;
  g.channels = 1;
  g.height = 3;
  g.width = 3;
  g.kernel_h = g.kernel_w = 3;
  g.pad_h = g.pad_w = 1;
  std::vector<float> im(9, 1.0f);
  std::vector<float> col(static_cast<std::size_t>(9 * 9), -99.0f);
  im2col(im.data(), g, col.data());
  // First row of col corresponds to tap (ky=0, kx=0): for output (0,0) the
  // tap reads (-1,-1) which is padding -> 0.
  EXPECT_EQ(col[0], 0.0f);
  // Center tap (ky=1, kx=1) row: all in-bounds -> 1.
  const std::size_t center_row = 4 * 9;
  for (int i = 0; i < 9; ++i) EXPECT_EQ(col[center_row + i], 1.0f);
}

TEST(Im2Col, Col2ImIsAdjoint) {
  // <im2col(x), y> must equal <x, col2im(y)> for random x, y — the defining
  // property that makes the conv backward pass correct.
  ConvGeometry g;
  g.channels = 3;
  g.height = 7;
  g.width = 6;
  g.kernel_h = g.kernel_w = 3;
  g.stride_h = 2;
  g.stride_w = 1;
  g.pad_h = 1;
  g.pad_w = 0;
  const std::int64_t k = g.channels * g.kernel_h * g.kernel_w;
  const std::int64_t cols = g.out_h() * g.out_w();

  Rng rng(77);
  const auto x =
      random_vec(static_cast<std::size_t>(g.channels * g.height * g.width),
                 rng);
  const auto y = random_vec(static_cast<std::size_t>(k * cols), rng);

  std::vector<float> col(static_cast<std::size_t>(k * cols));
  im2col(x.data(), g, col.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    lhs += static_cast<double>(col[i]) * y[i];
  }

  std::vector<float> back(x.size(), 0.0f);
  col2im(y.data(), g, back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-3);
}

TEST(Im2Col, Col2ImIsAdjointAcrossEdgeGeometries) {
  // Same adjointness property swept over geometries that exercise the
  // interior fast path, the zero-filled edges, and strided accumulation.
  const std::vector<std::array<std::int64_t, 8>> cases = {
      // {c, h, w, kh, kw, stride_h|w merged below: sh, sw, pad}
      {2, 8, 8, 3, 3, 1, 1, 1},  {1, 4, 4, 3, 3, 1, 1, 3},
      {2, 9, 2, 3, 3, 1, 1, 2},  {1, 7, 7, 2, 2, 5, 5, 1},
      {3, 8, 5, 4, 4, 3, 2, 2},  {2, 6, 9, 5, 5, 4, 3, 4},
      {1, 10, 10, 1, 1, 2, 2, 0}};
  for (const auto& cs : cases) {
    ConvGeometry g;
    g.channels = cs[0];
    g.height = cs[1];
    g.width = cs[2];
    g.kernel_h = cs[3];
    g.kernel_w = cs[4];
    g.stride_h = cs[5];
    g.stride_w = cs[6];
    g.pad_h = g.pad_w = cs[7];
    ASSERT_GT(g.out_h(), 0);
    ASSERT_GT(g.out_w(), 0);
    const std::int64_t k = g.channels * g.kernel_h * g.kernel_w;
    const std::int64_t cols = g.out_h() * g.out_w();
    Rng rng(static_cast<std::uint64_t>(cs[0] * 131 + cs[1] * 17 + cs[7]));
    const auto x = random_vec(
        static_cast<std::size_t>(g.channels * g.height * g.width), rng);
    const auto y = random_vec(static_cast<std::size_t>(k * cols), rng);
    std::vector<float> col(static_cast<std::size_t>(k * cols));
    im2col(x.data(), g, col.data());
    double lhs = 0.0;
    for (std::size_t i = 0; i < col.size(); ++i) {
      lhs += static_cast<double>(col[i]) * y[i];
    }
    std::vector<float> back(x.size(), 0.0f);
    col2im(y.data(), g, back.data());
    double rhs = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      rhs += static_cast<double>(x[i]) * back[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-3)
        << "geometry " << g.channels << 'x' << g.height << 'x' << g.width
        << " k" << g.kernel_h << " s" << g.stride_h << '/' << g.stride_w
        << " p" << g.pad_h;
  }
}

TEST(Im2Col, Col2ImAccumulates) {
  ConvGeometry g;
  g.channels = 1;
  g.height = 4;
  g.width = 4;
  g.kernel_h = g.kernel_w = 2;
  g.stride_h = g.stride_w = 1;
  const std::int64_t k = 4;
  const std::int64_t cols = 9;
  std::vector<float> ones_col(static_cast<std::size_t>(k * cols), 1.0f);
  std::vector<float> im(16, 0.0f);
  col2im(ones_col.data(), g, im.data());
  // Center cells are covered by 4 windows, corners by 1.
  EXPECT_EQ(im[0], 1.0f);
  EXPECT_EQ(im[5], 4.0f);   // (1,1)
  EXPECT_EQ(im[15], 1.0f);  // (3,3)
}

}  // namespace
}  // namespace dcn
