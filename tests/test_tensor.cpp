// Tests for tensor/shape, tensor/tensor, tensor/serialize.
#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace dcn {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, ScalarShape) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, StridesRowMajor) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EqualityAndNegativeDims) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_THROW(Shape({-1, 2}), Error);
  EXPECT_THROW(Shape(std::vector<std::int64_t>{3, -4}), Error);
}

TEST(Shape, AxisOutOfRangeThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillValueConstructor) {
  const Tensor t(Shape{4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, AdoptDataValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}), Error);
}

TEST(Tensor, MultiDimIndexing) {
  Tensor t(Shape{2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_THROW(t.at({1}), Error);  // wrong rank
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = arange(6);
  t.reshape(Shape{2, 3});
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_THROW(t.reshape(Shape{4}), Error);
}

TEST(Tensor, ReshapedCopies) {
  const Tensor t = arange(4);
  Tensor r = t.reshaped(Shape{2, 2});
  r[0] = 100.0f;
  EXPECT_EQ(t[0], 0.0f);  // original untouched
}

TEST(Tensor, FillNormalStatistics) {
  Rng rng(3);
  Tensor t(Shape{10000});
  t.fill_normal(rng, 1.0f, 0.5f);
  double sum = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) sum += t[i];
  EXPECT_NEAR(sum / t.numel(), 1.0, 0.05);
}

TEST(Tensor, FillUniformBounds) {
  Rng rng(3);
  Tensor t(Shape{1000});
  t.fill_uniform(rng, -1.0f, 1.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 1.0f);
  }
}

TEST(Tensor, Factories) {
  EXPECT_EQ(ones(Shape{3})[1], 1.0f);
  EXPECT_EQ(full(Shape{2}, 9.0f)[0], 9.0f);
  const Tensor a = arange(5);
  EXPECT_EQ(a[4], 4.0f);
}

TEST(Tensor, ToStringTruncates) {
  const Tensor t = arange(100);
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[100]"), std::string::npos);
}

TEST(Serialize, TensorRoundTrip) {
  Rng rng(5);
  Tensor t(Shape{3, 4, 5});
  t.fill_normal(rng, 0.0f, 1.0f);
  std::stringstream stream;
  write_tensor(stream, t);
  const Tensor back = read_tensor(stream);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back[i], t[i]);
}

TEST(Serialize, ScalarRoundTrip) {
  Tensor t;
  t[0] = 3.25f;
  std::stringstream stream;
  write_tensor(stream, t);
  const Tensor back = read_tensor(stream);
  EXPECT_EQ(back.rank(), 0u);
  EXPECT_EQ(back[0], 3.25f);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream stream;
  stream << "JUNKDATA";
  EXPECT_THROW(read_tensor(stream), Error);
}

TEST(Serialize, TruncatedPayloadRejected) {
  Tensor t(Shape{100});
  std::stringstream stream;
  write_tensor(stream, t);
  std::string data = stream.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW(read_tensor(half), Error);
}

TEST(Serialize, NamedCollectionRoundTrip) {
  Rng rng(9);
  Tensor w(Shape{4, 4});
  w.fill_normal(rng, 0.0f, 1.0f);
  Tensor b(Shape{4}, 0.5f);
  const std::string path = testing::TempDir() + "/dcn_params.bin";
  save_tensors(path, {{"weight", w}, {"bias", b}});
  const auto loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].first, "weight");
  EXPECT_EQ(loaded[1].first, "bias");
  EXPECT_EQ(loaded[0].second.shape(), w.shape());
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_EQ(loaded[0].second[i], w[i]);
  }
  EXPECT_EQ(loaded[1].second[3], 0.5f);
}

}  // namespace
}  // namespace dcn
