// Tests for the inference-graph IR, builder, and block extraction.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/blocks.hpp"
#include "graph/builder.hpp"

namespace dcn::graph {
namespace {

Graph diamond_graph() {
  // input -> a -> {b, c} -> d(concat) -> out
  Graph g;
  const OpId in = g.add_op(OpKind::kInput, "in", {}, {}, TensorDesc{{8, 8, 8}});
  OpAttrs conv;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.out_channels = 8;
  const OpId a =
      g.add_op(OpKind::kConv2d, "a", conv, {in}, TensorDesc{{8, 8, 8}});
  OpAttrs pool;
  pool.pool_out = 2;
  const OpId b = g.add_op(OpKind::kAdaptivePool, "b", pool, {a},
                          TensorDesc{{8, 2, 2}});
  const OpId c = g.add_op(OpKind::kAdaptivePool, "c", pool, {a},
                          TensorDesc{{8, 2, 2}});
  const OpId d =
      g.add_op(OpKind::kConcat, "d", {}, {b, c}, TensorDesc{{64}});
  g.add_op(OpKind::kOutput, "out", {}, {d}, TensorDesc{{64}});
  return g;
}

TEST(Graph, AddOpValidatesInputs) {
  Graph g;
  EXPECT_THROW(
      g.add_op(OpKind::kReLU, "bad", {}, {0}, TensorDesc{{1}}),
      dcn::Error);  // references a not-yet-existing node
}

TEST(Graph, DanglingInputIdIsConfigErrorNamingTheId) {
  Graph g;
  g.add_op(OpKind::kInput, "in", {}, {}, TensorDesc{{4}});
  try {
    g.add_op(OpKind::kReLU, "r", {}, {7}, TensorDesc{{4}});
    FAIL() << "dangling input id accepted";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("dangling input op id 7"),
              std::string::npos)
        << error.what();
  }
}

TEST(Graph, DuplicateEdgeIsConfigError) {
  Graph g;
  const OpId in = g.add_op(OpKind::kInput, "in", {}, {}, TensorDesc{{4}});
  // A node listing the same producer twice would double-count the edge in
  // every downstream consumer (blocks, scheduler, executor).
  EXPECT_THROW(
      g.add_op(OpKind::kConcat, "c", {}, {in, in}, TensorDesc{{8}}),
      ConfigError);
}

TEST(Graph, SuccessorsAndTopologicalOrder) {
  const Graph g = diamond_graph();
  const auto succ_a = g.successors(1);
  EXPECT_EQ(succ_a.size(), 2u);
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), g.size());
  std::vector<std::size_t> pos(g.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  for (const OpNode& node : g.nodes()) {
    for (OpId in : node.inputs) {
      EXPECT_LT(pos[static_cast<std::size_t>(in)],
                pos[static_cast<std::size_t>(node.id)]);
    }
  }
}

TEST(Graph, InputDescFollowsFirstProducer) {
  const Graph g = diamond_graph();
  EXPECT_EQ(g.input_desc(1).numel(), 8 * 8 * 8);
  EXPECT_EQ(g.input_desc(0).numel(), 8 * 8 * 8);  // input: its own desc
}

TEST(OpNode, FlopsAndParamsForConv) {
  const Graph g = diamond_graph();
  const OpNode& conv = g.node(1);
  const TensorDesc in = g.input_desc(1);
  // 2 * Cin * K * K per output element.
  EXPECT_DOUBLE_EQ(conv.flops(in), 2.0 * 8 * 9 * (8 * 8 * 8));
  EXPECT_EQ(conv.parameter_count(in), 8 * 8 * 3 * 3 + 8);
}

TEST(OpNode, LinearFlopsAndBytes) {
  Graph g;
  const OpId in = g.add_op(OpKind::kInput, "in", {}, {}, TensorDesc{{100}});
  OpAttrs fc;
  fc.out_features = 10;
  const OpId lin =
      g.add_op(OpKind::kLinear, "fc", fc, {in}, TensorDesc{{10}});
  const OpNode& node = g.node(lin);
  EXPECT_DOUBLE_EQ(node.flops(g.input_desc(lin)), 2.0 * 100 * 10);
  EXPECT_EQ(node.parameter_count(g.input_desc(lin)), 100 * 10 + 10);
  EXPECT_DOUBLE_EQ(node.activation_bytes(g.input_desc(lin)),
                   4.0 * (100 + 10));
}

TEST(Builder, OriginalSppNetStructure) {
  const Graph g = build_inference_graph(detect::original_sppnet(), 100);
  // input + 3*(conv,relu,pool) + 3*(pool,flatten) + concat + fc + relu +
  // head + output = 21 nodes.
  EXPECT_EQ(g.size(), 21u);
  // Output of trunk must be 256 x 12 x 12 for a 100 input.
  bool found_trunk_out = false;
  for (const OpNode& node : g.nodes()) {
    if (node.name == "pool2") {
      EXPECT_EQ(node.output.dims,
                (std::vector<std::int64_t>{256, 12, 12}));
      found_trunk_out = true;
    }
  }
  EXPECT_TRUE(found_trunk_out);
  EXPECT_GT(g.total_flops(), 1e8);
  EXPECT_EQ(g.parameter_count(),
            detect::original_sppnet().parameter_count());
}

TEST(Builder, SppBranchCountTracksLevels) {
  for (std::int64_t first : {1, 2, 3, 4, 5}) {
    detect::SppNetConfig config = detect::original_sppnet();
    config.spp_levels.clear();
    config.spp_levels.push_back(first);
    if (first > 2) config.spp_levels.push_back(2);
    if (first > 1) config.spp_levels.push_back(1);
    const Graph g = build_inference_graph(config, 64);
    std::size_t adaptive = 0;
    for (const OpNode& node : g.nodes()) {
      if (node.kind == OpKind::kAdaptivePool) ++adaptive;
    }
    EXPECT_EQ(adaptive, config.spp_levels.size());
  }
}

TEST(Builder, RejectsCollapsingInputs) {
  EXPECT_THROW(build_inference_graph(detect::original_sppnet(), 4),
               dcn::Error);
}

TEST(Builder, DotExportMentionsEveryOp) {
  const Graph g = build_inference_graph(detect::original_sppnet(), 64);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("spp_concat"), std::string::npos);
  EXPECT_NE(dot.find("conv0"), std::string::npos);
}

TEST(Blocks, DiamondDecomposition) {
  const Graph g = diamond_graph();
  const auto blocks = extract_blocks(g);
  // Leading linear {in, a}, branched {b, c}, trailing {d, out}.
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_FALSE(blocks[0].branched);
  EXPECT_TRUE(blocks[1].branched);
  EXPECT_EQ(blocks[1].entry, 1);
  EXPECT_EQ(blocks[1].exit, 4);
  EXPECT_EQ(blocks[1].ops.size(), 2u);
  EXPECT_FALSE(blocks[2].branched);
}

TEST(Blocks, EveryOpExactlyOnce) {
  const Graph g = build_inference_graph(detect::sppnet_candidate2(), 100);
  const auto blocks = extract_blocks(g);
  std::set<OpId> seen;
  for (const Block& block : blocks) {
    for (OpId id : block.ops) {
      EXPECT_FALSE(seen.count(id)) << "op " << id << " in two blocks";
      seen.insert(id);
    }
  }
  EXPECT_EQ(seen.size(), g.size());
}

TEST(Blocks, SppBlockBranchesAreChains) {
  const Graph g = build_inference_graph(detect::original_sppnet(), 100);
  const auto blocks = extract_blocks(g);
  const Block* branched = nullptr;
  for (const Block& block : blocks) {
    if (block.branched) {
      EXPECT_EQ(branched, nullptr) << "multiple branched blocks";
      branched = &block;
    }
  }
  ASSERT_NE(branched, nullptr);
  const auto branches = block_branches(g, *branched);
  EXPECT_EQ(branches.size(), 3u);  // levels {4, 2, 1}
  for (const auto& branch : branches) {
    EXPECT_EQ(branch.size(), 2u);  // pool -> flatten
    EXPECT_EQ(g.node(branch[0]).kind, OpKind::kAdaptivePool);
    EXPECT_EQ(g.node(branch[1]).kind, OpKind::kFlatten);
  }
}

TEST(Blocks, PureChainIsOneLinearBlock) {
  Graph g;
  const OpId in = g.add_op(OpKind::kInput, "in", {}, {}, TensorDesc{{4}});
  OpAttrs fc;
  fc.out_features = 4;
  OpId prev = in;
  for (int i = 0; i < 4; ++i) {
    prev = g.add_op(OpKind::kLinear, "fc" + std::to_string(i), fc, {prev},
                    TensorDesc{{4}});
  }
  const auto blocks = extract_blocks(g);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_FALSE(blocks[0].branched);
  EXPECT_EQ(blocks[0].ops.size(), 5u);
}

}  // namespace
}  // namespace dcn::graph
