// Tests for the extension features: model checkpointing, chrome-trace
// export, stream-network analytics, evolutionary NAS, latency-budget
// selection, and the HIOS-lite multi-GPU latency models.
#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "detect/sppnet.hpp"
#include "geo/dataset.hpp"
#include "geo/hydrology.hpp"
#include "geo/streamstats.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/hios_lite.hpp"
#include "ios/scheduler.hpp"
#include "nas/selection.hpp"
#include "nas/strategy.hpp"
#include "nn/checkpoint.hpp"
#include "profiler/trace.hpp"
#include "simgpu/device.hpp"
#include "tensor/ops.hpp"

namespace dcn {
namespace {

detect::SppNetConfig tiny_model() {
  return detect::parse_notation(
      "C_{4,3,1}-P_{2,2}-SPP_{2,1}-F_{16}", 4);
}

TEST(Checkpoint, RoundTripRestoresExactWeights) {
  Rng rng_a(1);
  detect::SppNet model_a(tiny_model(), rng_a);
  const std::string path = testing::TempDir() + "/dcn_model.ckpt";
  save_checkpoint(model_a, path);

  Rng rng_b(999);  // different init
  detect::SppNet model_b(tiny_model(), rng_b);
  Tensor x(Shape{1, 4, 16, 16}, 0.5f);
  const Tensor before = model_b.forward(x);
  load_checkpoint(model_b, path);
  const Tensor after = model_b.forward(x);
  const Tensor reference = model_a.forward(x);
  EXPECT_GT(max_abs_diff(before, reference), 1e-6f);  // differed before
  EXPECT_EQ(max_abs_diff(after, reference), 0.0f);    // identical after
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Rng rng(1);
  detect::SppNet small(tiny_model(), rng);
  const std::string path = testing::TempDir() + "/dcn_model2.ckpt";
  save_checkpoint(small, path);
  detect::SppNetConfig bigger = tiny_model();
  bigger.fc_sizes = {32};  // different head width
  Rng rng2(2);
  detect::SppNet other(bigger, rng2);
  EXPECT_THROW(load_checkpoint(other, path), Error);
}

TEST(Checkpoint, CopyParameters) {
  Rng rng_a(1);
  Rng rng_b(2);
  detect::SppNet a(tiny_model(), rng_a);
  detect::SppNet b(tiny_model(), rng_b);
  copy_parameters(a, b);
  Tensor x(Shape{1, 4, 12, 12}, 0.3f);
  EXPECT_EQ(max_abs_diff(a.forward(x), b.forward(x)), 0.0f);
}

TEST(ChromeTrace, ContainsAllSpanRows) {
  profiler::Recorder recorder;
  recorder.record_api(profiler::ApiKind::kLaunchKernel, "conv0", 0.0, 3e-6);
  recorder.record_kernel(profiler::KernelCategory::kConv, "conv0", 1e-6,
                         4e-5, 8);
  recorder.record_memop(profiler::MemopKind::kH2D, "input", 0.0, 2e-5, 1024);
  const std::string trace = profiler::to_chrome_trace(recorder);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("cudaLaunchKernel"), std::string::npos);
  EXPECT_NE(trace.find("\"cat\": \"kernel\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\": \"memop\""), std::string::npos);
  EXPECT_NE(trace.find("\"batch\": 8"), std::string::npos);
  EXPECT_NE(trace.find("\"bytes\": 1024"), std::string::npos);
}

TEST(ChromeTrace, EscapesAndWrites) {
  profiler::Recorder recorder;
  recorder.record_api(profiler::ApiKind::kMemAlloc, "we\"ird\nname", 0.0,
                      1e-6);
  const std::string trace = profiler::to_chrome_trace(recorder);
  EXPECT_NE(trace.find("we\\\"ird\\nname"), std::string::npos);
  const std::string path = testing::TempDir() + "/dcn_trace.json";
  profiler::write_chrome_trace(recorder, path);
  SUCCEED();
}

TEST(ChromeTrace, FullSimulatedSessionExports) {
  const auto spec = simgpu::a5500_spec();
  const graph::Graph g =
      graph::build_inference_graph(detect::original_sppnet(), 64);
  profiler::Recorder recorder;
  simgpu::Device device(spec, &recorder);
  ios::InferenceSession session(g, ios::optimize_schedule(g, spec), device);
  session.initialize();
  (void)session.run(4);
  const std::string trace = profiler::to_chrome_trace(recorder);
  EXPECT_NE(trace.find("cuLibraryLoadData"), std::string::npos);
  EXPECT_NE(trace.find("spp_pool"), std::string::npos);
}

TEST(StreamStats, StrahlerOrderOnConfluence) {
  // Two order-1 headwaters meet: the downstream stem is order 2.
  //   Stream layout on a 5x5 grid draining east along rows 1 and 3,
  //   merging at (2,3) then continuing east.
  geo::Raster dem(5, 5);
  for (std::int64_t r = 0; r < 5; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      dem.at(r, c) = static_cast<float>(10 - c);  // east-draining
    }
  }
  // Bend both side rows into the center row at column 3.
  dem.at(2, 3) -= 0.5f;
  dem.at(2, 4) -= 1.0f;
  geo::Raster streams(5, 5);
  streams.at(1, 1) = streams.at(1, 2) = 1.0f;
  streams.at(3, 1) = streams.at(3, 2) = 1.0f;
  streams.at(2, 3) = streams.at(2, 4) = 1.0f;
  const auto dirs = geo::flow_directions(dem);
  // Force the confluence: route (1,2) and (3,2) diagonally into (2,3).
  auto set_dir = [&](std::int64_t r, std::int64_t c, int d) {
    const_cast<std::vector<int>&>(dirs)[static_cast<std::size_t>(r * 5 + c)] =
        d;
  };
  set_dir(1, 2, 1);  // SE
  set_dir(3, 2, 7);  // NE
  const geo::Raster order = geo::strahler_order(streams, dirs);
  EXPECT_EQ(order.at(1, 1), 1.0f);
  EXPECT_EQ(order.at(3, 2), 1.0f);
  EXPECT_EQ(order.at(2, 3), 2.0f);  // confluence of two order-1 streams
  EXPECT_EQ(order.at(2, 4), 2.0f);  // order persists downstream
  EXPECT_EQ(order.at(0, 0), 0.0f);  // non-stream cells are 0
}

TEST(StreamStats, SyntheticWatershedIsDendritic) {
  geo::DatasetConfig config;
  config.seed = 5;
  config.terrain.rows = config.terrain.cols = 384;
  Rng rng(config.seed);
  const geo::World world = geo::synthesize_world(config, rng);
  const geo::Raster filled = geo::fill_depressions(world.dem);
  const auto dirs = geo::flow_directions(filled);
  const auto stats = geo::watershed_stats(world.dem, world.streams, dirs,
                                          world.crossings);
  // A dendritic network: multiple orders, multiple sources, plausible
  // drainage density for the loess-plain configuration.
  EXPECT_GE(stats.max_strahler_order, 2);
  EXPECT_GT(stats.sources, 1);
  EXPECT_GT(stats.drainage_density, 0.001);
  EXPECT_LT(stats.drainage_density, 0.2);
  EXPECT_GT(stats.relief, 1.0);
  EXPECT_GT(stats.crossing_density, 0.0);
  // Order-1 cells outnumber the top order's cells (Horton-like scaling).
  EXPECT_GT(stats.cells_per_order[1],
            stats.cells_per_order[static_cast<std::size_t>(
                stats.max_strahler_order)]);
}

nas::SearchSpace small_space() {
  nas::SearchSpace space;
  space.conv1_kernels = {3, 5, 7};
  space.spp_first_levels = {1, 3, 5};
  space.fc_widths = {128, 512, 2048};
  return space;
}

TEST(Evolution, WarmupThenMutation) {
  nas::EvolutionStrategy::Options options;
  options.population = 4;
  options.tournament = 2;
  nas::EvolutionStrategy strategy(small_space(), 3, options);
  // Warm-up proposals, reported with a fitness that favors spp level 5.
  std::vector<nas::SearchPoint> proposed;
  for (int i = 0; i < 12; ++i) {
    const auto point = strategy.next();
    ASSERT_TRUE(point.has_value());
    proposed.push_back(*point);
    strategy.report(*point,
                    0.5 + 0.1 * static_cast<double>(point->spp_first_level));
  }
  // Children after warm-up must differ from their parents on at most one
  // axis (mutation changes exactly one axis).
  for (std::size_t i = 4; i < proposed.size(); ++i) {
    EXPECT_TRUE(small_space().contains(proposed[i]));
  }
  // Selection pressure: later proposals lean toward high spp levels.
  double early = 0.0;
  double late = 0.0;
  for (int i = 0; i < 4; ++i) early += proposed[static_cast<std::size_t>(i)].spp_first_level;
  for (int i = 8; i < 12; ++i) late += proposed[static_cast<std::size_t>(i)].spp_first_level;
  EXPECT_GE(late, early * 0.8);  // no collapse toward low-fitness region
}

TEST(Evolution, DeterministicGivenSeed) {
  nas::EvolutionStrategy a(small_space(), 7);
  nas::EvolutionStrategy b(small_space(), 7);
  for (int i = 0; i < 10; ++i) {
    const auto pa = a.next();
    const auto pb = b.next();
    ASSERT_TRUE(pa && pb);
    EXPECT_EQ(pa->to_string(), pb->to_string());
    a.report(*pa, 0.5);
    b.report(*pb, 0.5);
  }
}

TEST(Selection, LatencyBudgetPicksMostAccurateUnderBudget) {
  nas::TrialDatabase db;
  const double ap[3] = {0.98, 0.95, 0.90};
  const double lat[3] = {5e-4, 3e-4, 1e-4};
  for (int i = 0; i < 3; ++i) {
    nas::Trial t;
    t.index = i;
    t.point.fc_sizes = {128};
    t.metrics.average_precision = ap[i];
    t.metrics.optimized_latency = lat[i];
    db.add(t);
  }
  EXPECT_EQ(nas::select_latency_budget(db, 4e-4)->index, 1);
  EXPECT_EQ(nas::select_latency_budget(db, 1e-3)->index, 0);
  EXPECT_FALSE(nas::select_latency_budget(db, 5e-5).has_value());
}

class HiosLiteTest : public testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<graph::Graph>(
        graph::build_inference_graph(detect::sppnet_candidate2(), 100));
    spec_ = simgpu::a5500_spec();
    schedule_ = ios::optimize_schedule(*graph_, spec_);
  }
  std::unique_ptr<graph::Graph> graph_;
  simgpu::DeviceSpec spec_;
  ios::Schedule schedule_;
};

TEST_F(HiosLiteTest, SingleGpuDataParallelMatchesBaseline) {
  ios::MultiGpuConfig config;
  config.num_gpus = 1;
  simgpu::Device device(spec_);
  const double single =
      ios::measure_latency(*graph_, schedule_, device, 32);
  const double dp =
      ios::data_parallel_latency(*graph_, schedule_, spec_, 32, config);
  EXPECT_NEAR(dp, single, 1e-9);
}

TEST_F(HiosLiteTest, DataParallelHelpsLargeBatches) {
  ios::MultiGpuConfig config;
  config.num_gpus = 4;
  const double one_gpu = ios::data_parallel_latency(
      *graph_, schedule_, spec_, 64, ios::MultiGpuConfig{.num_gpus = 1});
  const double four_gpus =
      ios::data_parallel_latency(*graph_, schedule_, spec_, 64, config);
  EXPECT_LT(four_gpus, one_gpu);
}

TEST_F(HiosLiteTest, DataParallelHurtsBatchOne) {
  // Sharding a single image is pure overhead.
  ios::MultiGpuConfig config;
  config.num_gpus = 4;
  const double one_gpu = ios::data_parallel_latency(
      *graph_, schedule_, spec_, 1, ios::MultiGpuConfig{.num_gpus = 1});
  const double four_gpus =
      ios::data_parallel_latency(*graph_, schedule_, spec_, 1, config);
  EXPECT_GE(four_gpus, one_gpu);
}

TEST_F(HiosLiteTest, BranchParallelismDoesNotPayForSppBranches) {
  // The HIOS premise, quantified: SPP's branches are far too small to
  // amortize inter-GPU activation transfers.
  ios::MultiGpuConfig config;
  config.num_gpus = 2;
  const double single =
      ios::schedule_cost(*graph_, spec_, schedule_, 1) ;
  const double multi = ios::branch_parallel_latency(*graph_, schedule_,
                                                    spec_, 1, config);
  EXPECT_GT(multi, single);
}

TEST_F(HiosLiteTest, BranchParallelSingleGpuMatchesScheduleCost) {
  ios::MultiGpuConfig config;
  config.num_gpus = 1;
  const double cost = ios::schedule_cost(*graph_, spec_, schedule_, 8);
  const double multi =
      ios::branch_parallel_latency(*graph_, schedule_, spec_, 8, config);
  EXPECT_NEAR(multi, cost, 1e-12);
}

}  // namespace
}  // namespace dcn
