// Tests for the second wave of extensions: AvgPool/LeakyReLU/BatchNorm,
// schedule serialization, evaluation reports, geo tiling, and NAS
// experiment persistence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "detect/report.hpp"
#include "detect/sppnet_config.hpp"
#include "geo/tiling.hpp"
#include "graph/builder.hpp"
#include "ios/scheduler.hpp"
#include "ios/serialize.hpp"
#include "nas/experiment.hpp"
#include "nn/gradcheck.hpp"
#include "nn/norm.hpp"
#include "simgpu/spec.hpp"

namespace dcn {
namespace {

TEST(AvgPool2d, KnownValues) {
  AvgPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], (0 + 1 + 4 + 5) / 4.0f);
  EXPECT_FLOAT_EQ(y[3], (10 + 11 + 14 + 15) / 4.0f);
}

TEST(AvgPool2d, GradCheck) {
  AvgPool2d pool(2, 2);
  Rng rng(3);
  Tensor x(Shape{2, 3, 6, 6});
  x.fill_normal(rng, 0.0f, 1.0f);
  const auto result = check_input_gradient(pool, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(LeakyReLU, ForwardAndGradCheck) {
  LeakyReLU leaky(0.1f);
  Tensor x(Shape{3});
  x[0] = -2.0f;
  x[1] = 0.0f;
  x[2] = 3.0f;
  const Tensor y = leaky.forward(x);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);

  Rng rng(5);
  Tensor rx(Shape{4, 7});
  rx.fill_normal(rng, 0.0f, 1.0f);
  const auto result = check_input_gradient(leaky, rx);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  bn.set_training(true);
  Rng rng(7);
  Tensor x(Shape{4, 2, 5, 5});
  x.fill_normal(rng, 3.0f, 2.0f);
  const Tensor y = bn.forward(x);
  // Per-channel output mean ~0 and variance ~1 (gamma=1, beta=0).
  for (std::int64_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    double var = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 25; ++i) {
        mean += y[(n * 2 + c) * 25 + i];
        ++count;
      }
    }
    mean /= count;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 25; ++i) {
        const double d = y[(n * 2 + c) * 25 + i] - mean;
        var += d * d;
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(1, /*momentum=*/1.0);  // adopt batch stats immediately
  bn.set_training(true);
  Rng rng(9);
  Tensor x(Shape{8, 1, 4, 4});
  x.fill_normal(rng, 5.0f, 3.0f);
  (void)bn.forward(x);
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 0.5f);
  EXPECT_NEAR(bn.running_var()[0], 9.0f, 2.0f);

  bn.set_training(false);
  Tensor probe(Shape{1, 1, 1, 1});
  probe[0] = bn.running_mean()[0];
  const Tensor y = bn.forward(probe);
  EXPECT_NEAR(y[0], 0.0f, 1e-4f);  // the running mean normalizes to ~0
}

TEST(BatchNorm2d, GradCheckTrainingMode) {
  BatchNorm2d bn(3);
  bn.set_training(true);
  Rng rng(11);
  Tensor x(Shape{3, 3, 4, 4});
  x.fill_normal(rng, 0.0f, 1.0f);
  auto result = check_input_gradient(bn, x, 1e-3, 0.1);
  EXPECT_TRUE(result.ok) << result.detail;
  result = check_parameter_gradients(bn, x, 1e-3, 0.1);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(BatchNorm2d, RejectsWrongChannels) {
  BatchNorm2d bn(4);
  EXPECT_THROW(bn.forward(Tensor(Shape{1, 3, 4, 4})), Error);
}

TEST(ScheduleSerialize, RoundTripsOptimizedSchedule) {
  const auto g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  const std::string text = ios::serialize_schedule(schedule);
  const ios::Schedule back = ios::deserialize_schedule(text);
  ASSERT_EQ(back.num_stages(), schedule.num_stages());
  EXPECT_EQ(back.num_kernels(), schedule.num_kernels());
  EXPECT_EQ(ios::serialize_schedule(back), text);
  ios::validate_schedule(g, back);
}

TEST(ScheduleSerialize, FileRoundTripValidates) {
  const auto g =
      graph::build_inference_graph(detect::original_sppnet(), 64);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  const std::string path = testing::TempDir() + "/dcn_schedule.txt";
  ios::save_schedule(schedule, path);
  const ios::Schedule back = ios::load_schedule(g, path);
  EXPECT_EQ(back.num_stages(), schedule.num_stages());
}

TEST(ScheduleSerialize, RejectsGarbage) {
  EXPECT_THROW(ios::deserialize_schedule("nonsense"), Error);
  EXPECT_THROW(ios::deserialize_schedule("schedule v1\ngroup 1\n"), Error);
  EXPECT_THROW(ios::deserialize_schedule("schedule v1\nstage\nwat 1\n"),
               Error);
  EXPECT_THROW(ios::deserialize_schedule("schedule v1\nstage\ngroup\n"),
               Error);
}

TEST(ScheduleSerialize, LoadValidatesAgainstGraph) {
  const auto g =
      graph::build_inference_graph(detect::original_sppnet(), 64);
  const std::string path = testing::TempDir() + "/dcn_bad_schedule.txt";
  ios::save_schedule(ios::Schedule{{ios::Stage{{ios::Group{{1}}}}}}, path);
  EXPECT_THROW(ios::load_schedule(g, path), Error);  // misses most ops
}

std::vector<detect::ScoredDetection> sample_detections() {
  return {
      {0.9f, true, 0.8f},   // TP
      {0.8f, true, 0.3f},   // fired but badly localized -> FN at IoU 0.5
      {0.7f, false, 0.0f},  // FP
      {0.2f, true, 0.9f},   // below threshold -> FN
      {0.1f, false, 0.0f},  // TN
  };
}

TEST(DetectReport, ConfusionCounts) {
  const auto c = detect::confusion_at_threshold(sample_detections(), 0.5f);
  EXPECT_EQ(c.true_positives, 1);
  EXPECT_EQ(c.false_positives, 1);
  EXPECT_EQ(c.false_negatives, 2);
  EXPECT_EQ(c.true_negatives, 1);
  EXPECT_EQ(c.total(), 5);
  EXPECT_NEAR(c.precision(), 0.5, 1e-9);
  EXPECT_NEAR(c.recall(), 1.0 / 3.0, 1e-9);
  EXPECT_GT(c.f1(), 0.0);
}

TEST(DetectReport, EmptyConfusionIsSafe) {
  const detect::ConfusionSummary c;
  EXPECT_EQ(c.precision(), 0.0);
  EXPECT_EQ(c.recall(), 0.0);
  EXPECT_EQ(c.f1(), 0.0);
}

TEST(DetectReport, PrCurveCsvShape) {
  const std::string csv = detect::pr_curve_csv(sample_detections());
  EXPECT_NE(csv.find("threshold,precision,recall"), std::string::npos);
  // One row per detection plus header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
}

TEST(DetectReport, TextReportMentionsMetrics) {
  const std::string report =
      detect::evaluation_report(sample_detections());
  EXPECT_NE(report.find("AP "), std::string::npos);
  EXPECT_NE(report.find("F1"), std::string::npos);
  EXPECT_NE(report.find("gt +"), std::string::npos);
}

TEST(GeoTransform, RoundTripsCoordinates) {
  geo::GeoTransform t;
  t.origin_x = 500000.0;
  t.origin_y = 4480000.0;
  t.pixel_size = 1.0;
  const auto [x, y] = t.pixel_to_world(10, 20);
  EXPECT_DOUBLE_EQ(x, 500020.5);
  EXPECT_DOUBLE_EQ(y, 4480000.0 - 10.5);
  const auto [row, col] = t.world_to_pixel(x, y);
  EXPECT_NEAR(row, 10.0, 1e-9);
  EXPECT_NEAR(col, 20.0, 1e-9);
}

TEST(Tiling, CoversSceneWithoutGaps) {
  geo::GeoTransform t;
  const auto tiles = geo::make_tiles(256, 300, 100, 0.5, t);
  ASSERT_FALSE(tiles.empty());
  // Every pixel covered by at least one tile.
  std::vector<bool> row_covered(256, false);
  std::vector<bool> col_covered(300, false);
  for (const geo::Tile& tile : tiles) {
    EXPECT_GE(tile.row, 0);
    EXPECT_LE(tile.row + tile.size, 256);
    EXPECT_LE(tile.col + tile.size, 300);
    for (std::int64_t r = tile.row; r < tile.row + tile.size; ++r) {
      row_covered[static_cast<std::size_t>(r)] = true;
    }
    for (std::int64_t c = tile.col; c < tile.col + tile.size; ++c) {
      col_covered[static_cast<std::size_t>(c)] = true;
    }
  }
  EXPECT_TRUE(std::all_of(row_covered.begin(), row_covered.end(),
                          [](bool b) { return b; }));
  EXPECT_TRUE(std::all_of(col_covered.begin(), col_covered.end(),
                          [](bool b) { return b; }));
}

TEST(Tiling, RejectsOversizedTiles) {
  geo::GeoTransform t;
  EXPECT_THROW(geo::make_tiles(64, 64, 100, 0.0, t), Error);
}

TEST(Tiling, DetectionGeoreferencing) {
  geo::GeoTransform t;
  t.pixel_size = 1.0;
  geo::Tile tile;
  tile.row = 100;
  tile.col = 200;
  tile.size = 50;
  const float box[4] = {0.5f, 0.5f, 0.2f, 0.2f};  // tile center
  const auto [x, y] = geo::detection_to_world(tile, box, t);
  const auto [cx, cy] = t.pixel_to_world(125 - 0.5, 225 - 0.5);
  EXPECT_NEAR(x, cx, 1e-9);
  EXPECT_NEAR(y, cy, 1e-9);
}

nas::TrialDatabase sample_experiment() {
  nas::TrialDatabase db;
  for (int i = 0; i < 3; ++i) {
    nas::Trial t;
    t.index = i;
    t.point.conv1_kernel = 3 + 2 * i;
    t.point.spp_first_level = i + 1;
    t.point.fc_sizes = {128ll << i};
    t.metrics.average_precision = 0.9 + 0.01 * i;
    t.metrics.sequential_latency = 5e-4 + 1e-5 * i;
    t.metrics.optimized_latency = 3e-4 + 1e-5 * i;
    t.metrics.throughput = 3000.0 - 100.0 * i;
    t.metrics.parameter_count = 1000000 + i;
    db.add(t);
  }
  return db;
}

TEST(Experiment, RoundTripPreservesEverything) {
  const nas::TrialDatabase db = sample_experiment();
  const std::string text = nas::serialize_experiment(db);
  const nas::TrialDatabase back = nas::deserialize_experiment(text);
  ASSERT_EQ(back.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(back.trial(i).index, db.trial(i).index);
    EXPECT_EQ(back.trial(i).point, db.trial(i).point);
    EXPECT_DOUBLE_EQ(back.trial(i).metrics.average_precision,
                     db.trial(i).metrics.average_precision);
    EXPECT_DOUBLE_EQ(back.trial(i).metrics.optimized_latency,
                     db.trial(i).metrics.optimized_latency);
    EXPECT_EQ(back.trial(i).metrics.parameter_count,
              db.trial(i).metrics.parameter_count);
  }
}

TEST(Experiment, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/dcn_experiment.txt";
  nas::save_experiment(sample_experiment(), path);
  const nas::TrialDatabase back = nas::load_experiment(path);
  EXPECT_EQ(back.size(), 3u);
}

TEST(Experiment, RejectsMalformedInput) {
  EXPECT_THROW(nas::deserialize_experiment("garbage"), Error);
  EXPECT_THROW(
      nas::deserialize_experiment("nas-experiment v1\ntrial x\n"), Error);
  EXPECT_THROW(nas::deserialize_experiment(
                   "nas-experiment v1\ntrial 0 conv1 3 spp 2 fc 99\n"),
               Error);
}

}  // namespace
}  // namespace dcn
