// Tests for rasters and terrain synthesis.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "geo/raster.hpp"
#include "geo/terrain.hpp"

namespace dcn::geo {
namespace {

TEST(Raster, BasicAccess) {
  Raster r(3, 4, 1.5f);
  EXPECT_EQ(r.rows(), 3);
  EXPECT_EQ(r.cols(), 4);
  EXPECT_EQ(r.size(), 12);
  EXPECT_EQ(r.at(2, 3), 1.5f);
  r.at(1, 2) = 7.0f;
  EXPECT_EQ(r.data()[1 * 4 + 2], 7.0f);
}

TEST(Raster, InBounds) {
  const Raster r(3, 4);
  EXPECT_TRUE(r.in_bounds(0, 0));
  EXPECT_TRUE(r.in_bounds(2, 3));
  EXPECT_FALSE(r.in_bounds(-1, 0));
  EXPECT_FALSE(r.in_bounds(3, 0));
  EXPECT_FALSE(r.in_bounds(0, 4));
}

TEST(Raster, ClampedAccess) {
  Raster r(2, 2);
  r.at(0, 0) = 1.0f;
  r.at(1, 1) = 4.0f;
  EXPECT_EQ(r.at_clamped(-5, -5), 1.0f);
  EXPECT_EQ(r.at_clamped(10, 10), 4.0f);
}

TEST(Raster, BilinearSample) {
  Raster r(2, 2);
  r.at(0, 0) = 0.0f;
  r.at(0, 1) = 1.0f;
  r.at(1, 0) = 2.0f;
  r.at(1, 1) = 3.0f;
  EXPECT_NEAR(r.sample(0.0, 0.5), 0.5f, 1e-6f);
  EXPECT_NEAR(r.sample(0.5, 0.0), 1.0f, 1e-6f);
  EXPECT_NEAR(r.sample(0.5, 0.5), 1.5f, 1e-6f);
  // Out-of-range clamps.
  EXPECT_NEAR(r.sample(-1.0, -1.0), 0.0f, 1e-6f);
}

TEST(Raster, NormalizeMapsMinMax) {
  Raster r(1, 3);
  r.at(0, 0) = -2.0f;
  r.at(0, 1) = 0.0f;
  r.at(0, 2) = 2.0f;
  r.normalize(0.0f, 1.0f);
  EXPECT_NEAR(r.at(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(r.at(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(r.at(0, 2), 1.0f, 1e-6f);
}

TEST(Raster, NormalizeFlatRaster) {
  Raster r(2, 2, 5.0f);
  r.normalize(0.25f, 0.75f);
  EXPECT_EQ(r.at(0, 0), 0.25f);
}

TEST(Raster, RejectsEmpty) {
  EXPECT_THROW(Raster(0, 5), dcn::Error);
}

TEST(ValueNoise, RangeAndDeterminism) {
  Rng a(42);
  Rng b(42);
  const Raster na = value_noise(64, 64, 16.0, 3, a);
  const Raster nb = value_noise(64, 64, 16.0, 3, b);
  for (std::int64_t i = 0; i < na.size(); ++i) {
    EXPECT_GE(na.data()[i], 0.0f);
    EXPECT_LE(na.data()[i], 1.0f);
    EXPECT_EQ(na.data()[i], nb.data()[i]);
  }
}

TEST(ValueNoise, SpatiallySmooth) {
  Rng rng(7);
  const Raster n = value_noise(64, 64, 32.0, 1, rng);
  // Neighboring cells of long-wavelength noise differ by little.
  for (std::int64_t r = 0; r < 63; ++r) {
    for (std::int64_t c = 0; c < 63; ++c) {
      EXPECT_LT(std::abs(n.at(r, c) - n.at(r, c + 1)), 0.2f);
      EXPECT_LT(std::abs(n.at(r, c) - n.at(r + 1, c)), 0.2f);
    }
  }
}

TEST(Terrain, SizeAndDeterminism) {
  TerrainConfig config;
  config.rows = 96;
  config.cols = 128;
  Rng a(3);
  Rng b(3);
  const Raster ta = synthesize_terrain(config, a);
  const Raster tb = synthesize_terrain(config, b);
  EXPECT_EQ(ta.rows(), 96);
  EXPECT_EQ(ta.cols(), 128);
  for (std::int64_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta.data()[i], tb.data()[i]);
  }
}

TEST(Terrain, WestHigherThanEastOnAverage) {
  TerrainConfig config;
  config.rows = 128;
  config.cols = 128;
  Rng rng(5);
  const Raster dem = synthesize_terrain(config, rng);
  double west = 0.0;
  double east = 0.0;
  for (std::int64_t r = 0; r < dem.rows(); ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      west += dem.at(r, c);
      east += dem.at(r, dem.cols() - 1 - c);
    }
  }
  EXPECT_GT(west, east + 1.0);  // regional drop dominates the noise
}

TEST(Terrain, ReliefWithinConfiguredBudget) {
  TerrainConfig config;
  config.rows = 128;
  config.cols = 128;
  Rng rng(9);
  const Raster dem = synthesize_terrain(config, rng);
  const float relief = dem.max_value() - dem.min_value();
  const float budget = static_cast<float>(
      config.regional_drop + config.noise_amplitude + config.valley_depth * 2);
  EXPECT_LE(relief, budget);
  EXPECT_GT(relief, static_cast<float>(config.regional_drop) * 0.5f);
}

TEST(Terrain, RejectsTinyGrids) {
  TerrainConfig config;
  config.rows = 8;
  config.cols = 8;
  Rng rng(1);
  EXPECT_THROW(synthesize_terrain(config, rng), dcn::Error);
}

}  // namespace
}  // namespace dcn::geo
