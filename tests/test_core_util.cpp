// Tests for core utilities: tables, CSV, CLI flags, logging, error macros.
#include <gtest/gtest.h>

#include <array>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/table.hpp"

namespace dcn {
namespace {

TEST(CheckMacro, ThrowsWithContext) {
  try {
    DCN_CHECK(1 == 2) << "context " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(CheckMacro, PassesSilently) {
  DCN_CHECK(true) << "never evaluated";
  SUCCEED();
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"Model", "AP"});
  table.add_row({"Original SPP-Net", "95.00%"});
  table.add_row({"#1", "96.10%"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("Original SPP-Net"), std::string::npos);
  // Separator rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_percent(0.974, 1), "97.4%");
  EXPECT_EQ(format_ms(0.268, 3), "0.268 ms");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("quote\"inside"), "\"quote\"\"inside\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterRoundShape) {
  CsvWriter csv({"x", "y"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4,5"});
  const std::string out = csv.to_string();
  EXPECT_EQ(out, "x,y\n1,2\n3,\"4,5\"\n");
}

TEST(Csv, RejectsWrongArity) {
  CsvWriter csv({"x"});
  EXPECT_THROW(csv.add_row({"1", "2"}), Error);
}

TEST(Cli, ParsesAllValueForms) {
  CliFlags flags("prog", "test");
  flags.add_int("count", 1, "a count");
  flags.add_double("rate", 0.5, "a rate");
  flags.add_string("name", "x", "a name");
  flags.add_bool("fast", false, "a flag");
  const std::array<const char*, 7> argv = {
      "prog", "--count=4", "--rate", "2.5", "--name=abc", "--fast", "pos1"};
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.get_int("count"), 4);
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.5);
  EXPECT_EQ(flags.get_string("name"), "abc");
  EXPECT_TRUE(flags.get_bool("fast"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  CliFlags flags("prog", "test");
  flags.add_int("count", 7, "a count");
  const std::array<const char*, 1> argv = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv.data()));
  EXPECT_EQ(flags.get_int("count"), 7);
}

TEST(Cli, UnknownFlagThrows) {
  CliFlags flags("prog", "test");
  const std::array<const char*, 2> argv = {"prog", "--nope=1"};
  EXPECT_THROW(flags.parse(2, argv.data()), ConfigError);
}

TEST(Cli, MalformedIntThrows) {
  CliFlags flags("prog", "test");
  flags.add_int("count", 1, "a count");
  const std::array<const char*, 2> argv = {"prog", "--count=abc"};
  EXPECT_THROW(flags.parse(2, argv.data()), ConfigError);
}

TEST(Cli, MalformedBoolThrows) {
  CliFlags flags("prog", "test");
  flags.add_bool("fast", false, "a flag");
  const std::array<const char*, 2> argv = {"prog", "--fast=maybe"};
  EXPECT_THROW(flags.parse(2, argv.data()), ConfigError);
}

TEST(Cli, HelpReturnsFalse) {
  CliFlags flags("prog", "test");
  const std::array<const char*, 2> argv = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv.data()));
}

TEST(Cli, DuplicateDeclarationThrows) {
  CliFlags flags("prog", "test");
  flags.add_int("x", 0, "x");
  EXPECT_THROW(flags.add_int("x", 1, "again"), Error);
}

TEST(Cli, TypeMismatchOnGetThrows) {
  CliFlags flags("prog", "test");
  flags.add_int("x", 0, "x");
  EXPECT_THROW(flags.get_string("x"), Error);
  EXPECT_THROW(flags.get_int("undeclared"), Error);
}

TEST(Cli, UsageListsFlags) {
  CliFlags flags("prog", "my description");
  flags.add_int("epochs", 12, "training epochs");
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("my description"), std::string::npos);
  EXPECT_NE(usage.find("--epochs"), std::string::npos);
  EXPECT_NE(usage.find("training epochs"), std::string::npos);
}

TEST(Logging, LevelFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  // Nothing to assert on stderr easily; exercise the path for coverage.
  DCN_LOG_INFO << "suppressed";
  DCN_LOG_ERROR << "emitted";
  set_log_level(before);
  SUCCEED();
}

}  // namespace
}  // namespace dcn
