// Tests for elementwise ops and reductions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace dcn {
namespace {

TEST(Ops, AddSubMul) {
  const Tensor a(Shape{3}, 2.0f);
  const Tensor b(Shape{3}, 3.0f);
  EXPECT_EQ(add(a, b)[0], 5.0f);
  EXPECT_EQ(sub(a, b)[1], -1.0f);
  EXPECT_EQ(mul(a, b)[2], 6.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a(Shape{3});
  const Tensor b(Shape{4});
  EXPECT_THROW(add(a, b), Error);
  EXPECT_THROW(dot(a, b), Error);
}

TEST(Ops, OutAliasingAllowed) {
  Tensor a(Shape{3}, 2.0f);
  const Tensor b(Shape{3}, 3.0f);
  add(a, b, a);
  EXPECT_EQ(a[0], 5.0f);
}

TEST(Ops, ScaleAndAxpy) {
  Tensor a(Shape{2}, 1.0f);
  const Tensor b(Shape{2}, 4.0f);
  axpy(0.5f, b, a);
  EXPECT_EQ(a[0], 3.0f);
  EXPECT_EQ(scale(b, -2.0f)[1], -8.0f);
}

TEST(Ops, ReluClampsNegatives) {
  Tensor a(Shape{4});
  a[0] = -1.0f;
  a[1] = 0.0f;
  a[2] = 2.0f;
  a[3] = -0.5f;
  const Tensor r = relu(a);
  EXPECT_EQ(r[0], 0.0f);
  EXPECT_EQ(r[1], 0.0f);
  EXPECT_EQ(r[2], 2.0f);
  EXPECT_EQ(r[3], 0.0f);
}

TEST(Ops, ReluBackwardMasksByInputSign) {
  Tensor a(Shape{3});
  a[0] = -1.0f;
  a[1] = 1.0f;
  a[2] = 0.0f;
  const Tensor g(Shape{3}, 5.0f);
  Tensor out(Shape{3});
  relu_backward(a, g, out);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 5.0f);
  EXPECT_EQ(out[2], 0.0f);  // subgradient 0 at the kink
}

TEST(Ops, SigmoidStableAtExtremes) {
  Tensor a(Shape{3});
  a[0] = 100.0f;
  a[1] = -100.0f;
  a[2] = 0.0f;
  const Tensor s = sigmoid(a);
  EXPECT_NEAR(s[0], 1.0f, 1e-6f);
  EXPECT_NEAR(s[1], 0.0f, 1e-6f);
  EXPECT_NEAR(s[2], 0.5f, 1e-6f);
  EXPECT_FALSE(std::isnan(s[0]));
  EXPECT_FALSE(std::isnan(s[1]));
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor logits(Shape{5, 7});
  logits.fill_normal(rng, 0.0f, 10.0f);
  const Tensor p = softmax_rows(logits);
  for (std::int64_t r = 0; r < 5; ++r) {
    double row_sum = 0.0;
    for (std::int64_t c = 0; c < 7; ++c) {
      const float v = p.at({r, c});
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      row_sum += v;
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxHandlesHugeLogits) {
  Tensor logits(Shape{1, 3});
  logits[0] = 1000.0f;
  logits[1] = 999.0f;
  logits[2] = -1000.0f;
  const Tensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p[0], p[1]);
  EXPECT_NEAR(p[2], 0.0f, 1e-6f);
}

TEST(Ops, DotAndNorm) {
  Tensor a(Shape{3});
  a[0] = 3.0f;
  a[1] = 4.0f;
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(Ops, MaxAbsDiff) {
  Tensor a(Shape{3}, 1.0f);
  Tensor b(Shape{3}, 1.0f);
  b[2] = -1.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 2.5f);
}

TEST(Ops, ClampRange) {
  Tensor a(Shape{3});
  a[0] = -5.0f;
  a[1] = 0.5f;
  a[2] = 5.0f;
  clamp(a, 0.0f, 1.0f);
  EXPECT_EQ(a[0], 0.0f);
  EXPECT_EQ(a[1], 0.5f);
  EXPECT_EQ(a[2], 1.0f);
  EXPECT_THROW(clamp(a, 1.0f, 0.0f), Error);
}

TEST(Reduce, SumMeanOverKnownValues) {
  const Tensor t = arange(5);  // 0+1+2+3+4 = 10
  EXPECT_DOUBLE_EQ(sum(t), 10.0);
  EXPECT_DOUBLE_EQ(mean(t), 2.0);
}

TEST(Reduce, MinMaxArgmax) {
  Tensor t(Shape{4});
  t[0] = 1.0f;
  t[1] = -3.0f;
  t[2] = 7.0f;
  t[3] = 7.0f;
  EXPECT_EQ(max_value(t), 7.0f);
  EXPECT_EQ(min_value(t), -3.0f);
  const auto [mx, idx] = argmax(t);
  EXPECT_EQ(mx, 7.0f);
  EXPECT_EQ(idx, 2);  // first maximum
}

TEST(Reduce, RowAndColSums) {
  Tensor t = arange(6).reshaped(Shape{2, 3});
  const Tensor rows = row_sums(t);
  EXPECT_EQ(rows[0], 3.0f);   // 0+1+2
  EXPECT_EQ(rows[1], 12.0f);  // 3+4+5
  const Tensor cols = col_sums(t);
  EXPECT_EQ(cols[0], 3.0f);  // 0+3
  EXPECT_EQ(cols[2], 7.0f);  // 2+5
}

TEST(Reduce, RowSumsRequiresRank2) {
  EXPECT_THROW(row_sums(arange(4)), Error);
  EXPECT_THROW(col_sums(arange(4)), Error);
}

}  // namespace
}  // namespace dcn
