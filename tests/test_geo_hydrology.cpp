// Tests for DEM hydrology: depression filling, D8 routing, accumulation,
// and the digital-dam / culvert-breaching mechanism of the paper's §2.1.
#include "geo/hydrology.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "geo/roads.hpp"
#include "geo/terrain.hpp"

namespace dcn::geo {
namespace {

Raster tilted_plane(std::int64_t rows, std::int64_t cols) {
  Raster dem(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      dem.at(r, c) = static_cast<float>(cols - c);  // drains east
    }
  }
  return dem;
}

TEST(FillDepressions, NeverLowersAndRemovesPits) {
  Rng rng(3);
  TerrainConfig config;
  config.rows = 64;
  config.cols = 64;
  Raster dem = synthesize_terrain(config, rng);
  // Punch an artificial pit.
  dem.at(30, 30) = dem.min_value() - 10.0f;
  const Raster filled = fill_depressions(dem);
  for (std::int64_t i = 0; i < dem.size(); ++i) {
    EXPECT_GE(filled.data()[i], dem.data()[i]);
  }
  const auto dirs = flow_directions(filled);
  for (std::int64_t r = 1; r + 1 < filled.rows(); ++r) {
    for (std::int64_t c = 1; c + 1 < filled.cols(); ++c) {
      EXPECT_NE(dirs[static_cast<std::size_t>(r * filled.cols() + c)], kPit)
          << "interior pit at (" << r << ", " << c << ")";
    }
  }
}

TEST(FillDepressions, NoopOnMonotoneSurface) {
  const Raster dem = tilted_plane(16, 16);
  const Raster filled = fill_depressions(dem, 0.0f);
  for (std::int64_t i = 0; i < dem.size(); ++i) {
    EXPECT_EQ(filled.data()[i], dem.data()[i]);
  }
}

TEST(FlowDirections, TiltedPlaneDrainsEast) {
  const Raster dem = tilted_plane(8, 8);
  const auto dirs = flow_directions(dem);
  // Interior cells flow east (direction 0).
  for (std::int64_t r = 1; r < 7; ++r) {
    for (std::int64_t c = 1; c < 7; ++c) {
      EXPECT_EQ(dirs[static_cast<std::size_t>(r * 8 + c)], 0);
    }
  }
  // East-edge cells exit the grid.
  EXPECT_EQ(dirs[static_cast<std::size_t>(3 * 8 + 7)], kOutlet);
}

TEST(FlowAccumulation, ConservesMass) {
  Rng rng(11);
  TerrainConfig config;
  config.rows = 48;
  config.cols = 48;
  const Raster dem = fill_depressions(synthesize_terrain(config, rng));
  const auto dirs = flow_directions(dem);
  const Raster acc = flow_accumulation(dem, dirs);
  // Every cell contributes exactly one unit that exits somewhere: the sum
  // of accumulation over terminal cells (outlets/pits) equals the cell
  // count.
  double exit_mass = 0.0;
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    const int d = dirs[static_cast<std::size_t>(i)];
    if (d == kOutlet || d == kPit) exit_mass += acc.data()[i];
  }
  EXPECT_DOUBLE_EQ(exit_mass, static_cast<double>(acc.size()));
}

TEST(FlowAccumulation, MinimumIsOneAndMonotoneDownstream) {
  const Raster dem = tilted_plane(6, 10);
  const auto dirs = flow_directions(dem);
  const Raster acc = flow_accumulation(dem, dirs);
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    EXPECT_GE(acc.data()[i], 1.0f);
  }
  // Along a row of the tilted plane accumulation grows eastward.
  for (std::int64_t c = 1; c < 9; ++c) {
    EXPECT_GT(acc.at(3, c + 1), acc.at(3, c));
  }
}

TEST(FlowAccumulation, RejectsCyclicDirections) {
  const Raster dem = tilted_plane(4, 4);
  std::vector<int> dirs(16, kPit);
  dirs[5] = 0;  // (1,1) -> (1,2)
  dirs[6] = 4;  // (1,2) -> (1,1): 2-cycle
  EXPECT_THROW(flow_accumulation(dem, dirs), dcn::Error);
}

TEST(ExtractStreams, Thresholds) {
  Raster acc(2, 2);
  acc.at(0, 0) = 10.0f;
  acc.at(1, 1) = 200.0f;
  const Raster streams = extract_streams(acc, 100.0f);
  EXPECT_EQ(streams.at(0, 0), 0.0f);
  EXPECT_EQ(streams.at(1, 1), 1.0f);
}

TEST(DigitalDam, EmbankmentBlocksAndBreachRestoresFlow) {
  // A north-south road embankment across an east-draining plane creates a
  // digital dam; breaching it at one point restores the eastward flow path
  // through that point — the paper's Figure 1 mechanism.
  Raster dem = tilted_plane(32, 32);
  Raster road_mask(32, 32);
  for (std::int64_t r = 0; r < 32; ++r) road_mask.at(r, 16) = 1.0f;
  apply_embankment(dem, road_mask, 50.0f);

  {
    const Raster filled = fill_depressions(dem);
    const auto dirs = flow_directions(filled);
    const Raster acc = flow_accumulation(filled, dirs);
    // Water pooled west of the dam cannot cross it: accumulation east of
    // the dam stays at local-only values in every row.
    for (std::int64_t r = 0; r < 32; ++r) {
      EXPECT_LT(acc.at(r, 20), 8.0f) << "row " << r;
    }
  }

  breach_at(dem, {{16, 16}}, 60.0f, 1);
  {
    const Raster filled = fill_depressions(dem);
    const auto dirs = flow_directions(filled);
    const Raster acc = flow_accumulation(filled, dirs);
    // The breach funnels the dammed drainage through the culvert: some
    // cell just east of the dam now carries a large share of the basin.
    float crossing_flow = 0.0f;
    for (std::int64_t r = 0; r < 32; ++r) {
      crossing_flow = std::max(crossing_flow, acc.at(r, 18));
    }
    EXPECT_GT(crossing_flow, 100.0f);
  }
}

TEST(Embankment, RequiresMatchingSizes) {
  Raster dem(8, 8);
  Raster mask(4, 4);
  EXPECT_THROW(apply_embankment(dem, mask, 1.0f), dcn::Error);
}

TEST(Breach, LowersNeighborhood) {
  Raster dem(8, 8, 10.0f);
  breach_at(dem, {{4, 4}}, 2.0f, 1);
  EXPECT_EQ(dem.at(4, 4), 8.0f);
  EXPECT_EQ(dem.at(3, 3), 8.0f);
  EXPECT_EQ(dem.at(4, 6), 10.0f);
}

}  // namespace
}  // namespace dcn::geo
