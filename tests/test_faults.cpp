// Tests for the fault-injection layer and the recovery machinery above it:
// typed device errors, seeded fault schedules, retry/backoff policy,
// ResilientSession, and fault-tolerant + resumable NAS campaigns.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/error.hpp"
#include "core/retry.hpp"
#include "core/rng.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "nas/experiment.hpp"
#include "nas/runner.hpp"
#include "nas/strategy.hpp"
#include "profiler/recorder.hpp"
#include "profiler/report.hpp"
#include "profiler/trace.hpp"
#include "simgpu/device.hpp"
#include "simgpu/faults.hpp"

namespace dcn {
namespace {

using simgpu::Device;
using simgpu::FaultInjector;
using simgpu::FaultKind;
using simgpu::FaultPlan;

simgpu::KernelDesc test_kernel(const char* name = "k") {
  simgpu::KernelDesc k;
  k.name = name;
  k.category = profiler::KernelCategory::kConv;
  k.flops_per_sample = 4e8;
  k.activation_bytes_per_sample = 4e6;
  k.weight_bytes = 3e5;
  k.threads_per_sample = 1e5;
  return k;
}

// --- Fault plan & injector -------------------------------------------------

TEST(FaultPlan, ParsesCliSpecs) {
  const FaultPlan plan = FaultPlan::parse(
      "launch:p=0.05;sync_hang:at=2,hang=0.1;memcpy_slow:at=0,factor=8", 42);
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kLaunchFailure);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.05);
  EXPECT_EQ(plan.rules[0].max_fires, -1);  // stochastic rules unbounded
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kSyncHang);
  EXPECT_EQ(plan.rules[1].at_op, 2);
  EXPECT_DOUBLE_EQ(plan.hang_seconds, 0.1);
  EXPECT_EQ(plan.rules[2].kind, FaultKind::kMemcpySlowdown);
  EXPECT_DOUBLE_EQ(plan.rules[2].slowdown_factor, 8.0);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus:p=0.1"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("launch:frequency=2"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("launch:p"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("launch:p=lots"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("launch"), ConfigError);  // no trigger
}

TEST(FaultInjector, ScheduledRuleFiresAtOpAndRespectsMaxFires) {
  FaultPlan plan;
  plan.fail_at(FaultKind::kLaunchFailure, 2, /*max_fires=*/2);
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.check(FaultKind::kLaunchFailure, 0.0));  // op 0
  EXPECT_FALSE(injector.check(FaultKind::kLaunchFailure, 0.0));  // op 1
  EXPECT_TRUE(injector.check(FaultKind::kLaunchFailure, 0.0));   // op 2
  EXPECT_TRUE(injector.check(FaultKind::kLaunchFailure, 0.0));   // op 3
  EXPECT_FALSE(injector.check(FaultKind::kLaunchFailure, 0.0));  // spent
  EXPECT_EQ(injector.fired(FaultKind::kLaunchFailure), 2);
  EXPECT_EQ(injector.ops_seen(FaultKind::kLaunchFailure), 5);
  // Other kinds have independent counters.
  EXPECT_FALSE(injector.check(FaultKind::kAllocFailure, 0.0));
}

TEST(FaultInjector, TimeTriggeredRuleWaitsForTimestamp) {
  FaultPlan plan;
  plan.fail_after(FaultKind::kSyncHang, 1.5);
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.check(FaultKind::kSyncHang, 0.0));
  EXPECT_FALSE(injector.check(FaultKind::kSyncHang, 1.49));
  const auto fault = injector.check(FaultKind::kSyncHang, 2.0);
  ASSERT_TRUE(fault.has_value());
  EXPECT_DOUBLE_EQ(fault->time, 2.0);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.fail_with_probability(FaultKind::kLaunchFailure, 0.3);
  plan.fail_with_probability(FaultKind::kMemcpyCorruption, 0.2);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    const FaultKind kind = (i % 3 == 0) ? FaultKind::kMemcpyCorruption
                                        : FaultKind::kLaunchFailure;
    a.check(kind, 0.001 * i);
    b.check(kind, 0.001 * i);
  }
  ASSERT_GT(a.total_fired(), 0);
  ASSERT_EQ(a.injected().size(), b.injected().size());
  for (std::size_t i = 0; i < a.injected().size(); ++i) {
    EXPECT_EQ(a.injected()[i].kind, b.injected()[i].kind);
    EXPECT_EQ(a.injected()[i].op_index, b.injected()[i].op_index);
  }
  // A different seed produces a different schedule.
  plan.seed = 99;
  FaultInjector c(plan);
  int differences = 0;
  for (int i = 0; i < 200; ++i) {
    const FaultKind kind = (i % 3 == 0) ? FaultKind::kMemcpyCorruption
                                        : FaultKind::kLaunchFailure;
    c.check(kind, 0.001 * i);
  }
  if (c.total_fired() != a.total_fired()) {
    ++differences;
  } else {
    for (int i = 0; i < a.total_fired(); ++i) {
      if (a.injected()[static_cast<std::size_t>(i)].op_index !=
          c.injected()[static_cast<std::size_t>(i)].op_index) {
        ++differences;
      }
    }
  }
  EXPECT_GT(differences, 0);
}

// --- Typed device errors ---------------------------------------------------

TEST(TypedErrors, MemoryTrackerReportsOomWithContext) {
  simgpu::MemoryTracker tracker;
  tracker.allocate(600, 1000);
  try {
    tracker.allocate(500, 1000);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& oom) {
    EXPECT_FALSE(oom.retryable());
    EXPECT_EQ(oom.requested_bytes(), 500);
    EXPECT_EQ(oom.live_bytes(), 600);
    EXPECT_EQ(oom.capacity_bytes(), 1000);
    EXPECT_NE(std::string(oom.what()).find("600 live"), std::string::npos);
  }
}

TEST(TypedErrors, FreeOfUnknownBufferIsFatalDeviceFault) {
  simgpu::MemoryTracker tracker;
  const simgpu::BufferId id = tracker.allocate(100, 1000);
  tracker.free(id);
  try {
    tracker.free(id);
    FAIL() << "expected DeviceFault";
  } catch (const DeviceFault& fault) {
    EXPECT_FALSE(fault.retryable());
    EXPECT_NE(std::string(fault.what()).find("already-freed"),
              std::string::npos);
  }
  // The taxonomy stays compatible with the dcn::Error base.
  EXPECT_THROW(tracker.free(id), Error);
}

TEST(TypedErrors, DeviceMallocBeyondCapacityThrowsTyped) {
  simgpu::DeviceSpec spec = simgpu::tiny_spec();
  Device device(spec);
  EXPECT_THROW(device.malloc(spec.dram_bytes + 1), OutOfMemoryError);
}

// --- Device-level fault injection ------------------------------------------

TEST(DeviceFaults, InjectedLaunchFailureIsRetryableAndRecorded) {
  profiler::Recorder recorder;
  Device device(simgpu::a5500_spec(), &recorder);
  FaultPlan plan;
  plan.fail_at(FaultKind::kLaunchFailure, 0);
  device.set_fault_plan(plan);
  device.load_library(1);
  try {
    device.run_stage({{test_kernel()}}, 1);
    FAIL() << "expected DeviceFault";
  } catch (const DeviceFault& fault) {
    EXPECT_TRUE(fault.retryable());
    EXPECT_FALSE(fault.requires_reset());
  }
  ASSERT_EQ(recorder.fault_spans().size(), 1u);
  EXPECT_EQ(recorder.fault_spans()[0].name, "launch_failure");
  // The rule is spent; the retried stage succeeds.
  device.run_stage({{test_kernel()}}, 1);
}

TEST(DeviceFaults, InjectedAllocFailureIsRetryableOom) {
  Device device(simgpu::a5500_spec());
  FaultPlan plan;
  plan.fail_at(FaultKind::kAllocFailure, 0);
  device.set_fault_plan(plan);
  try {
    device.malloc(1 << 20);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& oom) {
    EXPECT_TRUE(oom.retryable());
    EXPECT_EQ(oom.requested_bytes(), 1 << 20);
  }
  EXPECT_EQ(device.memory().live_bytes(), 0);
  device.malloc(1 << 20);  // retry succeeds
  EXPECT_EQ(device.memory().live_bytes(), 1 << 20);
}

TEST(DeviceFaults, MemcpySlowdownStretchesTransferWithoutError) {
  Device clean(simgpu::a5500_spec());
  clean.memcpy_h2d(32 << 20);
  const double clean_time = clean.host_time();

  Device slow(simgpu::a5500_spec());
  FaultPlan plan;
  plan.fail_at(FaultKind::kMemcpySlowdown, 0);
  plan.rules.back().slowdown_factor = 8.0;
  slow.set_fault_plan(plan);
  slow.memcpy_h2d(32 << 20);
  EXPECT_GT(slow.host_time(), 4.0 * clean_time);
}

TEST(DeviceFaults, MemcpyCorruptionThrowsAfterChargingTime) {
  Device device(simgpu::a5500_spec());
  FaultPlan plan;
  plan.fail_at(FaultKind::kMemcpyCorruption, 0);
  device.set_fault_plan(plan);
  EXPECT_THROW(device.memcpy_h2d(1 << 20), DeviceFault);
  EXPECT_GT(device.host_time(), 0.0);  // the failed copy still cost time
  device.memcpy_h2d(1 << 20);          // transient: retry succeeds
}

TEST(DeviceFaults, SyncHangTripsWatchdogAndHardResetRecovers) {
  Device device(simgpu::a5500_spec());
  FaultPlan plan;
  plan.hang_seconds = 0.05;
  plan.fail_at(FaultKind::kSyncHang, 0);
  device.set_fault_plan(plan);
  device.set_sync_timeout(0.01);
  device.load_library(1);
  const simgpu::BufferId buffer = device.malloc(1 << 20);
  device.run_stage({{test_kernel()}}, 1);
  try {
    device.synchronize();
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& timeout) {
    EXPECT_TRUE(timeout.retryable());
    EXPECT_TRUE(timeout.requires_reset());
    EXPECT_DOUBLE_EQ(timeout.timeout_seconds(), 0.01);
  }
  (void)buffer;
  const double before_reset = device.host_time();
  device.hard_reset();
  EXPECT_GT(device.host_time(), before_reset);
  EXPECT_EQ(device.memory().live_bytes(), 0);
  // Library was dropped: stages need a reload first.
  EXPECT_THROW(device.run_stage({{test_kernel()}}, 1), Error);
  device.load_library(1);
  device.run_stage({{test_kernel()}}, 1);
  device.synchronize();  // hang rule spent; queue drains normally
}

TEST(DeviceFaults, HangWithoutWatchdogJustStalls) {
  Device device(simgpu::a5500_spec());
  FaultPlan plan;
  plan.hang_seconds = 0.25;
  plan.fail_at(FaultKind::kSyncHang, 0);
  device.set_fault_plan(plan);
  device.load_library(1);
  device.run_stage({{test_kernel()}}, 1);
  device.synchronize();
  EXPECT_GE(device.host_time(), 0.25);
}

// --- Retry policy ----------------------------------------------------------

TEST(Retry, BackoffDelaysAreExactWithoutJitter) {
  RetryPolicy policy;
  policy.base_backoff = 1e-3;
  policy.multiplier = 2.0;
  policy.max_backoff = 3e-3;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 1, rng), 1e-3);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 2, rng), 2e-3);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 3, rng), 3e-3);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 9, rng), 3e-3);
}

TEST(Retry, JitterStaysWithinBand) {
  RetryPolicy policy;
  policy.base_backoff = 1e-3;
  policy.jitter = 0.5;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double delay = backoff_delay(policy, 1, rng);
    EXPECT_GE(delay, 0.5e-3);
    EXPECT_LT(delay, 1.5e-3);
  }
}

TEST(Retry, WithRetriesCountsAttemptsExactly) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  RetryStats stats;
  int failures_left = 2;
  const int result = with_retries(
      policy, stats,
      [&] {
        if (failures_left > 0) {
          --failures_left;
          throw DeviceFault("transient", /*retryable=*/true);
        }
        return 7;
      },
      [](const std::exception&, int) {});
  EXPECT_EQ(result, 7);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
}

TEST(Retry, NonRetryableAndExhaustionRethrow) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  {
    RetryStats stats;
    EXPECT_THROW(with_retries(
                     policy, stats,
                     [&]() -> int {
                       throw DeviceFault("fatal", /*retryable=*/false);
                     },
                     [](const std::exception&, int) {}),
                 DeviceFault);
    EXPECT_EQ(stats.attempts, 1);  // no retries for fatal faults
  }
  {
    RetryStats stats;
    EXPECT_THROW(with_retries(
                     policy, stats,
                     [&]() -> int {
                       throw DeviceFault("stuck", /*retryable=*/true);
                     },
                     [](const std::exception&, int) {}),
                 DeviceFault);
    EXPECT_EQ(stats.attempts, 3);
    EXPECT_EQ(stats.retries, 2);
  }
}

TEST(Retry, ClassifiersInspectTheTaxonomy) {
  EXPECT_TRUE(is_retryable(DeviceFault("x", true)));
  EXPECT_FALSE(is_retryable(DeviceFault("x", false)));
  EXPECT_FALSE(is_retryable(Error("plain")));
  EXPECT_TRUE(requires_reset(TimeoutError("hang", 0.01)));
  EXPECT_FALSE(requires_reset(DeviceFault("x", true)));
}

// --- Measurement hardening -------------------------------------------------

TEST(MeasureLatency, RejectsBadArguments) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 32);
  const ios::Schedule schedule = ios::sequential_schedule(g);
  Device device(simgpu::a5500_spec());
  EXPECT_THROW(ios::measure_latency(g, schedule, device, 1, 1, 0),
               ConfigError);
  EXPECT_THROW(ios::measure_latency(g, schedule, device, 1, -1, 3),
               ConfigError);
  EXPECT_THROW(ios::measure_latency(g, schedule, device, 0, 1, 3),
               ConfigError);
  EXPECT_GT(ios::measure_latency(g, schedule, device, 1, 0, 1), 0.0);
}

// --- ResilientSession ------------------------------------------------------

class ResilientSessionTest : public ::testing::Test {
 protected:
  ResilientSessionTest()
      : graph_(graph::build_inference_graph(detect::sppnet_candidate2(), 32)),
        schedule_(ios::sequential_schedule(graph_)) {}

  graph::Graph graph_;
  ios::Schedule schedule_;
};

TEST_F(ResilientSessionTest, RetryAndBackoffCountsAreExact) {
  Device device(simgpu::a5500_spec());
  FaultPlan plan;
  plan.fail_at(FaultKind::kLaunchFailure, 0, /*max_fires=*/2);
  device.set_fault_plan(plan);
  ios::ResilientOptions options;
  options.retry.max_attempts = 4;
  options.retry.base_backoff = 1e-3;
  options.retry.multiplier = 2.0;
  options.retry.max_backoff = 1.0;
  options.retry.jitter = 0.0;
  ios::ResilientSession session(graph_, schedule_, device, options);
  session.initialize();
  const ios::RunResult result = session.run(1);
  EXPECT_GT(result.latency_seconds, 0.0);
  EXPECT_EQ(session.stats().runs, 1);
  EXPECT_EQ(session.stats().completed, 1);
  EXPECT_EQ(session.stats().transient_retries, 2);
  EXPECT_EQ(session.stats().reinitializations, 0);
  EXPECT_DOUBLE_EQ(session.stats().backoff_seconds, 1e-3 + 2e-3);
}

TEST_F(ResilientSessionTest, TimeoutTriggersReinitializeAndSucceeds) {
  profiler::Recorder recorder;
  Device device(simgpu::a5500_spec(), &recorder);
  FaultPlan plan;
  plan.hang_seconds = 0.5;
  plan.fail_at(FaultKind::kSyncHang, 0);
  device.set_fault_plan(plan);
  ios::ResilientOptions options;
  options.sync_timeout = 0.01;
  options.retry.max_attempts = 3;
  options.retry.jitter = 0.0;
  ios::ResilientSession session(graph_, schedule_, device, options);
  session.initialize();
  const ios::RunResult result = session.run(1);
  EXPECT_GT(result.latency_seconds, 0.0);
  EXPECT_EQ(session.stats().transient_retries, 1);
  EXPECT_EQ(session.stats().reinitializations, 1);
  // The recovery shows up in the trace: a sync_hang fault, then the
  // reinitialize + retry events.
  bool saw_hang = false, saw_reinit = false, saw_retry = false;
  for (const profiler::FaultSpan& span : recorder.fault_spans()) {
    if (span.name == "sync_hang") saw_hang = true;
    if (span.name == "reinitialize") saw_reinit = true;
    if (span.name == "retry") saw_retry = true;
  }
  EXPECT_TRUE(saw_hang);
  EXPECT_TRUE(saw_reinit);
  EXPECT_TRUE(saw_retry);
}

TEST_F(ResilientSessionTest, TryRunDegradesGracefully) {
  Device device(simgpu::a5500_spec());
  FaultPlan plan;
  plan.fail_at(FaultKind::kLaunchFailure, 0, /*max_fires=*/100);
  device.set_fault_plan(plan);
  ios::ResilientOptions options;
  options.retry.max_attempts = 2;
  ios::ResilientSession session(graph_, schedule_, device, options);
  session.initialize();
  EXPECT_FALSE(session.try_run(1).has_value());
  EXPECT_EQ(session.stats().degraded, 1);
  EXPECT_FALSE(session.stats().last_error.empty());
}

TEST_F(ResilientSessionTest, ResilientMeasurementSurvivesTransients) {
  Device device(simgpu::a5500_spec());
  FaultPlan plan;
  plan.fail_at(FaultKind::kLaunchFailure, 0, /*max_fires=*/1);
  plan.fail_at(FaultKind::kMemcpyCorruption, 1, /*max_fires=*/1);
  device.set_fault_plan(plan);
  ios::ResilientOptions options;
  options.retry.max_attempts = 4;
  ios::SessionStats stats;
  const double latency = ios::measure_latency_resilient(
      graph_, schedule_, device, 1, 1, 3, options, &stats);
  EXPECT_GT(latency, 0.0);
  EXPECT_GE(stats.transient_retries, 1);
  EXPECT_EQ(stats.degraded, 0);

  // The same model measured on a clean device agrees: faults perturb the
  // timeline, not the reported steady-state latency.
  Device clean(simgpu::a5500_spec());
  const double clean_latency =
      ios::measure_latency(graph_, schedule_, clean, 1, 1, 3);
  EXPECT_NEAR(latency, clean_latency, 1e-12);
}

// --- Fault-tolerant NAS campaigns ------------------------------------------

nas::SearchSpace small_space() {
  nas::SearchSpace space;
  space.conv1_kernels = {3, 5};
  space.spp_first_levels = {2, 4};
  space.fc_widths = {64, 128};
  space.num_fc_layers = 1;
  return space;
}

nas::RunnerConfig quiet_config(int max_trials) {
  nas::RunnerConfig config;
  config.max_trials = max_trials;
  config.input_size = 32;
  config.verbose = false;
  return config;
}

double proxy_accuracy(const detect::SppNetConfig& model) {
  return 0.9 + 1e-9 * static_cast<double>(model.parameter_count());
}

TEST(FaultTolerantNas, SurvivesThrowingEvaluatorAndFillsAllRows) {
  nas::GridSearchStrategy strategy(small_space());
  const nas::RunnerConfig config = quiet_config(6);
  int calls = 0;
  const nas::TrialDatabase db = nas::run_multi_trial(
      strategy,
      [&](const detect::SppNetConfig& model) {
        if (++calls == 3) throw Error("synthetic training crash");
        return proxy_accuracy(model);
      },
      config);
  ASSERT_EQ(db.size(), 6u);
  EXPECT_EQ(db.num_failed(), 1u);
  const nas::Trial& failed = db.trial(2);
  EXPECT_EQ(failed.status, nas::TrialStatus::kFailed);
  EXPECT_NE(failed.failure_reason.find("synthetic training crash"),
            std::string::npos);
  EXPECT_EQ(failed.metrics.average_precision, 0.0);
  // Rankings skip the failed row.
  const auto best = db.best_by_accuracy();
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->ok());
  EXPECT_NE(best->index, failed.index);
  ASSERT_TRUE(db.best_by_throughput().has_value());
  EXPECT_TRUE(db.best_by_throughput()->ok());
}

TEST(FaultTolerantNas, RetryableDeviceFaultGetsTrialRetried) {
  // Every launch fails on attempt 1's injector schedule, but the retried
  // attempt draws a fresh (fault-free) salt only for probability rules —
  // a persistent at_op rule keeps failing, so exhaust the session budget
  // fast and rely on the per-attempt reseed of a probability rule instead.
  nas::GridSearchStrategy strategy(small_space());
  nas::RunnerConfig config = quiet_config(4);
  config.faults.seed = 11;
  config.faults.fail_with_probability(FaultKind::kLaunchFailure, 0.9,
                                      /*max_fires=*/-1);
  config.resilient.retry.max_attempts = 2;
  config.trial_retries = 3;
  const nas::TrialDatabase db =
      nas::run_multi_trial(strategy, proxy_accuracy, config);
  ASSERT_EQ(db.size(), 4u);
  // With p=0.9 every trial needed session retries or trial retries; the
  // campaign still completed and recorded an outcome for every row.
  for (const nas::Trial& t : db.trials()) {
    EXPECT_TRUE(t.status == nas::TrialStatus::kOk ||
                t.status == nas::TrialStatus::kRetried ||
                t.status == nas::TrialStatus::kFailed);
    if (t.status == nas::TrialStatus::kRetried) {
      EXPECT_GT(t.attempts, 1);
    }
  }
}

TEST(FaultTolerantNas, SameFaultSeedSameDatabase) {
  nas::RunnerConfig config = quiet_config(6);
  config.faults.seed = 21;
  config.faults.fail_with_probability(FaultKind::kLaunchFailure, 0.3);
  config.faults.fail_with_probability(FaultKind::kMemcpyCorruption, 0.2);
  config.resilient.retry.jitter = 0.0;
  auto campaign = [&] {
    nas::GridSearchStrategy strategy(small_space());
    return nas::run_multi_trial(strategy, proxy_accuracy, config);
  };
  const nas::TrialDatabase a = campaign();
  const nas::TrialDatabase b = campaign();
  EXPECT_EQ(a.to_csv(), b.to_csv());

  nas::RunnerConfig other = config;
  other.faults.seed = 22;
  nas::GridSearchStrategy strategy(small_space());
  const nas::TrialDatabase c =
      nas::run_multi_trial(strategy, proxy_accuracy, other);
  EXPECT_EQ(c.size(), a.size());  // row count is fault-independent
}

TEST(FaultTolerantNas, TrialCsvRoundTripsExactly) {
  nas::GridSearchStrategy strategy(small_space());
  const nas::RunnerConfig config = quiet_config(4);
  int calls = 0;
  const nas::TrialDatabase db = nas::run_multi_trial(
      strategy,
      [&](const detect::SppNetConfig& model) {
        if (++calls == 2) throw Error("boom, with (parens) and 'quotes'");
        return proxy_accuracy(model);
      },
      config);
  const std::string csv = db.to_csv();
  const nas::TrialDatabase back = nas::TrialDatabase::from_csv(csv);
  ASSERT_EQ(back.size(), db.size());
  EXPECT_EQ(back.to_csv(), csv);  // byte-for-byte idempotent
  EXPECT_EQ(back.trial(1).status, nas::TrialStatus::kFailed);
  EXPECT_THROW(nas::TrialDatabase::from_csv("garbage"), ConfigError);
}

TEST(FaultTolerantNas, ExperimentRecordCarriesStatus) {
  nas::TrialDatabase db;
  nas::Trial t;
  t.index = 0;
  t.point.conv1_kernel = 3;
  t.point.spp_first_level = 2;
  t.point.fc_sizes = {64};
  t.status = nas::TrialStatus::kFailed;
  t.attempts = 2;
  t.failure_reason = "simulated device hang during profiling";
  db.add(t);
  const nas::TrialDatabase back =
      nas::deserialize_experiment(nas::serialize_experiment(db));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.trial(0).status, nas::TrialStatus::kFailed);
  EXPECT_EQ(back.trial(0).attempts, 2);
  EXPECT_EQ(back.trial(0).failure_reason,
            "simulated device hang during profiling");
  // v1 records (no status fields) still load, defaulting to ok.
  const nas::TrialDatabase v1 = nas::deserialize_experiment(
      "nas-experiment v1\n"
      "trial 0 conv1 3 spp 2 fc 1 64 ap 0.5 seq 0.01 opt 0.005 tput 200 "
      "params 1000\n");
  ASSERT_EQ(v1.size(), 1u);
  EXPECT_EQ(v1.trial(0).status, nas::TrialStatus::kOk);
}

// The ISSUE acceptance scenario: a campaign with an injected transient
// launch failure AND an evaluator exception mid-campaign still fills every
// row; failed trials are excluded from selection; and resuming an
// interrupted campaign from its checkpoint CSV reproduces the
// uninterrupted database exactly.
TEST(FaultTolerantNas, InterruptedCampaignResumesToIdenticalDatabase) {
  const std::string dir = ::testing::TempDir();
  const std::string full_ckpt = dir + "dcn_faults_full.csv";
  const std::string part_ckpt = dir + "dcn_faults_part.csv";
  std::remove(full_ckpt.c_str());
  std::remove(part_ckpt.c_str());

  nas::RunnerConfig config = quiet_config(8);
  config.faults.seed = 77;
  // >= 1 transient launch failure per measurement attempt 1; absorbed by
  // the session retries (so the trial succeeds after retrying).
  config.faults.fail_at(FaultKind::kLaunchFailure, 0, /*max_fires=*/1);
  config.resilient.retry.max_attempts = 3;
  config.resilient.retry.jitter = 0.0;
  // Evaluator crashes for exactly one architecture mid-campaign,
  // independent of call order (so interrupted and full runs agree).
  const auto evaluator = [](const detect::SppNetConfig& model) {
    if (model.trunk[0].conv.kernel == 5 && model.spp_levels[0] == 4 &&
        model.fc_sizes == std::vector<std::int64_t>{128}) {
      throw Error("evaluator crash for 5/4/128");
    }
    return proxy_accuracy(model);
  };

  // Uninterrupted campaign.
  config.checkpoint_path = full_ckpt;
  nas::GridSearchStrategy full_strategy(small_space());
  const nas::TrialDatabase full =
      nas::run_multi_trial(full_strategy, evaluator, config);
  ASSERT_EQ(full.size(), 8u);
  EXPECT_EQ(full.num_failed(), 1u);
  ASSERT_TRUE(full.best_by_accuracy().has_value());
  EXPECT_TRUE(full.best_by_accuracy()->ok());

  // "Interrupted" campaign: dies after 3 trials, leaving its checkpoint.
  config.checkpoint_path = part_ckpt;
  config.max_trials = 3;
  nas::GridSearchStrategy part_strategy(small_space());
  (void)nas::run_multi_trial(part_strategy, evaluator, config);

  // Resume from the checkpoint with fresh strategy state and same seeds.
  const nas::TrialDatabase checkpoint = nas::load_checkpoint(part_ckpt);
  ASSERT_EQ(checkpoint.size(), 3u);
  config.max_trials = 8;
  nas::GridSearchStrategy resume_strategy(small_space());
  const nas::TrialDatabase resumed =
      nas::run_multi_trial(resume_strategy, evaluator, config, checkpoint);

  EXPECT_EQ(resumed.to_csv(), full.to_csv());
  // The on-disk checkpoints agree too.
  std::ifstream fa(full_ckpt), fb(part_ckpt);
  const std::string file_a((std::istreambuf_iterator<char>(fa)),
                           std::istreambuf_iterator<char>());
  const std::string file_b((std::istreambuf_iterator<char>(fb)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(file_a, file_b);

  // A checkpoint from different seeds is rejected, not silently merged.
  nas::RunnerConfig other = config;
  other.checkpoint_path.clear();
  nas::GridSearchStrategy wrong_strategy(small_space());
  nas::TrialDatabase tampered = checkpoint;
  nas::Trial bogus = checkpoint.trial(0);
  bogus.point.conv1_kernel = bogus.point.conv1_kernel == 3 ? 5 : 3;
  nas::TrialDatabase mismatched;
  mismatched.add(bogus);
  EXPECT_THROW(nas::run_multi_trial(wrong_strategy, evaluator, other,
                                    mismatched),
               ConfigError);
  (void)tampered;
}

TEST(FaultTolerantNas, LoadCheckpointMissingFileIsEmpty) {
  const nas::TrialDatabase db =
      nas::load_checkpoint("/nonexistent/dcn_checkpoint.csv");
  EXPECT_EQ(db.size(), 0u);
}

// --- Profiler integration --------------------------------------------------

TEST(FaultProfiling, ReportAndTraceShowInjectedFaults) {
  profiler::Recorder recorder;
  Device device(simgpu::a5500_spec(), &recorder);
  FaultPlan plan;
  plan.fail_at(FaultKind::kLaunchFailure, 0);
  device.set_fault_plan(plan);
  device.load_library(1);
  device.malloc(1 << 20);
  device.memcpy_h2d(1 << 20);
  EXPECT_THROW(device.run_stage({{test_kernel()}}, 1), DeviceFault);
  device.run_stage({{test_kernel()}}, 1);
  device.synchronize();
  device.record_recovery("retry", 1e-3, "retry 1 after: injected");

  const std::string report = profiler::render_report(recorder);
  EXPECT_NE(report.find("Fault & Recovery Events"), std::string::npos);
  EXPECT_NE(report.find("launch_failure"), std::string::npos);
  EXPECT_NE(report.find("retry"), std::string::npos);

  const std::string trace = profiler::to_chrome_trace(recorder);
  EXPECT_NE(trace.find("\"cat\": \"fault\""), std::string::npos);
  EXPECT_NE(trace.find("launch_failure"), std::string::npos);

  // Fault-free recorders keep the original three-view report.
  profiler::Recorder clean;
  Device clean_device(simgpu::a5500_spec(), &clean);
  clean_device.load_library(1);
  clean_device.run_stage({{test_kernel()}}, 1);
  clean_device.synchronize();
  EXPECT_EQ(profiler::render_report(clean).find("Fault & Recovery"),
            std::string::npos);
}

}  // namespace
}  // namespace dcn
