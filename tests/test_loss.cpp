// Tests for loss functions, including finite-difference gradient checks.
#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn {
namespace {

// Central finite differences on an arbitrary scalar loss of one tensor.
void check_grad(const std::function<LossResult(const Tensor&)>& loss,
                Tensor at, double tol = 2e-2) {
  const LossResult base = loss(at);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < at.numel(); ++i) {
    const float saved = at[i];
    at[i] = saved + static_cast<float>(eps);
    const double lp = loss(at).value;
    at[i] = saved - static_cast<float>(eps);
    const double lm = loss(at).value;
    at[i] = saved;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(base.grad[i], numeric,
                tol * std::max(1.0, std::abs(numeric)))
        << "entry " << i;
  }
}

TEST(BceWithLogits, KnownValues) {
  Tensor logits(Shape{2});
  logits[0] = 0.0f;
  logits[1] = 0.0f;
  Tensor targets(Shape{2});
  targets[0] = 1.0f;
  targets[1] = 0.0f;
  const LossResult res = bce_with_logits(logits, targets);
  // BCE at logit 0 is ln(2) regardless of target.
  EXPECT_NEAR(res.value, std::log(2.0), 1e-6);
  EXPECT_NEAR(res.grad[0], (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(res.grad[1], (0.5 - 0.0) / 2.0, 1e-6);
}

TEST(BceWithLogits, ConfidentCorrectIsCheap) {
  Tensor logits(Shape{1});
  logits[0] = 10.0f;
  Tensor targets(Shape{1}, 1.0f);
  EXPECT_LT(bce_with_logits(logits, targets).value, 1e-4);
}

TEST(BceWithLogits, StableAtExtremeLogits) {
  Tensor logits(Shape{2});
  logits[0] = 500.0f;
  logits[1] = -500.0f;
  Tensor targets(Shape{2});
  targets[0] = 0.0f;
  targets[1] = 1.0f;
  const LossResult res = bce_with_logits(logits, targets);
  EXPECT_FALSE(std::isnan(res.value));
  EXPECT_FALSE(std::isinf(res.value));
  EXPECT_NEAR(res.value, 500.0, 1.0);  // ~|logit| for a confident mistake
}

TEST(BceWithLogits, GradientMatchesFiniteDifferences) {
  Rng rng(3);
  Tensor logits(Shape{6});
  logits.fill_normal(rng, 0.0f, 2.0f);
  Tensor targets(Shape{6});
  for (std::int64_t i = 0; i < 6; ++i) {
    targets[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  }
  check_grad(
      [&](const Tensor& x) { return bce_with_logits(x, targets); }, logits);
}

TEST(SmoothL1, QuadraticInsideLinearOutside) {
  Tensor pred(Shape{1, 2});
  pred[0] = 0.5f;   // |d| < 1: quadratic, 0.5*0.25
  pred[1] = 3.0f;   // |d| > 1: linear, 3 - 0.5
  Tensor target(Shape{1, 2});
  Tensor mask(Shape{1}, 1.0f);
  const LossResult res = smooth_l1(pred, target, mask);
  EXPECT_NEAR(res.value, 0.5 * 0.25 + 2.5, 1e-6);
  EXPECT_NEAR(res.grad[0], 0.5, 1e-6);
  EXPECT_NEAR(res.grad[1], 1.0, 1e-6);
}

TEST(SmoothL1, MaskedRowsContributeNothing) {
  Tensor pred(Shape{2, 2}, 5.0f);
  Tensor target(Shape{2, 2});
  Tensor mask(Shape{2});
  mask[0] = 1.0f;  // row 1 masked out
  const LossResult res = smooth_l1(pred, target, mask);
  EXPECT_EQ(res.grad[2], 0.0f);
  EXPECT_EQ(res.grad[3], 0.0f);
  // Normalized by one active row.
  EXPECT_NEAR(res.value, 2 * 4.5, 1e-6);
}

TEST(SmoothL1, AllMaskedIsZero) {
  Tensor pred(Shape{2, 2}, 5.0f);
  Tensor target(Shape{2, 2});
  Tensor mask(Shape{2});
  const LossResult res = smooth_l1(pred, target, mask);
  EXPECT_EQ(res.value, 0.0);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(res.grad[i], 0.0f);
}

TEST(SmoothL1, GradientMatchesFiniteDifferences) {
  Rng rng(5);
  Tensor pred(Shape{3, 4});
  pred.fill_normal(rng, 0.0f, 1.5f);
  Tensor target(Shape{3, 4});
  target.fill_normal(rng, 0.0f, 1.0f);
  Tensor mask(Shape{3});
  mask[0] = 1.0f;
  mask[2] = 1.0f;
  check_grad(
      [&](const Tensor& x) { return smooth_l1(x, target, mask); }, pred);
}

TEST(Mse, KnownValueAndGradient) {
  Tensor pred(Shape{2});
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  Tensor target(Shape{2});
  target[0] = 0.0f;
  target[1] = 1.0f;
  const LossResult res = mse(pred, target);
  EXPECT_NEAR(res.value, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(res.grad[0], 1.0, 1e-6);   // 2*d/n
  EXPECT_NEAR(res.grad[1], 2.0, 1e-6);
}

TEST(DetectionLoss, AssemblesClassificationAndBoxTerms) {
  Tensor head(Shape{2, 5});
  // Sample 0: positive, perfect box.
  head[0] = 8.0f;  // confident positive logit
  head[1] = 0.5f;
  head[2] = 0.5f;
  head[3] = 0.2f;
  head[4] = 0.2f;
  // Sample 1: negative, box outputs arbitrary.
  head[5] = -8.0f;
  head[6] = 0.9f;
  head[7] = 0.9f;
  head[8] = 0.9f;
  head[9] = 0.9f;
  Tensor labels(Shape{2});
  labels[0] = 1.0f;
  Tensor boxes(Shape{2, 4});
  boxes[0] = 0.5f;
  boxes[1] = 0.5f;
  boxes[2] = 0.2f;
  boxes[3] = 0.2f;
  const LossResult res = detection_loss(head, labels, boxes, 1.0);
  EXPECT_LT(res.value, 1e-3);  // everything is already correct
  // Negative sample's box outputs receive no box gradient.
  for (std::int64_t c = 1; c < 5; ++c) EXPECT_EQ(res.grad[5 + c], 0.0f);
}

TEST(DetectionLoss, BoxWeightScalesBoxGradient) {
  Rng rng(7);
  Tensor head(Shape{1, 5});
  head.fill_normal(rng, 0.0f, 1.0f);
  Tensor labels(Shape{1}, 1.0f);
  Tensor boxes(Shape{1, 4}, 0.5f);
  const LossResult w1 = detection_loss(head, labels, boxes, 1.0);
  const LossResult w3 = detection_loss(head, labels, boxes, 3.0);
  for (std::int64_t c = 1; c < 5; ++c) {
    EXPECT_NEAR(w3.grad[c], 3.0f * w1.grad[c], 1e-6f);
  }
  // Objectness gradient is unaffected by the box weight.
  EXPECT_NEAR(w3.grad[0], w1.grad[0], 1e-7f);
}

TEST(DetectionLoss, GradientMatchesFiniteDifferences) {
  Rng rng(11);
  Tensor head(Shape{4, 5});
  head.fill_normal(rng, 0.0f, 1.0f);
  Tensor labels(Shape{4});
  labels[0] = 1.0f;
  labels[2] = 1.0f;
  Tensor boxes(Shape{4, 4});
  boxes.fill_uniform(rng, 0.1f, 0.9f);
  check_grad(
      [&](const Tensor& x) { return detection_loss(x, labels, boxes, 2.0); },
      head);
}

TEST(DetectionLoss, ValidatesShapes) {
  Tensor head(Shape{2, 4});  // wrong: needs 5 columns
  Tensor labels(Shape{2});
  Tensor boxes(Shape{2, 4});
  EXPECT_THROW(detection_loss(head, labels, boxes), Error);
}

}  // namespace
}  // namespace dcn
