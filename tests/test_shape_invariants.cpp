// Paper-shape invariants across device calibrations.
//
// The reproduction's headline claims (Fig. 6's batch amortization, Table
// 3's MatMul->Conv crossover, Table 2's IOS win, Fig. 8's sync growth)
// must be properties of the *mechanisms*, not of one calibration point.
// These parameterized tests re-verify each shape on a family of device
// specs spanning ~30x compute and ~15x bandwidth.
#include <gtest/gtest.h>

#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/report.hpp"
#include "simgpu/device.hpp"

namespace dcn {
namespace {

struct SpecCase {
  const char* name;
  double peak_flops;
  double dram_bw;
  int sm_count;
};

class ShapeAcrossSpecs : public testing::TestWithParam<SpecCase> {
 protected:
  simgpu::DeviceSpec spec() const {
    simgpu::DeviceSpec s = simgpu::a5500_spec();
    s.peak_flops = GetParam().peak_flops;
    s.dram_bandwidth = GetParam().dram_bw;
    s.sm_count = GetParam().sm_count;
    return s;
  }
};

TEST_P(ShapeAcrossSpecs, Fig6EfficiencyFallsAndSaturates) {
  const auto s = spec();
  const auto g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  std::vector<double> per_image;
  for (std::int64_t batch : {1, 4, 16, 64}) {
    ios::IosOptions options;
    options.batch = batch;
    const auto schedule = ios::optimize_schedule(g, s, options);
    simgpu::Device device(s);
    per_image.push_back(ios::measure_latency(g, schedule, device, batch) /
                        static_cast<double>(batch));
  }
  // Monotone improvement with diminishing relative gains.
  for (std::size_t i = 1; i < per_image.size(); ++i) {
    EXPECT_LT(per_image[i], per_image[i - 1] * 1.02) << GetParam().name;
  }
  EXPECT_GT(per_image[0] / per_image[1],
            per_image[2] / per_image[3] * 0.99)
      << GetParam().name;
}

TEST_P(ShapeAcrossSpecs, Table3MatMulShareFallsWithBatch) {
  const auto s = spec();
  const auto g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  auto matmul_share_at = [&](std::int64_t batch) {
    ios::IosOptions options;
    options.batch = batch;
    const auto schedule = ios::optimize_schedule(g, s, options);
    profiler::Recorder recorder;
    simgpu::Device device(s, &recorder);
    ios::InferenceSession session(g, schedule, device);
    session.initialize();
    recorder.clear();
    (void)session.run(batch);
    return profiler::kernel_share(recorder,
                                  profiler::KernelCategory::kMatMul);
  };
  EXPECT_GT(matmul_share_at(1), matmul_share_at(64)) << GetParam().name;
}

TEST_P(ShapeAcrossSpecs, Table2IosNeverLoses) {
  const auto s = spec();
  for (const auto& config : detect::table1_models()) {
    const auto g = graph::build_inference_graph(config, 100);
    simgpu::Device d_seq(s);
    simgpu::Device d_opt(s);
    const double seq =
        ios::measure_latency(g, ios::sequential_schedule(g), d_seq, 1);
    const double opt =
        ios::measure_latency(g, ios::optimize_schedule(g, s), d_opt, 1);
    EXPECT_LE(opt, seq + 1e-12) << GetParam().name << " / " << config.name;
  }
}

TEST_P(ShapeAcrossSpecs, Fig8SyncShareGrowsWithBatch) {
  const auto s = spec();
  const auto g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  auto sync_share_at = [&](std::int64_t batch) {
    ios::IosOptions options;
    options.batch = batch;
    const auto schedule = ios::optimize_schedule(g, s, options);
    profiler::Recorder recorder;
    simgpu::Device device(s, &recorder);
    ios::InferenceSession session(g, schedule, device);
    session.initialize();
    for (int i = 0; i < 5; ++i) (void)session.run(batch);
    return profiler::api_share(recorder,
                               profiler::ApiKind::kDeviceSynchronize);
  };
  EXPECT_GT(sync_share_at(64), sync_share_at(1)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Devices, ShapeAcrossSpecs,
    testing::Values(SpecCase{"a5500_like", 34.1e12, 768e9, 80},
                    SpecCase{"small_gpu", 5e12, 200e9, 20},
                    SpecCase{"wide_gpu", 60e12, 1500e9, 140},
                    SpecCase{"bandwidth_starved", 34.1e12, 100e9, 80},
                    SpecCase{"compute_starved", 2e12, 768e9, 16}),
    [](const testing::TestParamInfo<SpecCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dcn
