// Tests for the IOS scheduler: schedule validity, DP optimality, executor.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/schedule.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"

namespace dcn::ios {
namespace {

graph::Graph spp_graph(const detect::SppNetConfig& config,
                       std::int64_t size = 100) {
  return graph::build_inference_graph(config, size);
}

// A small multi-branch graph for brute-force comparison: conv trunk, three
// parallel pooling branches, concat.
graph::Graph small_branched_graph(int branches) {
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{16, 16, 16}});
  graph::OpAttrs conv;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.out_channels = 16;
  const auto trunk = g.add_op(graph::OpKind::kConv2d, "trunk", conv, {in},
                              graph::TensorDesc{{16, 16, 16}});
  std::vector<graph::OpId> outs;
  for (int b = 0; b < branches; ++b) {
    graph::OpAttrs pool;
    pool.pool_out = b + 1;
    const auto p = g.add_op(
        graph::OpKind::kAdaptivePool, "pool" + std::to_string(b), pool,
        {trunk}, graph::TensorDesc{{16, b + 1, b + 1}});
    const auto f = g.add_op(
        graph::OpKind::kFlatten, "flat" + std::to_string(b), {}, {p},
        graph::TensorDesc{{16 * (b + 1) * (b + 1)}});
    outs.push_back(f);
  }
  std::int64_t total = 0;
  for (int b = 0; b < branches; ++b) total += 16 * (b + 1) * (b + 1);
  const auto concat = g.add_op(graph::OpKind::kConcat, "cat", {}, outs,
                               graph::TensorDesc{{total}});
  g.add_op(graph::OpKind::kOutput, "out", {}, {concat},
           graph::TensorDesc{{total}});
  return g;
}

TEST(SequentialSchedule, OneOpPerStage) {
  const auto g = spp_graph(detect::original_sppnet());
  const Schedule seq = sequential_schedule(g);
  EXPECT_EQ(seq.num_stages(), 19u);  // 21 nodes minus Input and Output
  EXPECT_EQ(seq.max_concurrency(), 1u);
  validate_schedule(g, seq);
}

TEST(ValidateSchedule, CatchesDuplicates) {
  const auto g = spp_graph(detect::original_sppnet());
  Schedule bad = sequential_schedule(g);
  bad.stages.push_back(bad.stages.front());
  EXPECT_THROW(validate_schedule(g, bad), dcn::Error);
}

TEST(ValidateSchedule, CatchesMissingOps) {
  const auto g = spp_graph(detect::original_sppnet());
  Schedule bad = sequential_schedule(g);
  bad.stages.pop_back();
  EXPECT_THROW(validate_schedule(g, bad), dcn::Error);
}

TEST(ValidateSchedule, CatchesDependencyViolation) {
  const auto g = spp_graph(detect::original_sppnet());
  Schedule bad = sequential_schedule(g);
  std::swap(bad.stages[0], bad.stages[1]);
  EXPECT_THROW(validate_schedule(g, bad), dcn::Error);
}

TEST(ValidateSchedule, CatchesEmptyStage) {
  const auto g = spp_graph(detect::original_sppnet());
  Schedule bad = sequential_schedule(g);
  bad.stages.push_back(Stage{});
  EXPECT_THROW(validate_schedule(g, bad), dcn::Error);
}

TEST(Optimize, ProducesValidScheduleForAllTable1Models) {
  const auto spec = simgpu::a5500_spec();
  for (const auto& config : detect::table1_models()) {
    const auto g = spp_graph(config);
    const Schedule opt = optimize_schedule(g, spec);
    validate_schedule(g, opt);  // throws on failure
    EXPECT_LT(opt.num_stages(), sequential_schedule(g).num_stages());
    EXPECT_GE(opt.max_concurrency(), config.spp_levels.size());
  }
}

TEST(Optimize, CostNeverWorseThanSequential) {
  const auto spec = simgpu::a5500_spec();
  for (const auto& config : detect::table1_models()) {
    const auto g = spp_graph(config);
    for (std::int64_t batch : {1, 8, 64}) {
      IosOptions options;
      options.batch = batch;
      const Schedule opt = optimize_schedule(g, spec, options);
      const double c_opt = schedule_cost(g, spec, opt, batch);
      const double c_seq =
          schedule_cost(g, spec, sequential_schedule(g), batch);
      EXPECT_LE(c_opt, c_seq) << config.name << " batch " << batch;
    }
  }
}

TEST(Optimize, BlockDecompositionNearWholeGraphOptimum) {
  // Block decomposition is IOS's approximation: the whole-graph DP is a
  // lower bound (it may merge across block boundaries, saving stage gaps),
  // and the block-based result must stay within those boundary gaps of it.
  const auto spec = simgpu::a5500_spec();
  for (int branches : {1, 2, 3}) {
    const auto g = small_branched_graph(branches);
    IosOptions options;
    options.batch = 1;
    const Schedule opt = optimize_schedule(g, spec, options);
    const double block_cost = schedule_cost(g, spec, opt, 1);
    const double best = brute_force_best_cost(g, spec, 1);
    EXPECT_GE(block_cost, best - 1e-12) << branches << " branches";
    // At most two extra stage boundaries (entry and exit of the block).
    EXPECT_LE(block_cost, best + 2 * spec.inter_stage_gap + 1e-9)
        << branches << " branches";
    // And never worse than the sequential baseline.
    EXPECT_LE(block_cost,
              schedule_cost(g, spec, sequential_schedule(g), 1) + 1e-12);
  }
}

TEST(Optimize, ExactOnPureChain) {
  // With no branches the block decomposition is a single merged stage and
  // must coincide with the whole-graph optimum exactly.
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{64}});
  graph::OpAttrs fc;
  fc.out_features = 64;
  graph::OpId prev = in;
  for (int i = 0; i < 5; ++i) {
    prev = g.add_op(graph::OpKind::kLinear, "fc" + std::to_string(i), fc,
                    {prev}, graph::TensorDesc{{64}});
  }
  const auto spec = simgpu::a5500_spec();
  const Schedule opt = optimize_schedule(g, spec);
  EXPECT_EQ(opt.num_stages(), 1u);
  EXPECT_NEAR(schedule_cost(g, spec, opt, 1),
              brute_force_best_cost(g, spec, 1), 1e-12);
}

TEST(Optimize, ParallelizesSppBranches) {
  const auto spec = simgpu::a5500_spec();
  const auto g = spp_graph(detect::sppnet_candidate2());
  const Schedule opt = optimize_schedule(g, spec);
  // All three SPP pooling branches land in one stage.
  bool found_parallel_stage = false;
  for (const Stage& stage : opt.stages) {
    if (stage.groups.size() >= 3) found_parallel_stage = true;
  }
  EXPECT_TRUE(found_parallel_stage);
}

TEST(Optimize, PruningWidthStillYieldsValidSchedule) {
  const auto spec = simgpu::a5500_spec();
  const auto g = spp_graph(detect::sppnet_candidate2());
  IosOptions options;
  options.max_stage_ops = 2;
  const Schedule opt = optimize_schedule(g, spec, options);
  validate_schedule(g, opt);
  // The pruning width bounds DP-produced stages (the branched block);
  // multi-group stages can only come from the DP.
  for (const Stage& stage : opt.stages) {
    if (stage.groups.size() < 2) continue;
    std::size_t ops = 0;
    for (const Group& group : stage.groups) ops += group.ops.size();
    EXPECT_LE(ops, 2u);
  }
}

TEST(Optimize, OversizedBlockFallsBackToBranchHeuristic) {
  const auto spec = simgpu::a5500_spec();
  const auto g = spp_graph(detect::sppnet_candidate2());
  IosOptions options;
  options.max_block_ops = 2;  // force the fallback path
  const Schedule opt = optimize_schedule(g, spec, options);
  validate_schedule(g, opt);
}

TEST(Optimize, BlockBeyondDpMaskWidthFallsBackInsteadOfCrashing) {
  // A 16-branch block holds more device ops (32) than the 32-bit DP mask
  // can represent. Raising max_block_ops past kMaxDpOps used to route it
  // into the DP's size assertion; it must degrade to the branch heuristic.
  const auto spec = simgpu::a5500_spec();
  const auto g = small_branched_graph(16);
  IosOptions options;
  options.max_block_ops = 64;  // above kMaxDpOps on purpose
  options.max_stage_ops = 64;
  const Schedule opt = optimize_schedule(g, spec, options);
  validate_schedule(g, opt);
  EXPECT_LE(schedule_cost(g, spec, opt, 1),
            schedule_cost(g, spec, sequential_schedule(g), 1) + 1e-12);
}

TEST(Optimize, RaisedBlockLimitStillRunsDpOnSmallBlocks) {
  // max_block_ops above kMaxDpOps is clamped, not rejected: blocks that do
  // fit the mask keep getting the exact DP.
  const auto spec = simgpu::a5500_spec();
  const auto g = small_branched_graph(3);
  IosOptions options;
  options.max_block_ops = 64;
  options.batch = 1;
  const Schedule opt = optimize_schedule(g, spec, options);
  validate_schedule(g, opt);
  EXPECT_LE(schedule_cost(g, spec, opt, 1),
            brute_force_best_cost(g, spec, 1) + 2 * spec.inter_stage_gap +
                1e-9);
}

TEST(Executor, LatencyIsDeterministic) {
  const auto spec = simgpu::a5500_spec();
  const auto g = spp_graph(detect::original_sppnet());
  const Schedule opt = optimize_schedule(g, spec);
  simgpu::Device d1(spec);
  simgpu::Device d2(spec);
  const double a = measure_latency(g, opt, d1, 4);
  const double b = measure_latency(g, opt, d2, 4);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Executor, RepeatRunsAgreeOnSteadyState) {
  const auto spec = simgpu::a5500_spec();
  const auto g = spp_graph(detect::original_sppnet());
  simgpu::Device device(spec);
  InferenceSession session(g, sequential_schedule(g), device);
  session.initialize();
  const double first = session.run(4).latency_seconds;
  const double second = session.run(4).latency_seconds;
  const double third = session.run(4).latency_seconds;
  // Latencies are differences of growing absolute virtual timestamps, so
  // agreement is up to timestamp rounding (last few ulps), not bit-exact.
  EXPECT_NEAR(first, second, 1e-12);
  EXPECT_NEAR(second, third, 1e-12);
}

TEST(Executor, OptimizedBeatsSequentialAtBatchOne) {
  // The Table-2 headline: IOS reduces single-image latency.
  const auto spec = simgpu::a5500_spec();
  for (const auto& config : detect::table1_models()) {
    const auto g = spp_graph(config);
    simgpu::Device d1(spec);
    simgpu::Device d2(spec);
    const double seq = measure_latency(g, sequential_schedule(g), d1, 1);
    IosOptions options;
    const double opt =
        measure_latency(g, optimize_schedule(g, spec, options), d2, 1);
    EXPECT_LT(opt, seq) << config.name;
    // Latencies live in the paper's regime: fractions of a millisecond.
    EXPECT_GT(opt, 20e-6) << config.name;
    EXPECT_LT(seq, 5e-3) << config.name;
  }
}

TEST(Executor, EfficiencyImprovesWithBatch) {
  // The Figure-6 shape: latency/image falls with batch size and the gain
  // from 32 to 64 is much smaller than from 1 to 2 (diminishing returns).
  const auto spec = simgpu::a5500_spec();
  const auto g = spp_graph(detect::sppnet_candidate2());
  const Schedule opt = optimize_schedule(g, spec);
  std::vector<double> per_image;
  for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    simgpu::Device device(spec);
    per_image.push_back(measure_latency(g, opt, device, batch) /
                        static_cast<double>(batch));
  }
  for (std::size_t i = 1; i < per_image.size(); ++i) {
    EXPECT_LT(per_image[i], per_image[i - 1] * 1.02) << "step " << i;
  }
  const double gain_first = per_image[0] / per_image[1];
  const double gain_last = per_image[5] / per_image[6];
  EXPECT_GT(gain_first, gain_last);
  EXPECT_LT(gain_last, 1.15);  // near-saturation by batch 64
}

TEST(Executor, RunBeforeInitializeThrows) {
  const auto spec = simgpu::a5500_spec();
  const auto g = spp_graph(detect::original_sppnet());
  simgpu::Device device(spec);
  InferenceSession session(g, sequential_schedule(g), device);
  EXPECT_THROW(session.run(1), dcn::Error);
}

TEST(Executor, SessionTracksWeightsInDeviceMemory) {
  const auto spec = simgpu::a5500_spec();
  const auto config = detect::sppnet_candidate2();
  const auto g = spp_graph(config);
  simgpu::Device device(spec);
  InferenceSession session(g, sequential_schedule(g), device);
  session.initialize();
  EXPECT_GE(device.memory().live_bytes(),
            4 * config.parameter_count());
  // Far below the 24 GB budget — the paper's Fig. 7 observation.
  EXPECT_LT(device.memory().live_bytes(), spec.dram_bytes / 10);
}

TEST(ScheduleCost, MatchesExecutorUpToTransfersAndSync) {
  const auto spec = simgpu::a5500_spec();
  const auto g = spp_graph(detect::original_sppnet());
  const Schedule opt = optimize_schedule(g, spec);
  const double modeled = schedule_cost(g, spec, opt, 1);
  simgpu::Device device(spec);
  const double measured = measure_latency(g, opt, device, 1);
  // Executor adds H2D/D2H copies and the final sync; it must exceed the
  // pure stage cost, but only by a bounded overhead.
  EXPECT_GT(measured, modeled);
  EXPECT_LT(measured, modeled + 500e-6);
}

}  // namespace
}  // namespace dcn::ios
