// Property tests for the blocked SGEMM against the reference kernel.
#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "core/rng.hpp"

namespace dcn {
namespace {

std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(rows * cols));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at " << i;
  }
}

// (m, n, k, trans_a, trans_b)
using GemmCase = std::tuple<int, int, int, bool, bool>;

class GemmMatchesReference : public testing::TestWithParam<GemmCase> {};

TEST_P(GemmMatchesReference, RandomInputs) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + n * 1009 + k) +
          (ta ? 7 : 0) + (tb ? 13 : 0));
  const auto a = ta ? random_matrix(k, m, rng) : random_matrix(m, k, rng);
  const auto b = tb ? random_matrix(n, k, rng) : random_matrix(k, n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c_ref = c;
  matmul(ta, tb, m, n, k, a.data(), b.data(), c.data());
  const std::int64_t lda = ta ? m : k;
  const std::int64_t ldb = tb ? k : n;
  sgemm_reference(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
                  c_ref.data(), n);
  expect_close(c, c_ref, 2e-3f * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmMatchesReference,
    testing::Values(
        GemmCase{1, 1, 1, false, false}, GemmCase{1, 8, 64, false, false},
        GemmCase{4, 8, 4, false, false}, GemmCase{5, 9, 7, false, false},
        GemmCase{64, 64, 64, false, false},
        GemmCase{65, 257, 129, false, false},
        GemmCase{128, 32, 300, false, false},
        GemmCase{3, 300, 2, false, false}, GemmCase{31, 33, 17, true, false},
        GemmCase{31, 33, 17, false, true}, GemmCase{31, 33, 17, true, true},
        GemmCase{100, 5, 7680, false, true},
        GemmCase{70, 70, 70, true, true}));

TEST(Gemm, AlphaBetaSemantics) {
  Rng rng(5);
  const int m = 17, n = 13, k = 9;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  auto c = random_matrix(m, n, rng);
  auto c_ref = c;
  sgemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f, c.data(),
        n);
  sgemm_reference(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f,
                  c_ref.data(), n);
  expect_close(c, c_ref, 1e-2f);
}

TEST(Gemm, AlphaScalingAcrossMultiplePackedPanels) {
  // m and k exceed the 64x256 blocking, and m % 4 != 0 leaves a zero-padded
  // tail in the packed panel. Folding alpha into pack_a must scale exactly
  // the packed extent of every panel — this shape covers edge panels in
  // both dimensions across repacks.
  Rng rng(12);
  const int m = 70, n = 33, k = 300;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  auto c = random_matrix(m, n, rng);
  auto c_ref = c;
  sgemm(false, false, m, n, k, 2.5f, a.data(), k, b.data(), n, 0.5f, c.data(),
        n);
  sgemm_reference(false, false, m, n, k, 2.5f, a.data(), k, b.data(), n, 0.5f,
                  c_ref.data(), n);
  expect_close(c, c_ref, 2e-3f * static_cast<float>(k));
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Rng rng(6);
  const int m = 8, n = 8, k = 8;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c(64, std::numeric_limits<float>::quiet_NaN());
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
        n);
  for (float v : c) EXPECT_FALSE(std::isnan(v));
}

TEST(Gemm, KZeroScalesOnly) {
  std::vector<float> c{1.0f, 2.0f, 3.0f, 4.0f};
  sgemm(false, false, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 3.0f, c.data(),
        2);
  EXPECT_EQ(c[0], 3.0f);
  EXPECT_EQ(c[3], 12.0f);
}

TEST(Gemm, AlphaZeroLeavesBetaC) {
  Rng rng(8);
  const auto a = random_matrix(4, 4, rng);
  const auto b = random_matrix(4, 4, rng);
  std::vector<float> c(16, 2.0f);
  sgemm(false, false, 4, 4, 4, 0.0f, a.data(), 4, b.data(), 4, 1.0f, c.data(),
        4);
  for (float v : c) EXPECT_EQ(v, 2.0f);
}

TEST(Gemm, LeadingDimensionLargerThanWidth) {
  // C is a 2x2 view inside a 2x4 buffer.
  Rng rng(9);
  const auto a = random_matrix(2, 3, rng);
  const auto b = random_matrix(3, 2, rng);
  std::vector<float> c(8, -1.0f);
  sgemm(false, false, 2, 2, 3, 1.0f, a.data(), 3, b.data(), 2, 0.0f, c.data(),
        4);
  // Untouched tail columns retain the sentinel.
  EXPECT_EQ(c[2], -1.0f);
  EXPECT_EQ(c[3], -1.0f);
  EXPECT_EQ(c[6], -1.0f);
  std::vector<float> dense(4, 0.0f);
  sgemm_reference(false, false, 2, 2, 3, 1.0f, a.data(), 3, b.data(), 2, 0.0f,
                  dense.data(), 2);
  EXPECT_NEAR(c[0], dense[0], 1e-4f);
  EXPECT_NEAR(c[1], dense[1], 1e-4f);
  EXPECT_NEAR(c[4], dense[2], 1e-4f);
  EXPECT_NEAR(c[5], dense[3], 1e-4f);
}

TEST(Gemm, EmptyOutputIsNoop) {
  sgemm(false, false, 0, 5, 3, 1.0f, nullptr, 3, nullptr, 5, 0.0f, nullptr,
        5);
  SUCCEED();
}

}  // namespace
}  // namespace dcn
