// Property tests for the parallel blocked SGEMM against the reference
// kernel: transpose combos, odd shapes, alpha/beta semantics, fused
// epilogues, and bit-identical results across thread counts.
#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include "core/parallel.hpp"
#include "core/rng.hpp"

namespace dcn {
namespace {

// Restores the process-wide thread setting when a test body returns.
struct ThreadGuard {
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(rows * cols));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at " << i;
  }
}

// (m, n, k, trans_a, trans_b)
using GemmCase = std::tuple<int, int, int, bool, bool>;

class GemmMatchesReference : public testing::TestWithParam<GemmCase> {};

TEST_P(GemmMatchesReference, RandomInputs) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + n * 1009 + k) +
          (ta ? 7 : 0) + (tb ? 13 : 0));
  const auto a = ta ? random_matrix(k, m, rng) : random_matrix(m, k, rng);
  const auto b = tb ? random_matrix(n, k, rng) : random_matrix(k, n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c_ref = c;
  matmul(ta, tb, m, n, k, a.data(), b.data(), c.data());
  const std::int64_t lda = ta ? m : k;
  const std::int64_t ldb = tb ? k : n;
  sgemm_reference(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
                  c_ref.data(), n);
  expect_close(c, c_ref, 2e-3f * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmMatchesReference,
    testing::Values(
        GemmCase{1, 1, 1, false, false}, GemmCase{1, 8, 64, false, false},
        GemmCase{4, 8, 4, false, false}, GemmCase{5, 9, 7, false, false},
        GemmCase{64, 64, 64, false, false},
        GemmCase{65, 257, 129, false, false},
        GemmCase{128, 32, 300, false, false},
        GemmCase{3, 300, 2, false, false}, GemmCase{31, 33, 17, true, false},
        GemmCase{31, 33, 17, false, true}, GemmCase{31, 33, 17, true, true},
        GemmCase{100, 5, 7680, false, true},
        GemmCase{70, 70, 70, true, true}));

// --- Full engine sweep: trans x alpha/beta x epilogue x threads ----------

enum class Epi { kNone, kRowBias, kColBias, kRowBiasRelu, kColBiasRelu };

// (m, n, k, trans_a, trans_b, alpha, beta, epilogue, threads)
using SweepCase =
    std::tuple<int, int, int, bool, bool, float, float, Epi, int>;

class GemmSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(GemmSweep, MatchesReferencePlusEpilogue) {
  const auto [m, n, k, ta, tb, alpha, beta, epi, threads] = GetParam();
  ThreadGuard guard(threads);
  Rng rng(static_cast<std::uint64_t>(m * 7919 + n * 104729 + k * 31 +
                                     static_cast<int>(epi) * 5 + threads) +
          (ta ? 17 : 0) + (tb ? 29 : 0));
  const auto a = ta ? random_matrix(k, m, rng) : random_matrix(m, k, rng);
  const auto b = tb ? random_matrix(n, k, rng) : random_matrix(k, n, rng);
  const auto bias = random_matrix(1, epi == Epi::kRowBias ||
                                             epi == Epi::kRowBiasRelu
                                         ? m
                                         : n,
                                  rng);
  auto c = random_matrix(m, n, rng);
  auto c_ref = c;

  GemmEpilogue ep;
  if (epi == Epi::kRowBias || epi == Epi::kRowBiasRelu) {
    ep.row_bias = bias.data();
  } else if (epi == Epi::kColBias || epi == Epi::kColBiasRelu) {
    ep.col_bias = bias.data();
  }
  ep.relu = epi == Epi::kRowBiasRelu || epi == Epi::kColBiasRelu;

  const std::int64_t lda = ta ? m : k;
  const std::int64_t ldb = tb ? k : n;
  sgemm_ex(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
           c.data(), n, ep);
  sgemm_reference(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
                  c_ref.data(), n);
  // Apply the epilogue to the reference result by hand.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float& v = c_ref[static_cast<std::size_t>(i) * n + j];
      if (ep.row_bias) v += ep.row_bias[i];
      if (ep.col_bias) v += ep.col_bias[j];
      if (ep.relu && v < 0.0f) v = 0.0f;
    }
  }
  expect_close(c, c_ref, 2e-3f * static_cast<float>(std::max(k, 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmSweep,
    testing::Combine(testing::Values(5, 65),         // m
                     testing::Values(9, 257),        // n
                     testing::Values(7, 129),        // k
                     testing::Bool(),                // trans_a
                     testing::Bool(),                // trans_b
                     testing::Values(1.0f, 0.5f),    // alpha
                     testing::Values(0.0f, 2.0f),    // beta
                     testing::Values(Epi::kNone, Epi::kRowBias,
                                     Epi::kColBias, Epi::kRowBiasRelu,
                                     Epi::kColBiasRelu),
                     testing::Values(1, 4)));        // threads

TEST(Gemm, BitIdenticalAcrossThreadCounts) {
  // The acceptance contract: the engine's decomposition is invariant in
  // the thread count, so outputs match bit for bit, not just to tolerance.
  Rng rng(21);
  const int m = 131, n = 263, k = 517;  // odd everything, multiple K blocks
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  const auto bias = random_matrix(1, m, rng);
  GemmEpilogue ep;
  ep.row_bias = bias.data();
  ep.relu = true;
  std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> c5 = c1;
  {
    ThreadGuard guard(1);
    sgemm_ex(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
             c1.data(), n, ep);
  }
  {
    ThreadGuard guard(5);
    sgemm_ex(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
             c5.data(), n, ep);
  }
  EXPECT_EQ(0, std::memcmp(c1.data(), c5.data(), c1.size() * sizeof(float)));
}

TEST(Gemm, ScalarBaselineMatchesReference) {
  // The frozen pre-rewrite kernel stays a valid GEMM (it anchors the
  // benchmark's speedup ratio).
  Rng rng(31);
  const int m = 70, n = 65, k = 300;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  auto c = random_matrix(m, n, rng);
  auto c_ref = c;
  sgemm_blocked_scalar(false, false, m, n, k, 1.5f, a.data(), k, b.data(), n,
                       0.5f, c.data(), n);
  sgemm_reference(false, false, m, n, k, 1.5f, a.data(), k, b.data(), n, 0.5f,
                  c_ref.data(), n);
  expect_close(c, c_ref, 2e-3f * static_cast<float>(k));
}

TEST(Gemm, EpilogueAppliesOnDegenerateKZero) {
  // k == 0 (and alpha == 0) skip the accumulation entirely; the epilogue
  // must still run exactly once over beta * C.
  std::vector<float> c{1.0f, -2.0f, 3.0f, -4.0f};
  const std::vector<float> bias{10.0f, -10.0f};
  GemmEpilogue ep;
  ep.col_bias = bias.data();
  ep.relu = true;
  sgemm_ex(false, false, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 1.0f,
           c.data(), 2, ep);
  EXPECT_EQ(c[0], 11.0f);  // 1 + 10
  EXPECT_EQ(c[1], 0.0f);   // relu(-2 - 10)
  EXPECT_EQ(c[2], 13.0f);  // 3 + 10
  EXPECT_EQ(c[3], 0.0f);   // relu(-4 - 10)
}

TEST(Gemm, EpilogueWithBetaZeroIgnoresGarbageC) {
  Rng rng(41);
  const int m = 8, n = 8, k = 8;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  const auto bias = random_matrix(1, m, rng);
  std::vector<float> c(64, std::numeric_limits<float>::quiet_NaN());
  GemmEpilogue ep;
  ep.row_bias = bias.data();
  sgemm_ex(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
           c.data(), n, ep);
  for (float v : c) EXPECT_FALSE(std::isnan(v));
}

TEST(Gemm, AlphaBetaSemantics) {
  Rng rng(5);
  const int m = 17, n = 13, k = 9;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  auto c = random_matrix(m, n, rng);
  auto c_ref = c;
  sgemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f, c.data(),
        n);
  sgemm_reference(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f,
                  c_ref.data(), n);
  expect_close(c, c_ref, 1e-2f);
}

TEST(Gemm, AlphaScalingAcrossMultiplePackedPanels) {
  // m and k exceed the 64x256 blocking, and m % 4 != 0 leaves a zero-padded
  // tail in the packed panel. Folding alpha into pack_a must scale exactly
  // the packed extent of every panel — this shape covers edge panels in
  // both dimensions across repacks.
  Rng rng(12);
  const int m = 70, n = 33, k = 300;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  auto c = random_matrix(m, n, rng);
  auto c_ref = c;
  sgemm(false, false, m, n, k, 2.5f, a.data(), k, b.data(), n, 0.5f, c.data(),
        n);
  sgemm_reference(false, false, m, n, k, 2.5f, a.data(), k, b.data(), n, 0.5f,
                  c_ref.data(), n);
  expect_close(c, c_ref, 2e-3f * static_cast<float>(k));
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Rng rng(6);
  const int m = 8, n = 8, k = 8;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c(64, std::numeric_limits<float>::quiet_NaN());
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
        n);
  for (float v : c) EXPECT_FALSE(std::isnan(v));
}

TEST(Gemm, KZeroScalesOnly) {
  std::vector<float> c{1.0f, 2.0f, 3.0f, 4.0f};
  sgemm(false, false, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 3.0f, c.data(),
        2);
  EXPECT_EQ(c[0], 3.0f);
  EXPECT_EQ(c[3], 12.0f);
}

TEST(Gemm, AlphaZeroLeavesBetaC) {
  Rng rng(8);
  const auto a = random_matrix(4, 4, rng);
  const auto b = random_matrix(4, 4, rng);
  std::vector<float> c(16, 2.0f);
  sgemm(false, false, 4, 4, 4, 0.0f, a.data(), 4, b.data(), 4, 1.0f, c.data(),
        4);
  for (float v : c) EXPECT_EQ(v, 2.0f);
}

TEST(Gemm, LeadingDimensionLargerThanWidth) {
  // C is a 2x2 view inside a 2x4 buffer.
  Rng rng(9);
  const auto a = random_matrix(2, 3, rng);
  const auto b = random_matrix(3, 2, rng);
  std::vector<float> c(8, -1.0f);
  sgemm(false, false, 2, 2, 3, 1.0f, a.data(), 3, b.data(), 2, 0.0f, c.data(),
        4);
  // Untouched tail columns retain the sentinel.
  EXPECT_EQ(c[2], -1.0f);
  EXPECT_EQ(c[3], -1.0f);
  EXPECT_EQ(c[6], -1.0f);
  std::vector<float> dense(4, 0.0f);
  sgemm_reference(false, false, 2, 2, 3, 1.0f, a.data(), 3, b.data(), 2, 0.0f,
                  dense.data(), 2);
  EXPECT_NEAR(c[0], dense[0], 1e-4f);
  EXPECT_NEAR(c[1], dense[1], 1e-4f);
  EXPECT_NEAR(c[4], dense[2], 1e-4f);
  EXPECT_NEAR(c[5], dense[3], 1e-4f);
}

TEST(Gemm, EmptyOutputIsNoop) {
  sgemm(false, false, 0, 5, 3, 1.0f, nullptr, 3, nullptr, 5, 0.0f, nullptr,
        5);
  SUCCEED();
}

}  // namespace
}  // namespace dcn
