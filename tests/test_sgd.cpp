// Tests for the SGD optimizer (momentum, weight decay, clipping).
#include "nn/sgd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace dcn {
namespace {

struct Param {
  Tensor value;
  Tensor grad;
  Param(float v, float g) : value(Shape{1}, v), grad(Shape{1}, g) {}
  ParamRef ref() { return {"p", &value, &grad}; }
};

TEST(Sgd, VanillaStep) {
  Param p(1.0f, 0.5f);
  SgdConfig config;
  config.learning_rate = 0.1;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  Sgd opt({p.ref()}, config);
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-7f);
}

TEST(Sgd, WeightDecayAddsToGradient) {
  Param p(2.0f, 0.0f);
  SgdConfig config;
  config.learning_rate = 0.1;
  config.momentum = 0.0;
  config.weight_decay = 0.5;
  Sgd opt({p.ref()}, config);
  opt.step();
  // effective grad = 0 + 0.5 * 2 = 1; p -= 0.1 * 1
  EXPECT_NEAR(p.value[0], 1.9f, 1e-7f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p(0.0f, 1.0f);
  SgdConfig config;
  config.learning_rate = 1.0;
  config.momentum = 0.5;
  config.weight_decay = 0.0;
  Sgd opt({p.ref()}, config);
  opt.step();  // v = 1,   p = -1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-7f);
  opt.step();  // v = 1.5, p = -2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-7f);
  opt.step();  // v = 1.75, p = -4.25
  EXPECT_NEAR(p.value[0], -4.25f, 1e-7f);
}

TEST(Sgd, PaperDefaults) {
  Param p(0.0f, 0.0f);
  Sgd opt({p.ref()}, SgdConfig{});
  EXPECT_DOUBLE_EQ(opt.config().learning_rate, 0.005);
  EXPECT_DOUBLE_EQ(opt.config().momentum, 0.9);
  EXPECT_DOUBLE_EQ(opt.config().weight_decay, 0.0005);
}

TEST(Sgd, GradNorm) {
  Param a(0.0f, 3.0f);
  Param b(0.0f, 4.0f);
  Sgd opt({a.ref(), b.ref()}, SgdConfig{});
  EXPECT_NEAR(opt.grad_norm(), 5.0, 1e-6);
}

TEST(Sgd, ClipNormRescales) {
  Param p(0.0f, 10.0f);
  SgdConfig config;
  config.learning_rate = 1.0;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  config.clip_norm = 1.0;
  Sgd opt({p.ref()}, config);
  opt.step();
  // grad clipped from 10 to 1.
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6f);
}

TEST(Sgd, ClipNormInactiveBelowThreshold) {
  Param p(0.0f, 0.5f);
  SgdConfig config;
  config.learning_rate = 1.0;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  config.clip_norm = 1.0;
  Sgd opt({p.ref()}, config);
  opt.step();
  EXPECT_NEAR(p.value[0], -0.5f, 1e-7f);
}

TEST(Sgd, ZeroGradClears) {
  Param p(0.0f, 7.0f);
  Sgd opt({p.ref()}, SgdConfig{});
  opt.zero_grad();
  EXPECT_EQ(p.grad[0], 0.0f);
}

TEST(Sgd, RejectsBadConfig) {
  Param p(0.0f, 0.0f);
  SgdConfig config;
  config.learning_rate = 0.0;
  EXPECT_THROW(Sgd({p.ref()}, config), Error);
  config.learning_rate = 0.1;
  config.momentum = 1.0;
  EXPECT_THROW(Sgd({p.ref()}, config), Error);
}

TEST(Sgd, RejectsMismatchedGradShape) {
  Tensor value(Shape{2});
  Tensor grad(Shape{3});
  EXPECT_THROW(Sgd({{"p", &value, &grad}}, SgdConfig{}), Error);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2 with grad 2(x - 3).
  Param p(0.0f, 0.0f);
  SgdConfig config;
  config.learning_rate = 0.1;
  config.momentum = 0.9;
  config.weight_decay = 0.0;
  Sgd opt({p.ref()}, config);
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2f);
}

}  // namespace
}  // namespace dcn
