// Tests for NAS: search space, strategies, runner, constrained selection.
#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "nas/runner.hpp"
#include "nas/selection.hpp"
#include "nas/strategy.hpp"

namespace dcn::nas {
namespace {

SearchSpace small_space() {
  SearchSpace space;
  space.conv1_kernels = {3, 5};
  space.spp_first_levels = {2, 4};
  space.fc_widths = {64, 128};
  space.num_fc_layers = 1;
  return space;
}

TEST(SearchSpace, SizeAndEnumerationAgree) {
  const SearchSpace paper;  // defaults = the paper's §4.2 space
  EXPECT_EQ(paper.size(), 5 * 5 * 7);
  EXPECT_EQ(static_cast<std::int64_t>(paper.enumerate().size()),
            paper.size());
  const SearchSpace space = small_space();
  EXPECT_EQ(space.size(), 8);
  EXPECT_EQ(space.enumerate().size(), 8u);
}

TEST(SearchSpace, TwoFcLayersMultiplyCardinality) {
  SearchSpace space = small_space();
  space.num_fc_layers = 2;
  EXPECT_EQ(space.size(), 2 * 2 * 4);
  const auto points = space.enumerate();
  EXPECT_EQ(points.size(), 16u);
  for (const SearchPoint& p : points) {
    EXPECT_EQ(p.fc_sizes.size(), 2u);
    EXPECT_TRUE(space.contains(p));
  }
}

TEST(SearchSpace, SampleStaysInSpace) {
  const SearchSpace space = small_space();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(space.contains(space.sample(rng)));
  }
}

TEST(SearchSpace, ContainsRejectsForeignPoints) {
  const SearchSpace space = small_space();
  SearchPoint p;
  p.conv1_kernel = 7;  // not in {3, 5}
  p.spp_first_level = 2;
  p.fc_sizes = {64};
  EXPECT_FALSE(space.contains(p));
  p.conv1_kernel = 3;
  p.fc_sizes = {64, 128};  // wrong layer count
  EXPECT_FALSE(space.contains(p));
}

TEST(Materialize, ProducesPaperTrunkAndSppLevels) {
  SearchPoint p;
  p.conv1_kernel = 5;
  p.spp_first_level = 5;
  p.fc_sizes = {4096};
  const detect::SppNetConfig config = materialize(p);
  EXPECT_EQ(config.trunk[0].conv.kernel, 5);
  EXPECT_EQ(config.trunk[0].conv.filters, 64);
  EXPECT_EQ(config.spp_levels, (std::vector<std::int64_t>{5, 2, 1}));
  EXPECT_EQ(config.fc_sizes, (std::vector<std::int64_t>{4096}));
  // conv1_kernel=3, spp=5, fc=4096 reproduces SPP-Net #2's notation.
  SearchPoint p2;
  p2.conv1_kernel = 3;
  p2.spp_first_level = 5;
  p2.fc_sizes = {4096};
  EXPECT_EQ(materialize(p2).to_notation(),
            detect::sppnet_candidate2().to_notation());
}

TEST(RandomStrategy, NoRepeatsUntilExhaustion) {
  RandomSearchStrategy strategy(small_space(), 7);
  std::set<std::string> seen;
  for (int i = 0; i < 8; ++i) {
    const auto point = strategy.next();
    ASSERT_TRUE(point.has_value()) << "exhausted early at " << i;
    EXPECT_TRUE(seen.insert(point->to_string()).second)
        << "repeat: " << point->to_string();
  }
  EXPECT_FALSE(strategy.next().has_value());
}

TEST(RandomStrategy, DeterministicGivenSeed) {
  RandomSearchStrategy a(small_space(), 11);
  RandomSearchStrategy b(small_space(), 11);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next()->to_string(), b.next()->to_string());
  }
}

TEST(GridStrategy, CoversSpaceInOrder) {
  GridSearchStrategy strategy(small_space());
  std::set<std::string> seen;
  for (int i = 0; i < 8; ++i) {
    const auto point = strategy.next();
    ASSERT_TRUE(point.has_value());
    seen.insert(point->to_string());
  }
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_FALSE(strategy.next().has_value());
}

TEST(TrialDatabase, RankingAndCsv) {
  TrialDatabase db;
  for (int i = 0; i < 3; ++i) {
    Trial t;
    t.index = i;
    t.point.conv1_kernel = 3;
    t.point.spp_first_level = i + 1;
    t.point.fc_sizes = {128};
    t.metrics.average_precision = 0.90 + 0.02 * i;
    t.metrics.throughput = 3000.0 - 500.0 * i;
    db.add(t);
  }
  EXPECT_EQ(db.best_by_accuracy()->index, 2);
  EXPECT_EQ(db.best_by_throughput()->index, 0);
  const std::string csv = db.to_csv();
  EXPECT_NE(csv.find("average_precision"), std::string::npos);
  EXPECT_NE(csv.find("0.9400"), std::string::npos);
  EXPECT_THROW(db.trial(5), dcn::Error);
}

TEST(Runner, ProfilesAndEvaluatesEachTrial) {
  GridSearchStrategy strategy(small_space());
  RunnerConfig config;
  config.max_trials = 4;
  config.input_size = 32;
  config.verbose = false;
  int evaluations = 0;
  const TrialDatabase db = run_multi_trial(
      strategy,
      [&](const detect::SppNetConfig& model) {
        ++evaluations;
        // Proxy accuracy: larger models score higher.
        return 0.9 + 1e-9 * static_cast<double>(model.parameter_count());
      },
      config);
  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(evaluations, 4);
  for (const Trial& t : db.trials()) {
    EXPECT_GT(t.metrics.optimized_latency, 0.0);
    EXPECT_LE(t.metrics.optimized_latency, t.metrics.sequential_latency);
    EXPECT_GT(t.metrics.throughput, 0.0);
    EXPECT_GT(t.metrics.parameter_count, 0);
  }
}

TEST(Runner, StopsWhenSpaceExhausted) {
  GridSearchStrategy strategy(small_space());
  RunnerConfig config;
  config.max_trials = 100;  // more than the 8-point space
  config.input_size = 32;
  config.verbose = false;
  const TrialDatabase db = run_multi_trial(
      strategy, [](const detect::SppNetConfig&) { return 0.5; }, config);
  EXPECT_EQ(db.size(), 8u);
}

TrialDatabase synthetic_db() {
  TrialDatabase db;
  const double ap[4] = {0.98, 0.96, 0.93, 0.90};
  const double tput[4] = {1000.0, 2500.0, 4000.0, 3000.0};
  for (int i = 0; i < 4; ++i) {
    Trial t;
    t.index = i;
    t.point.fc_sizes = {128};
    t.metrics.average_precision = ap[i];
    t.metrics.throughput = tput[i];
    db.add(t);
  }
  return db;
}

TEST(Selection, ConstrainedPicksMostEfficientAboveThreshold) {
  const TrialDatabase db = synthetic_db();
  // Threshold 0.95: candidates {0, 1}; pick the faster one (#1).
  const auto pick = select_constrained(db, 0.95);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->index, 1);
  // Threshold 0.92: candidate #2 has the best throughput overall.
  EXPECT_EQ(select_constrained(db, 0.92)->index, 2);
  // Impossible threshold.
  EXPECT_FALSE(select_constrained(db, 0.99).has_value());
}

TEST(Selection, ConstraintIsStrict) {
  const TrialDatabase db = synthetic_db();
  // a(n) > A is strict: threshold exactly 0.98 excludes trial 0.
  EXPECT_FALSE(select_constrained(db, 0.98).has_value());
}

TEST(Selection, ParetoFrontExcludesDominated) {
  const TrialDatabase db = synthetic_db();
  const auto front = pareto_front(db);
  // Trial 3 (0.90 AP, 3000/s) is dominated by trial 2 (0.93, 4000).
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].index, 0);  // sorted by descending AP
  EXPECT_EQ(front[1].index, 1);
  EXPECT_EQ(front[2].index, 2);
}

}  // namespace
}  // namespace dcn::nas
