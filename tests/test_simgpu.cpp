// Tests for the simulated GPU: cost model, memory tracker, device timeline.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "profiler/recorder.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"
#include "simgpu/memory.hpp"

namespace dcn::simgpu {
namespace {

KernelDesc conv_kernel() {
  KernelDesc k;
  k.name = "conv";
  k.category = profiler::KernelCategory::kConv;
  k.flops_per_sample = 4e8;
  k.activation_bytes_per_sample = 4e6;
  k.weight_bytes = 3e5;
  k.threads_per_sample = 1e5;
  return k;
}

KernelDesc fc_kernel() {
  KernelDesc k;
  k.name = "fc";
  k.category = profiler::KernelCategory::kMatMul;
  k.flops_per_sample = 1.6e7;
  k.activation_bytes_per_sample = 4e4;
  k.weight_bytes = 1.3e8;  // weight-read dominated
  k.threads_per_sample = 1024;
  return k;
}

KernelDesc tiny_kernel() {
  KernelDesc k;
  k.name = "tiny";
  k.category = profiler::KernelCategory::kPooling;
  k.flops_per_sample = 1e3;
  k.activation_bytes_per_sample = 1e3;
  k.threads_per_sample = 256;
  return k;
}

TEST(CostModel, SoloCoversLaunchAndFloor) {
  const DeviceSpec spec = a5500_spec();
  const KernelCost cost = kernel_cost(spec, tiny_kernel(), 1);
  EXPECT_GE(cost.solo_seconds, spec.kernel_launch_gpu + spec.min_kernel_time);
  EXPECT_GT(cost.occupancy, 0.0);
  EXPECT_LE(cost.occupancy, 1.0);
}

TEST(CostModel, SaturatedNeverExceedsSolo) {
  const DeviceSpec spec = a5500_spec();
  for (const KernelDesc& k : {conv_kernel(), fc_kernel(), tiny_kernel()}) {
    for (std::int64_t batch : {1, 4, 16, 64}) {
      const KernelCost cost = kernel_cost(spec, k, batch);
      EXPECT_LE(cost.saturated_seconds, cost.solo_seconds)
          << k.name << " batch " << batch;
    }
  }
}

TEST(CostModel, LatencyMonotoneInBatch) {
  const DeviceSpec spec = a5500_spec();
  double prev = 0.0;
  for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    const double t = kernel_cost(spec, conv_kernel(), batch).solo_seconds;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CostModel, PerImageLatencyImprovesWithBatchThenSaturates) {
  // The Figure-6 shape: latency/batch falls with batch, with diminishing
  // returns once the device saturates.
  const DeviceSpec spec = a5500_spec();
  const double eff1 = kernel_cost(spec, conv_kernel(), 1).solo_seconds;
  const double eff8 = kernel_cost(spec, conv_kernel(), 8).solo_seconds / 8;
  const double eff64 =
      kernel_cost(spec, conv_kernel(), 64).solo_seconds / 64;
  EXPECT_LT(eff8, eff1);
  EXPECT_LE(eff64, eff8 * 1.05);
  // Relative gain shrinks (diminishing returns).
  EXPECT_GT(eff1 / eff8, eff8 / eff64);
}

TEST(CostModel, FcIsWeightBoundAndBatchInsensitive) {
  // The Table-3 mechanism: FC time is dominated by reading weights, so its
  // duration barely grows with batch while conv scales ~linearly.
  const DeviceSpec spec = a5500_spec();
  const double fc1 = kernel_cost(spec, fc_kernel(), 1).solo_seconds;
  const double fc64 = kernel_cost(spec, fc_kernel(), 64).solo_seconds;
  EXPECT_LT(fc64 / fc1, 2.0);
  const double conv1 = kernel_cost(spec, conv_kernel(), 1).solo_seconds;
  const double conv64 = kernel_cost(spec, conv_kernel(), 64).solo_seconds;
  EXPECT_GT(conv64 / conv1, 10.0);
}

TEST(CostModel, StageEnvelopeProperties) {
  const DeviceSpec spec = a5500_spec();
  const std::vector<KernelDesc> group_a{conv_kernel()};
  const std::vector<KernelDesc> group_b{tiny_kernel()};
  const double together = stage_seconds(spec, {group_a, group_b}, 8);
  const double a_alone = stage_seconds(spec, {group_a}, 8);
  const double b_alone = stage_seconds(spec, {group_b}, 8);
  // A stage can never beat its slowest group, nor exceed serial execution.
  EXPECT_GE(together, std::max(a_alone, b_alone));
  EXPECT_LE(together, a_alone + b_alone + 1e-12);
}

TEST(CostModel, TinyParallelGroupsOverlapAlmostPerfectly) {
  const DeviceSpec spec = a5500_spec();
  std::vector<std::vector<KernelDesc>> groups;
  for (int i = 0; i < 4; ++i) groups.push_back({tiny_kernel()});
  const double together = stage_seconds(spec, groups, 1);
  const double one = stage_seconds(spec, {{tiny_kernel()}}, 1);
  // Four tiny kernels on separate streams cost about one kernel, not four.
  EXPECT_LT(together, 1.5 * one);
}

TEST(CostModel, SaturatingGroupsSerialize) {
  DeviceSpec spec = tiny_spec();
  KernelDesc big = conv_kernel();
  big.threads_per_sample = 1e7;  // saturates the tiny device
  const double together = stage_seconds(spec, {{big}, {big}}, 4);
  const double one = stage_seconds(spec, {{big}}, 4);
  EXPECT_GT(together, 1.8 * one);
}

TEST(CostModel, RejectsNonpositiveBatch) {
  EXPECT_THROW(kernel_cost(a5500_spec(), conv_kernel(), 0), dcn::Error);
}

TEST(Kernels, CategorizeMatchesTable3Classes) {
  EXPECT_EQ(categorize(graph::OpKind::kLinear),
            profiler::KernelCategory::kMatMul);
  EXPECT_EQ(categorize(graph::OpKind::kConv2d),
            profiler::KernelCategory::kConv);
  EXPECT_EQ(categorize(graph::OpKind::kMaxPool),
            profiler::KernelCategory::kPooling);
  EXPECT_EQ(categorize(graph::OpKind::kAdaptivePool),
            profiler::KernelCategory::kPooling);
  EXPECT_EQ(categorize(graph::OpKind::kReLU),
            profiler::KernelCategory::kElementwise);
  EXPECT_FALSE(is_device_op(graph::OpKind::kInput));
  EXPECT_TRUE(is_device_op(graph::OpKind::kConcat));
}

TEST(Kernels, TableFromSppNetGraph) {
  const graph::Graph g =
      graph::build_inference_graph(detect::original_sppnet(), 100);
  const auto table = make_kernel_table(g);
  ASSERT_EQ(table.size(), g.size());
  // conv0 descriptor: positive flops, weights, threads.
  for (const KernelDesc& k : table) {
    if (k.name == "conv0") {
      EXPECT_GT(k.flops_per_sample, 0.0);
      EXPECT_GT(k.weight_bytes, 0.0);
      EXPECT_GT(k.threads_per_sample, 0.0);
    }
    if (k.name == "input" || k.name == "output") {
      EXPECT_EQ(k.flops_per_sample, 0.0);
    }
  }
  EXPECT_NEAR(total_weight_bytes(g),
              4.0 * detect::original_sppnet().parameter_count(), 1.0);
}

TEST(Memory, TracksLivePeakAndOom) {
  MemoryTracker tracker;
  const BufferId a = tracker.allocate(100, 1000);
  const BufferId b = tracker.allocate(400, 1000);
  EXPECT_EQ(tracker.live_bytes(), 500);
  EXPECT_EQ(tracker.peak_bytes(), 500);
  tracker.free(a);
  EXPECT_EQ(tracker.live_bytes(), 400);
  EXPECT_EQ(tracker.peak_bytes(), 500);
  EXPECT_THROW(tracker.allocate(700, 1000), dcn::Error);  // OOM
  EXPECT_THROW(tracker.free(a), dcn::Error);              // double free
  tracker.free(b);
  EXPECT_EQ(tracker.live_buffers(), 0);
}

TEST(Device, TimelineAdvancesMonotonically) {
  profiler::Recorder recorder;
  Device device(a5500_spec(), &recorder);
  device.load_library(10);
  const double t0 = device.host_time();
  EXPECT_GT(t0, 0.0);
  device.malloc(1 << 20);
  device.memcpy_h2d(1 << 20);
  const double t1 = device.host_time();
  EXPECT_GT(t1, t0);
  device.run_stage({{conv_kernel()}}, 4);
  device.synchronize();
  EXPECT_GE(device.host_time(), device.device_ready() - 1e-12);
}

TEST(Device, LibraryLoadsOnlyOnce) {
  profiler::Recorder recorder;
  Device device(a5500_spec(), &recorder);
  device.load_library(10);
  const double t0 = device.host_time();
  device.load_library(10);
  EXPECT_EQ(device.host_time(), t0);
  std::size_t loads = 0;
  for (const auto& span : recorder.api_spans()) {
    if (span.kind == profiler::ApiKind::kLibraryLoadData) ++loads;
  }
  EXPECT_EQ(loads, 1u);
}

TEST(Device, RunStageRequiresLibrary) {
  Device device(a5500_spec());
  EXPECT_THROW(device.run_stage({{conv_kernel()}}, 1), dcn::Error);
}

TEST(Device, SynchronizeDrainsQueue) {
  Device device(a5500_spec());
  device.load_library(1);
  device.run_stage({{conv_kernel()}}, 64);
  EXPECT_LT(device.host_time(), device.device_ready());
  device.synchronize();
  EXPECT_GE(device.host_time(), device.device_ready() - 1e-12);
}

TEST(Device, MemcpyDurationScalesWithBytes) {
  Device device(a5500_spec());
  device.load_library(1);
  const double t0 = device.host_time();
  device.memcpy_h2d(1 << 20);
  const double small = device.host_time() - t0;
  const double t1 = device.host_time();
  device.memcpy_h2d(64 << 20);
  const double large = device.host_time() - t1;
  EXPECT_GT(large, small * 10);
}

TEST(Device, ResetClocksKeepsMemory) {
  Device device(a5500_spec());
  device.load_library(1);
  device.malloc(123);
  device.reset_clocks();
  EXPECT_EQ(device.host_time(), 0.0);
  EXPECT_EQ(device.memory().live_bytes(), 123);
  // Library stays loaded: run_stage succeeds without another load.
  device.run_stage({{tiny_kernel()}}, 1);
  SUCCEED();
}

TEST(Device, RecorderCapturesKernelCategories) {
  profiler::Recorder recorder;
  Device device(a5500_spec(), &recorder);
  device.load_library(2);
  device.run_stage({{conv_kernel()}, {fc_kernel()}}, 2);
  device.synchronize();
  ASSERT_EQ(recorder.kernel_spans().size(), 2u);
  EXPECT_EQ(recorder.kernel_spans()[0].batch, 2);
}

}  // namespace
}  // namespace dcn::simgpu
