// Tests for the graph optimizer pass framework: registry and pipeline
// mechanics (idempotence, DCE, canonicalization, opt-out flags), the
// launch-reduction acceptance floor, IOS scheduling over the fused graph,
// and the semantics-preservation proof — fused vs unfused inference must be
// bit-identical at fp32 and int8, at every thread count, because fused
// nodes run through the tensor engine's existing GEMM/qgemm epilogues.
#include "graph/passes.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "detect/quantized_sppnet.hpp"
#include "detect/sppnet.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "graph/numeric.hpp"
#include "ios/executor.hpp"
#include "ios/schedule.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"
#include "simgpu/spec.hpp"

namespace dcn::graph {
namespace {

constexpr std::int64_t kInput = 40;

std::size_t count_kind(const Graph& g, OpKind kind) {
  std::size_t n = 0;
  for (const OpNode& node : g.nodes()) {
    if (node.kind == kind) ++n;
  }
  return n;
}

Tensor random_batch(std::int64_t n, std::int64_t channels, std::int64_t size,
                    std::uint64_t seed) {
  Tensor batch(Shape{{n, channels, size, size}});
  Rng rng(seed);
  batch.fill_normal(rng, 0.0f, 1.0f);
  return batch;
}

// Restores the global thread override even when an assertion fails.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

TEST(PassRegistry, BuiltInsRegisteredUnknownThrows) {
  const auto names = PassRegistry::instance().names();
  for (const char* expected :
       {kCanonicalizePass, kFuseConvReLUPass, kFuseLinearReLUPass,
        kConstantFoldingPass, kDeadOpEliminationPass}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_THROW(PassRegistry::instance().create("no-such-pass"), ConfigError);
}

TEST(PassManager, OptimizeIsIdempotent) {
  for (const auto& model :
       {detect::original_sppnet(), detect::sppnet_candidate2()}) {
    const Graph naive = build_inference_graph(model, 100);
    const Graph once = optimize_graph(naive);
    PassStats stats;
    const Graph twice = optimize_graph(once, {}, &stats);
    EXPECT_EQ(once.to_string(), twice.to_string()) << model.name;
    // The second run's very first sweep must already be the fixpoint.
    EXPECT_EQ(stats.iterations, 1) << model.name;
    EXPECT_EQ(stats.ops_before, stats.ops_after) << model.name;
  }
}

TEST(Passes, FusionRewritesTheSppNetFamily) {
  for (const auto& model :
       {detect::original_sppnet(), detect::sppnet_candidate1(),
        detect::sppnet_candidate2(), detect::sppnet_candidate3()}) {
    const Graph naive = build_inference_graph(model, 100);
    const Graph fused = optimize_graph(naive);
    validate_shapes(fused);

    // Every ReLU is absorbed into its producer; flattens fold away (the
    // concat and FC read element counts, not spatial metadata).
    EXPECT_EQ(count_kind(fused, OpKind::kReLU), 0u) << model.name;
    EXPECT_EQ(count_kind(fused, OpKind::kFlatten), 0u) << model.name;
    EXPECT_GT(count_kind(fused, OpKind::kFusedConvReLU), 0u) << model.name;
    EXPECT_GT(count_kind(fused, OpKind::kFusedLinearReLU), 0u) << model.name;
    // Weight binding survives: the builder's compute-op names are intact.
    bool conv0 = false, head = false;
    for (const OpNode& node : fused.nodes()) {
      conv0 |= node.name == "conv0";
      head |= node.name == "head";
    }
    EXPECT_TRUE(conv0 && head) << model.name;
    EXPECT_EQ(fused.parameter_count(), naive.parameter_count()) << model.name;

    // The PR's acceptance floor: >= 25% fewer scheduled kernel launches.
    const double reduction =
        1.0 - static_cast<double>(device_op_count(fused)) /
                  static_cast<double>(device_op_count(naive));
    EXPECT_GE(reduction, 0.25) << model.name;
  }
}

TEST(Passes, DeadOpEliminationRemovesUnreachable) {
  Graph g;
  const OpId in = g.add_op(OpKind::kInput, "in", {}, {}, TensorDesc{{8, 8, 8}});
  OpAttrs conv;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.out_channels = 8;
  const OpId a =
      g.add_op(OpKind::kConv2d, "a", conv, {in}, TensorDesc{{8, 8, 8}});
  // Dead branch: a ReLU nobody consumes and that does not reach the output.
  g.add_op(OpKind::kReLU, "dead", {}, {a}, TensorDesc{{8, 8, 8}});
  g.add_op(OpKind::kOutput, "out", {}, {a}, TensorDesc{{8, 8, 8}});

  // The conv has two consumers, so the fusion rule must not fire; DCE alone
  // removes the dead ReLU.
  const Graph optimized = optimize_graph(g);
  EXPECT_EQ(optimized.size(), 3u);
  EXPECT_EQ(count_kind(optimized, OpKind::kReLU), 0u);
  EXPECT_EQ(count_kind(optimized, OpKind::kConv2d), 1u);
}

TEST(Passes, OptOutFlagsDisableIndividualRewrites) {
  const Graph naive = build_inference_graph(detect::original_sppnet(), 100);
  OptimizeOptions no_fuse;
  no_fuse.fuse = false;
  const Graph unfused = optimize_graph(naive, no_fuse);
  EXPECT_GT(count_kind(unfused, OpKind::kReLU), 0u);
  EXPECT_EQ(count_kind(unfused, OpKind::kFusedConvReLU), 0u);
  // Canonicalization still folds the flattens.
  EXPECT_EQ(count_kind(unfused, OpKind::kFlatten), 0u);

  OptimizeOptions nothing;
  nothing.canonicalize = nothing.fuse = false;
  nothing.fold_constants = nothing.eliminate_dead = false;
  EXPECT_EQ(optimize_graph(naive, nothing).to_string(), naive.to_string());
}

TEST(Ios, DpSchedulesTheFusedGraphDirectly) {
  const auto spec = simgpu::a5500_spec();
  const Graph naive =
      build_inference_graph(detect::sppnet_candidate2(), 100);
  const Graph fused = optimize_graph(naive);

  const ios::Schedule schedule = ios::optimize_schedule(fused, spec);
  ios::validate_schedule(fused, schedule);  // covers every fused device op
  EXPECT_EQ(schedule.num_kernels(), device_op_count(fused));

  // The fused schedule executes end-to-end and beats the naive one — fewer
  // launches and no intermediate activation round-trips.
  simgpu::Device naive_device(spec);
  simgpu::Device fused_device(spec);
  const double naive_latency = ios::measure_latency(
      naive, ios::optimize_schedule(naive, spec), naive_device, 1);
  const double fused_latency =
      ios::measure_latency(fused, schedule, fused_device, 1);
  EXPECT_LT(fused_latency, naive_latency);
}

TEST(Numerics, FusedVsUnfusedBitIdenticalFp32AcrossThreadCounts) {
  Rng rng(7);
  detect::SppNet net(detect::original_sppnet(), rng);
  const WeightMap weights = extract_weights(net);
  const Graph naive = build_inference_graph(detect::original_sppnet(), kInput);
  const NumericExecutor unfused(naive, weights);
  const NumericExecutor fused(optimize_graph(naive), weights);
  const Tensor x = random_batch(3, 4, kInput, 11);

  ThreadGuard guard;
  std::vector<float> reference;
  for (const int threads : {1, 2, 5}) {
    set_num_threads(threads);
    const Tensor a = unfused.forward(x);
    const Tensor b = fused.forward(x);
    ASSERT_EQ(a.numel(), b.numel());
    // Bit-identical, not approximately equal: the fused epilogue computes
    // the very same max(x, 0) on the very same GEMM result.
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) * static_cast<std::size_t>(a.numel())),
              0)
        << "threads=" << threads;
    // And the engine's determinism contract holds across thread counts.
    if (reference.empty()) {
      reference.assign(a.data(), a.data() + a.numel());
    } else {
      EXPECT_EQ(std::memcmp(a.data(), reference.data(),
                            sizeof(float) * reference.size()),
                0)
          << "threads=" << threads;
    }
  }
}

TEST(Numerics, FusedVsUnfusedBitIdenticalInt8AcrossThreadCounts) {
  Rng rng(13);
  detect::SppNet net(detect::original_sppnet(), rng);
  const WeightMap weights = extract_weights(net);
  const Graph naive = build_inference_graph(detect::original_sppnet(), kInput);
  NumericExecutor unfused(naive, weights);
  NumericExecutor fused(optimize_graph(naive), weights);

  const Tensor calibration = random_batch(4, 4, kInput, 17);
  unfused.quantize(calibration);
  fused.quantize(calibration);
  EXPECT_TRUE(unfused.quantized() && fused.quantized());
  const Tensor x = random_batch(3, 4, kInput, 19);

  ThreadGuard guard;
  for (const int threads : {1, 2, 5}) {
    set_num_threads(threads);
    const Tensor a = unfused.forward_int8(x);
    const Tensor b = fused.forward_int8(x);
    ASSERT_EQ(a.numel(), b.numel());
    // Calibration observed bit-identical tensors on both twins (the
    // observation points — each conv/linear's float input — survive
    // fusion), so scales match and the qgemm epilogue's max(x, 0) equals
    // the standalone ReLU exactly.
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) * static_cast<std::size_t>(a.numel())),
              0)
        << "threads=" << threads;
  }
}

TEST(Numerics, ExecutorMatchesTheRealModels) {
  Rng rng(23);
  detect::SppNet net(detect::original_sppnet(), rng);
  net.set_training(false);
  const WeightMap weights = extract_weights(net);
  const Graph naive = build_inference_graph(detect::original_sppnet(), kInput);
  NumericExecutor executor(naive, weights);
  const Tensor x = random_batch(2, 4, kInput, 29);

  // fp32: the executor walks the same layers the module stack runs.
  const Tensor expected = net.forward(x);
  const Tensor got = executor.forward(x);
  ASSERT_EQ(got.numel(), expected.numel());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "fp32 element " << i;
  }

  // int8: same calibration batch -> same quantized deployment.
  const Tensor calibration = random_batch(4, 4, kInput, 31);
  detect::QuantizedSppNet quantized(net, calibration);
  executor.quantize(calibration);
  const Tensor q_expected = quantized.forward(x);
  const Tensor q_got = executor.forward_int8(x);
  ASSERT_EQ(q_got.numel(), q_expected.numel());
  for (std::int64_t i = 0; i < q_got.numel(); ++i) {
    EXPECT_EQ(q_got[i], q_expected[i]) << "int8 element " << i;
  }
}

TEST(Numerics, GuardsMisuse) {
  Rng rng(37);
  detect::SppNet net(detect::original_sppnet(), rng);
  const WeightMap weights = extract_weights(net);
  const Graph naive = build_inference_graph(detect::original_sppnet(), kInput);
  const NumericExecutor executor(naive, weights);
  EXPECT_THROW(executor.forward_int8(random_batch(1, 4, kInput, 41)),
               ConfigError);  // quantize() first
  WeightMap missing = weights;
  missing.erase("conv0");
  EXPECT_THROW(NumericExecutor(naive, missing), ConfigError);
}

}  // namespace
}  // namespace dcn::graph
