// Tests for the nsys-like profiler: recorder and aggregate reports.
#include <gtest/gtest.h>

#include "profiler/report.hpp"

namespace dcn::profiler {
namespace {

Recorder sample_recorder() {
  Recorder recorder;
  recorder.record_api(ApiKind::kLibraryLoadData, "module", 0.0, 8e-3);
  recorder.record_api(ApiKind::kLaunchKernel, "conv0", 8e-3, 3e-6);
  recorder.record_api(ApiKind::kLaunchKernel, "fc0", 8.01e-3, 3e-6);
  recorder.record_api(ApiKind::kDeviceSynchronize, "sync", 9e-3, 1e-3);
  recorder.record_kernel(KernelCategory::kConv, "conv0", 8.1e-3, 4e-5, 4);
  recorder.record_kernel(KernelCategory::kMatMul, "fc0", 8.2e-3, 1.6e-4, 4);
  recorder.record_kernel(KernelCategory::kPooling, "pool0", 8.3e-3, 1e-5, 4);
  recorder.record_memop(MemopKind::kH2D, "input", 1e-3, 2e-5, 163840);
  recorder.record_memop(MemopKind::kH2D, "weights", 2e-3, 6e-5, 1 << 20);
  recorder.record_memop(MemopKind::kD2H, "output", 9.5e-3, 1e-5, 80);
  return recorder;
}

TEST(ApiUsage, SharesSumToOneAndSortDescending) {
  const Recorder recorder = sample_recorder();
  const auto rows = api_usage(recorder);
  ASSERT_EQ(rows.size(), 3u);  // libload, launch (2 calls), sync
  double total_share = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    total_share += rows[i].share;
    if (i > 0) EXPECT_LE(rows[i].total_seconds, rows[i - 1].total_seconds);
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_EQ(rows.front().kind, ApiKind::kLibraryLoadData);
}

TEST(ApiUsage, CallCountsAggregated) {
  const auto rows = api_usage(sample_recorder());
  for (const ApiUsageRow& row : rows) {
    if (row.kind == ApiKind::kLaunchKernel) EXPECT_EQ(row.calls, 2);
  }
}

TEST(ApiShare, LookupSingleApi) {
  const Recorder recorder = sample_recorder();
  const double lib = api_share(recorder, ApiKind::kLibraryLoadData);
  const double sync = api_share(recorder, ApiKind::kDeviceSynchronize);
  EXPECT_GT(lib, 0.8);  // 8 ms of ~9 ms
  EXPECT_GT(sync, 0.05);
  EXPECT_EQ(api_share(recorder, ApiKind::kMemAlloc), 0.0);
}

TEST(KernelUsage, CategorySharesMatchDurations) {
  const Recorder recorder = sample_recorder();
  const auto rows = kernel_usage(recorder);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.front().category, KernelCategory::kMatMul);  // 160 us
  double total = 0.0;
  for (const auto& row : rows) total += row.share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(kernel_share(recorder, KernelCategory::kMatMul),
              1.6e-4 / (1.6e-4 + 4e-5 + 1e-5), 1e-9);
}

TEST(MemopSummary, TotalsAndMeans) {
  const Recorder recorder = sample_recorder();
  const MemopSummary all = memop_summary(recorder);
  EXPECT_EQ(all.count, 3);
  EXPECT_EQ(all.total_bytes, 163840 + (1 << 20) + 80);
  EXPECT_NEAR(all.total_seconds, 9e-5, 1e-12);
  const MemopSummary h2d = memop_summary(recorder, MemopKind::kH2D);
  EXPECT_EQ(h2d.count, 2);
  EXPECT_NEAR(h2d.mean_seconds, 4e-5, 1e-12);
  const MemopSummary dtoD =
      memop_summary(recorder, MemopKind::kDeviceToDevice);
  EXPECT_EQ(dtoD.count, 0);
  EXPECT_EQ(dtoD.mean_seconds, 0.0);
}

TEST(Recorder, DisabledDropsEverything) {
  Recorder recorder;
  recorder.set_enabled(false);
  recorder.record_api(ApiKind::kLaunchKernel, "x", 0.0, 1.0);
  recorder.record_kernel(KernelCategory::kConv, "x", 0.0, 1.0, 1);
  recorder.record_memop(MemopKind::kH2D, "x", 0.0, 1.0, 1);
  EXPECT_TRUE(recorder.api_spans().empty());
  EXPECT_TRUE(recorder.kernel_spans().empty());
  EXPECT_TRUE(recorder.memop_spans().empty());
}

TEST(Recorder, ClearResets) {
  Recorder recorder = sample_recorder();
  recorder.clear();
  EXPECT_TRUE(recorder.api_spans().empty());
  EXPECT_TRUE(api_usage(recorder).empty());
  EXPECT_EQ(memop_summary(recorder).count, 0);
}

TEST(Report, RendersAllThreeSections) {
  const std::string report = render_report(sample_recorder());
  EXPECT_NE(report.find("CUDA API Statistics"), std::string::npos);
  EXPECT_NE(report.find("CUDA Kernel Statistics"), std::string::npos);
  EXPECT_NE(report.find("CUDA Memory Operation Statistics"),
            std::string::npos);
  EXPECT_NE(report.find("cuLibraryLoadData"), std::string::npos);
  EXPECT_NE(report.find("cudaDeviceSynchronize"), std::string::npos);
  EXPECT_NE(report.find("Matrix Multiplication"), std::string::npos);
  EXPECT_NE(report.find("HtoD"), std::string::npos);
}

TEST(Names, EnumStringsAreStable) {
  EXPECT_STREQ(api_kind_name(ApiKind::kLibraryLoadData),
               "cuLibraryLoadData");
  EXPECT_STREQ(api_kind_name(ApiKind::kDeviceSynchronize),
               "cudaDeviceSynchronize");
  EXPECT_STREQ(kernel_category_name(KernelCategory::kMatMul),
               "Matrix Multiplication");
  EXPECT_STREQ(kernel_category_name(KernelCategory::kConv), "Conv");
  EXPECT_STREQ(kernel_category_name(KernelCategory::kPooling), "Pooling");
  EXPECT_STREQ(memop_kind_name(MemopKind::kH2D), "HtoD");
}

TEST(EmptyRecorder, ReportsAreWellDefined) {
  Recorder recorder;
  EXPECT_TRUE(api_usage(recorder).empty());
  EXPECT_TRUE(kernel_usage(recorder).empty());
  EXPECT_EQ(api_share(recorder, ApiKind::kLaunchKernel), 0.0);
  EXPECT_EQ(kernel_share(recorder, KernelCategory::kConv), 0.0);
  const std::string report = render_report(recorder);
  EXPECT_NE(report.find("CUDA API Statistics"), std::string::npos);
}

}  // namespace
}  // namespace dcn::profiler
