// Tests for the fleet self-healing layer: circuit breakers, health
// monitoring, chaos schedules, hedged requests, load shedding with INT8
// degradation, and the chaos acceptance scenario (crash storms + straggler
// waves + overload with zero accepted-request loss).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/retry.hpp"
#include "graph/graph.hpp"
#include "ios/scheduler.hpp"
#include "profiler/trace.hpp"
#include "serve/chaos.hpp"
#include "serve/health.hpp"
#include "serve/hedge.hpp"
#include "serve/server.hpp"
#include "serve/shed.hpp"
#include "simgpu/device.hpp"

namespace dcn::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Same small branched CNN the serving tests use: enough structure for IOS,
// fast enough that chaos scenarios stay instant.
graph::Graph branched_graph() {
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{16, 16, 16}});
  graph::OpAttrs conv;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.out_channels = 16;
  const auto trunk = g.add_op(graph::OpKind::kConv2d, "trunk", conv, {in},
                              graph::TensorDesc{{16, 16, 16}});
  std::vector<graph::OpId> outs;
  std::int64_t total = 0;
  for (int b = 0; b < 3; ++b) {
    graph::OpAttrs pool;
    pool.pool_out = b + 1;
    const auto p = g.add_op(
        graph::OpKind::kAdaptivePool, "pool" + std::to_string(b), pool,
        {trunk}, graph::TensorDesc{{16, b + 1, b + 1}});
    const auto f = g.add_op(
        graph::OpKind::kFlatten, "flat" + std::to_string(b), {}, {p},
        graph::TensorDesc{{16 * (b + 1) * (b + 1)}});
    outs.push_back(f);
    total += 16 * (b + 1) * (b + 1);
  }
  const auto concat = g.add_op(graph::OpKind::kConcat, "cat", {}, outs,
                               graph::TensorDesc{{total}});
  g.add_op(graph::OpKind::kOutput, "out", {}, {concat},
           graph::TensorDesc{{total}});
  return g;
}

ios::Schedule schedule_for(const graph::Graph& g) {
  return ios::optimize_schedule(g, simgpu::a5500_spec());
}

// A compute-bound graph for overload tests: the fleet starts warm, so the
// only way to back the queue up past the shed watermark is for bursts to
// genuinely outrun service capacity. On tiny_spec this serves a few
// hundred requests per second per replica.
graph::Graph compute_heavy_graph() {
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{64, 64, 64}});
  graph::OpAttrs conv;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.out_channels = 64;
  auto prev = in;
  for (int i = 0; i < 2; ++i) {
    prev = g.add_op(graph::OpKind::kConv2d, "conv" + std::to_string(i), conv,
                    {prev}, graph::TensorDesc{{64, 64, 64}});
  }
  graph::OpAttrs pool;
  pool.pool_out = 1;
  const auto p = g.add_op(graph::OpKind::kAdaptivePool, "pool", pool, {prev},
                          graph::TensorDesc{{64, 1, 1}});
  const auto f = g.add_op(graph::OpKind::kFlatten, "flat", {}, {p},
                          graph::TensorDesc{{64}});
  g.add_op(graph::OpKind::kOutput, "out", {}, {f}, graph::TensorDesc{{64}});
  return g;
}

double service_seconds(const graph::Graph& g, const ios::Schedule& s,
                       std::int64_t batch) {
  simgpu::Device probe(simgpu::a5500_spec());
  return ios::measure_latency(g, s, probe, batch);
}

// --- SeededBackoff clamp (satellite) ---------------------------------------

TEST(SeededBackoff, JitterIsClampedStrictlyPositiveAndCapped) {
  // Base below the floor: the clamp keeps every delay >= 1 virtual ns.
  RetryPolicy tiny;
  tiny.base_backoff = 1.0e-12;
  tiny.multiplier = 1.0;
  tiny.max_backoff = 1.0;
  tiny.jitter = 0.999;
  SeededBackoff floor(tiny, 7);
  for (int retry = 1; retry <= 50; ++retry) {
    EXPECT_GE(floor.delay(retry), kMinBackoffSeconds);
  }
  // Base at the cap: jitter never pushes a delay above max_backoff.
  RetryPolicy capped;
  capped.base_backoff = 0.1;
  capped.multiplier = 4.0;
  capped.max_backoff = 0.1;
  capped.jitter = 0.9;
  SeededBackoff cap(capped, 11);
  for (int retry = 1; retry <= 50; ++retry) {
    const double d = cap.delay(retry);
    EXPECT_GE(d, kMinBackoffSeconds);
    EXPECT_LE(d, capped.max_backoff);
  }
}

TEST(SeededBackoff, SeededDelaySequenceIsPinned) {
  // The respawn policy's delay sequence is a pure function of
  // (policy, seed, draw index): same seed replays the identical sequence,
  // reseeding re-anchors it, and jitter-free sequences are exactly the
  // exponential envelope.
  RetryPolicy policy;
  policy.base_backoff = 5.0e-3;
  policy.multiplier = 2.0;
  policy.max_backoff = 0.1;
  policy.jitter = 0.25;
  SeededBackoff a(policy, 0x5eed);
  SeededBackoff b(policy, 0x5eed);
  std::vector<double> sequence;
  for (int retry = 1; retry <= 8; ++retry) {
    const double da = a.delay(retry);
    EXPECT_DOUBLE_EQ(da, b.delay(retry));
    const double envelope = std::min(
        policy.base_backoff * std::pow(policy.multiplier, retry - 1),
        policy.max_backoff);
    EXPECT_GE(da, envelope * (1.0 - policy.jitter) - 1e-15);
    EXPECT_LE(da, std::min(envelope * (1.0 + policy.jitter),
                           policy.max_backoff));
    sequence.push_back(da);
  }
  a.reseed(0x5eed);
  for (int retry = 1; retry <= 8; ++retry) {
    EXPECT_DOUBLE_EQ(a.delay(retry),
                     sequence[static_cast<std::size_t>(retry - 1)]);
  }
  // Jitter-free: the exact default HealthPolicy respawn ladder.
  HealthPolicy health;
  SeededBackoff exact(health.respawn_backoff, 1);
  EXPECT_DOUBLE_EQ(exact.delay(1), 5.0e-3);
  EXPECT_DOUBLE_EQ(exact.delay(2), 1.0e-2);
  EXPECT_DOUBLE_EQ(exact.delay(3), 2.0e-2);
}

// --- Batcher drops expired requests (satellite) ----------------------------

TEST(DynamicBatcher, ExpiredRequestsAreDroppedAtFormation) {
  DynamicBatcher batcher({/*max_batch=*/3, /*timeout=*/1.0}, 16);
  const auto offer = [&](std::int64_t id, double deadline) {
    Request r;
    r.id = id;
    r.arrival = 0.0;
    r.deadline = deadline;
    ASSERT_TRUE(batcher.offer(r));
  };
  offer(0, 0.5);   // expired at cut time 1.0
  offer(1, kInf);  // live
  offer(2, 0.9);   // expired
  offer(3, kInf);  // live: backfills an expired slot
  offer(4, kInf);  // live: backfills the other
  const Batch b = batcher.flush(1.0);
  ASSERT_EQ(b.requests.size(), 3u);
  EXPECT_EQ(b.requests[0].id, 1);
  EXPECT_EQ(b.requests[1].id, 3);
  EXPECT_EQ(b.requests[2].id, 4);
  ASSERT_EQ(b.expired.size(), 2u);
  EXPECT_EQ(b.expired[0].id, 0);
  EXPECT_EQ(b.expired[1].id, 2);
  EXPECT_EQ(batcher.expired_drops(), 2);
  EXPECT_TRUE(batcher.queue().empty());
}

TEST(DynamicBatcher, AllExpiredBatchHasNoLiveRequests) {
  DynamicBatcher batcher({/*max_batch=*/4, /*timeout=*/0.1}, 16);
  for (std::int64_t id = 0; id < 3; ++id) {
    Request r;
    r.id = id;
    r.deadline = 0.01;
    batcher.offer(r);
  }
  const Batch b = batcher.flush(5.0);
  EXPECT_TRUE(b.requests.empty());
  EXPECT_EQ(b.expired.size(), 3u);
  EXPECT_EQ(batcher.expired_drops(), 3);
}

TEST(DynamicBatcher, DrainEmptiesQueueWithoutCountingABatch) {
  DynamicBatcher batcher({/*max_batch=*/4, /*timeout=*/0.1}, 16);
  for (std::int64_t id = 0; id < 3; ++id) {
    Request r;
    r.id = id;
    batcher.offer(r);
  }
  const auto drained = batcher.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].id, 0);
  EXPECT_EQ(batcher.batches(), 0);
  EXPECT_TRUE(batcher.queue().empty());
}

// --- Circuit breaker FSM ---------------------------------------------------

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresAndCoolsDown) {
  BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_seconds = 0.1;
  policy.half_open_successes = 2;
  CircuitBreaker breaker(policy);

  EXPECT_EQ(breaker.state(0.0), BreakerState::kClosed);
  breaker.record_failure(1.0);
  breaker.record_failure(1.1);
  EXPECT_EQ(breaker.state(1.1), BreakerState::kClosed);
  // A success resets the consecutive-failure count.
  breaker.record_success(1.2);
  breaker.record_failure(1.3);
  breaker.record_failure(1.4);
  EXPECT_EQ(breaker.state(1.4), BreakerState::kClosed);
  breaker.record_failure(1.5);  // third consecutive: trips open
  EXPECT_EQ(breaker.state(1.5), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1);
  EXPECT_FALSE(breaker.allows(1.55));
  EXPECT_DOUBLE_EQ(breaker.allows_at(1.55), 1.6);
  // Past the cool-down: half-open (derived from the clock, no event).
  EXPECT_EQ(breaker.state(1.6), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allows(1.6));
}

TEST(CircuitBreaker, HalfOpenClosesOnSuccessesAndReopensOnFailure) {
  BreakerPolicy policy;
  policy.failure_threshold = 2;
  policy.open_seconds = 0.05;
  policy.half_open_successes = 2;
  CircuitBreaker breaker(policy);
  breaker.record_failure(0.0);
  breaker.record_failure(0.0);
  ASSERT_EQ(breaker.state(0.0), BreakerState::kOpen);

  // Half-open trial traffic fails: re-open with a fresh cool-down.
  breaker.record_failure(0.06);
  EXPECT_EQ(breaker.state(0.06), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2);
  EXPECT_DOUBLE_EQ(breaker.allows_at(0.07), 0.11);

  // Half-open trial traffic succeeds twice: close.
  breaker.record_success(0.12);
  EXPECT_EQ(breaker.state(0.12), BreakerState::kHalfOpen);
  breaker.record_success(0.13);
  EXPECT_EQ(breaker.state(0.13), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allows(0.13));
}

TEST(CircuitBreaker, Validation) {
  BreakerPolicy bad;
  bad.failure_threshold = 0;
  EXPECT_THROW(HealthMonitor(1, HealthPolicy{.breaker = bad}), ConfigError);
}

// --- Health monitor --------------------------------------------------------

TEST(HealthMonitor, StragglerSuspicionAndRecovery) {
  HealthPolicy policy;
  policy.ewma_alpha = 1.0;  // EWMA == last sample: easy to steer
  policy.suspect_factor = 3.0;
  policy.min_samples = 2;
  HealthMonitor monitor(2, policy);

  // Both replicas sampled fast: everyone healthy.
  monitor.observe_success(0, 1.0, 0.010);
  monitor.observe_success(0, 1.1, 0.010);
  monitor.observe_success(1, 1.2, 0.010);
  monitor.observe_success(1, 1.3, 0.010);
  EXPECT_EQ(monitor.healthy_count(), 2);

  // Replica 1 slows past 3x the fleet baseline: suspect.
  monitor.observe_success(1, 2.0, 0.050);
  EXPECT_EQ(monitor.state(1), ReplicaState::kSuspect);
  EXPECT_EQ(monitor.suspect_count(), 1);

  // Probe cadence: due immediately, then throttled by probe_interval.
  EXPECT_TRUE(monitor.probe_due(1, 2.0));
  monitor.note_probe(1, 2.0);
  EXPECT_FALSE(monitor.probe_due(1, 2.0 + policy.probe_interval / 2.0));
  EXPECT_TRUE(monitor.probe_due(1, 2.0 + 1.1 * policy.probe_interval));

  // A fast probe decays the EWMA back under the threshold: recovered.
  monitor.observe_success(1, 3.0, 0.012);
  EXPECT_EQ(monitor.state(1), ReplicaState::kHealthy);

  // The transition log captured the round trip.
  ASSERT_EQ(monitor.transitions().size(), 2u);
  EXPECT_EQ(monitor.transitions()[0].to, ReplicaState::kSuspect);
  EXPECT_EQ(monitor.transitions()[1].to, ReplicaState::kHealthy);
}

TEST(HealthMonitor, RespawnBudgetIsBoundedAndNotResetByRespawn) {
  HealthPolicy policy;
  policy.max_restarts = 2;
  HealthMonitor monitor(1, policy);

  monitor.mark_dead(0, 1.0, "crash");
  EXPECT_FALSE(monitor.alive(0));
  ASSERT_TRUE(monitor.can_respawn(0));
  const double d1 = monitor.next_respawn_delay(0);
  EXPECT_GT(d1, 0.0);
  monitor.mark_respawned(0, 1.1);
  EXPECT_TRUE(monitor.alive(0));
  EXPECT_EQ(monitor.restarts_used(0), 1);

  // Second crash: one restart left (the budget survives the respawn).
  monitor.mark_dead(0, 2.0, "crash");
  ASSERT_TRUE(monitor.can_respawn(0));
  const double d2 = monitor.next_respawn_delay(0);
  EXPECT_GT(d2, d1);  // exponential ladder
  monitor.mark_respawned(0, 2.1);

  // Third crash: budget spent, the replica is lost for good.
  monitor.mark_dead(0, 3.0, "crash");
  EXPECT_FALSE(monitor.can_respawn(0));
  monitor.mark_lost(0, 3.0, "respawn budget spent");
  EXPECT_EQ(monitor.dead_count(), 1);
  EXPECT_FALSE(monitor.alive(0));
}

// --- Chaos schedules -------------------------------------------------------

TEST(ChaosConfig, ParsesCampaignSpecs) {
  const auto config = ChaosConfig::parse(
      "crash:at=2,kills=2;crash:at=3,perm=0,victims=1+4;"
      "straggle:at=4,dur=2,count=3,factor=6",
      99);
  EXPECT_EQ(config.seed, 99u);
  ASSERT_EQ(config.storms.size(), 2u);
  EXPECT_DOUBLE_EQ(config.storms[0].time, 2.0);
  EXPECT_EQ(config.storms[0].kills, 2);
  EXPECT_TRUE(config.storms[0].permanent);
  EXPECT_FALSE(config.storms[1].permanent);
  ASSERT_EQ(config.storms[1].victims.size(), 2u);
  EXPECT_EQ(config.storms[1].victims[0], 1);
  ASSERT_EQ(config.waves.size(), 1u);
  EXPECT_DOUBLE_EQ(config.waves[0].onset, 4.0);
  EXPECT_DOUBLE_EQ(config.waves[0].duration, 2.0);
  EXPECT_EQ(config.waves[0].count, 3);
  EXPECT_DOUBLE_EQ(config.waves[0].factor, 6.0);
  EXPECT_TRUE(ChaosConfig::parse("").empty());

  EXPECT_THROW(ChaosConfig::parse("meteor:at=1"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("crash:kills=2"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("straggle:at=1"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("straggle:at=1,dur=1,factor=0.5"),
               ConfigError);
  EXPECT_THROW(ChaosConfig::parse("crash:at=bogus"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("crash:at"), ConfigError);
}

TEST(ChaosConfig, MaterializationIsDeterministicAndValidated) {
  ChaosConfig config;
  config.seed = 7;
  CrashStorm storm;
  storm.time = 1.0;
  storm.kills = 3;
  config.storms.push_back(storm);
  StragglerWave wave;
  wave.onset = 2.0;
  wave.duration = 1.0;
  wave.count = 2;
  wave.factor = 8.0;
  config.waves.push_back(wave);

  const auto a = materialize_chaos(config, 8);
  const auto b = materialize_chaos(config, 8);
  ASSERT_EQ(a.size(), 8u);
  int deaths = 0;
  int stragglers = 0;
  for (std::size_t r = 0; r < a.size(); ++r) {
    // Same (config, replicas) -> byte-identical plans.
    EXPECT_EQ(a[r].seed, b[r].seed);
    ASSERT_EQ(a[r].rules.size(), b[r].rules.size());
    if (std::isfinite(a[r].death_time())) {
      ++deaths;
      EXPECT_DOUBLE_EQ(a[r].death_time(), 1.0);
      EXPECT_EQ(a[r].death_budget(), -1);
      EXPECT_DOUBLE_EQ(a[r].death_time(), b[r].death_time());
    }
    if (a[r].straggler_factor(2.5) > 1.0) {
      ++stragglers;
      EXPECT_DOUBLE_EQ(a[r].straggler_factor(2.5), 8.0);
      EXPECT_DOUBLE_EQ(a[r].straggler_factor(3.5), 1.0);  // window closed
    }
  }
  EXPECT_EQ(deaths, 3);      // distinct victims, drawn without replacement
  EXPECT_EQ(stragglers, 2);

  // Validation: oversubscribed storms and bad victim lists are rejected.
  ChaosConfig bad = config;
  bad.storms[0].kills = 9;
  EXPECT_THROW(materialize_chaos(bad, 8), ConfigError);
  bad = config;
  bad.storms[0].victims = {0, 0};
  EXPECT_THROW(materialize_chaos(bad, 8), ConfigError);
  bad = config;
  bad.storms[0].victims = {8};
  EXPECT_THROW(materialize_chaos(bad, 8), ConfigError);
}

// --- Load shedder ----------------------------------------------------------

TEST(LoadShedder, HysteresisAndDwell) {
  ShedPolicy policy;
  policy.enabled = true;
  policy.degrade_watermark = 0.75;
  policy.restore_watermark = 0.25;
  policy.min_dwell = 0.010;
  LoadShedder shedder(policy);

  EXPECT_FALSE(shedder.update(0.0, 0.5));
  EXPECT_TRUE(shedder.update(0.02, 0.8));  // crosses the high watermark
  EXPECT_TRUE(shedder.degraded());
  // Dwell guard: occupancy already back down, but too soon to restore.
  EXPECT_FALSE(shedder.update(0.025, 0.1));
  EXPECT_TRUE(shedder.degraded());
  EXPECT_TRUE(shedder.update(0.04, 0.1));  // dwell elapsed: restore
  EXPECT_FALSE(shedder.degraded());
  EXPECT_EQ(shedder.degrade_entries(), 1);
  EXPECT_NEAR(shedder.degraded_seconds(1.0), 0.02, 1e-12);

  EXPECT_THROW(LoadShedder(ShedPolicy{.degrade_watermark = 0.2,
                                      .restore_watermark = 0.5}),
               ConfigError);
}

// --- Hedge controller ------------------------------------------------------

TEST(HedgeController, ArmsAfterMinSamplesAndDerivesDelay) {
  HedgePolicy policy;
  policy.enabled = true;
  policy.quantile = 0.95;
  policy.factor = 2.0;
  policy.min_delay = 1.0e-4;
  policy.min_samples = 5;
  HedgeController hedges(policy);
  EXPECT_FALSE(hedges.delay().has_value());
  for (int i = 0; i < 5; ++i) hedges.observe(0.010);
  ASSERT_TRUE(hedges.delay().has_value());
  EXPECT_NEAR(*hedges.delay(), 0.020, 1e-3);
  EXPECT_FALSE(hedges.should_hedge(0.015));
  EXPECT_TRUE(hedges.should_hedge(0.050));

  HedgeController disabled{HedgePolicy{}};
  disabled.observe(1.0);
  EXPECT_FALSE(disabled.delay().has_value());
  EXPECT_THROW(HedgeController(HedgePolicy{.enabled = true, .quantile = 1.5}),
               ConfigError);
}

// --- Fleet serving scenarios ----------------------------------------------

TrafficConfig light_traffic(double service, double duration = 5.0) {
  TrafficConfig traffic;
  traffic.seed = 21;
  traffic.duration = duration;
  traffic.rate = 1.0 / (20.0 * (service + 4.0e-3));
  traffic.deadline = 0.25;
  return traffic;
}

// Chaos determinism. Run-to-run: the same (config, trace, seed) replays the
// completion CSV byte-for-byte, straggler waves and mid-trace crashes
// included. Across replica counts the invariance holds for crash-only
// chaos under light load (crashes land between batches, so replica
// identity never leaks into the log); straggler waves are exempt by
// design — a slowdown is a property of the replica that serves, so which
// fleet size you run legitimately changes who straggles.
TEST(ChaosServe, CompletionLogIsByteIdenticalAcrossRunsAndReplicaCounts) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  const double service = service_seconds(g, s, 8);
  const auto trace = generate_trace(light_traffic(service));
  ASSERT_GT(trace.size(), 10u);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.faults.seed = 77;
  config.faults.fail_with_probability(simgpu::FaultKind::kLaunchFailure, 0.05,
                                      -1);
  config.resilient.retry.max_attempts = 6;
  config.resilient.retry.base_backoff = 1.0e-4;
  config.resilient.retry.max_backoff = 5.0e-4;
  config.resilient.retry.jitter = 0.5;

  auto run = [&](int replicas, const std::string& chaos) {
    ServerConfig c = config;
    c.replicas = replicas;
    c.fleet.chaos = ChaosConfig::parse(chaos, 5);
    Server server(g, s, c);
    const ServingReport report = server.serve(trace);
    EXPECT_EQ(report.failed, 0);
    EXPECT_GE(report.deaths, 1);
    return Server::log_to_csv(server.log());
  };

  // Run-to-run determinism under the full chaos mix (crash + straggler).
  const std::string full =
      "crash:at=2,victims=0;straggle:at=3,dur=1,factor=3,victims=1";
  EXPECT_EQ(run(2, full), run(2, full));

  // Replica-count invariance under crash-only chaos.
  const std::string crash_only = "crash:at=2,victims=0";
  const std::string two = run(2, crash_only);
  EXPECT_EQ(two, run(4, crash_only));
  EXPECT_NE(two.find("served_precision,hedged"), std::string::npos);
}

// Crash storms never lose accepted requests while any replica survives:
// batches in flight on a dying replica are re-dispatched to survivors.
TEST(ChaosServe, CrashStormLosesNoAcceptedRequests) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.seed = 13;
  traffic.duration = 4.0;
  traffic.rate = 300.0;  // keeps replicas busy so crashes land mid-service
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.replicas = 4;
  config.fleet.chaos =
      ChaosConfig::parse("crash:at=1,victims=0;crash:at=2,victims=2", 3);
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);

  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.deadline_expired, 0);  // no deadlines configured
  EXPECT_EQ(report.completed, report.admitted);
  EXPECT_EQ(report.replicas_lost, 2);  // permanent: respawn budget spent
  EXPECT_GE(report.deaths, 2);
  EXPECT_GT(report.respawn_attempts, 0);
  EXPECT_EQ(report.respawns, 0);  // every restart re-crashes
  EXPECT_GT(report.time_to_recovery, 0.0);
  // Re-dispatched batches carry their attempt count into the log.
  bool saw_redispatch = false;
  for (const CompletionRecord& r : server.log()) {
    if (r.dispatch_attempts > 1) saw_redispatch = true;
  }
  EXPECT_EQ(saw_redispatch, report.crash_redispatches > 0);
}

// A transient (one-shot) crash respawns within the restart budget and the
// replica rejoins the fleet.
TEST(ChaosServe, TransientCrashRespawnsAndRejoins) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.seed = 17;
  traffic.duration = 3.0;
  traffic.rate = 200.0;
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.replicas = 2;
  config.fleet.chaos = ChaosConfig::parse("crash:at=1,perm=0,victims=0", 1);
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);

  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.deaths, 1);
  EXPECT_EQ(report.respawns, 1);
  EXPECT_EQ(report.replicas_lost, 0);
  // The transition log shows the full dead -> healthy round trip.
  bool died = false;
  bool rejoined = false;
  for (const HealthTransition& t : server.health_transitions()) {
    if (t.to == ReplicaState::kDead && t.replica == 0) died = true;
    if (died && t.to == ReplicaState::kHealthy && t.replica == 0) {
      rejoined = true;
    }
  }
  EXPECT_TRUE(died);
  EXPECT_TRUE(rejoined);
}

// Hedged requests: a straggler wave slows one replica; slow primaries race
// a hedge on a survivor, the first completion wins, and the duplicate is
// suppressed so exactly one record per request remains.
TEST(ChaosServe, HedgesRaceStragglersAndSuppressDuplicates) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.seed = 29;
  traffic.duration = 6.0;
  traffic.rate = 250.0;
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.replicas = 3;
  config.fleet.hedge.enabled = true;
  config.fleet.hedge.factor = 1.5;
  config.fleet.hedge.min_samples = 10;
  config.fleet.chaos =
      ChaosConfig::parse("straggle:at=2,dur=3,factor=25,victims=0", 9);
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);

  EXPECT_EQ(report.failed, 0);
  EXPECT_GT(report.hedges_launched, 0);
  EXPECT_GT(report.hedges_won, 0);
  EXPECT_GE(report.hedges_launched, report.hedges_won);
  EXPECT_GT(report.duplicates_suppressed, 0);
  // Exactly one record per offered request despite the duplicates.
  EXPECT_EQ(server.log().size(), trace.size());
  std::int64_t hedged_requests = 0;
  for (const CompletionRecord& r : server.log()) {
    if (r.hedged) ++hedged_requests;
  }
  EXPECT_GT(hedged_requests, 0);
  // The wave shows up in the health log as suspect transitions.
  bool suspected = false;
  for (const HealthTransition& t : server.health_transitions()) {
    if (t.to == ReplicaState::kSuspect) suspected = true;
  }
  EXPECT_TRUE(suspected);
}

// Load shedding: overload degrades admitted traffic onto the INT8 pool
// before rejecting; served_precision reconciles with the degrade counters.
TEST(ChaosServe, OverloadDegradesToInt8PoolBeforeRejecting) {
  // Compute-bound graph on the slow device: a warm fleet of four serves
  // ~1.5k req/s, so the 3x bursts overrun it and back the queue up past
  // the degrade watermark.
  const auto g = compute_heavy_graph();
  const auto s = ios::optimize_schedule(g, simgpu::tiny_spec());
  TrafficConfig traffic;
  traffic.seed = 31;
  traffic.duration = 4.0;
  traffic.rate = 800.0;
  traffic.burst_factor = 3.0;
  traffic.burst_period = 2.0;
  traffic.burst_duty = 0.4;
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 32;
  config.replicas = 4;
  config.device = simgpu::tiny_spec();
  config.precision = simgpu::Precision::kFp32;
  config.replica_precisions = {
      simgpu::Precision::kFp32, simgpu::Precision::kFp32,
      simgpu::Precision::kInt8, simgpu::Precision::kInt8};
  config.fleet.shed.enabled = true;
  config.fleet.shed.degrade_watermark = 0.5;
  config.fleet.shed.restore_watermark = 0.125;
  config.fleet.shed.min_dwell = 5.0e-3;
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);

  EXPECT_GT(report.shed_degrade_entries, 0);
  EXPECT_GT(report.degraded_seconds, 0.0);
  EXPECT_GT(report.degraded_served, 0);
  // served_precision reconciles with the aggregate counter, record by
  // record and in the CSV rendering.
  std::int64_t int8_served = 0;
  for (const CompletionRecord& r : server.log()) {
    if (r.status == RequestStatus::kCompleted &&
        r.precision == simgpu::Precision::kInt8) {
      ++int8_served;
    }
  }
  EXPECT_EQ(int8_served, report.degraded_served);
  const std::string csv = Server::log_to_csv(server.log());
  EXPECT_NE(csv.find(",int8,"), std::string::npos);
}

// When every replica dies with the budget spent and arrivals stop, the
// queue drains into failed records: requests are never silently dropped.
TEST(ChaosServe, FleetExtinctionFailsQueuedRequestsExplicitly) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.seed = 37;
  traffic.duration = 2.0;
  traffic.rate = 200.0;
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.replicas = 2;
  config.fleet.chaos = ChaosConfig::parse("crash:at=1,victims=0+1", 1);
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);

  EXPECT_EQ(report.replicas_lost, 2);
  EXPECT_GT(report.failed, 0);
  EXPECT_EQ(report.admitted,
            report.completed + report.deadline_expired + report.failed);
  // Every request still gets exactly one record.
  EXPECT_EQ(server.log().size(), trace.size());
}

// The acceptance scenario pinned by ISSUE 6 and BENCH_chaos: 8 replicas, a
// storm kills two permanently, a straggler wave slows two more, load
// doubles through a burst — and the fleet still loses nothing it accepted,
// recovers in bounded virtual time, and holds SLO attainment within 10
// points of the fault-free run.
TEST(ChaosServe, AcceptanceScenarioHoldsSloWithinTenPointsOfFaultFree) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.seed = 42;
  traffic.duration = 8.0;
  traffic.rate = 400.0;
  traffic.burst_factor = 1.0;  // doubled load over the burst window
  traffic.burst_period = 4.0;
  traffic.burst_duty = 0.5;
  traffic.deadline = 0.100;
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.replicas = 8;
  config.fleet.hedge.enabled = true;
  config.fleet.hedge.factor = 2.0;
  config.fleet.hedge.min_samples = 20;

  // Fault-free baseline.
  Server baseline(g, s, config);
  const ServingReport clean = baseline.serve(trace);
  ASSERT_EQ(clean.failed, 0);

  // Chaos run: kill 2 of 8 for good at t=2, straggle 2 more over [4, 6).
  ServerConfig chaos = config;
  chaos.fleet.chaos = ChaosConfig::parse(
      "crash:at=2,kills=2;straggle:at=4,dur=2,count=2,factor=8", 1234);
  Server server(g, s, chaos);
  const ServingReport report = server.serve(trace);

  EXPECT_EQ(report.failed, 0);  // zero accepted-request loss
  EXPECT_EQ(report.replicas_lost, 2);
  EXPECT_GT(report.deaths, 0);
  EXPECT_GT(report.goodput(), 0.0);
  // Bounded recovery: the health log settles within the run.
  EXPECT_LT(report.time_to_recovery, traffic.duration);
  // SLO attainment within 10 points of the fault-free run.
  EXPECT_GE(report.slo_attainment(), clean.slo_attainment() - 0.10);
}

// Fleet events flow into the profiler: instant events for health
// transitions and a chrome trace that carries them.
TEST(ChaosServe, FleetEventsAppearInProfilerTrace) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.seed = 3;
  traffic.duration = 2.0;
  traffic.rate = 200.0;
  const auto trace = generate_trace(traffic);

  profiler::Recorder recorder;
  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.replicas = 2;
  config.fleet.chaos = ChaosConfig::parse("crash:at=1,perm=0,victims=0", 1);
  Server server(g, s, config, &recorder);
  server.serve(trace);

  bool saw_dead = false;
  bool saw_respawn = false;
  for (const auto& event : recorder.instant_events()) {
    if (event.name == "replica.dead") saw_dead = true;
    if (event.name == "replica.respawn") saw_respawn = true;
  }
  EXPECT_TRUE(saw_dead);
  EXPECT_TRUE(saw_respawn);

  const std::string json = profiler::to_chrome_trace(recorder);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("replica.dead"), std::string::npos);
  EXPECT_NE(json.find("fleet.healthy_replicas"), std::string::npos);
}

}  // namespace
}  // namespace dcn::serve
