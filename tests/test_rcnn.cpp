// Tests for the region-proposal baseline (R-CNN lite).
#include "detect/rcnn_lite.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::detect {
namespace {

// Paint a synthetic 4-band patch with a vertical gray road and a horizontal
// dark-water stream crossing at (cy, cx).
Tensor planted_crossing(std::int64_t size, std::int64_t cy, std::int64_t cx) {
  Tensor img(Shape{4, size, size});
  // Vegetated background: R/G/B moderate, NIR high.
  for (std::int64_t i = 0; i < size * size; ++i) {
    img[0 * size * size + i] = 0.25f;
    img[1 * size * size + i] = 0.35f;
    img[2 * size * size + i] = 0.20f;
    img[3 * size * size + i] = 0.70f;
  }
  auto set_px = [&](std::int64_t r, std::int64_t c, float red, float green,
                    float blue, float nir) {
    img[0 * size * size + r * size + c] = red;
    img[1 * size * size + r * size + c] = green;
    img[2 * size * size + r * size + c] = blue;
    img[3 * size * size + r * size + c] = nir;
  };
  for (std::int64_t r = 0; r < size; ++r) {
    for (std::int64_t dc = -2; dc <= 2; ++dc) {
      if (cx + dc >= 0 && cx + dc < size) {
        set_px(r, cx + dc, 0.55f, 0.55f, 0.55f, 0.22f);  // road gray
      }
    }
  }
  for (std::int64_t c = 0; c < size; ++c) {
    for (std::int64_t dr = -1; dr <= 1; ++dr) {
      if (cy + dr >= 0 && cy + dr < size && std::abs(c - cx) > 2) {
        set_px(cy + dr, c, 0.10f, 0.14f, 0.18f, 0.05f);  // water
      }
    }
  }
  return img;
}

TEST(ProposeRegions, FindsPlantedCrossing) {
  const Tensor img = planted_crossing(64, 32, 32);
  ProposalConfig config;
  const auto proposals = propose_regions(img, config);
  ASSERT_FALSE(proposals.empty());
  // The top proposal is near the planted crossing.
  const Proposal& top = proposals.front();
  EXPECT_NEAR(top.box[0], 0.5f, 0.15f);
  EXPECT_NEAR(top.box[1], 0.5f, 0.15f);
  EXPECT_NEAR(top.objectness, 1.0f, 1e-6f);  // normalized top score
}

TEST(ProposeRegions, EmptySceneYieldsNothing) {
  Tensor img(Shape{4, 64, 64});
  for (std::int64_t i = 0; i < 64 * 64; ++i) {
    img[0 * 4096 + i] = 0.25f;
    img[1 * 4096 + i] = 0.35f;
    img[2 * 4096 + i] = 0.20f;
    img[3 * 4096 + i] = 0.70f;
  }
  EXPECT_TRUE(propose_regions(img, ProposalConfig{}).empty());
}

TEST(ProposeRegions, RoadWithoutWaterYieldsNothing) {
  Tensor img = planted_crossing(64, 32, 32);
  // Erase the water: raise NIR everywhere water was painted.
  for (std::int64_t i = 0; i < 64 * 64; ++i) {
    if (img[3 * 4096 + i] < 0.1f) img[3 * 4096 + i] = 0.7f;
  }
  EXPECT_TRUE(propose_regions(img, ProposalConfig{}).empty());
}

TEST(ProposeRegions, NmsSeparatesDistinctCrossings) {
  // Two crossings far apart -> at least two surviving proposals.
  Tensor img = planted_crossing(96, 24, 24);
  const Tensor second = planted_crossing(96, 72, 72);
  // Merge the second crossing's road/water pixels in.
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    if (second[i] != 0.25f && second[i] != 0.35f && second[i] != 0.20f &&
        second[i] != 0.70f) {
      img[i] = second[i];
    }
  }
  ProposalConfig config;
  config.max_proposals = 8;
  const auto proposals = propose_regions(img, config);
  EXPECT_GE(proposals.size(), 2u);
}

TEST(ProposeRegions, RespectsMaxProposals) {
  const Tensor img = planted_crossing(64, 32, 32);
  ProposalConfig config;
  config.max_proposals = 1;
  config.nms_radius = 0.01;  // effectively no suppression
  EXPECT_LE(propose_regions(img, config).size(), 1u);
}

TEST(ProposeRegions, RejectsWrongRank) {
  EXPECT_THROW(propose_regions(Tensor(Shape{64, 64}), ProposalConfig{}),
               dcn::Error);
  EXPECT_THROW(propose_regions(Tensor(Shape{3, 64, 64}), ProposalConfig{}),
               dcn::Error);
}

TEST(RcnnLiteDetector, ScoresProposalsWithSppNet) {
  Rng rng(1);
  SppNetConfig config = parse_notation(
      "C_{4,3,1}-P_{2,2}-SPP_{2,1}-F_{8}", 4);
  SppNet scorer(config, rng);
  RcnnLiteDetector detector(scorer, ProposalConfig{});
  const Tensor img = planted_crossing(64, 32, 32);
  const Prediction pred = detector.detect(img);
  EXPECT_GE(pred.confidence, 0.0f);
  EXPECT_LE(pred.confidence, 1.0f);
  // With proposals present, the detector reports the top proposal's box.
  EXPECT_GT(pred.box[2], 0.0f);
}

TEST(RcnnLiteDetector, NoProposalsMeansZeroConfidence) {
  Rng rng(1);
  SppNetConfig config = parse_notation(
      "C_{4,3,1}-P_{2,2}-SPP_{2,1}-F_{8}", 4);
  SppNet scorer(config, rng);
  RcnnLiteDetector detector(scorer, ProposalConfig{});
  Tensor empty(Shape{4, 64, 64});
  for (std::int64_t i = 0; i < 64 * 64; ++i) {
    empty[3 * 4096 + i] = 0.7f;  // vegetation NIR, nothing gray
  }
  const Prediction pred = detector.detect(empty);
  EXPECT_EQ(pred.confidence, 0.0f);
}

}  // namespace
}  // namespace dcn::detect
