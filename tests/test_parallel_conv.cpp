// Determinism and correctness of the batch-parallel conv/linear path and
// the workspace arena: jobs=1 vs jobs=N must be bit-identical in forward
// outputs, gradients, and end-to-end trained weights, and gradcheck must
// hold under threading.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/logging.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "detect/trainer.hpp"
#include "nn/conv2d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "tensor/workspace.hpp"

namespace dcn {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

Tensor random_tensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// --- Conv2d forward/backward across job counts ------------------------------

struct ConvPassResult {
  Tensor output;
  Tensor grad_input;
  Tensor weight_grad;
  Tensor bias_grad;
};

ConvPassResult run_conv_pass(int jobs) {
  ThreadGuard guard(jobs);
  Rng rng(123);
  Conv2d conv(3, 8, 3, 1, 1, rng);  // same weights for every jobs value
  const Tensor input = random_tensor(Shape{9, 3, 13, 11}, 99);
  const Tensor grad_out = random_tensor(Shape{9, 8, 13, 11}, 100);
  ConvPassResult r;
  r.output = conv.forward(input);
  r.grad_input = conv.backward(grad_out);
  const auto params = conv.parameters();
  r.weight_grad = *params[0].grad;
  r.bias_grad = *params[1].grad;
  return r;
}

TEST(ParallelConv, ForwardAndBackwardBitIdenticalAcrossJobs) {
  const ConvPassResult serial = run_conv_pass(1);
  for (int jobs : {2, 4, 7}) {
    const ConvPassResult parallel = run_conv_pass(jobs);
    EXPECT_TRUE(bit_identical(serial.output, parallel.output))
        << "forward, jobs=" << jobs;
    EXPECT_TRUE(bit_identical(serial.grad_input, parallel.grad_input))
        << "grad_input, jobs=" << jobs;
    EXPECT_TRUE(bit_identical(serial.weight_grad, parallel.weight_grad))
        << "weight_grad, jobs=" << jobs;
    EXPECT_TRUE(bit_identical(serial.bias_grad, parallel.bias_grad))
        << "bias_grad, jobs=" << jobs;
  }
}

TEST(ParallelConv, StridedAndSingleSampleShapesBitIdentical) {
  // batch < chunks, stride > 1, and pad 0 hit the other partition branches.
  auto run = [](int jobs) {
    ThreadGuard guard(jobs);
    Rng rng(7);
    Conv2d conv(2, 5, 3, 2, 0, rng);
    const Tensor input = random_tensor(Shape{3, 2, 17, 9}, 55);
    Tensor out = conv.forward(input);
    Tensor gi = conv.backward(random_tensor(out.shape(), 56));
    return std::pair<Tensor, Tensor>(std::move(out), std::move(gi));
  };
  const auto serial = run(1);
  const auto parallel = run(6);
  EXPECT_TRUE(bit_identical(serial.first, parallel.first));
  EXPECT_TRUE(bit_identical(serial.second, parallel.second));
}

TEST(ParallelConv, GradcheckHoldsUnderThreading) {
  ThreadGuard guard(4);
  Rng rng(11);
  Conv2d conv(2, 4, 3, 1, 1, rng);
  const Tensor input = random_tensor(Shape{4, 2, 7, 7}, 33);
  const GradCheckResult gin = check_input_gradient(conv, input);
  EXPECT_TRUE(gin.ok) << gin.detail;
  const GradCheckResult gparam = check_parameter_gradients(conv, input);
  EXPECT_TRUE(gparam.ok) << gparam.detail;
}

// --- Linear under threading -------------------------------------------------

TEST(ParallelConv, LinearFusedBiasBitIdenticalAcrossJobs) {
  auto run = [](int jobs) {
    ThreadGuard guard(jobs);
    Rng rng(17);
    Linear lin(96, 64, rng);
    const Tensor input = random_tensor(Shape{33, 96}, 44);
    Tensor out = lin.forward(input);
    Tensor gi = lin.backward(random_tensor(out.shape(), 45));
    const auto params = lin.parameters();
    return std::tuple<Tensor, Tensor, Tensor>(std::move(out), std::move(gi),
                                              *params[0].grad);
  };
  const auto serial = run(1);
  const auto parallel = run(5);
  EXPECT_TRUE(bit_identical(std::get<0>(serial), std::get<0>(parallel)));
  EXPECT_TRUE(bit_identical(std::get<1>(serial), std::get<1>(parallel)));
  EXPECT_TRUE(bit_identical(std::get<2>(serial), std::get<2>(parallel)));
}

TEST(ParallelConv, LinearGradcheckHoldsUnderThreading) {
  ThreadGuard guard(4);
  Rng rng(19);
  Linear lin(24, 12, rng);
  const Tensor input = random_tensor(Shape{6, 24}, 66);
  const GradCheckResult gin = check_input_gradient(lin, input);
  EXPECT_TRUE(gin.ok) << gin.detail;
  const GradCheckResult gparam = check_parameter_gradients(lin, input);
  EXPECT_TRUE(gparam.ok) << gparam.detail;
}

// --- Workspace arena --------------------------------------------------------

TEST(WorkspaceArena, PointersSurviveGrowthWithinScope) {
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  float* first = ws.floats(32);
  first[0] = 42.0f;
  // Force growth well past the initial block.
  float* big = ws.floats(1 << 20);
  big[0] = 1.0f;
  EXPECT_EQ(first[0], 42.0f);  // old block untouched by growth
}

TEST(WorkspaceArena, ScopesNestAndRelease) {
  Workspace& ws = Workspace::tls();
  Workspace::Scope outer(ws);
  float* a = ws.floats(16);
  a[0] = 7.0f;
  {
    Workspace::Scope inner(ws);
    (void)ws.floats(1024);
    EXPECT_EQ(ws.depth(), 2);
  }
  // Inner allocations released; outer pointer still valid.
  EXPECT_EQ(ws.depth(), 1);
  EXPECT_EQ(a[0], 7.0f);
  // The next inner scope reuses the same storage (no growth needed).
  const std::size_t cap = ws.capacity();
  {
    Workspace::Scope inner(ws);
    (void)ws.floats(1024);
  }
  EXPECT_EQ(ws.capacity(), cap);
}

TEST(WorkspaceArena, SteadyStateReusesCapacity) {
  Workspace& ws = Workspace::tls();
  std::size_t cap_after_first = 0;
  for (int pass = 0; pass < 3; ++pass) {
    Workspace::Scope scope(ws);
    (void)ws.floats(5000);
    (void)ws.floats(300);
    if (pass == 0) {
      cap_after_first = ws.capacity();
    } else {
      EXPECT_EQ(ws.capacity(), cap_after_first) << "pass " << pass;
    }
  }
}

// --- End-to-end: one epoch of training, jobs=1 vs jobs=N --------------------

class ParallelTrainingTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kWarn);
    geo::DatasetConfig config;
    config.seed = 11;
    config.num_worlds = 1;
    config.terrain.rows = 256;
    config.terrain.cols = 256;
    config.roads.spacing = 64;
    config.stream_threshold = 200.0;
    config.patch_size = 24;
    config.positive_jitter = 2;
    config.augment_flips = true;
    dataset_ = new geo::DrainageDataset(
        geo::DrainageDataset::synthesize(config));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static geo::DrainageDataset* dataset_;
};

geo::DrainageDataset* ParallelTrainingTest::dataset_ = nullptr;

TEST_F(ParallelTrainingTest, OneEpochWeightsBitIdenticalAcrossJobs) {
  const auto model_config = detect::parse_notation(
      "C_{6,3,1}-P_{2,2}-C_{8,3,1}-P_{2,2}-SPP_{2,1}-F_{24}", 4);
  const geo::Split split = dataset_->split(0.8, 3);
  detect::TrainConfig config;
  config.epochs = 1;
  config.verbose = false;

  auto train_weights = [&](int jobs) {
    Rng rng(5);
    detect::SppNet model(model_config, rng);
    config.jobs = jobs;
    (void)detect::train_detector(model, *dataset_, split, config);
    std::vector<Tensor> weights;
    for (const auto& p : model.parameters()) weights.push_back(*p.value);
    return weights;
  };

  const auto serial = train_weights(1);
  const auto parallel = train_weights(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bit_identical(serial[i], parallel[i])) << "parameter " << i;
  }
  EXPECT_GE(hardware_threads(), 1);  // jobs setting restored by the trainer
}

}  // namespace
}  // namespace dcn
