// End-to-end integration: synthetic data -> training -> evaluation ->
// inference graph -> IOS schedules -> simulated profiling -> NAS selection.
// Everything at miniature scale so the whole file runs in seconds.
#include <gtest/gtest.h>

#include "core/logging.hpp"
#include "core/rng.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "nas/runner.hpp"
#include "nas/selection.hpp"
#include "profiler/report.hpp"
#include "simgpu/device.hpp"

namespace dcn {
namespace {

geo::DatasetConfig tiny_data() {
  geo::DatasetConfig config;
  config.seed = 21;
  config.num_worlds = 1;
  config.terrain.rows = 256;
  config.terrain.cols = 256;
  config.roads.spacing = 64;
  config.stream_threshold = 200.0;
  config.patch_size = 24;
  config.positive_jitter = 2;
  return config;
}

detect::SppNetConfig tiny_model() {
  return detect::parse_notation(
      "C_{6,3,1}-P_{2,2}-C_{8,3,1}-P_{2,2}-SPP_{3,2,1}-F_{24}", 4);
}

TEST(Integration, TrainEvalScheduleProfile) {
  set_log_level(LogLevel::kWarn);
  // 1. Data.
  const auto dataset = geo::DrainageDataset::synthesize(tiny_data());
  ASSERT_GT(dataset.size(), 20u);
  const geo::Split split = dataset.split(0.8, 3);

  // 2. Train briefly.
  Rng rng(1);
  detect::SppNet model(tiny_model(), rng);
  detect::TrainConfig train_config;
  train_config.epochs = 6;
  train_config.verbose = false;
  const auto history =
      detect::train_detector(model, dataset, split, train_config);
  EXPECT_LT(history.epochs.back().mean_loss,
            history.epochs.front().mean_loss);
  EXPECT_GE(history.final_eval.average_precision, 0.0);

  // 3. Inference graph of the trained architecture.
  const graph::Graph g = graph::build_inference_graph(
      tiny_model(), tiny_data().patch_size);
  const auto spec = simgpu::a5500_spec();

  // 4. Schedules: IOS beats sequential.
  const ios::Schedule seq = ios::sequential_schedule(g);
  const ios::Schedule opt = ios::optimize_schedule(g, spec);
  simgpu::Device d_seq(spec);
  simgpu::Device d_opt(spec);
  const double t_seq = ios::measure_latency(g, seq, d_seq, 1);
  const double t_opt = ios::measure_latency(g, opt, d_opt, 1);
  EXPECT_LT(t_opt, t_seq);

  // 5. Profiled run emits all three nsys views.
  profiler::Recorder recorder;
  simgpu::Device device(spec, &recorder);
  ios::InferenceSession session(g, opt, device);
  session.initialize();
  (void)session.run(8);
  EXPECT_GT(profiler::api_share(recorder,
                                profiler::ApiKind::kLibraryLoadData),
            0.0);
  EXPECT_GT(profiler::kernel_share(recorder,
                                   profiler::KernelCategory::kConv),
            0.0);
  EXPECT_GT(profiler::memop_summary(recorder).count, 0);
  const std::string report = profiler::render_report(recorder);
  EXPECT_NE(report.find("cudaLaunchKernel"), std::string::npos);
}

TEST(Integration, ProfiledApiSharesShiftWithBatch) {
  // Fig. 8's qualitative claim, end-to-end: the library-load share falls
  // and the synchronize share rises as batch size grows.
  const auto spec = simgpu::a5500_spec();
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  const ios::Schedule opt = ios::optimize_schedule(g, spec);

  auto shares_at = [&](std::int64_t batch) {
    profiler::Recorder recorder;
    simgpu::Device device(spec, &recorder);
    ios::InferenceSession session(g, opt, device);
    session.initialize();
    // Profile a measurement loop, as `nsys profile python IOS_Model.py`
    // captures the script's whole run, not a single inference.
    for (int i = 0; i < 10; ++i) (void)session.run(batch);
    return std::pair{
        profiler::api_share(recorder, profiler::ApiKind::kLibraryLoadData),
        profiler::api_share(recorder,
                            profiler::ApiKind::kDeviceSynchronize)};
  };
  const auto [lib1, sync1] = shares_at(1);
  const auto [lib64, sync64] = shares_at(64);
  EXPECT_GT(lib1, 0.5);     // library load dominates a batch-1 profile
  EXPECT_LT(sync1, 0.15);
  EXPECT_LT(lib64, lib1);   // amortized away at batch 64
  EXPECT_GT(sync64, sync1);
  EXPECT_GT(sync64, 0.2);   // synchronization becomes a first-order cost
}

TEST(Integration, KernelMixShiftsFromMatMulToConv) {
  // Table 3's qualitative claim, end-to-end on the simulated device.
  const auto spec = simgpu::a5500_spec();
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  const ios::Schedule opt = ios::optimize_schedule(g, spec);

  auto kernel_shares = [&](std::int64_t batch) {
    profiler::Recorder recorder;
    simgpu::Device device(spec, &recorder);
    ios::InferenceSession session(g, opt, device);
    session.initialize();
    device.reset_clocks();
    recorder.clear();
    (void)session.run(batch);
    return std::pair{
        profiler::kernel_share(recorder, profiler::KernelCategory::kMatMul),
        profiler::kernel_share(recorder, profiler::KernelCategory::kConv)};
  };
  const auto [mm1, conv1] = kernel_shares(1);
  const auto [mm64, conv64] = kernel_shares(64);
  EXPECT_GT(mm1, conv1);    // batch 1: FC weight reads dominate
  EXPECT_GT(conv64, mm64);  // batch 64: convolutions dominate
  EXPECT_GT(conv64, 0.5);
}

TEST(Integration, NasPipelineWithProxyEvaluator) {
  // Fig. 5's loop at miniature scale, with a cheap functional evaluator
  // standing in for training (the real-training variant is exercised by
  // bench_nas_pipeline).
  nas::SearchSpace space;
  space.conv1_kernels = {3, 5};
  space.spp_first_levels = {1, 3, 5};
  space.fc_widths = {128, 1024};
  nas::RandomSearchStrategy strategy(space, 5);
  nas::RunnerConfig config;
  config.max_trials = 6;
  config.input_size = 32;
  config.verbose = false;
  const nas::TrialDatabase db = nas::run_multi_trial(
      strategy,
      [](const detect::SppNetConfig& model) {
        // Proxy: accuracy grows with SPP richness, saturating.
        return 0.90 + 0.01 * static_cast<double>(model.spp_levels.size()) +
               0.005 * (model.fc_sizes[0] >= 1024 ? 1 : 0);
      },
      config);
  ASSERT_EQ(db.size(), 6u);

  const auto best = nas::select_constrained(db, 0.91);
  ASSERT_TRUE(best.has_value());
  // Selection obeys the constraint and maximizes throughput among the
  // qualifying trials.
  for (const nas::Trial& t : db.trials()) {
    if (t.metrics.average_precision > 0.91) {
      EXPECT_LE(t.metrics.throughput, best->metrics.throughput);
    }
  }
  EXPECT_GT(best->metrics.average_precision, 0.91);
}

}  // namespace
}  // namespace dcn
