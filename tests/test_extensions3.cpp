// Tests for the third extension wave: Gantt rendering, rot90 augmentation,
// and graph shape validation — plus parameterized property sweeps over the
// SPP output-size law and the adaptive-pool coverage law.
#include <gtest/gtest.h>

#include <tuple>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "detect/sppnet_config.hpp"
#include "geo/patch.hpp"
#include "graph/builder.hpp"
#include "ios/gantt.hpp"
#include "ios/scheduler.hpp"
#include "nn/pool.hpp"
#include "nn/spp.hpp"
#include "simgpu/spec.hpp"

namespace dcn {
namespace {

TEST(Gantt, StructureMatchesSchedule) {
  const auto g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  const std::string gantt = ios::render_gantt(g, spec, schedule);
  // One row per concurrent stream.
  for (std::size_t s = 0; s < schedule.max_concurrency(); ++s) {
    EXPECT_NE(gantt.find("stream " + std::to_string(s)),
              std::string::npos);
  }
  // The large kernels' names appear (tiny kernels truncate to "[]").
  EXPECT_NE(gantt.find("fc0"), std::string::npos);
  EXPECT_NE(gantt.find("conv2"), std::string::npos);
  // Stage separators: one '|' per stage per row.
  const std::size_t bars =
      static_cast<std::size_t>(std::count(gantt.begin(), gantt.end(), '|'));
  EXPECT_EQ(bars, schedule.num_stages() * schedule.max_concurrency());
}

TEST(Gantt, SequentialScheduleIsSingleRow) {
  const auto g =
      graph::build_inference_graph(detect::original_sppnet(), 64);
  const auto spec = simgpu::a5500_spec();
  const std::string gantt =
      ios::render_gantt(g, spec, ios::sequential_schedule(g));
  EXPECT_NE(gantt.find("stream 0"), std::string::npos);
  EXPECT_EQ(gantt.find("stream 1"), std::string::npos);
}

TEST(Gantt, RejectsSillyWidth) {
  const auto g =
      graph::build_inference_graph(detect::original_sppnet(), 64);
  const auto spec = simgpu::a5500_spec();
  ios::GanttOptions options;
  options.width = 5;
  EXPECT_THROW(
      ios::render_gantt(g, spec, ios::sequential_schedule(g), options),
      Error);
}

geo::PatchSample checker_sample() {
  geo::PatchSample sample;
  sample.label = 1.0f;
  sample.image = Tensor(Shape{4, 6, 6});
  Rng rng(3);
  sample.image.fill_uniform(rng, 0.0f, 1.0f);
  sample.box = {0.25f, 0.6f, 0.2f, 0.3f};
  return sample;
}

TEST(Rotate90, FourRotationsAreIdentity) {
  const geo::PatchSample original = checker_sample();
  geo::PatchSample rotated = original;
  for (int i = 0; i < 4; ++i) rotated = geo::rotate90(rotated);
  for (std::int64_t i = 0; i < original.image.numel(); ++i) {
    ASSERT_EQ(rotated.image[i], original.image[i]) << "pixel " << i;
  }
  EXPECT_NEAR(rotated.box[0], original.box[0], 1e-6f);
  EXPECT_NEAR(rotated.box[1], original.box[1], 1e-6f);
  EXPECT_EQ(rotated.box[2], original.box[2]);
}

TEST(Rotate90, BoxFollowsPixels) {
  // Put a hot pixel at the box center and verify it lands at the rotated
  // box center.
  geo::PatchSample sample;
  sample.label = 1.0f;
  sample.image = Tensor(Shape{4, 8, 8}, 0.0f);
  sample.box = {2.5f / 8, 5.5f / 8, 0.25f, 0.25f};  // center pixel (5, 2)
  sample.image.at({0, 5, 2}) = 9.0f;
  const geo::PatchSample rotated = geo::rotate90(sample);
  const auto rx = static_cast<std::int64_t>(rotated.box[0] * 8);
  const auto ry = static_cast<std::int64_t>(rotated.box[1] * 8);
  EXPECT_EQ(rotated.image.at({0, ry, rx}), 9.0f);
}

TEST(Rotate90, SwapsBoxExtents) {
  geo::PatchSample sample = checker_sample();
  sample.box = {0.5f, 0.5f, 0.1f, 0.3f};
  const geo::PatchSample rotated = geo::rotate90(sample);
  EXPECT_EQ(rotated.box[2], 0.3f);
  EXPECT_EQ(rotated.box[3], 0.1f);
}

TEST(Rotate90, RejectsNonSquare) {
  geo::PatchSample sample;
  sample.image = Tensor(Shape{4, 6, 8});
  EXPECT_THROW(geo::rotate90(sample), Error);
}

TEST(ValidateShapes, AcceptsBuilderGraphs) {
  for (const auto& config : detect::table1_models()) {
    const auto g = graph::build_inference_graph(config, 100);
    EXPECT_NO_THROW(graph::validate_shapes(g)) << config.name;
  }
}

TEST(ValidateShapes, CatchesBadConvArithmetic) {
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{3, 10, 10}});
  graph::OpAttrs conv;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.out_channels = 8;
  g.add_op(graph::OpKind::kConv2d, "conv", conv, {in},
           graph::TensorDesc{{8, 9, 9}});  // wrong: same padding keeps 10
  EXPECT_THROW(graph::validate_shapes(g), Error);
}

TEST(ValidateShapes, CatchesConcatMiscount) {
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{16}});
  const auto a = g.add_op(graph::OpKind::kFlatten, "a", {}, {in},
                          graph::TensorDesc{{16}});
  const auto b = g.add_op(graph::OpKind::kFlatten, "b", {}, {in},
                          graph::TensorDesc{{16}});
  g.add_op(graph::OpKind::kConcat, "cat", {}, {a, b},
           graph::TensorDesc{{30}});  // wrong: should be 32
  EXPECT_THROW(graph::validate_shapes(g), Error);
}

TEST(ValidateShapes, CatchesLinearWidthMismatch) {
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{16}});
  graph::OpAttrs fc;
  fc.out_features = 8;
  g.add_op(graph::OpKind::kLinear, "fc", fc, {in},
           graph::TensorDesc{{9}});  // wrong
  EXPECT_THROW(graph::validate_shapes(g), Error);
}

// ---- Parameterized property sweeps ----

// SPP output-size law: output features = C * sum(l^2) for every input size.
using SppCase = std::tuple<int, int, int>;  // first level, channels, size

class SppOutputLaw : public testing::TestWithParam<SppCase> {};

TEST_P(SppOutputLaw, FixedLengthForAnyInput) {
  const auto [first, channels, size] = GetParam();
  SpatialPyramidPool spp(spp_levels_from_first(first));
  Rng rng(static_cast<std::uint64_t>(first * 100 + channels + size));
  Tensor x(Shape{2, channels, size, size});
  x.fill_uniform(rng, 0.0f, 1.0f);
  const Tensor y = spp.forward(x);
  std::int64_t cells = 0;
  for (std::int64_t l : spp.levels()) cells += l * l;
  EXPECT_EQ(y.shape(), Shape({2, channels * cells}));
  // Values are maxima of the input: bounded by the input range.
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y[i], 0.0f);
    EXPECT_LE(y[i], 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SppOutputLaw,
    testing::Combine(testing::Values(1, 2, 3, 4, 5),
                     testing::Values(1, 8),
                     testing::Values(5, 12, 25)));

// Adaptive-pool coverage law: the max over all bins equals the global max.
class AdaptiveCoverageLaw : public testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(AdaptiveCoverageLaw, BinsNeverMissTheGlobalMax) {
  const auto [out, in] = GetParam();
  if (out > in) GTEST_SKIP() << "upsampling case covered elsewhere";
  AdaptiveMaxPool2d pool(out, out);
  Rng rng(static_cast<std::uint64_t>(out * 1000 + in));
  Tensor x(Shape{1, 3, in, in});
  x.fill_normal(rng, 0.0f, 1.0f);
  const Tensor y = pool.forward(x);
  for (std::int64_t c = 0; c < 3; ++c) {
    float global_max = -1e30f;
    for (std::int64_t i = 0; i < in * in; ++i) {
      global_max = std::max(global_max, x[c * in * in + i]);
    }
    float bin_max = -1e30f;
    for (std::int64_t i = 0; i < out * out; ++i) {
      bin_max = std::max(bin_max, y[c * out * out + i]);
    }
    EXPECT_FLOAT_EQ(bin_max, global_max) << "channel " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdaptiveCoverageLaw,
                         testing::Combine(testing::Values(1, 2, 3, 4, 5, 7),
                                          testing::Values(5, 9, 12, 25)));

}  // namespace
}  // namespace dcn
