// Tests for the serving subsystem: traffic generation, admission control,
// dynamic batching, latency histograms, the SLO-aware server, and the
// replica-count-invariant completion log.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/error.hpp"
#include "core/retry.hpp"
#include "graph/graph.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/counters.hpp"
#include "profiler/trace.hpp"
#include "serve/server.hpp"
#include "simgpu/device.hpp"

namespace dcn::serve {
namespace {

// Conv trunk with three parallel pooling branches — enough structure for
// IOS to find concurrency, small enough that a batch serves in well under a
// millisecond of virtual time.
graph::Graph branched_graph() {
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{16, 16, 16}});
  graph::OpAttrs conv;
  conv.kernel = 3;
  conv.stride = 1;
  conv.padding = 1;
  conv.out_channels = 16;
  const auto trunk = g.add_op(graph::OpKind::kConv2d, "trunk", conv, {in},
                              graph::TensorDesc{{16, 16, 16}});
  std::vector<graph::OpId> outs;
  std::int64_t total = 0;
  for (int b = 0; b < 3; ++b) {
    graph::OpAttrs pool;
    pool.pool_out = b + 1;
    const auto p = g.add_op(
        graph::OpKind::kAdaptivePool, "pool" + std::to_string(b), pool,
        {trunk}, graph::TensorDesc{{16, b + 1, b + 1}});
    const auto f = g.add_op(
        graph::OpKind::kFlatten, "flat" + std::to_string(b), {}, {p},
        graph::TensorDesc{{16 * (b + 1) * (b + 1)}});
    outs.push_back(f);
    total += 16 * (b + 1) * (b + 1);
  }
  const auto concat = g.add_op(graph::OpKind::kConcat, "cat", {}, outs,
                               graph::TensorDesc{{total}});
  g.add_op(graph::OpKind::kOutput, "out", {}, {concat},
           graph::TensorDesc{{total}});
  return g;
}

ios::Schedule schedule_for(const graph::Graph& g) {
  return ios::optimize_schedule(g, simgpu::a5500_spec());
}

// Measured batch service time on a fresh device — the yardstick the serving
// tests use to place themselves in a light- or over-load regime.
double service_seconds(const graph::Graph& g, const ios::Schedule& s,
                       std::int64_t batch) {
  simgpu::Device probe(simgpu::a5500_spec());
  return ios::measure_latency(g, s, probe, batch);
}

// --- Traffic ---------------------------------------------------------------

TEST(Traffic, DeterministicAndOrdered) {
  TrafficConfig config;
  config.seed = 7;
  config.duration = 5.0;
  config.rate = 100.0;
  config.burst_factor = 1.0;
  config.diurnal_amplitude = 0.5;
  config.diurnal_period = 2.0;
  const auto a = generate_trace(config);
  const auto b = generate_trace(config);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i));
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_GE(a[i].arrival, 0.0);
    EXPECT_LT(a[i].arrival, config.duration);
    if (i > 0) EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    EXPECT_TRUE(std::isinf(a[i].deadline));  // no deadline configured
  }
}

TEST(Traffic, RateControlsVolume) {
  TrafficConfig slow;
  slow.duration = 20.0;
  slow.rate = 20.0;
  TrafficConfig fast = slow;
  fast.rate = 200.0;
  const auto few = generate_trace(slow);
  const auto many = generate_trace(fast);
  EXPECT_GT(many.size(), few.size() * 5);
  // Mean count within 3 sigma of rate * duration.
  const double expected = fast.rate * fast.duration;
  EXPECT_NEAR(static_cast<double>(many.size()), expected,
              3.0 * std::sqrt(expected));
}

TEST(Traffic, DeadlinesAreAbsolute) {
  TrafficConfig config;
  config.duration = 2.0;
  config.rate = 50.0;
  config.deadline = 0.025;
  for (const Request& r : generate_trace(config)) {
    EXPECT_DOUBLE_EQ(r.deadline, r.arrival + 0.025);
  }
}

TEST(Traffic, RateModulation) {
  TrafficConfig config;
  config.rate = 100.0;
  config.burst_factor = 2.0;
  config.burst_period = 1.0;
  config.burst_duty = 0.25;
  // Inside the burst window the rate triples; outside it is the base rate.
  EXPECT_DOUBLE_EQ(instantaneous_rate(config, 0.1), 300.0);
  EXPECT_DOUBLE_EQ(instantaneous_rate(config, 0.6), 100.0);
  config.burst_factor = 0.0;
  config.diurnal_amplitude = 0.5;
  config.diurnal_period = 4.0;
  // Sinusoid peak at a quarter period.
  EXPECT_DOUBLE_EQ(instantaneous_rate(config, 1.0), 100.0 * 1.5);
  config.burst_factor = 2.0;
  for (double t = 0.0; t < 8.0; t += 0.05) {
    EXPECT_LE(instantaneous_rate(config, t), peak_rate(config) + 1e-9);
  }
}

TEST(Traffic, Validation) {
  TrafficConfig config;
  config.rate = 0.0;
  EXPECT_THROW(generate_trace(config), ConfigError);
  config = {};
  config.duration = -1.0;
  EXPECT_THROW(generate_trace(config), ConfigError);
  config = {};
  config.burst_factor = -0.5;
  EXPECT_THROW(generate_trace(config), ConfigError);
  config = {};
  config.burst_duty = 1.5;
  EXPECT_THROW(generate_trace(config), ConfigError);
  config = {};
  config.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_trace(config), ConfigError);
  config = {};
  config.deadline = -0.1;
  EXPECT_THROW(generate_trace(config), ConfigError);
}

// --- Admission queue -------------------------------------------------------

TEST(BoundedQueue, RejectsWhenFullAndCounts) {
  BoundedQueue q(3);
  for (std::int64_t i = 0; i < 5; ++i) {
    Request r;
    r.id = i;
    r.arrival = static_cast<double>(i);
    EXPECT_EQ(q.offer(r), i < 3);
  }
  EXPECT_EQ(q.admitted(), 3);
  EXPECT_EQ(q.rejected(), 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front().id, 0);
  const auto popped = q.pop(2);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].id, 0);
  EXPECT_EQ(popped[1].id, 1);
  EXPECT_EQ(q.pop(10).size(), 1u);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(BoundedQueue(0), ConfigError);
}

// --- Dynamic batcher -------------------------------------------------------

Request at(std::int64_t id, double arrival) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  return r;
}

TEST(DynamicBatcher, SizeTriggerFiresWhenFull) {
  DynamicBatcher batcher({/*max_batch=*/3, /*timeout=*/1.0}, 16);
  EXPECT_EQ(batcher.next_flush_time(0.0), std::nullopt);
  batcher.offer(at(0, 0.0));
  batcher.offer(at(1, 0.1));
  // Partial batch: flush when the oldest request has aged out.
  EXPECT_DOUBLE_EQ(*batcher.next_flush_time(0.2), 1.0);
  batcher.offer(at(2, 0.2));
  // Full batch: ready the instant the replica is free.
  EXPECT_DOUBLE_EQ(*batcher.next_flush_time(0.2), 0.2);
  const Batch b = batcher.flush(0.2);
  EXPECT_EQ(b.trigger, FlushTrigger::kSize);
  EXPECT_EQ(b.index, 0);
  ASSERT_EQ(b.requests.size(), 3u);
  EXPECT_EQ(batcher.size_flushes(), 1);
  EXPECT_EQ(batcher.timeout_flushes(), 0);
}

TEST(DynamicBatcher, TimeoutTriggerAndBusyReplicaClamp) {
  DynamicBatcher batcher({/*max_batch=*/4, /*timeout=*/0.5}, 16);
  batcher.offer(at(0, 2.0));
  EXPECT_DOUBLE_EQ(*batcher.next_flush_time(0.0), 2.5);
  // A busy replica postpones even an aged-out batch.
  EXPECT_DOUBLE_EQ(*batcher.next_flush_time(3.25), 3.25);
  const Batch b = batcher.flush(2.5);
  EXPECT_EQ(b.trigger, FlushTrigger::kTimeout);
  EXPECT_DOUBLE_EQ(b.cut_time, 2.5);
  EXPECT_EQ(batcher.timeout_flushes(), 1);
  EXPECT_EQ(batcher.batches(), 1);
}

TEST(DynamicBatcher, Validation) {
  EXPECT_THROW(DynamicBatcher({0, 1.0}, 16), ConfigError);
  EXPECT_THROW(DynamicBatcher({4, -1.0}, 16), ConfigError);
  EXPECT_THROW(DynamicBatcher({8, 1.0}, 4), ConfigError);  // capacity < batch
}

// --- Latency histogram -----------------------------------------------------

TEST(LatencyHistogram, QuantilesWithinRelativeError) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(i * 1.0e-4);  // 0.1ms .. 100ms
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.min(), 1.0e-4);
  EXPECT_DOUBLE_EQ(h.max(), 0.1);
  EXPECT_NEAR(h.mean(), 0.05005, 1e-9);
  // Log-bucketed quantiles carry ~2^(1/8) relative error.
  EXPECT_NEAR(h.quantile(0.5), 0.05, 0.05 * 0.10);
  EXPECT_NEAR(h.quantile(0.95), 0.095, 0.095 * 0.10);
  EXPECT_NEAR(h.quantile(0.99), 0.099, 0.099 * 0.10);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(LatencyHistogram, EdgeCases) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.add(-1.0);  // clamped to zero
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  h.add(3.0e-3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0e-3);
  EXPECT_THROW(LatencyHistogram(0.0), ConfigError);
}

// --- Satellite: typed batch validation in the executor ---------------------

TEST(InferenceSession, RejectsNonPositiveBatch) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  simgpu::Device device(simgpu::a5500_spec());
  ios::InferenceSession session(g, s, device);
  session.initialize();
  EXPECT_THROW(session.run(0), ConfigError);
  EXPECT_THROW(session.run(-3), ConfigError);
  EXPECT_GT(session.run(1).latency_seconds, 0.0);
}

// --- Satellite: seedable backoff jitter ------------------------------------

TEST(SeededBackoff, SeededStreamsReproduceAndReseed) {
  RetryPolicy policy;
  policy.base_backoff = 1.0e-3;
  policy.multiplier = 2.0;
  policy.max_backoff = 1.0;
  policy.jitter = 0.5;
  SeededBackoff a(policy, 42);
  SeededBackoff b(policy, 42);
  SeededBackoff c(policy, 43);
  std::vector<double> first;
  bool any_differs = false;
  for (int retry = 1; retry <= 6; ++retry) {
    const double da = a.delay(retry);
    EXPECT_DOUBLE_EQ(da, b.delay(retry));
    any_differs = any_differs || da != c.delay(retry);
    // Jitter stays within [1 - j, 1 + j) of the exponential envelope.
    const double exact = std::min(
        policy.base_backoff * std::pow(policy.multiplier, retry - 1),
        policy.max_backoff);
    EXPECT_GE(da, exact * 0.5);
    EXPECT_LT(da, exact * 1.5);
    first.push_back(da);
  }
  EXPECT_TRUE(any_differs);  // different seed, different jitter
  a.reseed(42);
  for (int retry = 1; retry <= 6; ++retry) {
    EXPECT_DOUBLE_EQ(a.delay(retry),
                     first[static_cast<std::size_t>(retry - 1)]);
  }
}

TEST(SeededBackoff, NoJitterIsExact) {
  RetryPolicy policy;  // jitter = 0
  SeededBackoff b(policy, 99);
  EXPECT_DOUBLE_EQ(b.delay(1), policy.base_backoff);
  EXPECT_DOUBLE_EQ(b.delay(2), policy.base_backoff * 2.0);
}

// --- Server ----------------------------------------------------------------

TEST(Server, AccountingIdentitiesAndOrderedLog) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.seed = 11;
  traffic.duration = 2.0;
  traffic.rate = 400.0;
  traffic.burst_factor = 1.0;
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 32;
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);

  EXPECT_EQ(report.offered, static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(report.offered, report.admitted + report.rejected);
  EXPECT_EQ(report.admitted,
            report.completed + report.deadline_expired + report.failed);
  EXPECT_EQ(report.completed, report.latency.count());
  EXPECT_EQ(report.batches, report.size_flushes + report.timeout_flushes);
  EXPECT_GT(report.completed, 0);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_LE(report.p50, report.p95);
  EXPECT_LE(report.p95, report.p99);

  // Exactly one completion record per offered request, sorted by id.
  const auto& log = server.log();
  ASSERT_EQ(log.size(), trace.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].id, static_cast<std::int64_t>(i));
    if (log[i].status == RequestStatus::kCompleted) {
      EXPECT_GE(log[i].completion, log[i].arrival);
      EXPECT_LE(log[i].batch_size, config.batch.max_batch);
    }
  }
  EXPECT_NE(report.to_string().find("Serving Statistics"), std::string::npos);
}

TEST(Server, OverloadShedsAtAdmission) {
  const auto g = branched_graph();
  const auto s = ios::optimize_schedule(g, simgpu::tiny_spec());
  TrafficConfig traffic;
  traffic.duration = 0.5;
  // Far beyond what a warm tiny_spec replica can serve: the fleet no
  // longer pays initialization on the trace timeline, so the overload
  // has to come from the offered rate alone.
  traffic.rate = 20000.0;
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {4, 1.0e-3};
  config.queue_capacity = 4;
  config.device = simgpu::tiny_spec();
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);
  EXPECT_GT(report.rejected, 0);
  EXPECT_GT(report.reject_rate(), 0.0);
  EXPECT_EQ(report.offered, report.admitted + report.rejected);
  EXPECT_EQ(report.max_queue_depth, 4);
}

TEST(Server, DeadlinesExpireInQueueAndSloIsTracked) {
  const auto g = branched_graph();
  const auto s = ios::optimize_schedule(g, simgpu::tiny_spec());
  TrafficConfig traffic;
  traffic.duration = 0.5;
  traffic.rate = 1000.0;
  traffic.deadline = 2.0e-4;  // tighter than tiny_spec service time
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {4, 1.0e-3};
  config.queue_capacity = 16;
  config.device = simgpu::tiny_spec();
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);
  EXPECT_EQ(report.slo_tracked, report.offered - report.rejected);
  EXPECT_LT(report.slo_attainment(), 1.0);
  EXPECT_GT(report.deadline_expired + (report.slo_tracked - report.slo_met), 0);
  for (const CompletionRecord& r : server.log()) {
    if (r.status == RequestStatus::kDeadlineExpired) {
      EXPECT_LT(r.deadline, r.completion);
      EXPECT_FALSE(r.deadline_met);
    }
  }
}

TEST(Server, FaultedRunCompletesAllAdmittedRequests) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.seed = 5;
  traffic.duration = 2.0;
  traffic.rate = 150.0;
  const auto trace = generate_trace(traffic);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.resilient.retry.max_attempts = 8;
  config.resilient.retry.base_backoff = 1.0e-4;
  config.resilient.retry.max_backoff = 1.0e-3;
  config.resilient.retry.jitter = 0.3;
  config.faults.seed = 1234;
  config.faults.fail_with_probability(simgpu::FaultKind::kLaunchFailure, 0.02,
                                      -1);
  Server server(g, s, config);
  const ServingReport report = server.serve(trace);
  EXPECT_EQ(report.rejected, 0);  // light load: nothing shed
  EXPECT_EQ(report.failed, 0);    // retry budget absorbs every fault
  EXPECT_EQ(report.deadline_expired, 0);
  EXPECT_EQ(report.completed, report.admitted);
  EXPECT_GT(report.transient_retries, 0);
}

// The acceptance criterion: with a fixed seed the per-request completion
// log is byte-identical no matter how many replicas serve the trace — even
// under an injected fault plan — because batch cuts are arrival-driven and
// every batch's fault/backoff randomness is salted by batch index, not by
// replica identity or history.
TEST(Server, CompletionLogIsByteIdenticalAcrossReplicaCounts) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  const double service = service_seconds(g, s, 8);

  TrafficConfig traffic;
  traffic.seed = 21;
  traffic.duration = 5.0;
  // Light-load regime: mean inter-arrival many times the batch service
  // time, so no batch ever waits on a busy replica and the replica count
  // cannot perturb cut times.
  traffic.rate = 1.0 / (20.0 * (service + 4.0e-3));
  traffic.deadline = 0.25;
  const auto trace = generate_trace(traffic);
  ASSERT_GT(trace.size(), 10u);

  ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.resilient.retry.max_attempts = 6;
  config.resilient.retry.base_backoff = 1.0e-4;
  config.resilient.retry.max_backoff = 5.0e-4;
  config.resilient.retry.jitter = 0.5;
  config.faults.seed = 77;
  config.faults.fail_with_probability(simgpu::FaultKind::kLaunchFailure, 0.05,
                                      -1);

  auto run = [&](int replicas) {
    ServerConfig c = config;
    c.replicas = replicas;
    Server server(g, s, c);
    server.serve(trace);
    return Server::log_to_csv(server.log());
  };
  const std::string one = run(1);
  const std::string again = run(1);
  const std::string three = run(3);
  EXPECT_EQ(one, again);   // run-to-run determinism
  EXPECT_EQ(one, three);   // replica-count invariance
  EXPECT_NE(one.find("id,status,arrival_ns"), std::string::npos);
  EXPECT_EQ(one.find("replica"), std::string::npos);
}

TEST(Server, Validation) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  ServerConfig config;
  config.replicas = 0;
  EXPECT_THROW(Server(g, s, config), ConfigError);
}

TEST(Server, RecordsCounterSamplesIntoTrace) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.duration = 1.0;
  traffic.rate = 200.0;
  profiler::Recorder recorder;
  ServerConfig config;
  Server server(g, s, config, &recorder);
  server.serve(generate_trace(traffic));

  bool saw_depth = false;
  bool saw_batch = false;
  for (const auto& sample : recorder.counter_samples()) {
    saw_depth = saw_depth || sample.name == "serve.queue_depth";
    saw_batch = saw_batch || sample.name == "serve.batch_size";
  }
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_batch);
  const std::string trace_json = profiler::to_chrome_trace(recorder);
  EXPECT_NE(trace_json.find("serve.queue_depth"), std::string::npos);
  EXPECT_NE(trace_json.find("\"ph\": \"C\""), std::string::npos);
}

// Two servers on concurrent threads: exercises the shared profiler counter
// registry under tsan and checks concurrency does not change results.
TEST(Server, ConcurrentServersMatchSerialRuns) {
  const auto g = branched_graph();
  const auto s = schedule_for(g);
  TrafficConfig traffic;
  traffic.duration = 1.0;
  traffic.rate = 300.0;
  const auto trace = generate_trace(traffic);

  auto serve_once = [&]() {
    ServerConfig config;
    config.batch = {4, 2.0e-3};
    Server server(g, s, config);
    server.serve(trace);
    return Server::log_to_csv(server.log());
  };
  const std::string expected = serve_once();
  std::string from_a;
  std::string from_b;
  std::thread ta([&] { from_a = serve_once(); });
  std::thread tb([&] { from_b = serve_once(); });
  ta.join();
  tb.join();
  EXPECT_EQ(from_a, expected);
  EXPECT_EQ(from_b, expected);
}

}  // namespace
}  // namespace dcn::serve
