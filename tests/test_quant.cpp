// Post-training INT8 quantization: primitives, the qgemm kernel, the
// calibration pass, the quantized detector, precision-aware scheduling and
// caching, precision-expanded selection, and precision-configurable serving.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "detect/calibration.hpp"
#include "detect/quantized_sppnet.hpp"
#include "detect/sppnet_config.hpp"
#include "detect/trainer.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/schedule_cache.hpp"
#include "ios/scheduler.hpp"
#include "nas/selection.hpp"
#include "serve/server.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"
#include "simgpu/spec.hpp"
#include "tensor/qgemm.hpp"
#include "tensor/quantize.hpp"

namespace dcn {
namespace {

// --- Quantization primitives ------------------------------------------------

TEST(QuantParamsTest, CoversRangeAndRepresentsZeroExactly) {
  const QuantParams p = choose_quant_params(-3.5f, 10.0f);
  EXPECT_GT(p.scale, 0.0f);
  EXPECT_GE(p.zero_point, 0);
  EXPECT_LE(p.zero_point, 255);
  // 0.0 must round-trip exactly (padding zeros, ReLU outputs).
  EXPECT_EQ(p.quantize(0.0f), p.zero_point);
  EXPECT_EQ(p.dequantize(p.quantize(0.0f)), 0.0f);
  // Endpoints land within half a step.
  EXPECT_NEAR(p.dequantize(p.quantize(-3.5f)), -3.5f, 0.5f * p.scale + 1e-6f);
  EXPECT_NEAR(p.dequantize(p.quantize(10.0f)), 10.0f, 0.5f * p.scale + 1e-6f);
}

TEST(QuantParamsTest, PositiveOnlyRangeWidensThroughZero) {
  // [2, 8] widens to [0, 8] so zero_point = 0 exactly.
  const QuantParams p = choose_quant_params(2.0f, 8.0f);
  EXPECT_EQ(p.zero_point, 0);
  EXPECT_EQ(p.quantize(0.0f), 0);
}

TEST(QuantParamsTest, DegenerateRangeIsIdentityish) {
  const QuantParams p = choose_quant_params(0.0f, 0.0f);
  EXPECT_EQ(p.scale, 1.0f);
  EXPECT_EQ(p.zero_point, 0);
}

TEST(QuantParamsTest, RoundTripErrorBoundedByHalfStep) {
  Rng rng(42);
  const QuantParams p = choose_quant_params(-2.0f, 6.0f);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.uniform(-2.0, 6.0));
    const float back = p.dequantize(p.quantize(x));
    EXPECT_NEAR(back, x, 0.5f * p.scale + 1e-6f);
  }
}

TEST(QuantizeTest, BulkMatchesScalarAndSaturates) {
  const QuantParams p = choose_quant_params(-1.0f, 1.0f);
  const std::vector<float> src = {-5.0f, -1.0f, -0.25f, 0.0f,
                                  0.25f, 1.0f,  5.0f};
  std::vector<std::uint8_t> q(src.size());
  quantize_u8(src.data(), static_cast<std::int64_t>(src.size()), p, q.data());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(q[i], p.quantize(src[i]));
  }
  EXPECT_EQ(q.front(), 0);    // saturates below
  EXPECT_EQ(q.back(), 255);   // saturates above
  std::vector<float> back(src.size());
  dequantize_u8(q.data(), static_cast<std::int64_t>(q.size()), p,
                back.data());
  for (std::size_t i = 1; i + 1 < src.size(); ++i) {
    EXPECT_NEAR(back[i], src[i], 0.5f * p.scale + 1e-6f);
  }
}

TEST(QuantizeTest, SymmetricWeightsStayInNarrowRangeAndRoundTrip) {
  Rng rng(7);
  const std::int64_t rows = 5, cols = 13;
  std::vector<float> w(static_cast<std::size_t>(rows * cols));
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 2.0));
  const QuantizedWeights q = quantize_weights_per_channel(w.data(), rows,
                                                          cols);
  ASSERT_TRUE(q.per_channel());
  ASSERT_EQ(q.scales.size(), static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float scale = q.scales[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int8_t iq = q.data[static_cast<std::size_t>(r * cols + c)];
      EXPECT_GE(iq, -127);  // -128 is never produced
      EXPECT_LE(iq, 127);
      EXPECT_NEAR(scale * static_cast<float>(iq),
                  w[static_cast<std::size_t>(r * cols + c)],
                  0.5f * scale + 1e-6f);
    }
  }
}

TEST(QuantizeTest, PerChannelBeatsPerTensorOnDisparateRows) {
  // Row 0 has tiny weights, row 1 huge ones: a shared scale crushes row 0's
  // resolution; per-channel scales keep both rows accurate.
  const std::int64_t rows = 2, cols = 8;
  std::vector<float> w(static_cast<std::size_t>(rows * cols));
  Rng rng(3);
  for (std::int64_t c = 0; c < cols; ++c) {
    w[static_cast<std::size_t>(c)] =
        static_cast<float>(rng.uniform(-0.01, 0.01));
    w[static_cast<std::size_t>(cols + c)] =
        static_cast<float>(rng.uniform(-100.0, 100.0));
  }
  const QuantizedWeights per_channel =
      quantize_weights_per_channel(w.data(), rows, cols);
  const QuantizedWeights per_tensor =
      quantize_weights_per_tensor(w.data(), rows, cols);
  const auto row_error = [&](const QuantizedWeights& q, std::int64_t r) {
    double err = 0.0;
    const float scale = q.per_channel()
                            ? q.scales[static_cast<std::size_t>(r)]
                            : q.scales[0];
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::size_t i = static_cast<std::size_t>(r * cols + c);
      err += std::abs(scale * static_cast<float>(q.data[i]) - w[i]);
    }
    return err;
  };
  EXPECT_LT(row_error(per_channel, 0), 0.1 * row_error(per_tensor, 0));
  // The big row is fine either way.
  EXPECT_NEAR(row_error(per_channel, 1), row_error(per_tensor, 1),
              row_error(per_channel, 1) + 1.0);
}

// --- qgemm ------------------------------------------------------------------

struct QgemmProblem {
  std::int64_t m, n, k;
  std::vector<std::int8_t> a;
  std::vector<float> a_scales;  // per-channel
  std::vector<std::uint8_t> b;
  QuantParams b_params;
  std::vector<float> bias;
};

QgemmProblem make_problem(std::int64_t m, std::int64_t n, std::int64_t k,
                          std::uint64_t seed) {
  QgemmProblem p;
  p.m = m;
  p.n = n;
  p.k = k;
  Rng rng(seed);
  p.a.resize(static_cast<std::size_t>(m * k));
  for (auto& v : p.a)
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  p.a_scales.resize(static_cast<std::size_t>(m));
  for (auto& s : p.a_scales) s = static_cast<float>(rng.uniform(0.001, 0.1));
  p.b.resize(static_cast<std::size_t>(k * n));
  for (auto& v : p.b)
    v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  p.b_params.scale = 0.05f;
  p.b_params.zero_point = 97;
  p.bias.resize(static_cast<std::size_t>(m));
  for (auto& v : p.bias) v = static_cast<float>(rng.normal(0.0, 1.0));
  return p;
}

TEST(QgemmTest, BlockedMatchesReferenceBitExact) {
  // Sizes spanning one partial band, exactly one band, and multiple bands
  // (kQBandRows = 64), with the fused bias+ReLU epilogue on.
  const std::int64_t sizes[][3] = {
      {1, 1, 1}, {7, 5, 3}, {64, 17, 9}, {130, 33, 27}, {200, 8, 150}};
  for (const auto& s : sizes) {
    const QgemmProblem p = make_problem(s[0], s[1], s[2], 1000 + s[0]);
    QuantEpilogue epilogue;
    epilogue.row_bias = p.bias.data();
    epilogue.relu = true;
    std::vector<float> blocked(static_cast<std::size_t>(p.m * p.n), -1.0f);
    std::vector<float> reference(static_cast<std::size_t>(p.m * p.n), -2.0f);
    qgemm(p.m, p.n, p.k, p.a.data(), p.k, p.a_scales.data(), p.m, p.b.data(),
          p.n, p.b_params, blocked.data(), p.n, epilogue);
    qgemm_reference(p.m, p.n, p.k, p.a.data(), p.k, p.a_scales.data(), p.m,
                    p.b.data(), p.n, p.b_params, reference.data(), p.n,
                    epilogue);
    EXPECT_EQ(std::memcmp(blocked.data(), reference.data(),
                          blocked.size() * sizeof(float)),
              0)
        << "m=" << p.m << " n=" << p.n << " k=" << p.k;
  }
}

TEST(QgemmTest, PerTensorScaleMatchesReference) {
  const QgemmProblem p = make_problem(70, 11, 20, 55);
  const float scale = 0.03f;
  std::vector<float> blocked(static_cast<std::size_t>(p.m * p.n));
  std::vector<float> reference(static_cast<std::size_t>(p.m * p.n));
  qgemm(p.m, p.n, p.k, p.a.data(), p.k, &scale, 1, p.b.data(), p.n,
        p.b_params, blocked.data(), p.n);
  qgemm_reference(p.m, p.n, p.k, p.a.data(), p.k, &scale, 1, p.b.data(),
                  p.n, p.b_params, reference.data(), p.n);
  EXPECT_EQ(std::memcmp(blocked.data(), reference.data(),
                        blocked.size() * sizeof(float)),
            0);
}

TEST(QgemmTest, KZeroRunsOnlyTheEpilogue) {
  const std::int64_t m = 3, n = 4;
  const float scale = 1.0f;
  const float bias[3] = {1.5f, -2.0f, 0.25f};
  QuantEpilogue epilogue;
  epilogue.row_bias = bias;
  epilogue.relu = true;
  std::vector<float> c(static_cast<std::size_t>(m * n), -9.0f);
  qgemm(m, n, 0, nullptr, 0, &scale, 1, nullptr, n, QuantParams{}, c.data(),
        n, epilogue);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(c[static_cast<std::size_t>(i * n + j)],
                std::max(bias[i], 0.0f));
    }
  }
}

TEST(QgemmTest, MatchesFloatGemmWithinQuantizationError) {
  // Quantize a random float problem, run qgemm, and compare against the
  // float product. The error budget follows from the per-element round-off:
  // each A[m,k]*B[k,n] term carries at most (|a|*eb + |b|*ea + ea*eb) with
  // ea <= a_scale/2, eb <= b_scale/2 — summed over k.
  Rng rng(99);
  const std::int64_t m = 24, n = 18, k = 40;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-3.0, 3.0));

  const QuantizedWeights qa = quantize_weights_per_channel(a.data(), m, k);
  const QuantParams bp = choose_quant_params(-3.0f, 3.0f);
  std::vector<std::uint8_t> qb(b.size());
  quantize_u8(b.data(), static_cast<std::int64_t>(b.size()), bp, qb.data());

  std::vector<float> quantized(static_cast<std::size_t>(m * n));
  qgemm(qa, qb.data(), n, n, bp, quantized.data(), n);

  double max_abs_error = 0.0;
  double max_budget = 0.0;
  for (std::int64_t i = 0; i < m; ++i) {
    const double ea = 0.5 * qa.scales[static_cast<std::size_t>(i)];
    const double eb = 0.5 * bp.scale;
    for (std::int64_t j = 0; j < n; ++j) {
      double exact = 0.0;
      double budget = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double av = a[static_cast<std::size_t>(i * k + kk)];
        const double bv = b[static_cast<std::size_t>(kk * n + j)];
        exact += av * bv;
        budget += std::abs(av) * eb + std::abs(bv) * ea + ea * eb;
      }
      const double err = std::abs(
          quantized[static_cast<std::size_t>(i * n + j)] - exact);
      max_abs_error = std::max(max_abs_error, err);
      max_budget = std::max(max_budget, budget);
      EXPECT_LE(err, budget + 1e-4) << "at (" << i << ", " << j << ")";
    }
  }
  // The bound should not be vacuous: typical error is far below it.
  EXPECT_LT(max_abs_error, max_budget);
}

TEST(QgemmTest, OutputIsBitIdenticalAcrossThreadCounts) {
  const QgemmProblem p = make_problem(192, 21, 35, 2024);  // 3 bands
  QuantEpilogue epilogue;
  epilogue.row_bias = p.bias.data();
  const auto run_with = [&](int threads) {
    set_num_threads(threads);
    std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
    qgemm(p.m, p.n, p.k, p.a.data(), p.k, p.a_scales.data(), p.m, p.b.data(),
          p.n, p.b_params, c.data(), p.n, epilogue);
    return c;
  };
  const std::vector<float> c1 = run_with(1);
  const std::vector<float> c4 = run_with(4);
  set_num_threads(1);
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)), 0);
}

// --- Calibration ------------------------------------------------------------

TEST(CalibrationTest, ObserverTracksMinMax) {
  detect::RangeObserver observer;
  EXPECT_TRUE(observer.empty());
  const float chunk1[] = {1.0f, -2.0f, 3.0f};
  const float chunk2[] = {0.5f, 7.0f};
  observer.observe(chunk1, 3);
  observer.observe(chunk2, 2);
  EXPECT_EQ(observer.count(), 5);
  EXPECT_EQ(observer.min_value(), -2.0f);
  EXPECT_EQ(observer.max_value(), 7.0f);
  detect::CalibrationOptions options;  // kMinMax
  const auto [lo, hi] = observer.range(options);
  EXPECT_EQ(lo, -2.0f);
  EXPECT_EQ(hi, 7.0f);
}

TEST(CalibrationTest, PercentileClipsOutliers) {
  detect::RangeObserver observer;
  Rng rng(17);
  std::vector<float> values(20000);
  for (float& v : values) v = static_cast<float>(rng.normal(0.0, 1.0));
  values[123] = 1000.0f;   // outliers the clip should saturate
  values[4567] = -1000.0f;
  observer.observe(values.data(), static_cast<std::int64_t>(values.size()));

  detect::CalibrationOptions minmax;
  detect::CalibrationOptions clipped;
  clipped.method = detect::CalibrationMethod::kPercentile;
  clipped.percentile = 0.99;
  const auto [mlo, mhi] = observer.range(minmax);
  const auto [clo, chi] = observer.range(clipped);
  EXPECT_EQ(mlo, -1000.0f);
  EXPECT_EQ(mhi, 1000.0f);
  // The clipped range hugs the bulk of the normal distribution.
  EXPECT_GT(clo, -10.0f);
  EXPECT_LT(chi, 10.0f);
  EXPECT_LT(clo, 0.0f);
  EXPECT_GT(chi, 0.0f);
  // And the quantization step improves by orders of magnitude.
  const QuantParams wide = observer.quant_params(minmax);
  const QuantParams tight = observer.quant_params(clipped);
  EXPECT_LT(tight.scale, 0.01f * wide.scale);
}

TEST(CalibrationTest, ObserverIsChunkingInvariant) {
  // The decimation scheme depends only on the global element index, so
  // feeding values one at a time matches feeding them all at once.
  Rng rng(23);
  std::vector<float> values(5000);
  for (float& v : values) v = static_cast<float>(rng.normal(0.0, 2.0));
  detect::RangeObserver whole;
  whole.observe(values.data(), static_cast<std::int64_t>(values.size()));
  detect::RangeObserver pieces;
  for (const float& v : values) pieces.observe(&v, 1);
  detect::CalibrationOptions options;
  options.method = detect::CalibrationMethod::kPercentile;
  options.percentile = 0.95;
  const auto [wl, wh] = whole.range(options);
  const auto [pl, ph] = pieces.range(options);
  EXPECT_EQ(wl, pl);
  EXPECT_EQ(wh, ph);
}

TEST(CalibrationTest, SplitIsSeededSortedAndBounded) {
  const auto split = detect::calibration_split(100, 10, 77);
  ASSERT_EQ(split.size(), 10u);
  for (std::size_t i = 1; i < split.size(); ++i) {
    EXPECT_LT(split[i - 1], split[i]);  // sorted, unique
  }
  for (const std::int64_t idx : split) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 100);
  }
  EXPECT_EQ(split, detect::calibration_split(100, 10, 77));
  EXPECT_NE(split, detect::calibration_split(100, 10, 78));
  // 0 (or oversized) requests select everything.
  const auto all = detect::calibration_split(6, 0, 1);
  ASSERT_EQ(all.size(), 6u);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(detect::calibration_split(6, 99, 1).size(), 6u);
}

// --- Quantized SPP-Net ------------------------------------------------------

geo::DatasetConfig tiny_dataset_config() {
  geo::DatasetConfig config;
  config.seed = 11;
  config.num_worlds = 1;
  config.terrain.rows = 256;
  config.terrain.cols = 256;
  config.roads.spacing = 64;
  config.stream_threshold = 200.0;
  config.patch_size = 24;
  config.positive_jitter = 2;
  config.augment_flips = true;
  return config;
}

detect::SppNetConfig tiny_model_config() {
  return detect::parse_notation(
      "C_{6,3,1}-P_{2,2}-C_{8,3,1}-P_{2,2}-SPP_{2,1}-F_{24}", 4);
}

class QuantizedNetTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kWarn);
    dataset_ = new geo::DrainageDataset(
        geo::DrainageDataset::synthesize(tiny_dataset_config()));
    split_ = new geo::Split(dataset_->split(0.8, 3));
    Rng rng(5);
    model_ = new detect::SppNet(tiny_model_config(), rng);
    detect::TrainConfig config;
    config.epochs = 8;
    config.verbose = false;
    (void)detect::train_detector(*model_, *dataset_, *split_, config);
    const auto indices = detect::calibration_split(
        static_cast<std::int64_t>(split_->train.size()), 8, 11);
    std::vector<std::size_t> picks;
    for (const std::int64_t i : indices) {
      picks.push_back(split_->train[static_cast<std::size_t>(i)]);
    }
    calibration_ = new Tensor(dataset_->make_batch(picks).images);
  }
  static void TearDownTestSuite() {
    delete calibration_;
    delete model_;
    delete split_;
    delete dataset_;
    calibration_ = nullptr;
    model_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }
  static geo::DrainageDataset* dataset_;
  static geo::Split* split_;
  static detect::SppNet* model_;
  static Tensor* calibration_;
};

geo::DrainageDataset* QuantizedNetTest::dataset_ = nullptr;
geo::Split* QuantizedNetTest::split_ = nullptr;
detect::SppNet* QuantizedNetTest::model_ = nullptr;
Tensor* QuantizedNetTest::calibration_ = nullptr;

TEST_F(QuantizedNetTest, ForwardTracksFloatModel) {
  detect::QuantizedSppNet quantized(*model_, *calibration_);
  model_->set_training(false);
  const Tensor expected = model_->forward(*calibration_);
  const Tensor actual = quantized.forward(*calibration_);
  ASSERT_EQ(actual.shape().to_string(), expected.shape().to_string());
  double max_error = 0.0;
  double max_magnitude = 0.0;
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    max_error = std::max(
        max_error,
        static_cast<double>(std::abs(actual.data()[i] - expected.data()[i])));
    max_magnitude = std::max(
        max_magnitude, static_cast<double>(std::abs(expected.data()[i])));
  }
  // Quantization error accumulates through the layers but should stay a
  // small fraction of the output magnitude.
  EXPECT_LT(max_error, 0.15 * max_magnitude + 0.05);
}

TEST_F(QuantizedNetTest, AccuracyDropStaysWithinOnePoint) {
  const double float_ap =
      detect::evaluate_detector(*model_, *dataset_, split_->test)
          .average_precision;
  detect::QuantizedSppNet quantized(*model_, *calibration_);
  const double int8_ap =
      detect::evaluate_detector(quantized, *dataset_, split_->test)
          .average_precision;
  EXPECT_GT(float_ap, 0.5);  // the float model actually learned something
  EXPECT_GE(int8_ap, float_ap - 0.01);  // <= 1.0 AP point drop
}

TEST_F(QuantizedNetTest, ForwardIsBitIdenticalAcrossThreadCounts) {
  detect::QuantizedSppNet quantized(*model_, *calibration_);
  set_num_threads(1);
  const Tensor once = quantized.forward(*calibration_);
  set_num_threads(4);
  const Tensor again = quantized.forward(*calibration_);
  set_num_threads(1);
  ASSERT_EQ(once.numel(), again.numel());
  EXPECT_EQ(std::memcmp(once.data(), again.data(),
                        static_cast<std::size_t>(once.numel()) *
                            sizeof(float)),
            0);
}

TEST_F(QuantizedNetTest, ReQuantizingReproducesBitIdenticalOutputs) {
  detect::QuantizedSppNet first(*model_, *calibration_);
  detect::QuantizedSppNet second(*model_, *calibration_);
  const Tensor a = first.forward(*calibration_);
  const Tensor b = second.forward(*calibration_);
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0);
}

TEST_F(QuantizedNetTest, BackwardThrows) {
  detect::QuantizedSppNet quantized(*model_, *calibration_);
  EXPECT_THROW(quantized.backward(*calibration_), Error);
}

TEST_F(QuantizedNetTest, ObservesOneRangePerQuantizedLayer) {
  detect::QuantizedSppNet quantized(*model_, *calibration_);
  // tiny_model_config: two convs + one hidden FC + the 5-way head.
  EXPECT_EQ(quantized.activation_params().size(), 4u);
  for (const QuantParams& p : quantized.activation_params()) {
    EXPECT_GT(p.scale, 0.0f);
  }
}

// --- Precision-aware kernels, cost model, schedules -------------------------

TEST(PrecisionTest, NamesRoundTrip) {
  EXPECT_STREQ(simgpu::precision_name(simgpu::Precision::kFp32), "fp32");
  EXPECT_STREQ(simgpu::precision_name(simgpu::Precision::kInt8), "int8");
  EXPECT_EQ(simgpu::precision_from_name("fp32"), simgpu::Precision::kFp32);
  EXPECT_EQ(simgpu::precision_from_name("int8"), simgpu::Precision::kInt8);
  EXPECT_THROW(simgpu::precision_from_name("fp16"), ConfigError);
}

TEST(PrecisionTest, Int8DescriptorsCarryQuarterBytesSameFlops) {
  const graph::Graph g =
      graph::build_inference_graph(detect::original_sppnet(), 40);
  bool checked_conv = false;
  for (const graph::OpId id : g.topological_order()) {
    if (!simgpu::is_device_op(g.node(id).kind)) continue;
    const simgpu::KernelDesc fp32 = simgpu::make_kernel_desc(g, id);
    const simgpu::KernelDesc int8 =
        simgpu::make_kernel_desc(g, id, simgpu::Precision::kInt8);
    EXPECT_EQ(int8.precision, simgpu::Precision::kInt8);
    EXPECT_EQ(int8.flops_per_sample, fp32.flops_per_sample);
    EXPECT_EQ(int8.activation_bytes_per_sample,
              0.25 * fp32.activation_bytes_per_sample);
    EXPECT_EQ(int8.weight_bytes, 0.25 * fp32.weight_bytes);
    if (fp32.category == profiler::KernelCategory::kConv &&
        fp32.weight_bytes > 0.0) {
      checked_conv = true;
      EXPECT_TRUE(simgpu::int8_compute_eligible(fp32.category));
    }
  }
  EXPECT_TRUE(checked_conv);
}

TEST(PrecisionTest, Int8InferenceIsFasterOnTheSimulatedDevice) {
  const graph::Graph g =
      graph::build_inference_graph(detect::original_sppnet(), 100);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  simgpu::Device fp32_device(spec);
  simgpu::Device int8_device(spec);
  const double fp32_latency =
      ios::measure_latency(g, schedule, fp32_device, 1);
  const double int8_latency = ios::measure_latency(
      g, schedule, int8_device, 1, 1, 3, simgpu::Precision::kInt8);
  EXPECT_GT(fp32_latency, 0.0);
  EXPECT_GT(int8_latency, 0.0);
  // The acceptance floor (>= 1.5x) is asserted by bench_quant on the
  // selected model; here we pin a conservative version of it.
  EXPECT_GE(fp32_latency / int8_latency, 1.5);
}

TEST(PrecisionTest, ScheduleCostDependsOnPrecision) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate1(), 40);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  ios::ScheduleCache::global().set_enabled(false);
  const double fp32_cost = ios::schedule_cost(g, spec, schedule, 4);
  const double int8_cost = ios::schedule_cost(g, spec, schedule, 4,
                                              simgpu::Precision::kInt8);
  ios::ScheduleCache::global().set_enabled(true);
  EXPECT_LT(int8_cost, fp32_cost);
}

// --- Schedule-cache precision keys (regression: cross-precision collision) --

TEST(CacheKeyTest, CostKeysDifferByPrecision) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 40);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  const std::string fp32_key = ios::cost_cache_key(g, spec, schedule, 4);
  const std::string int8_key =
      ios::cost_cache_key(g, spec, schedule, 4, simgpu::Precision::kInt8);
  EXPECT_NE(fp32_key, int8_key);
}

TEST(CacheKeyTest, BlockKeysDifferByPrecision) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 40);
  const auto spec = simgpu::a5500_spec();
  std::vector<graph::OpId> ops;
  for (const graph::OpId id : g.topological_order()) {
    if (simgpu::is_device_op(g.node(id).kind)) ops.push_back(id);
  }
  ios::IosOptions fp32_options;
  ios::IosOptions int8_options;
  int8_options.precision = simgpu::Precision::kInt8;
  EXPECT_NE(ios::block_cache_key(g, ops, spec, fp32_options),
            ios::block_cache_key(g, ops, spec, int8_options));
}

TEST(CacheKeyTest, CachedCostSurvivesCrossPrecisionInterleaving) {
  // The original bug: an int8 evaluation warming the cache must not poison
  // a later fp32 lookup of the same schedule (and vice versa).
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate3(), 40);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  auto& cache = ios::ScheduleCache::global();

  cache.set_enabled(false);
  const double uncached_fp32 = ios::schedule_cost(g, spec, schedule, 2);
  const double uncached_int8 =
      ios::schedule_cost(g, spec, schedule, 2, simgpu::Precision::kInt8);
  cache.set_enabled(true);
  cache.clear();

  // Warm the cache with int8 first, then read fp32 (and the reverse).
  const double int8_first =
      ios::schedule_cost(g, spec, schedule, 2, simgpu::Precision::kInt8);
  const double fp32_after_int8 = ios::schedule_cost(g, spec, schedule, 2);
  const double int8_again =
      ios::schedule_cost(g, spec, schedule, 2, simgpu::Precision::kInt8);
  EXPECT_EQ(fp32_after_int8, uncached_fp32);
  EXPECT_EQ(int8_first, uncached_int8);
  EXPECT_EQ(int8_again, uncached_int8);
  cache.clear();
}

// --- Precision-expanded selection -------------------------------------------

nas::PrecisionCandidate make_candidate(int index, simgpu::Precision precision,
                                       double ap, double throughput) {
  nas::PrecisionCandidate c;
  c.trial.index = index;
  c.precision = precision;
  c.metrics.average_precision = ap;
  c.metrics.throughput = throughput;
  c.metrics.optimized_latency = 1.0 / throughput;
  return c;
}

TEST(SelectionTest, ConstraintFlipsWinnerBetweenPrecisions) {
  // int8 is 3x faster but costs 0.08 AP. Whether it wins depends only on
  // where the constraint sits.
  const std::vector<nas::PrecisionCandidate> candidates = {
      make_candidate(0, simgpu::Precision::kFp32, 0.90, 100.0),
      make_candidate(0, simgpu::Precision::kInt8, 0.82, 300.0),
  };
  const auto relaxed = nas::select_constrained_precision(candidates, 0.80);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_EQ(relaxed->precision, simgpu::Precision::kInt8);

  const auto strict = nas::select_constrained_precision(candidates, 0.85);
  ASSERT_TRUE(strict.has_value());
  EXPECT_EQ(strict->precision, simgpu::Precision::kFp32);

  EXPECT_FALSE(nas::select_constrained_precision(candidates, 0.95)
                   .has_value());
}

TEST(SelectionTest, ExpandPrecisionsSkipsFailuresAndFailedTrials) {
  nas::TrialDatabase db;
  nas::Trial good;
  good.index = 0;
  good.metrics.average_precision = 0.9;
  good.metrics.throughput = 50.0;
  db.add(good);
  nas::Trial unquantizable;
  unquantizable.index = 1;
  unquantizable.metrics.average_precision = 0.8;
  unquantizable.metrics.throughput = 60.0;
  db.add(unquantizable);
  nas::Trial failed;
  failed.index = 2;
  failed.status = nas::TrialStatus::kFailed;
  db.add(failed);

  const auto candidates = nas::expand_precisions(db, [](const nas::Trial& t) {
    if (t.index == 1) throw Error("calibration failed");
    nas::TrialMetrics metrics = t.metrics;
    metrics.average_precision -= 0.01;
    metrics.throughput *= 3.0;
    return metrics;
  });
  // trial 0 -> fp32 + int8; trial 1 -> fp32 only; trial 2 -> dropped.
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].trial.index, 0);
  EXPECT_EQ(candidates[0].precision, simgpu::Precision::kFp32);
  EXPECT_EQ(candidates[1].trial.index, 0);
  EXPECT_EQ(candidates[1].precision, simgpu::Precision::kInt8);
  EXPECT_DOUBLE_EQ(candidates[1].metrics.throughput, 150.0);
  EXPECT_EQ(candidates[2].trial.index, 1);
  EXPECT_EQ(candidates[2].precision, simgpu::Precision::kFp32);
}

TEST(SelectionTest, CsvRecordsPrecisionAndSelection) {
  const std::vector<nas::PrecisionCandidate> candidates = {
      make_candidate(0, simgpu::Precision::kFp32, 0.90, 100.0),
      make_candidate(0, simgpu::Precision::kInt8, 0.82, 300.0),
  };
  const auto selected = nas::select_constrained_precision(candidates, 0.8);
  const std::string csv =
      nas::precision_selection_csv(candidates, selected);
  EXPECT_NE(csv.find("trial,precision,average_precision"), std::string::npos);
  EXPECT_NE(csv.find("0,fp32,0.9000"), std::string::npos);
  EXPECT_NE(csv.find("0,int8,0.8200"), std::string::npos);
  // Exactly one row is flagged selected, and it is the int8 one.
  EXPECT_EQ(csv.find(",1\n"), csv.rfind(",1\n"));
  const std::size_t int8_row = csv.find("0,int8");
  ASSERT_NE(int8_row, std::string::npos);
  EXPECT_NE(csv.find(",1\n", int8_row), std::string::npos);
}

// --- Precision-configurable serving -----------------------------------------

TEST(ServePrecisionTest, ReplicaPrecisionLengthMismatchThrows) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 40);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  serve::ServerConfig config;
  config.replicas = 2;
  config.device = spec;
  config.replica_precisions = {simgpu::Precision::kInt8};  // wrong length
  EXPECT_THROW(serve::Server(g, schedule, config), ConfigError);
}

TEST(ServePrecisionTest, Int8FleetServesFasterThanFp32) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 64);
  const auto spec = simgpu::a5500_spec();
  ios::IosOptions options;
  options.batch = 4;
  const ios::Schedule schedule = ios::optimize_schedule(g, spec, options);

  serve::TrafficConfig traffic;
  traffic.seed = 5;
  traffic.duration = 1.0;
  traffic.rate = 300.0;
  traffic.burst_factor = 1.0;
  const auto trace = serve::generate_trace(traffic);

  const auto run_at = [&](simgpu::Precision precision) {
    serve::ServerConfig config;
    config.batch = {4, 2.0e-3};
    config.device = spec;
    config.precision = precision;
    serve::Server server(g, schedule, config);
    return server.serve(trace);
  };
  const serve::ServingReport fp32 = run_at(simgpu::Precision::kFp32);
  const serve::ServingReport int8 = run_at(simgpu::Precision::kInt8);
  EXPECT_GT(fp32.completed, 0);
  EXPECT_GT(int8.completed, 0);
  EXPECT_GE(int8.completed, fp32.completed);
  EXPECT_LT(int8.p50, fp32.p50);
}

TEST(ServePrecisionTest, MixedFleetRunsAndRecordsAllRequests) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 40);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);

  serve::TrafficConfig traffic;
  traffic.seed = 9;
  traffic.duration = 0.5;
  traffic.rate = 200.0;
  const auto trace = serve::generate_trace(traffic);

  serve::ServerConfig config;
  config.batch = {4, 2.0e-3};
  config.device = spec;
  config.replicas = 2;
  config.replica_precisions = {simgpu::Precision::kFp32,
                               simgpu::Precision::kInt8};
  serve::Server server(g, schedule, config);
  const serve::ServingReport report = server.serve(trace);
  EXPECT_EQ(report.offered, static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(report.admitted,
            report.completed + report.deadline_expired + report.failed);
  EXPECT_GT(report.completed, 0);
}

}  // namespace
}  // namespace dcn
