// Tests for the early-exit cascade scan subsystem (src/scan) and the
// contracts it leans on elsewhere:
//   - geo::make_tiles edge-clamp behavior (pinned; the cascade's coverage
//     accounting depends on it),
//   - scan determinism: same seed + threshold => byte-identical scan CSVs
//     at any tensor-engine thread count, and byte-identical serving logs
//     at any replica count,
//   - the threshold calibrator's constrained choice (pinned exactly on a
//     hand-built sweep; determinism on the real pipeline),
//   - ios schedule-cache keys: same block structure, different tensor
//     shapes must not collide (screener vs full SPP-Net sharing the
//     process-global cache),
//   - per-pool serving counters and occupancy reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "detect/sppnet.hpp"
#include "detect/sppnet_config.hpp"
#include "geo/dataset.hpp"
#include "geo/tiling.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "ios/executor.hpp"
#include "ios/schedule_cache.hpp"
#include "ios/scheduler.hpp"
#include "profiler/counters.hpp"
#include "scan/calibrate.hpp"
#include "scan/cascade.hpp"
#include "scan/pipeline.hpp"
#include "scan/screener.hpp"
#include "simgpu/kernels.hpp"
#include "simgpu/spec.hpp"

namespace dcn::scan {
namespace {

// --- geo::make_tiles edge-clamp regression --------------------------------

TEST(Tiling, EdgeTilesClampIntoBoundsWithoutDuplicates) {
  // Non-divisible scene with overlap > 0: the regression scenario the
  // clamp contract exists for.
  const std::int64_t rows = 101, cols = 77, size = 32;
  const auto tiles = geo::make_tiles(rows, cols, size, 0.3, {});
  ASSERT_FALSE(tiles.empty());

  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  std::int64_t max_row = 0, max_col = 0;
  for (const geo::Tile& tile : tiles) {
    // Every tile reads real pixels only.
    EXPECT_GE(tile.row, 0);
    EXPECT_GE(tile.col, 0);
    EXPECT_LE(tile.row + tile.size, rows);
    EXPECT_LE(tile.col + tile.size, cols);
    EXPECT_EQ(tile.size, size);
    // The clamped edge tile appears exactly once.
    EXPECT_TRUE(seen.insert({tile.row, tile.col}).second)
        << "duplicate tile at (" << tile.row << ", " << tile.col << ")";
    max_row = std::max(max_row, tile.row);
    max_col = std::max(max_col, tile.col);
  }
  // The last row/column is flush with the scene border (clamped, not
  // padded past it, not dropped short of it).
  EXPECT_EQ(max_row, rows - size);
  EXPECT_EQ(max_col, cols - size);

  // Full coverage: every pixel falls inside some tile. Row/col coverage
  // are independent on an axis-aligned grid, so checking the row axis
  // projection suffices for rows (likewise cols).
  std::vector<bool> row_covered(static_cast<std::size_t>(rows), false);
  std::vector<bool> col_covered(static_cast<std::size_t>(cols), false);
  for (const geo::Tile& tile : tiles) {
    for (std::int64_t r = tile.row; r < tile.row + tile.size; ++r) {
      row_covered[static_cast<std::size_t>(r)] = true;
    }
    for (std::int64_t c = tile.col; c < tile.col + tile.size; ++c) {
      col_covered[static_cast<std::size_t>(c)] = true;
    }
  }
  EXPECT_TRUE(std::all_of(row_covered.begin(), row_covered.end(),
                          [](bool b) { return b; }));
  EXPECT_TRUE(std::all_of(col_covered.begin(), col_covered.end(),
                          [](bool b) { return b; }));
}

TEST(Tiling, ExactFitSceneHasNoDuplicateEdgeTiles) {
  // rows - size is a multiple of the stride: the "last" grid position
  // coincides with the clamped one; it must not be emitted twice.
  const auto tiles = geo::make_tiles(64, 64, 32, 0.5, {});
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const geo::Tile& tile : tiles) {
    EXPECT_TRUE(seen.insert({tile.row, tile.col}).second);
  }
  EXPECT_EQ(tiles.size(), 9u);  // stride 16: positions {0, 16, 32} each axis
}

// --- scan fixtures ---------------------------------------------------------

constexpr std::int64_t kTile = 32;

// A small watershed and untrained-but-deterministic models: inference
// determinism does not depend on training, so the determinism tests skip
// it (weights are a pure function of the seed).
struct ScanFixture {
  geo::World world;
  detect::SppNet screener;
  detect::SppNet full;

  static ScanFixture make() {
    geo::DatasetConfig config;
    config.seed = 99;
    config.terrain.rows = config.terrain.cols = 192;
    Rng world_rng(7);

    nas::SearchPoint point;
    point.conv1_kernel = 3;
    point.spp_first_level = 2;
    point.fc_sizes = {32};
    Rng screener_rng(11);
    Rng full_rng(13);
    return ScanFixture{
        geo::synthesize_world(config, world_rng),
        detect::SppNet(materialize_screener(point, 8, 4), screener_rng),
        detect::SppNet(detect::sppnet_candidate3(), full_rng)};
  }

  CascadeOptions options() const {
    CascadeOptions opts;
    opts.tile_size = kTile;
    opts.overlap = 0.25;
    opts.threshold = 0.5;
    return opts;
  }

  ScanResult scan(const CascadeOptions& opts) {
    return scan_watershed(world.photo, {}, world.crossings, screener, full,
                          opts);
  }
};

TEST(Cascade, ScanCsvIsByteIdenticalAcrossThreadCounts) {
  ScanFixture fixture = ScanFixture::make();
  CascadeOptions opts = fixture.options();
  opts.jobs = 1;
  const ScanResult serial = fixture.scan(opts);
  opts.jobs = 4;
  const ScanResult threaded = fixture.scan(opts);
  set_num_threads(0);  // restore the process-wide default

  EXPECT_EQ(scan_to_csv(serial), scan_to_csv(threaded));
  EXPECT_EQ(detections_to_csv(serial), detections_to_csv(threaded));
  EXPECT_EQ(serial.survivors, threaded.survivors);
}

TEST(Cascade, ScanAccountingIsConsistent) {
  ScanFixture fixture = ScanFixture::make();
  CascadeOptions opts = fixture.options();
  opts.evaluate_all = true;
  const ScanResult result = fixture.scan(opts);

  ASSERT_GT(result.tiles, 0);
  EXPECT_EQ(result.scores.size(), static_cast<std::size_t>(result.tiles));
  std::int64_t survivors = 0, positives = 0;
  for (const TileScore& score : result.scores) {
    EXPECT_TRUE(score.full_evaluated);  // evaluate_all mode
    EXPECT_EQ(score.survived,
              static_cast<double>(score.screener_confidence) >=
                  opts.threshold);
    if (score.survived) ++survivors;
    if (score.has_object) ++positives;
  }
  EXPECT_EQ(result.survivors, survivors);
  EXPECT_EQ(result.positives, positives);
  EXPECT_DOUBLE_EQ(result.survivor_fraction,
                   static_cast<double>(survivors) /
                       static_cast<double>(result.tiles));
  // At threshold 0 the cascade rejects nothing, so its AP equals the
  // full model's over the same tiles.
  EXPECT_DOUBLE_EQ(cascade_average_precision(result.scores, 0.0),
                   full_average_precision(result.scores));
}

TEST(Cascade, DedupeKeepsHighestConfidenceWithinRadius) {
  std::vector<ScanDetection> detections;
  const auto add = [&](std::int64_t tile, double x, double y, float conf) {
    ScanDetection d;
    d.tile = tile;
    d.world_x = x;
    d.world_y = y;
    d.confidence = conf;
    detections.push_back(d);
  };
  add(0, 10.0, 10.0, 0.7f);   // cluster A
  add(1, 14.0, 10.0, 0.9f);   // cluster A winner
  add(2, 10.0, 14.0, 0.6f);   // cluster A
  add(3, 200.0, 200.0, 0.5f); // isolated
  const auto kept = dedupe_detections(detections, 24.0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].tile, 1);  // confidence-descending order
  EXPECT_EQ(kept[1].tile, 3);

  // Equal confidences: tile id breaks the tie deterministically.
  detections.clear();
  add(5, 0.0, 0.0, 0.5f);
  add(4, 1.0, 0.0, 0.5f);
  const auto tie = dedupe_detections(detections, 24.0);
  ASSERT_EQ(tie.size(), 1u);
  EXPECT_EQ(tie[0].tile, 4);
}

// --- calibrator -------------------------------------------------------------

TileScore score_of(float screener_conf, float full_conf, bool has_object,
                   float iou) {
  TileScore score;
  score.screener_confidence = screener_conf;
  score.full_evaluated = true;
  score.full_confidence = full_conf;
  score.has_object = has_object;
  score.iou = iou;
  return score;
}

TEST(Calibrator, PicksCheapestFeasibleThreshold) {
  // Exactly representable confidences so the pinned choice is exact.
  // Positives score {0.75, 0.5}, negatives {0.25, 0.125}: any threshold
  // <= 0.5 keeps both positives (full AP preserved), and 0.5 is the
  // cheapest of those. 0.75 would be cheaper still but drops the second
  // positive, losing more than the 1.0-point budget.
  const std::vector<TileScore> scores = {
      score_of(0.75f, 0.9f, true, 0.8f),
      score_of(0.5f, 0.8f, true, 0.7f),
      score_of(0.25f, 0.1f, false, 0.0f),
      score_of(0.125f, 0.05f, false, 0.0f),
  };
  CalibratorOptions options;
  options.max_ap_drop_points = 1.0;
  options.stage1_cost_per_tile = 1.0;
  options.stage2_cost_per_tile = 10.0;
  const CalibrationResult result = calibrate_threshold(scores, options);

  EXPECT_DOUBLE_EQ(result.full_ap, 1.0);
  EXPECT_DOUBLE_EQ(result.chosen.threshold, 0.5);
  EXPECT_DOUBLE_EQ(result.chosen.cascade_ap, 1.0);
  EXPECT_DOUBLE_EQ(result.chosen.survivor_fraction, 0.5);
  EXPECT_DOUBLE_EQ(result.chosen.cost_per_tile, 1.0 + 0.5 * 10.0);
  EXPECT_TRUE(result.chosen.feasible);
  // The sweep covers threshold 0 plus every distinct confidence.
  EXPECT_EQ(result.sweep.size(), 5u);
  // Threshold 0 rejects nothing: always feasible, never cheapest here.
  EXPECT_TRUE(result.sweep.front().feasible);
  EXPECT_DOUBLE_EQ(result.sweep.front().threshold, 0.0);

  const std::string csv = sweep_to_csv(result);
  EXPECT_NE(csv.find("threshold,cascade_ap"), std::string::npos);
  EXPECT_NE(csv.find(",1,1\n"), std::string::npos);  // chosen row flagged
}

TEST(Calibrator, UnlimitedBudgetPicksCheapestOverall) {
  const std::vector<TileScore> scores = {
      score_of(0.75f, 0.9f, true, 0.8f),
      score_of(0.25f, 0.1f, false, 0.0f),
  };
  CalibratorOptions options;
  options.max_ap_drop_points = 100.0;  // constraint never binds
  const CalibrationResult result = calibrate_threshold(scores, options);
  // Cheapest operating point rejects everything below the top score.
  EXPECT_DOUBLE_EQ(result.chosen.threshold, 0.75);
  EXPECT_DOUBLE_EQ(result.chosen.survivor_fraction, 0.5);
}

TEST(Calibrator, RequiresFullModelScores) {
  std::vector<TileScore> scores = {score_of(0.5f, 0.5f, false, 0.0f)};
  scores[0].full_evaluated = false;
  CalibratorOptions options;
  EXPECT_THROW(calibrate_threshold(scores, options), ConfigError);
  EXPECT_THROW(calibrate_threshold({}, options), ConfigError);
}

TEST(Calibrator, RealPipelineChoiceIsDeterministic) {
  // Same seed => same scan => same chosen threshold, and the scan is
  // thread-count invariant, so the calibrated threshold is too.
  ScanFixture fixture = ScanFixture::make();
  CascadeOptions opts = fixture.options();
  opts.threshold = 0.0;
  opts.evaluate_all = true;
  opts.jobs = 1;
  const ScanResult one = fixture.scan(opts);
  opts.jobs = 4;
  const ScanResult four = fixture.scan(opts);
  set_num_threads(0);

  CalibratorOptions options;
  const CalibrationResult a = calibrate_threshold(one.scores, options);
  const CalibrationResult b = calibrate_threshold(four.scores, options);
  EXPECT_EQ(a.chosen.threshold, b.chosen.threshold);
  EXPECT_EQ(sweep_to_csv(a), sweep_to_csv(b));
  EXPECT_GE(a.chosen.cascade_ap, a.full_ap - 0.01);
  // Golden pin: the calibration contract for this seed. Any change to the
  // scan order, screener scoring, or sweep construction shows up here.
  EXPECT_NEAR(a.chosen.threshold, 0.27839156985282898, 1e-12);
}

// --- serving pipeline -------------------------------------------------------

StagePlan plan_for(const graph::Graph& graph, const std::string& pool,
                   int max_batch) {
  StagePlan plan;
  plan.graph = &graph;
  ios::IosOptions options;
  options.batch = max_batch;
  plan.schedule = ios::optimize_schedule(graph, simgpu::a5500_spec(), options);
  plan.server.pool = pool;
  plan.server.batch.max_batch = max_batch;
  plan.server.device = simgpu::a5500_spec();
  return plan;
}

TEST(Pipeline, TileTraceRegimes) {
  const auto offline = tile_trace(4, 0.0);
  ASSERT_EQ(offline.size(), 4u);
  for (const serve::Request& request : offline) {
    EXPECT_DOUBLE_EQ(request.arrival, 0.0);
  }
  const auto paced = tile_trace(4, 100.0);
  EXPECT_DOUBLE_EQ(paced[1].arrival, 0.01);
  EXPECT_DOUBLE_EQ(paced[3].arrival, 0.03);
  EXPECT_LT(paced[0].id, paced[1].id);
}

TEST(Pipeline, CascadeServingLogsAreReplicaCountInvariant) {
  nas::SearchPoint point;
  point.conv1_kernel = 3;
  point.spp_first_level = 2;
  point.fc_sizes = {32};
  const graph::Graph screener_graph = graph::build_inference_graph(
      materialize_screener(point, 8, 4), kTile);
  const graph::Graph full_graph =
      graph::build_inference_graph(detect::sppnet_candidate3(), kTile);

  const StagePlan stage1 = plan_for(screener_graph, "screener", 8);
  const StagePlan stage2 = plan_for(full_graph, "full", 4);

  // Light-load regime (the serve contract's precondition for replica
  // invariance): inter-arrival many times the batch service time.
  simgpu::Device probe(simgpu::a5500_spec());
  const double service =
      ios::measure_latency(full_graph, stage2.schedule, probe, 4);
  const double rate = 1.0 / (20.0 * (service + 4.0e-3));

  std::vector<bool> survived(40, false);
  for (std::size_t i = 0; i < survived.size(); i += 3) survived[i] = true;

  const auto run = [&](int replicas) {
    StagePlan s1 = stage1;
    StagePlan s2 = stage2;
    s1.server.replicas = replicas;
    s2.server.replicas = replicas;
    return simulate_cascade_serving(s1, s2, survived, rate);
  };
  const CascadeServingReport one = run(1);
  const CascadeServingReport two = run(2);

  EXPECT_EQ(one.stage1_csv, two.stage1_csv);
  EXPECT_EQ(one.stage2_csv, two.stage2_csv);
  EXPECT_EQ(one.survivors, 14);
  EXPECT_EQ(one.stage1.completed, 40);
  EXPECT_EQ(one.stage2.completed, 14);
  EXPECT_GT(one.tiles_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(one.makespan,
                   std::max(one.stage1.makespan, one.stage2.makespan));
}

TEST(Pipeline, OfflineDrainNeverRejectsAndReportsPoolCounters) {
  nas::SearchPoint point;
  point.conv1_kernel = 3;
  point.spp_first_level = 1;
  point.fc_sizes = {32};
  const graph::Graph graph = graph::build_inference_graph(
      materialize_screener(point, 8, 4), kTile);
  StagePlan plan = plan_for(graph, "screener", 8);
  plan.server.queue_capacity = 4;  // deliberately tiny: must be bumped

  profiler::reset_counters();
  std::string csv;
  const serve::ServingReport report =
      simulate_single_stage(plan, 100, 0.0, &csv);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.completed, 100);
  EXPECT_EQ(report.pool, "screener");

  // Satellite: per-pool counters + occupancy surface in the profiler.
  const auto counters = profiler::counter_snapshot();
  EXPECT_EQ(counters.at("serve.screener.offered"), 100);
  EXPECT_EQ(counters.at("serve.screener.completed"), 100);
  EXPECT_GT(counters.at("serve.screener.occupancy_permille"), 0);
  EXPECT_LE(counters.at("serve.screener.occupancy_permille"), 1000);
  EXPECT_EQ(counters.count("serve.offered"), 0u);  // prefixed, not classic

  EXPECT_GT(report.occupancy(), 0.0);
  EXPECT_LE(report.occupancy(), 1.0);
  EXPECT_NE(report.to_string().find("[pool screener]"), std::string::npos);
  EXPECT_NE(report.to_string().find("occupancy"), std::string::npos);
  EXPECT_NE(csv.find("id,status"), std::string::npos);
}

// --- screener space ---------------------------------------------------------

TEST(Screener, SpaceEnumerationIsLexicographicAndComplete) {
  ScreenerSpace space;
  const auto points = space.enumerate();
  EXPECT_EQ(points.size(), 8u);
  EXPECT_EQ(points.front().conv1_kernel, 3);
  EXPECT_EQ(points.front().spp_first_level, 1);
  ASSERT_EQ(points.front().fc_sizes.size(), 1u);
  EXPECT_EQ(points.front().fc_sizes[0], 32);
  EXPECT_EQ(points.back().conv1_kernel, 5);
  EXPECT_EQ(points.back().spp_first_level, 2);
  EXPECT_EQ(points.back().fc_sizes[0], 64);
}

TEST(Screener, MaterializedConfigRunsAtTileSize) {
  nas::SearchPoint point;
  point.conv1_kernel = 5;
  point.spp_first_level = 2;
  point.fc_sizes = {64};
  const detect::SppNetConfig config = materialize_screener(point, 8, 4);
  EXPECT_EQ(config.spp_levels, (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(config.trunk.size(), 4u);
  EXPECT_EQ(config.trunk[0].conv.stride, 2);

  Rng rng(3);
  detect::SppNet model(config, rng);
  model.set_training(false);
  Tensor batch(Shape{2, 4, kTile, kTile});
  const Tensor out = model.forward(batch);
  EXPECT_EQ(out.dim(0), 2);
  EXPECT_EQ(out.dim(1), 5);
}

}  // namespace
}  // namespace dcn::scan

// --- ios schedule-cache shape keys (satellite 6) ---------------------------

namespace dcn::ios {
namespace {

// Two single-op graphs whose kernels have identical cost profiles (flops,
// bytes, threads) but different tensor geometry: MaxPool k=2,s=2 over
// [4,8,8] vs [16,4,4]. Elements in = 256, out = 4*4*4 = 16*2*2 = 64 in
// both, and pooling does one compare per input element, so every
// cost-profile field the cache key used to rely on is equal.
graph::Graph pool_graph(std::int64_t channels, std::int64_t side) {
  graph::Graph g;
  const auto in = g.add_op(graph::OpKind::kInput, "in", {}, {},
                           graph::TensorDesc{{channels, side, side}});
  graph::OpAttrs pool;
  pool.kernel = 2;
  pool.stride = 2;
  const auto p = g.add_op(graph::OpKind::kMaxPool, "pool", pool, {in},
                          graph::TensorDesc{{channels, side / 2, side / 2}});
  g.add_op(graph::OpKind::kOutput, "out", {}, {p},
           graph::TensorDesc{{channels, side / 2, side / 2}});
  return g;
}

std::vector<graph::OpId> device_ops(const graph::Graph& g) {
  std::vector<graph::OpId> ops;
  for (const auto& op : g.nodes()) {
    if (op.kind != graph::OpKind::kInput &&
        op.kind != graph::OpKind::kOutput) {
      ops.push_back(op.id);
    }
  }
  return ops;
}

TEST(ScheduleCacheKeys, ShapePermutationsDoNotCollide) {
  const graph::Graph a = pool_graph(4, 8);
  const graph::Graph b = pool_graph(16, 4);
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();
  const IosOptions options;

  // Precondition that makes this test meaningful: the cost profiles
  // really are identical, so only the shape component separates the keys.
  const auto desc_a = simgpu::make_kernel_desc(a, device_ops(a).front());
  const auto desc_b = simgpu::make_kernel_desc(b, device_ops(b).front());
  EXPECT_EQ(desc_a.flops_per_sample, desc_b.flops_per_sample);
  EXPECT_EQ(desc_a.activation_bytes_per_sample,
            desc_b.activation_bytes_per_sample);
  EXPECT_EQ(desc_a.weight_bytes, desc_b.weight_bytes);
  EXPECT_EQ(desc_a.threads_per_sample, desc_b.threads_per_sample);

  EXPECT_NE(block_cache_key(a, device_ops(a), spec, options),
            block_cache_key(b, device_ops(b), spec, options));

  const Schedule sched_a = optimize_schedule(a, spec, options);
  const Schedule sched_b = optimize_schedule(b, spec, options);
  EXPECT_NE(cost_cache_key(a, spec, sched_a, 1),
            cost_cache_key(b, spec, sched_b, 1));
}

TEST(ScheduleCacheKeys, ScreenerAndFullSppBlocksDiffer) {
  // The production collision risk: the cascade keeps the screener and the
  // full SPP-Net in one process-global cache. Same block structure, very
  // different shapes.
  nas::SearchPoint point;
  point.conv1_kernel = 3;
  point.spp_first_level = 2;
  point.fc_sizes = {32};
  const graph::Graph screener = graph::build_inference_graph(
      scan::materialize_screener(point, 8, 4), 48);
  const graph::Graph full =
      graph::build_inference_graph(detect::sppnet_candidate2(), 48);
  const simgpu::DeviceSpec spec = simgpu::a5500_spec();
  const IosOptions options;
  EXPECT_NE(block_cache_key(screener, device_ops(screener), spec, options),
            block_cache_key(full, device_ops(full), spec, options));
}

}  // namespace
}  // namespace dcn::ios
