// Randomized property tests for the scheduling stack: random branched
// DAGs are pushed through block extraction, the IOS DP, and the cost
// model, checking the invariants that must hold for *every* graph —
// schedule validity, never-worse-than-sequential, brute-force lower bound,
// and cost-model monotonicity in device strength.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "graph/blocks.hpp"
#include "graph/graph.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"

namespace dcn {
namespace {

// Random "trunk + fan-out + join" graph: a conv chain, then 1..4 branches
// of 1..2 ops each, then concat and a linear head. Shapes are plausible
// (channels 4..64, sizes 8..32) so kernel costs are non-degenerate.
graph::Graph random_graph(Rng& rng) {
  graph::Graph g;
  const std::int64_t channels = 4 << rng.uniform_int(0, 3);
  const std::int64_t size = 8 << rng.uniform_int(0, 2);
  auto prev = g.add_op(graph::OpKind::kInput, "in", {}, {},
                       graph::TensorDesc{{channels, size, size}});
  const int trunk_len = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < trunk_len; ++i) {
    graph::OpAttrs conv;
    conv.kernel = 3;
    conv.stride = 1;
    conv.padding = 1;
    conv.out_channels = channels;
    prev = g.add_op(graph::OpKind::kConv2d, "t" + std::to_string(i), conv,
                    {prev}, graph::TensorDesc{{channels, size, size}});
  }
  const int branches = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<graph::OpId> outs;
  std::int64_t total = 0;
  for (int b = 0; b < branches; ++b) {
    const std::int64_t level = rng.uniform_int(1, 4);
    graph::OpAttrs pool;
    pool.pool_out = level;
    auto tip = g.add_op(graph::OpKind::kAdaptivePool,
                        "p" + std::to_string(b), pool, {prev},
                        graph::TensorDesc{{channels, level, level}});
    if (rng.bernoulli(0.6)) {
      tip = g.add_op(graph::OpKind::kFlatten, "f" + std::to_string(b), {},
                     {tip},
                     graph::TensorDesc{{channels * level * level}});
      outs.push_back(tip);
      total += channels * level * level;
    } else {
      tip = g.add_op(graph::OpKind::kReLU, "r" + std::to_string(b), {},
                     {tip}, graph::TensorDesc{{channels, level, level}});
      outs.push_back(tip);
      total += channels * level * level;
    }
  }
  auto cat = g.add_op(graph::OpKind::kConcat, "cat", {}, outs,
                      graph::TensorDesc{{total}});
  graph::OpAttrs fc;
  fc.out_features = 16;
  auto head = g.add_op(graph::OpKind::kLinear, "head", fc, {cat},
                       graph::TensorDesc{{16}});
  g.add_op(graph::OpKind::kOutput, "out", {}, {head},
           graph::TensorDesc{{16}});
  return g;
}

class RandomGraphProperty : public testing::TestWithParam<int> {};

TEST_P(RandomGraphProperty, BlocksPartitionEveryOp) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const graph::Graph g = random_graph(rng);
  const auto blocks = graph::extract_blocks(g);
  std::vector<int> seen(g.size(), 0);
  for (const auto& block : blocks) {
    for (graph::OpId id : block.ops) {
      ++seen[static_cast<std::size_t>(id)];
    }
  }
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "op " << i;
  }
}

TEST_P(RandomGraphProperty, OptimizedScheduleIsValidAndNeverWorse) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const graph::Graph g = random_graph(rng);
  const auto spec = simgpu::a5500_spec();
  for (std::int64_t batch : {1, 16}) {
    ios::IosOptions options;
    options.batch = batch;
    const ios::Schedule opt = ios::optimize_schedule(g, spec, options);
    ios::validate_schedule(g, opt);  // throws on any structural violation
    const double c_opt = ios::schedule_cost(g, spec, opt, batch);
    const double c_seq =
        ios::schedule_cost(g, spec, ios::sequential_schedule(g), batch);
    EXPECT_LE(c_opt, c_seq + 1e-15) << "batch " << batch;
  }
}

TEST_P(RandomGraphProperty, BruteForceIsALowerBound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const graph::Graph g = random_graph(rng);
  std::size_t device_ops = 0;
  for (const auto& node : g.nodes()) {
    if (simgpu::is_device_op(node.kind)) ++device_ops;
  }
  if (device_ops > 12) GTEST_SKIP() << "too large for the oracle";
  const auto spec = simgpu::a5500_spec();
  const double best = ios::brute_force_best_cost(g, spec, 1);
  const ios::Schedule opt = ios::optimize_schedule(g, spec);
  EXPECT_GE(ios::schedule_cost(g, spec, opt, 1), best - 1e-15);
  // And the block decomposition stays within its boundary overhead.
  EXPECT_LE(ios::schedule_cost(g, spec, opt, 1),
            best + 4 * spec.inter_stage_gap + 1e-9);
}

TEST_P(RandomGraphProperty, ExecutorAgreesWithCostModelOrdering) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const graph::Graph g = random_graph(rng);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule seq = ios::sequential_schedule(g);
  const ios::Schedule opt = ios::optimize_schedule(g, spec);
  simgpu::Device d1(spec);
  simgpu::Device d2(spec);
  const double t_seq = ios::measure_latency(g, seq, d1, 1);
  const double t_opt = ios::measure_latency(g, opt, d2, 1);
  // The executor adds identical copy/sync overhead to both schedules, so
  // the cost-model ordering must survive measurement.
  EXPECT_LE(t_opt, t_seq + 1e-12);
}

TEST_P(RandomGraphProperty, StrongerDeviceIsNeverSlower) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const graph::Graph g = random_graph(rng);
  simgpu::DeviceSpec weak = simgpu::a5500_spec();
  weak.compute_efficiency = 0.2;
  weak.dram_bandwidth /= 2;
  const simgpu::DeviceSpec strong = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::sequential_schedule(g);
  for (std::int64_t batch : {1, 32}) {
    EXPECT_LE(ios::schedule_cost(g, strong, schedule, batch),
              ios::schedule_cost(g, weak, schedule, batch) + 1e-15)
        << "batch " << batch;
  }
}

TEST_P(RandomGraphProperty, ShapesValidate) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  const graph::Graph g = random_graph(rng);
  EXPECT_NO_THROW(graph::validate_shapes(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         testing::Range(1, 13));

}  // namespace
}  // namespace dcn
