// Forward-pass tests for nn layers (backward is covered by test_gradcheck).
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/spp.hpp"

namespace dcn {
namespace {

TEST(Conv2d, OutputShapeSamePadding) {
  Rng rng(1);
  Conv2d conv(4, 8, 3, 1, rng);  // padding = 1
  Tensor x(Shape{2, 4, 10, 10});
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 8, 10, 10}));
}

TEST(Conv2d, OutputShapeStride2) {
  Rng rng(1);
  Conv2d conv(3, 5, 3, 2, 1, rng);
  Tensor x(Shape{1, 3, 9, 9});
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 5, 5, 5}));
  const auto [oh, ow] = conv.output_hw(9, 9);
  EXPECT_EQ(oh, 5);
  EXPECT_EQ(ow, 5);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  conv.weight().fill(1.0f);
  conv.bias().fill(0.5f);
  Tensor x(Shape{1, 1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  const Tensor y = conv.forward(x);
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(y[i], static_cast<float>(i) + 0.5f);
  }
}

TEST(Conv2d, AveragingKernelKnownValue) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 0, rng);
  conv.weight().fill(1.0f / 9.0f);
  conv.bias().zero();
  Tensor x(Shape{1, 1, 3, 3}, 9.0f);
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_NEAR(y[0], 9.0f, 1e-5f);
}

TEST(Conv2d, RejectsWrongChannels) {
  Rng rng(1);
  Conv2d conv(4, 8, 3, 1, rng);
  Tensor x(Shape{1, 3, 10, 10});
  EXPECT_THROW(conv.forward(x), Error);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, rng);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 1, 3, 3})), Error);
}

TEST(Conv2d, ParameterCountAndRefs) {
  Rng rng(1);
  Conv2d conv(4, 64, 3, 1, rng);
  EXPECT_EQ(conv.num_parameters(), 64 * 4 * 3 * 3 + 64);
  const auto params = conv.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "weight");
  EXPECT_EQ(params[1].name, "bias");
}

TEST(MaxPool2d, KnownValues) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 7.0f);
  EXPECT_EQ(y[2], 13.0f);
  EXPECT_EQ(y[3], 15.0f);
}

TEST(MaxPool2d, OddSizeDropsRemainder) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 5, 5}, 1.0f);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2});
  x[3] = 10.0f;  // max at (1,1)
  (void)pool.forward(x);
  Tensor g(Shape{1, 1, 1, 1}, 2.0f);
  const Tensor gi = pool.backward(g);
  EXPECT_EQ(gi[0], 0.0f);
  EXPECT_EQ(gi[3], 2.0f);
}

TEST(AdaptiveMaxPool2d, FixedOutputForAnyInput) {
  AdaptiveMaxPool2d pool(4, 4);
  for (std::int64_t size : {4, 5, 7, 12, 33, 100}) {
    Tensor x(Shape{1, 2, size, size}, 1.0f);
    const Tensor y = pool.forward(x);
    EXPECT_EQ(y.shape(), Shape({1, 2, 4, 4})) << "input size " << size;
  }
}

TEST(AdaptiveMaxPool2d, BinsCoverWholeInput) {
  // PyTorch-convention bins overlap when in % out != 0, so a single hot
  // pixel must light up at least one and at most 2x2 output cells.
  AdaptiveMaxPool2d pool(3, 3);
  for (std::int64_t hot = 0; hot < 49; ++hot) {
    Tensor x(Shape{1, 1, 7, 7}, 0.0f);
    x[hot] = 5.0f;
    const Tensor y = pool.forward(x);
    int hot_cells = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      if (y[i] == 5.0f) ++hot_cells;
    }
    EXPECT_GE(hot_cells, 1) << "hot pixel " << hot;
    EXPECT_LE(hot_cells, 4) << "hot pixel " << hot;
  }
}

TEST(AdaptiveMaxPool2d, ExactPartitionWhenDivisible) {
  // When the input divides evenly, bins are disjoint: exactly one hot cell.
  AdaptiveMaxPool2d pool(3, 3);
  for (std::int64_t hot = 0; hot < 81; ++hot) {
    Tensor x(Shape{1, 1, 9, 9}, 0.0f);
    x[hot] = 5.0f;
    const Tensor y = pool.forward(x);
    int hot_cells = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      if (y[i] == 5.0f) ++hot_cells;
    }
    EXPECT_EQ(hot_cells, 1) << "hot pixel " << hot;
  }
}

TEST(AdaptiveMaxPool2d, UpsampleCase) {
  // Output larger than input: bins repeat input cells, never crash.
  AdaptiveMaxPool2d pool(4, 4);
  Tensor x(Shape{1, 1, 2, 2});
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  x[3] = 4;
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 4, 4}));
  EXPECT_EQ(y[0], 1.0f);
  EXPECT_EQ(y[15], 4.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten flatten;
  Tensor x(Shape{2, 3, 4, 5});
  const Tensor y = flatten.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  const Tensor back = flatten.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(Linear, KnownValues) {
  Rng rng(1);
  Linear linear(2, 2, rng);
  linear.weight().fill(0.0f);
  linear.weight().at({0, 0}) = 1.0f;  // y0 = x0
  linear.weight().at({1, 1}) = 2.0f;  // y1 = 2*x1
  linear.bias()[0] = 0.5f;
  Tensor x(Shape{1, 2});
  x[0] = 3.0f;
  x[1] = 4.0f;
  const Tensor y = linear.forward(x);
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(Linear, RejectsWrongWidth) {
  Rng rng(1);
  Linear linear(8, 4, rng);
  EXPECT_THROW(linear.forward(Tensor(Shape{1, 7})), Error);
  EXPECT_THROW(linear.forward(Tensor(Shape{8})), Error);
}

TEST(Spp, LevelsFromFirst) {
  EXPECT_EQ(spp_levels_from_first(5),
            (std::vector<std::int64_t>{5, 2, 1}));
  EXPECT_EQ(spp_levels_from_first(4),
            (std::vector<std::int64_t>{4, 2, 1}));
  EXPECT_EQ(spp_levels_from_first(2), (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(spp_levels_from_first(1), (std::vector<std::int64_t>{1}));
  EXPECT_THROW(spp_levels_from_first(0), Error);
}

TEST(Spp, OutputSizeIndependentOfInputSize) {
  // The core SPP property (§2.2): fixed-length output for any input size.
  SpatialPyramidPool spp({4, 2, 1});
  EXPECT_EQ(spp.features_per_channel(), 21);
  for (std::int64_t size : {6, 12, 25, 50, 100}) {
    Tensor x(Shape{2, 8, size, size}, 1.0f);
    const Tensor y = spp.forward(x);
    EXPECT_EQ(y.shape(), Shape({2, 8 * 21})) << "input " << size;
  }
}

TEST(Spp, RectangularInputs) {
  SpatialPyramidPool spp({2, 1});
  Tensor x(Shape{1, 3, 9, 17}, 1.0f);
  const Tensor y = spp.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 3 * 5}));
}

TEST(Spp, GlobalLevelIsGlobalMax) {
  SpatialPyramidPool spp({1});
  Tensor x(Shape{1, 1, 5, 5}, 0.0f);
  x[13] = 42.0f;
  const Tensor y = spp.forward(x);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_EQ(y[0], 42.0f);
}

TEST(Spp, ConcatenationOrderMatchesLevels) {
  SpatialPyramidPool spp({2, 1});
  Tensor x(Shape{1, 1, 4, 4}, 0.0f);
  x.at({0, 0, 0, 0}) = 3.0f;  // top-left quadrant max
  const Tensor y = spp.forward(x);
  ASSERT_EQ(y.numel(), 5);
  EXPECT_EQ(y[0], 3.0f);  // level-2 cell (0,0)
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[4], 3.0f);  // level-1 global max
}

TEST(Sequential, ComposesAndCollectsParameters) {
  Rng rng(1);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, rng);
  net.emplace<ReLU>();
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 4 * 4, 3, rng);
  Tensor x(Shape{1, 1, 4, 4}, 1.0f);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 3}));
  const auto params = net.parameters();
  ASSERT_EQ(params.size(), 4u);  // conv w/b + linear w/b
  EXPECT_NE(params[0].name.find("Conv2d"), std::string::npos);
  EXPECT_NE(params[2].name.find("Linear"), std::string::npos);
}

TEST(Sequential, TrainingFlagPropagates) {
  Rng rng(1);
  Sequential net;
  auto& dropout = net.emplace<Dropout>(0.5, rng);
  net.set_training(false);
  EXPECT_FALSE(dropout.is_training());
  net.set_training(true);
  EXPECT_TRUE(dropout.is_training());
}

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(1);
  Dropout dropout(0.5, rng);
  dropout.set_training(false);
  Tensor x(Shape{100}, 2.0f);
  const Tensor y = dropout.forward(x);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(y[i], 2.0f);
}

TEST(Dropout, TrainingModePreservesExpectation) {
  Rng rng(2);
  Dropout dropout(0.25, rng);
  Tensor x(Shape{20000}, 1.0f);
  const Tensor y = dropout.forward(x);
  double sum = 0.0;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    sum += y[i];
    zeros += y[i] == 0.0f ? 1 : 0;
  }
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.03);  // inverted scaling
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.25, 0.02);
}

}  // namespace
}  // namespace dcn
