// Tests for pipeline-parallel sharding: graph partitioning (DP balance,
// cut legality, degenerate stage counts), weight paging in the executor,
// the microbatch pipeline executor, and the serving determinism contract
// extended to pipeline groups.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "core/error.hpp"
#include "graph/graph.hpp"
#include "graph/passes.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/trace.hpp"
#include "serve/server.hpp"
#include "shard/partition.hpp"
#include "shard/pipeline.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::shard {
namespace {

// Conv/ReLU chain into an FC head — a deep-enough linear model that K-way
// cuts have real choices, with every conv followed by the ReLU the
// optimizer would fuse (the cut-legality case).
graph::Graph chain_graph(int conv_blocks = 4, std::int64_t channels = 16) {
  graph::Graph g;
  auto prev = g.add_op(graph::OpKind::kInput, "in", {}, {},
                       graph::TensorDesc{{channels, 16, 16}});
  for (int b = 0; b < conv_blocks; ++b) {
    graph::OpAttrs conv;
    conv.kernel = 3;
    conv.stride = 1;
    conv.padding = 1;
    conv.out_channels = channels;
    prev = g.add_op(graph::OpKind::kConv2d, "conv" + std::to_string(b), conv,
                    {prev}, graph::TensorDesc{{channels, 16, 16}});
    prev = g.add_op(graph::OpKind::kReLU, "relu" + std::to_string(b), {},
                    {prev}, graph::TensorDesc{{channels, 16, 16}});
  }
  prev = g.add_op(graph::OpKind::kFlatten, "flat", {}, {prev},
                  graph::TensorDesc{{channels * 16 * 16}});
  graph::OpAttrs fc;
  fc.out_features = 64;
  prev = g.add_op(graph::OpKind::kLinear, "fc", fc, {prev},
                  graph::TensorDesc{{64}});
  g.add_op(graph::OpKind::kOutput, "out", {}, {prev},
           graph::TensorDesc{{64}});
  return g;
}

// An FC tower whose weights dwarf its activations — the shape that blows a
// small DRAM budget and pages, while a K-way split fits per stage.
graph::Graph fat_fc_graph(int layers, std::int64_t width) {
  graph::Graph g;
  auto prev = g.add_op(graph::OpKind::kInput, "in", {}, {},
                       graph::TensorDesc{{width}});
  for (int l = 0; l < layers; ++l) {
    graph::OpAttrs fc;
    fc.out_features = width;
    prev = g.add_op(graph::OpKind::kLinear, "fc" + std::to_string(l), fc,
                    {prev}, graph::TensorDesc{{width}});
  }
  g.add_op(graph::OpKind::kOutput, "out", {}, {prev},
           graph::TensorDesc{{width}});
  return g;
}

// --- Partitioning ----------------------------------------------------------

TEST(Partition, SingleStageEqualsWholeModelScheduleCost) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  PartitionOptions options;
  options.stages = 1;
  options.ios.batch = 4;
  const auto whole = ios::optimize_schedule(g, spec, options.ios);
  const double whole_cost =
      ios::schedule_cost(g, spec, whole, options.ios.batch);

  const Partition partition = partition_graph(g, spec, options);
  ASSERT_EQ(partition.stages.size(), 1u);
  EXPECT_EQ(partition.stages[0].input_bytes, 0);
  EXPECT_EQ(partition.stages[0].output_bytes, 0);
  EXPECT_DOUBLE_EQ(partition.stages[0].transfer_seconds, 0.0);
  // K = 1 cuts nothing: the one stage's subgraph is the whole model, and
  // its IOS cost must match the unsharded schedule exactly.
  EXPECT_DOUBLE_EQ(partition.bottleneck_seconds, whole_cost);
  EXPECT_DOUBLE_EQ(partition.stages[0].compute_seconds, whole_cost);
}

TEST(Partition, RejectsOutOfRangeStageCounts) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  const int n = static_cast<int>(graph::device_op_count(g));
  PartitionOptions options;
  options.stages = 0;
  EXPECT_THROW(partition_graph(g, spec, options), ConfigError);
  options.stages = n + 1;
  EXPECT_THROW(partition_graph(g, spec, options), ConfigError);
  options.stages = n;  // one op per stage is the legal extreme...
  // ...except the fused-pair constraint forbids conv|relu cuts here.
  EXPECT_THROW(partition_graph(g, spec, options), ConfigError);
}

TEST(Partition, NeverCutsBetweenConvAndItsReLU) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  for (int k = 2; k <= 4; ++k) {
    PartitionOptions options;
    options.stages = k;
    const Partition partition = partition_graph(g, spec, options);
    ASSERT_EQ(partition.stages.size(), static_cast<std::size_t>(k));
    for (const StagePlan& stage : partition.stages) {
      const std::set<graph::OpId> ops(stage.ops.begin(), stage.ops.end());
      for (graph::OpId id : stage.ops) {
        const graph::OpNode& node = g.node(id);
        if (node.kind != graph::OpKind::kReLU) continue;
        const graph::OpKind pk = g.node(node.inputs[0]).kind;
        if (pk == graph::OpKind::kConv2d || pk == graph::OpKind::kLinear) {
          EXPECT_TRUE(ops.count(node.inputs[0]) != 0)
              << node.name << " split from its producer";
        }
      }
    }
  }
}

TEST(Partition, FusedGraphPartitionsAndStagesCoverEveryOp) {
  // The optimizer's fused graph: fused nodes are atomic by construction,
  // so every stage count up to the (smaller) device-op total is legal.
  const auto fused = graph::optimize_graph(chain_graph());
  const auto spec = simgpu::a5500_spec();
  const int n = static_cast<int>(graph::device_op_count(fused));
  PartitionOptions options;
  options.stages = std::min(3, n);
  const Partition partition = partition_graph(fused, spec, options);
  int covered = 0;
  for (const StagePlan& stage : partition.stages) {
    covered += static_cast<int>(stage.ops.size());
    EXPECT_FALSE(stage.ops.empty());
    EXPECT_GT(stage.compute_seconds, 0.0);
  }
  EXPECT_EQ(covered, n);
  EXPECT_GE(partition.bottleneck_seconds,
            partition.total_compute_seconds /
                static_cast<double>(partition.stages.size()));
}

TEST(Partition, CutEdgesCarryTransferCostAndBalanceBeatsWorstStage) {
  const auto g = chain_graph(6);
  const auto spec = simgpu::a5500_spec();
  PartitionOptions options;
  options.stages = 3;
  const Partition partition = partition_graph(g, spec, options);
  // Interior stages read a cut activation and write one.
  EXPECT_EQ(partition.stages.front().input_bytes, 0);
  EXPECT_GT(partition.stages.front().output_bytes, 0);
  EXPECT_GT(partition.stages[1].input_bytes, 0);
  EXPECT_GT(partition.stages[1].transfer_seconds, 0.0);
  EXPECT_EQ(partition.stages.back().output_bytes, 0);
  // The DP's bottleneck is no worse than the trivial "everything in one
  // stage" split cost spread over any single stage.
  double worst_single = 0.0;
  for (const StagePlan& stage : partition.stages) {
    worst_single = std::max(
        worst_single, stage.compute_seconds + stage.transfer_seconds);
  }
  EXPECT_DOUBLE_EQ(partition.bottleneck_seconds, worst_single);
}

TEST(Partition, MemoryBudgetMakesSingleStageInfeasible) {
  const auto g = fat_fc_graph(4, 512);
  const auto spec = simgpu::a5500_spec();
  PartitionOptions options;
  options.ios.batch = 1;
  // Budget below the whole model but above a quarter of it: K = 1 must
  // throw, K = 4 must fit.
  const auto whole_bytes =
      static_cast<std::int64_t>(simgpu::total_weight_bytes(g));
  options.max_stage_bytes = whole_bytes / 2;
  options.stages = 1;
  EXPECT_THROW(partition_graph(g, spec, options), ConfigError);
  options.stages = 4;
  const Partition partition = partition_graph(g, spec, options);
  for (const StagePlan& stage : partition.stages) {
    EXPECT_LE(stage.resident_bytes, options.max_stage_bytes);
  }
}

// --- Weight paging (the honest replica-only baseline) ----------------------

TEST(WeightPaging, OversizedModelThrowsWithoutPagingAndPaysPcieWithIt) {
  const auto g = fat_fc_graph(4, 512);
  auto spec = simgpu::a5500_spec();
  // Shrink DRAM so the model + workspace cannot be resident.
  spec.dram_bytes =
      static_cast<std::int64_t>(simgpu::total_weight_bytes(g)) / 2;
  const auto schedule = ios::optimize_schedule(g, spec);

  simgpu::Device strict(spec);
  ios::InferenceSession no_paging(g, schedule, strict);
  EXPECT_THROW(no_paging.initialize(), OutOfMemoryError);

  simgpu::Device paged_dev(spec);
  ios::InferenceSession paged(g, schedule, paged_dev,
                              simgpu::Precision::kFp32,
                              /*allow_weight_paging=*/true);
  paged.initialize();
  EXPECT_GT(paged.paged_weight_bytes(), 0);

  // A big enough device keeps everything resident and pages nothing.
  simgpu::Device roomy_dev(simgpu::a5500_spec());
  ios::InferenceSession resident(g, schedule, roomy_dev);
  resident.initialize();
  EXPECT_EQ(resident.paged_weight_bytes(), 0);

  // The per-run PCIe tax: the paged session streams its overflow weights
  // on every inference, so it is strictly slower than the resident one.
  const double paged_latency = paged.run(1).latency_seconds;
  const double resident_latency = resident.run(1).latency_seconds;
  EXPECT_GT(paged_latency,
            resident_latency +
                static_cast<double>(paged.paged_weight_bytes()) /
                    spec.pcie_bandwidth * 0.9);
}

// --- Pipeline execution ----------------------------------------------------

PipelineOptions pipeline_options(std::int64_t microbatch = 4) {
  PipelineOptions options;
  options.microbatch = microbatch;
  options.queue_capacity = 2;
  return options;
}

TEST(Pipeline, ValidatesConstructionAndBatch) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  PartitionOptions popts;
  popts.stages = 2;
  const Partition partition = partition_graph(g, spec, popts);

  PipelineOptions bad = pipeline_options();
  bad.microbatch = 0;
  EXPECT_THROW(PipelineGroup(partition, spec, bad), ConfigError);
  bad = pipeline_options();
  bad.queue_capacity = 0;
  EXPECT_THROW(PipelineGroup(partition, spec, bad), ConfigError);

  PipelineGroup group(partition, spec, pipeline_options());
  EXPECT_EQ(group.device_count(), 2);
  EXPECT_THROW(group.serve_batch(0.0, 0), ConfigError);
}

TEST(Pipeline, MicrobatchingOverlapsStages) {
  const auto g = chain_graph(6);
  const auto spec = simgpu::a5500_spec();
  PartitionOptions popts;
  popts.stages = 3;
  popts.ios.batch = 4;
  const Partition partition = partition_graph(g, spec, popts);

  // One big batch, many microbatches: the pipelined makespan must beat
  // running the same microbatches with no overlap (sum of all stage busy
  // time), and must be at least the critical path (serial time of one
  // microbatch + steady-state drain of the rest).
  PipelineGroup group(partition, spec, pipeline_options(4));
  const auto out = group.serve_batch(0.0, 32);
  ASSERT_TRUE(out.ok);
  double total_busy = 0.0;
  for (const StageCounters& c : group.stage_counters()) {
    EXPECT_GT(c.busy_seconds, 0.0);
    EXPECT_EQ(c.microbatches, 8);
    total_busy += c.busy_seconds;
  }
  EXPECT_LT(out.end, total_busy);  // genuine overlap
  EXPECT_GT(out.end, total_busy / 3.0);
  EXPECT_GT(group.bubble_fraction(), 0.0);  // fill/drain exists
  EXPECT_LT(group.bubble_fraction(), 1.0);
}

TEST(Pipeline, DeterministicAndIndependentOfPriorBatches) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  PartitionOptions popts;
  popts.stages = 2;
  const Partition partition = partition_graph(g, spec, popts);

  PipelineGroup a(partition, spec, pipeline_options());
  PipelineGroup b(partition, spec, pipeline_options());
  const auto first = a.serve_batch(1.0e-3, 8);
  const auto second = a.serve_batch(first.end + 1.0e-3, 8);
  // Same dispatch on a fresh group: identical service time, regardless of
  // the first group's history.
  const auto fresh = b.serve_batch(first.end + 1.0e-3, 8);
  EXPECT_DOUBLE_EQ(second.end, fresh.end);
  // The service duration is independent of the dispatch instant up to
  // floating-point rounding at the shifted clock magnitude.
  EXPECT_NEAR(second.end - (first.end + 1.0e-3), first.end - 1.0e-3,
              1.0e-12);
}

TEST(Pipeline, RecordsLaneSpansIntoChromeTrace) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  PartitionOptions popts;
  popts.stages = 2;
  const Partition partition = partition_graph(g, spec, popts);

  profiler::Recorder recorder;
  PipelineOptions options = pipeline_options();
  options.lane_prefix = "pipe0";
  PipelineGroup group(partition, spec, options, &recorder);
  recorder.clear();  // drop initialization spans; keep the serving window
  ASSERT_TRUE(group.serve_batch(0.0, 8).ok);
  ASSERT_FALSE(recorder.lane_spans().empty());
  std::set<std::string> lanes;
  for (const auto& span : recorder.lane_spans()) lanes.insert(span.lane);
  EXPECT_EQ(lanes.size(), 2u);
  EXPECT_TRUE(lanes.count("pipe0/stage0") == 1);
  const std::string trace = profiler::to_chrome_trace(recorder);
  EXPECT_NE(trace.find("pipe0/stage1"), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
}

// --- Pipeline groups in the serving fleet ----------------------------------

serve::ServerConfig light_config() {
  serve::ServerConfig config;
  config.batch = {8, 2.0e-3};
  config.queue_capacity = 64;
  config.resilient.retry.max_attempts = 6;
  config.resilient.retry.base_backoff = 1.0e-4;
  config.resilient.retry.max_backoff = 5.0e-4;
  config.resilient.retry.jitter = 0.5;
  return config;
}

std::vector<std::unique_ptr<serve::Backend>> make_groups(
    const Partition& partition, const simgpu::DeviceSpec& spec, int count,
    const ios::ResilientOptions& resilient) {
  std::vector<std::unique_ptr<serve::Backend>> groups;
  for (int i = 0; i < count; ++i) {
    PipelineOptions options = pipeline_options();
    options.resilient = resilient;
    groups.push_back(
        std::make_unique<PipelineGroup>(partition, spec, options));
  }
  return groups;
}

TEST(PipelineServing, CompletionCsvInvariantAcrossGroupCounts) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  const auto schedule = ios::optimize_schedule(g, spec);
  PartitionOptions popts;
  popts.stages = 2;
  popts.ios.batch = 4;
  const Partition partition = partition_graph(g, spec, popts);

  serve::ServerConfig config = light_config();
  config.replicas = 0;
  // Transient faults exercise the per-stage salt mixing: recovery timing
  // must still be a pure function of the batch index.
  config.faults.seed = 77;
  config.faults.fail_with_probability(simgpu::FaultKind::kLaunchFailure,
                                      0.05, -1);

  serve::TrafficConfig traffic;
  traffic.seed = 11;
  traffic.duration = 4.0;
  traffic.rate = 40.0;  // light load: no batch ever waits on a busy group
  traffic.deadline = 0.25;
  const auto trace = serve::generate_trace(traffic);
  ASSERT_GT(trace.size(), 20u);

  const auto run = [&](int group_count) {
    serve::Server server(g, schedule, config, nullptr,
                         make_groups(partition, spec, group_count,
                                     config.resilient));
    server.serve(trace);
    return serve::Server::log_to_csv(server.log());
  };
  const std::string one = run(1);
  const std::string again = run(1);
  const std::string three = run(3);
  EXPECT_EQ(one, again);   // run-to-run determinism
  EXPECT_EQ(one, three);   // group-count invariance
  EXPECT_NE(one.find("id,status,arrival_ns"), std::string::npos);
}

TEST(PipelineServing, MixedFleetServesAndCountsDevices) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  const auto schedule = ios::optimize_schedule(g, spec);
  PartitionOptions popts;
  popts.stages = 2;
  const Partition partition = partition_graph(g, spec, popts);

  serve::ServerConfig config = light_config();
  config.replicas = 2;
  serve::TrafficConfig traffic;
  traffic.duration = 2.0;
  traffic.rate = 100.0;
  serve::Server server(g, schedule, config, nullptr,
                       make_groups(partition, spec, 1, config.resilient));
  const auto report = server.serve(serve::generate_trace(traffic));
  EXPECT_EQ(report.replicas, 3);
  EXPECT_EQ(report.devices, 4);  // 2 whole-model + one 2-stage group
  EXPECT_GT(report.completed, 0);
  // Device-seconds charge each dispatch's reservation window times its
  // backend's device count: more than replica-busy-seconds alone would be
  // for the whole-model entries, but the group's K-device charge stops at
  // stage-0 drain, so the two totals differ rather than strictly order.
  EXPECT_GT(report.device_seconds, 0.0);
  EXPECT_NE(report.device_seconds, report.busy_seconds);
  EXPECT_GT(report.cost_per_request(), 0.0);
  EXPECT_NE(report.to_string().find("cost per request"), std::string::npos);
}

TEST(PipelineServing, GroupDeathDegradesOneGroupNotTheFleet) {
  const auto g = chain_graph();
  const auto spec = simgpu::a5500_spec();
  const auto schedule = ios::optimize_schedule(g, spec);
  PartitionOptions popts;
  popts.stages = 2;
  const Partition partition = partition_graph(g, spec, popts);

  serve::ServerConfig config = light_config();
  config.replicas = 0;
  config.fleet.health.failure_detection = 5.0e-3;
  config.fleet.chaos.seed = 5;
  // One transient crash mid-run: some group goes down, restarts, rejoins.
  serve::CrashStorm storm;
  storm.time = 1.0;
  storm.kills = 1;
  storm.permanent = false;
  config.fleet.chaos.storms.push_back(storm);

  serve::TrafficConfig traffic;
  traffic.duration = 4.0;
  traffic.rate = 100.0;
  traffic.deadline = 0.5;
  serve::Server server(g, schedule, config, nullptr,
                       make_groups(partition, spec, 3, config.resilient));
  const auto report = server.serve(serve::generate_trace(traffic));
  EXPECT_GE(report.deaths, 1);
  // The other groups absorb the load: the fleet keeps completing, and any
  // batch caught in the crash is re-dispatched, not lost.
  EXPECT_GT(report.completed, 0);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GE(report.completed + report.deadline_expired + report.rejected,
            report.offered - 5);
}

}  // namespace
}  // namespace dcn::shard
