#include "simgpu/spec.hpp"

namespace dcn::simgpu {

DeviceSpec a5500_spec() {
  DeviceSpec spec;
  spec.name = "NVIDIA RTX A5500 (simulated)";
  spec.sm_count = 80;
  spec.peak_flops = 34.1e12;
  spec.compute_efficiency = 0.55;
  spec.blocks_per_sm = 16;
  spec.threads_per_block = 256;
  spec.dram_bandwidth = 768e9;
  spec.pcie_bandwidth = 22e9;
  spec.dram_bytes = 24ll << 30;
  spec.int8_throughput_multiplier = 3.0;
  return spec;
}

DeviceSpec tiny_spec() {
  DeviceSpec spec;
  spec.name = "Tiny test GPU (simulated)";
  spec.sm_count = 4;
  spec.peak_flops = 0.5e12;
  spec.compute_efficiency = 0.5;
  spec.blocks_per_sm = 8;
  spec.threads_per_block = 128;
  spec.dram_bandwidth = 50e9;
  spec.pcie_bandwidth = 8e9;
  spec.dram_bytes = 2ll << 30;
  spec.int8_throughput_multiplier = 3.0;
  return spec;
}

}  // namespace dcn::simgpu
