// The simulated GPU device.
//
// Maintains a virtual timeline with a host clock (advanced by API-call
// durations) and a device work queue (advanced by kernel/memcpy
// executions). Every API call is recorded into the attached profiler
// Recorder, so an nsys-style report falls out of any simulated run.
//
// Execution granularity is the *stage*: a set of kernel groups running
// concurrently on separate streams (an IOS stage; a single-kernel stage
// models ordinary eager execution). The cost model prices the stage; the
// device places it on the timeline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "profiler/recorder.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/faults.hpp"
#include "simgpu/kernels.hpp"
#include "simgpu/memory.hpp"
#include "simgpu/spec.hpp"

namespace dcn::simgpu {

class Device {
 public:
  explicit Device(DeviceSpec spec, profiler::Recorder* recorder = nullptr);

  /// A Device is single-owner, single-thread state: the virtual clocks, the
  /// memory tracker, and the fault injector's RNG all mutate on every call.
  /// Parallel NAS workers each construct their own Device (with its own
  /// seeded injector) rather than sharing one — copying would silently fork
  /// the fault stream, so both copy and move are disallowed.
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;
  Device(Device&&) = delete;
  Device& operator=(Device&&) = delete;

  const DeviceSpec& spec() const { return spec_; }

  /// One-time module/library load (cuLibraryLoadData): cost scales with the
  /// number of distinct kernels in the program. Subsequent calls are no-ops
  /// (the driver caches the module), matching nsys traces where the load
  /// appears once per process.
  void load_library(int num_kernels);

  /// Allocate / free device memory (tracked against spec().dram_bytes).
  BufferId malloc(std::int64_t bytes);
  void free(BufferId id);
  const MemoryTracker& memory() const { return memory_; }

  /// Create a stream (host-side cost only; streams are implicit in the
  /// stage model).
  void create_stream();

  /// Blocking host->device / device->host copies over PCIe.
  void memcpy_h2d(std::int64_t bytes);
  void memcpy_d2h(std::int64_t bytes);

  /// Execute one stage: groups of kernels run concurrently, kernels within
  /// a group run back-to-back on one stream. Advances the device queue and
  /// records one launch API span per kernel plus per-kernel activity spans.
  void run_stage(const std::vector<std::vector<KernelDesc>>& groups,
                 std::int64_t batch);

  /// Host waits for the device queue to drain (cudaDeviceSynchronize).
  /// With a sync timeout set and a wait (e.g. an injected hang) exceeding
  /// it, throws dcn::TimeoutError after charging the timeout.
  void synchronize();

  /// Current host time (seconds on the virtual timeline).
  double host_time() const { return host_time_; }
  /// Time at which the device queue drains.
  double device_ready() const { return device_ready_; }

  /// Reset both clocks to zero (keeps memory and library state).
  void reset_clocks();

  /// Host-side sleep on the virtual clock (retry backoff); the device
  /// queue keeps draining underneath.
  void advance_host(double seconds);

  // --- Fault injection & recovery -----------------------------------------

  /// Attach a fault plan (replaces any existing injector). An empty plan
  /// detaches. The injector is consulted on every launch/memcpy/malloc/sync.
  void set_fault_plan(const FaultPlan& plan);
  /// The active injector, or nullptr when no plan is attached.
  const FaultInjector* fault_injector() const { return faults_.get(); }

  /// Watchdog deadline for synchronize() waits (0 disables).
  void set_sync_timeout(double seconds);
  double sync_timeout() const { return sync_timeout_; }

  /// Device-loss recovery (cudaDeviceReset): drops queued work, frees all
  /// simulated memory, and unloads the library; charges
  /// spec().device_reset_cpu on the host clock. Callers must re-run their
  /// initialization (library load, weight upload) afterwards.
  void hard_reset();

  /// Record a recovery action (retry, backoff, re-init) as a trace event.
  void record_recovery(const std::string& name, double duration,
                       const std::string& detail);

 private:
  void record_api(profiler::ApiKind kind, const std::string& name,
                  double start, double duration);
  /// Consult the injector for one eligible operation; fired faults are
  /// recorded into the profiler before being returned.
  std::optional<InjectedFault> check_fault(FaultKind kind, double duration);
  void do_memcpy(profiler::MemopKind kind, const std::string& name,
                 std::int64_t bytes);

  DeviceSpec spec_;
  profiler::Recorder* recorder_;
  MemoryTracker memory_;
  std::unique_ptr<FaultInjector> faults_;
  double sync_timeout_ = 0.0;
  double host_time_ = 0.0;
  double device_ready_ = 0.0;
  bool library_loaded_ = false;
};

}  // namespace dcn::simgpu
