// The simulated GPU device.
//
// Maintains a virtual timeline with a host clock (advanced by API-call
// durations) and a device work queue (advanced by kernel/memcpy
// executions). Every API call is recorded into the attached profiler
// Recorder, so an nsys-style report falls out of any simulated run.
//
// Execution granularity is the *stage*: a set of kernel groups running
// concurrently on separate streams (an IOS stage; a single-kernel stage
// models ordinary eager execution). The cost model prices the stage; the
// device places it on the timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profiler/recorder.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/kernels.hpp"
#include "simgpu/memory.hpp"
#include "simgpu/spec.hpp"

namespace dcn::simgpu {

class Device {
 public:
  explicit Device(DeviceSpec spec, profiler::Recorder* recorder = nullptr);

  const DeviceSpec& spec() const { return spec_; }

  /// One-time module/library load (cuLibraryLoadData): cost scales with the
  /// number of distinct kernels in the program. Subsequent calls are no-ops
  /// (the driver caches the module), matching nsys traces where the load
  /// appears once per process.
  void load_library(int num_kernels);

  /// Allocate / free device memory (tracked against spec().dram_bytes).
  BufferId malloc(std::int64_t bytes);
  void free(BufferId id);
  const MemoryTracker& memory() const { return memory_; }

  /// Create a stream (host-side cost only; streams are implicit in the
  /// stage model).
  void create_stream();

  /// Blocking host->device / device->host copies over PCIe.
  void memcpy_h2d(std::int64_t bytes);
  void memcpy_d2h(std::int64_t bytes);

  /// Execute one stage: groups of kernels run concurrently, kernels within
  /// a group run back-to-back on one stream. Advances the device queue and
  /// records one launch API span per kernel plus per-kernel activity spans.
  void run_stage(const std::vector<std::vector<KernelDesc>>& groups,
                 std::int64_t batch);

  /// Host waits for the device queue to drain (cudaDeviceSynchronize).
  void synchronize();

  /// Current host time (seconds on the virtual timeline).
  double host_time() const { return host_time_; }
  /// Time at which the device queue drains.
  double device_ready() const { return device_ready_; }

  /// Reset both clocks to zero (keeps memory and library state).
  void reset_clocks();

 private:
  void record_api(profiler::ApiKind kind, const std::string& name,
                  double start, double duration);

  DeviceSpec spec_;
  profiler::Recorder* recorder_;
  MemoryTracker memory_;
  double host_time_ = 0.0;
  double device_ready_ = 0.0;
  bool library_loaded_ = false;
};

}  // namespace dcn::simgpu
