#include "simgpu/faults.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "core/error.hpp"

namespace dcn::simgpu {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLaunchFailure:
      return "launch_failure";
    case FaultKind::kMemcpyCorruption:
      return "memcpy_corruption";
    case FaultKind::kMemcpySlowdown:
      return "memcpy_slowdown";
    case FaultKind::kAllocFailure:
      return "alloc_failure";
    case FaultKind::kSyncHang:
      return "sync_hang";
    case FaultKind::kReplicaDeath:
      return "replica_death";
    case FaultKind::kStraggler:
      return "straggler";
  }
  return "unknown";
}

FaultPlan& FaultPlan::fail_at(FaultKind kind, std::int64_t at_op,
                              int max_fires) {
  FaultRule rule;
  rule.kind = kind;
  rule.at_op = at_op;
  rule.max_fires = max_fires;
  rules.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::fail_after(FaultKind kind, double after_time,
                                 int max_fires) {
  FaultRule rule;
  rule.kind = kind;
  rule.after_time = after_time;
  rule.max_fires = max_fires;
  rules.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::die_after(double after_time, int max_fires) {
  FaultRule rule;
  rule.kind = FaultKind::kReplicaDeath;
  rule.after_time = after_time;
  rule.max_fires = max_fires;
  rules.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::straggle(double onset, double duration, double factor) {
  DCN_CHECK(factor >= 1.0) << "straggler factor " << factor;
  FaultRule rule;
  rule.kind = FaultKind::kStraggler;
  rule.after_time = onset;
  rule.duration = duration;
  rule.slowdown_factor = factor;
  rules.push_back(rule);
  return *this;
}

double FaultPlan::death_time() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const FaultRule& rule : rules) {
    if (rule.kind == FaultKind::kReplicaDeath && rule.after_time >= 0.0) {
      earliest = std::min(earliest, rule.after_time);
    }
  }
  return earliest;
}

int FaultPlan::death_budget() const {
  const double earliest = death_time();
  for (const FaultRule& rule : rules) {
    if (rule.kind == FaultKind::kReplicaDeath &&
        rule.after_time == earliest) {
      return rule.max_fires;
    }
  }
  return 0;
}

double FaultPlan::straggler_factor(double now) const {
  double factor = 1.0;
  for (const FaultRule& rule : rules) {
    if (rule.kind != FaultKind::kStraggler || rule.after_time < 0.0) continue;
    if (now < rule.after_time) continue;
    if (rule.duration > 0.0 && now >= rule.after_time + rule.duration) {
      continue;
    }
    factor = std::max(factor, rule.slowdown_factor);
  }
  return factor;
}

FaultPlan& FaultPlan::fail_with_probability(FaultKind kind, double probability,
                                            int max_fires) {
  DCN_CHECK(probability >= 0.0 && probability <= 1.0)
      << "fault probability " << probability;
  FaultRule rule;
  rule.kind = kind;
  rule.probability = probability;
  rule.max_fires = max_fires;
  rules.push_back(rule);
  return *this;
}

namespace {

FaultKind parse_kind(const std::string& name) {
  if (name == "launch") return FaultKind::kLaunchFailure;
  if (name == "memcpy_corrupt") return FaultKind::kMemcpyCorruption;
  if (name == "memcpy_slow") return FaultKind::kMemcpySlowdown;
  if (name == "alloc") return FaultKind::kAllocFailure;
  if (name == "sync_hang") return FaultKind::kSyncHang;
  if (name == "replica_death") return FaultKind::kReplicaDeath;
  if (name == "straggler") return FaultKind::kStraggler;
  throw ConfigError(
      "unknown fault kind '" + name +
      "' (expected launch | memcpy_corrupt | memcpy_slow | alloc | "
      "sync_hang | replica_death | straggler)");
}

double parse_number(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("bad value '" + value + "' for fault key '" + key +
                      "'");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::istringstream rules_stream(spec);
  std::string rule_text;
  while (std::getline(rules_stream, rule_text, ';')) {
    if (rule_text.empty()) continue;
    const std::size_t colon = rule_text.find(':');
    FaultRule rule;
    rule.kind = parse_kind(rule_text.substr(0, colon));
    bool triggered = false;
    if (colon != std::string::npos) {
      std::istringstream kv_stream(rule_text.substr(colon + 1));
      std::string kv;
      while (std::getline(kv_stream, kv, ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          throw ConfigError("fault key '" + kv + "' missing '=value'");
        }
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "p") {
          rule.probability = parse_number(key, value);
          DCN_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0)
              << "fault probability " << rule.probability;
          rule.max_fires = -1;  // stochastic rules default to unbounded
          triggered = true;
        } else if (key == "at") {
          rule.at_op = static_cast<std::int64_t>(parse_number(key, value));
          triggered = true;
        } else if (key == "after") {
          rule.after_time = parse_number(key, value);
          triggered = true;
        } else if (key == "fires") {
          rule.max_fires = static_cast<int>(parse_number(key, value));
        } else if (key == "factor") {
          rule.slowdown_factor = parse_number(key, value);
        } else if (key == "dur") {
          rule.duration = parse_number(key, value);
        } else if (key == "hang") {
          plan.hang_seconds = parse_number(key, value);
        } else {
          throw ConfigError("unknown fault key '" + key +
                            "' (expected p | at | after | fires | factor | "
                            "dur | hang)");
        }
      }
    }
    if (!triggered) {
      throw ConfigError("fault rule '" + rule_text +
                        "' needs a trigger (p=, at=, or after=)");
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed),
      fires_per_rule_(plan_.rules.size(), 0) {}

std::optional<InjectedFault> FaultInjector::check(FaultKind kind, double now) {
  const auto kind_index = static_cast<std::size_t>(kind);
  const std::int64_t op = ops_seen_[kind_index]++;
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.kind != kind) continue;
    if (rule.max_fires >= 0 && fires_per_rule_[r] >= rule.max_fires) continue;
    bool fires = false;
    std::string trigger;
    if (rule.at_op >= 0) {
      // Persists across consecutive eligible ops until max_fires is spent,
      // which models a fault surviving the first retries.
      fires = op >= rule.at_op;
      trigger = "at_op=" + std::to_string(rule.at_op);
    } else if (rule.after_time >= 0.0) {
      fires = now >= rule.after_time;
      trigger = "after_time";
    } else if (rule.probability > 0.0) {
      // Draw exactly once per eligible op so the RNG stream — and hence the
      // fault schedule — is a pure function of the operation sequence.
      fires = rng_.bernoulli(rule.probability);
      trigger = "p=" + std::to_string(rule.probability);
    }
    if (!fires) continue;
    ++fires_per_rule_[r];
    InjectedFault fault;
    fault.kind = kind;
    fault.time = now;
    fault.op_index = op;
    fault.slowdown_factor =
        kind == FaultKind::kMemcpySlowdown ? rule.slowdown_factor : 1.0;
    fault.detail = std::string(fault_kind_name(kind)) + " (" + trigger +
                   ", op " + std::to_string(op) + ")";
    injected_.push_back(fault);
    return fault;
  }
  return std::nullopt;
}

int FaultInjector::fired(FaultKind kind) const {
  int count = 0;
  for (const InjectedFault& fault : injected_) {
    if (fault.kind == kind) ++count;
  }
  return count;
}

std::int64_t FaultInjector::ops_seen(FaultKind kind) const {
  return ops_seen_[static_cast<std::size_t>(kind)];
}

}  // namespace dcn::simgpu
