#include "simgpu/device.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace dcn::simgpu {

Device::Device(DeviceSpec spec, profiler::Recorder* recorder)
    : spec_(std::move(spec)), recorder_(recorder) {}

void Device::record_api(profiler::ApiKind kind, const std::string& name,
                        double start, double duration) {
  if (recorder_ != nullptr) {
    recorder_->record_api(kind, name, start, duration);
  }
}

std::optional<InjectedFault> Device::check_fault(FaultKind kind,
                                                double duration) {
  if (!faults_) return std::nullopt;
  auto fault = faults_->check(kind, host_time_);
  if (fault && recorder_ != nullptr) {
    recorder_->record_fault(fault_kind_name(kind), host_time_, duration,
                            fault->detail);
  }
  return fault;
}

void Device::set_fault_plan(const FaultPlan& plan) {
  faults_ = plan.empty() ? nullptr : std::make_unique<FaultInjector>(plan);
}

void Device::set_sync_timeout(double seconds) {
  DCN_CHECK(seconds >= 0.0) << "sync timeout " << seconds;
  sync_timeout_ = seconds;
}

void Device::load_library(int num_kernels) {
  if (library_loaded_) return;
  DCN_CHECK(num_kernels > 0) << "library with no kernels";
  const double duration = spec_.library_load_per_kernel * num_kernels;
  record_api(profiler::ApiKind::kLibraryLoadData, "module", host_time_,
             duration);
  host_time_ += duration;
  library_loaded_ = true;
}

BufferId Device::malloc(std::int64_t bytes) {
  if (check_fault(FaultKind::kAllocFailure, 0.0)) {
    record_api(profiler::ApiKind::kMemAlloc, "malloc", host_time_,
               spec_.malloc_cpu);
    host_time_ += spec_.malloc_cpu;
    std::ostringstream os;
    os << "injected allocation failure (cudaErrorMemoryAllocation): "
       << bytes << " bytes requested, " << memory_.live_bytes() << " live of "
       << spec_.dram_bytes << " capacity";
    throw OutOfMemoryError(os.str(), bytes, memory_.live_bytes(),
                           spec_.dram_bytes, /*retryable=*/true);
  }
  const BufferId id = memory_.allocate(bytes, spec_.dram_bytes);
  record_api(profiler::ApiKind::kMemAlloc, "malloc", host_time_,
             spec_.malloc_cpu);
  host_time_ += spec_.malloc_cpu;
  return id;
}

void Device::free(BufferId id) {
  memory_.free(id);
  record_api(profiler::ApiKind::kMemFree, "free", host_time_,
             spec_.malloc_cpu);
  host_time_ += spec_.malloc_cpu;
}

void Device::create_stream() {
  record_api(profiler::ApiKind::kStreamCreate, "stream", host_time_,
             spec_.stream_create_cpu);
  host_time_ += spec_.stream_create_cpu;
}

void Device::do_memcpy(profiler::MemopKind kind, const std::string& name,
                       std::int64_t bytes) {
  DCN_CHECK(bytes >= 0) << "negative copy";
  double transfer =
      spec_.memcpy_latency + static_cast<double>(bytes) / spec_.pcie_bandwidth;
  // Degraded PCIe link: the copy completes but at a fraction of the
  // bandwidth; no error surfaces (only the timeline shows it).
  if (faults_) {
    if (auto slow = faults_->check(FaultKind::kMemcpySlowdown, host_time_)) {
      const double slowed = transfer * slow->slowdown_factor;
      if (recorder_ != nullptr) {
        recorder_->record_fault(fault_kind_name(FaultKind::kMemcpySlowdown),
                                host_time_, slowed - transfer, slow->detail);
      }
      transfer = slowed;
    }
  }
  // Blocking copy: waits for the queue, then transfers.
  const double start = std::max(host_time_, device_ready_);
  const bool h2d = kind == profiler::MemopKind::kH2D;
  record_api(h2d ? profiler::ApiKind::kMemcpyH2D : profiler::ApiKind::kMemcpyD2H,
             name, host_time_, (start - host_time_) + transfer);
  if (recorder_ != nullptr) {
    recorder_->record_memop(kind, name, start, transfer, bytes);
  }
  host_time_ = start + transfer;
  device_ready_ = std::max(device_ready_, host_time_);
  // ECC / PCIe replay error: the time was spent, then the copy is reported
  // failed. Transient — a retried copy usually succeeds.
  if (check_fault(FaultKind::kMemcpyCorruption, 0.0)) {
    std::ostringstream os;
    os << "injected " << (h2d ? "H2D" : "D2H")
       << " memcpy corruption (ECC/PCIe replay error), " << bytes << " bytes";
    throw DeviceFault(os.str(), /*retryable=*/true);
  }
}

void Device::memcpy_h2d(std::int64_t bytes) {
  do_memcpy(profiler::MemopKind::kH2D, "input", bytes);
}

void Device::memcpy_d2h(std::int64_t bytes) {
  do_memcpy(profiler::MemopKind::kD2H, "output", bytes);
}

void Device::run_stage(const std::vector<std::vector<KernelDesc>>& groups,
                       std::int64_t batch) {
  DCN_CHECK(library_loaded_) << "run_stage before load_library";
  DCN_CHECK(!groups.empty()) << "empty stage";

  // Host issues one launch per kernel (asynchronously).
  std::size_t num_kernels = 0;
  for (const auto& group : groups) num_kernels += group.size();
  DCN_CHECK(num_kernels > 0) << "stage with no kernels";
  const double first_launch_done = host_time_ + spec_.kernel_launch_cpu;
  for (const auto& group : groups) {
    for (const KernelDesc& kernel : group) {
      record_api(profiler::ApiKind::kLaunchKernel, kernel.name, host_time_,
                 spec_.kernel_launch_cpu);
      host_time_ += spec_.kernel_launch_cpu;
      if (check_fault(FaultKind::kLaunchFailure, 0.0)) {
        throw DeviceFault("injected kernel launch failure "
                          "(cudaErrorLaunchFailure): " +
                              kernel.name,
                          /*retryable=*/true);
      }
    }
  }

  // Device side: a stream starts executing as soon as its first launch
  // lands (launch issuing pipelines with execution), gated by the previous
  // stage's completion plus the dependency-resolution gap. The stage can
  // still not complete before the host has issued its last launch.
  const double stage_start =
      std::max(device_ready_ + spec_.inter_stage_gap, first_launch_done);
  const double duration = stage_seconds(spec_, groups, batch);
  device_ready_ = std::max(stage_start + duration, host_time_);

  // Kernel activity spans for the profiler. With one group, kernels run
  // back-to-back at their solo costs; with concurrent groups, each group
  // streams from stage_start and kernels are charged their saturated
  // resource times (what nsys would attribute under contention).
  if (recorder_ != nullptr) {
    const bool concurrent = groups.size() > 1;
    for (const auto& group : groups) {
      double t = stage_start;
      for (const KernelDesc& kernel : group) {
        const KernelCost cost = kernel_cost(spec_, kernel, batch);
        const double kernel_duration =
            concurrent
                ? std::max(cost.saturated_seconds, spec_.min_kernel_time)
                : cost.solo_seconds;
        recorder_->record_kernel(kernel.category, kernel.name, t,
                                 kernel_duration, batch);
        t += kernel_duration;
      }
    }
  }
}

void Device::synchronize() {
  // A hung device: the queue stalls for hang_seconds before draining.
  if (faults_) {
    const double hang = faults_->plan().hang_seconds;
    if (check_fault(FaultKind::kSyncHang, hang)) {
      device_ready_ = std::max(device_ready_, host_time_) + hang;
    }
  }
  const double wait = std::max(0.0, device_ready_ - host_time_);
  if (sync_timeout_ > 0.0 && wait > sync_timeout_) {
    // Watchdog: give up after the deadline; the queue is still wedged, so
    // the caller must hard_reset() before reusing the device.
    const double duration = spec_.sync_api_floor + sync_timeout_;
    record_api(profiler::ApiKind::kDeviceSynchronize, "sync", host_time_,
               duration);
    host_time_ += duration;
    std::ostringstream os;
    os << "device synchronize exceeded " << sync_timeout_
       << "s watchdog (queue drains at " << device_ready_ << "s)";
    throw TimeoutError(os.str(), sync_timeout_);
  }
  const double duration = spec_.sync_api_floor + wait;
  record_api(profiler::ApiKind::kDeviceSynchronize, "sync", host_time_,
             duration);
  host_time_ += duration;
  device_ready_ = std::max(device_ready_, host_time_);
}

void Device::reset_clocks() {
  host_time_ = 0.0;
  device_ready_ = 0.0;
}

void Device::advance_host(double seconds) {
  DCN_CHECK(seconds >= 0.0) << "negative sleep";
  host_time_ += seconds;
}

void Device::hard_reset() {
  record_api(profiler::ApiKind::kDeviceReset, "reset", host_time_,
             spec_.device_reset_cpu);
  host_time_ += spec_.device_reset_cpu;
  device_ready_ = host_time_;  // queued work is dropped
  memory_.clear();
  library_loaded_ = false;
}

void Device::record_recovery(const std::string& name, double duration,
                             const std::string& detail) {
  if (recorder_ != nullptr) {
    recorder_->record_fault(name, host_time_, duration, detail);
  }
}

}  // namespace dcn::simgpu
