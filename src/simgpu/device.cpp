#include "simgpu/device.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dcn::simgpu {

Device::Device(DeviceSpec spec, profiler::Recorder* recorder)
    : spec_(std::move(spec)), recorder_(recorder) {}

void Device::record_api(profiler::ApiKind kind, const std::string& name,
                        double start, double duration) {
  if (recorder_ != nullptr) {
    recorder_->record_api(kind, name, start, duration);
  }
}

void Device::load_library(int num_kernels) {
  if (library_loaded_) return;
  DCN_CHECK(num_kernels > 0) << "library with no kernels";
  const double duration = spec_.library_load_per_kernel * num_kernels;
  record_api(profiler::ApiKind::kLibraryLoadData, "module", host_time_,
             duration);
  host_time_ += duration;
  library_loaded_ = true;
}

BufferId Device::malloc(std::int64_t bytes) {
  const BufferId id = memory_.allocate(bytes, spec_.dram_bytes);
  record_api(profiler::ApiKind::kMemAlloc, "malloc", host_time_,
             spec_.malloc_cpu);
  host_time_ += spec_.malloc_cpu;
  return id;
}

void Device::free(BufferId id) {
  memory_.free(id);
  record_api(profiler::ApiKind::kMemFree, "free", host_time_,
             spec_.malloc_cpu);
  host_time_ += spec_.malloc_cpu;
}

void Device::create_stream() {
  record_api(profiler::ApiKind::kStreamCreate, "stream", host_time_,
             spec_.stream_create_cpu);
  host_time_ += spec_.stream_create_cpu;
}

void Device::memcpy_h2d(std::int64_t bytes) {
  DCN_CHECK(bytes >= 0) << "negative copy";
  const double transfer =
      spec_.memcpy_latency + static_cast<double>(bytes) / spec_.pcie_bandwidth;
  // Blocking copy: waits for the queue, then transfers.
  const double start = std::max(host_time_, device_ready_);
  record_api(profiler::ApiKind::kMemcpyH2D, "input", host_time_,
             (start - host_time_) + transfer);
  if (recorder_ != nullptr) {
    recorder_->record_memop(profiler::MemopKind::kH2D, "input", start,
                            transfer, bytes);
  }
  host_time_ = start + transfer;
  device_ready_ = std::max(device_ready_, host_time_);
}

void Device::memcpy_d2h(std::int64_t bytes) {
  DCN_CHECK(bytes >= 0) << "negative copy";
  const double transfer =
      spec_.memcpy_latency + static_cast<double>(bytes) / spec_.pcie_bandwidth;
  const double start = std::max(host_time_, device_ready_);
  record_api(profiler::ApiKind::kMemcpyD2H, "output", host_time_,
             (start - host_time_) + transfer);
  if (recorder_ != nullptr) {
    recorder_->record_memop(profiler::MemopKind::kD2H, "output", start,
                            transfer, bytes);
  }
  host_time_ = start + transfer;
  device_ready_ = std::max(device_ready_, host_time_);
}

void Device::run_stage(const std::vector<std::vector<KernelDesc>>& groups,
                       std::int64_t batch) {
  DCN_CHECK(library_loaded_) << "run_stage before load_library";
  DCN_CHECK(!groups.empty()) << "empty stage";

  // Host issues one launch per kernel (asynchronously).
  std::size_t num_kernels = 0;
  for (const auto& group : groups) num_kernels += group.size();
  DCN_CHECK(num_kernels > 0) << "stage with no kernels";
  const double first_launch_done = host_time_ + spec_.kernel_launch_cpu;
  for (const auto& group : groups) {
    for (const KernelDesc& kernel : group) {
      record_api(profiler::ApiKind::kLaunchKernel, kernel.name, host_time_,
                 spec_.kernel_launch_cpu);
      host_time_ += spec_.kernel_launch_cpu;
    }
  }

  // Device side: a stream starts executing as soon as its first launch
  // lands (launch issuing pipelines with execution), gated by the previous
  // stage's completion plus the dependency-resolution gap. The stage can
  // still not complete before the host has issued its last launch.
  const double stage_start =
      std::max(device_ready_ + spec_.inter_stage_gap, first_launch_done);
  const double duration = stage_seconds(spec_, groups, batch);
  device_ready_ = std::max(stage_start + duration, host_time_);

  // Kernel activity spans for the profiler. With one group, kernels run
  // back-to-back at their solo costs; with concurrent groups, each group
  // streams from stage_start and kernels are charged their saturated
  // resource times (what nsys would attribute under contention).
  if (recorder_ != nullptr) {
    const bool concurrent = groups.size() > 1;
    for (const auto& group : groups) {
      double t = stage_start;
      for (const KernelDesc& kernel : group) {
        const KernelCost cost = kernel_cost(spec_, kernel, batch);
        const double kernel_duration =
            concurrent
                ? std::max(cost.saturated_seconds, spec_.min_kernel_time)
                : cost.solo_seconds;
        recorder_->record_kernel(kernel.category, kernel.name, t,
                                 kernel_duration, batch);
        t += kernel_duration;
      }
    }
  }
}

void Device::synchronize() {
  const double wait = std::max(0.0, device_ready_ - host_time_);
  const double duration = spec_.sync_api_floor + wait;
  record_api(profiler::ApiKind::kDeviceSynchronize, "sync", host_time_,
             duration);
  host_time_ += duration;
  device_ready_ = std::max(device_ready_, host_time_);
}

void Device::reset_clocks() {
  host_time_ = 0.0;
  device_ready_ = 0.0;
}

}  // namespace dcn::simgpu
