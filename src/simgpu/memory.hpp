// Device memory tracking (the Fig. 7 "memory is not the constraint" view).
#pragma once

#include <cstdint>
#include <map>

namespace dcn::simgpu {

using BufferId = std::int64_t;

/// Tracks simulated device allocations and peak usage.
class MemoryTracker {
 public:
  /// Allocate `bytes`; throws dcn::OutOfMemoryError (with the requested
  /// size, live bytes, and capacity) when the device would be
  /// oversubscribed beyond `capacity_bytes`.
  BufferId allocate(std::int64_t bytes, std::int64_t capacity_bytes);

  /// Free a live buffer. Freeing an unknown or already-freed id throws
  /// dcn::DeviceFault (non-retryable, with live-buffer context).
  void free(BufferId id);

  /// Drop every live buffer (device-loss recovery; peak is preserved).
  void clear();

  std::int64_t live_bytes() const { return live_bytes_; }
  std::int64_t peak_bytes() const { return peak_bytes_; }
  std::int64_t live_buffers() const {
    return static_cast<std::int64_t>(buffers_.size());
  }

 private:
  std::map<BufferId, std::int64_t> buffers_;
  BufferId next_id_ = 1;
  std::int64_t live_bytes_ = 0;
  std::int64_t peak_bytes_ = 0;
};

}  // namespace dcn::simgpu
