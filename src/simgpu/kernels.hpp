// Kernel descriptors: the unit of work the simulated device executes.
//
// A KernelDesc captures the batch-independent work profile of one graph
// operator; the cost model scales it by the runtime batch size. Weights are
// charged as DRAM reads on every launch (they are resident on-device but
// not in cache), which is what makes small-batch FC layers memory-bound —
// the effect behind the paper's Table-3 MatMul dominance at batch 1.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "profiler/events.hpp"

namespace dcn::simgpu {

struct KernelDesc {
  std::string name;
  profiler::KernelCategory category = profiler::KernelCategory::kConv;
  /// FLOPs per sample.
  double flops_per_sample = 0.0;
  /// Activation bytes (in + out) per sample.
  double activation_bytes_per_sample = 0.0;
  /// Weight bytes read per launch (batch-independent).
  double weight_bytes = 0.0;
  /// Parallel threads per sample (one per output element).
  double threads_per_sample = 0.0;
};

/// Map a graph op kind to its profiling category.
profiler::KernelCategory categorize(graph::OpKind kind);

/// Whether the op launches a device kernel at all (Input/Output do not).
bool is_device_op(graph::OpKind kind);

/// Build the kernel descriptor for one graph node.
KernelDesc make_kernel_desc(const graph::Graph& graph, graph::OpId id);

/// Descriptors for every device op in the graph, indexed by OpId (ops that
/// launch nothing get a zero-work descriptor).
std::vector<KernelDesc> make_kernel_table(const graph::Graph& graph);

/// Total weight bytes of the model (what lives in device DRAM).
double total_weight_bytes(const graph::Graph& graph);

}  // namespace dcn::simgpu
