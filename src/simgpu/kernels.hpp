// Kernel descriptors: the unit of work the simulated device executes.
//
// A KernelDesc captures the batch-independent work profile of one graph
// operator; the cost model scales it by the runtime batch size. Weights are
// charged as DRAM reads on every launch (they are resident on-device but
// not in cache), which is what makes small-batch FC layers memory-bound —
// the effect behind the paper's Table-3 MatMul dominance at batch 1.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "profiler/events.hpp"

namespace dcn::simgpu {

/// Numeric precision a kernel executes at. INT8 kernels read quarter-width
/// activations and weights, and the dense math (conv/GEMM) runs through the
/// device's DP4A/IMMA path (DeviceSpec::int8_throughput_multiplier).
enum class Precision { kFp32 = 0, kInt8 = 1 };

const char* precision_name(Precision precision);
/// Inverse of precision_name; throws ConfigError for unknown names.
Precision precision_from_name(const std::string& name);

/// Whether the int8 compute path accelerates this kernel category (dense
/// conv/GEMM math; pooling, elementwise, and copies only gain the
/// quarter-width memory traffic).
bool int8_compute_eligible(profiler::KernelCategory category);

/// Operation fused into a kernel's output store (the graph optimizer's
/// FusedConvReLU / FusedLinearReLU nodes). Deliberately part of a kernel's
/// *identity*, not its work profile: the epilogue is free in the cost model
/// (it rides registers already being written back), which makes a fused
/// kernel's flops/bytes/threads identical to its unfused base op's — so
/// anything keying kernels by work profile alone would collide the two.
enum class Epilogue { kNone = 0, kReLU = 1 };

const char* epilogue_name(Epilogue epilogue);

struct KernelDesc {
  std::string name;
  profiler::KernelCategory category = profiler::KernelCategory::kConv;
  Precision precision = Precision::kFp32;
  Epilogue epilogue = Epilogue::kNone;
  /// FLOPs per sample (MAC count — precision-independent; the cost model
  /// applies the int8 throughput multiplier for eligible categories).
  double flops_per_sample = 0.0;
  /// Activation bytes (in + out) per sample at this precision.
  double activation_bytes_per_sample = 0.0;
  /// Weight bytes read per launch (batch-independent) at this precision.
  double weight_bytes = 0.0;
  /// Parallel threads per sample (one per output element).
  double threads_per_sample = 0.0;
};

/// Map a graph op kind to its profiling category (fused kinds categorize as
/// their base compute op: a FusedConvReLU is still one conv-shaped launch).
profiler::KernelCategory categorize(graph::OpKind kind);

/// Whether the op launches a device kernel at all (Input/Output do not;
/// folded Constants are materialized with the weights and launch nothing).
bool is_device_op(graph::OpKind kind);

/// Build the kernel descriptor for one graph node at the given precision.
/// INT8 descriptors carry quarter-width activation/weight traffic; the op's
/// MAC count is unchanged (the throughput gain is a device property).
KernelDesc make_kernel_desc(const graph::Graph& graph, graph::OpId id,
                            Precision precision = Precision::kFp32);

/// Descriptors for every device op in the graph, indexed by OpId (ops that
/// launch nothing get a zero-work descriptor).
std::vector<KernelDesc> make_kernel_table(
    const graph::Graph& graph, Precision precision = Precision::kFp32);

/// Total weight bytes of the model (what lives in device DRAM).
double total_weight_bytes(const graph::Graph& graph);

}  // namespace dcn::simgpu
