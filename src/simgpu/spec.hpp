// Simulated-device specification.
//
// Parameterizes the analytic cost model to a concrete GPU. a5500_spec()
// approximates the paper's test machine (NVIDIA RTX A5500: 80 SMs / 10240
// CUDA cores, 34.1 TFLOP/s fp32 peak, 768 GB/s GDDR6, 24 GB, PCIe 4.0 x16).
// The model predicts trends, not cycle-exact times: what the reproduction
// relies on is the relative behaviour across schedules and batch sizes.
#pragma once

#include <cstdint>
#include <string>

namespace dcn::simgpu {

struct DeviceSpec {
  std::string name = "Simulated GPU";

  // Compute.
  int sm_count = 80;
  /// Peak single-precision throughput, FLOP/s.
  double peak_flops = 34.1e12;
  /// Fraction of peak a well-tuned dense kernel sustains.
  double compute_efficiency = 0.55;
  /// Concurrent thread blocks one SM can host.
  int blocks_per_sm = 16;
  /// Threads per block assumed by the launch-configuration model.
  int threads_per_block = 256;
  /// Sustained int8 dense-math speedup over fp32 (DP4A/IMMA path). Applies
  /// to conv/GEMM kernels only; memory-bound ops gain from narrower traffic
  /// instead. Deliberately below the 4x datasheet ratio — real int8 kernels
  /// lose some of it to dequant epilogues and tail effects.
  double int8_throughput_multiplier = 3.0;

  // Memory.
  double dram_bandwidth = 768e9;      // bytes/s
  double pcie_bandwidth = 22e9;       // bytes/s effective host<->device
  std::int64_t dram_bytes = 24ll << 30;

  // Overheads (seconds).
  double kernel_launch_gpu = 2.5e-6;   // device-side launch latency
  double kernel_launch_cpu = 3.0e-6;   // host API call duration
  double memcpy_latency = 8.0e-6;      // fixed per-copy setup cost
  double sync_api_floor = 1.5e-6;      // cudaDeviceSynchronize base cost
  double malloc_cpu = 4.0e-6;
  double stream_create_cpu = 6.0e-6;
  /// cudaDeviceReset after device loss: teardown + context re-creation.
  double device_reset_cpu = 2.0e-3;
  /// cuLibraryLoadData cost per loaded kernel image. CUDA module loading
  /// (cuDNN/cuBLAS fatbins) runs tens of milliseconds in real nsys traces,
  /// which is why it dominates the paper's batch-1 API profile (Fig. 8).
  double library_load_per_kernel = 1.0e-3;

  /// Minimum achievable kernel duration (scheduling quantum).
  double min_kernel_time = 1.0e-6;

  /// Host-side gap between consecutive stages: the issuing thread must
  /// observe stage completion (event query + next launch serialization)
  /// before submitting the next stage. Eager frameworks pay this per
  /// operator; IOS pays it per merged stage — a large part of its win on
  /// small-latency models.
  double inter_stage_gap = 12.0e-6;

  /// Total thread blocks resident at full occupancy.
  std::int64_t resident_blocks() const {
    return static_cast<std::int64_t>(sm_count) * blocks_per_sm;
  }

  /// Sustained dense-compute throughput (FLOP/s).
  double sustained_flops() const { return peak_flops * compute_efficiency; }

  /// Sustained int8 dense-compute throughput (MAC-equivalent FLOP/s).
  double sustained_int8_flops() const {
    return sustained_flops() * int8_throughput_multiplier;
  }
};

/// The paper's test GPU (NVIDIA RTX A5500, Dell Precision 5820 host).
DeviceSpec a5500_spec();

/// A deliberately small device for tests (pronounced saturation effects).
DeviceSpec tiny_spec();

}  // namespace dcn::simgpu
