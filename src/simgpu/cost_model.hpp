// Analytic kernel and stage cost model.
//
// Occupancy-wave model: a kernel's duration is the maximum of its
// compute-limited and memory-limited times, where the compute term is
// inflated when the launch grid is too small to fill the device
// (utilization = resident blocks / capacity). This single mechanism yields
// the three shapes the paper measures:
//  - batch-size amortization with diminishing returns (Fig. 6): fixed
//    launch overhead plus sub-linear compute time until saturation;
//  - MatMul dominance at batch 1 vs Conv dominance at batch 64 (Table 3):
//    FC kernels are weight-read bound (batch-independent) while conv work
//    scales with batch;
//  - growing synchronization share (Fig. 8): total GPU time grows with
//    batch so the host's blocking wait grows with it.
//
// Concurrent stages (IOS groups on separate streams) are costed with a
// work-conserving bound: stage time = max(longest group running alone,
// total saturated work). This is exact for perfectly packing kernels and a
// valid lower/upper envelope otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "simgpu/kernels.hpp"
#include "simgpu/spec.hpp"

namespace dcn::simgpu {

/// Cost decomposition of one kernel at a given batch size.
struct KernelCost {
  /// Time if the kernel owned the whole device (launch latency included).
  double solo_seconds = 0.0;
  /// Time with the device fully dedicated and saturated (the
  /// work-conserving contribution when sharing with concurrent kernels).
  double saturated_seconds = 0.0;
  /// Fraction of device block capacity this kernel's grid occupies.
  double occupancy = 0.0;
};

/// Cost one kernel at `batch`.
KernelCost kernel_cost(const DeviceSpec& spec, const KernelDesc& kernel,
                       std::int64_t batch);

/// A group is a chain of kernels executed back-to-back on one stream.
struct GroupCost {
  double solo_seconds = 0.0;
  double saturated_seconds = 0.0;
};

GroupCost group_cost(const DeviceSpec& spec,
                     const std::vector<KernelDesc>& kernels,
                     std::int64_t batch);

/// Duration of a stage whose groups run concurrently on separate streams.
double stage_seconds(const DeviceSpec& spec,
                     const std::vector<GroupCost>& groups);

/// Convenience: stage time for groups given as kernel lists.
double stage_seconds(const DeviceSpec& spec,
                     const std::vector<std::vector<KernelDesc>>& groups,
                     std::int64_t batch);

}  // namespace dcn::simgpu
