// Deterministic, seeded fault injection for the simulated GPU.
//
// A FaultPlan describes which faults a run should experience — transient
// kernel-launch failures, memcpy corruption or PCIe slowdown, spurious
// allocation failures, and device hangs — either at deterministic points
// (the Nth eligible operation, or the first eligible operation at/after a
// virtual timestamp) or stochastically with seeded probabilities. The
// FaultInjector consumes the plan: given the same plan (including seed) and
// the same sequence of device operations, it produces the identical fault
// schedule, so fault tests and NAS campaigns stay reproducible.
//
// Mapping to real CUDA failure modes (see DESIGN.md "Fault model"):
//   kLaunchFailure    <-> cudaErrorLaunchFailure (transient, retryable)
//   kMemcpyCorruption <-> ECC/PCIe replay error surfacing on a copy
//   kMemcpySlowdown   <-> degraded PCIe link (Gen4 -> Gen1 renegotiation)
//   kAllocFailure     <-> spurious cudaErrorMemoryAllocation
//   kSyncHang         <-> device hang / Xid watchdog timeout
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace dcn::simgpu {

enum class FaultKind {
  kLaunchFailure = 0,
  kMemcpyCorruption,
  kMemcpySlowdown,
  kAllocFailure,
  kSyncHang,
};

inline constexpr int kNumFaultKinds = 5;

const char* fault_kind_name(FaultKind kind);

/// One injection rule. Exactly one trigger should be set: `probability`
/// (per eligible operation), `at_op` (0-based index among eligible
/// operations of this kind), or `after_time` (first eligible operation at
/// or after the virtual timestamp). `max_fires` bounds total fires; an
/// `at_op` rule with max_fires > 1 keeps firing on consecutive eligible
/// operations, which models a fault that persists across retries.
struct FaultRule {
  FaultKind kind = FaultKind::kLaunchFailure;
  double probability = 0.0;
  std::int64_t at_op = -1;
  double after_time = -1.0;
  int max_fires = 1;
  /// kMemcpySlowdown only: transfer-time multiplier.
  double slowdown_factor = 4.0;
};

/// A fault the injector decided to fire.
struct InjectedFault {
  FaultKind kind = FaultKind::kLaunchFailure;
  double time = 0.0;
  /// Per-kind eligible-operation counter at fire time.
  std::int64_t op_index = 0;
  double slowdown_factor = 1.0;
  std::string detail;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  /// How long a kSyncHang stalls the device queue (virtual seconds).
  double hang_seconds = 0.050;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Fluent builders for the common cases.
  FaultPlan& fail_at(FaultKind kind, std::int64_t at_op, int max_fires = 1);
  FaultPlan& fail_after(FaultKind kind, double after_time, int max_fires = 1);
  FaultPlan& fail_with_probability(FaultKind kind, double probability,
                                   int max_fires = -1);

  /// Parse a CLI spec: semicolon-separated rules of the form
  ///   kind:key=value[,key=value...]
  /// with kinds {launch, memcpy_corrupt, memcpy_slow, alloc, sync_hang} and
  /// keys {p, at, after, fires, factor, hang}. Example:
  ///   "launch:p=0.05;sync_hang:at=2,hang=0.1;memcpy_slow:at=0,factor=8"
  /// Throws ConfigError on malformed specs.
  static FaultPlan parse(const std::string& spec, std::uint64_t seed = 0);
};

/// Decision engine over a FaultPlan. The device asks `check` once per
/// eligible operation; rule evaluation order and the single RNG stream make
/// the outcome a pure function of (plan, operation sequence).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Decide whether a fault of `kind` fires for the current eligible
  /// operation at virtual time `now`. Advances the per-kind operation
  /// counter either way.
  std::optional<InjectedFault> check(FaultKind kind, double now);

  const FaultPlan& plan() const { return plan_; }
  /// Every fault fired so far, in fire order.
  const std::vector<InjectedFault>& injected() const { return injected_; }
  /// Fires of one kind so far.
  int fired(FaultKind kind) const;
  int total_fired() const { return static_cast<int>(injected_.size()); }
  /// Eligible operations of one kind observed so far.
  std::int64_t ops_seen(FaultKind kind) const;

 private:
  FaultPlan plan_;
  Rng rng_;
  std::vector<int> fires_per_rule_;
  std::array<std::int64_t, kNumFaultKinds> ops_seen_{};
  std::vector<InjectedFault> injected_;
};

}  // namespace dcn::simgpu
