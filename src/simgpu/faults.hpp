// Deterministic, seeded fault injection for the simulated GPU.
//
// A FaultPlan describes which faults a run should experience — transient
// kernel-launch failures, memcpy corruption or PCIe slowdown, spurious
// allocation failures, and device hangs — either at deterministic points
// (the Nth eligible operation, or the first eligible operation at/after a
// virtual timestamp) or stochastically with seeded probabilities. The
// FaultInjector consumes the plan: given the same plan (including seed) and
// the same sequence of device operations, it produces the identical fault
// schedule, so fault tests and NAS campaigns stay reproducible.
//
// Mapping to real CUDA failure modes (see DESIGN.md "Fault model"):
//   kLaunchFailure    <-> cudaErrorLaunchFailure (transient, retryable)
//   kMemcpyCorruption <-> ECC/PCIe replay error surfacing on a copy
//   kMemcpySlowdown   <-> degraded PCIe link (Gen4 -> Gen1 renegotiation)
//   kAllocFailure     <-> spurious cudaErrorMemoryAllocation
//   kSyncHang         <-> device hang / Xid watchdog timeout
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace dcn::simgpu {

enum class FaultKind {
  kLaunchFailure = 0,
  kMemcpyCorruption,
  kMemcpySlowdown,
  kAllocFailure,
  kSyncHang,
  // Fleet-level faults (DESIGN.md "Fleet failure model"): consumed by the
  // serving layer's HealthMonitor rather than by the Device's per-op
  // injector, since they describe whole-replica lifecycle, not one API call.
  kReplicaDeath,  // replica crashes at after_time; max_fires != 1 means the
                  // crash re-fires on every restart attempt (permanent loss)
  kStraggler,     // sustained slowdown window [after_time, after_time + dur)
};

inline constexpr int kNumFaultKinds = 7;

const char* fault_kind_name(FaultKind kind);

/// One injection rule. Exactly one trigger should be set: `probability`
/// (per eligible operation), `at_op` (0-based index among eligible
/// operations of this kind), or `after_time` (first eligible operation at
/// or after the virtual timestamp). `max_fires` bounds total fires; an
/// `at_op` rule with max_fires > 1 keeps firing on consecutive eligible
/// operations, which models a fault that persists across retries.
struct FaultRule {
  FaultKind kind = FaultKind::kLaunchFailure;
  double probability = 0.0;
  std::int64_t at_op = -1;
  double after_time = -1.0;
  int max_fires = 1;
  /// kMemcpySlowdown / kStraggler: transfer- or service-time multiplier.
  double slowdown_factor = 4.0;
  /// kStraggler only: window length from after_time (<= 0 = open-ended).
  double duration = 0.0;
};

/// A fault the injector decided to fire.
struct InjectedFault {
  FaultKind kind = FaultKind::kLaunchFailure;
  double time = 0.0;
  /// Per-kind eligible-operation counter at fire time.
  std::int64_t op_index = 0;
  double slowdown_factor = 1.0;
  std::string detail;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  /// How long a kSyncHang stalls the device queue (virtual seconds).
  double hang_seconds = 0.050;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Fluent builders for the common cases.
  FaultPlan& fail_at(FaultKind kind, std::int64_t at_op, int max_fires = 1);
  FaultPlan& fail_after(FaultKind kind, double after_time, int max_fires = 1);
  FaultPlan& fail_with_probability(FaultKind kind, double probability,
                                   int max_fires = -1);
  /// Replica death at `after_time`. `max_fires = 1` is a one-shot crash (a
  /// restart succeeds); any other value keeps killing the replica on every
  /// restart attempt — -1 models a permanently lost replica.
  FaultPlan& die_after(double after_time, int max_fires = -1);
  /// Straggler window: all service within [onset, onset + duration) runs
  /// `factor` times slower (duration <= 0 = open-ended).
  FaultPlan& straggle(double onset, double duration, double factor);

  // --- Fleet-level queries (pure functions of the rule list) ---------------

  /// Earliest kReplicaDeath instant, +infinity when no death rule exists.
  double death_time() const;
  /// max_fires of the earliest death rule (0 when no death rule): how many
  /// times the crash can fire across restart attempts (-1 = unbounded).
  int death_budget() const;
  /// Combined slowdown multiplier at virtual time `now`: the largest factor
  /// among active kStraggler windows, 1.0 when none is active.
  double straggler_factor(double now) const;

  /// Parse a CLI spec: semicolon-separated rules of the form
  ///   kind:key=value[,key=value...]
  /// with kinds {launch, memcpy_corrupt, memcpy_slow, alloc, sync_hang,
  /// replica_death, straggler} and keys {p, at, after, fires, factor, dur,
  /// hang}. Example:
  ///   "launch:p=0.05;replica_death:after=2;straggler:after=1,dur=3,factor=6"
  /// Throws ConfigError on malformed specs.
  static FaultPlan parse(const std::string& spec, std::uint64_t seed = 0);
};

/// Decision engine over a FaultPlan. The device asks `check` once per
/// eligible operation; rule evaluation order and the single RNG stream make
/// the outcome a pure function of (plan, operation sequence).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Decide whether a fault of `kind` fires for the current eligible
  /// operation at virtual time `now`. Advances the per-kind operation
  /// counter either way.
  std::optional<InjectedFault> check(FaultKind kind, double now);

  const FaultPlan& plan() const { return plan_; }
  /// Every fault fired so far, in fire order.
  const std::vector<InjectedFault>& injected() const { return injected_; }
  /// Fires of one kind so far.
  int fired(FaultKind kind) const;
  int total_fired() const { return static_cast<int>(injected_.size()); }
  /// Eligible operations of one kind observed so far.
  std::int64_t ops_seen(FaultKind kind) const;

 private:
  FaultPlan plan_;
  Rng rng_;
  std::vector<int> fires_per_rule_;
  std::array<std::int64_t, kNumFaultKinds> ops_seen_{};
  std::vector<InjectedFault> injected_;
};

}  // namespace dcn::simgpu
