#include "simgpu/kernels.hpp"

#include "core/error.hpp"

namespace dcn::simgpu {

const char* precision_name(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
  }
  return "fp32";
}

Precision precision_from_name(const std::string& name) {
  if (name == "fp32") return Precision::kFp32;
  if (name == "int8") return Precision::kInt8;
  throw ConfigError("unknown precision '" + name + "' (fp32|int8)");
}

bool int8_compute_eligible(profiler::KernelCategory category) {
  return category == profiler::KernelCategory::kConv ||
         category == profiler::KernelCategory::kMatMul;
}

const char* epilogue_name(Epilogue epilogue) {
  switch (epilogue) {
    case Epilogue::kNone:
      return "none";
    case Epilogue::kReLU:
      return "relu";
  }
  return "none";
}

profiler::KernelCategory categorize(graph::OpKind kind) {
  switch (kind) {
    case graph::OpKind::kLinear:
    case graph::OpKind::kFusedLinearReLU:
      return profiler::KernelCategory::kMatMul;
    case graph::OpKind::kConv2d:
    case graph::OpKind::kFusedConvReLU:
      return profiler::KernelCategory::kConv;
    case graph::OpKind::kMaxPool:
    case graph::OpKind::kAdaptivePool:
      return profiler::KernelCategory::kPooling;
    case graph::OpKind::kReLU:
      return profiler::KernelCategory::kElementwise;
    case graph::OpKind::kFlatten:
    case graph::OpKind::kConcat:
    case graph::OpKind::kInput:
    case graph::OpKind::kOutput:
    case graph::OpKind::kConstant:
      return profiler::KernelCategory::kMemory;
  }
  return profiler::KernelCategory::kMemory;
}

bool is_device_op(graph::OpKind kind) {
  return kind != graph::OpKind::kInput && kind != graph::OpKind::kOutput &&
         kind != graph::OpKind::kConstant;
}

KernelDesc make_kernel_desc(const graph::Graph& graph, graph::OpId id,
                            Precision precision) {
  const graph::OpNode& node = graph.node(id);
  const graph::TensorDesc input = graph.input_desc(id);

  KernelDesc desc;
  desc.name = node.name;
  desc.category = categorize(node.kind);
  desc.precision = precision;
  desc.epilogue = graph::is_fused_kind(node.kind) ? Epilogue::kReLU
                                                  : Epilogue::kNone;
  if (!is_device_op(node.kind)) return desc;

  // 1 byte per element instead of 4 for both activations and weights; the
  // MAC count is untouched (the int8 compute gain is a device property
  // applied by the cost model, not a change in the amount of math).
  const double bytes_scale = precision == Precision::kInt8 ? 0.25 : 1.0;
  desc.flops_per_sample = node.flops(input);
  desc.activation_bytes_per_sample =
      bytes_scale * node.activation_bytes(input);
  desc.weight_bytes =
      bytes_scale * 4.0 * static_cast<double>(node.parameter_count(input));
  desc.threads_per_sample = static_cast<double>(node.output.numel());
  if (desc.category == profiler::KernelCategory::kMatMul) {
    // GEMM/GEMV kernels parallelize the reduction dimension too (warp-level
    // split-K); one thread per output element would drastically understate
    // their occupancy and make FC layers compute-bound instead of
    // weight-read bound.
    desc.threads_per_sample *= 32.0;
  }
  return desc;
}

std::vector<KernelDesc> make_kernel_table(const graph::Graph& graph,
                                          Precision precision) {
  std::vector<KernelDesc> table;
  table.reserve(graph.size());
  for (const graph::OpNode& node : graph.nodes()) {
    table.push_back(make_kernel_desc(graph, node.id, precision));
  }
  return table;
}

double total_weight_bytes(const graph::Graph& graph) {
  double total = 0.0;
  for (const graph::OpNode& node : graph.nodes()) {
    total +=
        4.0 * static_cast<double>(node.parameter_count(graph.input_desc(node.id)));
  }
  return total;
}

}  // namespace dcn::simgpu
