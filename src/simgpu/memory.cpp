#include "simgpu/memory.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace dcn::simgpu {

BufferId MemoryTracker::allocate(std::int64_t bytes,
                                 std::int64_t capacity_bytes) {
  DCN_CHECK(bytes >= 0) << "negative allocation";
  if (live_bytes_ + bytes > capacity_bytes) {
    std::ostringstream os;
    os << "simulated device out of memory: requested " << bytes
       << " bytes with " << live_bytes_ << " live of " << capacity_bytes
       << " capacity";
    throw OutOfMemoryError(os.str(), bytes, live_bytes_, capacity_bytes,
                           /*retryable=*/false);
  }
  const BufferId id = next_id_++;
  buffers_[id] = bytes;
  live_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  return id;
}

void MemoryTracker::free(BufferId id) {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) {
    std::ostringstream os;
    os << "free of unknown or already-freed buffer " << id << " ("
       << buffers_.size() << " live buffers, " << live_bytes_
       << " live bytes)";
    throw DeviceFault(os.str(), /*retryable=*/false);
  }
  live_bytes_ -= it->second;
  buffers_.erase(it);
}

void MemoryTracker::clear() {
  buffers_.clear();
  live_bytes_ = 0;
}

}  // namespace dcn::simgpu
