#include "simgpu/memory.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dcn::simgpu {

BufferId MemoryTracker::allocate(std::int64_t bytes,
                                 std::int64_t capacity_bytes) {
  DCN_CHECK(bytes >= 0) << "negative allocation";
  DCN_CHECK(live_bytes_ + bytes <= capacity_bytes)
      << "simulated device out of memory: " << live_bytes_ << " + " << bytes
      << " > " << capacity_bytes;
  const BufferId id = next_id_++;
  buffers_[id] = bytes;
  live_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  return id;
}

void MemoryTracker::free(BufferId id) {
  auto it = buffers_.find(id);
  DCN_CHECK(it != buffers_.end()) << "free of unknown buffer " << id;
  live_bytes_ -= it->second;
  buffers_.erase(it);
}

}  // namespace dcn::simgpu
