#include "simgpu/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dcn::simgpu {

KernelCost kernel_cost(const DeviceSpec& spec, const KernelDesc& kernel,
                       std::int64_t batch) {
  DCN_CHECK(batch >= 1) << "batch " << batch;
  KernelCost cost;
  const double flops = kernel.flops_per_sample * static_cast<double>(batch);
  const double bytes =
      kernel.activation_bytes_per_sample * static_cast<double>(batch) +
      kernel.weight_bytes;
  const double threads =
      kernel.threads_per_sample * static_cast<double>(batch);
  if (flops <= 0.0 && bytes <= 0.0) return cost;  // zero-work op

  const double blocks =
      std::ceil(std::max(1.0, threads) / spec.threads_per_block);
  cost.occupancy =
      std::min(1.0, blocks / static_cast<double>(spec.resident_blocks()));

  const double dense_flops = kernel.precision == Precision::kInt8 &&
                                     int8_compute_eligible(kernel.category)
                                 ? spec.sustained_int8_flops()
                                 : spec.sustained_flops();
  const double compute_full = flops / dense_flops;
  const double mem_time = bytes / spec.dram_bandwidth;
  // An under-filled grid leaves SMs idle: compute throughput scales with
  // the fraction of the device the grid can occupy.
  const double util = std::max(cost.occupancy, 1e-3);
  const double solo_exec =
      std::max({compute_full / util, mem_time, spec.min_kernel_time});
  cost.solo_seconds = spec.kernel_launch_gpu + solo_exec;
  // Saturated time counts only genuinely consumed resources (FLOPs and
  // DRAM traffic): launch latency and the minimum-duration floor overlap
  // freely across streams and must not be work-conserving, or concurrent
  // tiny kernels would falsely serialize.
  cost.saturated_seconds = std::max(compute_full, mem_time);
  return cost;
}

GroupCost group_cost(const DeviceSpec& spec,
                     const std::vector<KernelDesc>& kernels,
                     std::int64_t batch) {
  GroupCost group;
  for (const KernelDesc& kernel : kernels) {
    const KernelCost cost = kernel_cost(spec, kernel, batch);
    group.solo_seconds += cost.solo_seconds;
    group.saturated_seconds += cost.saturated_seconds;
  }
  return group;
}

double stage_seconds(const DeviceSpec& spec,
                     const std::vector<GroupCost>& groups) {
  (void)spec;
  double longest_solo = 0.0;
  double total_saturated = 0.0;
  for (const GroupCost& group : groups) {
    longest_solo = std::max(longest_solo, group.solo_seconds);
    total_saturated += group.saturated_seconds;
  }
  // Work-conserving envelope: the stage can finish no sooner than its
  // longest group running alone, and no sooner than all of its work run at
  // full device saturation.
  return std::max(longest_solo, total_saturated);
}

double stage_seconds(const DeviceSpec& spec,
                     const std::vector<std::vector<KernelDesc>>& groups,
                     std::int64_t batch) {
  std::vector<GroupCost> costs;
  costs.reserve(groups.size());
  for (const auto& group : groups) {
    costs.push_back(group_cost(spec, group, batch));
  }
  return stage_seconds(spec, costs);
}

}  // namespace dcn::simgpu
