// Trial records and the trial database (the "aggregating and comparing
// tuning results" half of the paper's NNI workflow).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nas/search_space.hpp"

namespace dcn::nas {

/// The metrics one evaluated architecture produced.
struct TrialMetrics {
  double average_precision = 0.0;
  /// IOS-optimized inference latency at the evaluation batch (seconds).
  double optimized_latency = 0.0;
  /// Sequential-schedule latency (seconds).
  double sequential_latency = 0.0;
  /// Inference efficiency: images per second through the optimized
  /// schedule (the objective e(n) of §5.4).
  double throughput = 0.0;
  std::int64_t parameter_count = 0;
};

/// Outcome of one trial in a fault-tolerant campaign (NNI's trial states:
/// SUCCEEDED / FAILED; kRetried marks a success that needed retries).
enum class TrialStatus { kOk = 0, kRetried, kFailed };

const char* trial_status_name(TrialStatus status);
/// Inverse of trial_status_name; throws ConfigError for unknown names.
TrialStatus trial_status_from_name(const std::string& name);

struct Trial {
  int index = 0;
  SearchPoint point;
  TrialMetrics metrics;
  TrialStatus status = TrialStatus::kOk;
  /// Attempts consumed (1 = first try succeeded).
  int attempts = 1;
  /// Why the trial failed (empty unless status == kFailed).
  std::string failure_reason;

  bool ok() const { return status != TrialStatus::kFailed; }
};

/// Append-only store with ranking and CSV export. Failed trials keep their
/// row (the campaign record stays complete) but are ignored by the
/// best_by_* rankings.
class TrialDatabase {
 public:
  void add(Trial trial);

  std::size_t size() const { return trials_.size(); }
  const Trial& trial(std::size_t i) const;
  const std::vector<Trial>& trials() const { return trials_; }
  std::size_t num_failed() const;

  /// Highest-AP successful trial (nullopt when none succeeded).
  std::optional<Trial> best_by_accuracy() const;

  /// Highest-throughput successful trial (nullopt when none succeeded).
  std::optional<Trial> best_by_throughput() const;

  /// CSV of all trials (one row each).
  std::string to_csv() const;

  /// Parse a CSV produced by to_csv (the campaign checkpoint format).
  /// Numeric fields round-trip at CSV precision; re-serializing the parsed
  /// database reproduces the input byte-for-byte, which checkpoint/resume
  /// relies on. Throws ConfigError on malformed input.
  static TrialDatabase from_csv(const std::string& text);

 private:
  std::vector<Trial> trials_;
};

}  // namespace dcn::nas
