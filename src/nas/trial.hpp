// Trial records and the trial database (the "aggregating and comparing
// tuning results" half of the paper's NNI workflow).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nas/search_space.hpp"

namespace dcn::nas {

/// The metrics one evaluated architecture produced.
struct TrialMetrics {
  double average_precision = 0.0;
  /// IOS-optimized inference latency at the evaluation batch (seconds).
  double optimized_latency = 0.0;
  /// Sequential-schedule latency (seconds).
  double sequential_latency = 0.0;
  /// Inference efficiency: images per second through the optimized
  /// schedule (the objective e(n) of §5.4).
  double throughput = 0.0;
  std::int64_t parameter_count = 0;
};

struct Trial {
  int index = 0;
  SearchPoint point;
  TrialMetrics metrics;
};

/// Append-only store with ranking and CSV export.
class TrialDatabase {
 public:
  void add(Trial trial);

  std::size_t size() const { return trials_.size(); }
  const Trial& trial(std::size_t i) const;
  const std::vector<Trial>& trials() const { return trials_; }

  /// Highest-AP trial (nullopt when empty).
  std::optional<Trial> best_by_accuracy() const;

  /// Highest-throughput trial (nullopt when empty).
  std::optional<Trial> best_by_throughput() const;

  /// CSV of all trials (one row each).
  std::string to_csv() const;

 private:
  std::vector<Trial> trials_;
};

}  // namespace dcn::nas
