// Multi-trial NAS runner (the Retiarii loop of Fig. 5).
//
// The runner drives: strategy proposes a coordinate -> the evaluator
// trains/scores it (accuracy) -> IOS times its optimized schedule on the
// simulated device (efficiency) -> the trial lands in the database. The
// evaluator is a callback, mirroring NNI's FunctionalEvaluator, so tests
// can substitute cheap functional evaluators for real training.
#pragma once

#include <functional>
#include <memory>

#include "nas/strategy.hpp"
#include "nas/trial.hpp"
#include "simgpu/spec.hpp"

namespace dcn::nas {

/// FunctionalEvaluator: score one materialized architecture. Returns the
/// prediction accuracy a(n) in [0, 1].
using Evaluator = std::function<double(const detect::SppNetConfig&)>;

struct RunnerConfig {
  int max_trials = 10;
  /// Input resolution used to build inference graphs for timing.
  std::int64_t input_size = 100;
  /// Batch size at which efficiency is measured (Table 2 uses 1).
  std::int64_t latency_batch = 1;
  simgpu::DeviceSpec device = simgpu::a5500_spec();
  bool verbose = true;
};

/// Run up to config.max_trials trials; returns the populated database.
TrialDatabase run_multi_trial(ExplorationStrategy& strategy,
                              const Evaluator& evaluator,
                              const RunnerConfig& config);

/// Compute the efficiency metrics of one architecture (no training):
/// sequential and IOS-optimized latency plus throughput on the device.
TrialMetrics profile_architecture(const detect::SppNetConfig& model,
                                  const RunnerConfig& config);

}  // namespace dcn::nas
