// Multi-trial NAS runner (the Retiarii loop of Fig. 5), fault-tolerant.
//
// The runner drives: strategy proposes a coordinate -> the evaluator
// trains/scores it (accuracy) -> IOS times its optimized schedule on the
// simulated device (efficiency) -> the trial lands in the database. The
// evaluator is a callback, mirroring NNI's FunctionalEvaluator, so tests
// can substitute cheap functional evaluators for real training.
//
// Failure semantics mirror production NAS systems (NNI marks trials FAILED
// and keeps searching): a throwing evaluator or a faulted device costs one
// trial, not the campaign. Retryable faults get bounded re-attempts; every
// outcome lands in the database with a TrialStatus; and the database is
// periodically checkpointed to CSV so an interrupted campaign resumes from
// the last checkpoint instead of restarting.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ios/executor.hpp"
#include "nas/strategy.hpp"
#include "nas/trial.hpp"
#include "simgpu/faults.hpp"
#include "simgpu/spec.hpp"

namespace dcn::nas {

/// FunctionalEvaluator: score one materialized architecture. Returns the
/// prediction accuracy a(n) in [0, 1]. May throw; the runner records the
/// failure and continues.
using Evaluator = std::function<double(const detect::SppNetConfig&)>;

struct RunnerConfig {
  int max_trials = 10;
  /// Input resolution used to build inference graphs for timing.
  std::int64_t input_size = 100;
  /// Batch size at which efficiency is measured (Table 2 uses 1).
  std::int64_t latency_batch = 1;
  /// Kernel precision the efficiency measurement runs at. The IOS schedule
  /// is optimized for the same precision (int8 kernels have a different
  /// compute/memory balance, so the best partition can differ).
  simgpu::Precision precision = simgpu::Precision::kFp32;
  simgpu::DeviceSpec device = simgpu::a5500_spec();
  /// Run the graph optimizer (fusion, constant folding, DCE) before IOS
  /// scheduling. The sequential baseline always times the naive graph so
  /// the reported speedup keeps meaning "IOS + fusion over naive"; only
  /// the optimized path sees the fused graph. Disable for A/B runs
  /// (the CLI's --no-fuse).
  bool optimize_graph = true;
  bool verbose = true;

  /// Worker threads evaluating trials concurrently (1 = the classic serial
  /// loop, bit-for-bit). The parallel runner keeps a determinism contract:
  /// points are *proposed* in trial order with pipeline depth `jobs`, and
  /// every commit — strategy.report, logging, database.add, checkpoint —
  /// happens strictly in trial order on the caller's thread. Fault-injector
  /// seeds are salted by (trial index, attempt), never by worker identity,
  /// so for strategies whose next() does not depend on report() (random,
  /// grid) the final database CSV is byte-identical at any `jobs`.
  /// Feedback-driven strategies (evolution) see up to `jobs - 1` proposals
  /// outrun their reports and may explore a different — equally valid —
  /// trajectory. The evaluator must be thread-safe when jobs > 1.
  int jobs = 1;

  // --- Fault tolerance ----------------------------------------------------

  /// Fault plan applied to the profiling devices (empty = no injection).
  /// Each trial derives an independent injector seed from plan.seed and the
  /// trial index, so campaigns are reproducible trial-by-trial.
  simgpu::FaultPlan faults;
  /// Session-level retry/backoff policy used while profiling under faults.
  ios::ResilientOptions resilient;
  /// Extra whole-trial attempts after a retryable failure escapes the
  /// session-level retries (0 = record the failure immediately).
  int trial_retries = 1;

  // --- Checkpointing ------------------------------------------------------

  /// Write the database CSV here every `checkpoint_every` trials (and once
  /// at the end). Empty disables. Writes are atomic (temp file + rename).
  std::string checkpoint_path;
  int checkpoint_every = 1;
};

/// Run up to config.max_trials trials; returns the populated database.
/// Per-trial failures are recorded (TrialStatus::kFailed) instead of
/// aborting the campaign.
TrialDatabase run_multi_trial(ExplorationStrategy& strategy,
                              const Evaluator& evaluator,
                              const RunnerConfig& config);

/// Resuming variant: `resume_from` holds the trials a previous (interrupted)
/// campaign already completed, e.g. load_checkpoint(config.checkpoint_path).
/// The runner fast-forwards the strategy through them — verifying each
/// recorded point against what the strategy proposes, and replaying the
/// recorded fitness feedback — then continues with live trials. With the
/// same seeds, the resumed campaign's final database matches an
/// uninterrupted run.
TrialDatabase run_multi_trial(ExplorationStrategy& strategy,
                              const Evaluator& evaluator,
                              const RunnerConfig& config,
                              const TrialDatabase& resume_from);

/// Compute the efficiency metrics of one architecture (no training):
/// sequential and IOS-optimized latency plus throughput on the device.
/// `trial_index` and `attempt` (1-based) salt the per-trial fault-injector
/// seed when config.faults is non-empty, so each trial — and each retry of
/// it — draws an independent but reproducible fault schedule.
TrialMetrics profile_architecture(const detect::SppNetConfig& model,
                                  const RunnerConfig& config,
                                  int trial_index = 0, int attempt = 1);

/// Load a checkpoint CSV written by run_multi_trial (empty database when
/// the file does not exist, so cold starts and resumes share one call).
TrialDatabase load_checkpoint(const std::string& path);

}  // namespace dcn::nas
