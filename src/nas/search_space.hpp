// The paper's SPP-Net search space (§4.2).
//
// Three mutable dimensions over the fixed three-conv trunk:
//  - feature engineering: first conv's filter size in {1, 3, 5, 7, 9};
//  - SPP layer: first (finest) pyramid level in {1, 2, 3, 4, 5};
//  - fully-connected: layer width in {128, 256, ..., 8192} for up to two
//    FC layers.
// A SearchPoint is the coordinate tuple; materialize() produces the
// concrete SppNetConfig the evaluator trains and the scheduler times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/sppnet_config.hpp"

namespace dcn {
class Rng;
}

namespace dcn::nas {

struct SearchPoint {
  std::int64_t conv1_kernel = 3;
  std::int64_t spp_first_level = 4;
  std::vector<std::int64_t> fc_sizes{1024};

  bool operator==(const SearchPoint& other) const = default;
  std::string to_string() const;
};

struct SearchSpace {
  std::vector<std::int64_t> conv1_kernels{1, 3, 5, 7, 9};
  std::vector<std::int64_t> spp_first_levels{1, 2, 3, 4, 5};
  std::vector<std::int64_t> fc_widths{128, 256, 512, 1024, 2048, 4096, 8192};
  /// Number of fully-connected layers (the paper customizes two; Table 1's
  /// materialized models use one).
  int num_fc_layers = 1;

  /// Cardinality of the space.
  std::int64_t size() const;

  /// Uniform random coordinate.
  SearchPoint sample(Rng& rng) const;

  /// Every coordinate, in lexicographic order.
  std::vector<SearchPoint> enumerate() const;

  /// Whether `point` lies in the space.
  bool contains(const SearchPoint& point) const;
};

/// Materialize a coordinate into a trainable configuration (fixed trunk:
/// C64-P-C128-P-C256-P, per Table 1).
detect::SppNetConfig materialize(const SearchPoint& point,
                                 std::int64_t in_channels = 4);

}  // namespace dcn::nas
