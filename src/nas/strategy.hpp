// Exploration strategies (the Retiarii "multi-trial" strategies the paper
// uses; §4.2 selects random search).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "nas/search_space.hpp"

namespace dcn::nas {

/// Proposes the next coordinate to evaluate; nullopt when exhausted.
class ExplorationStrategy {
 public:
  virtual ~ExplorationStrategy() = default;
  virtual std::optional<SearchPoint> next() = 0;
  /// Feedback hook: the runner reports each evaluated point's fitness
  /// (average precision). Stateless strategies ignore it.
  virtual void report(const SearchPoint& point, double fitness) {
    (void)point;
    (void)fitness;
  }
  virtual std::string name() const = 0;
};

/// Uniform random sampling without repetition (the paper's strategy).
class RandomSearchStrategy : public ExplorationStrategy {
 public:
  RandomSearchStrategy(SearchSpace space, std::uint64_t seed);
  std::optional<SearchPoint> next() override;
  std::string name() const override { return "random"; }

 private:
  SearchSpace space_;
  Rng rng_;
  std::vector<SearchPoint> tried_;
};

/// Regularized evolution (Real et al. 2019): keep a FIFO population;
/// propose random points until the population fills, then mutate the
/// fittest member of a random tournament sample. An NNI-style alternative
/// to pure random search for larger spaces.
class EvolutionStrategy : public ExplorationStrategy {
 public:
  struct Options {
    std::size_t population = 8;
    std::size_t tournament = 3;
  };

  EvolutionStrategy(SearchSpace space, std::uint64_t seed, Options options);
  EvolutionStrategy(SearchSpace space, std::uint64_t seed)
      : EvolutionStrategy(std::move(space), seed, Options()) {}
  std::optional<SearchPoint> next() override;
  void report(const SearchPoint& point, double fitness) override;
  std::string name() const override { return "evolution"; }

 private:
  SearchPoint mutate(const SearchPoint& parent);

  SearchSpace space_;
  Rng rng_;
  Options options_;
  struct Member {
    SearchPoint point;
    double fitness = 0.0;
  };
  std::vector<Member> population_;  // FIFO: front is oldest
  std::vector<SearchPoint> pending_;  // proposed, not yet reported
};

/// Exhaustive lexicographic sweep (oracle for tests and ablations).
class GridSearchStrategy : public ExplorationStrategy {
 public:
  explicit GridSearchStrategy(const SearchSpace& space);
  std::optional<SearchPoint> next() override;
  std::string name() const override { return "grid"; }

 private:
  std::vector<SearchPoint> points_;
  std::size_t cursor_ = 0;
};

}  // namespace dcn::nas
