#include "nas/strategy.hpp"

#include <algorithm>

namespace dcn::nas {

RandomSearchStrategy::RandomSearchStrategy(SearchSpace space,
                                           std::uint64_t seed)
    : space_(std::move(space)), rng_(seed) {}

std::optional<SearchPoint> RandomSearchStrategy::next() {
  if (static_cast<std::int64_t>(tried_.size()) >= space_.size()) {
    return std::nullopt;
  }
  // Rejection-sample an unseen coordinate; the space is small (hundreds),
  // so this terminates quickly even near exhaustion.
  for (int attempt = 0; attempt < 4096; ++attempt) {
    SearchPoint point = space_.sample(rng_);
    if (std::find(tried_.begin(), tried_.end(), point) == tried_.end()) {
      tried_.push_back(point);
      return point;
    }
  }
  // Pathological near-exhaustion: fall back to scanning the enumeration.
  for (const SearchPoint& point : space_.enumerate()) {
    if (std::find(tried_.begin(), tried_.end(), point) == tried_.end()) {
      tried_.push_back(point);
      return point;
    }
  }
  return std::nullopt;
}

EvolutionStrategy::EvolutionStrategy(SearchSpace space, std::uint64_t seed,
                                     Options options)
    : space_(std::move(space)), rng_(seed), options_(options) {}

std::optional<SearchPoint> EvolutionStrategy::next() {
  SearchPoint point;
  if (population_.size() + pending_.size() < options_.population) {
    point = space_.sample(rng_);  // warm-up phase: random exploration
  } else if (!population_.empty()) {
    // Tournament selection over the living population, then mutation.
    const Member* best = nullptr;
    for (std::size_t t = 0; t < options_.tournament; ++t) {
      const Member& candidate = population_[rng_.index(population_.size())];
      if (best == nullptr || candidate.fitness > best->fitness) {
        best = &candidate;
      }
    }
    point = mutate(best->point);
  } else {
    point = space_.sample(rng_);  // all proposals still pending
  }
  pending_.push_back(point);
  return point;
}

SearchPoint EvolutionStrategy::mutate(const SearchPoint& parent) {
  SearchPoint child = parent;
  // Mutate exactly one axis to a different value (retry to guarantee the
  // child differs from the parent on that axis when possible).
  const std::size_t num_axes = 2 + child.fc_sizes.size();
  const std::size_t axis = rng_.index(num_axes);
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (axis == 0) {
      child.conv1_kernel =
          space_.conv1_kernels[rng_.index(space_.conv1_kernels.size())];
      if (child.conv1_kernel != parent.conv1_kernel) break;
    } else if (axis == 1) {
      child.spp_first_level =
          space_.spp_first_levels[rng_.index(space_.spp_first_levels.size())];
      if (child.spp_first_level != parent.spp_first_level) break;
    } else {
      const std::size_t fc = axis - 2;
      child.fc_sizes[fc] =
          space_.fc_widths[rng_.index(space_.fc_widths.size())];
      if (child.fc_sizes[fc] != parent.fc_sizes[fc]) break;
    }
  }
  return child;
}

void EvolutionStrategy::report(const SearchPoint& point, double fitness) {
  auto it = std::find(pending_.begin(), pending_.end(), point);
  if (it != pending_.end()) pending_.erase(it);
  population_.push_back({point, fitness});
  // Regularized: evict the oldest, not the worst.
  while (population_.size() > options_.population) {
    population_.erase(population_.begin());
  }
}

GridSearchStrategy::GridSearchStrategy(const SearchSpace& space)
    : points_(space.enumerate()) {}

std::optional<SearchPoint> GridSearchStrategy::next() {
  if (cursor_ >= points_.size()) return std::nullopt;
  return points_[cursor_++];
}

}  // namespace dcn::nas
