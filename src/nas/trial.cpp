#include "nas/trial.hpp"

#include <sstream>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/table.hpp"

namespace dcn::nas {

const char* trial_status_name(TrialStatus status) {
  switch (status) {
    case TrialStatus::kOk:
      return "ok";
    case TrialStatus::kRetried:
      return "retried";
    case TrialStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

TrialStatus trial_status_from_name(const std::string& name) {
  if (name == "ok") return TrialStatus::kOk;
  if (name == "retried") return TrialStatus::kRetried;
  if (name == "failed") return TrialStatus::kFailed;
  throw ConfigError("unknown trial status '" + name + "'");
}

void TrialDatabase::add(Trial trial) { trials_.push_back(std::move(trial)); }

const Trial& TrialDatabase::trial(std::size_t i) const {
  DCN_CHECK(i < trials_.size()) << "trial index " << i;
  return trials_[i];
}

std::size_t TrialDatabase::num_failed() const {
  std::size_t failed = 0;
  for (const Trial& t : trials_) {
    if (!t.ok()) ++failed;
  }
  return failed;
}

std::optional<Trial> TrialDatabase::best_by_accuracy() const {
  std::optional<Trial> best;
  for (const Trial& t : trials_) {
    if (!t.ok()) continue;
    if (!best ||
        t.metrics.average_precision > best->metrics.average_precision) {
      best = t;
    }
  }
  return best;
}

std::optional<Trial> TrialDatabase::best_by_throughput() const {
  std::optional<Trial> best;
  for (const Trial& t : trials_) {
    if (!t.ok()) continue;
    if (!best || t.metrics.throughput > best->metrics.throughput) {
      best = t;
    }
  }
  return best;
}

namespace {

// Failure reasons can contain anything an exception message holds; flatten
// the CSV-significant characters so rows stay parseable with a plain
// comma split (and serialization stays idempotent for checkpoint resume).
std::string csv_sanitize(const std::string& text) {
  std::string out = text;
  for (char& ch : out) {
    if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r') ch = ';';
  }
  return out;
}

std::vector<std::string> split_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

double parse_csv_double(const std::string& field, const char* what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    if (consumed != field.size()) throw std::invalid_argument(field);
    return value;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " value '" + field +
                      "' in trial CSV");
  }
}

std::int64_t parse_csv_int(const std::string& field, const char* what) {
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(field, &consumed);
    if (consumed != field.size()) throw std::invalid_argument(field);
    return value;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " value '" + field +
                      "' in trial CSV");
  }
}

const char* const kCsvHeader =
    "trial,conv1_kernel,spp_first_level,fc_sizes,average_precision,"
    "optimized_latency_ms,sequential_latency_ms,throughput_img_s,parameters,"
    "status,attempts,failure";

}  // namespace

std::string TrialDatabase::to_csv() const {
  CsvWriter csv({"trial", "conv1_kernel", "spp_first_level", "fc_sizes",
                 "average_precision", "optimized_latency_ms",
                 "sequential_latency_ms", "throughput_img_s", "parameters",
                 "status", "attempts", "failure"});
  for (const Trial& t : trials_) {
    std::string fc;
    for (std::size_t i = 0; i < t.point.fc_sizes.size(); ++i) {
      if (i) fc += '|';
      fc += std::to_string(t.point.fc_sizes[i]);
    }
    csv.add_row({std::to_string(t.index),
                 std::to_string(t.point.conv1_kernel),
                 std::to_string(t.point.spp_first_level), fc,
                 format_double(t.metrics.average_precision, 4),
                 format_double(t.metrics.optimized_latency * 1e3, 4),
                 format_double(t.metrics.sequential_latency * 1e3, 4),
                 format_double(t.metrics.throughput, 1),
                 std::to_string(t.metrics.parameter_count),
                 trial_status_name(t.status), std::to_string(t.attempts),
                 csv_sanitize(t.failure_reason)});
  }
  return csv.to_string();
}

TrialDatabase TrialDatabase::from_csv(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kCsvHeader) {
    throw ConfigError("trial CSV header mismatch: got '" + line + "'");
  }
  TrialDatabase database;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_row(line);
    if (fields.size() != 12) {
      throw ConfigError("trial CSV row has " + std::to_string(fields.size()) +
                        " fields, expected 12: '" + line + "'");
    }
    Trial t;
    t.index = static_cast<int>(parse_csv_int(fields[0], "trial index"));
    t.point.conv1_kernel = parse_csv_int(fields[1], "conv1_kernel");
    t.point.spp_first_level = parse_csv_int(fields[2], "spp_first_level");
    t.point.fc_sizes.clear();  // SearchPoint defaults to {1024}
    std::istringstream fc_stream(fields[3]);
    std::string fc_field;
    while (std::getline(fc_stream, fc_field, '|')) {
      if (!fc_field.empty()) {
        t.point.fc_sizes.push_back(parse_csv_int(fc_field, "fc width"));
      }
    }
    t.metrics.average_precision =
        parse_csv_double(fields[4], "average_precision");
    t.metrics.optimized_latency =
        parse_csv_double(fields[5], "optimized_latency_ms") / 1e3;
    t.metrics.sequential_latency =
        parse_csv_double(fields[6], "sequential_latency_ms") / 1e3;
    t.metrics.throughput = parse_csv_double(fields[7], "throughput");
    t.metrics.parameter_count = parse_csv_int(fields[8], "parameters");
    t.status = trial_status_from_name(fields[9]);
    t.attempts = static_cast<int>(parse_csv_int(fields[10], "attempts"));
    t.failure_reason = fields[11];
    database.add(std::move(t));
  }
  return database;
}

}  // namespace dcn::nas
