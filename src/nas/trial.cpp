#include "nas/trial.hpp"

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/table.hpp"

namespace dcn::nas {

void TrialDatabase::add(Trial trial) { trials_.push_back(std::move(trial)); }

const Trial& TrialDatabase::trial(std::size_t i) const {
  DCN_CHECK(i < trials_.size()) << "trial index " << i;
  return trials_[i];
}

std::optional<Trial> TrialDatabase::best_by_accuracy() const {
  std::optional<Trial> best;
  for (const Trial& t : trials_) {
    if (!best ||
        t.metrics.average_precision > best->metrics.average_precision) {
      best = t;
    }
  }
  return best;
}

std::optional<Trial> TrialDatabase::best_by_throughput() const {
  std::optional<Trial> best;
  for (const Trial& t : trials_) {
    if (!best || t.metrics.throughput > best->metrics.throughput) {
      best = t;
    }
  }
  return best;
}

std::string TrialDatabase::to_csv() const {
  CsvWriter csv({"trial", "conv1_kernel", "spp_first_level", "fc_sizes",
                 "average_precision", "optimized_latency_ms",
                 "sequential_latency_ms", "throughput_img_s", "parameters"});
  for (const Trial& t : trials_) {
    std::string fc;
    for (std::size_t i = 0; i < t.point.fc_sizes.size(); ++i) {
      if (i) fc += '|';
      fc += std::to_string(t.point.fc_sizes[i]);
    }
    csv.add_row({std::to_string(t.index),
                 std::to_string(t.point.conv1_kernel),
                 std::to_string(t.point.spp_first_level), fc,
                 format_double(t.metrics.average_precision, 4),
                 format_double(t.metrics.optimized_latency * 1e3, 4),
                 format_double(t.metrics.sequential_latency * 1e3, 4),
                 format_double(t.metrics.throughput, 1),
                 std::to_string(t.metrics.parameter_count)});
  }
  return csv.to_string();
}

}  // namespace dcn::nas
