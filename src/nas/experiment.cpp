#include "nas/experiment.hpp"

#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace dcn::nas {

std::string serialize_experiment(const TrialDatabase& database) {
  std::ostringstream os;
  os << "nas-experiment v2\n";
  os.precision(17);
  for (const Trial& t : database.trials()) {
    os << "trial " << t.index << " conv1 " << t.point.conv1_kernel << " spp "
       << t.point.spp_first_level << " fc " << t.point.fc_sizes.size();
    for (std::int64_t w : t.point.fc_sizes) os << ' ' << w;
    os << " ap " << t.metrics.average_precision << " seq "
       << t.metrics.sequential_latency << " opt "
       << t.metrics.optimized_latency << " tput " << t.metrics.throughput
       << " params " << t.metrics.parameter_count << " status "
       << trial_status_name(t.status) << " attempts " << t.attempts;
    if (!t.failure_reason.empty()) {
      // `reason` consumes the rest of the line (messages contain spaces);
      // newlines are flattened to keep the format line-oriented.
      std::string reason = t.failure_reason;
      for (char& ch : reason) {
        if (ch == '\n' || ch == '\r') ch = ' ';
      }
      os << " reason " << reason;
    }
    os << '\n';
  }
  return os.str();
}

TrialDatabase deserialize_experiment(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  DCN_CHECK(std::getline(is, line) &&
            (line == "nas-experiment v1" || line == "nas-experiment v2"))
      << "bad experiment header '" << line << "'";
  TrialDatabase database;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    auto expect = [&](const char* keyword) {
      std::string word;
      DCN_CHECK(ls >> word && word == keyword)
          << "expected '" << keyword << "' in trial line, got '" << word
          << "'";
    };
    Trial t;
    expect("trial");
    DCN_CHECK(static_cast<bool>(ls >> t.index)) << "trial index";
    expect("conv1");
    DCN_CHECK(static_cast<bool>(ls >> t.point.conv1_kernel)) << "conv1";
    expect("spp");
    DCN_CHECK(static_cast<bool>(ls >> t.point.spp_first_level)) << "spp";
    expect("fc");
    std::size_t fc_count = 0;
    DCN_CHECK(static_cast<bool>(ls >> fc_count)) << "fc count";
    DCN_CHECK(fc_count <= 8) << "implausible fc count " << fc_count;
    t.point.fc_sizes.resize(fc_count);
    for (auto& w : t.point.fc_sizes) {
      DCN_CHECK(static_cast<bool>(ls >> w)) << "fc width";
    }
    expect("ap");
    DCN_CHECK(static_cast<bool>(ls >> t.metrics.average_precision)) << "ap";
    expect("seq");
    DCN_CHECK(static_cast<bool>(ls >> t.metrics.sequential_latency))
        << "seq latency";
    expect("opt");
    DCN_CHECK(static_cast<bool>(ls >> t.metrics.optimized_latency))
        << "opt latency";
    expect("tput");
    DCN_CHECK(static_cast<bool>(ls >> t.metrics.throughput)) << "tput";
    expect("params");
    DCN_CHECK(static_cast<bool>(ls >> t.metrics.parameter_count))
        << "params";
    // v2 extensions; absent in v1 records (defaults: ok, 1 attempt).
    std::string word;
    if (ls >> word) {
      DCN_CHECK(word == "status") << "expected 'status', got '" << word
                                  << "'";
      std::string status_name;
      DCN_CHECK(static_cast<bool>(ls >> status_name)) << "status";
      t.status = trial_status_from_name(status_name);
      expect("attempts");
      DCN_CHECK(static_cast<bool>(ls >> t.attempts)) << "attempts";
      if (ls >> word) {
        DCN_CHECK(word == "reason") << "expected 'reason', got '" << word
                                    << "'";
        std::getline(ls, t.failure_reason);
        if (!t.failure_reason.empty() && t.failure_reason.front() == ' ') {
          t.failure_reason.erase(0, 1);
        }
      }
    }
    database.add(std::move(t));
  }
  return database;
}

void save_experiment(const TrialDatabase& database, const std::string& path) {
  std::ofstream os(path);
  DCN_CHECK(os.good()) << "cannot open " << path;
  os << serialize_experiment(database);
  DCN_CHECK(os.good()) << "write to " << path << " failed";
}

TrialDatabase load_experiment(const std::string& path) {
  std::ifstream is(path);
  DCN_CHECK(is.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << is.rdbuf();
  return deserialize_experiment(buffer.str());
}

}  // namespace dcn::nas
