#include "nas/selection.hpp"

#include <algorithm>

namespace dcn::nas {

std::optional<Trial> select_constrained(const TrialDatabase& database,
                                        double accuracy_threshold) {
  std::optional<Trial> best;
  for (const Trial& t : database.trials()) {
    if (t.metrics.average_precision <= accuracy_threshold) continue;
    if (!best || t.metrics.throughput > best->metrics.throughput) best = t;
  }
  return best;
}

std::optional<Trial> select_latency_budget(const TrialDatabase& database,
                                           double latency_budget_seconds) {
  std::optional<Trial> best;
  for (const Trial& t : database.trials()) {
    if (t.metrics.optimized_latency >= latency_budget_seconds) continue;
    if (!best || t.metrics.average_precision >
                     best->metrics.average_precision) {
      best = t;
    }
  }
  return best;
}

std::vector<Trial> pareto_front(const TrialDatabase& database) {
  std::vector<Trial> front;
  for (const Trial& candidate : database.trials()) {
    bool dominated = false;
    for (const Trial& other : database.trials()) {
      const bool geq =
          other.metrics.average_precision >=
              candidate.metrics.average_precision &&
          other.metrics.throughput >= candidate.metrics.throughput;
      const bool gt =
          other.metrics.average_precision >
              candidate.metrics.average_precision ||
          other.metrics.throughput > candidate.metrics.throughput;
      if (geq && gt) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(), [](const Trial& a, const Trial& b) {
    return a.metrics.average_precision > b.metrics.average_precision;
  });
  return front;
}

}  // namespace dcn::nas
