#include "nas/selection.hpp"

#include <algorithm>

#include "core/csv.hpp"
#include "core/logging.hpp"
#include "core/table.hpp"

namespace dcn::nas {

std::optional<Trial> select_constrained(const TrialDatabase& database,
                                        double accuracy_threshold) {
  std::optional<Trial> best;
  for (const Trial& t : database.trials()) {
    if (t.metrics.average_precision <= accuracy_threshold) continue;
    if (!best || t.metrics.throughput > best->metrics.throughput) best = t;
  }
  return best;
}

std::optional<Trial> select_latency_budget(const TrialDatabase& database,
                                           double latency_budget_seconds) {
  std::optional<Trial> best;
  for (const Trial& t : database.trials()) {
    if (t.metrics.optimized_latency >= latency_budget_seconds) continue;
    if (!best || t.metrics.average_precision >
                     best->metrics.average_precision) {
      best = t;
    }
  }
  return best;
}

std::vector<Trial> pareto_front(const TrialDatabase& database) {
  std::vector<Trial> front;
  for (const Trial& candidate : database.trials()) {
    bool dominated = false;
    for (const Trial& other : database.trials()) {
      const bool geq =
          other.metrics.average_precision >=
              candidate.metrics.average_precision &&
          other.metrics.throughput >= candidate.metrics.throughput;
      const bool gt =
          other.metrics.average_precision >
              candidate.metrics.average_precision ||
          other.metrics.throughput > candidate.metrics.throughput;
      if (geq && gt) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(), [](const Trial& a, const Trial& b) {
    return a.metrics.average_precision > b.metrics.average_precision;
  });
  return front;
}

std::vector<PrecisionCandidate> expand_precisions(
    const TrialDatabase& database, const QuantizeEvaluator& quantize) {
  std::vector<PrecisionCandidate> candidates;
  candidates.reserve(2 * database.size());
  for (const Trial& trial : database.trials()) {
    if (!trial.ok()) continue;
    PrecisionCandidate fp32;
    fp32.trial = trial;
    fp32.precision = simgpu::Precision::kFp32;
    fp32.metrics = trial.metrics;
    candidates.push_back(std::move(fp32));
    try {
      PrecisionCandidate int8;
      int8.trial = trial;
      int8.precision = simgpu::Precision::kInt8;
      int8.metrics = quantize(trial);
      candidates.push_back(std::move(int8));
    } catch (const std::exception& error) {
      // A failed quantization costs the int8 option, not the trial.
      DCN_LOG_WARN << "int8 expansion of trial " << trial.index
                   << " failed: " << error.what();
    }
  }
  return candidates;
}

std::optional<PrecisionCandidate> select_constrained_precision(
    const std::vector<PrecisionCandidate>& candidates,
    double accuracy_threshold) {
  std::optional<PrecisionCandidate> best;
  for (const PrecisionCandidate& c : candidates) {
    if (c.metrics.average_precision <= accuracy_threshold) continue;
    if (!best || c.metrics.throughput > best->metrics.throughput) best = c;
  }
  return best;
}

std::string precision_selection_csv(
    const std::vector<PrecisionCandidate>& candidates,
    const std::optional<PrecisionCandidate>& selected) {
  CsvWriter csv({"trial", "precision", "average_precision",
                 "optimized_latency_ms", "throughput_img_s", "selected"});
  for (const PrecisionCandidate& c : candidates) {
    const bool chosen = selected && selected->trial.index == c.trial.index &&
                        selected->precision == c.precision;
    csv.add_row({std::to_string(c.trial.index),
                 simgpu::precision_name(c.precision),
                 format_double(c.metrics.average_precision, 4),
                 format_double(c.metrics.optimized_latency * 1e3, 4),
                 format_double(c.metrics.throughput, 1),
                 chosen ? "1" : "0"});
  }
  return csv.to_string();
}

}  // namespace dcn::nas
