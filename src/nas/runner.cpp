#include "nas/runner.hpp"

#include "core/error.hpp"
#include "core/logging.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"

namespace dcn::nas {

TrialMetrics profile_architecture(const detect::SppNetConfig& model,
                                  const RunnerConfig& config) {
  const graph::Graph g =
      graph::build_inference_graph(model, config.input_size);

  TrialMetrics metrics;
  metrics.parameter_count = model.parameter_count();

  const ios::Schedule sequential = ios::sequential_schedule(g);
  ios::IosOptions options;
  options.batch = config.latency_batch;
  const ios::Schedule optimized =
      ios::optimize_schedule(g, config.device, options);

  simgpu::Device device_seq(config.device);
  metrics.sequential_latency = ios::measure_latency(
      g, sequential, device_seq, config.latency_batch);
  simgpu::Device device_opt(config.device);
  metrics.optimized_latency = ios::measure_latency(
      g, optimized, device_opt, config.latency_batch);
  DCN_CHECK(metrics.optimized_latency > 0.0) << "zero latency";
  metrics.throughput =
      static_cast<double>(config.latency_batch) / metrics.optimized_latency;
  return metrics;
}

TrialDatabase run_multi_trial(ExplorationStrategy& strategy,
                              const Evaluator& evaluator,
                              const RunnerConfig& config) {
  DCN_CHECK(config.max_trials >= 1) << "max_trials";
  TrialDatabase database;
  for (int i = 0; i < config.max_trials; ++i) {
    const auto point = strategy.next();
    if (!point) break;  // space exhausted
    const detect::SppNetConfig model = materialize(*point);

    Trial trial;
    trial.index = i;
    trial.point = *point;
    trial.metrics = profile_architecture(model, config);
    trial.metrics.average_precision = evaluator(model);
    strategy.report(*point, trial.metrics.average_precision);
    if (config.verbose) {
      DCN_LOG_INFO << "trial " << i << " [" << point->to_string() << "]: AP "
                   << trial.metrics.average_precision << ", latency "
                   << trial.metrics.optimized_latency * 1e3 << " ms";
    }
    database.add(std::move(trial));
  }
  return database;
}

}  // namespace dcn::nas
