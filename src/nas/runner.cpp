#include "nas/runner.hpp"

#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/parallel.hpp"
#include "core/retry.hpp"
#include "graph/builder.hpp"
#include "graph/passes.hpp"
#include "ios/scheduler.hpp"

namespace dcn::nas {

namespace {

double measure(const graph::Graph& g, const ios::Schedule& schedule,
               const RunnerConfig& config, std::uint64_t fault_salt) {
  simgpu::Device device(config.device);
  if (!config.faults.empty()) {
    simgpu::FaultPlan plan = config.faults;
    plan.seed = mix_seed(plan.seed, fault_salt);
    device.set_fault_plan(plan);
    ios::SessionStats stats;
    const double latency = ios::measure_latency_resilient(
        g, schedule, device, config.latency_batch, 1, 3, config.resilient,
        &stats, config.precision);
    if (config.verbose &&
        (stats.transient_retries > 0 || stats.reinitializations > 0)) {
      DCN_LOG_INFO << "  recovered from " << stats.transient_retries
                   << " transient fault(s), " << stats.reinitializations
                   << " device reset(s) during measurement";
    }
    return latency;
  }
  return ios::measure_latency(g, schedule, device, config.latency_batch,
                              /*warmup=*/1, /*repeats=*/3, config.precision);
}

void write_checkpoint(const TrialDatabase& database,
                      const std::string& path) {
  // Temp-file + rename so a crash mid-write never corrupts the checkpoint
  // a resume would read.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    DCN_CHECK(os.good()) << "cannot open checkpoint " << tmp;
    os << database.to_csv();
    os.flush();
    DCN_CHECK(os.good()) << "write to " << tmp << " failed";
  }
  DCN_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0)
      << "rename " << tmp << " -> " << path << " failed";
}

// One complete trial evaluation — materialization, profiling, scoring, and
// the bounded retry loop. Everything here is a pure function of
// (point, index, config): no shared mutable state, so the parallel runner
// can execute it on any worker thread. Fault salts come from
// (index, attempt) alone, keeping fault schedules independent of worker
// scheduling.
Trial evaluate_trial(const SearchPoint& point, int index,
                     const Evaluator& evaluator, const RunnerConfig& config) {
  const detect::SppNetConfig model = materialize(point);

  Trial trial;
  trial.index = index;
  trial.point = point;
  const int max_attempts = 1 + std::max(0, config.trial_retries);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    trial.attempts = attempt;
    try {
      trial.metrics = profile_architecture(model, config, index, attempt);
      trial.metrics.average_precision = evaluator(model);
      trial.status = attempt > 1 ? TrialStatus::kRetried : TrialStatus::kOk;
      trial.failure_reason.clear();
      break;
    } catch (const std::exception& error) {
      trial.status = TrialStatus::kFailed;
      trial.failure_reason = error.what();
      trial.metrics = TrialMetrics{};  // drop partial measurements
      trial.metrics.parameter_count = model.parameter_count();
      if (!is_retryable(error)) break;
      if (config.verbose && attempt < max_attempts) {
        DCN_LOG_WARN << "trial " << index << " attempt " << attempt
                     << " failed (" << error.what() << "), retrying";
      }
    }
  }
  return trial;
}

// A proposed trial in flight: the worker fills `trial`; the main thread
// waits on `future` before committing. unique_ptr keeps the address stable
// while the deque shifts.
struct PendingTrial {
  SearchPoint point;
  int index = 0;
  Trial trial;
  std::future<void> future;
};

}  // namespace

TrialDatabase load_checkpoint(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) return TrialDatabase();
  std::stringstream buffer;
  buffer << is.rdbuf();
  return TrialDatabase::from_csv(buffer.str());
}

TrialMetrics profile_architecture(const detect::SppNetConfig& model,
                                  const RunnerConfig& config,
                                  int trial_index, int attempt) {
  const graph::Graph g =
      graph::build_inference_graph(model, config.input_size);
  // The sequential baseline stays on the naive graph; the optimized path
  // schedules the fused graph, so "speedup" reports IOS + fusion together.
  const graph::Graph fused =
      config.optimize_graph ? graph::optimize_graph(g) : g;

  TrialMetrics metrics;
  metrics.parameter_count = model.parameter_count();

  const ios::Schedule sequential = ios::sequential_schedule(g);
  ios::IosOptions options;
  options.batch = config.latency_batch;
  options.precision = config.precision;
  const ios::Schedule optimized =
      ios::optimize_schedule(fused, config.device, options);

  // One salt per (trial, attempt, schedule): retries see fresh transient
  // faults, exactly as re-running on real hardware would.
  const auto salt = static_cast<std::uint64_t>(trial_index) * 256 +
                    static_cast<std::uint64_t>(attempt);
  metrics.sequential_latency =
      measure(g, sequential, config, 2 * salt);
  metrics.optimized_latency =
      measure(fused, optimized, config, 2 * salt + 1);
  DCN_CHECK(metrics.optimized_latency > 0.0) << "zero latency";
  metrics.throughput =
      static_cast<double>(config.latency_batch) / metrics.optimized_latency;
  return metrics;
}

TrialDatabase run_multi_trial(ExplorationStrategy& strategy,
                              const Evaluator& evaluator,
                              const RunnerConfig& config) {
  return run_multi_trial(strategy, evaluator, config, TrialDatabase());
}

TrialDatabase run_multi_trial(ExplorationStrategy& strategy,
                              const Evaluator& evaluator,
                              const RunnerConfig& config,
                              const TrialDatabase& resume_from) {
  DCN_CHECK(config.max_trials >= 1) << "max_trials";
  DCN_CHECK(config.checkpoint_every >= 1) << "checkpoint_every";
  TrialDatabase database;

  // Fast-forward: re-propose each completed trial's point (validating the
  // checkpoint matches this strategy/seed) and replay its fitness so the
  // strategy's internal state — and hence every later proposal — matches
  // the uninterrupted campaign.
  for (const Trial& done : resume_from.trials()) {
    if (static_cast<int>(database.size()) >= config.max_trials) break;
    const auto point = strategy.next();
    DCN_CHECK(point.has_value())
        << "resume: strategy exhausted before checkpointed trial "
        << done.index;
    if (point->to_string() != done.point.to_string()) {
      throw ConfigError(
          "resume mismatch at trial " + std::to_string(done.index) +
          ": checkpoint has [" + done.point.to_string() +
          "] but the strategy proposed [" + point->to_string() +
          "] — was the checkpoint produced with different seeds?");
    }
    strategy.report(*point, done.metrics.average_precision);
    database.add(done);
  }

  // Windowed pipeline of depth `jobs`. Proposals are drawn in trial order;
  // workers evaluate them concurrently; commits (report / log / add /
  // checkpoint) drain the window strictly in trial order from this thread.
  // At jobs == 1 the window holds one trial and the next proposal is drawn
  // only after the previous commit — exactly the classic serial loop.
  DCN_CHECK(config.jobs >= 1) << "jobs";
  std::unique_ptr<ThreadPool> pool;
  if (config.jobs > 1) pool = std::make_unique<ThreadPool>(config.jobs);

  std::deque<std::unique_ptr<PendingTrial>> window;
  int next_index = static_cast<int>(database.size());
  bool exhausted = false;
  const auto propose = [&] {
    while (!exhausted && next_index < config.max_trials &&
           static_cast<int>(window.size()) < config.jobs) {
      const auto point = strategy.next();
      if (!point) {
        exhausted = true;  // space exhausted
        break;
      }
      auto pending = std::make_unique<PendingTrial>();
      pending->point = *point;
      pending->index = next_index++;
      if (pool != nullptr) {
        PendingTrial* raw = pending.get();
        pending->future = pool->submit([raw, &evaluator, &config] {
          raw->trial =
              evaluate_trial(raw->point, raw->index, evaluator, config);
        });
      }
      window.push_back(std::move(pending));
    }
  };

  propose();
  while (!window.empty()) {
    const std::unique_ptr<PendingTrial> pending = std::move(window.front());
    window.pop_front();
    if (pool != nullptr) {
      pending->future.get();
    } else {
      pending->trial =
          evaluate_trial(pending->point, pending->index, evaluator, config);
    }
    Trial& trial = pending->trial;
    // Failed trials report fitness 0 so resumed and uninterrupted campaigns
    // feed the strategy identically.
    strategy.report(pending->point, trial.metrics.average_precision);
    if (config.verbose) {
      if (trial.ok()) {
        DCN_LOG_INFO << "trial " << trial.index << " ["
                     << pending->point.to_string() << "]: AP "
                     << trial.metrics.average_precision << ", latency "
                     << trial.metrics.optimized_latency * 1e3 << " ms"
                     << (trial.status == TrialStatus::kRetried
                             ? " (after retry)"
                             : "");
      } else {
        DCN_LOG_WARN << "trial " << trial.index << " ["
                     << pending->point.to_string() << "] FAILED after "
                     << trial.attempts
                     << " attempt(s): " << trial.failure_reason;
      }
    }
    database.add(std::move(trial));
    if (!config.checkpoint_path.empty() &&
        static_cast<int>(database.size()) % config.checkpoint_every == 0) {
      write_checkpoint(database, config.checkpoint_path);
    }
    propose();
  }
  if (!config.checkpoint_path.empty()) {
    write_checkpoint(database, config.checkpoint_path);
  }
  return database;
}

}  // namespace dcn::nas
