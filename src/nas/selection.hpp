// Accuracy-constrained efficiency selection (§5.4).
//
// The paper converts the dual objective {max a(n), max e(n)} into
// max e(n) subject to a(n) > A. select_constrained implements exactly
// that over a trial database; pareto_front exposes the underlying
// trade-off curve for analysis benches.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "nas/trial.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::nas {

/// The most efficient trial among those with AP strictly above
/// `accuracy_threshold`; nullopt when none qualifies.
std::optional<Trial> select_constrained(const TrialDatabase& database,
                                        double accuracy_threshold);

/// Trials not dominated in the (accuracy, throughput) plane, sorted by
/// descending accuracy.
std::vector<Trial> pareto_front(const TrialDatabase& database);

/// The dual formulation: the most accurate trial whose optimized latency
/// stays under `latency_budget_seconds`; nullopt when none qualifies.
std::optional<Trial> select_latency_budget(const TrialDatabase& database,
                                           double latency_budget_seconds);

// --- Precision-expanded selection ------------------------------------------
//
// Post-training quantization widens the selection space: every candidate
// architecture can be deployed at fp32 or int8, trading a small AP drop for
// higher throughput. The constrained selection then runs over (model,
// precision) pairs — the winner is the cheapest pair still meeting the AP
// constraint, which flips to int8 exactly when the quantized AP stays above
// the threshold.

/// One (trial, precision) deployment option.
struct PrecisionCandidate {
  Trial trial;  // the campaign trial (its metrics are the fp32 numbers)
  simgpu::Precision precision = simgpu::Precision::kFp32;
  /// Metrics at this precision (== trial.metrics for kFp32; re-profiled and
  /// re-scored for kInt8).
  TrialMetrics metrics;
};

/// Produces a successful trial's int8 metrics: re-profile the architecture
/// at int8 and re-score AP with the quantized model. May throw; the trial
/// then contributes only its fp32 candidate.
using QuantizeEvaluator = std::function<TrialMetrics(const Trial&)>;

/// Expand each successful trial into its fp32 candidate plus (when
/// `quantize` succeeds) its int8 candidate, in trial order (fp32 before
/// int8 per trial).
std::vector<PrecisionCandidate> expand_precisions(
    const TrialDatabase& database, const QuantizeEvaluator& quantize);

/// Highest-throughput candidate with AP strictly above the threshold
/// (first wins ties, like select_constrained); nullopt when none qualifies.
std::optional<PrecisionCandidate> select_constrained_precision(
    const std::vector<PrecisionCandidate>& candidates,
    double accuracy_threshold);

/// CSV of the expanded candidates with the chosen (model, precision) pair
/// flagged in a `selected` column.
std::string precision_selection_csv(
    const std::vector<PrecisionCandidate>& candidates,
    const std::optional<PrecisionCandidate>& selected);

}  // namespace dcn::nas
