// Accuracy-constrained efficiency selection (§5.4).
//
// The paper converts the dual objective {max a(n), max e(n)} into
// max e(n) subject to a(n) > A. select_constrained implements exactly
// that over a trial database; pareto_front exposes the underlying
// trade-off curve for analysis benches.
#pragma once

#include <optional>
#include <vector>

#include "nas/trial.hpp"

namespace dcn::nas {

/// The most efficient trial among those with AP strictly above
/// `accuracy_threshold`; nullopt when none qualifies.
std::optional<Trial> select_constrained(const TrialDatabase& database,
                                        double accuracy_threshold);

/// Trials not dominated in the (accuracy, throughput) plane, sorted by
/// descending accuracy.
std::vector<Trial> pareto_front(const TrialDatabase& database);

/// The dual formulation: the most accurate trial whose optimized latency
/// stays under `latency_budget_seconds`; nullopt when none qualifies.
std::optional<Trial> select_latency_budget(const TrialDatabase& database,
                                           double latency_budget_seconds);

}  // namespace dcn::nas
