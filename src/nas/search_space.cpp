#include "nas/search_space.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "nn/spp.hpp"

namespace dcn::nas {

std::string SearchPoint::to_string() const {
  std::ostringstream os;
  os << "conv1_k=" << conv1_kernel << " spp_l=" << spp_first_level << " fc=[";
  for (std::size_t i = 0; i < fc_sizes.size(); ++i) {
    if (i) os << ',';
    os << fc_sizes[i];
  }
  os << ']';
  return os.str();
}

std::int64_t SearchSpace::size() const {
  std::int64_t n = static_cast<std::int64_t>(conv1_kernels.size()) *
                   static_cast<std::int64_t>(spp_first_levels.size());
  for (int i = 0; i < num_fc_layers; ++i) {
    n *= static_cast<std::int64_t>(fc_widths.size());
  }
  return n;
}

SearchPoint SearchSpace::sample(Rng& rng) const {
  DCN_CHECK(!conv1_kernels.empty() && !spp_first_levels.empty() &&
            !fc_widths.empty())
      << "empty search space axis";
  SearchPoint point;
  point.conv1_kernel = conv1_kernels[rng.index(conv1_kernels.size())];
  point.spp_first_level =
      spp_first_levels[rng.index(spp_first_levels.size())];
  point.fc_sizes.clear();
  for (int i = 0; i < num_fc_layers; ++i) {
    point.fc_sizes.push_back(fc_widths[rng.index(fc_widths.size())]);
  }
  return point;
}

std::vector<SearchPoint> SearchSpace::enumerate() const {
  std::vector<SearchPoint> points;
  std::vector<std::vector<std::int64_t>> fc_combos{{}};
  for (int layer = 0; layer < num_fc_layers; ++layer) {
    std::vector<std::vector<std::int64_t>> next;
    for (const auto& combo : fc_combos) {
      for (std::int64_t width : fc_widths) {
        auto extended = combo;
        extended.push_back(width);
        next.push_back(std::move(extended));
      }
    }
    fc_combos = std::move(next);
  }
  for (std::int64_t k : conv1_kernels) {
    for (std::int64_t l : spp_first_levels) {
      for (const auto& fc : fc_combos) {
        SearchPoint point;
        point.conv1_kernel = k;
        point.spp_first_level = l;
        point.fc_sizes = fc;
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

bool SearchSpace::contains(const SearchPoint& point) const {
  auto has = [](const std::vector<std::int64_t>& axis, std::int64_t v) {
    return std::find(axis.begin(), axis.end(), v) != axis.end();
  };
  if (!has(conv1_kernels, point.conv1_kernel)) return false;
  if (!has(spp_first_levels, point.spp_first_level)) return false;
  if (static_cast<int>(point.fc_sizes.size()) != num_fc_layers) return false;
  for (std::int64_t width : point.fc_sizes) {
    if (!has(fc_widths, width)) return false;
  }
  return true;
}

detect::SppNetConfig materialize(const SearchPoint& point,
                                 std::int64_t in_channels) {
  std::ostringstream os;
  os << "C_{64," << point.conv1_kernel << ",1}-P_{2,2}-C_{128,3,1}-P_{2,2}"
     << "-C_{256,3,1}-P_{2,2}-SPP_{";
  const auto levels = spp_levels_from_first(point.spp_first_level);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i) os << ',';
    os << levels[i];
  }
  os << '}';
  for (std::int64_t fc : point.fc_sizes) os << "-F_{" << fc << '}';
  detect::SppNetConfig config = detect::parse_notation(os.str(), in_channels);
  config.name = point.to_string();
  return config;
}

}  // namespace dcn::nas
