// Experiment persistence (NNI keeps a trial database per experiment; this
// is the file-backed equivalent so a NAS run can be resumed, audited, or
// re-analyzed without re-training).
//
// Line-oriented format:
//   nas-experiment v1
//   trial <index> conv1 <k> spp <l> fc <n> <w1..wn> ap <v> seq <s> opt <s>
//         tput <v> params <n>
#pragma once

#include <string>

#include "nas/trial.hpp"

namespace dcn::nas {

std::string serialize_experiment(const TrialDatabase& database);
TrialDatabase deserialize_experiment(const std::string& text);

void save_experiment(const TrialDatabase& database, const std::string& path);
TrialDatabase load_experiment(const std::string& path);

}  // namespace dcn::nas
