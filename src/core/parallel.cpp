#include "core/parallel.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dcn {
namespace {
int g_num_threads = 0;  // 0 = backend default
}

int hardware_threads() {
#ifdef _OPENMP
  if (g_num_threads > 0) return g_num_threads;
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) { g_num_threads = n < 1 ? 0 : n; }

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
#ifdef _OPENMP
  if (n >= grain && hardware_threads() > 1) {
#pragma omp parallel for num_threads(hardware_threads()) schedule(static)
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#else
  (void)grain;
#endif
  for (std::int64_t i = begin; i < end; ++i) fn(i);
}

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const int threads = hardware_threads();
#ifdef _OPENMP
  if (n >= grain && threads > 1) {
    const std::int64_t chunk = std::max<std::int64_t>(1, (n + threads - 1) / threads);
#pragma omp parallel num_threads(threads)
    {
      const std::int64_t t = omp_get_thread_num();
      const std::int64_t lo = begin + t * chunk;
      const std::int64_t hi = std::min(end, lo + chunk);
      if (lo < hi) fn(lo, hi);
    }
    return;
  }
#else
  (void)grain;
  (void)threads;
#endif
  fn(begin, end);
}

}  // namespace dcn
