#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dcn {
namespace {
// Atomic: read by hardware_threads() inside parallel regions and from pool
// workers while the main thread may call set_num_threads.
std::atomic<int> g_num_threads{0};  // 0 = backend default
}

int hardware_threads() {
#ifdef _OPENMP
  const int n = g_num_threads.load(std::memory_order_relaxed);
  if (n > 0) return n;
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) {
  g_num_threads.store(n < 1 ? 0 : n, std::memory_order_relaxed);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
#ifdef _OPENMP
  if (n >= grain && hardware_threads() > 1) {
#pragma omp parallel for num_threads(hardware_threads()) schedule(static)
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#else
  (void)grain;
#endif
  for (std::int64_t i = begin; i < end; ++i) fn(i);
}

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const int threads = hardware_threads();
#ifdef _OPENMP
  if (n >= grain && threads > 1) {
    const std::int64_t chunk = std::max<std::int64_t>(1, (n + threads - 1) / threads);
#pragma omp parallel num_threads(threads)
    {
      const std::int64_t t = omp_get_thread_num();
      const std::int64_t lo = begin + t * chunk;
      const std::int64_t hi = std::min(end, lo + chunk);
      if (lo < hi) fn(lo, hi);
    }
    return;
  }
#else
  (void)grain;
  (void)threads;
#endif
  fn(begin, end);
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured into the task's future
  }
}

}  // namespace dcn
