#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dcn {
namespace {
// Atomic: read by hardware_threads() inside parallel regions and from pool
// workers while the main thread may call set_num_threads.
std::atomic<int> g_num_threads{0};  // 0 = backend default

// Shared compute pool for the tensor engine. Created lazily at the first
// parallel kernel launch and grown (replaced) when a larger thread count is
// requested; callers hold a shared_ptr so a pool in use is never destroyed
// under them. Workers flag themselves via tls_compute_worker so nested
// kernel launches run inline.
thread_local bool tls_compute_worker = false;

std::mutex g_compute_pool_mutex;
std::shared_ptr<ThreadPool> g_compute_pool;

std::shared_ptr<ThreadPool> acquire_compute_pool(int threads) {
  std::lock_guard<std::mutex> lock(g_compute_pool_mutex);
  if (!g_compute_pool || g_compute_pool->size() < threads) {
    g_compute_pool = std::make_shared<ThreadPool>(threads);
  }
  return g_compute_pool;
}
}  // namespace

int hardware_threads() {
#ifdef _OPENMP
  const int n = g_num_threads.load(std::memory_order_relaxed);
  if (n > 0) return n;
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) {
  g_num_threads.store(n < 1 ? 0 : n, std::memory_order_relaxed);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
#ifdef _OPENMP
  if (n >= grain && hardware_threads() > 1) {
#pragma omp parallel for num_threads(hardware_threads()) schedule(static)
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#else
  (void)grain;
#endif
  for (std::int64_t i = begin; i < end; ++i) fn(i);
}

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const int threads = hardware_threads();
#ifdef _OPENMP
  if (n >= grain && threads > 1) {
    const std::int64_t chunk = std::max<std::int64_t>(1, (n + threads - 1) / threads);
#pragma omp parallel num_threads(threads)
    {
      const std::int64_t t = omp_get_thread_num();
      const std::int64_t lo = begin + t * chunk;
      const std::int64_t hi = std::min(end, lo + chunk);
      if (lo < hi) fn(lo, hi);
    }
    return;
  }
#else
  (void)grain;
  (void)threads;
#endif
  fn(begin, end);
}

int compute_threads() {
  const int n = g_num_threads.load(std::memory_order_relaxed);
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool in_compute_worker() { return tls_compute_worker; }

void run_compute_tasks(int tasks, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  if (tasks == 1 || compute_threads() == 1 || tls_compute_worker) {
    for (int t = 0; t < tasks; ++t) fn(t);
    return;
  }
  const auto pool = acquire_compute_pool(compute_threads());
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(tasks - 1));
  for (int t = 1; t < tasks; ++t) {
    futures.push_back(pool->submit([&fn, t] {
      // Flag the worker for the duration of the task so nested kernel
      // launches inside fn run inline (restored even if fn throws).
      struct Flag {
        Flag() { tls_compute_worker = true; }
        ~Flag() { tls_compute_worker = false; }
      } flag;
      fn(t);
    }));
  }
  fn(0);  // the caller contributes instead of idling on the futures
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured into the task's future
  }
}

}  // namespace dcn
