#include "core/csv.hpp"

#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace dcn {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DCN_CHECK(!header_.empty()) << "CSV needs at least one column";
}

void CsvWriter::add_row(std::vector<std::string> row) {
  DCN_CHECK(row.size() == header_.size())
      << "CSV row arity " << row.size() << " != header " << header_.size();
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream out(path);
  DCN_CHECK(out.good()) << "cannot open " << path << " for writing";
  out << to_string();
  DCN_CHECK(out.good()) << "write to " << path << " failed";
}

}  // namespace dcn
