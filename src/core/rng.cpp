#include "core/rng.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dcn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DCN_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DCN_CHECK(lo <= hi) << "uniform_int range [" << lo << ", " << hi << "]";
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  DCN_CHECK(n > 0) << "index() over empty range";
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace dcn
