#include "core/table.hpp"

#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace dcn {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DCN_CHECK(!header_.empty()) << "table needs at least one column";
}

void TextTable::add_row(std::vector<std::string> row) {
  DCN_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

std::string format_ms(double milliseconds, int precision) {
  return format_double(milliseconds, precision) + " ms";
}

}  // namespace dcn
