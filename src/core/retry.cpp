#include "core/retry.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dcn {

double backoff_delay(const RetryPolicy& policy, int retry, Rng& rng) {
  DCN_CHECK(retry >= 1) << "retry index " << retry;
  DCN_CHECK(policy.base_backoff >= 0.0) << "negative base_backoff";
  DCN_CHECK(policy.max_backoff > 0.0)
      << "max_backoff " << policy.max_backoff << " must be positive";
  DCN_CHECK(policy.jitter >= 0.0 && policy.jitter < 1.0)
      << "jitter " << policy.jitter;
  double delay = policy.base_backoff * std::pow(policy.multiplier, retry - 1);
  delay = std::min(delay, policy.max_backoff);
  if (policy.jitter > 0.0) {
    delay *= rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  // The jitter factor reaches 1 + jitter, so the scaled delay can overshoot
  // max_backoff; and a base_backoff of 0 would make every delay 0, turning
  // the retry loop into a busy spin on the virtual clock. Clamp into
  // (0, max_backoff] so a delay is always strictly positive and capped.
  return std::clamp(delay, kMinBackoffSeconds, policy.max_backoff);
}

bool is_retryable(const std::exception& error) {
  const auto* fault = dynamic_cast<const DeviceFault*>(&error);
  return fault != nullptr && fault->retryable();
}

bool requires_reset(const std::exception& error) {
  const auto* fault = dynamic_cast<const DeviceFault*>(&error);
  return fault != nullptr && fault->requires_reset();
}

}  // namespace dcn
