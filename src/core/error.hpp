// Error handling primitives shared by every module.
//
// The library throws dcn::Error for all recoverable failures (bad shapes,
// invalid configuration strings, out-of-range arguments). DCN_CHECK is used
// at public API boundaries; DCN_DCHECK compiles out in release builds and
// guards internal invariants on hot paths.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dcn {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when tensor shapes or layer configurations are inconsistent.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown when a user-supplied configuration value is invalid.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when the (simulated) device reports a fault. Mirrors the CUDA
/// error taxonomy: `retryable()` marks transient faults the caller may
/// retry after backoff (cudaErrorLaunchFailure, spurious copy errors);
/// `requires_reset()` marks device-loss faults (hangs, Xid events) where
/// the device must be hard-reset and state re-uploaded before reuse.
class DeviceFault : public Error {
 public:
  DeviceFault(const std::string& what, bool retryable,
              bool requires_reset = false)
      : Error(what), retryable_(retryable), requires_reset_(requires_reset) {}

  bool retryable() const { return retryable_; }
  bool requires_reset() const { return requires_reset_; }

 private:
  bool retryable_;
  bool requires_reset_;
};

/// Device allocation failure (cudaErrorMemoryAllocation). Carries the
/// allocator context so callers can log or adapt batch sizes. Genuine
/// capacity exhaustion is fatal (not retryable); injected/spurious
/// allocator failures are transient.
class OutOfMemoryError : public DeviceFault {
 public:
  OutOfMemoryError(const std::string& what, std::int64_t requested_bytes,
                   std::int64_t live_bytes, std::int64_t capacity_bytes,
                   bool retryable = false)
      : DeviceFault(what, retryable),
        requested_bytes_(requested_bytes),
        live_bytes_(live_bytes),
        capacity_bytes_(capacity_bytes) {}

  std::int64_t requested_bytes() const { return requested_bytes_; }
  std::int64_t live_bytes() const { return live_bytes_; }
  std::int64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  std::int64_t requested_bytes_;
  std::int64_t live_bytes_;
  std::int64_t capacity_bytes_;
};

/// A wait exceeded its deadline (device hang / watchdog timeout, the
/// software analog of an Xid-13/Xid-79 event). Always requires a device
/// reset; retryable after that reset.
class TimeoutError : public DeviceFault {
 public:
  TimeoutError(const std::string& what, double timeout_seconds)
      : DeviceFault(what, /*retryable=*/true, /*requires_reset=*/true),
        timeout_seconds_(timeout_seconds) {}

  double timeout_seconds() const { return timeout_seconds_; }

 private:
  double timeout_seconds_;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Stream-accumulating helper so DCN_CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() noexcept(false) {
    throw_check_failure(expr_, file_, line_, os_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace dcn

/// Always-on invariant check. Usage: DCN_CHECK(cond) << "context " << value;
#define DCN_CHECK(cond)                                       \
  if (cond) {                                                 \
  } else                                                      \
    ::dcn::detail::CheckMessage(#cond, __FILE__, __LINE__)

#ifndef NDEBUG
#define DCN_DCHECK(cond) DCN_CHECK(cond)
#else
#define DCN_DCHECK(cond) \
  if (true) {            \
  } else                 \
    ::dcn::detail::CheckMessage(#cond, __FILE__, __LINE__)
#endif
