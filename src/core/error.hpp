// Error handling primitives shared by every module.
//
// The library throws dcn::Error for all recoverable failures (bad shapes,
// invalid configuration strings, out-of-range arguments). DCN_CHECK is used
// at public API boundaries; DCN_DCHECK compiles out in release builds and
// guards internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dcn {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when tensor shapes or layer configurations are inconsistent.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown when a user-supplied configuration value is invalid.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Stream-accumulating helper so DCN_CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() noexcept(false) {
    throw_check_failure(expr_, file_, line_, os_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace dcn

/// Always-on invariant check. Usage: DCN_CHECK(cond) << "context " << value;
#define DCN_CHECK(cond)                                       \
  if (cond) {                                                 \
  } else                                                      \
    ::dcn::detail::CheckMessage(#cond, __FILE__, __LINE__)

#ifndef NDEBUG
#define DCN_DCHECK(cond) DCN_CHECK(cond)
#else
#define DCN_DCHECK(cond) \
  if (true) {            \
  } else                 \
    ::dcn::detail::CheckMessage(#cond, __FILE__, __LINE__)
#endif
