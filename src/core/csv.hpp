// Minimal CSV writer used by benches to export figure series.
//
// Figures 6-8 of the paper are line/bar charts; each bench writes the series
// as CSV next to the printed table so plots can be regenerated offline.
#pragma once

#include <string>
#include <vector>

namespace dcn {

/// Accumulates rows and writes an RFC-4180-ish CSV file (quotes fields that
/// contain commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Serialize the whole document (header + rows).
  std::string to_string() const;

  /// Write to `path`; throws dcn::Error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single CSV field if needed.
std::string csv_escape(const std::string& field);

}  // namespace dcn
