#include "core/cpuinfo.hpp"

namespace dcn {
namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // __builtin_cpu_supports reads cpuid through libgcc's model; init must
  // run before the first query (it is idempotent).
  __builtin_cpu_init();
  f.sse41 = __builtin_cpu_supports("sse4.1");
  f.avx = __builtin_cpu_supports("avx");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  // Magic-static: probed exactly once, safely published to all threads.
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace dcn
