#include "core/cli.hpp"

#include <cstdio>
#include <sstream>

#include "core/error.hpp"

namespace dcn {
namespace {

std::int64_t parse_int(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an integer, got '" + value +
                      "'");
  }
}

double parse_double(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects a number, got '" + value +
                      "'");
  }
}

bool parse_bool(const std::string& name, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw ConfigError("flag --" + name + " expects a boolean, got '" + value +
                    "'");
}

}  // namespace

CliFlags::CliFlags(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliFlags::add_int(const std::string& name, std::int64_t default_value,
                       const std::string& help) {
  DCN_CHECK(!flags_.count(name)) << "duplicate flag --" << name;
  Flag f;
  f.kind = Kind::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void CliFlags::add_double(const std::string& name, double default_value,
                          const std::string& help) {
  DCN_CHECK(!flags_.count(name)) << "duplicate flag --" << name;
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void CliFlags::add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  DCN_CHECK(!flags_.count(name)) << "duplicate flag --" << name;
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.string_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void CliFlags::add_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  DCN_CHECK(!flags_.count(name)) << "duplicate flag --" << name;
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void CliFlags::set_value(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw ConfigError("unknown flag --" + name);
  Flag& f = it->second;
  switch (f.kind) {
    case Kind::kInt:
      f.int_value = parse_int(name, value);
      break;
    case Kind::kDouble:
      f.double_value = parse_double(name, value);
      break;
    case Kind::kString:
      f.string_value = value;
      break;
    case Kind::kBool:
      f.bool_value = parse_bool(name, value);
      break;
  }
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_value(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) throw ConfigError("unknown flag --" + arg);
    if (it->second.kind == Kind::kBool) {
      it->second.bool_value = true;
      continue;
    }
    DCN_CHECK(i + 1 < argc) << "flag --" << arg << " expects a value";
    set_value(arg, argv[++i]);
  }
  return true;
}

const CliFlags::Flag& CliFlags::flag(const std::string& name,
                                     Kind kind) const {
  auto it = flags_.find(name);
  DCN_CHECK(it != flags_.end()) << "flag --" << name << " was never declared";
  DCN_CHECK(it->second.kind == kind) << "flag --" << name << " type mismatch";
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return flag(name, Kind::kInt).int_value;
}
double CliFlags::get_double(const std::string& name) const {
  return flag(name, Kind::kDouble).double_value;
}
const std::string& CliFlags::get_string(const std::string& name) const {
  return flag(name, Kind::kString).string_value;
}
bool CliFlags::get_bool(const std::string& name) const {
  return flag(name, Kind::kBool).bool_value;
}

std::string CliFlags::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.kind) {
      case Kind::kInt:
        os << "=<int> (default " << f.int_value << ")";
        break;
      case Kind::kDouble:
        os << "=<num> (default " << f.double_value << ")";
        break;
      case Kind::kString:
        os << "=<str> (default '" << f.string_value << "')";
        break;
      case Kind::kBool:
        os << " (default " << (f.bool_value ? "true" : "false") << ")";
        break;
    }
    os << "\n      " << f.help << '\n';
  }
  return os.str();
}

}  // namespace dcn
