// Bounded retry with exponential backoff on the virtual clock.
//
// Fault recovery everywhere in the library (ResilientSession re-running a
// faulted inference, the NAS runner re-attempting a failed trial) goes
// through one policy so backoff behaviour is uniform and testable. Delays
// are virtual-clock seconds: callers advance the simulated device's host
// clock rather than sleeping, which keeps retry tests instant and
// deterministic.
#pragma once

#include <cstdint>
#include <exception>
#include <string>

#include "core/rng.hpp"

namespace dcn {

struct RetryPolicy {
  /// Total attempts including the first (>= 1). 1 disables retries.
  int max_attempts = 3;
  /// Delay before the first retry (virtual seconds).
  double base_backoff = 1.0e-3;
  /// Geometric growth factor per retry.
  double multiplier = 2.0;
  /// Upper bound on a single delay.
  double max_backoff = 1.0;
  /// Jitter fraction in [0, 1): each delay is scaled by a uniform factor
  /// in [1 - jitter, 1 + jitter). 0 keeps delays exact (tests rely on it).
  double jitter = 0.0;
};

/// Floor for a single backoff delay (1 virtual nanosecond): a delay of
/// exactly 0 would retry without yielding any virtual time, so the clamp in
/// backoff_delay keeps every delay strictly positive.
inline constexpr double kMinBackoffSeconds = 1.0e-9;

/// Delay before retry number `retry` (1-based):
/// min(base * multiplier^(retry-1), max_backoff) * jitter_factor(rng),
/// clamped into [kMinBackoffSeconds, max_backoff] — jitter never pushes a
/// delay above the cap or down to zero.
double backoff_delay(const RetryPolicy& policy, int retry, Rng& rng);

/// A policy bound to its own seeded jitter stream. Jittered delays become a
/// pure function of (policy, seed, draw index), so callers replay backoff
/// timing deterministically instead of sharing a wider RNG whose draw
/// history depends on unrelated work. reseed() re-anchors the stream: the
/// serving layer reseeds per dispatched batch, which makes a batch's
/// recovery timing independent of which replica served the batches before
/// it (the replica-count-invariance contract in DESIGN.md "Serving model").
class SeededBackoff {
 public:
  explicit SeededBackoff(RetryPolicy policy, std::uint64_t seed = 0x5eed)
      : policy_(policy), rng_(seed) {}

  /// Delay before retry number `retry` (1-based). Draws from the owned
  /// jitter stream only when policy().jitter > 0, so jitter-free policies
  /// stay exact regardless of seeding.
  double delay(int retry) { return backoff_delay(policy_, retry, rng_); }

  /// Restart the jitter stream from `seed`.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
};

/// Counters a retry loop accumulates (exact under jitter = 0).
struct RetryStats {
  int attempts = 0;
  int retries = 0;
  double backoff_seconds = 0.0;
  std::string last_error;
};

/// True when `error` is a transient DeviceFault worth retrying.
bool is_retryable(const std::exception& error);

/// True when recovery must hard-reset the device first (hang / device loss).
bool requires_reset(const std::exception& error);

/// Run `fn` under `policy`. Before each retry, `on_retry(error, retry)` runs
/// (recovery hook: reset/re-init plus the backoff sleep; `retry` is 1-based).
/// Non-retryable errors and exhausted policies rethrow the last error.
template <typename Fn, typename OnRetry>
auto with_retries(const RetryPolicy& policy, RetryStats& stats, Fn&& fn,
                  OnRetry&& on_retry) -> decltype(fn()) {
  for (int attempt = 1;; ++attempt) {
    ++stats.attempts;
    try {
      return fn();
    } catch (const std::exception& error) {
      stats.last_error = error.what();
      if (!is_retryable(error) || attempt >= policy.max_attempts) throw;
      ++stats.retries;
      on_retry(error, attempt);
    }
  }
}

}  // namespace dcn
