// Deterministic random number generation.
//
// Every stochastic component in the library (dataset synthesis, parameter
// init, NAS sampling, augmentation) draws from an explicitly passed Rng so a
// single seed reproduces an entire experiment. The generator is
// xoshiro256** seeded through splitmix64, which gives high-quality streams
// from arbitrary 64-bit seeds and is much faster than std::mt19937_64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dcn {

/// xoshiro256** PRNG with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second draw).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Uniformly pick an index in [0, n).
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child stream (for per-worker determinism).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64-finalizer seed mixing: decorrelates per-unit seeds (one per
/// NAS trial attempt, one per served batch) derived from a base seed and a
/// salt, so unit k's stream is independent of unit k-1's yet reproducible.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt);

}  // namespace dcn
