#include "core/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace dcn {
namespace {

// Atomic: worker threads log while the main thread may adjust the level.
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%8.2fs %s] %s\n", elapsed_seconds(), tag(level),
               message.c_str());
}

}  // namespace dcn
