// Tiny command-line flag parser for examples and bench binaries.
//
// Supports --name=value and --name value forms plus boolean --flag.
// Unrecognized flags raise ConfigError so typos fail loudly; positional
// arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dcn {

/// Declarative flag set. Register flags, then parse(argc, argv).
class CliFlags {
 public:
  CliFlags(std::string program, std::string description);

  /// Register flags with default values; returned reference is stable.
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parse argv. Returns false if --help was requested (usage was printed).
  /// Throws ConfigError for unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Render the usage/help text.
  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  const Flag& flag(const std::string& name, Kind kind) const;
  void set_value(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace dcn
