// Plain-text table formatting for bench harness output.
//
// Every bench binary reports paper-style tables (Tables 1-3, the series
// behind Figures 6-8). TextTable renders aligned ASCII tables; cells are
// strings so callers control numeric formatting.
#pragma once

#include <string>
#include <vector>

namespace dcn {

/// Column-aligned ASCII table with a header row and separator rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Render the table with 2-space column gaps and an underline rule.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used across bench binaries.
std::string format_double(double v, int precision);
std::string format_percent(double fraction, int precision = 1);
std::string format_ms(double milliseconds, int precision = 3);

}  // namespace dcn
