// Runtime CPU feature detection for kernel dispatch.
//
// The tensor engine ships several SIMD microkernel variants compiled for
// different ISA levels (tensor/kernels); which ones are *runnable* is a
// property of the machine executing the binary, not of the build host. This
// probe answers that question once per process so the kernel registry can
// dispatch the widest variant the CPU actually supports — the XNNPACK-style
// split between "compiled in" (a build-time fact) and "selectable" (a
// run-time fact).
#pragma once

namespace dcn {

/// x86 SIMD levels the kernel variants target. Non-x86 builds report
/// everything false and the registry falls back to the generic variant.
struct CpuFeatures {
  bool sse41 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
};

/// The executing machine's features, probed once (cpuid) on first call and
/// cached; thread-safe.
const CpuFeatures& cpu_features();

}  // namespace dcn
