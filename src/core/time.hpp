// Wall-clock timing helper for host-side measurements.
//
// Note: the paper's latency numbers are reproduced on the *virtual* clock of
// src/simgpu, not this wall timer; WallTimer is for progress reporting and
// the google-benchmark micro benches.
#pragma once

#include <chrono>

namespace dcn {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dcn
