// Leveled logging to stderr.
//
// Benches and examples narrate long-running phases (dataset synthesis,
// training epochs, NAS trials) through this logger so output stays uniform
// and can be silenced with set_log_level(LogLevel::kWarn).
#pragma once

#include <sstream>
#include <string>

namespace dcn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` (adds level tag and elapsed-time prefix).
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace dcn

#define DCN_LOG_DEBUG ::dcn::detail::LogLine(::dcn::LogLevel::kDebug)
#define DCN_LOG_INFO ::dcn::detail::LogLine(::dcn::LogLevel::kInfo)
#define DCN_LOG_WARN ::dcn::detail::LogLine(::dcn::LogLevel::kWarn)
#define DCN_LOG_ERROR ::dcn::detail::LogLine(::dcn::LogLevel::kError)
