// Shared-memory parallel loop helpers.
//
// All data-parallel loops in the library funnel through parallel_for so the
// threading backend (OpenMP when available, serial otherwise) is chosen in
// one place. Grain-size control avoids spawning parallel regions for tiny
// trip counts, which matters for the many small tensors in SPP branches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dcn {

/// Number of worker threads the backend will use (1 when OpenMP is absent).
int hardware_threads();

/// Set the number of threads used by subsequent parallel_for calls.
/// Values < 1 reset to the hardware default.
void set_num_threads(int n);

/// Run fn(i) for i in [begin, end). Executes in parallel when the trip count
/// is at least `grain`, serially otherwise. fn must be safe to invoke
/// concurrently for distinct i.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain = 64);

/// Chunked variant: fn(chunk_begin, chunk_end) over a partition of
/// [begin, end). Lower overhead than the per-index form for tight loops.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain = 1024);

}  // namespace dcn
