// Shared-memory parallel loop helpers and a task thread pool.
//
// All data-parallel loops in the library funnel through parallel_for so the
// threading backend (OpenMP when available, serial otherwise) is chosen in
// one place. Grain-size control avoids spawning parallel regions for tiny
// trip counts, which matters for the many small tensors in SPP branches.
//
// ThreadPool is the coarse-grained counterpart: long-lived std::thread
// workers executing independent tasks (one task = one NAS trial). Pool
// tasks may themselves call parallel_for; keep the product of pool size and
// set_num_threads at or below the machine's core count to avoid
// oversubscription.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dcn {

/// Number of worker threads the backend will use (1 when OpenMP is absent).
/// Safe to call from any thread, including inside pool tasks.
int hardware_threads();

/// Set the number of threads used by subsequent parallel_for calls.
/// Values < 1 reset to the hardware default. Safe to call concurrently with
/// hardware_threads() (the setting is a single atomic), though in-flight
/// parallel regions keep the count they started with.
void set_num_threads(int n);

/// Run fn(i) for i in [begin, end). Executes in parallel when the trip count
/// is at least `grain`, serially otherwise. fn must be safe to invoke
/// concurrently for distinct i.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain = 64);

/// Chunked variant: fn(chunk_begin, chunk_end) over a partition of
/// [begin, end). Lower overhead than the per-index form for tight loops.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain = 1024);

/// Number of threads the tensor-engine compute pool targets: the
/// set_num_threads() override when present, else the hardware concurrency.
/// Unlike hardware_threads() this does not require OpenMP, so the
/// std::thread compute pool scales even in TSan builds that avoid OpenMP.
int compute_threads();

/// True when the calling thread is a shared-compute-pool worker. Parallel
/// kernels use this to run nested parallel regions inline instead of
/// re-submitting to the pool, which could deadlock a fully occupied pool.
bool in_compute_worker();

/// Run fn(task) for task in [0, tasks) on the shared compute pool and block
/// until all tasks finish. Task 0 runs on the calling thread so the caller
/// is not parked while workers do all the lifting. Falls back to an inline
/// serial loop when tasks <= 1, compute_threads() == 1, or when invoked
/// from a pool worker. Exceptions from tasks are rethrown (first one wins).
///
/// Determinism contract: callers that need bit-reproducible results across
/// thread counts must make the *decomposition* (what each task computes and
/// the order partial results are reduced) independent of compute_threads();
/// this function only varies which thread executes a task, never what a
/// task is. See DESIGN.md "Tensor-engine threading model".
void run_compute_tasks(int tasks, const std::function<void(int)>& fn);

/// Fixed-size pool of std::thread workers draining a FIFO task queue.
/// Tasks run in submission order (though they complete in any order); an
/// exception escaping a task is captured and rethrown from the
/// corresponding future's get().
class ThreadPool {
 public:
  /// Spawns `threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int threads);
  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dcn
