// Evaluation reporting: confusion summary and precision-recall export.
//
// Rounds out the trainer's EvalResult with the artifacts a model card
// needs: a thresholded confusion matrix, the PR curve as CSV (the data
// behind an AP number), and a compact text report.
#pragma once

#include <string>
#include <vector>

#include "detect/metrics.hpp"

namespace dcn::detect {

struct ConfusionSummary {
  std::int64_t true_positives = 0;
  std::int64_t false_positives = 0;
  std::int64_t true_negatives = 0;
  std::int64_t false_negatives = 0;

  std::int64_t total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }
  double precision() const;
  double recall() const;
  double f1() const;
};

/// Confusion counts at `threshold` with localization requirement
/// iou >= iou_threshold for a true positive.
ConfusionSummary confusion_at_threshold(
    const std::vector<ScoredDetection>& detections, float threshold,
    float iou_threshold = 0.5f);

/// CSV of the PR curve ("threshold,precision,recall" rows).
std::string pr_curve_csv(const std::vector<ScoredDetection>& detections,
                         float iou_threshold = 0.5f);

/// Multi-line human-readable evaluation report.
std::string evaluation_report(const std::vector<ScoredDetection>& detections,
                              float threshold = 0.5f,
                              float iou_threshold = 0.5f);

}  // namespace dcn::detect
