#include "detect/imageops.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dcn::detect {

Tensor bilinear_resize(const Tensor& image, std::int64_t out_h,
                       std::int64_t out_w) {
  DCN_CHECK(image.rank() == 3) << "resize expects [C, H, W]";
  DCN_CHECK(out_h > 0 && out_w > 0) << "resize target";
  const std::int64_t channels = image.dim(0);
  const std::int64_t h = image.dim(1);
  const std::int64_t w = image.dim(2);
  Tensor out(Shape{channels, out_h, out_w});
  const double sy = out_h > 1 ? static_cast<double>(h - 1) / (out_h - 1) : 0.0;
  const double sx = out_w > 1 ? static_cast<double>(w - 1) / (out_w - 1) : 0.0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* src = image.data() + c * h * w;
    float* dst = out.data() + c * out_h * out_w;
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      const double fy = oy * sy;
      const std::int64_t y0 = static_cast<std::int64_t>(fy);
      const std::int64_t y1 = std::min(y0 + 1, h - 1);
      const double ty = fy - y0;
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        const double fx = ox * sx;
        const std::int64_t x0 = static_cast<std::int64_t>(fx);
        const std::int64_t x1 = std::min(x0 + 1, w - 1);
        const double tx = fx - x0;
        const double top =
            src[y0 * w + x0] + (src[y0 * w + x1] - src[y0 * w + x0]) * tx;
        const double bot =
            src[y1 * w + x0] + (src[y1 * w + x1] - src[y1 * w + x0]) * tx;
        dst[oy * out_w + ox] = static_cast<float>(top + (bot - top) * ty);
      }
    }
  }
  return out;
}

Tensor center_crop(const Tensor& image, std::int64_t size) {
  DCN_CHECK(image.rank() == 3) << "crop expects [C, H, W]";
  DCN_CHECK(size > 0) << "crop size";
  const std::int64_t channels = image.dim(0);
  const std::int64_t h = image.dim(1);
  const std::int64_t w = image.dim(2);
  const std::int64_t r0 = h / 2 - size / 2;
  const std::int64_t c0 = w / 2 - size / 2;
  Tensor out(Shape{channels, size, size});
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* src = image.data() + c * h * w;
    float* dst = out.data() + c * size * size;
    for (std::int64_t r = 0; r < size; ++r) {
      const std::int64_t sr = std::clamp<std::int64_t>(r0 + r, 0, h - 1);
      for (std::int64_t cc = 0; cc < size; ++cc) {
        const std::int64_t sc = std::clamp<std::int64_t>(c0 + cc, 0, w - 1);
        dst[r * size + cc] = src[sr * w + sc];
      }
    }
  }
  return out;
}

Tensor crop_box(const Tensor& image, const float box[4]) {
  DCN_CHECK(image.rank() == 3) << "crop_box expects [C, H, W]";
  const std::int64_t channels = image.dim(0);
  const std::int64_t h = image.dim(1);
  const std::int64_t w = image.dim(2);
  std::int64_t x0 = static_cast<std::int64_t>((box[0] - box[2] / 2) * w);
  std::int64_t x1 = static_cast<std::int64_t>((box[0] + box[2] / 2) * w);
  std::int64_t y0 = static_cast<std::int64_t>((box[1] - box[3] / 2) * h);
  std::int64_t y1 = static_cast<std::int64_t>((box[1] + box[3] / 2) * h);
  x0 = std::clamp<std::int64_t>(x0, 0, w - 2);
  y0 = std::clamp<std::int64_t>(y0, 0, h - 2);
  x1 = std::clamp<std::int64_t>(x1, x0 + 2, w);
  y1 = std::clamp<std::int64_t>(y1, y0 + 2, h);
  Tensor out(Shape{channels, y1 - y0, x1 - x0});
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* src = image.data() + c * h * w;
    float* dst = out.data() + c * (y1 - y0) * (x1 - x0);
    for (std::int64_t r = y0; r < y1; ++r) {
      for (std::int64_t cc = x0; cc < x1; ++cc) {
        dst[(r - y0) * (x1 - x0) + (cc - x0)] = src[r * w + cc];
      }
    }
  }
  return out;
}

}  // namespace dcn::detect
