// The SPP-Net drainage-crossing detector.
//
// Feature trunk (conv+ReLU / max-pool stages) -> spatial pyramid pooling ->
// fully-connected stack -> 5-way head [objectness logit | cx cy w h].
// Thanks to SPP, the same weights accept any input spatial size at
// inference; training uses the fixed 100x100 patches like the paper.
#pragma once

#include <array>
#include <memory>

#include "detect/sppnet_config.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/sequential.hpp"
#include "nn/spp.hpp"

namespace dcn {
class Rng;
}

namespace dcn::detect {

/// One decoded prediction for an input image.
struct Prediction {
  float confidence = 0.0f;           // sigmoid(objectness logit)
  std::array<float, 4> box{};        // (cx, cy, w, h), normalized
};

/// Detection-head initialization (small final weights, prior-box bias);
/// shared by SppNet and the fixed-input baseline.
void init_detection_head(Linear& final_layer);

class SppNet : public Module {
 public:
  SppNet(SppNetConfig config, Rng& rng);

  Tensor forward(const Tensor& input) override;   // [N,C,H,W] -> [N,5]
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "SppNet"; }
  void set_training(bool training) override;

  const SppNetConfig& config() const { return config_; }

  /// Structural access for post-training transforms (the INT8 quantizer
  /// walks these to calibrate and freeze each layer).
  Sequential& trunk() { return trunk_; }
  SpatialPyramidPool& spp_layer() { return spp_; }
  Sequential& head() { return head_; }

  /// Decode raw head outputs [N, 5] into per-image predictions.
  static std::vector<Prediction> decode(const Tensor& head_out);

  /// Forward + decode in eval mode (restores prior training flag).
  std::vector<Prediction> predict(const Tensor& input);

 private:
  SppNetConfig config_;
  Sequential trunk_;
  SpatialPyramidPool spp_;
  Sequential head_;
};

}  // namespace dcn::detect
