#include "detect/sppnet_config.hpp"

#include <sstream>

#include "core/error.hpp"

namespace dcn::detect {
namespace {

// Parse "{a,b,c}" (1 to 3 comma-separated integers) after a prefix.
std::vector<std::int64_t> parse_braced_ints(const std::string& token,
                                            std::size_t prefix_len,
                                            const std::string& context) {
  DCN_CHECK(token.size() > prefix_len + 2 && token[prefix_len] == '{' &&
            token.back() == '}')
      << "malformed " << context << " token '" << token << "'";
  const std::string inner =
      token.substr(prefix_len + 1, token.size() - prefix_len - 2);
  std::vector<std::int64_t> values;
  std::istringstream is(inner);
  std::string part;
  while (std::getline(is, part, ',')) {
    try {
      std::size_t pos = 0;
      values.push_back(std::stoll(part, &pos));
      DCN_CHECK(pos == part.size()) << "trailing junk in '" << part << "'";
    } catch (const std::exception&) {
      throw ConfigError("bad integer '" + part + "' in " + context +
                        " token '" + token + "'");
    }
  }
  DCN_CHECK(!values.empty()) << "empty " << context << " token";
  return values;
}

}  // namespace

std::int64_t SppNetConfig::trunk_out_channels() const {
  std::int64_t channels = in_channels;
  for (const TrunkStage& stage : trunk) {
    if (stage.kind == TrunkStage::Kind::kConv) channels = stage.conv.filters;
  }
  return channels;
}

std::int64_t SppNetConfig::spp_features() const {
  std::int64_t cells = 0;
  for (std::int64_t l : spp_levels) cells += l * l;
  return trunk_out_channels() * cells;
}

std::int64_t SppNetConfig::trunk_out_size(std::int64_t size) const {
  for (const TrunkStage& stage : trunk) {
    if (stage.kind == TrunkStage::Kind::kConv) {
      const std::int64_t pad = stage.conv.kernel / 2;
      size = (size + 2 * pad - stage.conv.kernel) / stage.conv.stride + 1;
    } else {
      size = (size - stage.pool.kernel) / stage.pool.stride + 1;
    }
  }
  return size;
}

std::string SppNetConfig::to_notation() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << '-';
    first = false;
  };
  for (const TrunkStage& stage : trunk) {
    sep();
    if (stage.kind == TrunkStage::Kind::kConv) {
      os << "C_{" << stage.conv.filters << ',' << stage.conv.kernel << ','
         << stage.conv.stride << '}';
    } else {
      os << "P_{" << stage.pool.kernel << ',' << stage.pool.stride << '}';
    }
  }
  sep();
  os << "SPP_{";
  for (std::size_t i = 0; i < spp_levels.size(); ++i) {
    if (i) os << ',';
    os << spp_levels[i];
  }
  os << '}';
  for (std::int64_t fc : fc_sizes) {
    os << "-F_{" << fc << '}';
  }
  return os.str();
}

std::int64_t SppNetConfig::parameter_count() const {
  std::int64_t total = 0;
  std::int64_t channels = in_channels;
  for (const TrunkStage& stage : trunk) {
    if (stage.kind == TrunkStage::Kind::kConv) {
      total += stage.conv.filters *
                   (channels * stage.conv.kernel * stage.conv.kernel) +
               stage.conv.filters;
      channels = stage.conv.filters;
    }
  }
  std::int64_t features = spp_features();
  for (std::int64_t fc : fc_sizes) {
    total += features * fc + fc;
    features = fc;
  }
  total += features * head_outputs + head_outputs;
  return total;
}

SppNetConfig parse_notation(const std::string& notation,
                            std::int64_t in_channels) {
  SppNetConfig config;
  config.in_channels = in_channels;
  config.name = notation;

  std::vector<std::string> tokens;
  std::string token;
  // Tokens are separated by '-' outside of braces.
  int depth = 0;
  for (char ch : notation) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    if (ch == '-' && depth == 0) {
      if (!token.empty()) tokens.push_back(token);
      token.clear();
      continue;
    }
    token += ch;
  }
  if (!token.empty()) tokens.push_back(token);
  DCN_CHECK(!tokens.empty()) << "empty architecture notation";

  bool seen_spp = false;
  for (const std::string& t : tokens) {
    if (t.rfind("C_", 0) == 0) {
      DCN_CHECK(!seen_spp) << "conv after SPP in '" << notation << "'";
      const auto v = parse_braced_ints(t, 2, "conv");
      DCN_CHECK(v.size() == 3) << "conv needs {filters,kernel,stride}";
      TrunkStage stage;
      stage.kind = TrunkStage::Kind::kConv;
      stage.conv = {v[0], v[1], v[2]};
      config.trunk.push_back(stage);
    } else if (t.rfind("P_", 0) == 0) {
      DCN_CHECK(!seen_spp) << "pool after SPP in '" << notation << "'";
      const auto v = parse_braced_ints(t, 2, "pool");
      DCN_CHECK(v.size() == 2) << "pool needs {kernel,stride}";
      TrunkStage stage;
      stage.kind = TrunkStage::Kind::kPool;
      stage.pool = {v[0], v[1]};
      config.trunk.push_back(stage);
    } else if (t.rfind("SPP_", 0) == 0) {
      DCN_CHECK(!seen_spp) << "duplicate SPP in '" << notation << "'";
      config.spp_levels = parse_braced_ints(t, 4, "SPP");
      seen_spp = true;
    } else if (t.rfind("F_", 0) == 0) {
      DCN_CHECK(seen_spp) << "F before SPP in '" << notation << "'";
      const auto v = parse_braced_ints(t, 2, "fc");
      DCN_CHECK(v.size() == 1) << "fc needs {neurons}";
      config.fc_sizes.push_back(v[0]);
    } else {
      throw ConfigError("unknown token '" + t + "' in architecture '" +
                        notation + "'");
    }
  }
  DCN_CHECK(seen_spp) << "architecture '" << notation << "' lacks an SPP layer";
  return config;
}

namespace {

SppNetConfig table1_model(const std::string& name,
                          std::int64_t conv1_kernel,
                          std::int64_t spp_first_level,
                          std::int64_t fc_size) {
  std::ostringstream os;
  os << "C_{64," << conv1_kernel << ",1}-P_{2,2}-C_{128,3,1}-P_{2,2}"
     << "-C_{256,3,1}-P_{2,2}-SPP_{" << spp_first_level;
  if (spp_first_level > 2) os << ",2";
  if (spp_first_level > 1) os << ",1";
  os << "}-F_{" << fc_size << '}';
  SppNetConfig config = parse_notation(os.str());
  config.name = name;
  return config;
}

}  // namespace

SppNetConfig original_sppnet() {
  return table1_model("Original SPP-Net", 3, 4, 1024);
}

SppNetConfig sppnet_candidate1() {
  return table1_model("SPP-Net #1", 5, 4, 1024);
}

SppNetConfig sppnet_candidate2() {
  return table1_model("SPP-Net #2", 3, 5, 4096);
}

SppNetConfig sppnet_candidate3() {
  return table1_model("SPP-Net #3", 3, 5, 2048);
}

std::vector<SppNetConfig> table1_models() {
  return {original_sppnet(), sppnet_candidate1(), sppnet_candidate2(),
          sppnet_candidate3()};
}

}  // namespace dcn::detect
