#include "detect/fixed_cnn.hpp"

#include "core/error.hpp"
#include "detect/imageops.hpp"
#include "detect/sppnet.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"

namespace dcn::detect {

FixedInputCnn::FixedInputCnn(SppNetConfig config, std::int64_t input_size,
                             Rng& rng)
    : config_(std::move(config)), input_size_(input_size) {
  DCN_CHECK(input_size >= 16) << "fixed input size too small";
  std::int64_t channels = config_.in_channels;
  for (const TrunkStage& stage : config_.trunk) {
    if (stage.kind == TrunkStage::Kind::kConv) {
      net_.emplace<Conv2d>(channels, stage.conv.filters, stage.conv.kernel,
                           stage.conv.stride, rng);
      net_.emplace<ReLU>();
      channels = stage.conv.filters;
    } else {
      net_.emplace<MaxPool2d>(stage.pool.kernel, stage.pool.stride);
    }
  }
  const std::int64_t out_size = config_.trunk_out_size(input_size);
  DCN_CHECK(out_size > 0) << "trunk collapses " << input_size << " to zero";
  net_.emplace<Flatten>();
  std::int64_t features = channels * out_size * out_size;
  for (std::int64_t fc : config_.fc_sizes) {
    net_.emplace<Linear>(features, fc, rng);
    net_.emplace<ReLU>();
    features = fc;
  }
  Linear& final = net_.emplace<Linear>(features, config_.head_outputs, rng);
  init_detection_head(final);
}

Tensor FixedInputCnn::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 4) << "FixedInputCnn expects NCHW";
  if (input.dim(2) == input_size_ && input.dim(3) == input_size_) {
    return net_.forward(input);
  }
  // Warp each sample to the fixed resolution (inference-time escape hatch).
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  Tensor warped(Shape{n, c, input_size_, input_size_});
  const std::int64_t src_stride = c * input.dim(2) * input.dim(3);
  const std::int64_t dst_stride = c * input_size_ * input_size_;
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor sample(Shape{c, input.dim(2), input.dim(3)});
    std::copy(input.data() + i * src_stride,
              input.data() + (i + 1) * src_stride, sample.data());
    const Tensor resized = bilinear_resize(sample, input_size_, input_size_);
    std::copy(resized.data(), resized.data() + dst_stride,
              warped.data() + i * dst_stride);
  }
  return net_.forward(warped);
}

Tensor FixedInputCnn::backward(const Tensor& grad_output) {
  return net_.backward(grad_output);
}

std::vector<ParamRef> FixedInputCnn::parameters() { return net_.parameters(); }

void FixedInputCnn::set_training(bool training) {
  Module::set_training(training);
  net_.set_training(training);
}

}  // namespace dcn::detect
