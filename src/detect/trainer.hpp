// Training and evaluation harness for detection models.
//
// Defaults mirror the paper's §6.1 setup: SGD with lr 0.005, weight decay
// 0.0005, momentum 0.9, batch size 20, 80/20 train/test split, and the
// average-precision metric of Equation 1.
#pragma once

#include <functional>

#include "detect/metrics.hpp"
#include "detect/sppnet.hpp"
#include "geo/dataset.hpp"
#include "nn/sgd.hpp"

namespace dcn::detect {

struct TrainConfig {
  int epochs = 12;
  std::int64_t batch_size = 20;
  SgdConfig sgd;  // paper defaults
  double train_fraction = 0.8;
  std::uint64_t shuffle_seed = 7;
  /// Weight of the box-regression term in the multi-task loss.
  double box_loss_weight = 2.0;
  /// Step learning-rate decay: multiply the LR by `lr_decay_factor` when
  /// training passes each fraction in `lr_decay_milestones` (stabilizes
  /// the box regressor near convergence).
  double lr_decay_factor = 0.2;
  std::vector<double> lr_decay_milestones{0.6, 0.85};
  /// Log a line per epoch.
  bool verbose = true;
  /// Compute threads for the tensor engine during this run (conv/GEMM
  /// batch parallelism): 0 leaves the process-wide setting untouched,
  /// values >= 1 call set_num_threads(jobs) for the duration of training.
  /// Results are bit-identical for any value (see DESIGN.md "Tensor-engine
  /// threading model").
  int jobs = 0;
};

struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  double grad_norm = 0.0;
  /// Wall-clock seconds spent in this epoch's forward/backward/step loop.
  double seconds = 0.0;
};

struct EvalResult {
  double average_precision = 0.0;
  double accuracy = 0.0;   // at confidence 0.5
  double mean_iou = 0.0;   // over confident detections on positive images
  std::vector<ScoredDetection> detections;
};

/// Any module mapping [N,C,H,W] -> [N,5] can be trained/evaluated.
struct TrainHistory {
  std::vector<EpochStats> epochs;
  EvalResult final_eval;
};

/// Train `model` on the split's train indices; evaluate on its test indices.
TrainHistory train_detector(Module& model, const geo::DrainageDataset& dataset,
                            const geo::Split& split, const TrainConfig& config);

/// Evaluate `model` on the given sample indices.
EvalResult evaluate_detector(Module& model,
                             const geo::DrainageDataset& dataset,
                             const std::vector<std::size_t>& indices,
                             std::int64_t batch_size = 20);

}  // namespace dcn::detect
