// SPP-Net architecture configuration and the paper's hyper-parameter
// string notation.
//
// Table 1 describes models as e.g.
//   C_{64,3,1}-P_{2,2}-C_{128,3,1}-P_{2,2}-C_{256,3,1}-P_{2,2}-SPP_{4,2,1}-F_{1024}
// where C = convolution (filters, kernel, stride), P = max pool
// (kernel, stride), SPP = pyramid levels, F = fully-connected width.
// SppNetConfig is the structured form; parse/format round-trips the paper
// notation so Table-1 rows are the literal configuration source.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcn::detect {

struct ConvSpec {
  std::int64_t filters = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
};

struct PoolSpec {
  std::int64_t kernel = 0;
  std::int64_t stride = 0;
};

/// One element of the feature-extraction trunk (conv+ReLU or max pool),
/// in network order.
struct TrunkStage {
  enum class Kind { kConv, kPool } kind = Kind::kConv;
  ConvSpec conv;
  PoolSpec pool;
};

struct SppNetConfig {
  std::string name = "SPP-Net";
  std::int64_t in_channels = 4;  // NAIP R,G,B,NIR
  std::vector<TrunkStage> trunk;
  std::vector<std::int64_t> spp_levels;  // e.g. {4, 2, 1}
  std::vector<std::int64_t> fc_sizes;    // hidden layer widths
  std::int64_t head_outputs = 5;         // objectness + (cx, cy, w, h)

  /// Output channels of the last conv layer (SPP input channels).
  std::int64_t trunk_out_channels() const;

  /// SPP output feature count (FC input width).
  std::int64_t spp_features() const;

  /// Spatial size after the trunk for a square input of `size`.
  std::int64_t trunk_out_size(std::int64_t size) const;

  /// Paper notation, e.g. "C_{64,3,1}-P_{2,2}-...-SPP_{4,2,1}-F_{1024}".
  std::string to_notation() const;

  /// Total learnable parameter count.
  std::int64_t parameter_count() const;
};

/// Parse the paper notation. Throws ConfigError on malformed input.
SppNetConfig parse_notation(const std::string& notation,
                            std::int64_t in_channels = 4);

/// Table-1 presets.
SppNetConfig original_sppnet();
SppNetConfig sppnet_candidate1();
SppNetConfig sppnet_candidate2();
SppNetConfig sppnet_candidate3();

/// All four Table-1 models in paper order.
std::vector<SppNetConfig> table1_models();

}  // namespace dcn::detect
