// Two-stage region-proposal baseline ("R-CNN lite").
//
// Stands in for the Faster R-CNN reference of §8.1: stage one proposes
// candidate regions from a class-agnostic spectral heuristic (co-located
// road-gray and dark-NIR water responses); stage two scores each
// variable-size proposal crop with a trained SPP-Net — showcasing SPP's
// arbitrary-input-size property the way R-CNN scores warped proposals.
#pragma once

#include <array>
#include <vector>

#include "detect/sppnet.hpp"
#include "tensor/tensor.hpp"

namespace dcn::detect {

struct Proposal {
  std::array<float, 4> box{};  // (cx, cy, w, h) normalized
  float objectness = 0.0f;     // heuristic score
};

struct ProposalConfig {
  /// Proposal window side as a fraction of the patch side.
  double window_fraction = 0.22;
  /// Non-maximum-suppression radius as a fraction of the patch side.
  double nms_radius = 0.18;
  /// Maximum proposals returned per image.
  int max_proposals = 8;
};

/// Stage one: propose regions in a [4, H, W] patch.
std::vector<Proposal> propose_regions(const Tensor& image,
                                      const ProposalConfig& config);

/// Two-stage detector: proposals scored by an SPP-Net.
class RcnnLiteDetector {
 public:
  RcnnLiteDetector(SppNet& scorer, ProposalConfig config)
      : scorer_(&scorer), config_(config) {}

  /// Best detection for one [4, H, W] image: the proposal with the highest
  /// rescored confidence (confidence 0 if no proposals).
  Prediction detect(const Tensor& image);

  const ProposalConfig& config() const { return config_; }

 private:
  SppNet* scorer_;
  ProposalConfig config_;
};

}  // namespace dcn::detect
