// Fixed-input CNN baseline.
//
// Identical trunk and head to SPP-Net but with plain flattening instead of
// spatial pyramid pooling, so the FC input size is bound to one training
// resolution. Inputs of any other size must be warped (bilinear) to fit —
// exactly the crop/warp compromise §2.2 of the paper argues SPP removes.
#pragma once

#include "detect/sppnet_config.hpp"
#include "nn/activations.hpp"
#include "nn/module.hpp"
#include "nn/sequential.hpp"

namespace dcn {
class Rng;
}

namespace dcn::detect {

class FixedInputCnn : public Module {
 public:
  /// `config` supplies the trunk and FC widths; spp_levels are ignored.
  /// `input_size` fixes the expected square input resolution.
  FixedInputCnn(SppNetConfig config, std::int64_t input_size, Rng& rng);

  /// Inputs whose spatial size differs from input_size are warped per
  /// sample before the trunk (warping is not differentiated; training data
  /// should already be at input_size).
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "FixedInputCnn"; }
  void set_training(bool training) override;

  std::int64_t input_size() const { return input_size_; }

 private:
  SppNetConfig config_;
  std::int64_t input_size_;
  Sequential net_;  // trunk + Flatten + FC head
};

}  // namespace dcn::detect
