// Detection metrics: IoU, precision/recall sweep, and the paper's average
// precision (Equation 1), plus accuracy / mean-IoU used for the baseline
// comparison of §8.1.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dcn::detect {

/// One scored detection matched against ground truth.
struct ScoredDetection {
  float confidence = 0.0f;
  /// Whether the image actually contains an object.
  bool has_object = false;
  /// IoU between the predicted and ground-truth box (0 when !has_object).
  float iou = 0.0f;
};

/// Intersection-over-union of two (cx, cy, w, h) boxes.
float box_iou(const std::array<float, 4>& a, const std::array<float, 4>& b);

/// One point of the precision-recall curve.
struct PrPoint {
  float threshold = 0.0f;
  float precision = 0.0f;
  float recall = 0.0f;
};

/// Sweep confidence thresholds (one per unique detection score, descending)
/// counting a detection as true positive iff has_object && iou >= iou_threshold.
std::vector<PrPoint> precision_recall_curve(
    std::vector<ScoredDetection> detections, float iou_threshold = 0.5f);

/// Equation 1: AP = sum_i (recall_i - recall_{i-1}) * precision_i over the
/// descending-confidence sweep, with the standard VOC corrections: tied
/// confidences collapse to a single operating point (AP is invariant to the
/// sort order of equal-score detections) and precision is replaced by its
/// monotone envelope max_{r' >= r} p(r') before integrating.
double average_precision(const std::vector<ScoredDetection>& detections,
                         float iou_threshold = 0.5f);

/// Classification accuracy at a fixed confidence threshold (a detection on a
/// negative image counts as a false positive; localization is ignored).
double accuracy_at_threshold(const std::vector<ScoredDetection>& detections,
                             float threshold);

/// Mean IoU over detections above `threshold` on images with objects
/// (the §8.1 comparison metric; 0 when there are none).
double mean_iou_of_detections(const std::vector<ScoredDetection>& detections,
                              float threshold);

}  // namespace dcn::detect
