#include "detect/report.hpp"

#include <sstream>

#include "core/csv.hpp"
#include "core/table.hpp"

namespace dcn::detect {

double ConfusionSummary::precision() const {
  const std::int64_t denom = true_positives + false_positives;
  return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
}

double ConfusionSummary::recall() const {
  const std::int64_t denom = true_positives + false_negatives;
  return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
}

double ConfusionSummary::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

ConfusionSummary confusion_at_threshold(
    const std::vector<ScoredDetection>& detections, float threshold,
    float iou_threshold) {
  ConfusionSummary summary;
  for (const ScoredDetection& d : detections) {
    const bool fired = d.confidence >= threshold;
    if (d.has_object) {
      if (fired && d.iou >= iou_threshold) {
        ++summary.true_positives;
      } else {
        ++summary.false_negatives;
      }
    } else {
      if (fired) {
        ++summary.false_positives;
      } else {
        ++summary.true_negatives;
      }
    }
  }
  return summary;
}

std::string pr_curve_csv(const std::vector<ScoredDetection>& detections,
                         float iou_threshold) {
  CsvWriter csv({"threshold", "precision", "recall"});
  for (const PrPoint& point :
       precision_recall_curve(detections, iou_threshold)) {
    csv.add_row({format_double(point.threshold, 6),
                 format_double(point.precision, 6),
                 format_double(point.recall, 6)});
  }
  return csv.to_string();
}

std::string evaluation_report(const std::vector<ScoredDetection>& detections,
                              float threshold, float iou_threshold) {
  const ConfusionSummary c =
      confusion_at_threshold(detections, threshold, iou_threshold);
  std::ostringstream os;
  os << "evaluation over " << detections.size() << " images (threshold "
     << format_double(threshold, 2) << ", IoU >= "
     << format_double(iou_threshold, 2) << ")\n";
  TextTable table({"", "pred +", "pred -"});
  table.add_row({"gt +", std::to_string(c.true_positives),
                 std::to_string(c.false_negatives)});
  table.add_row({"gt -", std::to_string(c.false_positives),
                 std::to_string(c.true_negatives)});
  os << table.to_string();
  os << "AP " << format_percent(average_precision(detections, iou_threshold))
     << ", precision " << format_percent(c.precision()) << ", recall "
     << format_percent(c.recall()) << ", F1 " << format_percent(c.f1())
     << '\n';
  return os.str();
}

}  // namespace dcn::detect
