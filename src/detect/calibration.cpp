#include "detect/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::detect {
namespace {

// Percentile sample capacity. Must stay even so halving the buffer keeps
// the decimation pattern exact.
constexpr std::size_t kMaxSamples = 1u << 15;

}  // namespace

void RangeObserver::observe(const float* values, std::int64_t count) {
  DCN_CHECK(count >= 0) << "observe count " << count;
  for (std::int64_t i = 0; i < count; ++i) {
    const float v = values[i];
    if (count_ == 0 && i == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    if (count_ + i == next_keep_) {
      if (samples_.size() == kMaxSamples) {
        // Compact: drop every other retained value, double the stride. The
        // survivors are exactly the values a stride of 2*stride_ would have
        // kept from the start, so the scheme stays order-deterministic.
        for (std::size_t s = 0; s < kMaxSamples / 2; ++s) {
          samples_[s] = samples_[2 * s];
        }
        samples_.resize(kMaxSamples / 2);
        stride_ *= 2;
        // Re-align: keep only elements on the doubled stride.
        if ((count_ + i) % stride_ != 0) {
          next_keep_ = count_ + i + stride_ - (count_ + i) % stride_;
        }
      }
      if (count_ + i == next_keep_) {
        samples_.push_back(v);
        next_keep_ += stride_;
      }
    }
  }
  count_ += count;
}

float RangeObserver::min_value() const {
  DCN_CHECK(count_ > 0) << "empty RangeObserver";
  return min_;
}

float RangeObserver::max_value() const {
  DCN_CHECK(count_ > 0) << "empty RangeObserver";
  return max_;
}

std::pair<float, float> RangeObserver::range(
    const CalibrationOptions& options) const {
  DCN_CHECK(count_ > 0) << "empty RangeObserver";
  if (options.method == CalibrationMethod::kMinMax) return {min_, max_};
  DCN_CHECK(options.percentile > 0.0 && options.percentile <= 1.0)
      << "percentile " << options.percentile;
  std::vector<float> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<std::int64_t>(sorted.size());
  const double tail = (1.0 - options.percentile) / 2.0;
  const auto pick = [&](double q) {
    const auto idx = static_cast<std::int64_t>(
        std::llround(q * static_cast<double>(n - 1)));
    return sorted[static_cast<std::size_t>(
        std::clamp<std::int64_t>(idx, 0, n - 1))];
  };
  // The clipped range can only shrink the observed one.
  return {std::max(min_, pick(tail)), std::min(max_, pick(1.0 - tail))};
}

QuantParams RangeObserver::quant_params(
    const CalibrationOptions& options) const {
  const auto [lo, hi] = range(options);
  return choose_quant_params(lo, hi);
}

std::vector<std::int64_t> calibration_split(std::int64_t dataset_size,
                                            std::int64_t max_images,
                                            std::uint64_t seed) {
  DCN_CHECK(dataset_size >= 0) << "dataset_size " << dataset_size;
  DCN_CHECK(max_images >= 0) << "max_images " << max_images;
  std::int64_t take = dataset_size;
  if (max_images > 0) take = std::min(take, max_images);
  std::vector<std::int64_t> indices;
  indices.reserve(static_cast<std::size_t>(take));
  if (take == dataset_size) {
    for (std::int64_t i = 0; i < dataset_size; ++i) indices.push_back(i);
    return indices;
  }
  Rng rng(seed);
  const std::vector<std::size_t> perm =
      rng.permutation(static_cast<std::size_t>(dataset_size));
  for (std::int64_t i = 0; i < take; ++i) {
    indices.push_back(static_cast<std::int64_t>(perm[static_cast<std::size_t>(i)]));
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

}  // namespace dcn::detect
