#include "detect/sppnet.hpp"

#include <cmath>

#include "core/error.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/pool.hpp"

namespace dcn::detect {

SppNet::SppNet(SppNetConfig config, Rng& rng)
    : config_(std::move(config)), spp_(config_.spp_levels) {
  DCN_CHECK(!config_.trunk.empty()) << "SPP-Net needs a feature trunk";
  std::int64_t channels = config_.in_channels;
  for (const TrunkStage& stage : config_.trunk) {
    if (stage.kind == TrunkStage::Kind::kConv) {
      trunk_.emplace<Conv2d>(channels, stage.conv.filters, stage.conv.kernel,
                             stage.conv.stride, rng);
      trunk_.emplace<ReLU>();
      channels = stage.conv.filters;
    } else {
      trunk_.emplace<MaxPool2d>(stage.pool.kernel, stage.pool.stride);
    }
  }
  std::int64_t features = config_.spp_features();
  for (std::int64_t fc : config_.fc_sizes) {
    head_.emplace<Linear>(features, fc, rng);
    head_.emplace<ReLU>();
    features = fc;
  }
  Linear& final = head_.emplace<Linear>(features, config_.head_outputs, rng);
  init_detection_head(final);
}

void init_detection_head(Linear& final_layer) {
  // Detection-standard head init: damp the final weights so early
  // predictions stay near the prior, and bias the box regressors at the
  // dataset's box prior (centered object, ~0.2 of the patch side). The
  // objectness bias starts mildly negative (prior probability ~0.27).
  Tensor& w = final_layer.weight();
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] *= 0.01f;
  Tensor& b = final_layer.bias();
  DCN_CHECK(b.numel() == 5) << "detection head must have 5 outputs";
  b[0] = -1.0f;
  b[1] = 0.5f;
  b[2] = 0.5f;
  b[3] = 0.2f;
  b[4] = 0.2f;
}

Tensor SppNet::forward(const Tensor& input) {
  const Tensor features = trunk_.forward(input);
  const Tensor pooled = spp_.forward(features);
  return head_.forward(pooled);
}

Tensor SppNet::backward(const Tensor& grad_output) {
  const Tensor g_pooled = head_.backward(grad_output);
  const Tensor g_features = spp_.backward(g_pooled);
  return trunk_.backward(g_features);
}

std::vector<ParamRef> SppNet::parameters() {
  std::vector<ParamRef> params;
  for (ParamRef p : trunk_.parameters()) {
    p.name = "trunk." + p.name;
    params.push_back(p);
  }
  for (ParamRef p : head_.parameters()) {
    p.name = "head." + p.name;
    params.push_back(p);
  }
  return params;
}

void SppNet::set_training(bool training) {
  Module::set_training(training);
  trunk_.set_training(training);
  head_.set_training(training);
}

std::vector<Prediction> SppNet::decode(const Tensor& head_out) {
  DCN_CHECK(head_out.rank() == 2 && head_out.dim(1) == 5)
      << "decode expects [N, 5]";
  const std::int64_t n = head_out.dim(0);
  std::vector<Prediction> preds(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float logit = head_out[i * 5];
    Prediction& p = preds[static_cast<std::size_t>(i)];
    p.confidence = 1.0f / (1.0f + std::exp(-logit));
    for (std::int64_t c = 0; c < 4; ++c) {
      p.box[static_cast<std::size_t>(c)] = head_out[i * 5 + 1 + c];
    }
  }
  return preds;
}

std::vector<Prediction> SppNet::predict(const Tensor& input) {
  const bool was_training = is_training();
  set_training(false);
  const Tensor out = forward(input);
  set_training(was_training);
  return decode(out);
}

}  // namespace dcn::detect
