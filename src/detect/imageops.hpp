// Image geometry ops for CHW tensors (resize / crop), used by the
// fixed-input baseline's crop-or-warp preprocessing (§2.2's motivation) and
// by the region-proposal baseline's crop scoring.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace dcn::detect {

/// Bilinear resize of a [C, H, W] tensor to [C, out_h, out_w] ("warp").
Tensor bilinear_resize(const Tensor& image, std::int64_t out_h,
                       std::int64_t out_w);

/// Center crop of a [C, H, W] tensor to [C, size, size]; edge-clamped when
/// the source is smaller than the crop.
Tensor center_crop(const Tensor& image, std::int64_t size);

/// Crop the (cx, cy, w, h)-normalized box region from a [C, H, W] tensor
/// (at least 2x2 pixels).
Tensor crop_box(const Tensor& image, const float box[4]);

}  // namespace dcn::detect
