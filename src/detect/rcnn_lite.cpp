#include "detect/rcnn_lite.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "detect/imageops.hpp"

namespace dcn::detect {
namespace {

// Per-pixel crossing-ness: gray road surface (low band spread, mid-high
// brightness, low NIR) within a small radius of dark open water (very low
// NIR). Both signatures are spectral only — class-agnostic like an RPN's
// objectness.
Tensor response_map(const Tensor& image) {
  const std::int64_t h = image.dim(1);
  const std::int64_t w = image.dim(2);
  const float* red = image.data();
  const float* green = image.data() + h * w;
  const float* blue = image.data() + 2 * h * w;
  const float* nir = image.data() + 3 * h * w;

  Tensor road(Shape{h, w});
  Tensor water(Shape{h, w});
  for (std::int64_t i = 0; i < h * w; ++i) {
    const float brightness = (red[i] + green[i] + blue[i]) / 3.0f;
    const float spread =
        std::max({red[i], green[i], blue[i]}) -
        std::min({red[i], green[i], blue[i]});
    const bool gray = spread < 0.09f && brightness > 0.40f && nir[i] < 0.40f;
    road[i] = gray ? 1.0f : 0.0f;
    water[i] = nir[i] < 0.15f ? 1.0f : 0.0f;
  }

  // Response = road presence with water within a 5-pixel disk.
  Tensor response(Shape{h, w});
  constexpr std::int64_t radius = 5;
  for (std::int64_t r = 0; r < h; ++r) {
    for (std::int64_t c = 0; c < w; ++c) {
      if (road[r * w + c] == 0.0f) continue;
      float near_water = 0.0f;
      for (std::int64_t dr = -radius; dr <= radius && near_water == 0.0f;
           ++dr) {
        for (std::int64_t dc = -radius; dc <= radius; ++dc) {
          const std::int64_t rr = r + dr;
          const std::int64_t cc = c + dc;
          if (rr < 0 || rr >= h || cc < 0 || cc >= w) continue;
          if (water[rr * w + cc] > 0.0f) {
            near_water = 1.0f;
            break;
          }
        }
      }
      response[r * w + c] = near_water;
    }
  }
  return response;
}

}  // namespace

std::vector<Proposal> propose_regions(const Tensor& image,
                                      const ProposalConfig& config) {
  DCN_CHECK(image.rank() == 3 && image.dim(0) == 4)
      << "propose_regions expects [4, H, W]";
  const std::int64_t h = image.dim(1);
  const std::int64_t w = image.dim(2);
  const Tensor response = response_map(image);

  // Integrate the response over the proposal window at a coarse stride and
  // keep local maxima (greedy NMS by center distance).
  const auto win = std::max<std::int64_t>(
      8, static_cast<std::int64_t>(config.window_fraction * std::min(h, w)));
  const std::int64_t stride = std::max<std::int64_t>(2, win / 4);

  struct Candidate {
    std::int64_t r, c;
    float score;
  };
  std::vector<Candidate> candidates;
  for (std::int64_t r = 0; r + win <= h; r += stride) {
    for (std::int64_t c = 0; c + win <= w; c += stride) {
      float score = 0.0f;
      for (std::int64_t dr = 0; dr < win; ++dr) {
        for (std::int64_t dc = 0; dc < win; ++dc) {
          score += response[(r + dr) * w + (c + dc)];
        }
      }
      if (score > 0.0f) candidates.push_back({r, c, score});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });

  const double nms =
      config.nms_radius * static_cast<double>(std::min(h, w));
  std::vector<Proposal> proposals;
  const float max_score =
      candidates.empty() ? 1.0f : candidates.front().score;
  for (const Candidate& cand : candidates) {
    if (static_cast<int>(proposals.size()) >= config.max_proposals) break;
    const double cy = (cand.r + win / 2.0) / h;
    const double cx = (cand.c + win / 2.0) / w;
    bool suppressed = false;
    for (const Proposal& kept : proposals) {
      const double dr = (kept.box[1] - cy) * h;
      const double dc = (kept.box[0] - cx) * w;
      if (std::sqrt(dr * dr + dc * dc) < nms) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) continue;
    Proposal p;
    p.box = {static_cast<float>(cx), static_cast<float>(cy),
             static_cast<float>(static_cast<double>(win) / w),
             static_cast<float>(static_cast<double>(win) / h)};
    p.objectness = cand.score / max_score;
    proposals.push_back(p);
  }
  return proposals;
}

Prediction RcnnLiteDetector::detect(const Tensor& image) {
  const auto proposals = propose_regions(image, config_);
  Prediction best;
  for (const Proposal& proposal : proposals) {
    // Widen the crop slightly so the scorer sees context; SPP accepts the
    // resulting variable crop size directly.
    std::array<float, 4> wide = proposal.box;
    wide[2] = std::min(1.0f, wide[2] * 1.5f);
    wide[3] = std::min(1.0f, wide[3] * 1.5f);
    const Tensor crop = crop_box(image, wide.data());
    Tensor batch(Shape{1, crop.dim(0), crop.dim(1), crop.dim(2)});
    std::copy(crop.data(), crop.data() + crop.numel(), batch.data());
    const auto preds = scorer_->predict(batch);
    const float confidence = preds[0].confidence * proposal.objectness;
    if (confidence > best.confidence) {
      best.confidence = confidence;
      best.box = proposal.box;
    }
  }
  return best;
}

}  // namespace dcn::detect
