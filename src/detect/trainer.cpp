#include "detect/trainer.hpp"

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/time.hpp"
#include "nn/loss.hpp"

namespace dcn::detect {

EvalResult evaluate_detector(Module& model,
                             const geo::DrainageDataset& dataset,
                             const std::vector<std::size_t>& indices,
                             std::int64_t batch_size) {
  DCN_CHECK(!indices.empty()) << "evaluation over empty index set";
  const bool was_training = model.is_training();
  model.set_training(false);

  EvalResult result;
  for (const auto& batch_idx :
       geo::DrainageDataset::batch_indices(indices, batch_size)) {
    const geo::Batch batch = dataset.make_batch(batch_idx);
    const Tensor out = model.forward(batch.images);
    const auto preds = SppNet::decode(out);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const auto& sample = dataset.sample(batch_idx[i]);
      ScoredDetection det;
      det.confidence = preds[i].confidence;
      det.has_object = sample.label > 0.0f;
      det.iou = det.has_object ? box_iou(preds[i].box, sample.box) : 0.0f;
      result.detections.push_back(det);
    }
  }
  model.set_training(was_training);

  result.average_precision = average_precision(result.detections);
  result.accuracy = accuracy_at_threshold(result.detections, 0.5f);
  result.mean_iou = mean_iou_of_detections(result.detections, 0.5f);
  return result;
}

TrainHistory train_detector(Module& model, const geo::DrainageDataset& dataset,
                            const geo::Split& split,
                            const TrainConfig& config) {
  DCN_CHECK(!split.train.empty() && !split.test.empty())
      << "train/test split is empty (train " << split.train.size() << ", test "
      << split.test.size() << ")";

  // Optionally pin the tensor engine's thread count for this run. The
  // previous effective value is restored on exit; weights do not depend on
  // the setting (the engine's decompositions are thread-count invariant).
  const int previous_threads = hardware_threads();
  if (config.jobs > 0) set_num_threads(config.jobs);

  Sgd optimizer(model.parameters(), config.sgd);
  Rng shuffle_rng(config.shuffle_seed);
  model.set_training(true);

  TrainHistory history;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Step LR decay at the configured milestones.
    for (double milestone : config.lr_decay_milestones) {
      if (epoch == static_cast<int>(milestone * config.epochs) && epoch > 0) {
        optimizer.config().learning_rate *= config.lr_decay_factor;
        if (config.verbose) {
          DCN_LOG_INFO << "epoch " << epoch << ": lr -> "
                       << optimizer.config().learning_rate;
        }
      }
    }
    // Reshuffle the training order each epoch.
    std::vector<std::size_t> order = split.train;
    const auto perm = shuffle_rng.permutation(order.size());
    std::vector<std::size_t> shuffled(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      shuffled[i] = order[perm[i]];
    }

    WallTimer epoch_timer;
    double loss_sum = 0.0;
    double grad_norm_sum = 0.0;
    std::int64_t steps = 0;
    for (const auto& batch_idx :
         geo::DrainageDataset::batch_indices(shuffled, config.batch_size)) {
      const geo::Batch batch = dataset.make_batch(batch_idx);
      optimizer.zero_grad();
      const Tensor out = model.forward(batch.images);
      const LossResult loss =
          detection_loss(out, batch.labels, batch.boxes,
                         config.box_loss_weight);
      (void)model.backward(loss.grad);
      grad_norm_sum += optimizer.grad_norm();
      optimizer.step();
      loss_sum += loss.value;
      ++steps;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = steps > 0 ? loss_sum / steps : 0.0;
    stats.grad_norm = steps > 0 ? grad_norm_sum / steps : 0.0;
    stats.seconds = epoch_timer.seconds();
    history.epochs.push_back(stats);
    if (config.verbose) {
      DCN_LOG_INFO << "epoch " << epoch << ": loss " << stats.mean_loss
                   << ", grad norm " << stats.grad_norm << ", "
                   << stats.seconds << " s";
    }
  }

  history.final_eval =
      evaluate_detector(model, dataset, split.test, config.batch_size);
  if (config.verbose) {
    DCN_LOG_INFO << "eval: AP " << history.final_eval.average_precision
                 << ", accuracy " << history.final_eval.accuracy
                 << ", mean IoU " << history.final_eval.mean_iou;
  }
  if (config.jobs > 0) set_num_threads(previous_threads);
  return history;
}

}  // namespace dcn::detect
