// Post-training INT8 quantization of a trained SPP-Net.
//
// QuantizedSppNet freezes a float SppNet into an int8 inference model:
// weights become symmetric per-output-channel int8 (exactly representable
// zero, no zero-point term on the weight side), activations become affine
// uint8 with per-tensor parameters calibrated by running a seeded
// calibration split through the float network (calibration.hpp). Conv and
// linear layers execute as qgemm with the dequantize+bias+ReLU epilogue
// fused into the int32->float store; max pools, SPP, and the layer
// boundaries stay float — pooling is order-preserving, so quantizing it
// would add error without saving meaningful work.
//
// The quantized forward pass inherits the tensor engine's determinism
// contract: outputs are bit-identical across thread counts and runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/calibration.hpp"
#include "detect/sppnet.hpp"
#include "nn/pool.hpp"
#include "tensor/quantize.hpp"

namespace dcn::detect {

/// A Module so the standard evaluation harness (evaluate_detector) scores
/// quantized and float models through one code path; backward throws — the
/// model is frozen, post-training.
class QuantizedSppNet : public Module {
 public:
  /// Calibrates on `calibration` (an NCHW float batch run through the float
  /// net layer by layer) and freezes `net`'s weights to int8. `net` is only
  /// used during construction; the quantized model owns everything after.
  QuantizedSppNet(SppNet& net, const Tensor& calibration,
                  const CalibrationOptions& options = {});

  /// [N,C,H,W] float in -> [N,5] float out (raw head outputs, same contract
  /// as SppNet::forward in eval mode).
  Tensor forward(const Tensor& input) override;

  /// Always throws (inference-only model).
  Tensor backward(const Tensor& grad_output) override;

  std::string name() const override { return "QuantizedSppNet"; }

  /// Forward + SppNet::decode.
  std::vector<Prediction> predict(const Tensor& input);

  const SppNetConfig& config() const { return config_; }

  /// Calibrated activation parameters feeding each quantized layer, in
  /// execution order (convs then FC stack) — exposed for tests.
  const std::vector<QuantParams>& activation_params() const {
    return activation_params_;
  }

 private:
  struct QConv {
    std::int64_t in_channels = 0;
    std::int64_t kernel = 0;
    std::int64_t stride = 1;
    std::int64_t padding = 0;
    QuantizedWeights weights;  // [out_c, in_c*k*k]
    std::vector<float> bias;
    QuantParams input_params;
    bool relu = false;  // fused trailing ReLU
  };
  struct QLinear {
    QuantizedWeights weights;  // [out, in]
    std::vector<float> bias;
    QuantParams input_params;
    bool relu = false;
  };
  struct TrunkOp {
    bool is_conv = false;
    QConv conv;                          // when is_conv
    std::unique_ptr<MaxPool2d> pool;     // otherwise
  };

  Tensor conv_forward(const QConv& conv, const Tensor& input);
  Tensor linear_forward(const QLinear& linear, const Tensor& input);

  SppNetConfig config_;
  std::vector<TrunkOp> trunk_;
  SpatialPyramidPool spp_;
  std::vector<QLinear> head_;
  std::vector<QuantParams> activation_params_;
};

}  // namespace dcn::detect
