#include "detect/quantized_sppnet.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "tensor/im2col.hpp"
#include "tensor/qgemm.hpp"
#include "tensor/workspace.hpp"

namespace dcn::detect {
namespace {

// Contiguous near-even partition of [0, batch) into `chunks` pieces (same
// scheme as Conv2d's sample partition).
std::pair<std::int64_t, std::int64_t> chunk_range(std::int64_t batch,
                                                  std::int64_t chunks,
                                                  std::int64_t c) {
  const std::int64_t base = batch / chunks;
  const std::int64_t rem = batch % chunks;
  const std::int64_t lo = c * base + std::min(c, rem);
  return {lo, lo + base + (c < rem ? 1 : 0)};
}

}  // namespace

QuantizedSppNet::QuantizedSppNet(SppNet& net, const Tensor& calibration,
                                 const CalibrationOptions& options)
    : config_(net.config()), spp_(config_.spp_levels) {
  DCN_CHECK(calibration.rank() == 4 && calibration.dim(0) > 0)
      << "calibration batch must be non-empty NCHW, got "
      << calibration.shape().to_string();
  const bool was_training = net.is_training();
  net.set_training(false);

  // Walk the float net layer by layer: observe the activations feeding each
  // conv/linear, freeze its weights, and note a trailing ReLU so it fuses
  // into the qgemm epilogue (the float walk still executes the ReLU module
  // itself — only the quantized replay skips it).
  Tensor x = calibration;
  Sequential& trunk = net.trunk();
  for (std::size_t i = 0; i < trunk.size(); ++i) {
    Module& layer = trunk.layer(i);
    if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      RangeObserver observer;
      observer.observe(x.data(), x.numel());
      TrunkOp op;
      op.is_conv = true;
      QConv& q = op.conv;
      q.in_channels = conv->in_channels();
      q.kernel = conv->kernel_size();
      q.stride = conv->stride();
      q.padding = conv->padding();
      const std::int64_t k = q.in_channels * q.kernel * q.kernel;
      q.weights = quantize_weights_per_channel(conv->weight().data(),
                                               conv->out_channels(), k);
      q.bias.assign(conv->bias().data(),
                    conv->bias().data() + conv->out_channels());
      q.input_params = observer.quant_params(options);
      q.relu = i + 1 < trunk.size() &&
               dynamic_cast<ReLU*>(&trunk.layer(i + 1)) != nullptr;
      activation_params_.push_back(q.input_params);
      trunk_.push_back(std::move(op));
    } else if (auto* pool = dynamic_cast<MaxPool2d*>(&layer)) {
      TrunkOp op;
      op.pool =
          std::make_unique<MaxPool2d>(pool->kernel_size(), pool->stride());
      trunk_.push_back(std::move(op));
    } else {
      DCN_CHECK(dynamic_cast<ReLU*>(&layer) != nullptr)
          << "unsupported trunk layer " << layer.name();
    }
    x = layer.forward(x);
  }
  x = spp_.forward(x);
  Sequential& head = net.head();
  for (std::size_t i = 0; i < head.size(); ++i) {
    Module& layer = head.layer(i);
    if (auto* linear = dynamic_cast<Linear*>(&layer)) {
      RangeObserver observer;
      observer.observe(x.data(), x.numel());
      QLinear q;
      q.weights = quantize_weights_per_channel(
          linear->weight().data(), linear->out_features(),
          linear->in_features());
      q.bias.assign(linear->bias().data(),
                    linear->bias().data() + linear->out_features());
      q.input_params = observer.quant_params(options);
      q.relu = i + 1 < head.size() &&
               dynamic_cast<ReLU*>(&head.layer(i + 1)) != nullptr;
      activation_params_.push_back(q.input_params);
      head_.push_back(std::move(q));
    } else {
      DCN_CHECK(dynamic_cast<ReLU*>(&layer) != nullptr)
          << "unsupported head layer " << layer.name();
    }
    x = layer.forward(x);
  }
  DCN_CHECK(!head_.empty()) << "quantized net has no head";
  net.set_training(was_training);
}

Tensor QuantizedSppNet::conv_forward(const QConv& conv, const Tensor& input) {
  DCN_CHECK(input.rank() == 4) << "quantized conv expects NCHW, got "
                               << input.shape().to_string();
  DCN_CHECK(input.dim(1) == conv.in_channels)
      << "quantized conv channels " << input.dim(1)
      << " != " << conv.in_channels;
  const std::int64_t batch = input.dim(0);
  ConvGeometry g;
  g.channels = conv.in_channels;
  g.height = input.dim(2);
  g.width = input.dim(3);
  g.kernel_h = g.kernel_w = conv.kernel;
  g.stride_h = g.stride_w = conv.stride;
  g.pad_h = g.pad_w = conv.padding;
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  DCN_CHECK(oh > 0 && ow > 0) << "quantized conv output would be empty for "
                              << input.shape().to_string();
  const std::int64_t out_channels = conv.weights.rows;
  const std::int64_t k = conv.weights.cols;
  const std::int64_t ohw = oh * ow;

  Tensor output(Shape{batch, out_channels, oh, ow});
  const std::int64_t in_stride = conv.in_channels * g.height * g.width;
  const std::int64_t out_stride = out_channels * ohw;
  QuantEpilogue epilogue;
  epilogue.row_bias = conv.bias.data();
  epilogue.relu = conv.relu;
  const auto run_sample = [&](std::int64_t n) {
    Workspace& ws = Workspace::tls();
    Workspace::Scope scope(ws);
    // im2col in float, then quantize the columns: padding taps lower to
    // exact 0.0f, which quantizes to the (integer) zero point exactly.
    float* col = ws.floats(static_cast<std::size_t>(k * ohw));
    im2col(input.data() + n * in_stride, g, col);
    std::uint8_t* qcol = ws.bytes(static_cast<std::size_t>(k * ohw));
    quantize_u8(col, k * ohw, conv.input_params, qcol);
    qgemm(conv.weights, qcol, ohw, ohw, conv.input_params,
          output.data() + n * out_stride, ohw, epilogue);
  };
  // Samples are independent and each is computed identically wherever it
  // runs, so the sample partition cannot affect the (bit-exact) output.
  const int tasks =
      static_cast<int>(std::min<std::int64_t>(compute_threads(), batch));
  if (tasks <= 1) {
    for (std::int64_t n = 0; n < batch; ++n) run_sample(n);
  } else {
    run_compute_tasks(tasks, [&](int t) {
      const auto [lo, hi] = chunk_range(batch, tasks, t);
      for (std::int64_t n = lo; n < hi; ++n) run_sample(n);
    });
  }
  return output;
}

Tensor QuantizedSppNet::linear_forward(const QLinear& linear,
                                       const Tensor& input) {
  DCN_CHECK(input.rank() == 2) << "quantized linear expects [N, F], got "
                               << input.shape().to_string();
  const std::int64_t n = input.dim(0);
  const std::int64_t features = input.dim(1);
  DCN_CHECK(features == linear.weights.cols)
      << "quantized linear features " << features
      << " != " << linear.weights.cols;
  const std::int64_t out = linear.weights.rows;

  Tensor output(Shape{n, out});
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  // y^T[out, n] = W[out, f] x^T[f, n]: quantize the input, transpose it into
  // the activations-on-the-right orientation, and transpose the result back.
  // The bias is per output feature — a per-row bias of the transposed
  // product, so it still rides the fused epilogue.
  std::uint8_t* qx = ws.bytes(static_cast<std::size_t>(n * features));
  quantize_u8(input.data(), n * features, linear.input_params, qx);
  std::uint8_t* qxt = ws.bytes(static_cast<std::size_t>(features * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < features; ++j) {
      qxt[j * n + i] = qx[i * features + j];
    }
  }
  float* yt = ws.floats(static_cast<std::size_t>(out * n));
  QuantEpilogue epilogue;
  epilogue.row_bias = linear.bias.data();
  epilogue.relu = linear.relu;
  qgemm(linear.weights, qxt, n, n, linear.input_params, yt, n, epilogue);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t o = 0; o < out; ++o) {
      output.data()[i * out + o] = yt[o * n + i];
    }
  }
  return output;
}

Tensor QuantizedSppNet::forward(const Tensor& input) {
  Tensor x = input;
  for (TrunkOp& op : trunk_) {
    x = op.is_conv ? conv_forward(op.conv, x) : op.pool->forward(x);
  }
  x = spp_.forward(x);
  for (QLinear& q : head_) x = linear_forward(q, x);
  return x;
}

Tensor QuantizedSppNet::backward(const Tensor&) {
  throw Error("QuantizedSppNet is inference-only; train the float model and "
              "re-quantize instead");
}

std::vector<Prediction> QuantizedSppNet::predict(const Tensor& input) {
  return SppNet::decode(forward(input));
}

}  // namespace dcn::detect
