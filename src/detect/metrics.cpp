#include "detect/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dcn::detect {

float box_iou(const std::array<float, 4>& a, const std::array<float, 4>& b) {
  const float ax0 = a[0] - a[2] / 2, ax1 = a[0] + a[2] / 2;
  const float ay0 = a[1] - a[3] / 2, ay1 = a[1] + a[3] / 2;
  const float bx0 = b[0] - b[2] / 2, bx1 = b[0] + b[2] / 2;
  const float by0 = b[1] - b[3] / 2, by1 = b[1] + b[3] / 2;
  const float ix = std::max(0.0f, std::min(ax1, bx1) - std::max(ax0, bx0));
  const float iy = std::max(0.0f, std::min(ay1, by1) - std::max(ay0, by0));
  const float inter = ix * iy;
  const float area_a = std::max(0.0f, ax1 - ax0) * std::max(0.0f, ay1 - ay0);
  const float area_b = std::max(0.0f, bx1 - bx0) * std::max(0.0f, by1 - by0);
  const float uni = area_a + area_b - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

std::vector<PrPoint> precision_recall_curve(
    std::vector<ScoredDetection> detections, float iou_threshold) {
  std::sort(detections.begin(), detections.end(),
            [](const ScoredDetection& a, const ScoredDetection& b) {
              return a.confidence > b.confidence;
            });
  std::int64_t total_positives = 0;
  for (const auto& d : detections) total_positives += d.has_object ? 1 : 0;

  std::vector<PrPoint> curve;
  std::int64_t tp = 0;
  std::int64_t fp = 0;
  for (const auto& d : detections) {
    const bool is_tp = d.has_object && d.iou >= iou_threshold;
    if (is_tp) {
      ++tp;
    } else {
      ++fp;
    }
    PrPoint point;
    point.threshold = d.confidence;
    point.precision = static_cast<float>(tp) / static_cast<float>(tp + fp);
    point.recall = total_positives > 0
                       ? static_cast<float>(tp) /
                             static_cast<float>(total_positives)
                       : 0.0f;
    curve.push_back(point);
  }
  return curve;
}

double average_precision(const std::vector<ScoredDetection>& detections,
                         float iou_threshold) {
  const auto curve = precision_recall_curve(detections, iou_threshold);

  // Detections sharing one confidence cannot be thresholded apart: only the
  // last cumulative point of each equal-confidence run is an operating
  // point. Keeping the interior points would make AP depend on the sort
  // order of tied detections.
  std::vector<PrPoint> points;
  points.reserve(curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (i + 1 < curve.size() &&
        curve[i + 1].threshold == curve[i].threshold) {
      continue;
    }
    points.push_back(curve[i]);
  }

  // VOC-style monotone precision envelope: each point's precision becomes
  // the maximum at any recall >= its own, removing the sawtooth dips that
  // under-count the raw left-Riemann sum.
  for (std::size_t i = points.size(); i-- > 1;) {
    points[i - 1].precision =
        std::max(points[i - 1].precision, points[i].precision);
  }

  double ap = 0.0;
  double prev_recall = 0.0;
  for (const PrPoint& p : points) {
    ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return ap;
}

double accuracy_at_threshold(const std::vector<ScoredDetection>& detections,
                             float threshold) {
  DCN_CHECK(!detections.empty()) << "accuracy over empty detections";
  std::int64_t correct = 0;
  for (const auto& d : detections) {
    const bool predicted_object = d.confidence >= threshold;
    if (predicted_object == d.has_object) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(detections.size());
}

double mean_iou_of_detections(const std::vector<ScoredDetection>& detections,
                              float threshold) {
  double total = 0.0;
  std::int64_t count = 0;
  for (const auto& d : detections) {
    if (d.has_object && d.confidence >= threshold) {
      total += d.iou;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace dcn::detect
