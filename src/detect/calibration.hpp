// Post-training quantization calibration.
//
// A RangeObserver watches the float activations feeding each quantized
// operator while a calibration split runs through the trained network, and
// turns the observed distribution into the operator's activation
// QuantParams. Two range rules are supported: plain min/max (exact, but a
// single outlier stretches the scale and costs resolution everywhere else)
// and a two-sided percentile clip that keeps a central probability mass —
// the standard trade of saturating rare outliers for finer steps on the
// bulk of the distribution.
//
// Everything here is deterministic: the observer subsamples by a fixed
// decimation scheme (never by random sampling), and the calibration split
// is drawn from a seeded Rng, so a seed reproduces the whole quantized
// model bit-for-bit.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/quantize.hpp"

namespace dcn::detect {

enum class CalibrationMethod {
  kMinMax,      // full observed range
  kPercentile,  // two-sided clip keeping `percentile` central mass
};

struct CalibrationOptions {
  CalibrationMethod method = CalibrationMethod::kMinMax;
  /// Central probability mass kept by kPercentile, in (0, 1]. 0.999 clips
  /// the most extreme 0.05% at each tail.
  double percentile = 0.999;
  /// Images drawn from the calibration dataset (0 = use all of it).
  std::int64_t max_images = 0;
  /// Seed for the calibration-split draw.
  std::uint64_t seed = 0xCA11Bull;
};

/// Streams activation values and summarizes their range. Percentiles are
/// estimated over a bounded, deterministically decimated sample: while the
/// buffer is below capacity every value is kept; when it fills, every other
/// retained value is dropped and the keep-stride doubles. The estimate is a
/// function of the observation sequence only — no randomness, no
/// thread-count dependence.
class RangeObserver {
 public:
  void observe(const float* values, std::int64_t count);

  bool empty() const { return count_ == 0; }
  std::int64_t count() const { return count_; }
  float min_value() const;
  float max_value() const;

  /// [lo, hi] under the chosen method (kMinMax ignores the percentile).
  std::pair<float, float> range(const CalibrationOptions& options) const;

  /// Affine u8 parameters covering range() (widened through 0, see
  /// choose_quant_params).
  QuantParams quant_params(const CalibrationOptions& options) const;

 private:
  float min_ = 0.0f;
  float max_ = 0.0f;
  std::int64_t count_ = 0;
  std::int64_t stride_ = 1;
  std::int64_t next_keep_ = 0;  // global element index of the next sample
  std::vector<float> samples_;
};

/// Seeded random subset of [0, dataset_size) used for calibration, sorted
/// ascending. max_images = 0 (or >= dataset_size) selects everything.
std::vector<std::int64_t> calibration_split(std::int64_t dataset_size,
                                            std::int64_t max_images,
                                            std::uint64_t seed);

}  // namespace dcn::detect
