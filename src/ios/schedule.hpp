// Execution schedules (IOS terminology, Ding et al. MLSys'21).
//
// A Schedule is a sequence of Stages; a Stage is a set of Groups that run
// concurrently on separate streams; a Group is a chain of operators that
// run back-to-back on one stream. Stages synchronize before the next stage
// starts. The sequential baseline (one operator per stage) models eager
// framework execution; IOS emits the optimized partition.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dcn::ios {

struct Group {
  std::vector<graph::OpId> ops;  // executed in order on one stream
};

struct Stage {
  std::vector<Group> groups;  // executed concurrently
};

struct Schedule {
  std::vector<Stage> stages;

  std::size_t num_stages() const { return stages.size(); }
  std::size_t num_kernels() const;
  std::size_t max_concurrency() const;  // widest stage

  /// Human-readable dump using op names from `graph`.
  std::string to_string(const graph::Graph& graph) const;
};

/// Throws dcn::Error unless the schedule is valid for `graph`: every device
/// operator appears exactly once, and every operator's producers appear in
/// an earlier stage or earlier in the same group.
void validate_schedule(const graph::Graph& graph, const Schedule& schedule);

/// The eager baseline: every device operator is its own single-group stage,
/// in topological (id) order.
Schedule sequential_schedule(const graph::Graph& graph);

}  // namespace dcn::ios
