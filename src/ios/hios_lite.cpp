#include "ios/hios_lite.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "ios/executor.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::ios {

double data_parallel_latency(const graph::Graph& graph,
                             const Schedule& schedule,
                             const simgpu::DeviceSpec& spec,
                             std::int64_t batch,
                             const MultiGpuConfig& config) {
  DCN_CHECK(config.num_gpus >= 1) << "num_gpus";
  DCN_CHECK(batch >= 1) << "batch";
  const std::int64_t shard =
      (batch + config.num_gpus - 1) / config.num_gpus;
  // Every replica runs the same shard-sized workload; the simulator is
  // deterministic, so one replica's latency is the per-replica time.
  simgpu::Device device(spec);
  const double replica = measure_latency(graph, schedule, device, shard);

  // Input scatter and output gather across the interconnect. Shards beyond
  // replica 0 must be shipped to their device (the host copy is already in
  // the replica latency; peer traffic adds the interconnect hop).
  double output_bytes = 0.0;
  double input_bytes = 0.0;
  for (const graph::OpNode& node : graph.nodes()) {
    if (node.kind == graph::OpKind::kInput) {
      input_bytes += 4.0 * static_cast<double>(node.output.numel());
    }
    if (node.kind == graph::OpKind::kOutput) {
      output_bytes += 4.0 * static_cast<double>(node.output.numel());
    }
  }
  const double remote_shards = static_cast<double>(config.num_gpus - 1);
  const double scatter =
      remote_shards > 0
          ? config.transfer_latency +
                remote_shards * static_cast<double>(shard) * input_bytes /
                    config.interconnect_bandwidth
          : 0.0;
  const double gather =
      remote_shards > 0
          ? config.transfer_latency +
                remote_shards * static_cast<double>(shard) * output_bytes /
                    config.interconnect_bandwidth
          : 0.0;
  return scatter + replica + gather;
}

double branch_parallel_latency(const graph::Graph& graph,
                               const Schedule& schedule,
                               const simgpu::DeviceSpec& spec,
                               std::int64_t batch,
                               const MultiGpuConfig& config) {
  DCN_CHECK(config.num_gpus >= 1) << "num_gpus";
  validate_schedule(graph, schedule);
  const auto kernels = simgpu::make_kernel_table(graph);

  double total = 0.0;
  for (const Stage& stage : schedule.stages) {
    if (stage.groups.size() <= 1 || config.num_gpus == 1) {
      // Whole stage on GPU 0.
      std::vector<std::vector<simgpu::KernelDesc>> groups;
      for (const Group& group : stage.groups) {
        std::vector<simgpu::KernelDesc> ks;
        for (graph::OpId id : group.ops) {
          ks.push_back(kernels[static_cast<std::size_t>(id)]);
        }
        groups.push_back(std::move(ks));
      }
      total += simgpu::stage_seconds(spec, groups, batch) +
               spec.inter_stage_gap;
      continue;
    }

    // Round-robin group placement; per-GPU groups execute concurrently on
    // their own device, so the per-device stage model applies per GPU and
    // the stage completes at the slowest GPU.
    std::vector<std::vector<std::vector<simgpu::KernelDesc>>> per_gpu(
        static_cast<std::size_t>(config.num_gpus));
    std::vector<double> transfer(static_cast<std::size_t>(config.num_gpus),
                                 0.0);
    for (std::size_t g = 0; g < stage.groups.size(); ++g) {
      const int gpu = static_cast<int>(g % config.num_gpus);
      std::vector<simgpu::KernelDesc> ks;
      for (graph::OpId id : stage.groups[g].ops) {
        ks.push_back(kernels[static_cast<std::size_t>(id)]);
      }
      if (gpu != 0 && !stage.groups[g].ops.empty()) {
        // Ship the group's input activation over and its output back.
        const graph::OpId head = stage.groups[g].ops.front();
        const graph::OpId tail = stage.groups[g].ops.back();
        const double in_bytes =
            4.0 * static_cast<double>(graph.input_desc(head).numel()) *
            static_cast<double>(batch);
        const double out_bytes =
            4.0 * static_cast<double>(graph.node(tail).output.numel()) *
            static_cast<double>(batch);
        transfer[static_cast<std::size_t>(gpu)] +=
            2.0 * config.transfer_latency +
            (in_bytes + out_bytes) / config.interconnect_bandwidth;
      }
      per_gpu[static_cast<std::size_t>(gpu)].push_back(std::move(ks));
    }
    double stage_time = 0.0;
    for (std::size_t gpu = 0; gpu < per_gpu.size(); ++gpu) {
      if (per_gpu[gpu].empty()) continue;
      stage_time =
          std::max(stage_time, simgpu::stage_seconds(spec, per_gpu[gpu],
                                                     batch) +
                                   transfer[gpu]);
    }
    total += stage_time + spec.inter_stage_gap;
  }
  return total;
}

}  // namespace dcn::ios
