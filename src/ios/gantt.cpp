#include "ios/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/error.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::ios {

std::string render_gantt(const graph::Graph& graph,
                         const simgpu::DeviceSpec& spec,
                         const Schedule& schedule,
                         const GanttOptions& options) {
  DCN_CHECK(options.width >= 20) << "gantt width too small";
  validate_schedule(graph, schedule);
  const auto kernels = simgpu::make_kernel_table(graph);
  const std::size_t rows = std::max<std::size_t>(1, schedule.max_concurrency());

  // Modeled duration per stage and per kernel (solo costs; the group view).
  struct KernelCell {
    std::string name;
    double duration = 0.0;
  };
  struct StageLayout {
    double duration = 0.0;  // stage wall time (max group)
    std::vector<std::vector<KernelCell>> rows;
  };
  std::vector<StageLayout> stages;
  double total = 0.0;
  for (const Stage& stage : schedule.stages) {
    StageLayout layout;
    layout.rows.resize(rows);
    for (std::size_t g = 0; g < stage.groups.size(); ++g) {
      double group_time = 0.0;
      for (graph::OpId id : stage.groups[g].ops) {
        const auto cost = simgpu::kernel_cost(
            spec, kernels[static_cast<std::size_t>(id)], options.batch);
        layout.rows[g].push_back(
            {graph.node(id).name, cost.solo_seconds});
        group_time += cost.solo_seconds;
      }
      layout.duration = std::max(layout.duration, group_time);
    }
    total += layout.duration;
    stages.push_back(std::move(layout));
  }
  DCN_CHECK(total > 0.0) << "schedule has zero modeled duration";

  // Scale: characters per second.
  const double scale = (options.width - static_cast<int>(stages.size())) /
                       total;
  std::ostringstream os;
  os << "time -> (" << total * 1e6 << " us modeled kernel time, batch "
     << options.batch << ")\n";
  for (std::size_t row = 0; row < rows; ++row) {
    os << "stream " << row << " ";
    for (const StageLayout& stage : stages) {
      const int stage_chars = std::max(
          1, static_cast<int>(stage.duration * scale));
      std::string band;
      for (const KernelCell& cell : stage.rows[row]) {
        int cell_chars = std::max(
            1, static_cast<int>(cell.duration * scale));
        std::string label = "[" + cell.name;
        if (static_cast<int>(label.size()) + 1 > cell_chars) {
          label = label.substr(0, std::max(1, cell_chars - 1));
        }
        label += std::string(
            std::max<std::int64_t>(0, cell_chars - 1 -
                                          static_cast<std::int64_t>(
                                              label.size())),
            '-');
        label += "]";
        band += label;
      }
      if (static_cast<int>(band.size()) < stage_chars) {
        band += std::string(stage_chars - band.size(), ' ');
      }
      os << band << '|';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace dcn::ios
