// Schedule execution on the simulated device and latency measurement.
//
// InferenceSession mirrors a deployed inference server: initialize() loads
// the kernel library and uploads weights once; run(batch) performs one
// inference — H2D input copy, the scheduled stages, device synchronize,
// D2H output copy — and reports the end-to-end virtual latency. The
// measurement harness (warm-up + repeats) mirrors how IOS and the paper
// time schedules; the simulator is deterministic so repeats agree exactly,
// which the tests assert.
#pragma once

#include <cstdint>

#include "ios/schedule.hpp"
#include "simgpu/device.hpp"

namespace dcn::ios {

struct RunResult {
  double latency_seconds = 0.0;
  /// Latency divided by batch — the paper's "inference efficiency" (§6.4).
  double per_image_seconds = 0.0;
};

class InferenceSession {
 public:
  /// `graph` and `device` must outlive the session.
  InferenceSession(const graph::Graph& graph, Schedule schedule,
                   simgpu::Device& device);

  /// Load library, allocate weights and activation workspace, create the
  /// streams the widest stage needs. Idempotent.
  void initialize();

  /// One inference at `batch`. Requires initialize().
  RunResult run(std::int64_t batch);

  const Schedule& schedule() const { return schedule_; }

 private:
  const graph::Graph& graph_;
  Schedule schedule_;
  simgpu::Device& device_;
  std::vector<simgpu::KernelDesc> kernel_table_;
  std::int64_t input_bytes_per_sample_ = 0;
  std::int64_t output_bytes_per_sample_ = 0;
  bool initialized_ = false;
};

/// Warm-up then measure: median of `repeats` runs (deterministic on the
/// simulator, but the harness keeps the standard shape). Resets the device
/// clocks first so initialization cost is excluded, as in the paper's
/// Table 2 / Figure 6 timing.
double measure_latency(const graph::Graph& graph, const Schedule& schedule,
                       simgpu::Device& device, std::int64_t batch,
                       int warmup = 1, int repeats = 3);

}  // namespace dcn::ios
