// Schedule execution on the simulated device and latency measurement.
//
// InferenceSession mirrors a deployed inference server: initialize() loads
// the kernel library and uploads weights once; run(batch) performs one
// inference — H2D input copy, the scheduled stages, device synchronize,
// D2H output copy — and reports the end-to-end virtual latency. The
// measurement harness (warm-up + repeats) mirrors how IOS and the paper
// time schedules; the simulator is deterministic so repeats agree exactly,
// which the tests assert.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/retry.hpp"
#include "core/rng.hpp"
#include "ios/schedule.hpp"
#include "simgpu/device.hpp"

namespace dcn::ios {

struct RunResult {
  double latency_seconds = 0.0;
  /// Latency divided by batch — the paper's "inference efficiency" (§6.4).
  double per_image_seconds = 0.0;
};

class InferenceSession {
 public:
  /// `graph` and `device` must outlive the session. `precision` selects the
  /// kernel variants the session launches (int8 sessions read quarter-width
  /// weights/activations and use the device's int8 dense-math path); host
  /// I/O stays float — quantize/dequantize happen on-device.
  ///
  /// `allow_weight_paging` governs what happens when the model's weights do
  /// not fit the device alongside the activation workspace: by default
  /// initialize() throws OutOfMemoryError (the honest single-device story);
  /// with paging enabled the session keeps what fits resident and streams
  /// the overflow over PCIe on *every* run — the cost a whole-model replica
  /// pays for serving a model bigger than its memory budget, and the
  /// baseline the pipeline-parallel sharding bench compares against.
  InferenceSession(const graph::Graph& graph, Schedule schedule,
                   simgpu::Device& device,
                   simgpu::Precision precision = simgpu::Precision::kFp32,
                   bool allow_weight_paging = false);

  /// Load library, allocate weights and activation workspace, create the
  /// streams the widest stage needs. Idempotent.
  void initialize();

  /// One inference at `batch`. Requires initialize(). Throws ConfigError
  /// for batch < 1 (a degenerate stage must never be priced silently).
  RunResult run(std::int64_t batch);

  /// Forget initialization state (after a device hard_reset dropped the
  /// library and weights); the next initialize() re-uploads everything.
  void invalidate() { initialized_ = false; }
  bool initialized() const { return initialized_; }

  const Schedule& schedule() const { return schedule_; }
  simgpu::Precision precision() const { return precision_; }

  /// Weight bytes streamed from the host on every run because they did not
  /// fit on-device (0 when the model is fully resident; only ever non-zero
  /// after initialize() with allow_weight_paging).
  std::int64_t paged_weight_bytes() const { return paged_weight_bytes_; }

 private:
  const graph::Graph& graph_;
  Schedule schedule_;
  simgpu::Device& device_;
  simgpu::Precision precision_ = simgpu::Precision::kFp32;
  bool allow_weight_paging_ = false;
  std::vector<simgpu::KernelDesc> kernel_table_;
  std::int64_t input_bytes_per_sample_ = 0;
  std::int64_t output_bytes_per_sample_ = 0;
  std::int64_t paged_weight_bytes_ = 0;
  bool initialized_ = false;
};

/// Warm-up then measure: median of `repeats` runs (deterministic on the
/// simulator, but the harness keeps the standard shape). Resets the device
/// clocks first so initialization cost is excluded, as in the paper's
/// Table 2 / Figure 6 timing. Throws ConfigError for repeats < 1,
/// warmup < 0, or batch < 1.
double measure_latency(const graph::Graph& graph, const Schedule& schedule,
                       simgpu::Device& device, std::int64_t batch,
                       int warmup = 1, int repeats = 3,
                       simgpu::Precision precision = simgpu::Precision::kFp32);

// --- Resilient execution ---------------------------------------------------

struct ResilientOptions {
  /// Per-run retry budget for transient faults (launch failures, copy
  /// corruption, spurious allocation failures).
  RetryPolicy retry;
  /// Watchdog for synchronize() waits, virtual seconds (0 disables). A
  /// hung device trips it, gets hard-reset, and the run is retried.
  double sync_timeout = 0.0;
  /// Seed for backoff jitter (only drawn when retry.jitter > 0).
  std::uint64_t backoff_seed = 0x5eed;
  /// Stream non-resident weights over PCIe per run instead of failing
  /// initialization when the model exceeds the device's memory budget (see
  /// InferenceSession).
  bool allow_weight_paging = false;
};

/// Degradation statistics a resilient session accumulates across runs.
struct SessionStats {
  std::int64_t runs = 0;       // run()/try_run() calls
  std::int64_t completed = 0;  // runs that produced a result
  std::int64_t degraded = 0;   // try_run() failures swallowed
  int transient_retries = 0;   // faulted attempts that were retried
  int reinitializations = 0;   // device hard-resets + state re-uploads
  double backoff_seconds = 0.0;
  std::string last_error;
};

/// InferenceSession wrapper with failure semantics: transient device faults
/// are retried with exponential backoff on the virtual clock; device-loss
/// faults (hangs tripping the sync timeout) hard-reset the device and
/// re-upload state before retrying. Every retry and re-init is recorded as
/// a profiler trace event. run() throws only once the retry budget is
/// exhausted or a fatal fault occurs; try_run() degrades gracefully to
/// nullopt and counts the loss in stats().
class ResilientSession {
 public:
  ResilientSession(const graph::Graph& graph, Schedule schedule,
                   simgpu::Device& device, ResilientOptions options = {},
                   simgpu::Precision precision = simgpu::Precision::kFp32);

  /// Resilient initialize: any fault during setup resets the device and
  /// starts over (partial initialization is never reused).
  void initialize();

  RunResult run(std::int64_t batch);
  std::optional<RunResult> try_run(std::int64_t batch);

  /// Re-anchor the backoff jitter stream (no-op for jitter = 0 policies).
  /// The serving layer reseeds per dispatched batch so recovery timing is a
  /// pure function of the batch index, independent of replica history.
  void reseed_backoff(std::uint64_t seed) { backoff_.reseed(seed); }

  /// Full replica restart: hard-reset the device (dropping the library,
  /// all memory, and queued work), then re-initialize from scratch. The
  /// serving layer respawns a crashed replica through this; counts one
  /// reinitialization in stats().
  void hard_restart();

  const SessionStats& stats() const { return stats_; }
  const ResilientOptions& options() const { return options_; }
  simgpu::Precision precision() const { return session_.precision(); }
  std::int64_t paged_weight_bytes() const {
    return session_.paged_weight_bytes();
  }

 private:
  void recover(const std::exception& error, int retry);

  InferenceSession session_;
  simgpu::Device& device_;
  ResilientOptions options_;
  SeededBackoff backoff_;
  SessionStats stats_;
};

/// measure_latency through a ResilientSession: transient faults retried,
/// device loss recovered, failed repeats dropped (graceful degradation).
/// Returns the median of the completed repeats; throws when every repeat
/// failed. `stats_out`, when non-null, receives the session statistics.
double measure_latency_resilient(
    const graph::Graph& graph, const Schedule& schedule,
    simgpu::Device& device, std::int64_t batch, int warmup, int repeats,
    const ResilientOptions& options, SessionStats* stats_out = nullptr,
    simgpu::Precision precision = simgpu::Precision::kFp32);

}  // namespace dcn::ios
