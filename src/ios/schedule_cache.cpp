#include "ios/schedule_cache.hpp"

#include <cstdio>
#include <unordered_map>

#include "profiler/counters.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::ios {
namespace {

void append_double(std::string& out, double v) {
  // %.17g round-trips doubles exactly: two specs differing in any cost
  // parameter never collide.
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
  out += ',';
}

void append_int(std::string& out, std::int64_t v) {
  out += std::to_string(v);
  out += ',';
}

// Every DeviceSpec field the stage cost model can read. The name is
// deliberately excluded: two identically parameterized devices are the
// same DP instance.
void append_spec(std::string& out, const simgpu::DeviceSpec& spec) {
  out += "spec:";
  append_int(out, spec.sm_count);
  append_double(out, spec.peak_flops);
  append_double(out, spec.compute_efficiency);
  append_int(out, spec.blocks_per_sm);
  append_int(out, spec.threads_per_block);
  append_double(out, spec.dram_bandwidth);
  append_double(out, spec.pcie_bandwidth);
  append_int(out, spec.dram_bytes);
  append_double(out, spec.kernel_launch_gpu);
  append_double(out, spec.kernel_launch_cpu);
  append_double(out, spec.memcpy_latency);
  append_double(out, spec.sync_api_floor);
  append_double(out, spec.malloc_cpu);
  append_double(out, spec.stream_create_cpu);
  append_double(out, spec.device_reset_cpu);
  append_double(out, spec.library_load_per_kernel);
  append_double(out, spec.min_kernel_time);
  append_double(out, spec.inter_stage_gap);
  append_double(out, spec.int8_throughput_multiplier);
}

// The cost-relevant content of one kernel: category + work profile. Names
// are excluded so "conv1" in one graph matches "conv1" in another — and so
// ops whose names differ but whose work is identical share solutions.
void append_kernel(std::string& out, const simgpu::KernelDesc& kernel) {
  out += 'k';
  append_int(out, static_cast<std::int64_t>(kernel.category));
  // The dtype is part of the kernel's identity. Without it, an int8 conv
  // whose quarter-width byte counts happened to match an fp32 conv's would
  // collide — and even with distinct byte counts, the compute-side int8
  // speedup is invisible in the work profile, so fp32 and int8 instances
  // of the same op would otherwise share (wrong) solutions.
  append_int(out, static_cast<std::int64_t>(kernel.precision));
  // The fused epilogue is part of the kernel's identity too — and it is
  // *invisible* in the work profile by design (the epilogue rides the
  // output store for free, so a FusedConvReLU carries exactly a Conv2d's
  // flops/bytes/threads). Without this tag a fused block and its unfused
  // twin would collide, the same key-collision class the precision tag
  // above fixes for fp32-vs-int8.
  append_int(out, static_cast<std::int64_t>(kernel.epilogue));
  append_double(out, kernel.flops_per_sample);
  append_double(out, kernel.activation_bytes_per_sample);
  append_double(out, kernel.weight_bytes);
  append_double(out, kernel.threads_per_sample);
}

// Concrete tensor geometry of one op: each input's dims, then the output
// dims. The cost profile alone is not a sound identity — distinct shapes
// can read identical (flops, bytes, threads) tuples: a MaxPool(k=2) over
// [4, 8, 8] and one over [16, 4, 4] move the same element counts, so
// append_kernel renders them byte-identical. With one model in flight such
// twins are a curiosity; a two-model pipeline (the scan cascade's tiny
// screener next to the full SPP-Net, same block structure at different
// widths) makes them routine, and a shared solution would carry one
// model's stage partition onto the other's kernels. Shapes are therefore
// part of the key.
void append_shapes(std::string& out, const graph::Graph& graph,
                   graph::OpId id) {
  const graph::OpNode& node = graph.node(id);
  for (graph::OpId in : node.inputs) {
    out += 'i';
    for (const std::int64_t dim : graph.node(in).output.dims) {
      append_int(out, dim);
    }
  }
  out += 'o';
  for (const std::int64_t dim : node.output.dims) append_int(out, dim);
}

}  // namespace

std::string block_cache_key(const graph::Graph& graph,
                            const std::vector<graph::OpId>& ops,
                            const simgpu::DeviceSpec& spec,
                            const IosOptions& options) {
  std::unordered_map<graph::OpId, int> local;
  local.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    local[ops[i]] = static_cast<int>(i);
  }
  std::string key;
  key.reserve(64 + 96 * ops.size());
  key += "block:";
  append_int(key, static_cast<std::int64_t>(ops.size()));
  for (std::size_t i = 0; i < ops.size(); ++i) {
    append_kernel(key,
                  simgpu::make_kernel_desc(graph, ops[i], options.precision));
    append_shapes(key, graph, ops[i]);
    // Block-local dependency structure (edges from outside the block do
    // not constrain the DP and are omitted).
    key += 'p';
    for (graph::OpId in : graph.node(ops[i]).inputs) {
      const auto it = local.find(in);
      if (it != local.end()) append_int(key, it->second);
    }
  }
  key += "opt:";
  append_int(key, options.max_stage_ops);
  append_int(key, options.batch);
  append_spec(key, spec);
  return key;
}

std::string cost_cache_key(const graph::Graph& graph,
                           const simgpu::DeviceSpec& spec,
                           const Schedule& schedule, std::int64_t batch,
                           simgpu::Precision precision) {
  std::string key;
  key.reserve(64 + 96 * schedule.num_kernels());
  key += "cost:";
  append_int(key, batch);
  for (const Stage& stage : schedule.stages) {
    key += 's';
    for (const Group& group : stage.groups) {
      key += 'g';
      for (graph::OpId id : group.ops) {
        append_kernel(key, simgpu::make_kernel_desc(graph, id, precision));
        append_shapes(key, graph, id);
      }
    }
  }
  append_spec(key, spec);
  return key;
}

ScheduleCache& ScheduleCache::global() {
  static ScheduleCache cache;
  return cache;
}

std::optional<BlockSolution> ScheduleCache::find_block(
    const std::string& key) {
  std::optional<BlockSolution> found;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_) return std::nullopt;
    const auto it = blocks_.find(key);
    if (it != blocks_.end()) {
      ++stats_.block_hits;
      found = it->second;
    } else {
      ++stats_.block_misses;
    }
  }
  profiler::counter_add(found ? "schedule_cache.hit" : "schedule_cache.miss");
  return found;
}

void ScheduleCache::insert_block(const std::string& key,
                                 BlockSolution solution) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  // First writer wins; racing workers computed the same solution anyway.
  blocks_.emplace(key, std::move(solution));
}

std::optional<double> ScheduleCache::find_cost(const std::string& key) {
  std::optional<double> found;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_) return std::nullopt;
    const auto it = costs_.find(key);
    if (it != costs_.end()) {
      ++stats_.cost_hits;
      found = it->second;
    } else {
      ++stats_.cost_misses;
    }
  }
  profiler::counter_add(found ? "schedule_cost_cache.hit"
                              : "schedule_cost_cache.miss");
  return found;
}

void ScheduleCache::insert_cost(const std::string& key, double cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  costs_.emplace(key, cost);
}

void ScheduleCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool ScheduleCache::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

ScheduleCacheStats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.size() + costs_.size();
}

void ScheduleCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  blocks_.clear();
  costs_.clear();
  stats_ = ScheduleCacheStats{};
}

}  // namespace dcn::ios
