// ASCII Gantt rendering of a schedule on the simulated device.
//
// Visualizes what the DP decided: one row per concurrent stream, one column
// band per stage, each kernel drawn proportionally to its modeled duration.
// The schedule_explorer example prints these; tests assert structural
// properties (row count = max concurrency, total width tracks latency).
#pragma once

#include <cstdint>
#include <string>

#include "ios/schedule.hpp"
#include "simgpu/spec.hpp"

namespace dcn::ios {

struct GanttOptions {
  /// Total character budget for the time axis.
  int width = 100;
  std::int64_t batch = 1;
};

/// Render `schedule` as an ASCII timeline. Each stream row shows kernels as
/// [name---] blocks scaled to modeled solo durations; stage boundaries are
/// marked with '|'.
std::string render_gantt(const graph::Graph& graph,
                         const simgpu::DeviceSpec& spec,
                         const Schedule& schedule,
                         const GanttOptions& options = {});

}  // namespace dcn::ios
