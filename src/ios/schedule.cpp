#include "ios/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/error.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::ios {

std::size_t Schedule::num_kernels() const {
  std::size_t n = 0;
  for (const Stage& stage : stages) {
    for (const Group& group : stage.groups) n += group.ops.size();
  }
  return n;
}

std::size_t Schedule::max_concurrency() const {
  std::size_t widest = 0;
  for (const Stage& stage : stages) {
    widest = std::max(widest, stage.groups.size());
  }
  return widest;
}

std::string Schedule::to_string(const graph::Graph& graph) const {
  std::ostringstream os;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    os << "stage " << s << ":\n";
    for (std::size_t g = 0; g < stages[s].groups.size(); ++g) {
      os << "  group " << g << ": ";
      const Group& group = stages[s].groups[g];
      for (std::size_t k = 0; k < group.ops.size(); ++k) {
        if (k) os << " -> ";
        os << graph.node(group.ops[k]).name;
      }
      os << '\n';
    }
  }
  return os.str();
}

void validate_schedule(const graph::Graph& graph, const Schedule& schedule) {
  // Position of each op: (stage, group, index-in-group).
  struct Pos {
    std::size_t stage, group, index;
  };
  std::map<graph::OpId, Pos> position;
  for (std::size_t s = 0; s < schedule.stages.size(); ++s) {
    const Stage& stage = schedule.stages[s];
    DCN_CHECK(!stage.groups.empty()) << "stage " << s << " has no groups";
    for (std::size_t g = 0; g < stage.groups.size(); ++g) {
      DCN_CHECK(!stage.groups[g].ops.empty())
          << "stage " << s << " group " << g << " is empty";
      for (std::size_t k = 0; k < stage.groups[g].ops.size(); ++k) {
        const graph::OpId id = stage.groups[g].ops[k];
        DCN_CHECK(!position.count(id))
            << "op " << id << " scheduled twice";
        position[id] = {s, g, k};
      }
    }
  }
  // Coverage: exactly the device ops.
  std::size_t device_ops = 0;
  for (const graph::OpNode& node : graph.nodes()) {
    if (!simgpu::is_device_op(node.kind)) continue;
    ++device_ops;
    DCN_CHECK(position.count(node.id))
        << "device op '" << node.name << "' missing from schedule";
  }
  DCN_CHECK(position.size() == device_ops)
      << "schedule contains non-device or foreign ops";

  // Dependencies.
  for (const auto& [id, pos] : position) {
    for (graph::OpId in : graph.node(id).inputs) {
      if (!position.count(in)) continue;  // produced by Input (host)
      const Pos& producer = position.at(in);
      const bool earlier_stage = producer.stage < pos.stage;
      const bool same_group_before = producer.stage == pos.stage &&
                                     producer.group == pos.group &&
                                     producer.index < pos.index;
      DCN_CHECK(earlier_stage || same_group_before)
          << "op '" << graph.node(id).name << "' runs before its producer '"
          << graph.node(in).name << "'";
    }
  }
}

Schedule sequential_schedule(const graph::Graph& graph) {
  Schedule schedule;
  for (const graph::OpNode& node : graph.nodes()) {
    if (!simgpu::is_device_op(node.kind)) continue;
    Stage stage;
    stage.groups.push_back(Group{{node.id}});
    schedule.stages.push_back(std::move(stage));
  }
  return schedule;
}

}  // namespace dcn::ios
