#include "ios/serialize.hpp"

#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace dcn::ios {

std::string serialize_schedule(const Schedule& schedule) {
  std::ostringstream os;
  os << "schedule v1\n";
  for (const Stage& stage : schedule.stages) {
    os << "stage\n";
    for (const Group& group : stage.groups) {
      os << "group";
      for (graph::OpId id : group.ops) os << ' ' << id;
      os << '\n';
    }
  }
  return os.str();
}

Schedule deserialize_schedule(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  DCN_CHECK(std::getline(is, line) && line == "schedule v1")
      << "bad schedule header '" << line << "'";
  Schedule schedule;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "stage") {
      schedule.stages.emplace_back();
    } else if (keyword == "group") {
      DCN_CHECK(!schedule.stages.empty()) << "group before any stage";
      Group group;
      graph::OpId id;
      while (ls >> id) {
        DCN_CHECK(id >= 0) << "negative op id in schedule";
        group.ops.push_back(id);
      }
      DCN_CHECK(!group.ops.empty()) << "empty group line";
      schedule.stages.back().groups.push_back(std::move(group));
    } else {
      throw Error("unknown schedule keyword '" + keyword + "'");
    }
  }
  return schedule;
}

void save_schedule(const Schedule& schedule, const std::string& path) {
  std::ofstream os(path);
  DCN_CHECK(os.good()) << "cannot open " << path;
  os << serialize_schedule(schedule);
  DCN_CHECK(os.good()) << "write to " << path << " failed";
}

Schedule load_schedule(const graph::Graph& graph, const std::string& path) {
  std::ifstream is(path);
  DCN_CHECK(is.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << is.rdbuf();
  Schedule schedule = deserialize_schedule(buffer.str());
  validate_schedule(graph, schedule);
  return schedule;
}

}  // namespace dcn::ios
