// The Inter-Operator Scheduler (IOS) dynamic program.
//
// Per branched block, the DP searches over partitions of the block's
// operators into an ordered sequence of stages, each stage split into
// parallel chain groups, minimizing the modeled latency
// sum(stage_seconds + inter_stage_gap). States are down-closed "done" sets
// (bitmask over block-local indices); transitions enumerate every valid
// next stage. This is the exact IOS formulation; the pruning width bounds
// the number of operators per stage like IOS's pruning parameter r.
//
// Linear segments are merged into one single-group stage (provably optimal
// under the cost model: merging removes inter-stage gaps and changes
// nothing else). The per-block results concatenate into the full schedule.
#pragma once

#include <cstdint>

#include "ios/schedule.hpp"
#include "simgpu/kernels.hpp"
#include "simgpu/spec.hpp"

namespace dcn::ios {

/// Hard ceiling on the bitmask DP's operator-set size. The mask is 32 bits
/// wide; capping two below keeps every `Mask{1} << n` shift defined and
/// leaves headroom for the full-set sentinel. Blocks above
/// min(IosOptions::max_block_ops, kMaxDpOps) take the branch heuristic.
inline constexpr int kMaxDpOps = 30;

struct IosOptions {
  /// Blocks larger than this fall back to the one-group-per-branch
  /// heuristic instead of the exponential DP. Values above kMaxDpOps are
  /// clamped to it: the bitmask DP cannot represent larger sets.
  int max_block_ops = 16;
  /// Pruning width: maximum operators in one stage (IOS's r).
  int max_stage_ops = 12;
  /// Batch size the schedule is optimized for (IOS specializes schedules
  /// per batch size, as does the paper's Figure 6 sweep).
  std::int64_t batch = 1;
  /// Kernel precision the schedule is optimized for. Int8 kernels have a
  /// different compute/memory balance, so fp32 and int8 DP instances are
  /// distinct (and their cache keys must never collide).
  simgpu::Precision precision = simgpu::Precision::kFp32;
};

/// Run IOS over the whole graph for the given device and options.
Schedule optimize_schedule(const graph::Graph& graph,
                           const simgpu::DeviceSpec& spec,
                           const IosOptions& options = {});

/// Analytic latency of a schedule (device-queue view): per-stage modeled
/// durations plus inter-stage gaps. The executor reproduces this number on
/// the simulated timeline; the DP minimizes it.
double schedule_cost(const graph::Graph& graph,
                     const simgpu::DeviceSpec& spec, const Schedule& schedule,
                     std::int64_t batch,
                     simgpu::Precision precision = simgpu::Precision::kFp32);

/// Brute-force optimal cost over all valid schedules of a graph
/// (exponential; only for small test graphs — validates the DP).
double brute_force_best_cost(const graph::Graph& graph,
                             const simgpu::DeviceSpec& spec,
                             std::int64_t batch);

}  // namespace dcn::ios
