#include "ios/executor.hpp"

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::ios {

InferenceSession::InferenceSession(const graph::Graph& graph,
                                   Schedule schedule, simgpu::Device& device,
                                   simgpu::Precision precision,
                                   bool allow_weight_paging)
    : graph_(graph),
      schedule_(std::move(schedule)),
      device_(device),
      precision_(precision),
      allow_weight_paging_(allow_weight_paging) {
  validate_schedule(graph_, schedule_);
  kernel_table_ = simgpu::make_kernel_table(graph_, precision_);
  for (const graph::OpNode& node : graph_.nodes()) {
    if (node.kind == graph::OpKind::kInput) {
      input_bytes_per_sample_ += node.output.numel() * 4;
    } else if (node.kind == graph::OpKind::kOutput) {
      output_bytes_per_sample_ += node.output.numel() * 4;
    }
  }
  DCN_CHECK(input_bytes_per_sample_ > 0) << "graph has no input";
}

void InferenceSession::initialize() {
  if (initialized_) return;
  device_.load_library(static_cast<int>(schedule_.num_kernels()));
  paged_weight_bytes_ = 0;
  auto weight_bytes =
      static_cast<std::int64_t>(simgpu::total_weight_bytes(graph_));
  // Activation workspace: two ping-pong buffers of the largest activation.
  std::int64_t max_activation = 0;
  for (const graph::OpNode& node : graph_.nodes()) {
    max_activation = std::max(max_activation, node.output.numel() * 4);
  }
  const std::int64_t workspace_bytes = 2 * max_activation * 64;  // batch <= 64
  if (allow_weight_paging_) {
    // Keep as much of the model resident as fits next to the workspace;
    // the overflow is re-streamed over PCIe on every run (see run()).
    const std::int64_t capacity =
        device_.spec().dram_bytes - device_.memory().live_bytes();
    const std::int64_t resident_budget =
        std::max<std::int64_t>(0, capacity - workspace_bytes);
    if (weight_bytes > resident_budget) {
      paged_weight_bytes_ = weight_bytes - resident_budget;
      weight_bytes = resident_budget;
    }
  }
  // Resident weights are uploaded once and stay on-device.
  if (weight_bytes > 0) {
    device_.malloc(weight_bytes);
    device_.memcpy_h2d(weight_bytes);
  }
  device_.malloc(workspace_bytes);
  for (std::size_t s = 0; s < schedule_.max_concurrency(); ++s) {
    device_.create_stream();
  }
  initialized_ = true;
}

RunResult InferenceSession::run(std::int64_t batch) {
  DCN_CHECK(initialized_) << "run before initialize";
  if (batch < 1) {
    throw ConfigError("InferenceSession::run: batch must be >= 1, got " +
                      std::to_string(batch));
  }
  const double start = device_.host_time();

  // Non-resident weights stream in ahead of the input on every inference —
  // the per-run PCIe tax a device too small for the model keeps paying.
  if (paged_weight_bytes_ > 0) device_.memcpy_h2d(paged_weight_bytes_);
  device_.memcpy_h2d(input_bytes_per_sample_ * batch);
  for (const Stage& stage : schedule_.stages) {
    std::vector<std::vector<simgpu::KernelDesc>> groups;
    groups.reserve(stage.groups.size());
    for (const Group& group : stage.groups) {
      std::vector<simgpu::KernelDesc> ks;
      ks.reserve(group.ops.size());
      for (graph::OpId id : group.ops) {
        ks.push_back(kernel_table_[static_cast<std::size_t>(id)]);
      }
      groups.push_back(std::move(ks));
    }
    device_.run_stage(groups, batch);
  }
  device_.synchronize();
  device_.memcpy_d2h(output_bytes_per_sample_ * batch);

  RunResult result;
  result.latency_seconds = device_.host_time() - start;
  result.per_image_seconds =
      result.latency_seconds / static_cast<double>(batch);
  return result;
}

namespace {

void validate_measure_args(std::int64_t batch, int warmup, int repeats) {
  if (repeats < 1) {
    throw ConfigError("measure_latency: repeats must be >= 1, got " +
                      std::to_string(repeats));
  }
  if (warmup < 0) {
    throw ConfigError("measure_latency: warmup must be >= 0, got " +
                      std::to_string(warmup));
  }
  if (batch < 1) {
    throw ConfigError("measure_latency: batch must be >= 1, got " +
                      std::to_string(batch));
  }
}

double median(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

double measure_latency(const graph::Graph& graph, const Schedule& schedule,
                       simgpu::Device& device, std::int64_t batch, int warmup,
                       int repeats, simgpu::Precision precision) {
  validate_measure_args(batch, warmup, repeats);
  InferenceSession session(graph, schedule, device, precision);
  session.initialize();
  for (int i = 0; i < warmup; ++i) (void)session.run(batch);
  device.reset_clocks();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    samples.push_back(session.run(batch).latency_seconds);
  }
  return median(samples);
}

ResilientSession::ResilientSession(const graph::Graph& graph,
                                   Schedule schedule, simgpu::Device& device,
                                   ResilientOptions options,
                                   simgpu::Precision precision)
    : session_(graph, std::move(schedule), device, precision,
               options.allow_weight_paging),
      device_(device),
      options_(options),
      backoff_(options.retry, options.backoff_seed) {
  device_.set_sync_timeout(options_.sync_timeout);
}

void ResilientSession::recover(const std::exception& error, int retry) {
  // Device loss: drop the wedged queue and all device state, then rebuild.
  // Any fault during (re-)initialization also lands here with a full reset,
  // so a partially-initialized session is never reused.
  if (requires_reset(error) || !session_.initialized()) {
    device_.hard_reset();
    session_.invalidate();
    session_.initialize();
    ++stats_.reinitializations;
    device_.record_recovery("reinitialize", 0.0,
                            std::string("device reset after: ") +
                                error.what());
  }
  const double delay = backoff_.delay(retry);
  device_.advance_host(delay);
  stats_.backoff_seconds += delay;
  device_.record_recovery("retry", delay,
                          "retry " + std::to_string(retry) + " after: " +
                              error.what());
}

void ResilientSession::hard_restart() {
  device_.hard_reset();
  session_.invalidate();
  ++stats_.reinitializations;
  device_.record_recovery("respawn", 0.0, "replica hard restart");
  initialize();
}

void ResilientSession::initialize() {
  RetryStats retry_stats;
  with_retries(
      options_.retry, retry_stats, [&] { session_.initialize(); },
      [&](const std::exception& error, int retry) {
        // Roll back partial setup (leaked weight buffers, half-loaded
        // library) before trying again.
        device_.hard_reset();
        session_.invalidate();
        ++stats_.reinitializations;
        const double delay = backoff_.delay(retry);
        device_.advance_host(delay);
        stats_.backoff_seconds += delay;
        device_.record_recovery("retry", delay,
                                "initialize retry " + std::to_string(retry) +
                                    " after: " + error.what());
      });
  stats_.transient_retries += retry_stats.retries;
}

RunResult ResilientSession::run(std::int64_t batch) {
  ++stats_.runs;
  RetryStats retry_stats;
  try {
    const RunResult result = with_retries(
        options_.retry, retry_stats, [&] { return session_.run(batch); },
        [&](const std::exception& error, int retry) {
          recover(error, retry);
        });
    stats_.transient_retries += retry_stats.retries;
    ++stats_.completed;
    return result;
  } catch (const std::exception& error) {
    stats_.transient_retries += retry_stats.retries;
    stats_.last_error = error.what();
    throw;
  }
}

std::optional<RunResult> ResilientSession::try_run(std::int64_t batch) {
  try {
    return run(batch);
  } catch (const Error&) {
    ++stats_.degraded;
    return std::nullopt;
  }
}

double measure_latency_resilient(const graph::Graph& graph,
                                 const Schedule& schedule,
                                 simgpu::Device& device, std::int64_t batch,
                                 int warmup, int repeats,
                                 const ResilientOptions& options,
                                 SessionStats* stats_out,
                                 simgpu::Precision precision) {
  validate_measure_args(batch, warmup, repeats);
  ResilientSession session(graph, schedule, device, options, precision);
  session.initialize();
  for (int i = 0; i < warmup; ++i) (void)session.try_run(batch);
  device.reset_clocks();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    if (const auto result = session.try_run(batch)) {
      samples.push_back(result->latency_seconds);
    }
  }
  if (stats_out != nullptr) *stats_out = session.stats();
  if (samples.empty()) {
    throw DeviceFault("measure_latency_resilient: all " +
                          std::to_string(repeats) + " repeats failed (last: " +
                          session.stats().last_error + ")",
                      /*retryable=*/true);
  }
  return median(samples);
}

}  // namespace dcn::ios
