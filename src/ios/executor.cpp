#include "ios/executor.hpp"

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::ios {

InferenceSession::InferenceSession(const graph::Graph& graph,
                                   Schedule schedule, simgpu::Device& device)
    : graph_(graph), schedule_(std::move(schedule)), device_(device) {
  validate_schedule(graph_, schedule_);
  kernel_table_ = simgpu::make_kernel_table(graph_);
  for (const graph::OpNode& node : graph_.nodes()) {
    if (node.kind == graph::OpKind::kInput) {
      input_bytes_per_sample_ += node.output.numel() * 4;
    } else if (node.kind == graph::OpKind::kOutput) {
      output_bytes_per_sample_ += node.output.numel() * 4;
    }
  }
  DCN_CHECK(input_bytes_per_sample_ > 0) << "graph has no input";
}

void InferenceSession::initialize() {
  if (initialized_) return;
  device_.load_library(static_cast<int>(schedule_.num_kernels()));
  // Weights are uploaded once and stay resident.
  const auto weight_bytes =
      static_cast<std::int64_t>(simgpu::total_weight_bytes(graph_));
  if (weight_bytes > 0) {
    device_.malloc(weight_bytes);
    device_.memcpy_h2d(weight_bytes);
  }
  // Activation workspace: two ping-pong buffers of the largest activation.
  std::int64_t max_activation = 0;
  for (const graph::OpNode& node : graph_.nodes()) {
    max_activation = std::max(max_activation, node.output.numel() * 4);
  }
  device_.malloc(2 * max_activation * 64);  // sized for batch <= 64
  for (std::size_t s = 0; s < schedule_.max_concurrency(); ++s) {
    device_.create_stream();
  }
  initialized_ = true;
}

RunResult InferenceSession::run(std::int64_t batch) {
  DCN_CHECK(initialized_) << "run before initialize";
  DCN_CHECK(batch >= 1) << "batch " << batch;
  const double start = device_.host_time();

  device_.memcpy_h2d(input_bytes_per_sample_ * batch);
  for (const Stage& stage : schedule_.stages) {
    std::vector<std::vector<simgpu::KernelDesc>> groups;
    groups.reserve(stage.groups.size());
    for (const Group& group : stage.groups) {
      std::vector<simgpu::KernelDesc> ks;
      ks.reserve(group.ops.size());
      for (graph::OpId id : group.ops) {
        ks.push_back(kernel_table_[static_cast<std::size_t>(id)]);
      }
      groups.push_back(std::move(ks));
    }
    device_.run_stage(groups, batch);
  }
  device_.synchronize();
  device_.memcpy_d2h(output_bytes_per_sample_ * batch);

  RunResult result;
  result.latency_seconds = device_.host_time() - start;
  result.per_image_seconds =
      result.latency_seconds / static_cast<double>(batch);
  return result;
}

double measure_latency(const graph::Graph& graph, const Schedule& schedule,
                       simgpu::Device& device, std::int64_t batch, int warmup,
                       int repeats) {
  DCN_CHECK(repeats >= 1) << "repeats";
  InferenceSession session(graph, schedule, device);
  session.initialize();
  for (int i = 0; i < warmup; ++i) (void)session.run(batch);
  device.reset_clocks();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    samples.push_back(session.run(batch).latency_seconds);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace dcn::ios
