// Schedule (de)serialization.
//
// IOS persists optimized schedules so the (expensive) DP runs once per
// model/batch and deployments just load the result. The format is a small
// line-oriented text grammar:
//
//   schedule v1
//   stage
//   group 3 5 7     # op ids, executed in order on one stream
//   group 4 6
//   stage
//   group 8
//
// Round-trips exactly; load validates against the target graph.
#pragma once

#include <iosfwd>
#include <string>

#include "ios/schedule.hpp"

namespace dcn::ios {

std::string serialize_schedule(const Schedule& schedule);
Schedule deserialize_schedule(const std::string& text);

/// File variants; load validates the result against `graph`.
void save_schedule(const Schedule& schedule, const std::string& path);
Schedule load_schedule(const graph::Graph& graph, const std::string& path);

}  // namespace dcn::ios
