// Content-addressed cache of IOS dynamic-programming solutions.
//
// Random multi-trial NAS keeps re-building inference graphs whose branched
// blocks are structurally identical: every §4.2 coordinate with the same
// SPP first level has the same SPP block (the trunk's odd conv kernels are
// same-padded, so spatial dims match, and FC widths live outside the
// block). The DP would re-solve the same instance once per trial — the
// redundancy GPUNet-style cached latency tables amortize. This cache keys
// DP instances by *content*: block-local dependency structure, each kernel
// descriptor's cost fields, the DeviceSpec's cost parameters, and the
// IosOptions fields that shape the solution — never op ids or names, so a
// solution computed for one graph rebases onto any structurally identical
// block of another graph.
//
// Solutions are stored as stage partitions over block-local operator
// indices plus the modeled cost; optimize_schedule rebases them onto the
// requesting graph's op ids. schedule_cost memoizes through the same cache
// under cost keys. Hits and misses are counted both here and in the global
// profiler counters ("schedule_cache.hit" / ".miss", "schedule_cost_cache.*"),
// so they surface in render_report and Chrome traces.
//
// Thread-safe: NAS workers evaluating trials concurrently share the global
// cache; on a race both compute the same (deterministic) solution and the
// first insert wins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <mutex>
#include <vector>

#include "ios/schedule.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/spec.hpp"

namespace dcn::ios {

/// One cached DP solution: stage -> group -> block-local operator indices,
/// plus the DP's modeled cost of the partition.
struct BlockSolution {
  std::vector<std::vector<std::vector<int>>> stages;
  double cost = 0.0;
};

struct ScheduleCacheStats {
  std::int64_t block_hits = 0;
  std::int64_t block_misses = 0;
  std::int64_t cost_hits = 0;
  std::int64_t cost_misses = 0;
};

/// Thread-safe content-addressed memo shared by optimize_schedule and
/// schedule_cost. Enabled by default; disabling turns find/insert into
/// no-ops (nothing is counted), which tests use to compare cached against
/// uncached solutions.
class ScheduleCache {
 public:
  /// The process-wide instance every scheduler call consults.
  static ScheduleCache& global();

  std::optional<BlockSolution> find_block(const std::string& key);
  void insert_block(const std::string& key, BlockSolution solution);

  std::optional<double> find_cost(const std::string& key);
  void insert_cost(const std::string& key, double cost);

  void set_enabled(bool enabled);
  bool enabled() const;

  ScheduleCacheStats stats() const;
  /// Number of stored entries (block solutions + memoized costs).
  std::size_t size() const;
  /// Drop all entries and zero the stats.
  void clear();

 private:
  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::unordered_map<std::string, BlockSolution> blocks_;
  std::unordered_map<std::string, double> costs_;
  ScheduleCacheStats stats_;
};

/// Canonical key of one DP instance over `ops` (a block's device ops, in
/// block order). Identical keys guarantee identical DP solutions. Each
/// kernel contributes its category, precision, *fused-epilogue tag*, work
/// profile, and *concrete tensor shapes*: the epilogue tag is load-bearing
/// because a fused conv+ReLU's work profile is byte-identical to the plain
/// conv's, and the shapes are load-bearing because distinct geometries can
/// read identical cost tuples (a MaxPool over [4,8,8] vs one over [16,4,4])
/// — routine once two models of the same block structure share the cache,
/// as the scan cascade's screener + full SPP-Net do.
std::string block_cache_key(const graph::Graph& graph,
                            const std::vector<graph::OpId>& ops,
                            const simgpu::DeviceSpec& spec,
                            const IosOptions& options);

/// Canonical key of one schedule_cost evaluation. The kernel precision is
/// part of the key: an fp32 and an int8 evaluation of the same schedule are
/// different numbers and must never share an entry.
std::string cost_cache_key(
    const graph::Graph& graph, const simgpu::DeviceSpec& spec,
    const Schedule& schedule, std::int64_t batch,
    simgpu::Precision precision = simgpu::Precision::kFp32);

}  // namespace dcn::ios
