// Multi-GPU scheduling extensions (the paper's future-work direction,
// §4.1/§8.3: HIOS-style inter-GPU operator parallelism and NAS beyond a
// single GPU).
//
// Two latency models on top of the simulated device:
//  - data_parallel_latency: the batch is sharded across replicas; each
//    replica runs the single-GPU schedule on its shard, then a collective
//    gathers results over the interconnect. This is the standard
//    throughput-scaling path.
//  - branch_parallel_latency: HIOS's idea at block granularity — the
//    groups of a parallel stage are placed on different GPUs, which costs
//    an activation transfer per remote group in both directions. For
//    SPP-Net's small branches the transfers dominate, which quantifies why
//    the paper (like HIOS) reserves inter-GPU parallelism for models with
//    heavyweight branches.
#pragma once

#include <cstdint>

#include "ios/schedule.hpp"
#include "simgpu/spec.hpp"

namespace dcn::ios {

struct MultiGpuConfig {
  int num_gpus = 2;
  /// Effective GPU<->GPU interconnect bandwidth (bytes/s; NVLink-class).
  double interconnect_bandwidth = 112e9;
  /// Fixed latency per collective / peer transfer (seconds).
  double transfer_latency = 10e-6;
};

/// Latency of one batch sharded across `config.num_gpus` replicas, each
/// executing `schedule` on its shard (includes input scatter and output
/// gather over the interconnect).
double data_parallel_latency(const graph::Graph& graph,
                             const Schedule& schedule,
                             const simgpu::DeviceSpec& spec,
                             std::int64_t batch, const MultiGpuConfig& config);

/// Latency of `schedule` with the groups of every multi-group stage placed
/// round-robin across GPUs; remote groups pay activation transfers to and
/// from their device. Single-group stages run on GPU 0.
double branch_parallel_latency(const graph::Graph& graph,
                               const Schedule& schedule,
                               const simgpu::DeviceSpec& spec,
                               std::int64_t batch,
                               const MultiGpuConfig& config);

}  // namespace dcn::ios
