#include "ios/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_map>

#include "core/error.hpp"
#include "graph/blocks.hpp"
#include "ios/schedule_cache.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::ios {
namespace {

using graph::OpId;
using Mask = std::uint32_t;

/// Exact DP over one operator set (a block's interior, or a whole small
/// graph for the brute-force oracle).
class SetScheduler {
 public:
  SetScheduler(const graph::Graph& graph, const simgpu::DeviceSpec& spec,
               std::vector<OpId> ops, const IosOptions& options)
      : graph_(graph), spec_(spec), ops_(std::move(ops)), options_(options) {
    static_assert(kMaxDpOps < 32, "full-set mask must fit without overflow");
    DCN_CHECK(ops_.size() <= static_cast<std::size_t>(kMaxDpOps))
        << "operator set too large for bitmask DP";
    const int n = static_cast<int>(ops_.size());
    std::unordered_map<OpId, int> local;
    for (int i = 0; i < n; ++i) local[ops_[i]] = i;
    preds_.assign(static_cast<std::size_t>(n), 0);
    succs_.assign(static_cast<std::size_t>(n), 0);
    kernels_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      kernels_.push_back(
          simgpu::make_kernel_desc(graph_, ops_[i], options_.precision));
      for (OpId in : graph_.node(ops_[i]).inputs) {
        auto it = local.find(in);
        if (it != local.end()) {
          preds_[static_cast<std::size_t>(i)] |= Mask{1} << it->second;
          succs_[static_cast<std::size_t>(it->second)] |= Mask{1} << i;
        }
      }
    }
    // n <= kMaxDpOps < 32 (checked above), so the shift never overflows;
    // the old `n == 32` special case here was unreachable dead code.
    full_ = (Mask{1} << n) - Mask{1};
  }

  /// Minimal modeled latency of the set; fills stages on success.
  double solve(std::vector<Stage>& stages) {
    memo_.clear();
    choice_.clear();
    const double best = solve_from(0);
    // Reconstruct the stage sequence.
    Mask done = 0;
    while (done != full_) {
      const Mask e = choice_.at(done);
      stages.push_back(make_stage(e));
      done |= e;
    }
    return best;
  }

 private:
  // Partition stage-set `e` into chain groups; returns false if some
  // connected component is not a simple chain.
  bool make_groups(Mask e, std::vector<std::vector<int>>& groups) const {
    groups.clear();
    Mask visited = 0;
    for (int i = 0; i < 32; ++i) {
      const Mask bit = Mask{1} << i;
      if (!(e & bit) || (visited & bit)) continue;
      // A chain head has no predecessor inside e.
      if (preds_[static_cast<std::size_t>(i)] & e) continue;
      std::vector<int> chain;
      int cur = i;
      while (true) {
        const Mask cur_bit = Mask{1} << cur;
        if (visited & cur_bit) return false;  // re-entered: not a chain
        visited |= cur_bit;
        chain.push_back(cur);
        const Mask next = succs_[static_cast<std::size_t>(cur)] & e;
        if (next == 0) break;
        if (std::popcount(next) > 1) return false;  // fork inside stage
        const int nxt = std::countr_zero(next);
        if (std::popcount(preds_[static_cast<std::size_t>(nxt)] & e) > 1) {
          return false;  // join inside stage
        }
        cur = nxt;
      }
      groups.push_back(std::move(chain));
    }
    // Every op must have been visited (ops whose in-stage predecessors form
    // a cycle would be missed — impossible in a DAG, but cheap to assert).
    return visited == e;
  }

  double stage_cost(const std::vector<std::vector<int>>& groups) const {
    std::vector<std::vector<simgpu::KernelDesc>> kernel_groups;
    kernel_groups.reserve(groups.size());
    for (const auto& group : groups) {
      std::vector<simgpu::KernelDesc> ks;
      ks.reserve(group.size());
      for (int i : group) ks.push_back(kernels_[static_cast<std::size_t>(i)]);
      kernel_groups.push_back(std::move(ks));
    }
    return simgpu::stage_seconds(spec_, kernel_groups, options_.batch) +
           spec_.inter_stage_gap;
  }

  Stage make_stage(Mask e) const {
    std::vector<std::vector<int>> groups;
    DCN_CHECK(make_groups(e, groups)) << "reconstructed stage is invalid";
    Stage stage;
    for (const auto& group : groups) {
      Group g;
      for (int i : group) g.ops.push_back(ops_[static_cast<std::size_t>(i)]);
      stage.groups.push_back(std::move(g));
    }
    return stage;
  }

  double solve_from(Mask done) {
    if (done == full_) return 0.0;
    auto it = memo_.find(done);
    if (it != memo_.end()) return it->second;

    const Mask remaining = full_ & ~done;
    double best = std::numeric_limits<double>::infinity();
    Mask best_e = 0;
    std::vector<std::vector<int>> groups;
    // Enumerate every non-empty submask of the remaining ops as the next
    // stage candidate.
    for (Mask e = remaining;; e = (e - 1) & remaining) {
      if (e == 0) break;
      if (std::popcount(e) <= options_.max_stage_ops) {
        bool ready = true;
        for (Mask m = e; m;) {
          const int i = std::countr_zero(m);
          m &= m - 1;
          if (preds_[static_cast<std::size_t>(i)] & ~(done | e)) {
            ready = false;
            break;
          }
        }
        if (ready && make_groups(e, groups)) {
          const double cost = stage_cost(groups) + solve_from(done | e);
          if (cost < best) {
            best = cost;
            best_e = e;
          }
        }
      }
    }
    DCN_CHECK(best_e != 0) << "no valid stage found (pruning too tight?)";
    memo_[done] = best;
    choice_[done] = best_e;
    return best;
  }

  const graph::Graph& graph_;
  const simgpu::DeviceSpec& spec_;
  std::vector<OpId> ops_;
  IosOptions options_;
  std::vector<Mask> preds_;
  std::vector<Mask> succs_;
  std::vector<simgpu::KernelDesc> kernels_;
  Mask full_ = 0;
  std::unordered_map<Mask, double> memo_;
  std::unordered_map<Mask, Mask> choice_;
};

std::vector<OpId> device_ops(const graph::Graph& graph,
                             const std::vector<OpId>& ops) {
  std::vector<OpId> out;
  for (OpId id : ops) {
    if (simgpu::is_device_op(graph.node(id).kind)) out.push_back(id);
  }
  return out;
}

// Fallback for oversized branched blocks: one group per branch, one stage.
Stage branch_heuristic_stage(const graph::Graph& graph,
                             const graph::Block& block) {
  Stage stage;
  for (const auto& branch : graph::block_branches(graph, block)) {
    if (branch.empty()) continue;
    Group group;
    group.ops = branch;
    stage.groups.push_back(std::move(group));
  }
  DCN_CHECK(!stage.groups.empty()) << "branched block with no branches";
  return stage;
}

// Rebase a cached block solution (stage -> group -> block-local index) onto
// this graph's operator ids.
std::vector<Stage> rebase_solution(const BlockSolution& solution,
                                   const std::vector<OpId>& ops) {
  std::vector<Stage> stages;
  stages.reserve(solution.stages.size());
  for (const auto& stage_indices : solution.stages) {
    Stage stage;
    for (const auto& group_indices : stage_indices) {
      Group group;
      group.ops.reserve(group_indices.size());
      for (int i : group_indices) {
        DCN_CHECK(i >= 0 && static_cast<std::size_t>(i) < ops.size())
            << "cached solution index out of range";
        group.ops.push_back(ops[static_cast<std::size_t>(i)]);
      }
      stage.groups.push_back(std::move(group));
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

// Inverse of rebase_solution: express DP output stages as block-local
// indices so the cached form is graph-independent.
BlockSolution localize_solution(const std::vector<Stage>& stages,
                                const std::vector<OpId>& ops, double cost) {
  std::unordered_map<OpId, int> local;
  local.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    local[ops[i]] = static_cast<int>(i);
  }
  BlockSolution solution;
  solution.cost = cost;
  solution.stages.reserve(stages.size());
  for (const Stage& stage : stages) {
    std::vector<std::vector<int>> stage_indices;
    for (const Group& group : stage.groups) {
      std::vector<int> group_indices;
      group_indices.reserve(group.ops.size());
      for (OpId id : group.ops) group_indices.push_back(local.at(id));
      stage_indices.push_back(std::move(group_indices));
    }
    solution.stages.push_back(std::move(stage_indices));
  }
  return solution;
}

}  // namespace

Schedule optimize_schedule(const graph::Graph& graph,
                           const simgpu::DeviceSpec& spec,
                           const IosOptions& options) {
  Schedule schedule;
  for (const graph::Block& block : graph::extract_blocks(graph)) {
    const std::vector<OpId> ops = device_ops(graph, block.ops);
    if (ops.empty()) continue;
    if (!block.branched) {
      // Linear run: merge into a single single-group stage — optimal under
      // the cost model (removes gaps, cannot create overlap).
      Stage stage;
      stage.groups.push_back(Group{ops});
      schedule.stages.push_back(std::move(stage));
      continue;
    }
    // The DP's bitmask cannot represent sets beyond kMaxDpOps, so a raised
    // max_block_ops must not route an oversized block into it (the old code
    // crashed on DCN_CHECK here instead of degrading to the heuristic).
    const int dp_limit = std::min(options.max_block_ops, kMaxDpOps);
    if (static_cast<int>(ops.size()) > dp_limit) {
      schedule.stages.push_back(branch_heuristic_stage(graph, block));
      continue;
    }
    ScheduleCache& cache = ScheduleCache::global();
    const std::string key = block_cache_key(graph, ops, spec, options);
    if (const auto cached = cache.find_block(key)) {
      for (Stage& stage : rebase_solution(*cached, ops)) {
        schedule.stages.push_back(std::move(stage));
      }
      continue;
    }
    SetScheduler dp(graph, spec, ops, options);
    std::vector<Stage> stages;
    const double cost = dp.solve(stages);
    cache.insert_block(key, localize_solution(stages, ops, cost));
    for (Stage& stage : stages) schedule.stages.push_back(std::move(stage));
  }
  validate_schedule(graph, schedule);
  return schedule;
}

double schedule_cost(const graph::Graph& graph,
                     const simgpu::DeviceSpec& spec, const Schedule& schedule,
                     std::int64_t batch, simgpu::Precision precision) {
  ScheduleCache& cache = ScheduleCache::global();
  const std::string key =
      cost_cache_key(graph, spec, schedule, batch, precision);
  if (const auto cached = cache.find_cost(key)) return *cached;
  double total = 0.0;
  for (const Stage& stage : schedule.stages) {
    std::vector<std::vector<simgpu::KernelDesc>> groups;
    groups.reserve(stage.groups.size());
    for (const Group& group : stage.groups) {
      std::vector<simgpu::KernelDesc> ks;
      ks.reserve(group.ops.size());
      for (OpId id : group.ops) {
        ks.push_back(simgpu::make_kernel_desc(graph, id, precision));
      }
      groups.push_back(std::move(ks));
    }
    total += simgpu::stage_seconds(spec, groups, batch) +
             spec.inter_stage_gap;
  }
  cache.insert_cost(key, total);
  return total;
}

double brute_force_best_cost(const graph::Graph& graph,
                             const simgpu::DeviceSpec& spec,
                             std::int64_t batch) {
  std::vector<OpId> ops;
  for (const graph::OpNode& node : graph.nodes()) {
    if (simgpu::is_device_op(node.kind)) ops.push_back(node.id);
  }
  DCN_CHECK(ops.size() <= 14) << "graph too large for brute force";
  IosOptions options;
  options.batch = batch;
  options.max_stage_ops = static_cast<int>(ops.size());
  SetScheduler dp(graph, spec, ops, options);
  std::vector<Stage> stages;
  return dp.solve(stages);
}

}  // namespace dcn::ios
