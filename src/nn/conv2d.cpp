#include "nn/conv2d.hpp"

#include <vector>

#include "core/error.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace dcn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel_size, std::int64_t stride,
               std::int64_t padding, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding),
      weight_(Shape{out_channels, in_channels, kernel_size, kernel_size}),
      bias_(Shape{out_channels}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  DCN_CHECK(in_channels > 0 && out_channels > 0) << "conv channels";
  DCN_CHECK(kernel_size > 0 && stride > 0 && padding >= 0) << "conv geometry";
  kaiming_normal(weight_, in_channels * kernel_size * kernel_size, rng);
  bias_.zero();
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel_size, std::int64_t stride, Rng& rng)
    : Conv2d(in_channels, out_channels, kernel_size, stride, kernel_size / 2,
             rng) {}

ConvGeometry Conv2d::geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g;
  g.channels = in_channels_;
  g.height = h;
  g.width = w;
  g.kernel_h = g.kernel_w = kernel_size_;
  g.stride_h = g.stride_w = stride_;
  g.pad_h = g.pad_w = padding_;
  return g;
}

std::pair<std::int64_t, std::int64_t> Conv2d::output_hw(std::int64_t h,
                                                        std::int64_t w) const {
  const ConvGeometry g = geometry(h, w);
  return {g.out_h(), g.out_w()};
}

Tensor Conv2d::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 4) << "Conv2d expects NCHW, got "
                               << input.shape().to_string();
  DCN_CHECK(input.dim(1) == in_channels_)
      << "Conv2d channels " << input.dim(1) << " != " << in_channels_;
  const std::int64_t batch = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const ConvGeometry g = geometry(h, w);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  DCN_CHECK(oh > 0 && ow > 0) << "Conv2d output would be empty for input "
                              << input.shape().to_string();
  const std::int64_t k = in_channels_ * kernel_size_ * kernel_size_;
  const std::int64_t ohw = oh * ow;

  Tensor output(Shape{batch, out_channels_, oh, ow});
  std::vector<float> col(static_cast<std::size_t>(k * ohw));
  const std::int64_t in_stride = in_channels_ * h * w;
  const std::int64_t out_stride = out_channels_ * ohw;
  for (std::int64_t n = 0; n < batch; ++n) {
    im2col(input.data() + n * in_stride, g, col.data());
    // output[oc, ohw] = weight[oc, k] * col[k, ohw]
    matmul(false, false, out_channels_, ohw, k, weight_.data(), col.data(),
           output.data() + n * out_stride);
    float* out_n = output.data() + n * out_stride;
    for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
      const float b = bias_[oc];
      float* row = out_n + oc * ohw;
      for (std::int64_t i = 0; i < ohw; ++i) row[i] += b;
    }
  }
  cached_input_ = input;
  has_cached_input_ = true;
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  DCN_CHECK(has_cached_input_) << "Conv2d::backward without forward";
  const Tensor& input = cached_input_;
  const std::int64_t batch = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const ConvGeometry g = geometry(h, w);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t k = in_channels_ * kernel_size_ * kernel_size_;
  DCN_CHECK(grad_output.shape() ==
            Shape({batch, out_channels_, oh, ow}))
      << "Conv2d grad shape " << grad_output.shape().to_string();

  Tensor grad_input(input.shape());
  std::vector<float> col(static_cast<std::size_t>(k * ohw));
  std::vector<float> col_grad(static_cast<std::size_t>(k * ohw));
  const std::int64_t in_stride = in_channels_ * h * w;
  const std::int64_t out_stride = out_channels_ * ohw;

  for (std::int64_t n = 0; n < batch; ++n) {
    const float* go = grad_output.data() + n * out_stride;
    // Recompute the column matrix (cheaper than caching it for the batch).
    im2col(input.data() + n * in_stride, g, col.data());
    // grad_w[oc, k] += go[oc, ohw] * col[k, ohw]^T
    sgemm(false, true, out_channels_, k, ohw, 1.0f, go, ohw, col.data(), ohw,
          1.0f, weight_grad_.data(), k);
    // grad_col[k, ohw] = weight[oc, k]^T * go[oc, ohw]
    sgemm(true, false, k, ohw, out_channels_, 1.0f, weight_.data(), k, go,
          ohw, 0.0f, col_grad.data(), ohw);
    col2im(col_grad.data(), g, grad_input.data() + n * in_stride);
    // grad_b[oc] += sum over spatial of go
    for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
      double acc = 0.0;
      const float* row = go + oc * ohw;
      for (std::int64_t i = 0; i < ohw; ++i) acc += row[i];
      bias_grad_[oc] += static_cast<float>(acc);
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv2d::parameters() {
  return {{"weight", &weight_, &weight_grad_},
          {"bias", &bias_, &bias_grad_}};
}

}  // namespace dcn
