#include "nn/conv2d.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"

namespace dcn {
namespace {

// Backward accumulates weight/bias gradients into this many per-chunk
// partial buffers, reduced in chunk order. The chunk partition depends only
// on the batch size — never on the thread count — so training results are
// bit-identical at any jobs setting (DESIGN.md "Tensor-engine threading
// model"). run_compute_tasks only changes which thread executes a chunk.
constexpr std::int64_t kGradChunks = 8;

// Contiguous near-even partition of [0, batch) into `chunks` pieces.
std::pair<std::int64_t, std::int64_t> chunk_range(std::int64_t batch,
                                                  std::int64_t chunks,
                                                  std::int64_t c) {
  const std::int64_t base = batch / chunks;
  const std::int64_t rem = batch % chunks;
  const std::int64_t lo = c * base + std::min(c, rem);
  return {lo, lo + base + (c < rem ? 1 : 0)};
}

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel_size, std::int64_t stride,
               std::int64_t padding, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding),
      weight_(Shape{out_channels, in_channels, kernel_size, kernel_size}),
      bias_(Shape{out_channels}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  DCN_CHECK(in_channels > 0 && out_channels > 0) << "conv channels";
  DCN_CHECK(kernel_size > 0 && stride > 0 && padding >= 0) << "conv geometry";
  kaiming_normal(weight_, in_channels * kernel_size * kernel_size, rng);
  bias_.zero();
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel_size, std::int64_t stride, Rng& rng)
    : Conv2d(in_channels, out_channels, kernel_size, stride, kernel_size / 2,
             rng) {}

ConvGeometry Conv2d::geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g;
  g.channels = in_channels_;
  g.height = h;
  g.width = w;
  g.kernel_h = g.kernel_w = kernel_size_;
  g.stride_h = g.stride_w = stride_;
  g.pad_h = g.pad_w = padding_;
  return g;
}

std::pair<std::int64_t, std::int64_t> Conv2d::output_hw(std::int64_t h,
                                                        std::int64_t w) const {
  const ConvGeometry g = geometry(h, w);
  return {g.out_h(), g.out_w()};
}

Tensor Conv2d::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 4) << "Conv2d expects NCHW, got "
                               << input.shape().to_string();
  DCN_CHECK(input.dim(1) == in_channels_)
      << "Conv2d channels " << input.dim(1) << " != " << in_channels_;
  const std::int64_t batch = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const ConvGeometry g = geometry(h, w);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  DCN_CHECK(oh > 0 && ow > 0) << "Conv2d output would be empty for input "
                              << input.shape().to_string();
  const std::int64_t k = in_channels_ * kernel_size_ * kernel_size_;
  const std::int64_t ohw = oh * ow;

  Tensor output(Shape{batch, out_channels_, oh, ow});
  const std::int64_t in_stride = in_channels_ * h * w;
  const std::int64_t out_stride = out_channels_ * ohw;
  // The per-channel bias rides the GEMM's fused epilogue instead of a
  // separate sweep over the output.
  GemmEpilogue epilogue;
  epilogue.row_bias = bias_.data();
  const auto run_sample = [&](std::int64_t n) {
    Workspace& ws = Workspace::tls();
    Workspace::Scope scope(ws);
    float* col = ws.floats(static_cast<std::size_t>(k * ohw));
    im2col(input.data() + n * in_stride, g, col);
    // output[oc, ohw] = weight[oc, k] * col[k, ohw] + bias[oc]
    sgemm_ex(false, false, out_channels_, ohw, k, 1.0f, weight_.data(), k,
             col, ohw, 0.0f, output.data() + n * out_stride, ohw, epilogue);
  };
  // Samples are independent (disjoint output) — distribute contiguous
  // sample ranges over the pool. A single sample instead parallelizes
  // inside the GEMM.
  const int tasks = static_cast<int>(
      std::min<std::int64_t>(compute_threads(), batch));
  if (tasks <= 1) {
    for (std::int64_t n = 0; n < batch; ++n) run_sample(n);
  } else {
    run_compute_tasks(tasks, [&](int t) {
      const auto [lo, hi] = chunk_range(batch, tasks, t);
      for (std::int64_t n = lo; n < hi; ++n) run_sample(n);
    });
  }
  cached_input_ = input;
  has_cached_input_ = true;
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  DCN_CHECK(has_cached_input_) << "Conv2d::backward without forward";
  const Tensor& input = cached_input_;
  const std::int64_t batch = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const ConvGeometry g = geometry(h, w);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t k = in_channels_ * kernel_size_ * kernel_size_;
  DCN_CHECK(grad_output.shape() ==
            Shape({batch, out_channels_, oh, ow}))
      << "Conv2d grad shape " << grad_output.shape().to_string();

  Tensor grad_input(input.shape());
  const std::int64_t in_stride = in_channels_ * h * w;
  const std::int64_t out_stride = out_channels_ * ohw;

  // Per-chunk partial buffers for the shared weight/bias gradients (the
  // grad_input rows are per-sample disjoint and need none). Member scratch
  // so steady-state training reuses one allocation.
  const std::int64_t chunks = std::min<std::int64_t>(kGradChunks, batch);
  const std::int64_t wsize = out_channels_ * k;
  const std::int64_t chunk_floats = wsize + out_channels_;
  grad_scratch_.assign(static_cast<std::size_t>(chunks * chunk_floats), 0.0f);

  const auto run_chunk = [&](int c) {
    const auto [lo, hi] = chunk_range(batch, chunks, c);
    float* wg = grad_scratch_.data() + c * chunk_floats;
    float* bg = wg + wsize;
    Workspace& ws = Workspace::tls();
    Workspace::Scope scope(ws);
    float* col = ws.floats(static_cast<std::size_t>(k * ohw));
    float* col_grad = ws.floats(static_cast<std::size_t>(k * ohw));
    for (std::int64_t n = lo; n < hi; ++n) {
      const float* go = grad_output.data() + n * out_stride;
      // Recompute the column matrix (cheaper than caching it per batch).
      im2col(input.data() + n * in_stride, g, col);
      // chunk grad_w[oc, k] += go[oc, ohw] * col[k, ohw]^T
      sgemm(false, true, out_channels_, k, ohw, 1.0f, go, ohw, col, ohw,
            1.0f, wg, k);
      // grad_col[k, ohw] = weight[oc, k]^T * go[oc, ohw]
      sgemm(true, false, k, ohw, out_channels_, 1.0f, weight_.data(), k, go,
            ohw, 0.0f, col_grad, ohw);
      col2im(col_grad, g, grad_input.data() + n * in_stride);
      // chunk grad_b[oc] += sum over spatial of go
      for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
        double acc = 0.0;
        const float* row = go + oc * ohw;
        for (std::int64_t i = 0; i < ohw; ++i) acc += row[i];
        bg[oc] += static_cast<float>(acc);
      }
    }
  };
  run_compute_tasks(static_cast<int>(chunks), run_chunk);

  // Reduce the partials in fixed chunk order into the shared gradients.
  for (std::int64_t c = 0; c < chunks; ++c) {
    const float* __restrict wg = grad_scratch_.data() + c * chunk_floats;
    const float* __restrict bg = wg + wsize;
    float* __restrict wdst = weight_grad_.data();
    for (std::int64_t i = 0; i < wsize; ++i) wdst[i] += wg[i];
    for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
      bias_grad_[oc] += bg[oc];
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv2d::parameters() {
  return {{"weight", &weight_, &weight_grad_},
          {"bias", &bias_, &bias_grad_}};
}

}  // namespace dcn
