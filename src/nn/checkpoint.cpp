#include "nn/checkpoint.hpp"

#include <map>

#include "core/error.hpp"
#include "tensor/serialize.hpp"

namespace dcn {

void save_checkpoint(Module& model, const std::string& path) {
  std::vector<std::pair<std::string, Tensor>> named;
  for (const ParamRef& p : model.parameters()) {
    named.emplace_back(p.name, *p.value);
  }
  DCN_CHECK(!named.empty()) << "model has no parameters to checkpoint";
  save_tensors(path, named);
}

void load_checkpoint(Module& model, const std::string& path) {
  auto loaded = load_tensors(path);
  std::map<std::string, Tensor*> by_name;
  for (auto& [name, tensor] : loaded) {
    DCN_CHECK(by_name.emplace(name, &tensor).second)
        << "duplicate parameter '" << name << "' in checkpoint";
  }
  const auto params = model.parameters();
  DCN_CHECK(params.size() == loaded.size())
      << "checkpoint has " << loaded.size() << " parameters, model expects "
      << params.size();
  for (const ParamRef& p : params) {
    auto it = by_name.find(p.name);
    DCN_CHECK(it != by_name.end())
        << "checkpoint lacks parameter '" << p.name << "'";
    DCN_CHECK(it->second->shape() == p.value->shape())
        << "parameter '" << p.name << "' shape mismatch: checkpoint "
        << it->second->shape().to_string() << " vs model "
        << p.value->shape().to_string();
    *p.value = *it->second;
  }
}

void copy_parameters(Module& source, Module& target) {
  const auto src = source.parameters();
  const auto dst = target.parameters();
  DCN_CHECK(src.size() == dst.size())
      << "parameter count mismatch: " << src.size() << " vs " << dst.size();
  for (std::size_t i = 0; i < src.size(); ++i) {
    DCN_CHECK(src[i].value->shape() == dst[i].value->shape())
        << "parameter '" << src[i].name << "' shape mismatch";
    *dst[i].value = *src[i].value;
  }
}

}  // namespace dcn
