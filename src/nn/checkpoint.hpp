// Model checkpointing: persist and restore a Module's parameters.
//
// Uses the named-tensor container of tensor/serialize; names come from the
// module's parameter tree, so a checkpoint can only be restored into an
// architecturally identical model (mismatches throw with the offending
// parameter name).
#pragma once

#include <string>

#include "nn/module.hpp"

namespace dcn {

/// Save every parameter of `model` to `path`.
void save_checkpoint(Module& model, const std::string& path);

/// Restore parameters saved by save_checkpoint. Throws dcn::Error when the
/// checkpoint and the model disagree (missing/extra/mis-shaped parameters).
void load_checkpoint(Module& model, const std::string& path);

/// Copy parameters from `source` into `target` (same architecture).
void copy_parameters(Module& source, Module& target);

}  // namespace dcn
