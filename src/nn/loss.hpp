// Loss functions for the detection head.
//
// The SPP-Net head predicts, per image, an objectness logit and a bounding
// box (cx, cy, w, h in [0,1] patch coordinates). Classification uses
// binary cross-entropy on the logit; box regression uses smooth-L1 masked
// to positive samples, mirroring the Fast R-CNN multi-task loss the paper's
// reference implementation uses.
#pragma once

#include "tensor/tensor.hpp"

namespace dcn {

/// Value + gradient of a scalar loss wrt the predictions.
struct LossResult {
  double value = 0.0;
  Tensor grad;  // dL/d(predictions), same shape as predictions
};

/// Mean binary cross-entropy with logits. logits/targets: rank-1 [N],
/// targets in {0, 1}.
LossResult bce_with_logits(const Tensor& logits, const Tensor& targets);

/// Mean smooth-L1 (Huber with delta=1) between pred and target, both
/// [N, D]; rows where mask[n] == 0 contribute nothing. Normalized by the
/// number of unmasked rows (or 1 if none).
LossResult smooth_l1(const Tensor& pred, const Tensor& target,
                     const Tensor& mask);

/// Mean squared error (used by tests and as an ablation loss).
LossResult mse(const Tensor& pred, const Tensor& target);

/// Combined detection loss over head output [N, 5] =
/// [objectness logit | cx cy w h]. `labels` [N] in {0,1}; `boxes` [N, 4].
/// total = bce + box_weight * smooth_l1(positives only).
LossResult detection_loss(const Tensor& head_out, const Tensor& labels,
                          const Tensor& boxes, double box_weight = 1.0);

}  // namespace dcn
