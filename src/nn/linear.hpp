// Fully-connected layer (paper's F_{neurons}).
#pragma once

#include "nn/module.hpp"

namespace dcn {

class Rng;

/// y = x W^T + b over rank-2 inputs [N, in_features].
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "Linear"; }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Tensor weight_;       // [out, in]
  Tensor bias_;         // [out]
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;
  bool has_cached_input_ = false;
};

}  // namespace dcn
