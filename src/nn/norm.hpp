// Additional layers: average pooling, LeakyReLU, and batch normalization.
//
// These extend the search space beyond the paper's exact Table-1 trunk
// (max-pool + ReLU); the NAS ablations and tests use them to check that
// the framework is not hard-wired to one operator set.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace dcn {

/// Average pooling with square kernel and stride over NCHW input.
class AvgPool2d : public Module {
 public:
  AvgPool2d(std::int64_t kernel_size, std::int64_t stride);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }

 private:
  std::int64_t kernel_size_;
  std::int64_t stride_;
  Shape input_shape_;
};

/// LeakyReLU: x for x > 0, slope * x otherwise.
class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor cached_input_;
  bool has_cached_input_ = false;
};

/// Batch normalization over the channel axis of NCHW input (BatchNorm2d).
/// Training mode normalizes with batch statistics and updates running
/// estimates; eval mode uses the running estimates.
class BatchNorm2d : public Module {
 public:
  BatchNorm2d(std::int64_t channels, double momentum = 0.1,
              double epsilon = 1e-5);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "BatchNorm2d"; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::int64_t channels_;
  double momentum_;
  double epsilon_;
  Tensor gamma_;
  Tensor beta_;
  Tensor gamma_grad_;
  Tensor beta_grad_;
  Tensor running_mean_;
  Tensor running_var_;

  // Forward cache for backward.
  Tensor cached_input_;
  Tensor cached_normalized_;
  Tensor batch_mean_;
  Tensor batch_inv_std_;
  bool has_cache_ = false;
};

}  // namespace dcn
