// Neural-network module abstraction.
//
// Modules implement an explicit forward/backward pair (layer-wise
// backpropagation rather than a general autograd tape): forward caches
// whatever its backward needs, backward accumulates parameter gradients and
// returns the gradient with respect to its input. This matches the strictly
// feed-forward SPP-Net topology of the paper and keeps memory behaviour
// predictable on CPU.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace dcn {

/// Non-owning handle to one learnable parameter and its gradient buffer.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Base class for all layers.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Compute the layer output; must be called before backward.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dL/d(output), accumulate parameter grads and return dL/d(input).
  /// Requires a preceding forward with the matching input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> parameters() { return {}; }

  /// Layer type name for diagnostics ("Conv2d", "SPP", ...).
  virtual std::string name() const = 0;

  /// Toggle training mode (affects Dropout only).
  virtual void set_training(bool training) { training_ = training; }
  bool is_training() const { return training_; }

  /// Zero all parameter gradients.
  void zero_grad();

  /// Total number of learnable scalars.
  std::int64_t num_parameters();

 protected:
  bool training_ = true;
};

}  // namespace dcn
