#include "nn/module.hpp"

namespace dcn {

void Module::zero_grad() {
  for (ParamRef& p : parameters()) {
    if (p.grad != nullptr) p.grad->zero();
  }
}

std::int64_t Module::num_parameters() {
  std::int64_t n = 0;
  for (const ParamRef& p : parameters()) n += p.value->numel();
  return n;
}

}  // namespace dcn
