// Stateless activation layers.
#pragma once

#include "nn/module.hpp"

namespace dcn {

class Rng;

/// Rectified linear unit.
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
  bool has_cached_input_ = false;
};

/// Reshape NCHW feature maps to [N, C*H*W] (and route gradients back).
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

/// Inverted dropout; identity in eval mode.
class Dropout : public Module {
 public:
  Dropout(double p, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  double p_;
  Rng* rng_;
  Tensor mask_;
  bool has_mask_ = false;
};

}  // namespace dcn
