// Numerical gradient checking.
//
// Validates every layer's analytic backward against central finite
// differences through an arbitrary scalar loss. Used by the test suite as a
// property check over random shapes and layer configurations.
#pragma once

#include <functional>

#include "nn/module.hpp"

namespace dcn {

struct GradCheckResult {
  bool ok = false;
  /// Worst relative error observed over all checked entries.
  double max_rel_error = 0.0;
  /// Which entry failed (diagnostic).
  std::string detail;
};

/// Check dL/d(input) of `layer` at `input` where L = 0.5 * ||f(x)||^2
/// (a smooth canonical loss). Checks up to `max_entries` randomly chosen
/// input coordinates with step `eps` and tolerance `tol` on
/// |analytic - numeric| / max(1, |analytic|, |numeric|).
GradCheckResult check_input_gradient(Module& layer, const Tensor& input,
                                     double eps = 1e-3, double tol = 5e-2,
                                     int max_entries = 64,
                                     std::uint64_t seed = 42);

/// Same check for every parameter gradient of `layer`.
GradCheckResult check_parameter_gradients(Module& layer, const Tensor& input,
                                          double eps = 1e-3,
                                          double tol = 5e-2,
                                          int max_entries = 64,
                                          std::uint64_t seed = 42);

}  // namespace dcn
