// Spatial Pyramid Pooling layer (He et al. 2015).
//
// The SPP layer maps an NCHW feature map of *any* spatial size to a fixed
// [N, C * sum(level_i^2)] vector by adaptive-max-pooling to each pyramid
// level and concatenating the flattened results. The paper's SPP_{l,2,1}
// notation denotes the pyramid {l, 2, 1}; the NAS search space varies only
// the first (finest) level. The per-level pools form parallel branches —
// exactly the branched block structure IOS parallelizes.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"
#include "nn/pool.hpp"

namespace dcn {

class SpatialPyramidPool : public Module {
 public:
  /// `levels` are the pyramid grid sizes, e.g. {4, 2, 1}.
  explicit SpatialPyramidPool(std::vector<std::int64_t> levels);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "SPP"; }

  const std::vector<std::int64_t>& levels() const { return levels_; }

  /// Output features per input channel: sum of level^2.
  std::int64_t features_per_channel() const;

  /// Total output features for `channels` input channels.
  std::int64_t output_features(std::int64_t channels) const {
    return channels * features_per_channel();
  }

 private:
  std::vector<std::int64_t> levels_;
  std::vector<std::unique_ptr<AdaptiveMaxPool2d>> pools_;
  Shape input_shape_;
};

/// The paper's pyramid convention: first level L plus fixed coarse levels
/// {2, 1}; L in {1..5} per the NAS search space. L <= 2 degenerates to the
/// unique levels {2, 1} or {1} accordingly (duplicates are kept distinct —
/// they are distinct branches at runtime, matching the reference model).
std::vector<std::int64_t> spp_levels_from_first(std::int64_t first_level);

}  // namespace dcn
