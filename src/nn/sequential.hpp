// Sequential container.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace dcn {

/// Runs child modules in order; backward replays them in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Append a layer; returns a reference to it for configuration.
  Module& add(std::unique_ptr<Module> layer);

  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "Sequential"; }
  void set_training(bool training) override;

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i);

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace dcn
