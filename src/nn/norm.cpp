#include "nn/norm.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dcn {

AvgPool2d::AvgPool2d(std::int64_t kernel_size, std::int64_t stride)
    : kernel_size_(kernel_size), stride_(stride) {
  DCN_CHECK(kernel_size > 0 && stride > 0) << "avg pool geometry";
}

Tensor AvgPool2d::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 4) << "AvgPool2d expects NCHW";
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t oh = (h - kernel_size_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_size_) / stride_ + 1;
  DCN_CHECK(oh > 0 && ow > 0) << "AvgPool2d output empty";
  input_shape_ = input.shape();

  Tensor output(Shape{batch, channels, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_size_ * kernel_size_);
  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float acc = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_size_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_size_; ++kx) {
              acc += plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)];
            }
          }
          output[out_idx] = acc * inv;
        }
      }
    }
  }
  return output;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  DCN_CHECK(input_shape_.rank() == 4) << "AvgPool2d::backward without forward";
  const std::int64_t batch = input_shape_.dim(0);
  const std::int64_t channels = input_shape_.dim(1);
  const std::int64_t h = input_shape_.dim(2);
  const std::int64_t w = input_shape_.dim(3);
  const std::int64_t oh = (h - kernel_size_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_size_) / stride_ + 1;
  DCN_CHECK(grad_output.shape() == Shape({batch, channels, oh, ow}))
      << "AvgPool2d grad shape";

  Tensor grad_input(input_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_size_ * kernel_size_);
  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      float* plane = grad_input.data() + (n * channels + c) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const float g = grad_output[out_idx] * inv;
          for (std::int64_t ky = 0; ky < kernel_size_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_size_; ++kx) {
              plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

LeakyReLU::LeakyReLU(float negative_slope) : slope_(negative_slope) {
  DCN_CHECK(negative_slope >= 0.0f && negative_slope < 1.0f)
      << "leaky slope " << negative_slope;
}

Tensor LeakyReLU::forward(const Tensor& input) {
  cached_input_ = input;
  has_cached_input_ = true;
  Tensor out(input.shape());
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = input[i] > 0.0f ? input[i] : slope_ * input[i];
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  DCN_CHECK(has_cached_input_) << "LeakyReLU::backward without forward";
  DCN_CHECK(grad_output.shape() == cached_input_.shape())
      << "LeakyReLU grad shape";
  Tensor grad_input(cached_input_.shape());
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    grad_input[i] =
        cached_input_[i] > 0.0f ? grad_output[i] : slope_ * grad_output[i];
  }
  return grad_input;
}

BatchNorm2d::BatchNorm2d(std::int64_t channels, double momentum,
                         double epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Shape{channels}, 1.0f),
      beta_(Shape{channels}),
      gamma_grad_(Shape{channels}),
      beta_grad_(Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}, 1.0f) {
  DCN_CHECK(channels > 0) << "batchnorm channels";
  DCN_CHECK(momentum > 0.0 && momentum <= 1.0) << "batchnorm momentum";
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 4 && input.dim(1) == channels_)
      << "BatchNorm2d expects NCHW with " << channels_ << " channels, got "
      << input.shape().to_string();
  const std::int64_t batch = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t per_channel = batch * h * w;
  DCN_CHECK(per_channel > 0) << "empty batchnorm input";

  Tensor mean(Shape{channels_});
  Tensor inv_std(Shape{channels_});
  if (is_training()) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      double acc = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* plane = input.data() + (n * channels_ + c) * h * w;
        for (std::int64_t i = 0; i < h * w; ++i) acc += plane[i];
      }
      const double mu = acc / per_channel;
      double var_acc = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* plane = input.data() + (n * channels_ + c) * h * w;
        for (std::int64_t i = 0; i < h * w; ++i) {
          const double d = plane[i] - mu;
          var_acc += d * d;
        }
      }
      const double var = var_acc / per_channel;
      mean[c] = static_cast<float>(mu);
      inv_std[c] = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
      running_mean_[c] = static_cast<float>(
          (1.0 - momentum_) * running_mean_[c] + momentum_ * mu);
      running_var_[c] = static_cast<float>(
          (1.0 - momentum_) * running_var_[c] + momentum_ * var);
    }
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      mean[c] = running_mean_[c];
      inv_std[c] = static_cast<float>(
          1.0 / std::sqrt(static_cast<double>(running_var_[c]) + epsilon_));
    }
  }

  Tensor normalized(input.shape());
  Tensor output(input.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* src = input.data() + (n * channels_ + c) * h * w;
      float* nrm = normalized.data() + (n * channels_ + c) * h * w;
      float* out = output.data() + (n * channels_ + c) * h * w;
      const float mu = mean[c];
      const float is = inv_std[c];
      const float g = gamma_[c];
      const float b = beta_[c];
      for (std::int64_t i = 0; i < h * w; ++i) {
        nrm[i] = (src[i] - mu) * is;
        out[i] = g * nrm[i] + b;
      }
    }
  }
  cached_input_ = input;
  cached_normalized_ = normalized;
  batch_mean_ = mean;
  batch_inv_std_ = inv_std;
  has_cache_ = true;
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  DCN_CHECK(has_cache_) << "BatchNorm2d::backward without forward";
  DCN_CHECK(grad_output.shape() == cached_input_.shape())
      << "BatchNorm2d grad shape";
  const std::int64_t batch = cached_input_.dim(0);
  const std::int64_t h = cached_input_.dim(2);
  const std::int64_t w = cached_input_.dim(3);
  const std::int64_t m = batch * h * w;

  Tensor grad_input(cached_input_.shape());
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Accumulate per-channel reductions.
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * h * w;
      const float* xh =
          cached_normalized_.data() + (n * channels_ + c) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_grad_[c] += static_cast<float>(sum_dy_xhat);
    beta_grad_[c] += static_cast<float>(sum_dy);

    if (is_training()) {
      // Full batch-statistics gradient:
      // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - xhat * sum(dy*xhat))
      const double scale =
          static_cast<double>(gamma_[c]) * batch_inv_std_[c] / m;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* dy = grad_output.data() + (n * channels_ + c) * h * w;
        const float* xh =
            cached_normalized_.data() + (n * channels_ + c) * h * w;
        float* dx = grad_input.data() + (n * channels_ + c) * h * w;
        for (std::int64_t i = 0; i < h * w; ++i) {
          dx[i] = static_cast<float>(
              scale * (m * static_cast<double>(dy[i]) - sum_dy -
                       static_cast<double>(xh[i]) * sum_dy_xhat));
        }
      }
    } else {
      // Eval mode: running stats are constants.
      const float scale = gamma_[c] * batch_inv_std_[c];
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* dy = grad_output.data() + (n * channels_ + c) * h * w;
        float* dx = grad_input.data() + (n * channels_ + c) * h * w;
        for (std::int64_t i = 0; i < h * w; ++i) dx[i] = scale * dy[i];
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> BatchNorm2d::parameters() {
  return {{"gamma", &gamma_, &gamma_grad_}, {"beta", &beta_, &beta_grad_}};
}

}  // namespace dcn
