#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn {
namespace {

// L(x) = 0.5 * ||f(x)||^2, a smooth scalarization whose gradient wrt the
// layer output is the output itself.
double canonical_loss(Module& layer, const Tensor& input) {
  const Tensor out = layer.forward(input);
  double acc = 0.0;
  const std::int64_t n = out.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    acc += 0.5 * static_cast<double>(out[i]) * out[i];
  }
  return acc;
}

double rel_error(double analytic, double numeric) {
  const double denom =
      std::max({1.0, std::abs(analytic), std::abs(numeric)});
  return std::abs(analytic - numeric) / denom;
}

}  // namespace

GradCheckResult check_input_gradient(Module& layer, const Tensor& input,
                                     double eps, double tol, int max_entries,
                                     std::uint64_t seed) {
  GradCheckResult result;
  result.ok = true;

  // Analytic pass.
  const Tensor out = layer.forward(input);
  const Tensor analytic = layer.backward(out);
  DCN_CHECK(analytic.shape() == input.shape())
      << "backward returned wrong input-grad shape "
      << analytic.shape().to_string();

  Rng rng(seed);
  Tensor x = input;
  const std::int64_t n = input.numel();
  const int checks = static_cast<int>(
      std::min<std::int64_t>(n, max_entries));
  for (int k = 0; k < checks; ++k) {
    const std::int64_t i =
        n <= max_entries ? k : rng.uniform_int(0, n - 1);
    const float saved = x[i];
    x[i] = saved + static_cast<float>(eps);
    const double lp = canonical_loss(layer, x);
    x[i] = saved - static_cast<float>(eps);
    const double lm = canonical_loss(layer, x);
    x[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double err = rel_error(analytic[i], numeric);
    result.max_rel_error = std::max(result.max_rel_error, err);
    if (err > tol) {
      result.ok = false;
      std::ostringstream os;
      os << "input grad entry " << i << ": analytic " << analytic[i]
         << " vs numeric " << numeric << " (rel err " << err << ")";
      result.detail = os.str();
      return result;
    }
  }
  return result;
}

GradCheckResult check_parameter_gradients(Module& layer, const Tensor& input,
                                          double eps, double tol,
                                          int max_entries,
                                          std::uint64_t seed) {
  GradCheckResult result;
  result.ok = true;

  layer.zero_grad();
  const Tensor out = layer.forward(input);
  (void)layer.backward(out);

  Rng rng(seed);
  for (ParamRef& p : layer.parameters()) {
    Tensor& value = *p.value;
    const Tensor& analytic = *p.grad;
    const std::int64_t n = value.numel();
    const int checks = static_cast<int>(
        std::min<std::int64_t>(n, max_entries));
    for (int k = 0; k < checks; ++k) {
      const std::int64_t i =
          n <= max_entries ? k : rng.uniform_int(0, n - 1);
      const float saved = value[i];
      value[i] = saved + static_cast<float>(eps);
      const double lp = canonical_loss(layer, input);
      value[i] = saved - static_cast<float>(eps);
      const double lm = canonical_loss(layer, input);
      value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double err = rel_error(analytic[i], numeric);
      result.max_rel_error = std::max(result.max_rel_error, err);
      if (err > tol) {
        result.ok = false;
        std::ostringstream os;
        os << "param '" << p.name << "' entry " << i << ": analytic "
           << analytic[i] << " vs numeric " << numeric << " (rel err " << err
           << ")";
        result.detail = os.str();
        return result;
      }
    }
  }
  return result;
}

}  // namespace dcn
