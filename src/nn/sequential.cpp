#include "nn/sequential.hpp"

#include "core/error.hpp"

namespace dcn {

Module& Sequential::add(std::unique_ptr<Module> layer) {
  DCN_CHECK(layer != nullptr) << "null layer";
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamRef> Sequential::parameters() {
  std::vector<ParamRef> params;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (ParamRef p : layers_[i]->parameters()) {
      p.name = "layer" + std::to_string(i) + "." + layers_[i]->name() + "." +
               p.name;
      params.push_back(p);
    }
  }
  return params;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

Module& Sequential::layer(std::size_t i) {
  DCN_CHECK(i < layers_.size()) << "layer index " << i;
  return *layers_[i];
}

}  // namespace dcn
