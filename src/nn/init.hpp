// Parameter initialization schemes.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace dcn {

class Rng;

/// He/Kaiming normal init for ReLU networks: N(0, sqrt(2 / fan_in)).
void kaiming_normal(Tensor& weight, std::int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform init: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& weight, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng);

}  // namespace dcn
