// Stochastic gradient descent with momentum and weight decay.
//
// Hyper-parameters default to the paper's training setup (§6.1):
// lr = 0.005, weight decay = 0.0005, momentum = 0.9.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace dcn {

struct SgdConfig {
  double learning_rate = 0.005;
  double momentum = 0.9;
  double weight_decay = 0.0005;
  /// Optional gradient-norm clipping; <= 0 disables.
  double clip_norm = 0.0;
};

/// PyTorch-convention SGD: v = mu*v + (g + wd*p); p -= lr * v.
class Sgd {
 public:
  Sgd(std::vector<ParamRef> params, SgdConfig config);

  /// Apply one update from the accumulated gradients.
  void step();

  /// Zero all parameter gradients.
  void zero_grad();

  /// Global L2 norm of all gradients (diagnostic; also used by clipping).
  double grad_norm() const;

  SgdConfig& config() { return config_; }
  const SgdConfig& config() const { return config_; }

 private:
  std::vector<ParamRef> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

}  // namespace dcn
