#include "nn/linear.hpp"

#include "core/error.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace dcn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      weight_grad_(weight_.shape()),
      bias_grad_(bias_.shape()) {
  DCN_CHECK(in_features > 0 && out_features > 0) << "linear features";
  kaiming_normal(weight_, in_features, rng);
  bias_.zero();
}

Tensor Linear::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 2) << "Linear expects [N, in], got "
                               << input.shape().to_string();
  DCN_CHECK(input.dim(1) == in_features_)
      << "Linear in_features " << input.dim(1) << " != " << in_features_;
  const std::int64_t batch = input.dim(0);
  Tensor output(Shape{batch, out_features_});
  // y[N, out] = x[N, in] * W[out, in]^T + b, the per-feature bias fused
  // into the GEMM's epilogue instead of a second sweep over the output.
  GemmEpilogue epilogue;
  epilogue.col_bias = bias_.data();
  sgemm_ex(false, true, batch, out_features_, in_features_, 1.0f,
           input.data(), in_features_, weight_.data(), in_features_, 0.0f,
           output.data(), out_features_, epilogue);
  cached_input_ = input;
  has_cached_input_ = true;
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  DCN_CHECK(has_cached_input_) << "Linear::backward without forward";
  const std::int64_t batch = cached_input_.dim(0);
  DCN_CHECK(grad_output.shape() == Shape({batch, out_features_}))
      << "Linear grad shape " << grad_output.shape().to_string();
  // grad_W[out, in] += go[N, out]^T * x[N, in]
  sgemm(true, false, out_features_, in_features_, batch, 1.0f,
        grad_output.data(), out_features_, cached_input_.data(), in_features_,
        1.0f, weight_grad_.data(), in_features_);
  // grad_b[out] += column sums of go
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = grad_output.data() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) bias_grad_[o] += row[o];
  }
  // grad_x[N, in] = go[N, out] * W[out, in]
  Tensor grad_input(cached_input_.shape());
  matmul(false, false, batch, in_features_, out_features_, grad_output.data(),
         weight_.data(), grad_input.data());
  return grad_input;
}

std::vector<ParamRef> Linear::parameters() {
  return {{"weight", &weight_, &weight_grad_},
          {"bias", &bias_, &bias_grad_}};
}

}  // namespace dcn
