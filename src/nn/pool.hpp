// Max pooling layers (fixed-window and adaptive).
//
// AdaptiveMaxPool2d uses PyTorch's bin convention
// (start = floor(i*H/out), end = ceil((i+1)*H/out)) so the SPP layer's
// fixed-size output is produced for any input spatial size — the property
// the paper relies on for variable-sized orthophoto patches.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace dcn {

/// MaxPool2d with square kernel and stride (paper's P_{size,stride}).
class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel_size, std::int64_t stride);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

  std::int64_t kernel_size() const { return kernel_size_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t kernel_size_;
  std::int64_t stride_;
  Shape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Adaptive max pool to a fixed out_h x out_w grid.
class AdaptiveMaxPool2d : public Module {
 public:
  AdaptiveMaxPool2d(std::int64_t out_h, std::int64_t out_w);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AdaptiveMaxPool2d"; }

  std::int64_t out_h() const { return out_h_; }
  std::int64_t out_w() const { return out_w_; }

 private:
  std::int64_t out_h_;
  std::int64_t out_w_;
  Shape input_shape_;
  std::vector<std::int64_t> argmax_;
};

}  // namespace dcn
