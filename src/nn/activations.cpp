#include "nn/activations.hpp"

#include "core/error.hpp"
#include "core/rng.hpp"
#include "tensor/ops.hpp"

namespace dcn {

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  has_cached_input_ = true;
  return relu(input);
}

Tensor ReLU::backward(const Tensor& grad_output) {
  DCN_CHECK(has_cached_input_) << "ReLU::backward without forward";
  Tensor grad_input(cached_input_.shape());
  relu_backward(cached_input_, grad_output, grad_input);
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input) {
  DCN_CHECK(input.rank() >= 2) << "Flatten expects rank >= 2";
  input_shape_ = input.shape();
  const std::int64_t batch = input.dim(0);
  return input.reshaped(Shape{batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  DCN_CHECK(input_shape_.rank() > 0) << "Flatten::backward without forward";
  return grad_output.reshaped(input_shape_);
}

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(&rng) {
  DCN_CHECK(p >= 0.0 && p < 1.0) << "dropout p must be in [0, 1)";
}

Tensor Dropout::forward(const Tensor& input) {
  if (!is_training() || p_ == 0.0) {
    has_mask_ = false;
    return input;
  }
  mask_ = Tensor(input.shape());
  has_mask_ = true;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  Tensor out(input.shape());
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float m = rng_->bernoulli(p_) ? 0.0f : keep_scale;
    mask_[i] = m;
    out[i] = input[i] * m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!has_mask_) return grad_output;
  return mul(grad_output, mask_);
}

}  // namespace dcn
