#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dcn {

LossResult bce_with_logits(const Tensor& logits, const Tensor& targets) {
  DCN_CHECK(logits.shape() == targets.shape())
      << "bce shapes " << logits.shape().to_string() << " vs "
      << targets.shape().to_string();
  const std::int64_t n = logits.numel();
  DCN_CHECK(n > 0) << "bce over empty batch";
  LossResult res;
  res.grad = Tensor(logits.shape());
  double total = 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const double x = logits[i];
    const double t = targets[i];
    // log(1 + e^{-|x|}) formulation is stable for both signs.
    const double loss = std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::abs(x)));
    total += loss;
    const double sig = 1.0 / (1.0 + std::exp(-x));
    res.grad[i] = static_cast<float>((sig - t) * inv_n);
  }
  res.value = total * inv_n;
  return res;
}

LossResult smooth_l1(const Tensor& pred, const Tensor& target,
                     const Tensor& mask) {
  DCN_CHECK(pred.shape() == target.shape()) << "smooth_l1 shapes";
  DCN_CHECK(pred.rank() == 2) << "smooth_l1 expects [N, D]";
  const std::int64_t rows = pred.dim(0);
  const std::int64_t cols = pred.dim(1);
  DCN_CHECK(mask.numel() == rows) << "smooth_l1 mask length";

  double active = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) active += mask[r] != 0.0f ? 1.0 : 0.0;
  const double denom = active > 0.0 ? active : 1.0;

  LossResult res;
  res.grad = Tensor(pred.shape());
  double total = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    if (mask[r] == 0.0f) continue;
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int64_t i = r * cols + c;
      const double d = static_cast<double>(pred[i]) - target[i];
      if (std::abs(d) < 1.0) {
        total += 0.5 * d * d;
        res.grad[i] = static_cast<float>(d / denom);
      } else {
        total += std::abs(d) - 0.5;
        res.grad[i] = static_cast<float>((d > 0 ? 1.0 : -1.0) / denom);
      }
    }
  }
  res.value = total / denom;
  return res;
}

LossResult mse(const Tensor& pred, const Tensor& target) {
  DCN_CHECK(pred.shape() == target.shape()) << "mse shapes";
  const std::int64_t n = pred.numel();
  DCN_CHECK(n > 0) << "mse over empty tensors";
  LossResult res;
  res.grad = Tensor(pred.shape());
  double total = 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    total += d * d;
    res.grad[i] = static_cast<float>(2.0 * d * inv_n);
  }
  res.value = total * inv_n;
  return res;
}

LossResult detection_loss(const Tensor& head_out, const Tensor& labels,
                          const Tensor& boxes, double box_weight) {
  DCN_CHECK(head_out.rank() == 2 && head_out.dim(1) == 5)
      << "detection head must be [N, 5], got "
      << head_out.shape().to_string();
  const std::int64_t n = head_out.dim(0);
  DCN_CHECK(labels.numel() == n) << "labels length";
  DCN_CHECK(boxes.shape() == Shape({n, 4})) << "boxes shape";

  Tensor logits(Shape{n});
  Tensor box_pred(Shape{n, 4});
  for (std::int64_t i = 0; i < n; ++i) {
    logits[i] = head_out[i * 5];
    for (std::int64_t c = 0; c < 4; ++c) {
      box_pred[i * 4 + c] = head_out[i * 5 + 1 + c];
    }
  }

  const LossResult cls = bce_with_logits(logits, labels);
  const LossResult box = smooth_l1(box_pred, boxes, labels);

  LossResult res;
  res.value = cls.value + box_weight * box.value;
  res.grad = Tensor(head_out.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    res.grad[i * 5] = cls.grad[i];
    for (std::int64_t c = 0; c < 4; ++c) {
      res.grad[i * 5 + 1 + c] =
          static_cast<float>(box_weight) * box.grad[i * 4 + c];
    }
  }
  return res;
}

}  // namespace dcn
