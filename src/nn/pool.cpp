#include "nn/pool.hpp"

#include <limits>

#include "core/error.hpp"

namespace dcn {

MaxPool2d::MaxPool2d(std::int64_t kernel_size, std::int64_t stride)
    : kernel_size_(kernel_size), stride_(stride) {
  DCN_CHECK(kernel_size > 0 && stride > 0) << "pool geometry";
}

Tensor MaxPool2d::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 4) << "MaxPool2d expects NCHW";
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t oh = (h - kernel_size_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_size_) / stride_ + 1;
  DCN_CHECK(oh > 0 && ow > 0)
      << "MaxPool2d output empty for " << input.shape().to_string();

  Tensor output(Shape{batch, channels, oh, ow});
  argmax_.assign(static_cast<std::size_t>(output.numel()), 0);
  input_shape_ = input.shape();

  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * h * w;
      const std::int64_t plane_base = (n * channels + c) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel_size_; ++ky) {
            const std::int64_t iy = oy * stride_ + ky;
            for (std::int64_t kx = 0; kx < kernel_size_; ++kx) {
              const std::int64_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          output[out_idx] = best;
          argmax_[static_cast<std::size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  DCN_CHECK(!argmax_.empty()) << "MaxPool2d::backward without forward";
  DCN_CHECK(grad_output.numel() ==
            static_cast<std::int64_t>(argmax_.size()))
      << "MaxPool2d grad numel mismatch";
  Tensor grad_input(input_shape_);
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    grad_input[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

AdaptiveMaxPool2d::AdaptiveMaxPool2d(std::int64_t out_h, std::int64_t out_w)
    : out_h_(out_h), out_w_(out_w) {
  DCN_CHECK(out_h > 0 && out_w > 0) << "adaptive pool output size";
}

Tensor AdaptiveMaxPool2d::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 4) << "AdaptiveMaxPool2d expects NCHW";
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  DCN_CHECK(h >= 1 && w >= 1) << "empty input plane";

  Tensor output(Shape{batch, channels, out_h_, out_w_});
  argmax_.assign(static_cast<std::size_t>(output.numel()), 0);
  input_shape_ = input.shape();

  auto bin_start = [](std::int64_t i, std::int64_t in, std::int64_t out) {
    return (i * in) / out;
  };
  auto bin_end = [](std::int64_t i, std::int64_t in, std::int64_t out) {
    return ((i + 1) * in + out - 1) / out;
  };

  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * h * w;
      const std::int64_t plane_base = (n * channels + c) * h * w;
      for (std::int64_t oy = 0; oy < out_h_; ++oy) {
        const std::int64_t y0 = bin_start(oy, h, out_h_);
        const std::int64_t y1 = bin_end(oy, h, out_h_);
        for (std::int64_t ox = 0; ox < out_w_; ++ox, ++out_idx) {
          const std::int64_t x0 = bin_start(ox, w, out_w_);
          const std::int64_t x1 = bin_end(ox, w, out_w_);
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = plane_base + y0 * w + x0;
          for (std::int64_t iy = y0; iy < y1; ++iy) {
            for (std::int64_t ix = x0; ix < x1; ++ix) {
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          output[out_idx] = best;
          argmax_[static_cast<std::size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
  return output;
}

Tensor AdaptiveMaxPool2d::backward(const Tensor& grad_output) {
  DCN_CHECK(!argmax_.empty()) << "AdaptiveMaxPool2d::backward without forward";
  DCN_CHECK(grad_output.numel() ==
            static_cast<std::int64_t>(argmax_.size()))
      << "AdaptiveMaxPool2d grad numel mismatch";
  Tensor grad_input(input_shape_);
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    grad_input[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

}  // namespace dcn
