// 2-D convolution layer (NCHW), lowered onto im2col + GEMM.
#pragma once

#include "nn/module.hpp"
#include "tensor/im2col.hpp"

namespace dcn {

class Rng;

/// Convolution over NCHW inputs. Matches the paper's C_{filters,size,stride}
/// notation; padding defaults to "same-ish" (kernel/2) like the reference
/// implementation so spatial size is preserved for stride 1.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel_size, std::int64_t stride, std::int64_t padding,
         Rng& rng);

  /// Convenience: padding = kernel_size / 2.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel_size, std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  std::string name() const override { return "Conv2d"; }

  /// Output spatial size for a given input height/width.
  std::pair<std::int64_t, std::int64_t> output_hw(std::int64_t h,
                                                  std::int64_t w) const;

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel_size() const { return kernel_size_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  ConvGeometry geometry(std::int64_t h, std::int64_t w) const;

  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_size_;
  std::int64_t stride_;
  std::int64_t padding_;

  Tensor weight_;       // [out_c, in_c, k, k]
  Tensor bias_;         // [out_c]
  Tensor weight_grad_;  // same shape as weight_
  Tensor bias_grad_;    // same shape as bias_

  // Per-chunk weight/bias gradient partials for the deterministic parallel
  // backward pass; retained between steps to avoid per-call allocation.
  std::vector<float> grad_scratch_;

  Tensor cached_input_;  // saved by forward for the backward pass
  bool has_cached_input_ = false;
};

}  // namespace dcn
