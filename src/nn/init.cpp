#include "nn/init.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn {

void kaiming_normal(Tensor& weight, std::int64_t fan_in, Rng& rng) {
  DCN_CHECK(fan_in > 0) << "kaiming fan_in";
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight.fill_normal(rng, 0.0f, stddev);
}

void xavier_uniform(Tensor& weight, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng) {
  DCN_CHECK(fan_in > 0 && fan_out > 0) << "xavier fans";
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  weight.fill_uniform(rng, -a, a);
}

}  // namespace dcn
