#include "nn/sgd.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dcn {

Sgd::Sgd(std::vector<ParamRef> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  DCN_CHECK(config_.learning_rate > 0.0) << "learning rate must be positive";
  DCN_CHECK(config_.momentum >= 0.0 && config_.momentum < 1.0)
      << "momentum out of range";
  velocity_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    DCN_CHECK(p.value != nullptr && p.grad != nullptr)
        << "parameter '" << p.name << "' missing value/grad";
    DCN_CHECK(p.value->shape() == p.grad->shape())
        << "parameter '" << p.name << "' grad shape mismatch";
    velocity_.emplace_back(p.value->shape());
  }
}

double Sgd::grad_norm() const {
  double acc = 0.0;
  for (const ParamRef& p : params_) {
    const std::int64_t n = p.grad->numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const double g = (*p.grad)[i];
      acc += g * g;
    }
  }
  return std::sqrt(acc);
}

void Sgd::step() {
  double scale = 1.0;
  if (config_.clip_norm > 0.0) {
    const double gn = grad_norm();
    if (gn > config_.clip_norm) scale = config_.clip_norm / gn;
  }
  const float lr = static_cast<float>(config_.learning_rate);
  const float mu = static_cast<float>(config_.momentum);
  const float wd = static_cast<float>(config_.weight_decay);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = *params_[k].value;
    Tensor& g = *params_[k].grad;
    Tensor& v = velocity_[k];
    const std::int64_t n = p.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = static_cast<float>(scale) * g[i] + wd * p[i];
      v[i] = mu * v[i] + grad;
      p[i] -= lr * v[i];
    }
  }
}

void Sgd::zero_grad() {
  for (const ParamRef& p : params_) p.grad->zero();
}

}  // namespace dcn
