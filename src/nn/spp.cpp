#include "nn/spp.hpp"

#include "core/error.hpp"

namespace dcn {

std::vector<std::int64_t> spp_levels_from_first(std::int64_t first_level) {
  DCN_CHECK(first_level >= 1) << "SPP first level must be >= 1";
  std::vector<std::int64_t> levels{first_level};
  if (first_level > 2) levels.push_back(2);
  if (first_level > 1) levels.push_back(1);
  return levels;
}

SpatialPyramidPool::SpatialPyramidPool(std::vector<std::int64_t> levels)
    : levels_(std::move(levels)) {
  DCN_CHECK(!levels_.empty()) << "SPP needs at least one pyramid level";
  for (std::int64_t l : levels_) {
    DCN_CHECK(l >= 1) << "SPP level " << l << " must be >= 1";
    pools_.push_back(std::make_unique<AdaptiveMaxPool2d>(l, l));
  }
}

std::int64_t SpatialPyramidPool::features_per_channel() const {
  std::int64_t n = 0;
  for (std::int64_t l : levels_) n += l * l;
  return n;
}

Tensor SpatialPyramidPool::forward(const Tensor& input) {
  DCN_CHECK(input.rank() == 4) << "SPP expects NCHW, got "
                               << input.shape().to_string();
  input_shape_ = input.shape();
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);

  Tensor output(Shape{batch, output_features(channels)});
  std::int64_t offset = 0;
  for (std::size_t b = 0; b < pools_.size(); ++b) {
    const Tensor pooled = pools_[b]->forward(input);  // [N, C, l, l]
    const std::int64_t feat = channels * levels_[b] * levels_[b];
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* src = pooled.data() + n * feat;
      float* dst = output.data() + n * output_features(channels) + offset;
      for (std::int64_t i = 0; i < feat; ++i) dst[i] = src[i];
    }
    offset += feat;
  }
  return output;
}

Tensor SpatialPyramidPool::backward(const Tensor& grad_output) {
  DCN_CHECK(input_shape_.rank() == 4) << "SPP::backward without forward";
  const std::int64_t batch = input_shape_.dim(0);
  const std::int64_t channels = input_shape_.dim(1);
  DCN_CHECK(grad_output.shape() ==
            Shape({batch, output_features(channels)}))
      << "SPP grad shape " << grad_output.shape().to_string();

  Tensor grad_input(input_shape_);
  std::int64_t offset = 0;
  for (std::size_t b = 0; b < pools_.size(); ++b) {
    const std::int64_t l = levels_[b];
    const std::int64_t feat = channels * l * l;
    Tensor branch_grad(Shape{batch, channels, l, l});
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* src =
          grad_output.data() + n * output_features(channels) + offset;
      float* dst = branch_grad.data() + n * feat;
      for (std::int64_t i = 0; i < feat; ++i) dst[i] = src[i];
    }
    const Tensor gi = pools_[b]->backward(branch_grad);
    for (std::int64_t i = 0; i < grad_input.numel(); ++i) {
      grad_input[i] += gi[i];
    }
    offset += feat;
  }
  return grad_input;
}

}  // namespace dcn
