// Early-exit cascade scan of a whole watershed.
//
// The paper's production shape is not per-patch queries but continuous
// scanning of entire watersheds — overwhelmingly negative tiles — under a
// hard accuracy constraint. Following the input-adaptive compute argument
// of latency-aware spatial-wise dynamic networks, the scan spends
// full-model inference only where the input demands it:
//
//   stage 1  a tiny (NAS-selected, usually int8) screener scores every
//            tile from geo::make_tiles; tiles below the confidence
//            threshold are rejected — no further compute;
//   stage 2  the full-accuracy SPP-Net confirms the survivors; confirmed
//            detections map to world coordinates via detection_to_world
//            and are deduplicated across tile overlap.
//
// Accuracy accounting treats a rejected tile as a zero-confidence
// detection, so the cascade's AP is measured on *all* tiles against the
// same ground truth as the full model's — the screener can only lose
// recall, never hide it (see calibrate.hpp for the constrained threshold
// choice).
//
// Determinism contract: a scan is a pure function of (photo, crossings,
// model weights, options). Inference runs on the tensor engine, which is
// bit-identical across thread counts, so scan_to_csv / detections_to_csv
// reproduce byte-for-byte at any `jobs` — and trivially at any serving
// replica count, because detection results never flow through the serving
// simulation (pipeline.hpp times the scan; it does not score it).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "geo/crossings.hpp"
#include "geo/render.hpp"
#include "geo/tiling.hpp"
#include "nn/module.hpp"

namespace dcn::scan {

struct CascadeOptions {
  std::int64_t tile_size = 48;
  /// Fraction of the tile side shared between neighbors (make_tiles).
  double overlap = 0.25;
  /// Stage-1 gate: tiles whose screener confidence falls below this never
  /// reach the full model. Calibrated, not hand-picked (calibrate.hpp).
  double threshold = 0.5;
  /// Full-model confidence above which a survivor emits a detection.
  double detect_threshold = 0.5;
  /// Inference minibatch for both stages (results are batch-invariant;
  /// this is purely a working-set knob).
  std::int64_t batch_size = 32;
  /// World-space dedup radius (meters): of two confirmed detections
  /// within it, only the higher-confidence one survives.
  double dedup_radius = 24.0;
  /// Pixel distance within which a detection matches a ground-truth
  /// crossing (recall bookkeeping only; AP uses box IoU).
  double match_radius = 16.0;
  /// Run the full model on *every* tile, not just survivors. Calibration
  /// and AP-reference mode: per-tile full-model scores for any threshold,
  /// plus the full-model AP the constraint is measured against.
  bool evaluate_all = false;
  /// Tensor-engine threads (0 = leave the process-wide setting). The scan
  /// result is bit-identical for any value.
  int jobs = 0;
};

/// Per-tile outcome, in geo::make_tiles order.
struct TileScore {
  std::int64_t tile = 0;
  std::int64_t row = 0;  // tile origin (pixels)
  std::int64_t col = 0;
  float screener_confidence = 0.0f;
  /// screener_confidence >= threshold (stage-2 eligibility).
  bool survived = false;
  /// Whether the full model actually scored this tile (survivors always;
  /// every tile under evaluate_all).
  bool full_evaluated = false;
  float full_confidence = 0.0f;
  /// Full-model box (cx, cy, w, h normalized within the tile).
  std::array<float, 4> box{};
  /// Ground truth: a crossing center lies inside this tile.
  bool has_object = false;
  /// IoU of the full-model box vs that crossing's box (0 unless
  /// full_evaluated and has_object).
  float iou = 0.0f;
};

/// One confirmed, deduplicated detection in world coordinates.
struct ScanDetection {
  std::int64_t tile = 0;
  double world_x = 0.0;
  double world_y = 0.0;
  float confidence = 0.0f;
  /// Within match_radius of a ground-truth crossing.
  bool matched = false;
};

struct ScanResult {
  std::vector<TileScore> scores;          // one per tile
  std::vector<ScanDetection> detections;  // deduped, confidence-descending
  std::int64_t tiles = 0;
  std::int64_t survivors = 0;
  std::int64_t positives = 0;  // tiles containing a crossing center
  double negative_fraction = 0.0;
  double survivor_fraction = 0.0;
  /// Cascade AP over all tiles (rejected tiles as zero-confidence).
  double cascade_ap = 0.0;
  /// Full-model AP over all tiles (meaningful only under evaluate_all).
  double full_ap = 0.0;
};

/// Run the two-tier cascade over the whole photo. `screener` and `full`
/// are [N,C,H,W] -> [N,5] detection modules (SppNet / QuantizedSppNet);
/// both are switched to eval mode. Ground truth comes from `crossings`.
ScanResult scan_watershed(const geo::Orthophoto& photo,
                          const geo::GeoTransform& transform,
                          const std::vector<geo::Crossing>& crossings,
                          Module& screener, Module& full,
                          const CascadeOptions& options);

/// Cascade AP at an arbitrary stage-1 threshold: tiles whose screener
/// confidence clears `threshold` (and were full-evaluated) score at the
/// full model's confidence, everything else at zero. Exact for any
/// threshold when the scores come from an evaluate_all scan; otherwise
/// only thresholds >= the scan's own gate are meaningful.
double cascade_average_precision(const std::vector<TileScore>& scores,
                                 double threshold);

/// Full-model AP over the same tiles (requires evaluate_all scores).
double full_average_precision(const std::vector<TileScore>& scores);

/// Greedy world-space dedup across tile overlap: sort by (confidence
/// descending, tile ascending), keep a detection iff no already-kept one
/// lies within `radius` meters. Deterministic total order.
std::vector<ScanDetection> dedupe_detections(
    std::vector<ScanDetection> detections, double radius);

/// Canonical byte-stable CSV of the per-tile scan log. Floats are
/// rendered with round-trip precision, so bit-identical scans produce
/// byte-identical CSVs (the determinism contract's observable).
std::string scan_to_csv(const ScanResult& result);

/// Canonical byte-stable CSV of the deduplicated detections.
std::string detections_to_csv(const ScanResult& result);

}  // namespace dcn::scan
