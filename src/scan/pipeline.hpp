// Cascade serving pipeline: both scan stages through serve::Server.
//
// Timing and accuracy are deliberately separate concerns. Detection
// results come from real tensor-engine inference (cascade.hpp) and are a
// pure function of weights + pixels; tiles/sec comes from the serving
// simulation on the virtual clock, where each stage is a serve::Server
// pool — the screener pool batching large and cheap (usually int8), the
// full-model pool serving only survivors. The pools share the profiler
// recorder, so one chrome trace shows both stages' queue depth, batch
// size, and occupancy side by side (ServerConfig::pool labels the
// counter tracks).
//
// Stage coupling: a surviving tile's stage-2 arrival is its stage-1
// completion instant, so stage 2 drains *while* stage 1 is still
// screening — the pipeline's makespan is max(stage makespans), not their
// sum. Stage-2 request ids are re-issued densely in (completion, tile)
// order, keeping the Server's arrival-sorted increasing-id contract and
// making the stage-2 log deterministic.
//
// Scan regime: a watershed scan is offline work, not open-loop traffic —
// with ingest_rate <= 0 every tile is queued at t = 0 and the fleet
// drains at capacity (the admission queue is sized to hold the full
// scan; nothing is ever rejected). A positive ingest_rate instead paces
// arrivals uniformly, the regime the replica-invariance tests use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "ios/scheduler.hpp"
#include "profiler/recorder.hpp"
#include "serve/server.hpp"

namespace dcn::scan {

/// One cascade stage's serving setup. `graph` must outlive the
/// simulation calls.
struct StagePlan {
  const graph::Graph* graph = nullptr;
  ios::Schedule schedule;
  serve::ServerConfig server;
};

struct CascadeServingReport {
  serve::ServingReport stage1;
  serve::ServingReport stage2;
  /// max(stage makespans): the stages overlap in time.
  double makespan = 0.0;
  /// All tiles over the pipeline makespan.
  double tiles_per_sec = 0.0;
  std::int64_t tiles = 0;
  std::int64_t survivors = 0;
  /// Canonical per-stage completion logs (Server::log_to_csv).
  std::string stage1_csv;
  std::string stage2_csv;
};

/// Arrival trace for `tiles` requests: all at t = 0 when rate <= 0
/// (offline drain), else uniformly paced at `rate` requests/second.
std::vector<serve::Request> tile_trace(std::int64_t tiles, double rate);

/// Simulate the cascade: stage 1 serves every tile, stage 2 serves the
/// tiles `survived` marks true, arriving as their stage-1 completions.
CascadeServingReport simulate_cascade_serving(
    const StagePlan& stage1, const StagePlan& stage2,
    const std::vector<bool>& survived, double ingest_rate,
    profiler::Recorder* recorder = nullptr);

/// Single-model baseline: every tile through one pool (the full-model
/// scan the cascade is measured against).
serve::ServingReport simulate_single_stage(
    const StagePlan& stage, std::int64_t tiles, double ingest_rate,
    std::string* csv = nullptr, profiler::Recorder* recorder = nullptr);

}  // namespace dcn::scan
