#include "scan/pipeline.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace dcn::scan {
namespace {

// A scan is bounded offline work: size the admission queue to hold it
// all so the drain regime never sheds tiles (rejecting part of a survey
// would be a correctness bug, not load management).
serve::ServerConfig sized_for(const StagePlan& plan, std::int64_t tiles) {
  serve::ServerConfig config = plan.server;
  config.queue_capacity = std::max(
      config.queue_capacity, static_cast<std::size_t>(tiles) + 1);
  return config;
}

}  // namespace

std::vector<serve::Request> tile_trace(std::int64_t tiles, double rate) {
  std::vector<serve::Request> trace;
  trace.reserve(static_cast<std::size_t>(tiles));
  for (std::int64_t i = 0; i < tiles; ++i) {
    serve::Request request;
    request.id = i;
    request.arrival = rate > 0.0 ? static_cast<double>(i) / rate : 0.0;
    request.deadline = std::numeric_limits<double>::infinity();
    trace.push_back(request);
  }
  return trace;
}

CascadeServingReport simulate_cascade_serving(
    const StagePlan& stage1, const StagePlan& stage2,
    const std::vector<bool>& survived, double ingest_rate,
    profiler::Recorder* recorder) {
  DCN_CHECK(stage1.graph != nullptr && stage2.graph != nullptr)
      << "stage plans need graphs";
  const auto tiles = static_cast<std::int64_t>(survived.size());
  CascadeServingReport report;
  report.tiles = tiles;

  serve::Server screener(*stage1.graph, stage1.schedule,
                         sized_for(stage1, tiles), recorder);
  report.stage1 = screener.serve(tile_trace(tiles, ingest_rate));
  report.stage1_csv = serve::Server::log_to_csv(screener.log());

  // Survivors arrive at stage 2 the instant stage 1 completes them. The
  // log is id-sorted (= tile order); re-sort survivors by (completion,
  // tile) and re-issue dense ids to satisfy the Server trace contract.
  struct Handoff {
    double completion = 0.0;
    std::int64_t tile = 0;
  };
  std::vector<Handoff> handoffs;
  for (const serve::CompletionRecord& record : screener.log()) {
    if (record.status != serve::RequestStatus::kCompleted) continue;
    const auto tile = static_cast<std::size_t>(record.id);
    if (tile >= survived.size() || !survived[tile]) continue;
    handoffs.push_back({record.completion, record.id});
  }
  std::sort(handoffs.begin(), handoffs.end(),
            [](const Handoff& a, const Handoff& b) {
              if (a.completion != b.completion) {
                return a.completion < b.completion;
              }
              return a.tile < b.tile;
            });
  report.survivors = static_cast<std::int64_t>(handoffs.size());

  std::vector<serve::Request> confirm_trace;
  confirm_trace.reserve(handoffs.size());
  for (std::size_t i = 0; i < handoffs.size(); ++i) {
    serve::Request request;
    request.id = static_cast<std::int64_t>(i);
    request.arrival = handoffs[i].completion;
    request.deadline = std::numeric_limits<double>::infinity();
    confirm_trace.push_back(request);
  }
  serve::Server full(*stage2.graph, stage2.schedule,
                     sized_for(stage2, report.survivors), recorder);
  report.stage2 = full.serve(confirm_trace);
  report.stage2_csv = serve::Server::log_to_csv(full.log());

  report.makespan = std::max(report.stage1.makespan, report.stage2.makespan);
  if (report.makespan > 0.0) {
    report.tiles_per_sec = static_cast<double>(tiles) / report.makespan;
  }
  return report;
}

serve::ServingReport simulate_single_stage(const StagePlan& stage,
                                           std::int64_t tiles,
                                           double ingest_rate,
                                           std::string* csv,
                                           profiler::Recorder* recorder) {
  DCN_CHECK(stage.graph != nullptr) << "stage plan needs a graph";
  serve::Server server(*stage.graph, stage.schedule,
                       sized_for(stage, tiles), recorder);
  const serve::ServingReport report =
      server.serve(tile_trace(tiles, ingest_rate));
  if (csv != nullptr) *csv = serve::Server::log_to_csv(server.log());
  return report;
}

}  // namespace dcn::scan
