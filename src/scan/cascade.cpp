#include "scan/cascade.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "detect/metrics.hpp"
#include "detect/sppnet.hpp"
#include "geo/patch.hpp"

namespace dcn::scan {
namespace {

// Ground truth of one tile: the crossing whose center falls inside it,
// nearest to the tile center (ties -> lowest crossing index, a total
// deterministic order). The box uses the training-patch convention
// (patch.cpp make_positive): center offset over the tile origin, extent
// clamped to the tile side.
struct TileTruth {
  bool has_object = false;
  std::array<float, 4> box{};
};

TileTruth tile_truth(const geo::Tile& tile,
                     const std::vector<geo::Crossing>& crossings) {
  TileTruth truth;
  const double center_r = tile.row + tile.size / 2.0;
  const double center_c = tile.col + tile.size / 2.0;
  double best = 0.0;
  std::size_t pick = crossings.size();
  for (std::size_t k = 0; k < crossings.size(); ++k) {
    const geo::Crossing& crossing = crossings[k];
    if (crossing.row < tile.row || crossing.row >= tile.row + tile.size ||
        crossing.col < tile.col || crossing.col >= tile.col + tile.size) {
      continue;
    }
    const double d = std::hypot(crossing.row - center_r,
                                crossing.col - center_c);
    if (pick == crossings.size() || d < best) {
      best = d;
      pick = k;
    }
  }
  if (pick == crossings.size()) return truth;
  const geo::Crossing& crossing = crossings[pick];
  const auto size = static_cast<double>(tile.size);
  const double extent =
      std::min<double>(crossing.extent, tile.size) / size;
  truth.has_object = true;
  truth.box = {
      static_cast<float>(std::clamp(
          static_cast<double>(crossing.col - tile.col) / size, 0.0, 1.0)),
      static_cast<float>(std::clamp(
          static_cast<double>(crossing.row - tile.row) / size, 0.0, 1.0)),
      static_cast<float>(extent), static_cast<float>(extent)};
  return truth;
}

// Batched eval-mode inference of `model` over the listed tiles.
std::vector<detect::Prediction> predict_tiles(
    Module& model, const geo::Orthophoto& photo,
    const std::vector<geo::Tile>& tiles,
    const std::vector<std::size_t>& indices, std::int64_t batch_size) {
  std::vector<detect::Prediction> predictions;
  predictions.reserve(indices.size());
  for (std::size_t begin = 0; begin < indices.size();
       begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end = std::min(
        indices.size(), begin + static_cast<std::size_t>(batch_size));
    const auto n = static_cast<std::int64_t>(end - begin);
    const std::int64_t size = tiles[indices[begin]].size;
    Tensor batch(Shape{n, 4, size, size});
    for (std::size_t i = begin; i < end; ++i) {
      const Tensor image = geo::extract_tile(photo, tiles[indices[i]]);
      std::copy(image.data(), image.data() + image.numel(),
                batch.data() + static_cast<std::int64_t>(i - begin) *
                                   image.numel());
    }
    const Tensor out = model.forward(batch);
    for (const detect::Prediction& p : detect::SppNet::decode(out)) {
      predictions.push_back(p);
    }
  }
  return predictions;
}

void append_float(std::string& out, float v) {
  char buffer[32];
  // %.9g round-trips binary32 exactly: bit-identical scans render
  // byte-identical logs.
  std::snprintf(buffer, sizeof(buffer), "%.9g", static_cast<double>(v));
  out += buffer;
}

void append_world(std::string& out, double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);  // millimeter grid
  out += buffer;
}

}  // namespace

ScanResult scan_watershed(const geo::Orthophoto& photo,
                          const geo::GeoTransform& transform,
                          const std::vector<geo::Crossing>& crossings,
                          Module& screener, Module& full,
                          const CascadeOptions& options) {
  DCN_CHECK(options.batch_size > 0) << "batch size " << options.batch_size;
  if (options.jobs >= 1) set_num_threads(options.jobs);
  screener.set_training(false);
  full.set_training(false);

  const auto tiles =
      geo::make_tiles(photo.rows(), photo.cols(), options.tile_size,
                      options.overlap, transform);
  ScanResult result;
  result.tiles = static_cast<std::int64_t>(tiles.size());
  result.scores.resize(tiles.size());

  // Stage 1: screen every tile.
  std::vector<std::size_t> all(tiles.size());
  for (std::size_t i = 0; i < tiles.size(); ++i) all[i] = i;
  const auto screened =
      predict_tiles(screener, photo, tiles, all, options.batch_size);

  std::vector<std::size_t> confirm;
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    TileScore& score = result.scores[i];
    score.tile = static_cast<std::int64_t>(i);
    score.row = tiles[i].row;
    score.col = tiles[i].col;
    score.screener_confidence = screened[i].confidence;
    score.survived = static_cast<double>(score.screener_confidence) >=
                     options.threshold;
    const TileTruth truth = tile_truth(tiles[i], crossings);
    score.has_object = truth.has_object;
    if (score.has_object) ++result.positives;
    if (score.survived) ++result.survivors;
    if (score.survived || options.evaluate_all) confirm.push_back(i);
  }

  // Stage 2: the full model confirms survivors (all tiles in
  // evaluate_all / calibration mode).
  const auto confirmed =
      predict_tiles(full, photo, tiles, confirm, options.batch_size);
  for (std::size_t j = 0; j < confirm.size(); ++j) {
    TileScore& score = result.scores[confirm[j]];
    score.full_evaluated = true;
    score.full_confidence = confirmed[j].confidence;
    score.box = confirmed[j].box;
    if (score.has_object) {
      score.iou = detect::box_iou(score.box,
                                  tile_truth(tiles[confirm[j]], crossings).box);
    }
  }

  // Confirmed detections -> world coordinates -> overlap dedup.
  std::vector<ScanDetection> raw;
  for (const TileScore& score : result.scores) {
    if (!score.survived || !score.full_evaluated) continue;
    if (static_cast<double>(score.full_confidence) <
        options.detect_threshold) {
      continue;
    }
    ScanDetection detection;
    detection.tile = score.tile;
    detection.confidence = score.full_confidence;
    const auto [wx, wy] = geo::detection_to_world(
        tiles[static_cast<std::size_t>(score.tile)], score.box.data(),
        transform);
    detection.world_x = wx;
    detection.world_y = wy;
    const auto [pr, pc] = transform.world_to_pixel(wx, wy);
    for (const geo::Crossing& crossing : crossings) {
      if (std::hypot(crossing.row - pr, crossing.col - pc) <=
          options.match_radius) {
        detection.matched = true;
        break;
      }
    }
    raw.push_back(detection);
  }
  result.detections = dedupe_detections(std::move(raw), options.dedup_radius);

  if (result.tiles > 0) {
    result.negative_fraction =
        1.0 - static_cast<double>(result.positives) /
                  static_cast<double>(result.tiles);
    result.survivor_fraction = static_cast<double>(result.survivors) /
                               static_cast<double>(result.tiles);
  }
  result.cascade_ap =
      cascade_average_precision(result.scores, options.threshold);
  if (options.evaluate_all) {
    result.full_ap = full_average_precision(result.scores);
  }
  return result;
}

double cascade_average_precision(const std::vector<TileScore>& scores,
                                 double threshold) {
  std::vector<detect::ScoredDetection> detections;
  detections.reserve(scores.size());
  for (const TileScore& score : scores) {
    detect::ScoredDetection d;
    const bool passed =
        static_cast<double>(score.screener_confidence) >= threshold &&
        score.full_evaluated;
    d.confidence = passed ? score.full_confidence : 0.0f;
    d.has_object = score.has_object;
    d.iou = passed ? score.iou : 0.0f;
    detections.push_back(d);
  }
  return detect::average_precision(detections);
}

double full_average_precision(const std::vector<TileScore>& scores) {
  std::vector<detect::ScoredDetection> detections;
  detections.reserve(scores.size());
  for (const TileScore& score : scores) {
    detect::ScoredDetection d;
    d.confidence = score.full_evaluated ? score.full_confidence : 0.0f;
    d.has_object = score.has_object;
    d.iou = score.full_evaluated ? score.iou : 0.0f;
    detections.push_back(d);
  }
  return detect::average_precision(detections);
}

std::vector<ScanDetection> dedupe_detections(
    std::vector<ScanDetection> detections, double radius) {
  std::sort(detections.begin(), detections.end(),
            [](const ScanDetection& a, const ScanDetection& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.tile < b.tile;
            });
  std::vector<ScanDetection> kept;
  for (const ScanDetection& detection : detections) {
    bool duplicate = false;
    for (const ScanDetection& winner : kept) {
      if (std::hypot(detection.world_x - winner.world_x,
                     detection.world_y - winner.world_y) <= radius) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) kept.push_back(detection);
  }
  return kept;
}

std::string scan_to_csv(const ScanResult& result) {
  std::string out =
      "tile,row,col,screener_conf,survived,full_eval,full_conf,cx,cy,w,h,"
      "has_object,iou\n";
  for (const TileScore& score : result.scores) {
    out += std::to_string(score.tile);
    out += ',';
    out += std::to_string(score.row);
    out += ',';
    out += std::to_string(score.col);
    out += ',';
    append_float(out, score.screener_confidence);
    out += ',';
    out += score.survived ? '1' : '0';
    out += ',';
    out += score.full_evaluated ? '1' : '0';
    out += ',';
    append_float(out, score.full_confidence);
    for (const float v : score.box) {
      out += ',';
      append_float(out, v);
    }
    out += ',';
    out += score.has_object ? '1' : '0';
    out += ',';
    append_float(out, score.iou);
    out += '\n';
  }
  return out;
}

std::string detections_to_csv(const ScanResult& result) {
  std::string out = "rank,tile,world_x,world_y,confidence,matched\n";
  for (std::size_t i = 0; i < result.detections.size(); ++i) {
    const ScanDetection& detection = result.detections[i];
    out += std::to_string(i);
    out += ',';
    out += std::to_string(detection.tile);
    out += ',';
    append_world(out, detection.world_x);
    out += ',';
    append_world(out, detection.world_y);
    out += ',';
    append_float(out, detection.confidence);
    out += ',';
    out += detection.matched ? '1' : '0';
    out += '\n';
  }
  return out;
}

}  // namespace dcn::scan
