// Accuracy-constrained threshold calibration for the scan cascade.
//
// The cascade's knob is the stage-1 confidence threshold: raise it and
// fewer tiles pay for full-model inference, but past some point the
// screener starts rejecting true crossings and the cascade's AP falls.
// The calibrator makes the paper's constrained-optimization move (§5.4,
// max e(n) s.t. a(n) > A) at deployment time: sweep every achievable
// operating point on a seeded validation watershed, keep the ones whose
// cascade AP stays within `max_ap_drop_points` of the full model's own AP
// on the same tiles, and pick the cheapest.
//
// Contract:
//  - the sweep's candidate thresholds are 0 plus every distinct screener
//    confidence observed (ascending), so each distinct survivor set is
//    evaluated exactly once and the comparison `screener_conf >= t` is
//    exact (candidates are the stored float values, not a grid);
//  - cost per tile is stage1 + survivor_fraction x stage2 (stage costs
//    come from the caller, e.g. ios::measure_latency / batch);
//  - threshold 0 keeps every tile, so its cascade AP equals the full
//    model's and the feasible set is never empty;
//  - ties on cost resolve to the *lowest* threshold (the conservative
//    operating point), making the choice a deterministic pure function of
//    the scores.
#pragma once

#include <string>
#include <vector>

#include "scan/cascade.hpp"

namespace dcn::scan {

struct CalibratorOptions {
  /// Accuracy constraint: cascade AP may trail the full model's AP on the
  /// validation watershed by at most this many points.
  double max_ap_drop_points = 1.0;
  /// Virtual per-tile cost of screening (seconds; every tile pays it).
  double stage1_cost_per_tile = 1.0;
  /// Virtual per-tile cost of full-model confirmation (survivors only).
  double stage2_cost_per_tile = 10.0;
};

struct OperatingPoint {
  double threshold = 0.0;
  double cascade_ap = 0.0;
  double survivor_fraction = 0.0;
  double cost_per_tile = 0.0;
  bool feasible = false;
};

struct CalibrationResult {
  /// Full-model AP on the validation tiles (the constraint's reference).
  double full_ap = 0.0;
  OperatingPoint chosen;
  std::vector<OperatingPoint> sweep;  // ascending threshold
};

/// Sweep and choose. `scores` must come from an evaluate_all scan (every
/// tile carries a full-model confidence); throws ConfigError otherwise.
CalibrationResult calibrate_threshold(const std::vector<TileScore>& scores,
                                      const CalibratorOptions& options);

/// Byte-stable CSV of the sweep (one row per operating point, chosen
/// flagged).
std::string sweep_to_csv(const CalibrationResult& result);

}  // namespace dcn::scan
