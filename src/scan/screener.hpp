// NAS-selected tiny screener for cascade stage 1.
//
// The screener is a miniature SPP-Net chosen by the same machinery as the
// paper's model search (src/nas), over a deliberately small space: narrow
// two-conv trunk (8/16 filters vs the full model's 64/128/256), shallow
// pyramid, thin FC. Selection reuses the nas_search --int8 flow end to
// end — profile each coordinate's fused graph on the simulated device,
// train it briefly as an accuracy proxy, expand every trial into
// {fp32, int8} deployment candidates by post-training quantization, and
// pick the highest-throughput candidate whose AP clears the screener
// floor (select_constrained_precision).
//
// The floor is intentionally far below the full model's AP: stage 1 only
// has to *rank* tiles well enough that the calibrated threshold keeps
// true crossings alive (calibrate.hpp enforces the real accuracy
// constraint on the cascade); its job is cheap rejection, not detection.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "nas/runner.hpp"
#include "nas/selection.hpp"
#include "nas/trial.hpp"

namespace dcn::scan {

/// The screener's search space, expressed in nas::SearchPoint coordinates
/// (conv1 kernel, first SPP level, FC width) over a narrow fixed trunk.
struct ScreenerSpace {
  std::vector<std::int64_t> conv_kernels{3, 5};
  std::vector<std::int64_t> spp_levels{1, 2};
  std::vector<std::int64_t> fc_widths{32, 64};
  /// First conv's filter count; the second conv doubles it.
  std::int64_t trunk_width = 8;

  /// Every coordinate, in lexicographic order (grid campaign).
  std::vector<nas::SearchPoint> enumerate() const;
};

/// Materialize a screener coordinate: C{w,k,s2}-P{2,2}-C{2w,3}-P{2,2}
/// trunk (stride-2 stem),
/// SPP {first_level, 1} (just {1} when first_level == 1), one FC stack
/// from the point's fc_sizes.
detect::SppNetConfig materialize_screener(const nas::SearchPoint& point,
                                          std::int64_t trunk_width = 8,
                                          std::int64_t in_channels = 4);

struct ScreenerSearchConfig {
  ScreenerSpace space;
  /// Efficiency-profiling setup (device, input size = tile size, latency
  /// batch = the screener's serving batch).
  nas::RunnerConfig runner;
  /// Accuracy floor a(n) for select_constrained_precision. Deliberately
  /// permissive: the screener only needs to *rank* tiles (the calibrator
  /// enforces the cascade's real constraint), so the floor merely rules
  /// out degenerate candidates.
  double ap_floor = 0.15;
  /// Expand trials into int8 candidates (the cascade's default).
  bool int8 = true;
  /// Short-budget proxy training (multi-fidelity spirit: a few epochs
  /// rank tiny models reliably).
  detect::TrainConfig train;
  std::uint64_t seed = 2024;
  std::int64_t calibration_images = 8;
};

struct ScreenerSelection {
  nas::TrialDatabase database;
  std::vector<nas::PrecisionCandidate> candidates;
  nas::PrecisionCandidate chosen;
  /// The chosen coordinate, materialized.
  detect::SppNetConfig config;
  /// The trained winner at the chosen precision (SppNet for fp32,
  /// QuantizedSppNet for int8), ready for scan_watershed.
  std::unique_ptr<Module> model;
};

/// Run the mini campaign over `config.space` and return the constrained
/// selection. Deterministic in (dataset, split, config): per-trial weight
/// seeds derive from config.seed + trial index, and the campaign is a
/// fixed-order grid. When no candidate clears the floor, falls back to
/// the highest-AP candidate so callers always get a usable screener.
ScreenerSelection select_screener(const geo::DrainageDataset& dataset,
                                  const geo::Split& split,
                                  const ScreenerSearchConfig& config);

}  // namespace dcn::scan
