#include "scan/calibrate.hpp"

#include <algorithm>
#include <cstdio>

#include "core/error.hpp"

namespace dcn::scan {

CalibrationResult calibrate_threshold(const std::vector<TileScore>& scores,
                                      const CalibratorOptions& options) {
  if (scores.empty()) {
    throw ConfigError("calibrate_threshold: no tile scores");
  }
  for (const TileScore& score : scores) {
    if (!score.full_evaluated) {
      throw ConfigError(
          "calibrate_threshold: tile " + std::to_string(score.tile) +
          " has no full-model score; calibrate on an evaluate_all scan");
    }
  }

  CalibrationResult result;
  result.full_ap = full_average_precision(scores);
  const double floor = result.full_ap - options.max_ap_drop_points / 100.0;

  // Candidate thresholds: 0 plus each distinct observed screener
  // confidence, ascending. Evaluating at the stored values keeps the
  // `>=` comparison exact and covers every distinct survivor set.
  std::vector<double> candidates;
  candidates.reserve(scores.size() + 1);
  candidates.push_back(0.0);
  for (const TileScore& score : scores) {
    candidates.push_back(static_cast<double>(score.screener_confidence));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const auto total = static_cast<double>(scores.size());
  bool have_chosen = false;
  for (const double threshold : candidates) {
    OperatingPoint point;
    point.threshold = threshold;
    std::int64_t survivors = 0;
    for (const TileScore& score : scores) {
      if (static_cast<double>(score.screener_confidence) >= threshold) {
        ++survivors;
      }
    }
    point.survivor_fraction = static_cast<double>(survivors) / total;
    point.cascade_ap = cascade_average_precision(scores, threshold);
    point.cost_per_tile = options.stage1_cost_per_tile +
                          point.survivor_fraction *
                              options.stage2_cost_per_tile;
    point.feasible = point.cascade_ap >= floor;
    result.sweep.push_back(point);
    // Ascending sweep + strict improvement: cost ties keep the lowest
    // (most conservative) feasible threshold.
    if (point.feasible &&
        (!have_chosen || point.cost_per_tile < result.chosen.cost_per_tile)) {
      result.chosen = point;
      have_chosen = true;
    }
  }
  // Threshold 0 rejects nothing, so cascade AP == full AP there and the
  // feasible set cannot be empty for any non-negative drop budget.
  DCN_CHECK(have_chosen) << "calibrator found no feasible operating point";
  return result;
}

std::string sweep_to_csv(const CalibrationResult& result) {
  std::string out =
      "threshold,cascade_ap,survivor_fraction,cost_per_tile,feasible,"
      "chosen\n";
  char buffer[160];
  for (const OperatingPoint& point : result.sweep) {
    const bool chosen = point.threshold == result.chosen.threshold;
    std::snprintf(buffer, sizeof(buffer),
                  "%.9g,%.6f,%.6f,%.9g,%d,%d\n", point.threshold,
                  point.cascade_ap, point.survivor_fraction,
                  point.cost_per_tile, point.feasible ? 1 : 0,
                  chosen ? 1 : 0);
    out += buffer;
  }
  return out;
}

}  // namespace dcn::scan
