#include "scan/screener.hpp"

#include <string>
#include <utility>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "detect/calibration.hpp"
#include "detect/quantized_sppnet.hpp"
#include "detect/sppnet.hpp"

namespace dcn::scan {

std::vector<nas::SearchPoint> ScreenerSpace::enumerate() const {
  std::vector<nas::SearchPoint> points;
  points.reserve(conv_kernels.size() * spp_levels.size() * fc_widths.size());
  for (const std::int64_t kernel : conv_kernels) {
    for (const std::int64_t level : spp_levels) {
      for (const std::int64_t width : fc_widths) {
        nas::SearchPoint point;
        point.conv1_kernel = kernel;
        point.spp_first_level = level;
        point.fc_sizes = {width};
        points.push_back(point);
      }
    }
  }
  return points;
}

detect::SppNetConfig materialize_screener(const nas::SearchPoint& point,
                                          std::int64_t trunk_width,
                                          std::int64_t in_channels) {
  DCN_CHECK(trunk_width > 0) << "trunk width " << trunk_width;
  detect::SppNetConfig config;
  config.in_channels = in_channels;
  config.name = "screener-w" + std::to_string(trunk_width) + "-k" +
                std::to_string(point.conv1_kernel) + "-l" +
                std::to_string(point.spp_first_level);
  for (const std::int64_t width : point.fc_sizes) {
    config.name += "-f" + std::to_string(width);
  }
  // Stride-2 stem: quarters the spatial work of every downstream stage.
  // The screener ranks tiles, it does not localize — coarse features are
  // the point, and the cost model rewards it ~4x.
  detect::TrunkStage conv1;
  conv1.kind = detect::TrunkStage::Kind::kConv;
  conv1.conv = {trunk_width, point.conv1_kernel, 2};
  detect::TrunkStage pool;
  pool.kind = detect::TrunkStage::Kind::kPool;
  pool.pool = {2, 2};
  detect::TrunkStage conv2;
  conv2.kind = detect::TrunkStage::Kind::kConv;
  conv2.conv = {2 * trunk_width, 3, 1};
  config.trunk = {conv1, pool, conv2, pool};
  for (std::int64_t level = point.spp_first_level; level >= 1; --level) {
    config.spp_levels.push_back(level);
  }
  config.fc_sizes = point.fc_sizes;
  return config;
}

ScreenerSelection select_screener(const geo::DrainageDataset& dataset,
                                  const geo::Split& split,
                                  const ScreenerSearchConfig& config) {
  DCN_CHECK(dataset.size() > 0) << "empty dataset";
  const std::int64_t in_channels = dataset.sample(0).image.dim(0);
  const auto points = config.space.enumerate();
  DCN_CHECK(!points.empty()) << "empty screener space";

  // Grid campaign: profile the fused graph on the simulated device, train
  // briefly as the accuracy proxy. Weight seeds derive from (seed, trial
  // index) so the campaign is reproducible trial by trial.
  ScreenerSelection selection;
  std::vector<std::unique_ptr<detect::SppNet>> models;
  models.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const detect::SppNetConfig model_config = materialize_screener(
        points[i], config.space.trunk_width, in_channels);
    nas::TrialMetrics metrics = nas::profile_architecture(
        model_config, config.runner, static_cast<int>(i));
    Rng rng(config.seed + i);
    auto model = std::make_unique<detect::SppNet>(model_config, rng);
    (void)detect::train_detector(*model, dataset, split, config.train);
    metrics.average_precision =
        detect::evaluate_detector(*model, dataset, split.test)
            .average_precision;
    models.push_back(std::move(model));

    nas::Trial trial;
    trial.index = static_cast<int>(i);
    trial.point = points[i];
    trial.metrics = metrics;
    selection.database.add(trial);
  }

  // Expand into {fp32, int8} deployment candidates. The int8 evaluator
  // re-profiles at int8 kernels/schedule and re-scores the quantized
  // model's AP on the held-out split; the quantized instances are cached
  // so the winner can be returned without re-quantizing.
  std::vector<std::unique_ptr<detect::QuantizedSppNet>> quantized(
      points.size());
  const nas::QuantizeEvaluator evaluator =
      [&](const nas::Trial& trial) -> nas::TrialMetrics {
    if (!config.int8) {
      throw ConfigError("screener int8 expansion disabled");
    }
    nas::RunnerConfig int8_runner = config.runner;
    int8_runner.precision = simgpu::Precision::kInt8;
    int8_runner.verbose = false;
    const detect::SppNetConfig model_config = materialize_screener(
        trial.point, config.space.trunk_width, in_channels);
    nas::TrialMetrics metrics = nas::profile_architecture(
        model_config, int8_runner, trial.index, 1);
    std::vector<std::size_t> picks;
    for (const std::int64_t i : detect::calibration_split(
             static_cast<std::int64_t>(split.train.size()),
             config.calibration_images, config.seed)) {
      picks.push_back(split.train[static_cast<std::size_t>(i)]);
    }
    auto& model = *models[static_cast<std::size_t>(trial.index)];
    auto q = std::make_unique<detect::QuantizedSppNet>(
        model, dataset.make_batch(picks).images);
    metrics.average_precision =
        detect::evaluate_detector(*q, dataset, split.test).average_precision;
    quantized[static_cast<std::size_t>(trial.index)] = std::move(q);
    return metrics;
  };
  selection.candidates =
      nas::expand_precisions(selection.database, evaluator);

  auto chosen = nas::select_constrained_precision(selection.candidates,
                                                  config.ap_floor);
  if (!chosen) {
    // No candidate clears the floor: fall back to the most accurate one
    // so callers still get a working screener (the calibrator will then
    // keep the threshold low — correct, just slower).
    DCN_LOG_WARN << "no screener candidate clears AP floor "
                 << config.ap_floor << "; falling back to best AP";
    for (const nas::PrecisionCandidate& candidate : selection.candidates) {
      if (!chosen || candidate.metrics.average_precision >
                         chosen->metrics.average_precision) {
        chosen = candidate;
      }
    }
  }
  DCN_CHECK(chosen.has_value()) << "screener selection produced no candidate";
  selection.chosen = *chosen;
  selection.config = materialize_screener(
      chosen->trial.point, config.space.trunk_width, in_channels);
  const auto index = static_cast<std::size_t>(chosen->trial.index);
  if (chosen->precision == simgpu::Precision::kInt8) {
    selection.model = std::move(quantized[index]);
  } else {
    selection.model = std::move(models[index]);
  }
  return selection;
}

}  // namespace dcn::scan
