// Patch clipping with bounding-box labels.
//
// Mirrors the paper's preprocessing (§3.2): square patches are clipped
// around drainage-crossing locations (with jitter so the object is not
// always dead-center), and negative patches are sampled away from any
// crossing. Boxes are (cx, cy, w, h) normalized to [0, 1] patch coordinates.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geo/crossings.hpp"
#include "geo/render.hpp"
#include "tensor/tensor.hpp"

namespace dcn {
class Rng;
}

namespace dcn::geo {

/// One training/evaluation sample.
struct PatchSample {
  Tensor image;                      // [4, size, size], values in [0, 1]
  float label = 0.0f;                // 1 = contains a drainage crossing
  std::array<float, 4> box{};        // (cx, cy, w, h) normalized; zeros if negative
};

/// Clip a [4(+1), size, size] tensor centered at (center_r, center_c);
/// areas outside the photo are edge-clamped (patches near the boundary stay
/// valid). When `extra_band` is non-null it is appended as a fifth channel
/// (e.g. a DEM hillshade, as in HRDEM-based crossing detection).
Tensor clip_patch(const Orthophoto& photo, std::int64_t center_r,
                  std::int64_t center_c, std::int64_t size,
                  const Raster* extra_band = nullptr);

/// Positive sample: patch around `crossing` with the center jittered up to
/// `max_jitter` cells in each axis; the box tracks the true object location.
PatchSample make_positive(const Orthophoto& photo, const Crossing& crossing,
                          std::int64_t size, std::int64_t max_jitter,
                          Rng& rng, const Raster* extra_band = nullptr);

/// Negative sample: random patch whose center is at least `min_distance`
/// cells from every crossing. Returns false if no location was found after
/// `max_tries` attempts.
bool make_negative(const Orthophoto& photo,
                   const std::vector<Crossing>& crossings, std::int64_t size,
                   std::int64_t min_distance, Rng& rng, PatchSample& out,
                   int max_tries = 64, const Raster* extra_band = nullptr);

/// Horizontal / vertical flips for augmentation (box is remapped).
PatchSample flip_horizontal(const PatchSample& sample);
PatchSample flip_vertical(const PatchSample& sample);

/// 90-degree counter-clockwise rotation (square patches only; box remapped).
PatchSample rotate90(const PatchSample& sample);

}  // namespace dcn::geo
