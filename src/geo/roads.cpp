#include "geo/roads.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::geo {
namespace {

Road make_road(std::int64_t rows, std::int64_t cols, bool horizontal,
               double base, const RoadConfig& config, Rng& rng) {
  Road road;
  road.width = config.width;
  const std::int64_t length = horizontal ? cols : rows;
  double cross = base;
  double drift = 0.0;
  road.centerline.reserve(static_cast<std::size_t>(length));
  for (std::int64_t t = 0; t < length; ++t) {
    drift += rng.uniform(-config.drift, config.drift);
    drift *= 0.97;
    cross += drift;
    const double limit = horizontal ? rows - 1.0 : cols - 1.0;
    cross = std::clamp(cross, 1.0, limit - 1.0);
    const std::int64_t ci = static_cast<std::int64_t>(std::lround(cross));
    if (horizontal) {
      road.centerline.emplace_back(ci, t);
    } else {
      road.centerline.emplace_back(t, ci);
    }
  }
  return road;
}

}  // namespace

std::vector<Road> synthesize_roads(std::int64_t rows, std::int64_t cols,
                                   const RoadConfig& config, Rng& rng) {
  DCN_CHECK(config.spacing >= 16) << "road spacing too small";
  std::vector<Road> roads;
  for (std::int64_t base = config.spacing / 2; base < rows;
       base += config.spacing) {
    if (!rng.bernoulli(config.density)) continue;
    const double jittered = base + rng.uniform(-0.2, 0.2) * config.spacing;
    roads.push_back(make_road(rows, cols, /*horizontal=*/true, jittered,
                              config, rng));
  }
  for (std::int64_t base = config.spacing / 2; base < cols;
       base += config.spacing) {
    if (!rng.bernoulli(config.density)) continue;
    const double jittered = base + rng.uniform(-0.2, 0.2) * config.spacing;
    roads.push_back(make_road(rows, cols, /*horizontal=*/false, jittered,
                              config, rng));
  }
  return roads;
}

Raster rasterize_roads(std::int64_t rows, std::int64_t cols,
                       const std::vector<Road>& roads) {
  Raster mask(rows, cols);
  for (const Road& road : roads) {
    const int half = static_cast<int>(std::ceil(road.width / 2.0)) + 1;
    for (const auto& [r, c] : road.centerline) {
      for (int dr = -half; dr <= half; ++dr) {
        for (int dc = -half; dc <= half; ++dc) {
          const std::int64_t rr = r + dr;
          const std::int64_t cc = c + dc;
          if (!mask.in_bounds(rr, cc)) continue;
          const double dist = std::sqrt(double(dr * dr + dc * dc));
          // 1.0 on the paved surface, linear falloff on the shoulder.
          const double v =
              std::clamp(1.0 - (dist - road.width / 2.0), 0.0, 1.0);
          mask.at(rr, cc) =
              std::max(mask.at(rr, cc), static_cast<float>(v));
        }
      }
    }
  }
  return mask;
}

}  // namespace dcn::geo
