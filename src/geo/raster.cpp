#include "geo/raster.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dcn::geo {

Raster::Raster(std::int64_t rows, std::int64_t cols, float fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), fill) {
  DCN_CHECK(rows > 0 && cols > 0) << "raster dims " << rows << 'x' << cols;
}

float& Raster::at(std::int64_t r, std::int64_t c) {
  DCN_DCHECK(in_bounds(r, c)) << "raster index (" << r << ", " << c << ")";
  return data_[static_cast<std::size_t>(r * cols_ + c)];
}

float Raster::at(std::int64_t r, std::int64_t c) const {
  DCN_DCHECK(in_bounds(r, c)) << "raster index (" << r << ", " << c << ")";
  return data_[static_cast<std::size_t>(r * cols_ + c)];
}

float Raster::at_clamped(std::int64_t r, std::int64_t c) const {
  r = std::clamp<std::int64_t>(r, 0, rows_ - 1);
  c = std::clamp<std::int64_t>(c, 0, cols_ - 1);
  return data_[static_cast<std::size_t>(r * cols_ + c)];
}

float Raster::sample(double r, double c) const {
  const double rr = std::clamp(r, 0.0, static_cast<double>(rows_ - 1));
  const double cc = std::clamp(c, 0.0, static_cast<double>(cols_ - 1));
  const std::int64_t r0 = static_cast<std::int64_t>(std::floor(rr));
  const std::int64_t c0 = static_cast<std::int64_t>(std::floor(cc));
  const double fr = rr - static_cast<double>(r0);
  const double fc = cc - static_cast<double>(c0);
  const float v00 = at_clamped(r0, c0);
  const float v01 = at_clamped(r0, c0 + 1);
  const float v10 = at_clamped(r0 + 1, c0);
  const float v11 = at_clamped(r0 + 1, c0 + 1);
  const double top = v00 + (v01 - v00) * fc;
  const double bot = v10 + (v11 - v10) * fc;
  return static_cast<float>(top + (bot - top) * fr);
}

float Raster::min_value() const {
  DCN_CHECK(!data_.empty()) << "min of empty raster";
  return *std::min_element(data_.begin(), data_.end());
}

float Raster::max_value() const {
  DCN_CHECK(!data_.empty()) << "max of empty raster";
  return *std::max_element(data_.begin(), data_.end());
}

void Raster::normalize(float lo, float hi) {
  DCN_CHECK(lo <= hi) << "normalize range";
  const float mn = min_value();
  const float mx = max_value();
  if (mx <= mn) {
    std::fill(data_.begin(), data_.end(), lo);
    return;
  }
  const float scale = (hi - lo) / (mx - mn);
  for (auto& v : data_) v = lo + (v - mn) * scale;
}

}  // namespace dcn::geo
