// DEM hydrology: depression filling, D8 flow routing, flow accumulation and
// stream extraction.
//
// This is the elevation-derived drainage-delineation substrate the paper's
// motivation (§2.1) describes: flow routed on a raw DEM is blocked by
// embankment "digital dams"; breaching the DEM at drainage-crossing
// locations (culverts) restores connectivity. The same primitives power the
// data generator and the digital-dam demonstration example.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/raster.hpp"

namespace dcn::geo {

/// D8 neighbor offsets, indexed by direction code 0..7
/// (E, SE, S, SW, W, NW, N, NE).
inline constexpr int kD8Row[8] = {0, 1, 1, 1, 0, -1, -1, -1};
inline constexpr int kD8Col[8] = {1, 1, 0, -1, -1, -1, 0, 1};

/// Direction code for a cell with no downslope neighbor (interior pit).
inline constexpr int kPit = -1;
/// Direction code for cells draining off the grid edge.
inline constexpr int kOutlet = -2;

/// Priority-flood depression filling (Barnes et al. 2014 variant): raises
/// every interior pit to its spill elevation plus a tiny gradient epsilon so
/// D8 routing never stalls. Returns the filled DEM.
Raster fill_depressions(const Raster& dem, float epsilon = 1e-3f);

/// Steepest-descent D8 directions. Cells on the boundary whose steepest
/// descent leaves the grid get kOutlet; interior cells with no lower
/// neighbor get kPit (run fill_depressions first to avoid them).
std::vector<int> flow_directions(const Raster& dem);

/// Number of upstream cells (including itself) draining through each cell.
/// Runs in O(n) over the flow DAG.
Raster flow_accumulation(const Raster& dem, const std::vector<int>& dirs);

/// Binary stream mask: accumulation >= threshold.
Raster extract_streams(const Raster& accumulation, float threshold);

/// Raise the DEM along a mask (road embankments — the "digital dam").
void apply_embankment(Raster& dem, const Raster& mask, float height);

/// Lower the DEM at given cells (culvert breaching).
void breach_at(Raster& dem, const std::vector<std::pair<std::int64_t, std::int64_t>>& cells,
               float depth, int radius = 1);

}  // namespace dcn::geo
