// 4-band orthophoto renderer.
//
// Produces NAIP-like R, G, B, NIR bands in [0, 1] from the synthesized
// terrain, hydrology, and road layers. The visual grammar follows the
// paper's Figure 4 samples: green/brown agricultural texture, gray road
// surfaces, dark stream channels with high-NIR riparian vegetation, and a
// compact culvert signature (concrete headwalls) at drainage crossings.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geo/crossings.hpp"
#include "geo/raster.hpp"

namespace dcn {
class Rng;
}

namespace dcn::geo {

/// A co-registered 4-band image. Band order: R, G, B, NIR.
struct Orthophoto {
  std::array<Raster, 4> bands;

  std::int64_t rows() const { return bands[0].rows(); }
  std::int64_t cols() const { return bands[0].cols(); }
};

struct RenderConfig {
  /// Per-band additive Gaussian sensor noise (std dev).
  double sensor_noise = 0.02;
  /// Small-scale field texture amplitude.
  double texture_amplitude = 0.08;
  /// Culvert signature contrast in [0,1]; lower is harder to detect.
  double culvert_contrast = 0.8;
  /// Probability that a crossing is partially hidden under riparian tree
  /// canopy (the dominant real-world failure mode for NAIP imagery); the
  /// occluded fraction of positives is what keeps AP below 100%.
  double canopy_occlusion = 0.0;
};

/// Render the watershed into a 4-band orthophoto.
Orthophoto render_orthophoto(const Raster& dem, const Raster& accumulation,
                             const Raster& streams, const Raster& road_mask,
                             const std::vector<Crossing>& crossings,
                             const RenderConfig& config, Rng& rng);

/// Hillshade of a DEM (Horn's method): illumination in [0, 1] for a light
/// source at the given azimuth/altitude (degrees; GIS defaults 315/45).
/// This is the visualization HRDEM crossing-detection works use as a model
/// input channel.
Raster hillshade(const Raster& dem, double azimuth_deg = 315.0,
                 double altitude_deg = 45.0, double z_factor = 1.0);

}  // namespace dcn::geo
