#include "geo/crossings.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dcn::geo {

std::vector<Crossing> find_crossings(const Raster& streams,
                                     const std::vector<Road>& roads,
                                     std::int64_t min_separation) {
  std::vector<Crossing> crossings;
  auto too_close = [&](std::int64_t r, std::int64_t c) {
    for (const Crossing& x : crossings) {
      const std::int64_t dr = x.row - r;
      const std::int64_t dc = x.col - c;
      if (dr * dr + dc * dc <
          min_separation * min_separation) {
        return true;
      }
    }
    return false;
  };

  for (const Road& road : roads) {
    for (const auto& [r, c] : road.centerline) {
      if (!streams.in_bounds(r, c)) continue;
      // Consider the near neighborhood so narrow streams clipped by the
      // road rasterization still register.
      bool on_stream = false;
      for (int dr = -1; dr <= 1 && !on_stream; ++dr) {
        for (int dc = -1; dc <= 1 && !on_stream; ++dc) {
          if (streams.in_bounds(r + dr, c + dc) &&
              streams.at(r + dr, c + dc) > 0.0f) {
            on_stream = true;
          }
        }
      }
      if (!on_stream || too_close(r, c)) continue;
      Crossing x;
      x.row = r;
      x.col = c;
      x.extent = 14 + static_cast<std::int64_t>(road.width);
      crossings.push_back(x);
    }
  }
  return crossings;
}

}  // namespace dcn::geo
