// End-to-end synthetic drainage-crossing dataset.
//
// Replaces the paper's West Fork Big Blue training data (NAIP orthophotos +
// 2022 manually digitized crossings): synthesizes one or more watershed
// worlds, finds the ground-truth crossings hydrologically, clips positive
// and negative patches, and optionally multiplies positives with flip
// augmentation. Batching follows the paper's setup (batch size 20, 80/20
// train/test split).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/patch.hpp"
#include "geo/render.hpp"
#include "geo/roads.hpp"
#include "geo/terrain.hpp"
#include "tensor/tensor.hpp"

namespace dcn::geo {

struct DatasetConfig {
  std::uint64_t seed = 2022;
  /// Number of independent watershed worlds to synthesize.
  int num_worlds = 2;
  TerrainConfig terrain;
  RoadConfig roads;
  RenderConfig render;
  /// Flow-accumulation threshold (cells) for stream extraction.
  double stream_threshold = 600.0;
  /// Patch side length in cells (paper: 100).
  std::int64_t patch_size = 100;
  /// Jitter of the crossing inside positive patches. The paper clips with
  /// the crossing exactly at the patch center (§3.2); a small jitter keeps
  /// the box-regression head honest without changing the task difficulty.
  std::int64_t positive_jitter = 6;
  /// Negative patches per positive patch.
  double negative_ratio = 1.0;
  /// Apply horizontal/vertical flip augmentation to positives.
  bool augment_flips = true;
  /// Append a DEM-hillshade fifth channel to every patch (the HRDEM input
  /// the paper's companion work [Wu et al. 2023] detects crossings on;
  /// models must then be built with in_channels = 5).
  bool include_dem_channel = false;
  /// Cap on total samples (0 = unlimited).
  std::int64_t max_samples = 0;
};

/// Fixed-size minibatch in NCHW layout.
struct Batch {
  Tensor images;  // [N, 4, size, size]
  Tensor labels;  // [N]
  Tensor boxes;   // [N, 4]
  std::int64_t size() const { return images.dim(0); }
};

/// Index-based train/test partition.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// In-memory sample collection.
class DrainageDataset {
 public:
  /// Synthesize per the config (deterministic in config.seed).
  static DrainageDataset synthesize(const DatasetConfig& config);

  std::size_t size() const { return samples_.size(); }
  const PatchSample& sample(std::size_t i) const;

  std::size_t num_positives() const;
  std::size_t num_negatives() const { return size() - num_positives(); }

  /// Shuffled train/test split with the given train fraction (paper: 0.8).
  Split split(double train_fraction, std::uint64_t seed) const;

  /// Assemble a batch from sample indices.
  Batch make_batch(const std::vector<std::size_t>& indices) const;

  /// Partition `indices` into batches of at most `batch_size`.
  static std::vector<std::vector<std::size_t>> batch_indices(
      const std::vector<std::size_t>& indices, std::int64_t batch_size);

  void add_sample(PatchSample sample) {
    samples_.push_back(std::move(sample));
  }

 private:
  std::vector<PatchSample> samples_;
};

/// One fully synthesized world (exposed for examples and tests).
struct World {
  Raster dem;             // culvert-breached DEM used for flow routing
  Raster dem_raw;         // DEM with road embankments, before breaching
  Raster hillshade;       // hillshade of dem_raw (embankments visible)
  Raster accumulation;
  Raster streams;
  Raster road_mask;
  std::vector<Road> roads;
  std::vector<Crossing> crossings;
  Orthophoto photo;
};

/// Build a world: terrain -> roads -> embankments -> hydrology -> crossings
/// -> culvert breaching -> re-routed hydrology -> rendering.
World synthesize_world(const DatasetConfig& config, Rng& rng);

}  // namespace dcn::geo
