// PPM/PGM image export for visual inspection of the synthetic data
// (regenerates the paper's Figure-4-style sample previews).
#pragma once

#include <string>

#include "geo/render.hpp"
#include "tensor/tensor.hpp"

namespace dcn::geo {

/// Write the RGB bands of an orthophoto as a binary PPM (P6).
void write_ppm_rgb(const std::string& path, const Orthophoto& photo);

/// Write one raster as a grayscale PGM (P5), min-max normalized.
void write_pgm(const std::string& path, const Raster& raster);

/// Write a [4, H, W] patch tensor as PPM using its RGB bands; optionally
/// draws a 1-px white box (cx, cy, w, h normalized) for label inspection.
void write_patch_ppm(const std::string& path, const Tensor& patch,
                     const float* box = nullptr);

}  // namespace dcn::geo
