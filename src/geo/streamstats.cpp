#include "geo/streamstats.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "geo/hydrology.hpp"

namespace dcn::geo {

Raster strahler_order(const Raster& streams, const std::vector<int>& dirs) {
  const std::int64_t rows = streams.rows();
  const std::int64_t cols = streams.cols();
  const std::int64_t n = rows * cols;
  DCN_CHECK(static_cast<std::int64_t>(dirs.size()) == n) << "dirs size";

  auto target = [&](std::int64_t i) -> std::int64_t {
    const int d = dirs[static_cast<std::size_t>(i)];
    if (d < 0) return -1;
    const std::int64_t r = i / cols + kD8Row[d];
    const std::int64_t c = i % cols + kD8Col[d];
    if (r < 0 || r >= rows || c < 0 || c >= cols) return -1;
    return r * cols + c;
  };

  // Process stream cells in upstream-first (topological) order restricted
  // to the stream network; Strahler rule: order = max child order, +1 when
  // two or more children share the max.
  std::vector<std::int32_t> indeg(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    if (streams.data()[i] == 0.0f) continue;
    const std::int64_t t = target(i);
    if (t >= 0 && streams.data()[t] > 0.0f) {
      ++indeg[static_cast<std::size_t>(t)];
    }
  }
  Raster order(rows, cols);
  std::vector<std::int32_t> max_child(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> max_count(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> stack;
  for (std::int64_t i = 0; i < n; ++i) {
    if (streams.data()[i] > 0.0f && indeg[static_cast<std::size_t>(i)] == 0) {
      stack.push_back(i);
    }
  }
  while (!stack.empty()) {
    const std::int64_t i = stack.back();
    stack.pop_back();
    std::int32_t my_order = 1;
    if (max_child[static_cast<std::size_t>(i)] > 0) {
      my_order = max_child[static_cast<std::size_t>(i)] +
                 (max_count[static_cast<std::size_t>(i)] >= 2 ? 1 : 0);
    }
    order.data()[i] = static_cast<float>(my_order);
    const std::int64_t t = target(i);
    if (t < 0 || streams.data()[t] == 0.0f) continue;
    auto& mc = max_child[static_cast<std::size_t>(t)];
    auto& cnt = max_count[static_cast<std::size_t>(t)];
    if (my_order > mc) {
      mc = my_order;
      cnt = 1;
    } else if (my_order == mc) {
      ++cnt;
    }
    if (--indeg[static_cast<std::size_t>(t)] == 0) stack.push_back(t);
  }
  return order;
}

WatershedStats watershedstats_impl(const Raster& dem, const Raster& streams,
                                   const Raster& order,
                                   const std::vector<int>& dirs,
                                   const std::vector<Crossing>& crossings) {
  WatershedStats stats;
  std::int64_t stream_cells = 0;
  int max_order = 0;
  for (std::int64_t i = 0; i < streams.size(); ++i) {
    if (streams.data()[i] > 0.0f) {
      ++stream_cells;
      max_order = std::max(max_order, static_cast<int>(order.data()[i]));
    }
  }
  stats.drainage_density =
      static_cast<double>(stream_cells) / static_cast<double>(streams.size());
  stats.max_strahler_order = max_order;
  stats.cells_per_order.assign(static_cast<std::size_t>(max_order) + 1, 0);
  for (std::int64_t i = 0; i < streams.size(); ++i) {
    const int o = static_cast<int>(order.data()[i]);
    if (o > 0) ++stats.cells_per_order[static_cast<std::size_t>(o)];
  }
  // Sources: order-1 stream cells with no upstream stream neighbor.
  const std::int64_t rows = streams.rows();
  const std::int64_t cols = streams.cols();
  for (std::int64_t i = 0; i < streams.size(); ++i) {
    if (order.data()[i] != 1.0f) continue;
    bool has_upstream = false;
    const std::int64_t r = i / cols;
    const std::int64_t c = i % cols;
    for (int d = 0; d < 8 && !has_upstream; ++d) {
      const std::int64_t nr = r + kD8Row[d];
      const std::int64_t nc = c + kD8Col[d];
      if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
      const std::int64_t j = nr * cols + nc;
      if (streams.data()[j] == 0.0f) continue;
      const int nd = dirs[static_cast<std::size_t>(j)];
      if (nd < 0) continue;
      if (nr + kD8Row[nd] == r && nc + kD8Col[nd] == c) has_upstream = true;
    }
    if (!has_upstream) ++stats.sources;
  }
  stats.relief = static_cast<double>(dem.max_value() - dem.min_value());
  stats.crossing_density =
      stream_cells > 0
          ? 1000.0 * static_cast<double>(crossings.size()) / stream_cells
          : 0.0;
  return stats;
}

WatershedStats watershed_stats(const Raster& dem, const Raster& streams,
                               const std::vector<int>& dirs,
                               const std::vector<Crossing>& crossings) {
  const Raster order = strahler_order(streams, dirs);
  return watershedstats_impl(dem, streams, order, dirs, crossings);
}

}  // namespace dcn::geo
