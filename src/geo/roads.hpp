// Road network synthesis.
//
// The study watershed has a dense, mostly rectilinear agricultural road
// grid. We synthesize north-south and east-west section roads with gentle
// jitter and rasterize them with a configurable width; the mask later (a)
// raises road embankments onto the DEM ("digital dams") and (b) paints the
// gray road surface into the orthophoto bands.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/raster.hpp"

namespace dcn {
class Rng;
}

namespace dcn::geo {

/// One road centerline as a dense polyline of cell coordinates.
struct Road {
  std::vector<std::pair<std::int64_t, std::int64_t>> centerline;  // (r, c)
  double width = 5.0;  // meters (cells)
};

struct RoadConfig {
  /// Approximate spacing between parallel roads (cells).
  std::int64_t spacing = 120;
  /// Road half-width jitter and drift amplitude.
  double drift = 0.15;
  double width = 5.0;
  /// Fraction of grid lines that actually carry a road.
  double density = 0.85;
};

/// Generate a rectilinear-with-jitter road network over a rows x cols grid.
std::vector<Road> synthesize_roads(std::int64_t rows, std::int64_t cols,
                                   const RoadConfig& config, Rng& rng);

/// Rasterize roads into a [0,1] mask (1 on the surface, soft shoulder).
Raster rasterize_roads(std::int64_t rows, std::int64_t cols,
                       const std::vector<Road>& roads);

}  // namespace dcn::geo
