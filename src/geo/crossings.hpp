// Drainage-crossing (culvert) placement.
//
// A drainage crossing exists wherever a stream passes under a road. We
// intersect the stream raster with road centerlines, cluster intersection
// runs (a stream crossing a wide road hits several cells) and emit one
// culvert location per cluster — the ground-truth objects the detector is
// trained on, standing in for the paper's manually digitized 2022 locations.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/raster.hpp"
#include "geo/roads.hpp"

namespace dcn::geo {

/// One ground-truth drainage crossing.
struct Crossing {
  std::int64_t row = 0;
  std::int64_t col = 0;
  /// Extent of the culvert structure in cells (bounding box side).
  std::int64_t extent = 12;
};

/// Locate crossings: cells where the stream mask and a road surface overlap,
/// clustered so each physical crossing is reported once. `min_separation`
/// suppresses duplicates closer than that many cells.
std::vector<Crossing> find_crossings(const Raster& streams,
                                     const std::vector<Road>& roads,
                                     std::int64_t min_separation = 24);

}  // namespace dcn::geo
