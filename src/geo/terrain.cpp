#include "geo/terrain.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::geo {
namespace {

// Smoothstep-interpolated lattice noise for one octave.
Raster lattice_noise(std::int64_t rows, std::int64_t cols, double wavelength,
                     Rng& rng) {
  DCN_CHECK(wavelength >= 1.0) << "noise wavelength";
  const std::int64_t grid_rows =
      static_cast<std::int64_t>(std::ceil(rows / wavelength)) + 2;
  const std::int64_t grid_cols =
      static_cast<std::int64_t>(std::ceil(cols / wavelength)) + 2;
  Raster lattice(grid_rows, grid_cols);
  for (std::int64_t r = 0; r < grid_rows; ++r) {
    for (std::int64_t c = 0; c < grid_cols; ++c) {
      lattice.at(r, c) = static_cast<float>(rng.uniform());
    }
  }
  auto smooth = [](double t) { return t * t * (3.0 - 2.0 * t); };
  Raster out(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    const double gr = r / wavelength;
    const std::int64_t r0 = static_cast<std::int64_t>(gr);
    const double fr = smooth(gr - r0);
    for (std::int64_t c = 0; c < cols; ++c) {
      const double gc = c / wavelength;
      const std::int64_t c0 = static_cast<std::int64_t>(gc);
      const double fc = smooth(gc - c0);
      const double top = lattice.at(r0, c0) +
                         (lattice.at(r0, c0 + 1) - lattice.at(r0, c0)) * fc;
      const double bot =
          lattice.at(r0 + 1, c0) +
          (lattice.at(r0 + 1, c0 + 1) - lattice.at(r0 + 1, c0)) * fc;
      out.at(r, c) = static_cast<float>(top + (bot - top) * fr);
    }
  }
  return out;
}

}  // namespace

Raster value_noise(std::int64_t rows, std::int64_t cols, double wavelength,
                   int octaves, Rng& rng) {
  DCN_CHECK(octaves >= 1) << "octaves";
  Raster acc(rows, cols);
  double amp = 1.0;
  double total_amp = 0.0;
  double wl = wavelength;
  for (int o = 0; o < octaves; ++o) {
    const Raster layer = lattice_noise(rows, cols, std::max(1.0, wl), rng);
    for (std::int64_t i = 0; i < acc.size(); ++i) {
      acc.data()[i] += static_cast<float>(amp) * layer.data()[i];
    }
    total_amp += amp;
    amp *= 0.5;
    wl *= 0.5;
  }
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    acc.data()[i] = static_cast<float>(acc.data()[i] / total_amp);
  }
  return acc;
}

Raster synthesize_terrain(const TerrainConfig& config, Rng& rng) {
  DCN_CHECK(config.rows >= 32 && config.cols >= 32)
      << "terrain too small: " << config.rows << 'x' << config.cols;
  Raster dem(config.rows, config.cols);

  // Regional west->east tilt (the watershed drains eastward).
  for (std::int64_t r = 0; r < config.rows; ++r) {
    for (std::int64_t c = 0; c < config.cols; ++c) {
      const double frac = static_cast<double>(c) / (config.cols - 1);
      dem.at(r, c) = static_cast<float>(config.regional_drop * (1.0 - frac));
    }
  }

  // Loess-plain undulation.
  const Raster noise = value_noise(config.rows, config.cols,
                                   config.base_wavelength, config.octaves, rng);
  for (std::int64_t i = 0; i < dem.size(); ++i) {
    dem.data()[i] +=
        static_cast<float>((noise.data()[i] - 0.5) * config.noise_amplitude);
  }

  // Carve shallow primary valleys as smooth west->east wandering paths so
  // flow accumulation concentrates into a few main stems.
  for (int v = 0; v < config.valleys; ++v) {
    double row = rng.uniform(0.15, 0.85) * config.rows;
    double drift = 0.0;
    for (std::int64_t c = 0; c < config.cols; ++c) {
      drift += rng.uniform(-0.35, 0.35);
      drift *= 0.98;  // mean-revert so valleys stay in the basin
      row += drift;
      row = std::clamp(row, 4.0, static_cast<double>(config.rows - 5));
      const std::int64_t rc = static_cast<std::int64_t>(row);
      // Gaussian cross-section, ~9 cells wide.
      for (std::int64_t dr = -6; dr <= 6; ++dr) {
        const std::int64_t rr = rc + dr;
        if (rr < 0 || rr >= config.rows) continue;
        const double w = std::exp(-(dr * dr) / (2.0 * 2.5 * 2.5));
        dem.at(rr, c) -= static_cast<float>(config.valley_depth * w);
      }
    }
  }
  return dem;
}

}  // namespace dcn::geo
