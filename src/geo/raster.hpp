// Single-band raster grid.
//
// The geo substrate works on square-ish float rasters at a nominal 1 m
// ground sample distance, mirroring the paper's NAIP orthophotos and
// LiDAR-derived DEMs. Row 0 is north; x grows east.
#pragma once

#include <cstdint>
#include <vector>

namespace dcn::geo {

/// Row-major float raster.
class Raster {
 public:
  Raster() = default;
  Raster(std::int64_t rows, std::int64_t cols, float fill = 0.0f);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }

  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;

  /// Clamped access: coordinates outside the grid read the nearest cell.
  float at_clamped(std::int64_t r, std::int64_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  bool in_bounds(std::int64_t r, std::int64_t c) const {
    return r >= 0 && r < rows_ && c >= 0 && c < cols_;
  }

  /// Bilinear sample at fractional (row, col), clamped at edges.
  float sample(double r, double c) const;

  /// Linearly rescale values so min -> lo and max -> hi (no-op when flat).
  void normalize(float lo, float hi);

  float min_value() const;
  float max_value() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace dcn::geo
