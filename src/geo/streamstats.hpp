// Stream-network analytics: Strahler order and watershed statistics.
//
// These give the synthetic worlds quantitative hydrologic credentials — a
// dendritic network should show increasing Strahler orders, drainage
// density in a plausible range, and crossings distributed along the
// higher-order stems. The survey example reports them, and the tests use
// them as realism invariants for the generator.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/crossings.hpp"
#include "geo/raster.hpp"

namespace dcn::geo {

/// Strahler stream order per cell (0 for non-stream cells).
/// `dirs` are D8 directions on the (depression-filled) DEM used to derive
/// `streams`.
Raster strahler_order(const Raster& streams, const std::vector<int>& dirs);

struct WatershedStats {
  /// Stream cells / total cells.
  double drainage_density = 0.0;
  /// Highest Strahler order present.
  int max_strahler_order = 0;
  /// Stream cells per order (index 0 unused).
  std::vector<std::int64_t> cells_per_order;
  /// Number of stream sources (order-1 heads).
  std::int64_t sources = 0;
  /// Total relief of the DEM (max - min), meters.
  double relief = 0.0;
  /// Crossings per 1000 stream cells.
  double crossing_density = 0.0;
};

WatershedStats watershed_stats(const Raster& dem, const Raster& streams,
                               const std::vector<int>& dirs,
                               const std::vector<Crossing>& crossings);

}  // namespace dcn::geo
