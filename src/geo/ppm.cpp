#include "geo/ppm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "core/error.hpp"

namespace dcn::geo {
namespace {

unsigned char to_byte(float v) {
  return static_cast<unsigned char>(
      std::clamp(std::lround(v * 255.0f), 0l, 255l));
}

}  // namespace

void write_ppm_rgb(const std::string& path, const Orthophoto& photo) {
  std::ofstream os(path, std::ios::binary);
  DCN_CHECK(os.good()) << "cannot open " << path;
  const std::int64_t rows = photo.rows();
  const std::int64_t cols = photo.cols();
  os << "P6\n" << cols << ' ' << rows << "\n255\n";
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      for (int b = 0; b < 3; ++b) {
        const unsigned char byte = to_byte(photo.bands[b].at(r, c));
        os.write(reinterpret_cast<const char*>(&byte), 1);
      }
    }
  }
  DCN_CHECK(os.good()) << "write to " << path << " failed";
}

void write_pgm(const std::string& path, const Raster& raster) {
  Raster norm = raster;
  norm.normalize(0.0f, 1.0f);
  std::ofstream os(path, std::ios::binary);
  DCN_CHECK(os.good()) << "cannot open " << path;
  os << "P5\n" << norm.cols() << ' ' << norm.rows() << "\n255\n";
  for (std::int64_t i = 0; i < norm.size(); ++i) {
    const unsigned char byte = to_byte(norm.data()[i]);
    os.write(reinterpret_cast<const char*>(&byte), 1);
  }
  DCN_CHECK(os.good()) << "write to " << path << " failed";
}

void write_patch_ppm(const std::string& path, const Tensor& patch,
                     const float* box) {
  DCN_CHECK(patch.rank() == 3 && patch.dim(0) >= 3)
      << "expected [>=3, H, W] patch, got " << patch.shape().to_string();
  const std::int64_t h = patch.dim(1);
  const std::int64_t w = patch.dim(2);
  std::vector<unsigned char> pixels(static_cast<std::size_t>(h * w * 3));
  for (std::int64_t r = 0; r < h; ++r) {
    for (std::int64_t c = 0; c < w; ++c) {
      for (int b = 0; b < 3; ++b) {
        pixels[static_cast<std::size_t>((r * w + c) * 3 + b)] =
            to_byte(patch.at({b, r, c}));
      }
    }
  }
  if (box != nullptr && box[2] > 0.0f && box[3] > 0.0f) {
    const auto x0 = static_cast<std::int64_t>((box[0] - box[2] / 2) * w);
    const auto x1 = static_cast<std::int64_t>((box[0] + box[2] / 2) * w);
    const auto y0 = static_cast<std::int64_t>((box[1] - box[3] / 2) * h);
    const auto y1 = static_cast<std::int64_t>((box[1] + box[3] / 2) * h);
    auto paint = [&](std::int64_t r, std::int64_t c) {
      if (r < 0 || r >= h || c < 0 || c >= w) return;
      for (int b = 0; b < 3; ++b) {
        pixels[static_cast<std::size_t>((r * w + c) * 3 + b)] = 255;
      }
    };
    for (std::int64_t c = x0; c <= x1; ++c) {
      paint(y0, c);
      paint(y1, c);
    }
    for (std::int64_t r = y0; r <= y1; ++r) {
      paint(r, x0);
      paint(r, x1);
    }
  }
  std::ofstream os(path, std::ios::binary);
  DCN_CHECK(os.good()) << "cannot open " << path;
  os << "P6\n" << w << ' ' << h << "\n255\n";
  os.write(reinterpret_cast<const char*>(pixels.data()),
           static_cast<std::streamsize>(pixels.size()));
  DCN_CHECK(os.good()) << "write to " << path << " failed";
}

}  // namespace dcn::geo
