#include "geo/hydrology.hpp"

#include <algorithm>
#include <queue>

#include "core/error.hpp"

namespace dcn::geo {
namespace {

struct Cell {
  float elevation;
  std::int64_t r;
  std::int64_t c;
  // Min-heap on elevation.
  bool operator>(const Cell& other) const {
    return elevation > other.elevation;
  }
};

}  // namespace

Raster fill_depressions(const Raster& dem, float epsilon) {
  const std::int64_t rows = dem.rows();
  const std::int64_t cols = dem.cols();
  Raster filled(rows, cols);
  std::vector<char> visited(static_cast<std::size_t>(rows * cols), 0);
  std::priority_queue<Cell, std::vector<Cell>, std::greater<Cell>> heap;

  auto push = [&](std::int64_t r, std::int64_t c, float elev) {
    visited[static_cast<std::size_t>(r * cols + c)] = 1;
    filled.at(r, c) = elev;
    heap.push({elev, r, c});
  };

  // Seed with the boundary at its own elevation.
  for (std::int64_t c = 0; c < cols; ++c) {
    push(0, c, dem.at(0, c));
    if (rows > 1) push(rows - 1, c, dem.at(rows - 1, c));
  }
  for (std::int64_t r = 1; r + 1 < rows; ++r) {
    push(r, 0, dem.at(r, 0));
    if (cols > 1) push(r, cols - 1, dem.at(r, cols - 1));
  }

  while (!heap.empty()) {
    const Cell cell = heap.top();
    heap.pop();
    for (int d = 0; d < 8; ++d) {
      const std::int64_t nr = cell.r + kD8Row[d];
      const std::int64_t nc = cell.c + kD8Col[d];
      if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
      if (visited[static_cast<std::size_t>(nr * cols + nc)]) continue;
      const float spill = std::max(dem.at(nr, nc), cell.elevation + epsilon);
      push(nr, nc, spill);
    }
  }
  return filled;
}

std::vector<int> flow_directions(const Raster& dem) {
  const std::int64_t rows = dem.rows();
  const std::int64_t cols = dem.cols();
  std::vector<int> dirs(static_cast<std::size_t>(rows * cols), kPit);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const float z = dem.at(r, c);
      float best_drop = 0.0f;
      int best_dir = kPit;
      bool edge_descent = false;
      for (int d = 0; d < 8; ++d) {
        const std::int64_t nr = r + kD8Row[d];
        const std::int64_t nc = c + kD8Col[d];
        // Diagonal neighbors are sqrt(2) farther; weight the drop.
        const float dist = (kD8Row[d] != 0 && kD8Col[d] != 0) ? 1.41421356f
                                                              : 1.0f;
        if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) {
          edge_descent = true;  // grid edge acts as an outlet at -inf
          continue;
        }
        const float drop = (z - dem.at(nr, nc)) / dist;
        if (drop > best_drop) {
          best_drop = drop;
          best_dir = d;
        }
      }
      if (best_dir == kPit && edge_descent) best_dir = kOutlet;
      dirs[static_cast<std::size_t>(r * cols + c)] = best_dir;
    }
  }
  return dirs;
}

Raster flow_accumulation(const Raster& dem, const std::vector<int>& dirs) {
  const std::int64_t rows = dem.rows();
  const std::int64_t cols = dem.cols();
  const std::int64_t n = rows * cols;
  DCN_CHECK(static_cast<std::int64_t>(dirs.size()) == n)
      << "dirs size mismatch";

  // In-degree of each cell in the flow graph.
  std::vector<std::int32_t> indeg(static_cast<std::size_t>(n), 0);
  auto target = [&](std::int64_t i) -> std::int64_t {
    const int d = dirs[static_cast<std::size_t>(i)];
    if (d < 0) return -1;
    const std::int64_t r = i / cols + kD8Row[d];
    const std::int64_t c = i % cols + kD8Col[d];
    if (r < 0 || r >= rows || c < 0 || c >= cols) return -1;
    return r * cols + c;
  };
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = target(i);
    if (t >= 0) ++indeg[static_cast<std::size_t>(t)];
  }

  Raster acc(rows, cols, 1.0f);
  std::vector<std::int64_t> stack;
  stack.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) stack.push_back(i);
  }
  std::int64_t processed = 0;
  while (!stack.empty()) {
    const std::int64_t i = stack.back();
    stack.pop_back();
    ++processed;
    const std::int64_t t = target(i);
    if (t < 0) continue;
    acc.data()[t] += acc.data()[i];
    if (--indeg[static_cast<std::size_t>(t)] == 0) stack.push_back(t);
  }
  DCN_CHECK(processed == n)
      << "flow graph has a cycle (" << processed << " of " << n
      << " cells processed) — DEM not depression-filled?";
  return acc;
}

Raster extract_streams(const Raster& accumulation, float threshold) {
  Raster streams(accumulation.rows(), accumulation.cols());
  for (std::int64_t i = 0; i < accumulation.size(); ++i) {
    streams.data()[i] = accumulation.data()[i] >= threshold ? 1.0f : 0.0f;
  }
  return streams;
}

void apply_embankment(Raster& dem, const Raster& mask, float height) {
  DCN_CHECK(dem.rows() == mask.rows() && dem.cols() == mask.cols())
      << "embankment mask size";
  for (std::int64_t i = 0; i < dem.size(); ++i) {
    if (mask.data()[i] > 0.0f) dem.data()[i] += height * mask.data()[i];
  }
}

void breach_at(Raster& dem,
               const std::vector<std::pair<std::int64_t, std::int64_t>>& cells,
               float depth, int radius) {
  for (const auto& [r, c] : cells) {
    for (int dr = -radius; dr <= radius; ++dr) {
      for (int dc = -radius; dc <= radius; ++dc) {
        const std::int64_t rr = r + dr;
        const std::int64_t cc = c + dc;
        if (dem.in_bounds(rr, cc)) dem.at(rr, cc) -= depth;
      }
    }
  }
}

}  // namespace dcn::geo
