#include "geo/render.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "geo/terrain.hpp"

namespace dcn::geo {
namespace {

float clamp01(double v) {
  return static_cast<float>(std::clamp(v, 0.0, 1.0));
}

}  // namespace

Orthophoto render_orthophoto(const Raster& dem, const Raster& accumulation,
                             const Raster& streams, const Raster& road_mask,
                             const std::vector<Crossing>& crossings,
                             const RenderConfig& config, Rng& rng) {
  const std::int64_t rows = dem.rows();
  const std::int64_t cols = dem.cols();
  DCN_CHECK(accumulation.rows() == rows && streams.rows() == rows &&
            road_mask.rows() == rows)
      << "layer sizes disagree";

  Orthophoto photo;
  for (auto& band : photo.bands) band = Raster(rows, cols);

  // Field texture: two noise scales — parcel-level crop variation plus
  // fine within-field texture.
  const Raster parcels = value_noise(rows, cols, 96.0, 2, rng);
  const Raster texture = value_noise(rows, cols, 7.0, 3, rng);

  const float max_acc = accumulation.max_value();
  const double log_max = std::log1p(static_cast<double>(max_acc));

  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int64_t i = r * cols + c;
      const double parcel = parcels.data()[i];
      const double tex =
          (texture.data()[i] - 0.5) * 2.0 * config.texture_amplitude;
      // Wetness in [0,1] from log flow accumulation.
      const double wet =
          std::log1p(static_cast<double>(accumulation.data()[i])) / log_max;

      // Crops: mix of green vegetation (high NIR) and bare brown soil.
      const double veg = 0.35 + 0.5 * parcel;
      double red = 0.32 - 0.10 * veg + tex;
      double green = 0.36 + 0.08 * veg + tex;
      double blue = 0.24 - 0.06 * veg + tex;
      double nir = 0.45 + 0.40 * veg + tex;

      // Moist soils darken in visible bands and brighten slightly in NIR.
      red -= 0.08 * wet;
      green -= 0.05 * wet;
      blue -= 0.02 * wet;
      nir += 0.05 * wet;

      // Open water: dark everywhere, very dark in NIR.
      if (streams.data()[i] > 0.0f) {
        red = 0.10 + tex * 0.3;
        green = 0.14 + tex * 0.3;
        blue = 0.18 + tex * 0.3;
        nir = 0.05 + tex * 0.2;
      } else if (wet > 0.55) {
        // Riparian vegetation fringe: very high NIR.
        nir = std::min(1.0, nir + 0.25 * (wet - 0.55) / 0.45);
      }

      // Road surface paints over everything with soft shoulders.
      const double road = road_mask.data()[i];
      if (road > 0.0) {
        const double gray = 0.55 + tex * 0.5;
        red = red * (1.0 - road) + gray * road;
        green = green * (1.0 - road) + gray * road;
        blue = blue * (1.0 - road) + gray * road;
        nir = nir * (1.0 - road) + 0.22 * road;
      }

      photo.bands[0].at(r, c) = clamp01(red);
      photo.bands[1].at(r, c) = clamp01(green);
      photo.bands[2].at(r, c) = clamp01(blue);
      photo.bands[3].at(r, c) = clamp01(nir);
    }
  }

  // Culvert signatures: bright concrete headwalls on both stream-sides of
  // the road plus a dark water slot across the embankment.
  for (const Crossing& x : crossings) {
    const std::int64_t half = x.extent / 2;
    const double k = config.culvert_contrast;
    for (std::int64_t dr = -half; dr <= half; ++dr) {
      for (std::int64_t dc = -half; dc <= half; ++dc) {
        const std::int64_t rr = x.row + dr;
        const std::int64_t cc = x.col + dc;
        if (!photo.bands[0].in_bounds(rr, cc)) continue;
        const double dist = std::sqrt(double(dr * dr + dc * dc));
        if (dist > half) continue;
        const std::int64_t i = rr * cols + cc;
        const bool on_road = road_mask.data()[i] > 0.4f;
        const bool on_stream = streams.data()[i] > 0.0f;
        if (on_stream && on_road) {
          // Water slot through the embankment.
          photo.bands[0].data()[i] = clamp01(0.12 * k + 0.12 * (1 - k));
          photo.bands[1].data()[i] = clamp01(0.15);
          photo.bands[2].data()[i] = clamp01(0.20);
          photo.bands[3].data()[i] = clamp01(0.04);
        } else if (on_road || dist <= half * 0.6) {
          // Concrete headwall / apron: bright in visible, moderate NIR.
          const double w = k * (1.0 - dist / (half + 1.0));
          photo.bands[0].data()[i] =
              clamp01(photo.bands[0].data()[i] * (1 - w) + 0.85 * w);
          photo.bands[1].data()[i] =
              clamp01(photo.bands[1].data()[i] * (1 - w) + 0.85 * w);
          photo.bands[2].data()[i] =
              clamp01(photo.bands[2].data()[i] * (1 - w) + 0.80 * w);
          photo.bands[3].data()[i] =
              clamp01(photo.bands[3].data()[i] * (1 - w) + 0.35 * w);
        }
      }
    }
  }

  // Riparian canopy occlusion: clusters of tree crowns over a fraction of
  // the crossings, partially or fully hiding the culvert signature (and
  // the road/stream context beneath them).
  if (config.canopy_occlusion > 0.0) {
    for (const Crossing& x : crossings) {
      if (!rng.bernoulli(config.canopy_occlusion)) continue;
      const int crowns = static_cast<int>(rng.uniform_int(3, 6));
      for (int t = 0; t < crowns; ++t) {
        const double cr = x.row + rng.normal(0.0, x.extent * 0.45);
        const double cc = x.col + rng.normal(0.0, x.extent * 0.45);
        const double radius = rng.uniform(3.0, 7.0);
        const std::int64_t reach = static_cast<std::int64_t>(radius) + 1;
        for (std::int64_t dr = -reach; dr <= reach; ++dr) {
          for (std::int64_t dc = -reach; dc <= reach; ++dc) {
            const auto rr = static_cast<std::int64_t>(cr) + dr;
            const auto cc2 = static_cast<std::int64_t>(cc) + dc;
            if (!photo.bands[0].in_bounds(rr, cc2)) continue;
            const double dist = std::sqrt(double(dr * dr + dc * dc));
            if (dist > radius) continue;
            // Soft-edged crown: dark green, very high NIR.
            const double w =
                std::min(1.0, 1.4 * (1.0 - dist / (radius + 0.5)));
            const std::int64_t i = rr * cols + cc2;
            photo.bands[0].data()[i] = clamp01(
                photo.bands[0].data()[i] * (1 - w) + 0.16 * w);
            photo.bands[1].data()[i] = clamp01(
                photo.bands[1].data()[i] * (1 - w) + 0.26 * w);
            photo.bands[2].data()[i] = clamp01(
                photo.bands[2].data()[i] * (1 - w) + 0.14 * w);
            photo.bands[3].data()[i] = clamp01(
                photo.bands[3].data()[i] * (1 - w) + 0.88 * w);
          }
        }
      }
    }
  }

  // Sensor noise.
  if (config.sensor_noise > 0.0) {
    for (auto& band : photo.bands) {
      for (std::int64_t i = 0; i < band.size(); ++i) {
        band.data()[i] = clamp01(band.data()[i] +
                                 rng.normal(0.0, config.sensor_noise));
      }
    }
  }
  return photo;
}

Raster hillshade(const Raster& dem, double azimuth_deg, double altitude_deg,
                 double z_factor) {
  DCN_CHECK(z_factor > 0.0) << "z_factor";
  const double azimuth = (360.0 - azimuth_deg + 90.0) * M_PI / 180.0;
  const double zenith = (90.0 - altitude_deg) * M_PI / 180.0;
  Raster shade(dem.rows(), dem.cols());
  for (std::int64_t r = 0; r < dem.rows(); ++r) {
    for (std::int64_t c = 0; c < dem.cols(); ++c) {
      // Horn's 3x3 finite differences (clamped at edges).
      auto z = [&](std::int64_t dr, std::int64_t dc) {
        return static_cast<double>(dem.at_clamped(r + dr, c + dc)) * z_factor;
      };
      const double dzdx = ((z(-1, 1) + 2 * z(0, 1) + z(1, 1)) -
                           (z(-1, -1) + 2 * z(0, -1) + z(1, -1))) /
                          8.0;
      const double dzdy = ((z(1, -1) + 2 * z(1, 0) + z(1, 1)) -
                           (z(-1, -1) + 2 * z(-1, 0) + z(-1, 1))) /
                          8.0;
      const double slope = std::atan(std::hypot(dzdx, dzdy));
      double aspect = 0.0;
      if (dzdx != 0.0 || dzdy != 0.0) aspect = std::atan2(dzdy, -dzdx);
      const double illum = std::cos(zenith) * std::cos(slope) +
                           std::sin(zenith) * std::sin(slope) *
                               std::cos(azimuth - aspect);
      shade.at(r, c) = clamp01(illum);
    }
  }
  return shade;
}

}  // namespace dcn::geo
