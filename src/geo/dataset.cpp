#include "geo/dataset.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "geo/hydrology.hpp"

namespace dcn::geo {

World synthesize_world(const DatasetConfig& config, Rng& rng) {
  World world;
  world.dem_raw = synthesize_terrain(config.terrain, rng);

  world.roads = synthesize_roads(config.terrain.rows, config.terrain.cols,
                                 config.roads, rng);
  world.road_mask = rasterize_roads(config.terrain.rows, config.terrain.cols,
                                    world.roads);

  // Road embankments become digital dams on the DEM.
  apply_embankment(world.dem_raw, world.road_mask, 1.5f);

  // First hydrology pass on the dammed DEM to locate streams and thus the
  // culverts that must exist where streams meet roads.
  Raster filled = fill_depressions(world.dem_raw);
  auto dirs = flow_directions(filled);
  Raster acc = flow_accumulation(filled, dirs);
  Raster streams =
      extract_streams(acc, static_cast<float>(config.stream_threshold));
  world.crossings = find_crossings(streams, world.roads);

  // Breach the DEM at the culverts and re-run hydrology: this is the
  // paper's Figure-1 "incorporate culvert information" step and yields the
  // connected drainage network the detector's labels are based on.
  world.dem = world.dem_raw;
  std::vector<std::pair<std::int64_t, std::int64_t>> cells;
  cells.reserve(world.crossings.size());
  for (const Crossing& x : world.crossings) cells.emplace_back(x.row, x.col);
  breach_at(world.dem, cells, 3.0f, 2);

  filled = fill_depressions(world.dem);
  dirs = flow_directions(filled);
  world.accumulation = flow_accumulation(filled, dirs);
  world.streams = extract_streams(
      world.accumulation, static_cast<float>(config.stream_threshold));

  world.photo =
      render_orthophoto(world.dem, world.accumulation, world.streams,
                        world.road_mask, world.crossings, config.render, rng);
  // Hillshade the embankment DEM: the terrain morphology channel on which
  // road embankments and breached channels are visible.
  world.hillshade = hillshade(world.dem_raw);
  return world;
}

DrainageDataset DrainageDataset::synthesize(const DatasetConfig& config) {
  DCN_CHECK(config.num_worlds >= 1) << "need at least one world";
  DCN_CHECK(config.patch_size >= 16) << "patch size too small";
  Rng rng(config.seed);
  DrainageDataset dataset;

  for (int w = 0; w < config.num_worlds; ++w) {
    Rng world_rng = rng.split();
    const World world = synthesize_world(config, world_rng);
    DCN_LOG_DEBUG << "world " << w << ": " << world.crossings.size()
                  << " crossings";

    const Raster* extra =
        config.include_dem_channel ? &world.hillshade : nullptr;
    std::vector<PatchSample> positives;
    for (const Crossing& x : world.crossings) {
      positives.push_back(make_positive(world.photo, x, config.patch_size,
                                        config.positive_jitter, world_rng,
                                        extra));
    }
    if (config.augment_flips) {
      const std::size_t base = positives.size();
      for (std::size_t i = 0; i < base; ++i) {
        positives.push_back(flip_horizontal(positives[i]));
        positives.push_back(flip_vertical(positives[i]));
      }
    }

    const auto num_neg = static_cast<std::size_t>(
        static_cast<double>(positives.size()) * config.negative_ratio);
    std::vector<PatchSample> negatives;
    for (std::size_t i = 0; i < num_neg; ++i) {
      PatchSample neg;
      if (make_negative(world.photo, world.crossings, config.patch_size,
                        config.patch_size, world_rng, neg, 64, extra)) {
        negatives.push_back(std::move(neg));
      }
    }

    for (auto& s : positives) dataset.add_sample(std::move(s));
    for (auto& s : negatives) dataset.add_sample(std::move(s));
    if (config.max_samples > 0 &&
        static_cast<std::int64_t>(dataset.size()) >= config.max_samples) {
      break;
    }
  }

  if (config.max_samples > 0 &&
      static_cast<std::int64_t>(dataset.size()) >
          config.max_samples) {
    // Drop a random suffix of a shuffled order so class balance survives.
    const auto perm = rng.permutation(dataset.size());
    DrainageDataset trimmed;
    for (std::int64_t i = 0; i < config.max_samples; ++i) {
      trimmed.add_sample(dataset.samples_[perm[static_cast<std::size_t>(i)]]);
    }
    return trimmed;
  }
  return dataset;
}

const PatchSample& DrainageDataset::sample(std::size_t i) const {
  DCN_CHECK(i < samples_.size()) << "sample index " << i;
  return samples_[i];
}

std::size_t DrainageDataset::num_positives() const {
  std::size_t n = 0;
  for (const auto& s : samples_) n += s.label > 0.0f ? 1 : 0;
  return n;
}

Split DrainageDataset::split(double train_fraction,
                             std::uint64_t seed) const {
  DCN_CHECK(train_fraction > 0.0 && train_fraction < 1.0)
      << "train fraction " << train_fraction;
  Rng rng(seed);
  const auto perm = rng.permutation(samples_.size());
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(samples_.size()) * train_fraction);
  Split split;
  split.train.assign(perm.begin(), perm.begin() + cut);
  split.test.assign(perm.begin() + cut, perm.end());
  return split;
}

Batch DrainageDataset::make_batch(
    const std::vector<std::size_t>& indices) const {
  DCN_CHECK(!indices.empty()) << "empty batch";
  const PatchSample& first = sample(indices[0]);
  const std::int64_t channels = first.image.dim(0);
  const std::int64_t size = first.image.dim(1);
  const auto n = static_cast<std::int64_t>(indices.size());

  Batch batch;
  batch.images = Tensor(Shape{n, channels, size, size});
  batch.labels = Tensor(Shape{n});
  batch.boxes = Tensor(Shape{n, 4});
  const std::int64_t stride = channels * size * size;
  for (std::int64_t i = 0; i < n; ++i) {
    const PatchSample& s = sample(indices[static_cast<std::size_t>(i)]);
    DCN_CHECK(s.image.shape() == first.image.shape())
        << "mixed patch shapes in one batch";
    std::copy(s.image.data(), s.image.data() + stride,
              batch.images.data() + i * stride);
    batch.labels[i] = s.label;
    for (std::int64_t c = 0; c < 4; ++c) batch.boxes[i * 4 + c] = s.box[c];
  }
  return batch;
}

std::vector<std::vector<std::size_t>> DrainageDataset::batch_indices(
    const std::vector<std::size_t>& indices, std::int64_t batch_size) {
  DCN_CHECK(batch_size > 0) << "batch size";
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t i = 0; i < indices.size();
       i += static_cast<std::size_t>(batch_size)) {
    const std::size_t end = std::min(
        indices.size(), i + static_cast<std::size_t>(batch_size));
    batches.emplace_back(indices.begin() + i, indices.begin() + end);
  }
  return batches;
}

}  // namespace dcn::geo
