#include "geo/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "geo/patch.hpp"

namespace dcn::geo {

std::pair<double, double> GeoTransform::pixel_to_world(double row,
                                                       double col) const {
  return {origin_x + (col + 0.5) * pixel_size,
          origin_y - (row + 0.5) * pixel_size};
}

std::pair<double, double> GeoTransform::world_to_pixel(double x,
                                                       double y) const {
  return {(origin_y - y) / pixel_size - 0.5,
          (x - origin_x) / pixel_size - 0.5};
}

std::vector<Tile> make_tiles(std::int64_t rows, std::int64_t cols,
                             std::int64_t tile_size, double overlap,
                             const GeoTransform& transform) {
  DCN_CHECK(tile_size > 0 && tile_size <= rows && tile_size <= cols)
      << "tile size " << tile_size << " vs scene " << rows << 'x' << cols;
  DCN_CHECK(overlap >= 0.0 && overlap < 1.0) << "overlap " << overlap;
  const auto stride = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(tile_size * (1.0 - overlap))));

  std::vector<Tile> tiles;
  for (std::int64_t r = 0;; r += stride) {
    const std::int64_t row = std::min(r, rows - tile_size);
    for (std::int64_t c = 0;; c += stride) {
      const std::int64_t col = std::min(c, cols - tile_size);
      Tile tile;
      tile.row = row;
      tile.col = col;
      tile.size = tile_size;
      const auto [x, y] = transform.pixel_to_world(
          row + tile_size / 2.0 - 0.5, col + tile_size / 2.0 - 0.5);
      tile.center_x = x;
      tile.center_y = y;
      tiles.push_back(tile);
      if (col == cols - tile_size) break;
    }
    if (row == rows - tile_size) break;
  }
  return tiles;
}

Tensor extract_tile(const Orthophoto& photo, const Tile& tile) {
  return clip_patch(photo, tile.row + tile.size / 2, tile.col + tile.size / 2,
                    tile.size);
}

std::pair<double, double> detection_to_world(const Tile& tile,
                                             const float box[4],
                                             const GeoTransform& transform) {
  const double row = tile.row + static_cast<double>(box[1]) * tile.size - 0.5;
  const double col = tile.col + static_cast<double>(box[0]) * tile.size - 0.5;
  return transform.pixel_to_world(row, col);
}

}  // namespace dcn::geo
