#include "geo/patch.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::geo {

Tensor clip_patch(const Orthophoto& photo, std::int64_t center_r,
                  std::int64_t center_c, std::int64_t size,
                  const Raster* extra_band) {
  DCN_CHECK(size > 0) << "patch size";
  const std::int64_t channels = extra_band != nullptr ? 5 : 4;
  Tensor patch(Shape{channels, size, size});
  const std::int64_t r0 = center_r - size / 2;
  const std::int64_t c0 = center_c - size / 2;
  for (std::int64_t b = 0; b < channels; ++b) {
    const Raster& band = b < 4 ? photo.bands[static_cast<std::size_t>(b)]
                               : *extra_band;
    float* dst = patch.data() + b * size * size;
    for (std::int64_t r = 0; r < size; ++r) {
      for (std::int64_t c = 0; c < size; ++c) {
        dst[r * size + c] = band.at_clamped(r0 + r, c0 + c);
      }
    }
  }
  return patch;
}

PatchSample make_positive(const Orthophoto& photo, const Crossing& crossing,
                          std::int64_t size, std::int64_t max_jitter,
                          Rng& rng, const Raster* extra_band) {
  const std::int64_t jr = rng.uniform_int(-max_jitter, max_jitter);
  const std::int64_t jc = rng.uniform_int(-max_jitter, max_jitter);
  const std::int64_t center_r = crossing.row + jr;
  const std::int64_t center_c = crossing.col + jc;

  PatchSample sample;
  sample.image = clip_patch(photo, center_r, center_c, size, extra_band);
  sample.label = 1.0f;
  // Object center in patch coordinates.
  const double ox = (crossing.col - (center_c - size / 2)) /
                    static_cast<double>(size);
  const double oy = (crossing.row - (center_r - size / 2)) /
                    static_cast<double>(size);
  const double extent = std::min<double>(crossing.extent, size) /
                        static_cast<double>(size);
  sample.box = {static_cast<float>(std::clamp(ox, 0.0, 1.0)),
                static_cast<float>(std::clamp(oy, 0.0, 1.0)),
                static_cast<float>(extent), static_cast<float>(extent)};
  return sample;
}

bool make_negative(const Orthophoto& photo,
                   const std::vector<Crossing>& crossings, std::int64_t size,
                   std::int64_t min_distance, Rng& rng, PatchSample& out,
                   int max_tries, const Raster* extra_band) {
  const std::int64_t rows = photo.rows();
  const std::int64_t cols = photo.cols();
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    const std::int64_t r = rng.uniform_int(size / 2, rows - 1 - size / 2);
    const std::int64_t c = rng.uniform_int(size / 2, cols - 1 - size / 2);
    bool clear = true;
    for (const Crossing& x : crossings) {
      const std::int64_t dr = x.row - r;
      const std::int64_t dc = x.col - c;
      if (dr * dr + dc * dc < min_distance * min_distance) {
        clear = false;
        break;
      }
    }
    if (!clear) continue;
    out.image = clip_patch(photo, r, c, size, extra_band);
    out.label = 0.0f;
    out.box = {0.0f, 0.0f, 0.0f, 0.0f};
    return true;
  }
  return false;
}

PatchSample flip_horizontal(const PatchSample& sample) {
  PatchSample out;
  out.label = sample.label;
  const std::int64_t channels = sample.image.dim(0);
  const std::int64_t size = sample.image.dim(1);
  out.image = Tensor(sample.image.shape());
  for (std::int64_t b = 0; b < channels; ++b) {
    const float* src = sample.image.data() + b * size * size;
    float* dst = out.image.data() + b * size * size;
    for (std::int64_t r = 0; r < size; ++r) {
      for (std::int64_t c = 0; c < size; ++c) {
        dst[r * size + c] = src[r * size + (size - 1 - c)];
      }
    }
  }
  out.box = sample.box;
  if (sample.label > 0.0f) out.box[0] = 1.0f - sample.box[0];
  return out;
}

PatchSample flip_vertical(const PatchSample& sample) {
  PatchSample out;
  out.label = sample.label;
  const std::int64_t channels = sample.image.dim(0);
  const std::int64_t size = sample.image.dim(1);
  out.image = Tensor(sample.image.shape());
  for (std::int64_t b = 0; b < channels; ++b) {
    const float* src = sample.image.data() + b * size * size;
    float* dst = out.image.data() + b * size * size;
    for (std::int64_t r = 0; r < size; ++r) {
      for (std::int64_t c = 0; c < size; ++c) {
        dst[r * size + c] = src[(size - 1 - r) * size + c];
      }
    }
  }
  out.box = sample.box;
  if (sample.label > 0.0f) out.box[1] = 1.0f - sample.box[1];
  return out;
}

PatchSample rotate90(const PatchSample& sample) {
  DCN_CHECK(sample.image.dim(1) == sample.image.dim(2))
      << "rotate90 requires square patches, got "
      << sample.image.shape().to_string();
  PatchSample out;
  out.label = sample.label;
  const std::int64_t channels = sample.image.dim(0);
  const std::int64_t size = sample.image.dim(1);
  out.image = Tensor(sample.image.shape());
  // Counter-clockwise: dst(r, c) = src(c, size-1-r).
  for (std::int64_t b = 0; b < channels; ++b) {
    const float* src = sample.image.data() + b * size * size;
    float* dst = out.image.data() + b * size * size;
    for (std::int64_t r = 0; r < size; ++r) {
      for (std::int64_t c = 0; c < size; ++c) {
        dst[r * size + c] = src[c * size + (size - 1 - r)];
      }
    }
  }
  out.box = sample.box;
  if (sample.label > 0.0f) {
    // (cx, cy) -> (cy, 1 - cx); width/height swap.
    out.box[0] = sample.box[1];
    out.box[1] = 1.0f - sample.box[0];
    out.box[2] = sample.box[3];
    out.box[3] = sample.box[2];
  }
  return out;
}

}  // namespace dcn::geo
