// Procedural DEM synthesis.
//
// Models the paper's study area — a gently undulating loess plain with a
// regional west-to-east descending gradient (West Fork Big Blue Watershed,
// NE) — as multi-octave value noise on top of a tilted plane, plus a few
// carved valley lines so the flow-routing stage produces a realistic
// dendritic stream network.
#pragma once

#include <cstdint>

#include "geo/raster.hpp"

namespace dcn {
class Rng;
}

namespace dcn::geo {

struct TerrainConfig {
  std::int64_t rows = 512;
  std::int64_t cols = 512;
  /// Total regional drop from west edge to east edge (meters).
  double regional_drop = 12.0;
  /// Peak-to-peak amplitude of the undulation noise (meters).
  double noise_amplitude = 3.0;
  /// Number of value-noise octaves.
  int octaves = 5;
  /// Base noise wavelength in cells.
  double base_wavelength = 160.0;
  /// Number of carved primary valleys.
  int valleys = 3;
  /// Valley depth in meters.
  double valley_depth = 2.5;
};

/// Generate a DEM per the config. Deterministic given `rng`'s state.
Raster synthesize_terrain(const TerrainConfig& config, Rng& rng);

/// Smoothed value noise in [0, 1] (exposed for the renderer's textures).
Raster value_noise(std::int64_t rows, std::int64_t cols, double wavelength,
                   int octaves, Rng& rng);

}  // namespace dcn::geo
