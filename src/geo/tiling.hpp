// Georeferenced tiling of orthophotos.
//
// The paper's pipeline clips 100x100 m samples out of >10 GB orthophoto
// mosaics (§3.2). This module provides the survey-scan counterpart: a
// GeoTransform mapping pixel to world coordinates (NAIP products are
// 1 m GSD), and a TileIterator that walks a scene in overlapping tiles so
// detections can be georeferenced back into world space.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/render.hpp"
#include "tensor/tensor.hpp"

namespace dcn::geo {

/// Affine pixel->world transform (axis-aligned; NAIP-style north-up).
struct GeoTransform {
  double origin_x = 0.0;  // world x of pixel (0, 0)'s corner (east, meters)
  double origin_y = 0.0;  // world y of pixel (0, 0)'s corner (north, meters)
  double pixel_size = 1.0;  // meters per pixel (NAIP: 1.0)

  /// Center of pixel (row, col) in world coordinates (x east, y north;
  /// rows grow southward as in raster convention).
  std::pair<double, double> pixel_to_world(double row, double col) const;

  /// Inverse of pixel_to_world.
  std::pair<double, double> world_to_pixel(double x, double y) const;
};

struct Tile {
  std::int64_t row = 0;  // top-left pixel of the tile
  std::int64_t col = 0;
  std::int64_t size = 0;
  /// World coordinates of the tile center.
  double center_x = 0.0;
  double center_y = 0.0;
};

/// Overlapping tile grid covering a rows x cols scene. `overlap` is the
/// fraction of the tile side shared between neighbors (0 = edge to edge).
///
/// Edge behavior is pinned (the scan cascade's coverage accounting depends
/// on it): when the scene size minus the tile size is not a multiple of
/// the stride, the last row/column of tiles *clamps into bounds*
/// (tile.row = rows - tile_size) instead of padding past the border —
/// every tile reads real pixels only, the full scene is covered, and the
/// clamped edge tile appears exactly once (no duplicate grid positions).
std::vector<Tile> make_tiles(std::int64_t rows, std::int64_t cols,
                             std::int64_t tile_size, double overlap,
                             const GeoTransform& transform);

/// Extract one tile from a photo as a [4, size, size] tensor
/// (edge-clamped at scene borders).
Tensor extract_tile(const Orthophoto& photo, const Tile& tile);

/// Map a detection box (cx, cy, w, h normalized within `tile`) to world
/// coordinates of the detection center.
std::pair<double, double> detection_to_world(const Tile& tile,
                                             const float box[4],
                                             const GeoTransform& transform);

}  // namespace dcn::geo
