// nsys-style aggregate reports over recorded spans.
//
// Three views, matching the paper's §7 analysis:
//  - API usage summary (Fig. 8): time share per CUDA API.
//  - Memory-operation summary (Fig. 7): count / total / average memop time.
//  - Kernel summary (Table 3): time share per operator category.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "profiler/recorder.hpp"

namespace dcn::profiler {

struct ApiUsageRow {
  ApiKind kind = ApiKind::kLaunchKernel;
  std::int64_t calls = 0;
  double total_seconds = 0.0;
  double share = 0.0;  // fraction of total API time
};

struct KernelUsageRow {
  KernelCategory category = KernelCategory::kConv;
  std::int64_t launches = 0;
  double total_seconds = 0.0;
  double share = 0.0;  // fraction of total kernel time
};

struct MemopSummary {
  std::int64_t count = 0;
  std::int64_t total_bytes = 0;
  double total_seconds = 0.0;
  /// Average duration of one memory operation (the Fig. 7 metric).
  double mean_seconds = 0.0;
};

/// API-time shares sorted descending (Fig. 8 rows).
std::vector<ApiUsageRow> api_usage(const Recorder& recorder);

/// Kernel-time shares per category (Table 3 rows).
std::vector<KernelUsageRow> kernel_usage(const Recorder& recorder);

/// Memory-operation statistics, optionally filtered by kind.
MemopSummary memop_summary(const Recorder& recorder);
MemopSummary memop_summary(const Recorder& recorder, MemopKind kind);

/// Share of total API time held by one API (0 when nothing recorded).
double api_share(const Recorder& recorder, ApiKind kind);

/// Share of total kernel time held by one category.
double kernel_share(const Recorder& recorder, KernelCategory category);

/// Render the full three-view report as text (the `--stats=true` analog).
std::string render_report(const Recorder& recorder);

}  // namespace dcn::profiler
