// Profiling event taxonomy.
//
// Mirrors the three Nsight Systems views the paper uses (§7): CUDA API
// usage, CUDA memory operations, and CUDA kernel activity. The simulated
// device emits one Span per API call / kernel / memop on its virtual
// timeline; reports aggregate them exactly like `nsys profile --stats=true`.
#pragma once

#include <cstdint>
#include <string>

namespace dcn::profiler {

/// Host-side driver/runtime API calls (the Fig. 8 categories).
enum class ApiKind {
  kLibraryLoadData,    // cuLibraryLoadData
  kMemAlloc,           // cudaMalloc
  kMemFree,            // cudaFree
  kMemcpyH2D,          // cudaMemcpy host->device
  kMemcpyD2H,          // cudaMemcpy device->host
  kLaunchKernel,       // cudaLaunchKernel
  kStreamCreate,       // cudaStreamCreate
  kDeviceSynchronize,  // cudaDeviceSynchronize
  kDeviceReset,        // cudaDeviceReset (device-loss recovery)
};

const char* api_kind_name(ApiKind kind);

/// Device kernel categories (the Table-3 operator classes).
enum class KernelCategory {
  kMatMul,       // fully-connected layers
  kConv,         // convolution layers
  kPooling,      // max / adaptive pooling (incl. the SPP branches)
  kElementwise,  // activations
  kMemory,       // concat / flatten data movement
};

const char* kernel_category_name(KernelCategory category);

/// Device-side memory operation categories (the Fig. 7 view).
enum class MemopKind {
  kH2D,
  kD2H,
  kDeviceToDevice,
};

const char* memop_kind_name(MemopKind kind);

/// One timed span on the virtual timeline (seconds).
struct Span {
  double start = 0.0;
  double duration = 0.0;
  std::string name;
  double end() const { return start + duration; }
};

struct ApiSpan : Span {
  ApiKind kind = ApiKind::kLaunchKernel;
};

struct KernelSpan : Span {
  KernelCategory category = KernelCategory::kConv;
  std::int64_t batch = 1;
};

struct MemopSpan : Span {
  MemopKind kind = MemopKind::kH2D;
  std::int64_t bytes = 0;
};

/// An injected device fault or a recovery action (retry, backoff, reset) on
/// the virtual timeline. `name` is the event class (e.g. "launch_failure",
/// "retry"); `detail` carries the human-readable context. Most faults are
/// instants (duration 0); slowdowns/hangs/backoffs carry their stall time.
struct FaultSpan : Span {
  std::string detail;
};

/// A sampled counter value at an instant on the virtual timeline (serving
/// queue depth, dispatched batch size). Unlike the process-global counters
/// in counters.hpp, samples carry a timestamp, so the chrome trace renders
/// them as counter tracks evolving over the run.
struct CounterSample {
  double time = 0.0;
  std::string name;
  std::int64_t value = 0;
};

/// A zero-duration marker on the virtual timeline (replica health-state
/// transitions, hedge launches, shed decisions). Rendered as a chrome-trace
/// instant event (`ph:"i"`), so fleet lifecycle markers land on the same
/// timeline as the kernels and faults they explain.
struct InstantEvent {
  double time = 0.0;
  std::string name;
  std::string detail;
};

/// A timed span on a named lane. Unlike the fixed-tid API/kernel/memop
/// rows, lane spans open a dedicated chrome-trace row per distinct `lane`
/// (in first-seen order), which is how the pipeline executor renders one
/// row per stage: microbatch service spans line up under their stage, and
/// the gaps between them are the pipeline bubbles, visible at a glance.
struct LaneSpan : Span {
  std::string lane;
  std::string detail;
};

}  // namespace dcn::profiler
