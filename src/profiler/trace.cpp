#include "profiler/trace.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "core/error.hpp"
#include "profiler/counters.hpp"

namespace dcn::profiler {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

void emit_event(std::ostringstream& os, bool& first, const std::string& name,
                const char* category, int tid, double start_s,
                double duration_s, const std::string& args_json) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"" << json_escape(name) << "\", \"cat\": \""
     << category << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
     << ", \"ts\": " << start_s * 1e6 << ", \"dur\": " << duration_s * 1e6;
  if (!args_json.empty()) os << ", \"args\": " << args_json;
  os << '}';
}

}  // namespace

std::string to_chrome_trace(const Recorder& recorder) {
  std::ostringstream os;
  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const ApiSpan& span : recorder.api_spans()) {
    emit_event(os, first, api_kind_name(span.kind), "cuda_api", 0, span.start,
               span.duration, "{\"call\": \"" + json_escape(span.name) + "\"}");
  }
  for (const KernelSpan& span : recorder.kernel_spans()) {
    std::ostringstream args;
    args << "{\"category\": \"" << kernel_category_name(span.category)
         << "\", \"batch\": " << span.batch << '}';
    emit_event(os, first, span.name, "kernel", 1, span.start, span.duration,
               args.str());
  }
  for (const MemopSpan& span : recorder.memop_spans()) {
    std::ostringstream args;
    args << "{\"kind\": \"" << memop_kind_name(span.kind)
         << "\", \"bytes\": " << span.bytes << '}';
    emit_event(os, first, span.name, "memop", 2, span.start, span.duration,
               args.str());
  }
  for (const FaultSpan& span : recorder.fault_spans()) {
    emit_event(os, first, span.name, "fault", 3, span.start, span.duration,
               "{\"detail\": \"" + json_escape(span.detail) + "\"}");
  }
  // Named lanes (one chrome-trace row per distinct lane, in first-seen
  // order): the pipeline executor's per-stage microbatch spans. The thread
  // name metadata labels each row with its lane string, and the tid block
  // starts at 10 to stay clear of the fixed api/kernel/memop/fault rows.
  {
    std::map<std::string, int> lane_tids;
    for (const LaneSpan& span : recorder.lane_spans()) {
      const auto [it, inserted] = lane_tids.emplace(
          span.lane, 10 + static_cast<int>(lane_tids.size()));
      if (inserted) {
        if (!first) os << ",\n";
        first = false;
        os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           << "\"tid\": " << it->second << ", \"args\": {\"name\": \""
           << json_escape(span.lane) << "\"}}";
      }
      emit_event(os, first, span.name, "lane", it->second, span.start,
                 span.duration,
                 span.detail.empty()
                     ? std::string()
                     : "{\"detail\": \"" + json_escape(span.detail) + "\"}");
    }
  }
  // Timestamped counter samples (serving queue depth, batch sizes) as
  // Chrome counter ("C") tracks that evolve over the run.
  for (const CounterSample& sample : recorder.counter_samples()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"" << json_escape(sample.name)
       << "\", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": 1, \"ts\": "
       << sample.time * 1e6 << ", \"args\": {\"value\": " << sample.value
       << "}}";
  }
  // Fleet lifecycle markers (health transitions, hedges, shed decisions) as
  // Chrome instant ("i") events pinned to the virtual timeline.
  for (const InstantEvent& event : recorder.instant_events()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"" << json_escape(event.name)
       << "\", \"cat\": \"fleet\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 1, "
       << "\"tid\": 4, \"ts\": " << event.time * 1e6
       << ", \"args\": {\"detail\": \"" << json_escape(event.detail) << "\"}}";
  }
  // Global counters as Chrome counter ("C") events so cache hit/miss totals
  // render as tracks alongside the timeline.
  for (const auto& [name, value] : counter_snapshot()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"" << json_escape(name)
       << "\", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": 1, \"ts\": 0, "
       << "\"args\": {\"value\": " << value << "}}";
  }
  os << "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
  return os.str();
}

void write_chrome_trace(const Recorder& recorder, const std::string& path) {
  std::ofstream out(path);
  DCN_CHECK(out.good()) << "cannot open " << path;
  out << to_chrome_trace(recorder);
  DCN_CHECK(out.good()) << "write to " << path << " failed";
}

}  // namespace dcn::profiler
