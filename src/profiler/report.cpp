#include "profiler/report.hpp"

#include <algorithm>
#include <sstream>

#include "core/table.hpp"
#include "profiler/counters.hpp"

namespace dcn::profiler {

std::vector<ApiUsageRow> api_usage(const Recorder& recorder) {
  std::map<ApiKind, ApiUsageRow> rows;
  double total = 0.0;
  for (const ApiSpan& span : recorder.api_spans()) {
    ApiUsageRow& row = rows[span.kind];
    row.kind = span.kind;
    ++row.calls;
    row.total_seconds += span.duration;
    total += span.duration;
  }
  std::vector<ApiUsageRow> out;
  out.reserve(rows.size());
  for (auto& [kind, row] : rows) {
    row.share = total > 0.0 ? row.total_seconds / total : 0.0;
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(),
            [](const ApiUsageRow& a, const ApiUsageRow& b) {
              return a.total_seconds > b.total_seconds;
            });
  return out;
}

std::vector<KernelUsageRow> kernel_usage(const Recorder& recorder) {
  std::map<KernelCategory, KernelUsageRow> rows;
  double total = 0.0;
  for (const KernelSpan& span : recorder.kernel_spans()) {
    KernelUsageRow& row = rows[span.category];
    row.category = span.category;
    ++row.launches;
    row.total_seconds += span.duration;
    total += span.duration;
  }
  std::vector<KernelUsageRow> out;
  out.reserve(rows.size());
  for (auto& [category, row] : rows) {
    row.share = total > 0.0 ? row.total_seconds / total : 0.0;
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(),
            [](const KernelUsageRow& a, const KernelUsageRow& b) {
              return a.total_seconds > b.total_seconds;
            });
  return out;
}

namespace {

MemopSummary summarize(const std::vector<MemopSpan>& spans,
                       const MemopKind* filter) {
  MemopSummary summary;
  for (const MemopSpan& span : spans) {
    if (filter != nullptr && span.kind != *filter) continue;
    ++summary.count;
    summary.total_bytes += span.bytes;
    summary.total_seconds += span.duration;
  }
  summary.mean_seconds =
      summary.count > 0 ? summary.total_seconds / summary.count : 0.0;
  return summary;
}

}  // namespace

MemopSummary memop_summary(const Recorder& recorder) {
  return summarize(recorder.memop_spans(), nullptr);
}

MemopSummary memop_summary(const Recorder& recorder, MemopKind kind) {
  return summarize(recorder.memop_spans(), &kind);
}

double api_share(const Recorder& recorder, ApiKind kind) {
  for (const ApiUsageRow& row : api_usage(recorder)) {
    if (row.kind == kind) return row.share;
  }
  return 0.0;
}

double kernel_share(const Recorder& recorder, KernelCategory category) {
  for (const KernelUsageRow& row : kernel_usage(recorder)) {
    if (row.category == category) return row.share;
  }
  return 0.0;
}

std::string render_report(const Recorder& recorder) {
  std::ostringstream os;

  os << "CUDA API Statistics:\n";
  TextTable api_table({"Time (%)", "Total Time (us)", "Calls", "Name"});
  for (const ApiUsageRow& row : api_usage(recorder)) {
    api_table.add_row({format_percent(row.share),
                       format_double(row.total_seconds * 1e6, 1),
                       std::to_string(row.calls), api_kind_name(row.kind)});
  }
  os << api_table.to_string() << '\n';

  os << "CUDA Kernel Statistics:\n";
  TextTable kernel_table(
      {"Time (%)", "Total Time (us)", "Launches", "Category"});
  for (const KernelUsageRow& row : kernel_usage(recorder)) {
    kernel_table.add_row({format_percent(row.share),
                          format_double(row.total_seconds * 1e6, 1),
                          std::to_string(row.launches),
                          kernel_category_name(row.category)});
  }
  os << kernel_table.to_string() << '\n';

  os << "CUDA Memory Operation Statistics:\n";
  TextTable memop_table(
      {"Kind", "Count", "Total Bytes", "Total Time (us)", "Avg Time (ns)"});
  for (MemopKind kind :
       {MemopKind::kH2D, MemopKind::kD2H, MemopKind::kDeviceToDevice}) {
    const MemopSummary s = memop_summary(recorder, kind);
    if (s.count == 0) continue;
    memop_table.add_row({memop_kind_name(kind), std::to_string(s.count),
                         std::to_string(s.total_bytes),
                         format_double(s.total_seconds * 1e6, 1),
                         format_double(s.mean_seconds * 1e9, 0)});
  }
  os << memop_table.to_string();

  // Fault-injection view: real nsys reports have no such section, but a
  // faulted run must show its injected faults and recovery actions next to
  // the API statistics they perturbed.
  if (!recorder.fault_spans().empty()) {
    os << "\nFault & Recovery Events:\n";
    TextTable fault_table({"Time (us)", "Duration (us)", "Event", "Detail"});
    for (const FaultSpan& span : recorder.fault_spans()) {
      fault_table.add_row({format_double(span.start * 1e6, 1),
                           format_double(span.duration * 1e6, 1), span.name,
                           span.detail});
    }
    os << fault_table.to_string();
  }

  // Sampled counter tracks (serving queue depth, batch sizes): summarized
  // here; the chrome trace carries the full time series.
  if (!recorder.counter_samples().empty()) {
    std::map<std::string, std::vector<std::int64_t>> by_name;
    for (const CounterSample& sample : recorder.counter_samples()) {
      by_name[sample.name].push_back(sample.value);
    }
    os << "\nSampled Counters:\n";
    TextTable sample_table({"Counter", "Samples", "Min", "Max", "Mean"});
    for (const auto& [name, values] : by_name) {
      std::int64_t lo = values.front(), hi = values.front(), sum = 0;
      for (std::int64_t v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
      }
      sample_table.add_row(
          {name, std::to_string(values.size()), std::to_string(lo),
           std::to_string(hi),
           format_double(static_cast<double>(sum) /
                             static_cast<double>(values.size()),
                         2)});
    }
    os << sample_table.to_string();
  }

  // Fleet health markers (replica state transitions, hedge launches, shed
  // decisions): the chrome trace carries each marker as an instant event;
  // the text report lists the timeline so a faulted serving run reads as a
  // story — death, suspicion, respawn, recovery — next to the API stats.
  if (!recorder.instant_events().empty()) {
    os << "\nFleet Health Events:\n";
    TextTable fleet_table({"Time (us)", "Event", "Detail"});
    for (const InstantEvent& event : recorder.instant_events()) {
      fleet_table.add_row({format_double(event.time * 1e6, 1), event.name,
                           event.detail});
    }
    os << fleet_table.to_string();
  }

  // Process-wide counters (schedule-cache hits/misses and friends): not an
  // nsys view, but campaign-level reports need the amortization numbers
  // next to the timing they explain.
  const auto counters = counter_snapshot();
  if (!counters.empty()) {
    os << "\nCounters:\n";
    TextTable counter_table({"Counter", "Value"});
    for (const auto& [name, value] : counters) {
      counter_table.add_row({name, std::to_string(value)});
    }
    os << counter_table.to_string();
  }
  return os.str();
}

}  // namespace dcn::profiler
