#include "profiler/recorder.hpp"

#include "core/error.hpp"

namespace dcn::profiler {

const char* api_kind_name(ApiKind kind) {
  switch (kind) {
    case ApiKind::kLibraryLoadData:
      return "cuLibraryLoadData";
    case ApiKind::kMemAlloc:
      return "cudaMalloc";
    case ApiKind::kMemFree:
      return "cudaFree";
    case ApiKind::kMemcpyH2D:
      return "cudaMemcpyHtoD";
    case ApiKind::kMemcpyD2H:
      return "cudaMemcpyDtoH";
    case ApiKind::kLaunchKernel:
      return "cudaLaunchKernel";
    case ApiKind::kStreamCreate:
      return "cudaStreamCreate";
    case ApiKind::kDeviceSynchronize:
      return "cudaDeviceSynchronize";
    case ApiKind::kDeviceReset:
      return "cudaDeviceReset";
  }
  return "unknown";
}

const char* kernel_category_name(KernelCategory category) {
  switch (category) {
    case KernelCategory::kMatMul:
      return "Matrix Multiplication";
    case KernelCategory::kConv:
      return "Conv";
    case KernelCategory::kPooling:
      return "Pooling";
    case KernelCategory::kElementwise:
      return "Elementwise";
    case KernelCategory::kMemory:
      return "Memory";
  }
  return "unknown";
}

const char* memop_kind_name(MemopKind kind) {
  switch (kind) {
    case MemopKind::kH2D:
      return "HtoD";
    case MemopKind::kD2H:
      return "DtoH";
    case MemopKind::kDeviceToDevice:
      return "DtoD";
  }
  return "unknown";
}

void Recorder::record_api(ApiKind kind, std::string name, double start,
                          double duration) {
  if (!enabled_) return;
  DCN_DCHECK(duration >= 0.0) << "negative API duration";
  ApiSpan span;
  span.kind = kind;
  span.name = std::move(name);
  span.start = start;
  span.duration = duration;
  api_spans_.push_back(std::move(span));
}

void Recorder::record_kernel(KernelCategory category, std::string name,
                             double start, double duration,
                             std::int64_t batch) {
  if (!enabled_) return;
  DCN_DCHECK(duration >= 0.0) << "negative kernel duration";
  KernelSpan span;
  span.category = category;
  span.name = std::move(name);
  span.start = start;
  span.duration = duration;
  span.batch = batch;
  kernel_spans_.push_back(std::move(span));
}

void Recorder::record_memop(MemopKind kind, std::string name, double start,
                            double duration, std::int64_t bytes) {
  if (!enabled_) return;
  DCN_DCHECK(duration >= 0.0) << "negative memop duration";
  MemopSpan span;
  span.kind = kind;
  span.name = std::move(name);
  span.start = start;
  span.duration = duration;
  span.bytes = bytes;
  memop_spans_.push_back(std::move(span));
}

void Recorder::record_fault(std::string name, double start, double duration,
                            std::string detail) {
  if (!enabled_) return;
  DCN_DCHECK(duration >= 0.0) << "negative fault duration";
  FaultSpan span;
  span.name = std::move(name);
  span.start = start;
  span.duration = duration;
  span.detail = std::move(detail);
  fault_spans_.push_back(std::move(span));
}

void Recorder::record_counter_sample(std::string name, double time,
                                     std::int64_t value) {
  if (!enabled_) return;
  CounterSample sample;
  sample.name = std::move(name);
  sample.time = time;
  sample.value = value;
  counter_samples_.push_back(std::move(sample));
}

void Recorder::record_instant(std::string name, double time,
                              std::string detail) {
  if (!enabled_) return;
  InstantEvent event;
  event.name = std::move(name);
  event.time = time;
  event.detail = std::move(detail);
  instant_events_.push_back(std::move(event));
}

void Recorder::record_lane_span(std::string lane, std::string name,
                                double start, double duration,
                                std::string detail) {
  if (!enabled_) return;
  DCN_DCHECK(duration >= 0.0) << "negative lane-span duration";
  LaneSpan span;
  span.lane = std::move(lane);
  span.name = std::move(name);
  span.start = start;
  span.duration = duration;
  span.detail = std::move(detail);
  lane_spans_.push_back(std::move(span));
}

void Recorder::clear() {
  api_spans_.clear();
  kernel_spans_.clear();
  memop_spans_.clear();
  fault_spans_.clear();
  counter_samples_.clear();
  instant_events_.clear();
  lane_spans_.clear();
}

}  // namespace dcn::profiler
