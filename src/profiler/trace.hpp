// Chrome-trace (about://tracing / Perfetto) export of a recorded session.
//
// Complements the tabular reports: the JSON timeline shows API calls,
// kernel activity per stream, and memory operations on the simulated
// virtual clock, the way `nsys export --type json` renders real traces.
#pragma once

#include <string>

#include "profiler/recorder.hpp"

namespace dcn::profiler {

/// Serialize every recorded span as Chrome trace events ("X" complete
/// events; microsecond timestamps). Rows (tid): 0 = CUDA API, 1 = kernels,
/// 2 = memory operations, 3 = injected faults / recovery actions.
std::string to_chrome_trace(const Recorder& recorder);

/// Write the trace JSON to `path` (throws dcn::Error on I/O failure).
void write_chrome_trace(const Recorder& recorder, const std::string& path);

}  // namespace dcn::profiler
