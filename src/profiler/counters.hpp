// Named global counters.
//
// Span recording captures *when* things happened; counters capture *how
// often* — cache hits, cache misses, retries — across the whole process,
// including subsystems that run outside any recorded device session (the
// IOS schedule cache is consulted at optimization time, before a device
// exists). render_report appends a Counters section and to_chrome_trace
// emits one counter ("C") event per name, so the numbers ride along with
// every profiling artifact.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dcn::profiler {

/// Add `delta` to the named counter (thread-safe; unknown names start at 0).
void counter_add(const std::string& name, std::int64_t delta = 1);

/// Current value of one counter (0 for names never incremented).
std::int64_t counter_value(const std::string& name);

/// Snapshot of every counter, ordered by name.
std::map<std::string, std::int64_t> counter_snapshot();

/// Reset all counters to zero (fresh campaigns and test isolation).
void reset_counters();

}  // namespace dcn::profiler
