#include "profiler/counters.hpp"

#include <mutex>

namespace dcn::profiler {
namespace {

std::mutex& counter_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, std::int64_t>& counter_map() {
  static std::map<std::string, std::int64_t> counters;
  return counters;
}

}  // namespace

void counter_add(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(counter_mutex());
  counter_map()[name] += delta;
}

std::int64_t counter_value(const std::string& name) {
  std::lock_guard<std::mutex> lock(counter_mutex());
  const auto& counters = counter_map();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::map<std::string, std::int64_t> counter_snapshot() {
  std::lock_guard<std::mutex> lock(counter_mutex());
  return counter_map();
}

void reset_counters() {
  std::lock_guard<std::mutex> lock(counter_mutex());
  counter_map().clear();
}

}  // namespace dcn::profiler
