// Span recorder: the nsys-equivalent capture buffer.
#pragma once

#include <vector>

#include "profiler/events.hpp"

namespace dcn::profiler {

/// Collects API, kernel, and memop spans emitted by the simulated device.
/// Recording can be toggled so warm-up runs are excluded, mirroring how the
/// paper profiles steady-state inference.
class Recorder {
 public:
  void record_api(ApiKind kind, std::string name, double start,
                  double duration);
  void record_kernel(KernelCategory category, std::string name, double start,
                     double duration, std::int64_t batch);
  void record_memop(MemopKind kind, std::string name, double start,
                    double duration, std::int64_t bytes);
  void record_fault(std::string name, double start, double duration,
                    std::string detail);
  void record_counter_sample(std::string name, double time,
                             std::int64_t value);
  void record_instant(std::string name, double time, std::string detail);
  /// Record a span on a named lane (each distinct lane becomes its own
  /// chrome-trace row; see LaneSpan).
  void record_lane_span(std::string lane, std::string name, double start,
                        double duration, std::string detail);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void clear();

  const std::vector<ApiSpan>& api_spans() const { return api_spans_; }
  const std::vector<KernelSpan>& kernel_spans() const {
    return kernel_spans_;
  }
  const std::vector<MemopSpan>& memop_spans() const { return memop_spans_; }
  const std::vector<FaultSpan>& fault_spans() const { return fault_spans_; }
  const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }
  const std::vector<InstantEvent>& instant_events() const {
    return instant_events_;
  }
  const std::vector<LaneSpan>& lane_spans() const { return lane_spans_; }

 private:
  bool enabled_ = true;
  std::vector<ApiSpan> api_spans_;
  std::vector<KernelSpan> kernel_spans_;
  std::vector<MemopSpan> memop_spans_;
  std::vector<FaultSpan> fault_spans_;
  std::vector<CounterSample> counter_samples_;
  std::vector<InstantEvent> instant_events_;
  std::vector<LaneSpan> lane_spans_;
};

}  // namespace dcn::profiler
