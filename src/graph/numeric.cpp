#include "graph/numeric.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/qgemm.hpp"
#include "tensor/workspace.hpp"

namespace dcn::graph {
namespace {

// Contiguous near-even partition of [0, batch) into `chunks` pieces (the
// same scheme as Conv2d's sample partition — thread-count independent).
std::pair<std::int64_t, std::int64_t> chunk_range(std::int64_t batch,
                                                  std::int64_t chunks,
                                                  std::int64_t c) {
  const std::int64_t base = batch / chunks;
  const std::int64_t rem = batch % chunks;
  const std::int64_t lo = c * base + std::min(c, rem);
  return {lo, lo + base + (c < rem ? 1 : 0)};
}

bool is_conv_kind(OpKind kind) {
  return kind == OpKind::kConv2d || kind == OpKind::kFusedConvReLU;
}

bool is_linear_kind(OpKind kind) {
  return kind == OpKind::kLinear || kind == OpKind::kFusedLinearReLU;
}

// The standalone ReLU node must agree bit-for-bit with the fused stores:
// GemmEpilogue computes `v < 0 ? 0 : v` and QuantEpilogue `max(x, 0)`, both
// of which pass -0.0 through unchanged — so this must too, or a fused graph
// and its unfused twin would diverge on negative zeros.
void relu_exact(const float* src, std::int64_t n, float* dst) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = src[i];
    dst[i] = v < 0.0f ? 0.0f : v;
  }
}

ConvGeometry conv_geometry(const OpNode& node, const Tensor& x) {
  ConvGeometry g;
  g.channels = x.dim(1);
  g.height = x.dim(2);
  g.width = x.dim(3);
  g.kernel_h = g.kernel_w = node.attrs.kernel;
  g.stride_h = g.stride_w = node.attrs.stride;
  g.pad_h = g.pad_w = node.attrs.padding;
  return g;
}

// Batch-parallel sample loop shared by the conv paths; identical to
// Conv2d::forward's partition so thread count never changes what a sample
// computes.
void for_each_sample(std::int64_t batch,
                     const std::function<void(std::int64_t)>& run_sample) {
  const int tasks =
      static_cast<int>(std::min<std::int64_t>(compute_threads(), batch));
  if (tasks <= 1) {
    for (std::int64_t n = 0; n < batch; ++n) run_sample(n);
  } else {
    run_compute_tasks(tasks, [&](int t) {
      const auto [lo, hi] = chunk_range(batch, tasks, t);
      for (std::int64_t n = lo; n < hi; ++n) run_sample(n);
    });
  }
}

Tensor run_conv_fp32(const OpNode& node, const Tensor& x,
                     const Tensor& weight, const Tensor& bias, bool fused) {
  const std::int64_t batch = x.dim(0);
  const ConvGeometry g = conv_geometry(node, x);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t out_c = node.attrs.out_channels;
  const std::int64_t k = g.channels * g.kernel_h * g.kernel_w;
  const std::int64_t ohw = oh * ow;
  Tensor out(Shape{batch, out_c, oh, ow});
  const std::int64_t in_stride = g.channels * g.height * g.width;
  const std::int64_t out_stride = out_c * ohw;
  GemmEpilogue epilogue;
  epilogue.row_bias = bias.data();
  epilogue.relu = fused;  // FusedConvReLU: the ReLU rides the C-tile store
  for_each_sample(batch, [&](std::int64_t n) {
    Workspace& ws = Workspace::tls();
    Workspace::Scope scope(ws);
    float* col = ws.floats(static_cast<std::size_t>(k * ohw));
    im2col(x.data() + n * in_stride, g, col);
    sgemm_ex(false, false, out_c, ohw, k, 1.0f, weight.data(), k, col, ohw,
             0.0f, out.data() + n * out_stride, ohw, epilogue);
  });
  return out;
}

Tensor run_conv_int8(const OpNode& node, const Tensor& x,
                     const QuantizedWeights& weights, const float* bias,
                     const QuantParams& input_params, bool fused) {
  const std::int64_t batch = x.dim(0);
  const ConvGeometry g = conv_geometry(node, x);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t out_c = weights.rows;
  const std::int64_t k = weights.cols;
  const std::int64_t ohw = oh * ow;
  Tensor out(Shape{batch, out_c, oh, ow});
  const std::int64_t in_stride = g.channels * g.height * g.width;
  const std::int64_t out_stride = out_c * ohw;
  QuantEpilogue epilogue;
  epilogue.row_bias = bias;
  epilogue.relu = fused;
  for_each_sample(batch, [&](std::int64_t n) {
    Workspace& ws = Workspace::tls();
    Workspace::Scope scope(ws);
    // im2col in float, then quantize the columns — padding taps lower to
    // exact 0.0f, which hits the integer zero point exactly (the same
    // lowering QuantizedSppNet uses).
    float* col = ws.floats(static_cast<std::size_t>(k * ohw));
    im2col(x.data() + n * in_stride, g, col);
    std::uint8_t* qcol = ws.bytes(static_cast<std::size_t>(k * ohw));
    quantize_u8(col, k * ohw, input_params, qcol);
    qgemm(weights, qcol, ohw, ohw, input_params,
          out.data() + n * out_stride, ohw, epilogue);
  });
  return out;
}

Tensor run_linear_fp32(const Tensor& x, const Tensor& weight,
                       const Tensor& bias, bool fused) {
  const std::int64_t batch = x.dim(0);
  const std::int64_t out_f = weight.dim(0);
  const std::int64_t in_f = weight.dim(1);
  Tensor out(Shape{batch, out_f});
  GemmEpilogue epilogue;
  epilogue.col_bias = bias.data();
  epilogue.relu = fused;
  sgemm_ex(false, true, batch, out_f, in_f, 1.0f, x.data(), in_f,
           weight.data(), in_f, 0.0f, out.data(), out_f, epilogue);
  return out;
}

Tensor run_linear_int8(const Tensor& x, const QuantizedWeights& weights,
                       const float* bias, const QuantParams& input_params,
                       bool fused) {
  const std::int64_t n = x.dim(0);
  const std::int64_t features = weights.cols;
  const std::int64_t out = weights.rows;
  Tensor output(Shape{n, out});
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  // y^T[out, n] = W[out, f] x^T[f, n] with the per-output-feature bias as a
  // per-row bias of the transposed product (QuantizedSppNet's layout).
  std::uint8_t* qx = ws.bytes(static_cast<std::size_t>(n * features));
  quantize_u8(x.data(), n * features, input_params, qx);
  std::uint8_t* qxt = ws.bytes(static_cast<std::size_t>(features * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < features; ++j) {
      qxt[j * n + i] = qx[i * features + j];
    }
  }
  float* yt = ws.floats(static_cast<std::size_t>(out * n));
  QuantEpilogue epilogue;
  epilogue.row_bias = bias;
  epilogue.relu = fused;
  qgemm(weights, qxt, n, n, input_params, yt, n, epilogue);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t o = 0; o < out; ++o) {
      output.data()[i * out + o] = yt[o * n + i];
    }
  }
  return output;
}

}  // namespace

WeightMap extract_weights(detect::SppNet& net) {
  WeightMap map;
  Sequential& trunk = net.trunk();
  int conv_index = 0;
  for (std::size_t i = 0; i < trunk.size(); ++i) {
    if (auto* conv = dynamic_cast<Conv2d*>(&trunk.layer(i))) {
      map.emplace("conv" + std::to_string(conv_index),
                  OpWeights{conv->weight(), conv->bias()});
      ++conv_index;
    }
  }
  Sequential& head = net.head();
  std::vector<Linear*> linears;
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (auto* linear = dynamic_cast<Linear*>(&head.layer(i))) {
      linears.push_back(linear);
    }
  }
  DCN_CHECK(!linears.empty()) << "SPP-Net head has no linear layers";
  for (std::size_t i = 0; i < linears.size(); ++i) {
    const std::string name =
        i + 1 == linears.size() ? "head" : "fc" + std::to_string(i);
    map.emplace(name, OpWeights{linears[i]->weight(), linears[i]->bias()});
  }
  return map;
}

NumericExecutor::NumericExecutor(const Graph& graph, WeightMap weights)
    : graph_(graph), weights_(std::move(weights)), quant_(graph.size()) {
  validate_shapes(graph_);
  int inputs = 0;
  int outputs = 0;
  for (const OpNode& node : graph_.nodes()) {
    if (node.kind == OpKind::kInput) ++inputs;
    if (node.kind == OpKind::kOutput) ++outputs;
    if (node.kind == OpKind::kConstant) {
      throw ConfigError("NumericExecutor: op '" + node.name +
                        "' is a folded Constant; the cost IR carries no "
                        "constant tensor values to execute");
    }
    if (is_conv_kind(node.kind)) {
      const auto it = weights_.find(node.name);
      if (it == weights_.end()) {
        throw ConfigError("NumericExecutor: no weights bound for conv op '" +
                          node.name + "'");
      }
      const Tensor& w = it->second.weight;
      const TensorDesc in = graph_.input_desc(node.id);
      if (w.rank() != 4 || w.dim(0) != node.attrs.out_channels ||
          w.dim(1) != in.dims[0] || w.dim(2) != node.attrs.kernel ||
          w.dim(3) != node.attrs.kernel ||
          it->second.bias.numel() != node.attrs.out_channels) {
        throw ConfigError("NumericExecutor: weight shape mismatch for conv "
                          "op '" + node.name + "'");
      }
    } else if (is_linear_kind(node.kind)) {
      const auto it = weights_.find(node.name);
      if (it == weights_.end()) {
        throw ConfigError("NumericExecutor: no weights bound for linear op '" +
                          node.name + "'");
      }
      const Tensor& w = it->second.weight;
      if (w.rank() != 2 || w.dim(0) != node.attrs.out_features ||
          w.dim(1) != graph_.input_desc(node.id).numel() ||
          it->second.bias.numel() != node.attrs.out_features) {
        throw ConfigError("NumericExecutor: weight shape mismatch for linear "
                          "op '" + node.name + "'");
      }
    }
  }
  if (inputs != 1) {
    throw ConfigError("NumericExecutor: graph must have exactly one Input, "
                      "got " + std::to_string(inputs));
  }
  if (outputs > 1) {
    throw ConfigError("NumericExecutor: graph must have at most one Output, "
                      "got " + std::to_string(outputs));
  }
}

Tensor NumericExecutor::run(const Tensor& input, bool int8,
                            std::vector<detect::RangeObserver>* observers)
    const {
  const std::int64_t batch = input.rank() > 0 ? input.dim(0) : 0;
  if (batch < 1) {
    throw ConfigError("NumericExecutor: batch must be >= 1");
  }
  std::vector<Tensor> values(graph_.size());
  OpId output_id = kInvalidOp;
  OpId last_id = kInvalidOp;
  // Insertion order is topological by Graph::add_op's construction.
  for (const OpNode& node : graph_.nodes()) {
    const auto idx = static_cast<std::size_t>(node.id);
    last_id = node.id;
    switch (node.kind) {
      case OpKind::kInput: {
        DCN_CHECK(input.rank() == node.output.dims.size() + 1)
            << "input rank " << input.rank() << " != 1 + "
            << node.output.dims.size();
        for (std::size_t d = 0; d < node.output.dims.size(); ++d) {
          DCN_CHECK(input.dim(d + 1) == node.output.dims[d])
              << "input dim " << d + 1 << " is " << input.dim(d + 1)
              << ", graph expects " << node.output.dims[d];
        }
        values[idx] = input;
        break;
      }
      case OpKind::kConv2d:
      case OpKind::kFusedConvReLU: {
        const Tensor& x = values[static_cast<std::size_t>(node.inputs[0])];
        if (observers != nullptr) {
          (*observers)[idx].observe(x.data(), x.numel());
        }
        const bool fused = node.kind == OpKind::kFusedConvReLU;
        if (int8) {
          const QuantOp& q = quant_[idx];
          values[idx] = run_conv_int8(node, x, q.weights,
                                      weights_.at(node.name).bias.data(),
                                      q.input_params, fused);
        } else {
          const OpWeights& w = weights_.at(node.name);
          values[idx] = run_conv_fp32(node, x, w.weight, w.bias, fused);
        }
        break;
      }
      case OpKind::kLinear:
      case OpKind::kFusedLinearReLU: {
        const Tensor& raw = values[static_cast<std::size_t>(node.inputs[0])];
        if (observers != nullptr) {
          (*observers)[idx].observe(raw.data(), raw.numel());
        }
        // A folded Flatten may leave the producer rank-3+; the buffer is
        // contiguous row-major, so the flatten really is metadata-only.
        const Tensor x = raw.rank() == 2
                             ? raw
                             : raw.reshaped(Shape{batch, raw.numel() / batch});
        const bool fused = node.kind == OpKind::kFusedLinearReLU;
        if (int8) {
          const QuantOp& q = quant_[idx];
          values[idx] = run_linear_int8(x, q.weights,
                                        weights_.at(node.name).bias.data(),
                                        q.input_params, fused);
        } else {
          const OpWeights& w = weights_.at(node.name);
          values[idx] = run_linear_fp32(x, w.weight, w.bias, fused);
        }
        break;
      }
      case OpKind::kMaxPool: {
        MaxPool2d pool(node.attrs.kernel, node.attrs.stride);
        values[idx] =
            pool.forward(values[static_cast<std::size_t>(node.inputs[0])]);
        break;
      }
      case OpKind::kAdaptivePool: {
        AdaptiveMaxPool2d pool(node.attrs.pool_out, node.attrs.pool_out);
        values[idx] =
            pool.forward(values[static_cast<std::size_t>(node.inputs[0])]);
        break;
      }
      case OpKind::kReLU: {
        const Tensor& x = values[static_cast<std::size_t>(node.inputs[0])];
        Tensor out(x.shape());
        relu_exact(x.data(), x.numel(), out.data());
        values[idx] = std::move(out);
        break;
      }
      case OpKind::kFlatten: {
        const Tensor& x = values[static_cast<std::size_t>(node.inputs[0])];
        values[idx] = x.reshaped(Shape{batch, node.output.numel()});
        break;
      }
      case OpKind::kConcat: {
        const std::int64_t total = node.output.numel();
        Tensor out(Shape{batch, total});
        std::int64_t offset = 0;
        // Per-sample contiguous branch blocks, in input order — byte-for-
        // byte the SpatialPyramidPool layout, whether or not the branches
        // still carry their Flatten nodes.
        for (OpId in : node.inputs) {
          const Tensor& v = values[static_cast<std::size_t>(in)];
          const std::int64_t feat = v.numel() / batch;
          for (std::int64_t s = 0; s < batch; ++s) {
            const float* src = v.data() + s * feat;
            float* dst = out.data() + s * total + offset;
            std::copy(src, src + feat, dst);
          }
          offset += feat;
        }
        values[idx] = std::move(out);
        break;
      }
      case OpKind::kOutput: {
        values[idx] = values[static_cast<std::size_t>(node.inputs[0])];
        output_id = node.id;
        break;
      }
      case OpKind::kConstant:
        // Rejected in the constructor.
        break;
    }
  }
  const OpId result = output_id != kInvalidOp ? output_id : last_id;
  DCN_CHECK(result != kInvalidOp) << "empty graph";
  return values[static_cast<std::size_t>(result)];
}

Tensor NumericExecutor::forward(const Tensor& input) const {
  return run(input, /*int8=*/false, nullptr);
}

void NumericExecutor::quantize(const Tensor& calibration,
                               const detect::CalibrationOptions& options) {
  if (calibration.rank() != 4 || calibration.dim(0) < 1) {
    throw ConfigError("NumericExecutor::quantize: calibration batch must be "
                      "non-empty NCHW, got " +
                      calibration.shape().to_string());
  }
  std::vector<detect::RangeObserver> observers(graph_.size());
  (void)run(calibration, /*int8=*/false, &observers);
  for (const OpNode& node : graph_.nodes()) {
    if (!is_conv_kind(node.kind) && !is_linear_kind(node.kind)) continue;
    const OpWeights& w = weights_.at(node.name);
    QuantOp q;
    const std::int64_t rows = w.weight.dim(0);
    q.weights = quantize_weights_per_channel(w.weight.data(), rows,
                                             w.weight.numel() / rows);
    q.input_params =
        observers[static_cast<std::size_t>(node.id)].quant_params(options);
    quant_[static_cast<std::size_t>(node.id)] = std::move(q);
  }
  quantized_ = true;
}

Tensor NumericExecutor::forward_int8(const Tensor& input) const {
  if (!quantized_) {
    throw ConfigError("NumericExecutor::forward_int8 before quantize()");
  }
  return run(input, /*int8=*/true, nullptr);
}

}  // namespace dcn::graph
