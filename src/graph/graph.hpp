// Inference DAG container with topological utilities.
#pragma once

#include <string>
#include <vector>

#include "graph/op.hpp"

namespace dcn::graph {

class Graph {
 public:
  /// Append a node; id and inputs must reference existing nodes only.
  OpId add_op(OpKind kind, std::string name, OpAttrs attrs,
              std::vector<OpId> inputs, TensorDesc output);

  std::size_t size() const { return nodes_.size(); }
  const OpNode& node(OpId id) const;
  const std::vector<OpNode>& nodes() const { return nodes_; }

  /// Ids of nodes consuming `id`'s output.
  std::vector<OpId> successors(OpId id) const;

  /// Nodes in a valid topological order (insertion order is one by
  /// construction, but this re-derives it and validates the DAG).
  std::vector<OpId> topological_order() const;

  /// Per-sample tensor description feeding `id` (first input's output; the
  /// Concat node sums feature dims itself at build time).
  TensorDesc input_desc(OpId id) const;

  /// Total parameters across all ops.
  std::int64_t parameter_count() const;

  /// Total per-sample FLOPs.
  double total_flops() const;

  /// Multi-line human-readable dump.
  std::string to_string() const;

  /// Graphviz dot output for documentation.
  std::string to_dot() const;

 private:
  std::vector<OpNode> nodes_;
};

/// Structural shape validation: checks that every node's recorded output
/// descriptor is consistent with its kind, attributes, and inputs (conv
/// arithmetic, pool arithmetic, flatten/concat element counts, linear
/// widths). Throws dcn::Error naming the offending node. The builder is
/// checked by construction; this guards hand-built and deserialized graphs.
void validate_shapes(const Graph& graph);

}  // namespace dcn::graph
