#include "graph/passes.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dcn::graph {

// --- MutableGraph -----------------------------------------------------------

MutableGraph::MutableGraph(const Graph& graph)
    : nodes_(graph.nodes()), alive_(graph.size(), true) {}

std::size_t MutableGraph::live_count() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

OpNode& MutableGraph::node(OpId id) {
  DCN_CHECK(alive(id)) << "pass touched dead/invalid op id " << id;
  return nodes_[static_cast<std::size_t>(id)];
}

const OpNode& MutableGraph::node(OpId id) const {
  DCN_CHECK(alive(id)) << "pass touched dead/invalid op id " << id;
  return nodes_[static_cast<std::size_t>(id)];
}

bool MutableGraph::alive(OpId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < nodes_.size() &&
         alive_[static_cast<std::size_t>(id)];
}

std::vector<OpId> MutableGraph::live_ids() const {
  std::vector<OpId> ids;
  ids.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) ids.push_back(static_cast<OpId>(i));
  }
  return ids;
}

std::vector<OpId> MutableGraph::consumers(OpId id) const {
  std::vector<OpId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i]) continue;
    const OpNode& n = nodes_[i];
    if (std::find(n.inputs.begin(), n.inputs.end(), id) != n.inputs.end()) {
      out.push_back(static_cast<OpId>(i));
    }
  }
  return out;
}

bool MutableGraph::can_redirect(OpId from, OpId to) const {
  if (from == to) return false;
  for (OpId c : consumers(from)) {
    const std::vector<OpId>& ins = node(c).inputs;
    if (std::find(ins.begin(), ins.end(), to) != ins.end()) return false;
  }
  return true;
}

void MutableGraph::redirect(OpId from, OpId to) {
  DCN_CHECK(alive(from) && alive(to)) << "redirect over dead ops";
  DCN_CHECK(can_redirect(from, to))
      << "redirect " << from << " -> " << to << " would duplicate an edge";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i]) continue;
    for (OpId& in : nodes_[i].inputs) {
      if (in == from) in = to;
    }
  }
}

void MutableGraph::erase(OpId id) {
  DCN_CHECK(alive(id)) << "erase of dead/invalid op id " << id;
  DCN_CHECK(consumers(id).empty())
      << "erase of op " << id << " with live consumers";
  alive_[static_cast<std::size_t>(id)] = false;
}

Graph MutableGraph::build() const {
  std::vector<OpId> remap(nodes_.size(), kInvalidOp);
  Graph out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i]) continue;
    const OpNode& n = nodes_[i];
    std::vector<OpId> inputs;
    inputs.reserve(n.inputs.size());
    for (OpId in : n.inputs) {
      DCN_CHECK(alive(in) && remap[static_cast<std::size_t>(in)] != kInvalidOp)
          << "op '" << n.name << "' kept an edge to erased op " << in;
      inputs.push_back(remap[static_cast<std::size_t>(in)]);
    }
    remap[i] = out.add_op(n.kind, n.name, n.attrs, std::move(inputs), n.output);
  }
  return out;
}

// --- Built-in passes --------------------------------------------------------

namespace {

bool attrs_equal(const OpAttrs& a, const OpAttrs& b) {
  return a.kernel == b.kernel && a.stride == b.stride &&
         a.padding == b.padding && a.out_channels == b.out_channels &&
         a.out_features == b.out_features && a.pool_out == b.pool_out;
}

// Attrs with only the fields `kind` reads; everything else at defaults, so
// two structurally identical ops always compare (and key) identically no
// matter what stray values a builder left behind.
OpAttrs canonical_attrs(const OpNode& node) {
  OpAttrs out;
  switch (node.kind) {
    case OpKind::kConv2d:
    case OpKind::kFusedConvReLU:
      out.kernel = node.attrs.kernel;
      out.stride = node.attrs.stride;
      out.padding = node.attrs.padding;
      out.out_channels = node.attrs.out_channels;
      break;
    case OpKind::kMaxPool:
      out.kernel = node.attrs.kernel;
      out.stride = node.attrs.stride;
      break;
    case OpKind::kAdaptivePool:
      out.pool_out = node.attrs.pool_out;
      break;
    case OpKind::kLinear:
    case OpKind::kFusedLinearReLU:
      out.out_features = node.attrs.out_features;
      break;
    default:
      break;  // attr-free kinds keep the defaults
  }
  return out;
}

// Consumers for which a producer's rank is irrelevant — they read a flat
// contiguous buffer and only element counts matter. A Flatten feeding only
// these is a pure metadata op (the IR is contiguous CHW row-major), i.e. a
// kernel launch and a full activation round-trip for a no-op.
bool numel_only_consumer(OpKind kind) {
  return kind == OpKind::kFlatten || kind == OpKind::kConcat ||
         kind == OpKind::kLinear || kind == OpKind::kFusedLinearReLU;
}

/// Layout/attr canonicalization: scrub meaningless attr fields, drop
/// Flatten ops that only feed flat-buffer consumers, collapse identity
/// Concats (single input, same descriptor) and ReLU-of-ReLU chains.
class CanonicalizePass final : public Pass {
 public:
  std::string name() const override { return kCanonicalizePass; }

  bool run(MutableGraph& g) const override {
    bool changed = false;
    for (OpId id : g.live_ids()) {
      if (!g.alive(id)) continue;  // erased earlier in this sweep
      OpNode& n = g.node(id);
      const OpAttrs canon = canonical_attrs(n);
      if (!attrs_equal(n.attrs, canon)) {
        n.attrs = canon;
        changed = true;
      }
      switch (n.kind) {
        case OpKind::kFlatten: {
          const std::vector<OpId> cons = g.consumers(id);
          if (cons.empty()) break;  // dead; DCE's job
          const bool foldable =
              std::all_of(cons.begin(), cons.end(), [&](OpId c) {
                return numel_only_consumer(g.node(c).kind);
              });
          const OpId producer = n.inputs.front();
          if (foldable && g.can_redirect(id, producer)) {
            g.redirect(id, producer);
            g.erase(id);
            changed = true;
          }
          break;
        }
        case OpKind::kConcat: {
          if (n.inputs.size() != 1) break;
          const OpId producer = n.inputs.front();
          if (g.node(producer).output.dims != n.output.dims) break;
          if (!g.consumers(id).empty() && !g.can_redirect(id, producer)) break;
          g.redirect(id, producer);
          g.erase(id);
          changed = true;
          break;
        }
        case OpKind::kReLU: {
          // relu(relu(x)) == relu(x): consumers read the inner one.
          const OpId producer = n.inputs.front();
          if (g.node(producer).kind != OpKind::kReLU) break;
          if (!g.consumers(id).empty() && !g.can_redirect(id, producer)) break;
          g.redirect(id, producer);
          g.erase(id);
          changed = true;
          break;
        }
        default:
          break;
      }
    }
    return changed;
  }
};

/// Fuse a compute op with its trailing ReLU when the ReLU is the op's sole
/// consumer. The fused node keeps the compute op's name (weights bind by
/// name) and position; the ReLU's consumers are redirected onto it.
class FuseReLUPass final : public Pass {
 public:
  FuseReLUPass(std::string name, OpKind base, OpKind fused)
      : name_(std::move(name)), base_(base), fused_(fused) {}

  std::string name() const override { return name_; }

  bool run(MutableGraph& g) const override {
    bool changed = false;
    for (OpId id : g.live_ids()) {
      if (!g.alive(id)) continue;
      if (g.node(id).kind != base_) continue;
      const std::vector<OpId> cons = g.consumers(id);
      if (cons.size() != 1) continue;  // the intermediate must be private
      const OpId relu = cons.front();
      if (g.node(relu).kind != OpKind::kReLU) continue;
      if (!g.consumers(relu).empty() && !g.can_redirect(relu, id)) continue;
      OpNode& n = g.node(id);
      n.kind = fused_;
      n.output = g.node(relu).output;  // same descriptor by relu's contract
      g.redirect(relu, id);
      g.erase(relu);
      changed = true;
    }
    return changed;
  }

 private:
  std::string name_;
  OpKind base_;
  OpKind fused_;
};

/// Ops whose every input is a Constant become Constants themselves: their
/// output is computable at optimization time and is materialized once with
/// the weights, so at inference they launch nothing and stream nothing.
class ConstantFoldingPass final : public Pass {
 public:
  std::string name() const override { return kConstantFoldingPass; }

  bool run(MutableGraph& g) const override {
    bool changed = false;
    for (OpId id : g.live_ids()) {
      OpNode& n = g.node(id);
      if (n.kind == OpKind::kInput || n.kind == OpKind::kOutput ||
          n.kind == OpKind::kConstant || n.inputs.empty()) {
        continue;
      }
      const bool all_const =
          std::all_of(n.inputs.begin(), n.inputs.end(), [&](OpId in) {
            return g.node(in).kind == OpKind::kConstant;
          });
      if (!all_const) continue;
      n.kind = OpKind::kConstant;
      n.attrs = OpAttrs{};
      n.inputs.clear();
      changed = true;
    }
    return changed;
  }
};

/// Remove ops not backward-reachable from any Output (or, in headless
/// graphs like hand-built test fixtures, from any sink).
class DeadOpEliminationPass final : public Pass {
 public:
  std::string name() const override { return kDeadOpEliminationPass; }

  bool run(MutableGraph& g) const override {
    const std::vector<OpId> live = g.live_ids();
    std::vector<OpId> roots;
    for (OpId id : live) {
      if (g.node(id).kind == OpKind::kOutput) roots.push_back(id);
    }
    if (roots.empty()) {
      for (OpId id : live) {
        if (g.consumers(id).empty()) roots.push_back(id);
      }
    }
    std::vector<bool> reachable(g.capacity(), false);
    std::vector<OpId> stack = roots;
    while (!stack.empty()) {
      const OpId id = stack.back();
      stack.pop_back();
      if (reachable[static_cast<std::size_t>(id)]) continue;
      reachable[static_cast<std::size_t>(id)] = true;
      for (OpId in : g.node(id).inputs) stack.push_back(in);
    }
    bool changed = false;
    // Descending id order: insertion order is topological, so a dead op's
    // consumers (all dead too) are erased before it.
    for (auto it = live.rbegin(); it != live.rend(); ++it) {
      if (!reachable[static_cast<std::size_t>(*it)]) {
        g.erase(*it);
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace

// --- Registry ---------------------------------------------------------------

PassRegistry& PassRegistry::instance() {
  static PassRegistry* registry = [] {
    auto* r = new PassRegistry();
    r->add(kCanonicalizePass,
           [] { return std::make_unique<CanonicalizePass>(); });
    r->add(kFuseConvReLUPass, [] {
      return std::make_unique<FuseReLUPass>(
          kFuseConvReLUPass, OpKind::kConv2d, OpKind::kFusedConvReLU);
    });
    r->add(kFuseLinearReLUPass, [] {
      return std::make_unique<FuseReLUPass>(
          kFuseLinearReLUPass, OpKind::kLinear, OpKind::kFusedLinearReLU);
    });
    r->add(kConstantFoldingPass,
           [] { return std::make_unique<ConstantFoldingPass>(); });
    r->add(kDeadOpEliminationPass,
           [] { return std::make_unique<DeadOpEliminationPass>(); });
    return r;
  }();
  return *registry;
}

void PassRegistry::add(const std::string& name, Factory factory) {
  DCN_CHECK(static_cast<bool>(factory)) << "null pass factory for " << name;
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw ConfigError("pass '" + name + "' is already registered");
  }
}

std::unique_ptr<Pass> PassRegistry::create(const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw ConfigError("unknown graph pass '" + name + "'");
  }
  return it->second();
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

// --- PassManager ------------------------------------------------------------

PassManager::PassManager(int max_iterations)
    : max_iterations_(max_iterations) {
  DCN_CHECK(max_iterations >= 1) << "PassManager needs >= 1 iteration";
}

void PassManager::add(std::unique_ptr<Pass> pass) {
  DCN_CHECK(pass != nullptr) << "null pass";
  passes_.push_back(std::move(pass));
}

void PassManager::add(const std::string& registered_name) {
  add(PassRegistry::instance().create(registered_name));
}

Graph PassManager::run(const Graph& graph, PassStats* stats) const {
  PassStats local;
  local.ops_before = graph.size();
  MutableGraph g(graph);
  bool changed = true;
  while (changed && local.iterations < max_iterations_) {
    changed = false;
    ++local.iterations;
    for (const std::unique_ptr<Pass>& pass : passes_) {
      if (pass->run(g)) {
        changed = true;
        ++local.rewrites[pass->name()];
      }
    }
  }
  Graph out = g.build();
  validate_shapes(out);
  local.ops_after = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

Graph optimize_graph(const Graph& graph, const OptimizeOptions& options,
                     PassStats* stats) {
  PassManager manager(options.max_iterations);
  if (options.canonicalize) manager.add(kCanonicalizePass);
  if (options.fuse) {
    manager.add(kFuseConvReLUPass);
    manager.add(kFuseLinearReLUPass);
  }
  if (options.fold_constants) manager.add(kConstantFoldingPass);
  if (options.eliminate_dead) manager.add(kDeadOpEliminationPass);
  return manager.run(graph, stats);
}

std::size_t device_op_count(const Graph& graph) {
  std::size_t count = 0;
  for (const OpNode& node : graph.nodes()) {
    // Mirrors simgpu::is_device_op (graph cannot depend on simgpu).
    if (node.kind != OpKind::kInput && node.kind != OpKind::kOutput &&
        node.kind != OpKind::kConstant) {
      ++count;
    }
  }
  return count;
}

}  // namespace dcn::graph
