// Build an inference graph from an SPP-Net configuration.
#pragma once

#include "detect/sppnet_config.hpp"
#include "graph/graph.hpp"

namespace dcn::graph {

/// Construct the inference DAG of `config` for a square input of
/// `input_size` (per-sample shapes; batch is applied at execution time).
/// The SPP layer becomes parallel AdaptivePool->Flatten branch chains
/// converging on a Concat node — the branched block IOS optimizes.
Graph build_inference_graph(const detect::SppNetConfig& config,
                            std::int64_t input_size);

}  // namespace dcn::graph
