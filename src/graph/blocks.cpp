#include "graph/blocks.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dcn::graph {
namespace {

// Post-dominator sets over the DAG, as boolean tables, computed over the
// graph augmented with a virtual super-sink every real sink feeds. For a
// single-sink graph this is identical to the plain construction; with
// several sinks (a pipeline-stage subgraph cut mid-fork has one kOutput
// per cut activation) it keeps the sets well-defined — a fork whose
// branches never rejoin is post-dominated only by the virtual sink, which
// extract_blocks turns into a block spanning everything the fork reaches.
// Nodes are processed in reverse id order, which is reverse-topological by
// construction (Graph::add_op enforces inputs < id). The virtual sink is
// row/column n.
std::vector<std::vector<bool>> post_dominators(const Graph& graph) {
  const std::size_t n = graph.size();
  std::vector<std::vector<bool>> pdom(n + 1,
                                      std::vector<bool>(n + 1, false));
  pdom[n][n] = true;
  for (std::size_t i = n; i-- > 0;) {
    const OpId id = static_cast<OpId>(i);
    const auto succ = graph.successors(id);
    // Intersection of successors' post-dominators (sinks have the virtual
    // super-sink as their only successor) ...
    std::vector<bool> inter(n + 1, true);
    if (succ.empty()) {
      inter = pdom[n];
    } else {
      for (OpId s : succ) {
        for (std::size_t j = 0; j <= n; ++j) {
          inter[j] = inter[j] && pdom[static_cast<std::size_t>(s)][j];
        }
      }
    }
    inter[i] = true;  // ... plus the node itself.
    pdom[i] = std::move(inter);
  }
  return pdom;
}

// Forward reachability from `from` (inclusive).
std::vector<bool> reachable_from(const Graph& graph, OpId from) {
  std::vector<bool> reach(graph.size(), false);
  std::vector<OpId> stack{from};
  while (!stack.empty()) {
    const OpId id = stack.back();
    stack.pop_back();
    if (reach[static_cast<std::size_t>(id)]) continue;
    reach[static_cast<std::size_t>(id)] = true;
    for (OpId s : graph.successors(id)) stack.push_back(s);
  }
  return reach;
}

// Backward reachability to `to` (inclusive).
std::vector<bool> reaching(const Graph& graph, OpId to) {
  std::vector<bool> reach(graph.size(), false);
  std::vector<OpId> stack{to};
  while (!stack.empty()) {
    const OpId id = stack.back();
    stack.pop_back();
    if (reach[static_cast<std::size_t>(id)]) continue;
    reach[static_cast<std::size_t>(id)] = true;
    for (OpId in : graph.node(id).inputs) stack.push_back(in);
  }
  return reach;
}

}  // namespace

std::vector<Block> extract_blocks(const Graph& graph) {
  const std::size_t n = graph.size();
  DCN_CHECK(n > 0) << "empty graph";
  const auto pdom = post_dominators(graph);

  std::vector<Block> blocks;
  std::vector<bool> consumed(n, false);
  Block current;  // accumulating linear segment

  auto flush_linear = [&] {
    if (!current.ops.empty()) {
      blocks.push_back(std::move(current));
      current = Block{};
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const OpId id = static_cast<OpId>(i);
    if (consumed[i]) continue;
    const auto succ = graph.successors(id);
    consumed[i] = true;
    current.ops.push_back(id);
    if (succ.size() <= 1) continue;

    // Fork: the block spans everything between here and the immediate
    // post-dominator (the join).
    OpId join = kInvalidOp;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (pdom[i][j]) {
        join = static_cast<OpId>(j);
        break;  // ids are topological, so the first is the immediate one
      }
    }
    DCN_CHECK(pdom[i][n]) << "fork at op " << id << " has no post-dominator";

    flush_linear();  // the fork node terminates the preceding linear run

    Block block;
    block.branched = true;
    block.entry = id;
    block.exit = join;
    const auto fwd = reachable_from(graph, id);
    if (join == kInvalidOp) {
      // The branches only meet at the virtual super-sink: they end in
      // distinct real sinks (a multi-output stage subgraph). The block is
      // everything the fork reaches; exit stays kInvalidOp.
      for (std::size_t j = i + 1; j < n; ++j) {
        if (fwd[j] && !consumed[j]) {
          block.ops.push_back(static_cast<OpId>(j));
          consumed[j] = true;
        }
      }
    } else {
      // The join node itself is left to the following segment so that a
      // join that is itself a fork still opens its own block.
      const auto bwd = reaching(graph, join);
      for (std::size_t j = i + 1;
           j < static_cast<std::size_t>(join); ++j) {
        if (fwd[j] && bwd[j] && !consumed[j]) {
          block.ops.push_back(static_cast<OpId>(j));
          consumed[j] = true;
        }
      }
    }
    blocks.push_back(std::move(block));
  }
  flush_linear();
  return blocks;
}

std::vector<std::vector<OpId>> block_branches(const Graph& graph,
                                              const Block& block) {
  DCN_CHECK(block.branched) << "block_branches on a linear block";
  std::vector<std::vector<OpId>> branches;
  for (OpId head : graph.successors(block.entry)) {
    if (head == block.exit) {
      branches.push_back({});  // pass-through edge
      continue;
    }
    std::vector<OpId> chain;
    OpId cur = head;
    // A block with exit == kInvalidOp never rejoins: each branch runs to
    // its own sink instead of the shared join.
    while (cur != block.exit) {
      chain.push_back(cur);
      const auto succ = graph.successors(cur);
      if (succ.empty() && block.exit == kInvalidOp) break;
      DCN_CHECK(succ.size() == 1)
          << "branch at op " << cur << " is not a simple chain";
      cur = succ.front();
    }
    branches.push_back(std::move(chain));
  }
  return branches;
}

}  // namespace dcn::graph
