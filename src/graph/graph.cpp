#include "graph/graph.hpp"

#include <sstream>

#include "core/error.hpp"

namespace dcn::graph {

OpId Graph::add_op(OpKind kind, std::string name, OpAttrs attrs,
                   std::vector<OpId> inputs, TensorDesc output) {
  const OpId id = static_cast<OpId>(nodes_.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const OpId in = inputs[i];
    if (in < 0 || in >= id) {
      throw ConfigError("op '" + name + "' references dangling input op id " +
                        std::to_string(in) + " (existing ids are [0, " +
                        std::to_string(id) + "))");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (inputs[j] == in) {
        throw ConfigError("op '" + name + "' lists input op id " +
                          std::to_string(in) +
                          " more than once; edges must be unique");
      }
    }
  }
  OpNode node;
  node.id = id;
  node.kind = kind;
  node.name = std::move(name);
  node.attrs = attrs;
  node.inputs = std::move(inputs);
  node.output = std::move(output);
  nodes_.push_back(std::move(node));
  return id;
}

const OpNode& Graph::node(OpId id) const {
  DCN_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size())
      << "op id " << id;
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<OpId> Graph::successors(OpId id) const {
  std::vector<OpId> out;
  for (const OpNode& n : nodes_) {
    for (OpId in : n.inputs) {
      if (in == id) {
        out.push_back(n.id);
        break;
      }
    }
  }
  return out;
}

std::vector<OpId> Graph::topological_order() const {
  std::vector<int> indeg(nodes_.size(), 0);
  for (const OpNode& n : nodes_) {
    indeg[static_cast<std::size_t>(n.id)] =
        static_cast<int>(n.inputs.size());
  }
  std::vector<OpId> ready;
  for (const OpNode& n : nodes_) {
    if (n.inputs.empty()) ready.push_back(n.id);
  }
  std::vector<OpId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const OpId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (OpId succ : successors(id)) {
      if (--indeg[static_cast<std::size_t>(succ)] == 0) {
        ready.push_back(succ);
      }
    }
  }
  DCN_CHECK(order.size() == nodes_.size()) << "graph contains a cycle";
  return order;
}

TensorDesc Graph::input_desc(OpId id) const {
  const OpNode& n = node(id);
  if (n.inputs.empty()) return n.output;
  return node(n.inputs.front()).output;
}

std::int64_t Graph::parameter_count() const {
  std::int64_t total = 0;
  for (const OpNode& n : nodes_) {
    total += n.parameter_count(input_desc(n.id));
  }
  return total;
}

double Graph::total_flops() const {
  double total = 0.0;
  for (const OpNode& n : nodes_) total += n.flops(input_desc(n.id));
  return total;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  for (const OpNode& n : nodes_) {
    os << '#' << n.id << ' ' << op_kind_name(n.kind) << " '" << n.name
       << "' -> " << n.output.to_string();
    if (!n.inputs.empty()) {
      os << " inputs[";
      for (std::size_t i = 0; i < n.inputs.size(); ++i) {
        if (i) os << ", ";
        os << n.inputs[i];
      }
      os << ']';
    }
    os << '\n';
  }
  return os.str();
}

std::string Graph::to_dot() const {
  std::ostringstream os;
  os << "digraph inference {\n  rankdir=TB;\n";
  for (const OpNode& n : nodes_) {
    os << "  n" << n.id << " [label=\"" << op_kind_name(n.kind) << "\\n"
       << n.name << ' ' << n.output.to_string() << "\"];\n";
  }
  for (const OpNode& n : nodes_) {
    for (OpId in : n.inputs) {
      os << "  n" << in << " -> n" << n.id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void validate_shapes(const Graph& graph) {
  auto fail = [](const OpNode& node, const std::string& why) {
    throw Error("shape validation failed at op '" + node.name + "' (#" +
                std::to_string(node.id) + "): " + why);
  };
  for (const OpNode& node : graph.nodes()) {
    const std::size_t arity = node.inputs.size();
    switch (node.kind) {
      case OpKind::kInput: {
        if (arity != 0) fail(node, "input must have no producers");
        break;
      }
      case OpKind::kConstant: {
        if (arity != 0) fail(node, "constant must have no producers");
        break;
      }
      case OpKind::kConv2d:
      case OpKind::kFusedConvReLU: {
        if (arity != 1) fail(node, "conv takes one input");
        const TensorDesc in = graph.input_desc(node.id);
        if (in.dims.size() != 3 || node.output.dims.size() != 3) {
          fail(node, "conv expects CHW in and out");
        }
        if (node.output.dims[0] != node.attrs.out_channels) {
          fail(node, "output channels != attrs.out_channels");
        }
        for (int axis = 1; axis <= 2; ++axis) {
          const std::int64_t expect =
              (in.dims[static_cast<std::size_t>(axis)] +
               2 * node.attrs.padding - node.attrs.kernel) /
                  node.attrs.stride +
              1;
          if (node.output.dims[static_cast<std::size_t>(axis)] != expect) {
            fail(node, "conv spatial arithmetic mismatch");
          }
        }
        break;
      }
      case OpKind::kMaxPool: {
        if (arity != 1) fail(node, "pool takes one input");
        const TensorDesc in = graph.input_desc(node.id);
        if (in.dims.size() != 3 || node.output.dims.size() != 3) {
          fail(node, "pool expects CHW in and out");
        }
        if (node.output.dims[0] != in.dims[0]) {
          fail(node, "pool must preserve channels");
        }
        for (int axis = 1; axis <= 2; ++axis) {
          const std::int64_t expect =
              (in.dims[static_cast<std::size_t>(axis)] - node.attrs.kernel) /
                  node.attrs.stride +
              1;
          if (node.output.dims[static_cast<std::size_t>(axis)] != expect) {
            fail(node, "pool spatial arithmetic mismatch");
          }
        }
        break;
      }
      case OpKind::kAdaptivePool: {
        if (arity != 1) fail(node, "adaptive pool takes one input");
        const TensorDesc in = graph.input_desc(node.id);
        if (in.dims.size() != 3 || node.output.dims.size() != 3) {
          fail(node, "adaptive pool expects CHW in and out");
        }
        if (node.output.dims[0] != in.dims[0]) {
          fail(node, "adaptive pool must preserve channels");
        }
        if (node.output.dims[1] != node.attrs.pool_out ||
            node.output.dims[2] != node.attrs.pool_out) {
          fail(node, "adaptive pool grid != attrs.pool_out");
        }
        break;
      }
      case OpKind::kReLU: {
        if (arity != 1) fail(node, "relu takes one input");
        if (graph.input_desc(node.id).dims != node.output.dims) {
          fail(node, "relu must preserve shape");
        }
        break;
      }
      case OpKind::kFlatten: {
        if (arity != 1) fail(node, "flatten takes one input");
        if (node.output.dims.size() != 1 ||
            node.output.numel() != graph.input_desc(node.id).numel()) {
          fail(node, "flatten must preserve element count into rank 1");
        }
        break;
      }
      case OpKind::kConcat: {
        if (arity < 1) fail(node, "concat needs inputs");
        std::int64_t total = 0;
        for (OpId in : node.inputs) {
          total += graph.node(in).output.numel();
        }
        if (node.output.numel() != total) {
          fail(node, "concat output != sum of input elements");
        }
        break;
      }
      case OpKind::kLinear:
      case OpKind::kFusedLinearReLU: {
        if (arity != 1) fail(node, "linear takes one input");
        if (node.output.dims.size() != 1 ||
            node.output.dims[0] != node.attrs.out_features) {
          fail(node, "linear output width != attrs.out_features");
        }
        break;
      }
      case OpKind::kOutput: {
        if (arity != 1) fail(node, "output takes one input");
        if (graph.input_desc(node.id).dims != node.output.dims) {
          fail(node, "output must mirror its producer");
        }
        break;
      }
    }
  }
}

}  // namespace dcn::graph
