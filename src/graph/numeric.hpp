// Numeric execution of inference graphs on the host tensor engine.
//
// NumericExecutor interprets a graph::Graph with real trained weights, so
// the *same* DAG the IOS scheduler partitions and the simulated device
// prices can also be run numerically — which is what lets tests prove that
// the optimizer passes are semantics-preserving instead of assuming it.
// Fused nodes (FusedConvReLU / FusedLinearReLU) execute through the tensor
// engine's existing fused epilogues (GemmEpilogue / QuantEpilogue): the
// ReLU is applied in the GEMM's C-tile store, exactly as the unfused
// graph's standalone ReLU node computes it, so a fused graph's outputs are
// bit-identical to its unfused twin's — at fp32 and int8, at any thread
// count (the engine's determinism contract, DESIGN.md "Tensor-engine
// threading model").
//
// Weights bind by op name (the builder's conv<i> / fc<i> / head naming),
// which the fusion passes preserve: a weight map extracted once serves the
// naive graph, the optimized graph, and anything in between.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/calibration.hpp"
#include "detect/sppnet.hpp"
#include "graph/graph.hpp"
#include "tensor/quantize.hpp"
#include "tensor/tensor.hpp"

namespace dcn::graph {

/// Learnable parameters of one compute op.
struct OpWeights {
  Tensor weight;  // conv: [out_c, in_c, k, k]; linear: [out, in]
  Tensor bias;    // [out_c] / [out]
};

/// Op name -> parameters.
using WeightMap = std::unordered_map<std::string, OpWeights>;

/// Copy a trained SPP-Net's weights out under the graph builder's op names
/// (conv0, conv1, ..., fc0, ..., head). The returned map binds to the naive
/// inference graph and to any pass-optimized graph derived from it.
WeightMap extract_weights(detect::SppNet& net);

class NumericExecutor {
 public:
  /// `graph` is copied; `weights` must cover every compute op by name with
  /// shapes matching the op's attributes (throws ConfigError otherwise).
  /// Graphs containing Constant nodes are rejected: this cost IR does not
  /// carry folded tensor values.
  NumericExecutor(const Graph& graph, WeightMap weights);

  /// fp32 inference: [N, C, H, W] -> the Output node's value, [N, ...].
  Tensor forward(const Tensor& input) const;

  /// Calibrate activation ranges with an fp32 walk of `calibration` (each
  /// conv/linear observes the float tensor feeding it, exactly like
  /// QuantizedSppNet's calibration walk) and freeze conv/linear weights to
  /// symmetric per-channel int8.
  void quantize(const Tensor& calibration,
                const detect::CalibrationOptions& options = {});
  bool quantized() const { return quantized_; }

  /// INT8 inference (requires quantize()): conv/linear run as qgemm with
  /// the fused dequant+bias+ReLU epilogue; pools, concat, and standalone
  /// ReLU stay float, mirroring QuantizedSppNet.
  Tensor forward_int8(const Tensor& input) const;

  const Graph& graph() const { return graph_; }

 private:
  struct QuantOp {
    QuantizedWeights weights;
    QuantParams input_params;
  };

  Tensor run(const Tensor& input, bool int8,
             std::vector<detect::RangeObserver>* observers) const;

  Graph graph_;
  WeightMap weights_;
  std::vector<QuantOp> quant_;  // indexed by OpId; unused for non-compute ops
  bool quantized_ = false;
};

}  // namespace dcn::graph
