#include "graph/builder.hpp"

#include "core/error.hpp"

namespace dcn::graph {

Graph build_inference_graph(const detect::SppNetConfig& config,
                            std::int64_t input_size) {
  DCN_CHECK(input_size >= 8) << "input size " << input_size;
  Graph g;

  std::int64_t channels = config.in_channels;
  std::int64_t size = input_size;
  OpId prev = g.add_op(OpKind::kInput, "input", {}, {},
                       TensorDesc{{channels, size, size}});

  int conv_index = 0;
  int pool_index = 0;
  for (const detect::TrunkStage& stage : config.trunk) {
    if (stage.kind == detect::TrunkStage::Kind::kConv) {
      const std::int64_t pad = stage.conv.kernel / 2;
      size = (size + 2 * pad - stage.conv.kernel) / stage.conv.stride + 1;
      DCN_CHECK(size > 0) << "conv collapses spatial size";
      channels = stage.conv.filters;
      OpAttrs attrs;
      attrs.kernel = stage.conv.kernel;
      attrs.stride = stage.conv.stride;
      attrs.padding = pad;
      attrs.out_channels = channels;
      prev = g.add_op(OpKind::kConv2d, "conv" + std::to_string(conv_index),
                      attrs, {prev}, TensorDesc{{channels, size, size}});
      prev = g.add_op(OpKind::kReLU, "relu_c" + std::to_string(conv_index),
                      {}, {prev}, TensorDesc{{channels, size, size}});
      ++conv_index;
    } else {
      size = (size - stage.pool.kernel) / stage.pool.stride + 1;
      DCN_CHECK(size > 0) << "pool collapses spatial size";
      OpAttrs attrs;
      attrs.kernel = stage.pool.kernel;
      attrs.stride = stage.pool.stride;
      prev = g.add_op(OpKind::kMaxPool, "pool" + std::to_string(pool_index),
                      attrs, {prev}, TensorDesc{{channels, size, size}});
      ++pool_index;
    }
  }

  // SPP block: one AdaptivePool -> Flatten chain per pyramid level, all
  // reading the trunk output, converging on Concat.
  std::vector<OpId> branch_outputs;
  for (std::size_t b = 0; b < config.spp_levels.size(); ++b) {
    const std::int64_t level = config.spp_levels[b];
    OpAttrs attrs;
    attrs.pool_out = level;
    const OpId pool = g.add_op(
        OpKind::kAdaptivePool, "spp_pool_l" + std::to_string(level) + "_b" +
                                   std::to_string(b),
        attrs, {prev}, TensorDesc{{channels, level, level}});
    const OpId flat = g.add_op(
        OpKind::kFlatten, "spp_flat_b" + std::to_string(b), {}, {pool},
        TensorDesc{{channels * level * level}});
    branch_outputs.push_back(flat);
  }
  const OpId concat =
      g.add_op(OpKind::kConcat, "spp_concat", {}, branch_outputs,
               TensorDesc{{config.spp_features()}});

  std::int64_t features = config.spp_features();
  OpId head_prev = concat;
  int fc_index = 0;
  for (std::int64_t fc : config.fc_sizes) {
    OpAttrs attrs;
    attrs.out_features = fc;
    head_prev = g.add_op(OpKind::kLinear, "fc" + std::to_string(fc_index),
                         attrs, {head_prev}, TensorDesc{{fc}});
    head_prev = g.add_op(OpKind::kReLU, "relu_f" + std::to_string(fc_index),
                         {}, {head_prev}, TensorDesc{{fc}});
    features = fc;
    ++fc_index;
  }
  (void)features;
  OpAttrs head_attrs;
  head_attrs.out_features = config.head_outputs;
  const OpId head =
      g.add_op(OpKind::kLinear, "head", head_attrs, {head_prev},
               TensorDesc{{config.head_outputs}});
  g.add_op(OpKind::kOutput, "output", {}, {head},
           TensorDesc{{config.head_outputs}});
  return g;
}

}  // namespace dcn::graph
